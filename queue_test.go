package hyperplane

import (
	"sync"
	"testing"
	"time"
)

func TestQueuePushPop(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	q, err := NewQueue[string](n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 || q.Len() != 0 {
		t.Fatal("fresh queue state")
	}
	if !q.Push("a") {
		t.Fatal("push failed")
	}
	if q.Len() != 1 {
		t.Fatal("doorbell not rung")
	}
	// The notifier saw the push.
	qid, ok := n.TryWait()
	if !ok || qid != q.QID() {
		t.Fatalf("TryWait = %v, %v", qid, ok)
	}
	v, ok := q.Pop()
	if !ok || v != "a" {
		t.Fatalf("pop = %q, %v", v, ok)
	}
}

func TestQueueBackpressure(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	q, _ := NewQueue[int](n, 2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("fills failed")
	}
	if q.Push(3) {
		t.Fatal("push beyond capacity succeeded")
	}
}

func TestQueueInvalidCapacity(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	if _, err := NewQueue[int](n, 3); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
}

func TestQueueClose(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 1})
	defer n.Close()
	q, _ := NewQueue[int](n, 4)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Capacity freed: a new queue can register.
	if _, err := NewQueue[int](n, 4); err != nil {
		t.Fatalf("register after close: %v", err)
	}
}

func TestMuxServe(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 8})
	m := NewMux[int](n)
	const nq = 4
	qs := make([]*Queue[int], nq)
	for i := range qs {
		var err error
		qs[i], err = m.Add(64)
		if err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	got := map[QID][]int{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Serve(func(qid QID, item int) bool {
			mu.Lock()
			got[qid] = append(got[qid], item)
			total := 0
			for _, xs := range got {
				total += len(xs)
			}
			mu.Unlock()
			return total < nq*50
		})
	}()

	for i := 0; i < 50; i++ {
		for _, q := range qs {
			for !q.Push(i) {
				time.Sleep(time.Microsecond)
			}
		}
	}
	wg.Wait()
	n.Close()

	for _, q := range qs {
		items := got[q.QID()]
		if len(items) != 50 {
			t.Fatalf("queue %v delivered %d items", q.QID(), len(items))
		}
		for i, v := range items {
			if v != i {
				t.Fatalf("queue %v out of order at %d: %d", q.QID(), i, v)
			}
		}
	}
}

func TestMuxServeStopsOnClose(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	m := NewMux[int](n)
	if _, err := m.Add(4); err != nil {
		t.Fatal(err)
	}
	done := make(chan int64, 1)
	go func() {
		done <- m.Serve(func(QID, int) bool { return true })
	}()
	time.Sleep(10 * time.Millisecond)
	n.Close()
	select {
	case handled := <-done:
		if handled != 0 {
			t.Errorf("handled = %d", handled)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop on close")
	}
}

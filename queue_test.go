package hyperplane

import (
	"sync"
	"testing"
	"time"
)

func TestQueuePushPop(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	q, err := NewQueue[string](n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 || q.Len() != 0 {
		t.Fatal("fresh queue state")
	}
	if !q.Push("a") {
		t.Fatal("push failed")
	}
	if q.Len() != 1 {
		t.Fatal("doorbell not rung")
	}
	// The notifier saw the push.
	qid, ok := n.TryWait()
	if !ok || qid != q.QID() {
		t.Fatalf("TryWait = %v, %v", qid, ok)
	}
	v, ok := q.Pop()
	if !ok || v != "a" {
		t.Fatalf("pop = %q, %v", v, ok)
	}
}

func TestQueueBackpressure(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	q, _ := NewQueue[int](n, 2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("fills failed")
	}
	if q.Push(3) {
		t.Fatal("push beyond capacity succeeded")
	}
}

func TestQueueInvalidCapacity(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	if _, err := NewQueue[int](n, 3); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
}

func TestQueueClose(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 1})
	defer n.Close()
	q, _ := NewQueue[int](n, 4)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Capacity freed: a new queue can register.
	if _, err := NewQueue[int](n, 4); err != nil {
		t.Fatalf("register after close: %v", err)
	}
}

func TestMuxServe(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 8})
	m := NewMux[int](n)
	const nq = 4
	qs := make([]*Queue[int], nq)
	for i := range qs {
		var err error
		qs[i], err = m.Add(64)
		if err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	got := map[QID][]int{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Serve(func(qid QID, item int) bool {
			mu.Lock()
			got[qid] = append(got[qid], item)
			total := 0
			for _, xs := range got {
				total += len(xs)
			}
			mu.Unlock()
			return total < nq*50
		})
	}()

	for i := 0; i < 50; i++ {
		for _, q := range qs {
			for !q.Push(i) {
				time.Sleep(time.Microsecond)
			}
		}
	}
	wg.Wait()
	n.Close()

	for _, q := range qs {
		items := got[q.QID()]
		if len(items) != 50 {
			t.Fatalf("queue %v delivered %d items", q.QID(), len(items))
		}
		for i, v := range items {
			if v != i {
				t.Fatalf("queue %v out of order at %d: %d", q.QID(), i, v)
			}
		}
	}
}

func TestMuxServeStopsOnClose(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	m := NewMux[int](n)
	if _, err := m.Add(4); err != nil {
		t.Fatal(err)
	}
	done := make(chan int64, 1)
	go func() {
		done <- m.Serve(func(QID, int) bool { return true })
	}()
	time.Sleep(10 * time.Millisecond)
	n.Close()
	select {
	case handled := <-done:
		if handled != 0 {
			t.Errorf("handled = %d", handled)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop on close")
	}
}

func TestQueuePushBatchPopBatch(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4})
	defer n.Close()
	q, err := NewQueue[int](n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.PushBatch([]int{1, 2, 3, 4, 5}); got != 5 {
		t.Fatalf("PushBatch = %d", got)
	}
	// One batch, one activation.
	qid, ok := n.TryWait()
	if !ok || qid != q.QID() {
		t.Fatalf("TryWait = %v, %v", qid, ok)
	}
	dst := make([]int, 8)
	got := q.PopBatch(dst)
	if got != 5 {
		t.Fatalf("PopBatch = %d", got)
	}
	for i := 0; i < got; i++ {
		if dst[i] != i+1 {
			t.Fatalf("dst = %v", dst[:got])
		}
	}
	// ConsumeN re-arms the drained queue; nothing should be ready.
	if n.ConsumeN(qid, got) {
		t.Fatal("ConsumeN reported backlog on a drained queue")
	}
	if _, ok := n.TryWait(); ok {
		t.Fatal("drained queue still ready")
	}
	// A fresh push must reactivate it (the re-arm worked).
	if !q.Push(9) {
		t.Fatal("push failed")
	}
	if qid, ok := n.TryWait(); !ok || qid != q.QID() {
		t.Fatal("queue did not reactivate after re-arm")
	}
	// Overfill: only the free space is accepted.
	q2, _ := NewQueue[int](n, 4)
	if got := q2.PushBatch([]int{1, 2, 3, 4, 5, 6}); got != 4 {
		t.Fatalf("overfill PushBatch = %d", got)
	}
}

func TestSharedQueueManyProducers(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 2})
	defer n.Close()
	q, err := NewSharedQueue[[2]int](n, 64)
	if err != nil {
		t.Fatal(err)
	}
	const (
		producers = 6
		perProd   = 5000
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([][2]int, 0, 8)
			for seq := 0; seq < perProd; {
				batch = batch[:0]
				for len(batch) < cap(batch) && seq+len(batch) < perProd {
					batch = append(batch, [2]int{p, seq + len(batch)})
				}
				pushed := q.PushBatch(batch)
				seq += pushed
				if pushed == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}(p)
	}

	nextSeq := make([]int, producers)
	total := 0
	dst := make([][2]int, 32)
	for total < producers*perProd {
		qid, ok := n.WaitTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("timed out with %d/%d consumed", total, producers*perProd)
		}
		got := q.PopBatch(dst)
		n.ConsumeN(qid, got)
		for _, v := range dst[:got] {
			p, seq := v[0], v[1]
			if seq != nextSeq[p] {
				t.Fatalf("producer %d: got seq %d, want %d", p, seq, nextSeq[p])
			}
			nextSeq[p]++
		}
		total += got
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Errorf("Len = %d after drain", q.Len())
	}
}

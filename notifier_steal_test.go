package hyperplane

import (
	"sync/atomic"
	"testing"
)

func TestStealConfigValidation(t *testing.T) {
	bad := []StealConfig{
		{Enable: true, Quantum: -1},
		{Enable: true, Quantum: 65},
		{Enable: true, Probes: -1},
	}
	for _, sc := range bad {
		if _, err := NewNotifier(NotifierConfig{MaxQueues: 8, Steal: sc}); err == nil {
			t.Errorf("StealConfig %+v accepted", sc)
		}
	}
	n := newN(t, NotifierConfig{MaxQueues: 8, Shards: 2, Steal: StealConfig{Enable: true}})
	defer n.Close()
	if n.steal.Quantum != DefaultStealQuantum || n.steal.Probes != DefaultStealProbes {
		t.Errorf("defaults = quantum %d probes %d", n.steal.Quantum, n.steal.Probes)
	}
}

// stealFixture builds a 2-bank notifier with stealing on and qids 0..7
// registered in order, so qid mod 2 is the bank (even -> bank 0, odd ->
// bank 1).
func stealFixture(t *testing.T, cfg NotifierConfig) (*Notifier, []QID, []atomic.Int64) {
	t.Helper()
	if cfg.MaxQueues == 0 {
		cfg.MaxQueues = 8
	}
	cfg.Shards = 2
	if !cfg.Steal.Enable {
		cfg.Steal = StealConfig{Enable: true}
	}
	n := newN(t, cfg)
	dbs := make([]atomic.Int64, cfg.MaxQueues)
	qids := make([]QID, cfg.MaxQueues)
	for i := range qids {
		q, err := n.Register(&dbs[i])
		if err != nil {
			t.Fatal(err)
		}
		if int(q) != i {
			t.Fatalf("registration order broken: got qid %v for slot %d", q, i)
		}
		qids[i] = q
	}
	return n, qids, dbs
}

// TestWaitHomeBatchPrefersHome: when the home bank has ready queues, a
// home-affine waiter drains only those, leaving sibling banks for their
// own consumers.
func TestWaitHomeBatchPrefersHome(t *testing.T) {
	n, qids, dbs := stealFixture(t, NotifierConfig{})
	defer n.Close()
	for _, i := range []int{0, 1, 2, 3} {
		dbs[i].Add(1)
		n.Notify(qids[i])
	}
	dst := make([]QID, 8)
	c := n.WaitHomeBatch(0, dst)
	if c == 0 {
		t.Fatal("WaitHomeBatch returned nothing")
	}
	for _, q := range dst[:c] {
		if int(q)%2 != 0 {
			t.Fatalf("home-affine wait returned sibling-bank qid %v while home bank was ready", q)
		}
		dbs[q].Add(-1)
		n.ConsumeN(q, 1)
	}
	if s := n.Stats().Steals; s != 0 {
		t.Fatalf("steals = %d with a ready home bank", s)
	}
}

// TestWaitHomeBatchStealsFromSibling: with the home bank empty, the
// waiter claims from the sibling bank, bounded by the steal quantum, and
// both the notifier and victim-bank steal counters record it.
func TestWaitHomeBatchStealsFromSibling(t *testing.T) {
	n, qids, dbs := stealFixture(t, NotifierConfig{Steal: StealConfig{Enable: true, Quantum: 2}})
	defer n.Close()
	// Five ready queues, all on bank 1.
	ready := 0
	for i := 1; i < 8; i += 2 {
		dbs[i].Add(1)
		n.Notify(qids[i])
		ready++
	}
	dst := make([]QID, 8)
	c := n.WaitHomeBatch(0, dst)
	if c == 0 || c > 2 {
		t.Fatalf("stole %d qids, want 1..quantum(2)", c)
	}
	for _, q := range dst[:c] {
		if int(q)%2 != 1 {
			t.Fatalf("stole qid %v not from the sibling bank", q)
		}
		dbs[q].Add(-1)
		n.ConsumeN(q, 1)
	}
	if s := n.Stats().Steals; s != int64(c) {
		t.Fatalf("Stats().Steals = %d, want %d", s, c)
	}
	bs := n.BankStats()
	if bs[1].Steals != int64(c) || bs[0].Steals != 0 {
		t.Fatalf("bank steals = [%d %d], want [0 %d]", bs[0].Steals, bs[1].Steals, c)
	}
	// The rest of the sibling's backlog is still claimable.
	rest := 0
	for rest < ready-c {
		got := n.WaitHomeBatch(0, dst)
		if got == 0 {
			t.Fatalf("remaining backlog not reachable: got %d of %d", rest, ready-c)
		}
		for _, q := range dst[:got] {
			dbs[q].Add(-1)
			n.ConsumeN(q, 1)
		}
		rest += got
	}
}

// TestStealChargeRoutesToVictimBank: the defining accounting property of
// the steal path — a stolen queue's work lands in the victim bank's DRR
// deficit as carried debt, while the victim's rotor stays untouched, so
// the victim's own consumers see exactly the service order they would
// have seen had the queue drained at home.
func TestStealChargeRoutesToVictimBank(t *testing.T) {
	weights := make([]int, 8)
	for i := range weights {
		weights[i] = 4
	}
	n, qids, dbs := stealFixture(t, NotifierConfig{Policy: DeficitRoundRobin, Weights: weights})
	defer n.Close()
	before := n.InspectPolicy()[1]

	// qid 1 lives on bank 1 (the victim); batch of 3 items.
	dbs[1].Add(3)
	n.Notify(qids[1])
	dst := make([]QID, 4)
	c := n.WaitHomeBatch(0, dst)
	if c != 1 || dst[0] != qids[1] {
		t.Fatalf("WaitHomeBatch = %d %v, want qid 1", c, dst[:c])
	}
	dbs[1].Add(-3)
	n.ConsumeN(dst[0], 3)

	after := n.InspectPolicy()[1]
	if after.Rotor != before.Rotor {
		t.Fatalf("victim rotor moved %d -> %d on steal", before.Rotor, after.Rotor)
	}
	// qid 1 is bank 1's local index 0 (qid = local*stride + offset). The
	// steal's selection charge (1) plus ConsumeN's batch charge (2) must
	// both land as deficit debt.
	if want := before.Deficit[0] - 3; after.Deficit[0] != want {
		t.Fatalf("victim deficit[0] = %d, want %d (charge did not route to victim)", after.Deficit[0], want)
	}
	if n.Stats().Steals != 1 {
		t.Fatalf("Steals = %d", n.Stats().Steals)
	}
}

// TestWaitHomeBatchStealDisabled: with stealing off, WaitHomeBatch still
// finds work in sibling banks via the plain full sweep (no stranded
// work), and nothing is accounted as stolen.
func TestWaitHomeBatchStealDisabled(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 8, Shards: 2})
	defer n.Close()
	dbs := make([]atomic.Int64, 8)
	qids := make([]QID, 8)
	for i := range qids {
		qids[i], _ = n.Register(&dbs[i])
	}
	dbs[3].Add(1)
	n.Notify(qids[3])
	dst := make([]QID, 4)
	c := n.WaitHomeBatch(0, dst)
	if c != 1 || dst[0] != qids[3] {
		t.Fatalf("WaitHomeBatch = %d %v, want qid 3 via fallback sweep", c, dst[:c])
	}
	dbs[3].Add(-1)
	n.ConsumeN(dst[0], 1)
	if s := n.Stats().Steals; s != 0 {
		t.Fatalf("steals = %d with stealing disabled", s)
	}
}

// TestWaitHomeBatchZeroAllocs pins the ready-work fast path: a waiter
// that finds work — at home or by stealing — must not allocate.
func TestWaitHomeBatchZeroAllocs(t *testing.T) {
	n, qids, dbs := stealFixture(t, NotifierConfig{})
	defer n.Close()
	dst := make([]QID, 4)
	for name, victim := range map[string]int{"home": 0, "steal": 1} {
		v := victim
		if a := testing.AllocsPerRun(200, func() {
			dbs[v].Add(1)
			n.Notify(qids[v])
			c := n.WaitHomeBatch(0, dst)
			if c != 1 {
				t.Fatalf("WaitHomeBatch = %d", c)
			}
			dbs[v].Add(-1)
			n.ConsumeN(dst[0], 1)
		}); a != 0 {
			t.Errorf("%s path: allocs/op = %v, want 0", name, a)
		}
	}
}

package ready

import "math/bits"

// A PPA (Programmable Priority Arbiter) selects, among the asserted request
// bits, the first one at or after the current-priority position in circular
// order (paper §IV-B, Figs. 6-7). Two models are provided:
//
//   - rippleSelect: the bit-slice ripple-priority reference design — O(n)
//     per selection, mirrors Fig. 7's Pin/Pout chain including the
//     wrap-around connection.
//   - prefixSelect: the production design — thermometer coding to eliminate
//     the wrap-around plus word-parallel scanning, the software analogue of
//     the Brent–Kung parallel-prefix network the paper synthesizes.
//
// Both must agree bit-for-bit; the test suite property-checks equivalence.

// rippleSelect walks bit positions one at a time starting at prio,
// propagating priority exactly like the Pin/Pout ripple chain.
func rippleSelect(readyMasked func(int) bool, n, prio int) (int, bool) {
	for k := 0; k < n; k++ {
		i := prio + k
		if i >= n {
			i -= n // wrap-around connection
		}
		if readyMasked(i) {
			return i, true
		}
	}
	return 0, false
}

// prefixSelect finds the first asserted bit at or after prio in circular
// order using word-level operations: first the upper segment [prio, n), then
// the wrapped lower segment [0, prio). This mirrors the thermometer-coded
// double-width trick used to remove the combinational loop from PPN-based
// arbiters.
func prefixSelect(v, m *BitVec, prio int) (int, bool) {
	nw := len(v.words)
	startWord := prio >> 6
	startBit := uint(prio & 63)

	// Segment [prio, n): mask off bits below prio in the first word.
	w := andWord(v, m, startWord) &^ ((1 << startBit) - 1)
	if w != 0 {
		return startWord<<6 + bits.TrailingZeros64(w), true
	}
	for i := startWord + 1; i < nw; i++ {
		if w := andWord(v, m, i); w != 0 {
			return i<<6 + bits.TrailingZeros64(w), true
		}
	}
	// Wrapped segment [0, prio).
	for i := 0; i <= startWord && i < nw; i++ {
		w := andWord(v, m, i)
		if i == startWord {
			w &= (1 << startBit) - 1
		}
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

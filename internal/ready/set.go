package ready

import (
	"hyperplane/internal/policy"
	"hyperplane/internal/sim"
)

// Set is the interface shared by the hardware and software ready-set
// implementations. Select returns the next QID to service and removes it
// from the ready set (QWAIT-RECONSIDER re-activates it if the queue still
// has items); the returned latency models the selection cost.
type Set interface {
	// Activate marks the queue ready (called by the monitoring set).
	Activate(qid int)
	// Deactivate clears a queue's ready bit (e.g. QWAIT-REMOVE).
	Deactivate(qid int)
	// Select returns the next QID per the policy, clearing its ready state.
	Select() (qid int, ok bool, lat sim.Time)
	// Charge bills extra service cost to a previously selected queue.
	// Select already charges one unit at selection time; batch consumers
	// that then drain k items call Charge(qid, k-1) so work-aware policies
	// (DRR deficits, EWMA service rates) account the whole batch.
	Charge(qid, cost int)
	// Peek reports whether any (unmasked) queue is ready without selecting.
	Peek() bool
	// SetEnabled implements QWAIT-ENABLE/QWAIT-DISABLE mask bits.
	SetEnabled(qid int, enabled bool)
	// IsReady reports a queue's ready bit.
	IsReady(qid int) bool
	// ReadyCount returns the number of ready queues (masked or not).
	ReadyCount() int
}

// core is the substrate both ready-set models drive: the ready/mask bit
// pair plus one policy.Policy instance holding all discipline state. The
// hardware PPA and the software iterator differ only in their latency
// models — selection semantics are the shared arbitration layer's, so the
// two models (and the banked runtime built on Hardware) service queues in
// provably identical order.
type core struct {
	pol   policy.Policy
	ready *BitVec
	mask  *BitVec // enabled queues; Disable clears the bit
	n     int
}

func newCore(n int, spec policy.Spec) (core, error) {
	pol, err := spec.New(n)
	if err != nil {
		return core{}, err
	}
	c := core{pol: pol, ready: NewBitVec(n), mask: NewBitVec(n), n: n}
	c.mask.SetAll()
	return c, nil
}

// core implements policy.View over ready AND mask.

func (c *core) Len() int          { return c.n }
func (c *core) Word(i int) uint64 { return c.ready.words[i] & c.mask.words[i] }

func (c *core) activate(qid int) {
	if !c.ready.Get(qid) {
		c.ready.Set(qid)
		// The 0->1 edge is the arrival signal adaptive policies track;
		// repeated activations coalesce exactly like disarmed
		// monitoring-set entries.
		c.pol.Observe(qid)
	}
}

func (c *core) selectOne() (int, bool) {
	qid, ok := c.pol.Next(c)
	if !ok {
		return 0, false
	}
	c.ready.Clear(qid)
	c.pol.Charge(qid, 1)
	return qid, true
}

func (c *core) stealOne() (int, bool) {
	qid, ok := c.pol.Steal(c)
	if !ok {
		return 0, false
	}
	c.ready.Clear(qid)
	c.pol.ChargeSteal(qid, 1)
	return qid, true
}

func (c *core) charge(qid, cost int) {
	if cost > 0 {
		c.pol.Charge(qid, cost)
	}
}

func (c *core) chargeSteal(qid, cost int) {
	if cost > 0 {
		c.pol.ChargeSteal(qid, cost)
	}
}

func (c *core) setEnabled(qid int, enabled bool) {
	if enabled {
		c.mask.Set(qid)
	} else {
		c.mask.Clear(qid)
	}
}

func (c *core) peek() bool {
	for i := range c.ready.words {
		if c.Word(i) != 0 {
			return true
		}
	}
	return false
}

// HardwareLatency is the selection latency of the synthesized 1024-entry
// ready set reported by the paper's RTL model (§IV-C).
const HardwareLatency = sim.Time(12250) // 12.25 ns in picoseconds

// Hardware is the PPA-based hardware ready set: ready bits, mask bits,
// and the configured arbitration policy, selected in constant modeled
// time regardless of how many queues are ready.
type Hardware struct {
	c       core
	latency sim.Time
}

// NewHardware builds an n-queue hardware ready set arbitrated by spec.
// Weight and parameter validation is internal/policy's (one WeightsError
// for every substrate).
func NewHardware(n int, spec policy.Spec) (*Hardware, error) {
	c, err := newCore(n, spec)
	if err != nil {
		return nil, err
	}
	return &Hardware{c: c, latency: HardwareLatency}, nil
}

// Policy reports the configured discipline.
func (h *Hardware) Policy() policy.Kind { return h.c.pol.Kind() }

// Inspect snapshots the arbiter's internal state (policy.Inspect).
func (h *Hardware) Inspect() policy.Inspection {
	insp, _ := policy.Inspect(h.c.pol)
	return insp
}

// Activate implements Set.
func (h *Hardware) Activate(qid int) { h.c.activate(qid) }

// Deactivate implements Set.
func (h *Hardware) Deactivate(qid int) { h.c.ready.Clear(qid) }

// SetEnabled implements Set (QWAIT-ENABLE / QWAIT-DISABLE).
func (h *Hardware) SetEnabled(qid int, enabled bool) { h.c.setEnabled(qid, enabled) }

// IsReady implements Set.
func (h *Hardware) IsReady(qid int) bool { return h.c.ready.Get(qid) }

// ReadyCount implements Set.
func (h *Hardware) ReadyCount() int { return h.c.ready.Count() }

// Peek implements Set: true if any enabled queue is ready.
func (h *Hardware) Peek() bool { return h.c.peek() }

// Select implements Set using the parallel-prefix PPA at fixed latency.
func (h *Hardware) Select() (int, bool, sim.Time) {
	qid, ok := h.c.selectOne()
	return qid, ok, h.latency
}

// Charge implements Set: bills cost extra service units to qid.
func (h *Hardware) Charge(qid, cost int) { h.c.charge(qid, cost) }

// SetAlpha retunes the discipline's EWMA smoothing factor live,
// reporting whether it applied (no-op for disciplines without one).
// Callers serialize with other mutating calls.
func (h *Hardware) SetAlpha(alpha float64) bool { return policy.SetAlpha(h.c.pol, alpha) }

// Steal selects for a work-stealing consumer: the policy's steal victim —
// the queue the discipline would otherwise service last — is removed from
// the ready set and charged one unit through ChargeSteal, which leaves
// the rotor state (and with it the home consumer's service order)
// untouched.
func (h *Hardware) Steal() (int, bool) { return h.c.stealOne() }

// ChargeSteal bills cost extra service units to a stolen qid without
// advancing the policy rotor (see Steal).
func (h *Hardware) ChargeSteal(qid, cost int) { h.c.chargeSteal(qid, cost) }

// Software models the paper's software ready-set alternative (§III-B,
// §V-E): QWAIT's selection runs as code that scans the ready queues to
// find the next one per the policy, so its cost grows with the number of
// ready queues — which is why the hardware PPA wins under fully-balanced
// traffic (Fig. 13). Selection *semantics* are identical to Hardware's by
// construction: both drive the same policy instance type over the same
// bit substrate; only the charged latency differs.
type Software struct {
	c        core
	base     sim.Time // fixed per-call overhead
	perEntry sim.Time // cost of examining one ready entry
}

// Software iteration cost model: a handful of instructions per examined
// entry on a 3 GHz core, plus fixed call overhead.
const (
	SoftwareBaseLatency     = 25 * sim.Nanosecond
	SoftwarePerEntryLatency = sim.Time(1500) // 1.5 ns
)

// NewSoftware builds an n-queue software ready set arbitrated by spec.
func NewSoftware(n int, spec policy.Spec) (*Software, error) {
	c, err := newCore(n, spec)
	if err != nil {
		return nil, err
	}
	return &Software{
		c:        c,
		base:     SoftwareBaseLatency,
		perEntry: SoftwarePerEntryLatency,
	}, nil
}

// Policy reports the configured discipline.
func (s *Software) Policy() policy.Kind { return s.c.pol.Kind() }

// Inspect snapshots the arbiter's internal state (policy.Inspect).
func (s *Software) Inspect() policy.Inspection {
	insp, _ := policy.Inspect(s.c.pol)
	return insp
}

// Activate implements Set.
func (s *Software) Activate(qid int) { s.c.activate(qid) }

// Deactivate implements Set.
func (s *Software) Deactivate(qid int) { s.c.ready.Clear(qid) }

// SetEnabled implements Set.
func (s *Software) SetEnabled(qid int, enabled bool) { s.c.setEnabled(qid, enabled) }

// IsReady implements Set.
func (s *Software) IsReady(qid int) bool { return s.c.ready.Get(qid) }

// ReadyCount implements Set.
func (s *Software) ReadyCount() int { return s.c.ready.Count() }

// Peek implements Set.
func (s *Software) Peek() bool { return s.c.peek() }

// Select implements Set: a full scan of the ready list, charged per entry.
func (s *Software) Select() (int, bool, sim.Time) {
	lat := s.base + sim.Time(s.c.ready.Count())*s.perEntry
	qid, ok := s.c.selectOne()
	return qid, ok, lat
}

// Charge implements Set: bills cost extra service units to qid.
func (s *Software) Charge(qid, cost int) { s.c.charge(qid, cost) }

// SetAlpha retunes the discipline's EWMA smoothing factor live (see
// Hardware.SetAlpha).
func (s *Software) SetAlpha(alpha float64) bool { return policy.SetAlpha(s.c.pol, alpha) }

// Steal selects for a work-stealing consumer (see Hardware.Steal);
// semantics are identical to the hardware model's by construction.
func (s *Software) Steal() (int, bool) { return s.c.stealOne() }

// ChargeSteal bills cost extra service units to a stolen qid without
// advancing the policy rotor.
func (s *Software) ChargeSteal(qid, cost int) { s.c.chargeSteal(qid, cost) }

package ready

import (
	"fmt"

	"hyperplane/internal/sim"
)

// Policy selects the service discipline the ready set implements
// (paper §III-A / §IV-B).
type Policy uint8

// Service policies.
const (
	// RoundRobin gives the selected QID lowest priority in the next round.
	RoundRobin Policy = iota
	// WeightedRoundRobin lets a selected queue be serviced for weight
	// consecutive rounds before the priority rotates.
	WeightedRoundRobin
	// StrictPriority always prefers lower-numbered QIDs. The paper notes it
	// can starve high-numbered queues and is rarely used in practice.
	StrictPriority
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case WeightedRoundRobin:
		return "weighted-round-robin"
	case StrictPriority:
		return "strict-priority"
	}
	return "unknown"
}

// Set is the interface shared by the hardware and software ready-set
// implementations. Select returns the next QID to service and removes it
// from the ready set (QWAIT-RECONSIDER re-activates it if the queue still
// has items); the returned latency models the selection cost.
type Set interface {
	// Activate marks the queue ready (called by the monitoring set).
	Activate(qid int)
	// Deactivate clears a queue's ready bit (e.g. QWAIT-REMOVE).
	Deactivate(qid int)
	// Select returns the next QID per the policy, clearing its ready state.
	Select() (qid int, ok bool, lat sim.Time)
	// Peek reports whether any (unmasked) queue is ready without selecting.
	Peek() bool
	// SetEnabled implements QWAIT-ENABLE/QWAIT-DISABLE mask bits.
	SetEnabled(qid int, enabled bool)
	// IsReady reports a queue's ready bit.
	IsReady(qid int) bool
	// ReadyCount returns the number of ready queues (masked or not).
	ReadyCount() int
}

// HardwareLatency is the selection latency of the synthesized 1024-entry
// ready set reported by the paper's RTL model (§IV-C).
const HardwareLatency = sim.Time(12250) // 12.25 ns in picoseconds

// Hardware is the PPA-based hardware ready set: ready bits, mask bits, and
// policy state (current-priority one-hot vector and WRR weight counter).
type Hardware struct {
	policy  Policy
	ready   *BitVec
	mask    *BitVec // enabled queues; Disable clears the bit
	n       int
	prio    int // current-priority position
	weights []int
	counter int // remaining consecutive services for WRR's favored QID
	latency sim.Time
}

// NewHardware builds an n-queue hardware ready set. weights is required for
// WeightedRoundRobin (len n, entries >= 1) and ignored otherwise.
func NewHardware(n int, policy Policy, weights []int) *Hardware {
	if n <= 0 {
		panic("ready: queue count must be positive")
	}
	h := &Hardware{
		policy:  policy,
		ready:   NewBitVec(n),
		mask:    NewBitVec(n),
		n:       n,
		latency: HardwareLatency,
	}
	h.mask.SetAll()
	if policy == WeightedRoundRobin {
		if len(weights) != n {
			panic(fmt.Sprintf("ready: WRR needs %d weights, got %d", n, len(weights)))
		}
		h.weights = make([]int, n)
		for i, w := range weights {
			if w < 1 {
				panic(fmt.Sprintf("ready: WRR weight for qid %d must be >= 1", i))
			}
			h.weights[i] = w
		}
		h.counter = h.weights[0]
	}
	return h
}

// Activate implements Set.
func (h *Hardware) Activate(qid int) { h.ready.Set(qid) }

// Deactivate implements Set.
func (h *Hardware) Deactivate(qid int) { h.ready.Clear(qid) }

// SetEnabled implements Set (QWAIT-ENABLE / QWAIT-DISABLE).
func (h *Hardware) SetEnabled(qid int, enabled bool) {
	if enabled {
		h.mask.Set(qid)
	} else {
		h.mask.Clear(qid)
	}
}

// IsReady implements Set.
func (h *Hardware) IsReady(qid int) bool { return h.ready.Get(qid) }

// ReadyCount implements Set.
func (h *Hardware) ReadyCount() int { return h.ready.Count() }

// Peek implements Set: true if any enabled queue is ready.
func (h *Hardware) Peek() bool {
	for i := range h.ready.words {
		if andWord(h.ready, h.mask, i) != 0 {
			return true
		}
	}
	return false
}

// Select implements Set using the parallel-prefix PPA.
func (h *Hardware) Select() (int, bool, sim.Time) {
	start := h.prio
	if h.policy == StrictPriority {
		start = 0 // current-priority vector fixed at "10...0"
	}
	sel, ok := prefixSelect(h.ready, h.mask, start)
	if !ok {
		return 0, false, h.latency
	}
	h.ready.Clear(sel)
	switch h.policy {
	case RoundRobin:
		// Rotate: selected QID gets lowest priority next round.
		h.prio = sel + 1
		if h.prio == h.n {
			h.prio = 0
		}
	case WeightedRoundRobin:
		// counter tracks how many more services the favored QID (prio) may
		// receive before the priority rotates past it.
		if sel == h.prio {
			h.counter--
		} else {
			// Favored queue had no work: priority passes to the selected
			// QID, which consumes one unit of its own weight now.
			h.prio = sel
			h.counter = h.weights[sel] - 1
		}
		if h.counter <= 0 {
			// Budget exhausted: rotate to the next QID and reload.
			h.prio = sel + 1
			if h.prio == h.n {
				h.prio = 0
			}
			h.counter = h.weights[h.prio]
		}
	case StrictPriority:
		// Priority vector is fixed; nothing rotates.
	}
	return sel, true, h.latency
}

// selectRipple is the reference bit-slice implementation used by tests to
// cross-check prefixSelect. It does not mutate state.
func (h *Hardware) selectRipple() (int, bool) {
	start := h.prio
	if h.policy == StrictPriority {
		start = 0
	}
	return rippleSelect(func(i int) bool {
		return h.ready.Get(i) && h.mask.Get(i)
	}, h.n, start)
}

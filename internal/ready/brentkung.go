package ready

// Gate-level model of the Brent–Kung parallel-prefix arbiter the paper
// synthesizes (§IV-B, Fig. 7): thermometer coding removes the wrap-around
// combinational loop, and a prefix network propagates the "priority has
// passed and not yet been consumed" signal in O(log n) logic levels.
//
// policy.SelectFrom is the word-parallel production implementation;
// this file computes the same function the way the hardware does — as an
// explicit prefix network over per-bit kill signals — and reports the
// network's gate depth, so tests can cross-check all three implementations
// and the latency model can be related to structure.
//
// Formulation: rotate the request vector so the current-priority position
// is bit 0 (thermometer trick: selection order becomes a plain linear
// priority). The selected bit is then the first asserted request:
//
//	grant[i] = req[i] AND NOT (req[0] OR req[1] OR ... OR req[i-1])
//
// The OR-prefix over req is computed by a Brent–Kung network: an up-sweep
// building power-of-two block ORs and a down-sweep distributing them,
// 2*log2(n) - 1 levels of 2-input OR gates.

// brentKungPrefixOR returns, for each i, OR of in[0..i-1] (exclusive
// prefix), computed with the Brent–Kung schedule.
func brentKungPrefixOR(in []bool) []bool {
	n := len(in)
	// Pad to a power of two (hardware ties unused inputs low).
	size := 1
	for size < n {
		size <<= 1
	}
	v := make([]bool, size)
	copy(v, in)

	// Up-sweep: v[k] accumulates the OR of its power-of-two block.
	for d := 1; d < size; d <<= 1 {
		for k := 2*d - 1; k < size; k += 2 * d {
			v[k] = v[k] || v[k-d]
		}
	}
	// Down-sweep for the exclusive prefix: root gets identity (false).
	v[size-1] = false
	for d := size >> 1; d >= 1; d >>= 1 {
		for k := 2*d - 1; k < size; k += 2 * d {
			left := v[k-d]
			v[k-d] = v[k]
			v[k] = v[k] || left
		}
	}
	return v[:n]
}

// brentKungDepth returns the logic depth (2-input OR levels) of the
// network for n requests: 2*ceil(log2(n)) - 1 for n > 1.
func brentKungDepth(n int) int {
	if n <= 1 {
		return 0
	}
	levels := 0
	size := 1
	for size < n {
		size <<= 1
		levels++
	}
	return 2*levels - 1
}

// brentKungSelect selects the first asserted (ready AND mask) bit at or
// after prio in circular order, exactly like policy.SelectFrom and
// policy.RippleSelect, but via the explicit prefix network.
func brentKungSelect(v, m *BitVec, prio int) (int, bool) {
	n := v.Len()
	// Thermometer rotation: req[k] corresponds to bit (prio + k) mod n.
	req := make([]bool, n)
	for k := 0; k < n; k++ {
		i := prio + k
		if i >= n {
			i -= n
		}
		req[k] = v.Get(i) && (m == nil || m.Get(i))
	}
	notBefore := brentKungPrefixOR(req)
	for k := 0; k < n; k++ {
		if req[k] && !notBefore[k] { // grant = req AND NOT prefixOR
			i := prio + k
			if i >= n {
				i -= n
			}
			return i, true
		}
	}
	return 0, false
}

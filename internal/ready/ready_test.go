package ready

import (
	"testing"
	"testing/quick"
)

func TestBitVecBasics(t *testing.T) {
	v := NewBitVec(130)
	if v.Any() || v.Count() != 0 {
		t.Fatal("fresh vector not empty")
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) || v.Get(1) {
		t.Fatal("get/set mismatch")
	}
	if v.Count() != 3 {
		t.Errorf("count = %d", v.Count())
	}
	v.Clear(64)
	if v.Get(64) || v.Count() != 2 {
		t.Fatal("clear failed")
	}
	v.SetAll()
	if v.Count() != 130 {
		t.Errorf("SetAll count = %d", v.Count())
	}
	v.ClearAll()
	if v.Any() {
		t.Fatal("ClearAll failed")
	}
}

func TestBitVecBounds(t *testing.T) {
	v := NewBitVec(10)
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			v.Set(i)
		}()
	}
}

func TestRoundRobinRotation(t *testing.T) {
	h := NewHardware(8, RoundRobin, nil)
	for _, q := range []int{1, 3, 6} {
		h.Activate(q)
	}
	var got []int
	for {
		q, ok, lat := h.Select()
		if !ok {
			break
		}
		if lat != HardwareLatency {
			t.Errorf("latency = %v", lat)
		}
		got = append(got, q)
	}
	want := []int{1, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("selected %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
	// After servicing 6, priority sits at 7; re-activating 1 and 7 must
	// yield 7 first (circular order from current priority).
	h.Activate(1)
	h.Activate(7)
	if q, _, _ := h.Select(); q != 7 {
		t.Errorf("after rotation selected %d, want 7", q)
	}
	if q, _, _ := h.Select(); q != 1 {
		t.Errorf("then selected %d, want 1", q)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// All queues always ready: each must be served exactly once per round.
	const n = 16
	h := NewHardware(n, RoundRobin, nil)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		h.Activate(i)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < n; i++ {
			q, ok, _ := h.Select()
			if !ok {
				t.Fatal("ran dry")
			}
			counts[q]++
			h.Activate(q) // immediately ready again
		}
	}
	for q, c := range counts {
		if c != 10 {
			t.Errorf("queue %d served %d times, want 10", q, c)
		}
	}
}

func TestStrictPriority(t *testing.T) {
	h := NewHardware(8, StrictPriority, nil)
	h.Activate(5)
	h.Activate(2)
	h.Activate(7)
	if q, _, _ := h.Select(); q != 2 {
		t.Errorf("selected %d, want 2", q)
	}
	h.Activate(2) // low QID keeps winning: starvation by design
	if q, _, _ := h.Select(); q != 2 {
		t.Error("strict priority did not prefer lowest QID")
	}
	if q, _, _ := h.Select(); q != 5 {
		t.Error("next should be 5")
	}
}

func TestWeightedRoundRobin(t *testing.T) {
	weights := []int{3, 1, 2}
	h := NewHardware(3, WeightedRoundRobin, weights)
	// Keep all queues perpetually ready; observe service proportions.
	for i := 0; i < 3; i++ {
		h.Activate(i)
	}
	counts := make([]int, 3)
	for i := 0; i < 60; i++ {
		q, ok, _ := h.Select()
		if !ok {
			t.Fatal("ran dry")
		}
		counts[q]++
		h.Activate(q)
	}
	// 60 services over weights 3:1:2 -> 30:10:20.
	if counts[0] != 30 || counts[1] != 10 || counts[2] != 20 {
		t.Errorf("WRR service counts = %v, want [30 10 20]", counts)
	}
}

func TestWRRSkipsEmptyFavored(t *testing.T) {
	weights := []int{4, 1}
	h := NewHardware(2, WeightedRoundRobin, weights)
	h.Activate(0)
	if q, _, _ := h.Select(); q != 0 {
		t.Fatal("first select")
	}
	// Queue 0 ran out of items (not re-activated); queue 1 becomes ready.
	// Despite 0's remaining weight, 1 must be selected.
	h.Activate(1)
	if q, ok, _ := h.Select(); !ok || q != 1 {
		t.Errorf("selected %d, want 1 (favored queue empty)", q)
	}
}

func TestMaskBits(t *testing.T) {
	for _, mk := range []func() Set{
		func() Set { return NewHardware(4, RoundRobin, nil) },
		func() Set { return NewSoftware(4, RoundRobin, nil) },
	} {
		s := mk()
		s.Activate(1)
		s.Activate(2)
		s.SetEnabled(1, false) // QWAIT-DISABLE
		if q, ok, _ := s.Select(); !ok || q != 2 {
			t.Errorf("selected %d, want 2 (1 disabled)", q)
		}
		if _, ok, _ := s.Select(); ok {
			t.Error("disabled queue was selected")
		}
		// Ready bit survives the mask: re-enabling reveals it.
		s.SetEnabled(1, true) // QWAIT-ENABLE
		if q, ok, _ := s.Select(); !ok || q != 1 {
			t.Errorf("selected %d after enable, want 1", q)
		}
	}
}

func TestPeekAndCounts(t *testing.T) {
	for _, mk := range []func() Set{
		func() Set { return NewHardware(8, RoundRobin, nil) },
		func() Set { return NewSoftware(8, RoundRobin, nil) },
	} {
		s := mk()
		if s.Peek() || s.ReadyCount() != 0 {
			t.Fatal("fresh set not empty")
		}
		s.Activate(3)
		s.Activate(3) // idempotent
		if !s.Peek() || s.ReadyCount() != 1 || !s.IsReady(3) {
			t.Fatal("activate bookkeeping wrong")
		}
		s.SetEnabled(3, false)
		if s.Peek() {
			t.Error("masked-only set peeks true")
		}
		if s.ReadyCount() != 1 {
			t.Error("mask must not clear ready state")
		}
		s.SetEnabled(3, true)
		s.Deactivate(3)
		if s.Peek() || s.IsReady(3) {
			t.Error("deactivate failed")
		}
	}
}

func TestSoftwareLatencyGrowsWithReadyCount(t *testing.T) {
	s := NewSoftware(1000, RoundRobin, nil)
	s.Activate(0)
	_, _, lat1 := s.Select()
	for i := 0; i < 1000; i++ {
		s.Activate(i)
	}
	_, _, lat1000 := s.Select()
	if lat1000 <= lat1 {
		t.Errorf("software latency did not grow: %v vs %v", lat1, lat1000)
	}
	want := SoftwareBaseLatency + 1000*SoftwarePerEntryLatency
	if lat1000 != want {
		t.Errorf("lat at 1000 ready = %v, want %v", lat1000, want)
	}
}

func TestHardwareLatencyConstant(t *testing.T) {
	h := NewHardware(1024, RoundRobin, nil)
	for i := 0; i < 1024; i++ {
		h.Activate(i)
	}
	_, _, lat := h.Select()
	if lat != HardwareLatency {
		t.Errorf("hardware latency = %v, want %v", lat, HardwareLatency)
	}
}

func TestSoftwareRoundRobinOrder(t *testing.T) {
	s := NewSoftware(8, RoundRobin, nil)
	for _, q := range []int{6, 1, 3} {
		s.Activate(q)
	}
	var got []int
	for {
		q, ok, _ := s.Select()
		if !ok {
			break
		}
		got = append(got, q)
	}
	want := []int{1, 3, 6}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSoftwareWRRProportions(t *testing.T) {
	weights := []int{2, 1}
	s := NewSoftware(2, WeightedRoundRobin, weights)
	s.Activate(0)
	s.Activate(1)
	counts := make([]int, 2)
	for i := 0; i < 30; i++ {
		q, ok, _ := s.Select()
		if !ok {
			t.Fatal("ran dry")
		}
		counts[q]++
		s.Activate(q)
	}
	if counts[0] != 20 || counts[1] != 10 {
		t.Errorf("counts = %v, want [20 10]", counts)
	}
}

// Property: the parallel-prefix PPA agrees with the ripple reference for all
// ready/mask/priority combinations.
func TestPPAEquivalenceProperty(t *testing.T) {
	f := func(readyBits, maskBits []bool, prio uint16) bool {
		n := len(readyBits)
		if n == 0 {
			return true
		}
		if n > 300 {
			n = 300
		}
		v := NewBitVec(n)
		m := NewBitVec(n)
		for i := 0; i < n; i++ {
			if readyBits[i] {
				v.Set(i)
			}
			if i < len(maskBits) && maskBits[i] {
				m.Set(i)
			}
		}
		p := int(prio) % n
		gotQ, gotOK := prefixSelect(v, m, p)
		wantQ, wantOK := rippleSelect(func(i int) bool {
			return v.Get(i) && m.Get(i)
		}, n, p)
		return gotOK == wantOK && (!gotOK || gotQ == wantQ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: hardware Select agrees with the ripple reference applied to the
// same live state, across a random activation/selection workload.
func TestHardwareSelectMatchesRipple(t *testing.T) {
	f := func(ops []uint16) bool {
		h := NewHardware(64, RoundRobin, nil)
		for _, op := range ops {
			q := int(op % 64)
			if op%3 == 0 {
				h.Activate(q)
			} else {
				wantQ, wantOK := h.selectRipple()
				gotQ, gotOK, _ := h.Select()
				if gotOK != wantOK || (gotOK && gotQ != wantQ) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: hardware and software ready sets select the same QIDs in the
// same order under round-robin for any activation set.
func TestHardwareSoftwareAgreeRR(t *testing.T) {
	f := func(qs []uint8) bool {
		h := NewHardware(256, RoundRobin, nil)
		s := NewSoftware(256, RoundRobin, nil)
		for _, q := range qs {
			h.Activate(int(q))
			s.Activate(int(q))
		}
		for {
			hq, hok, _ := h.Select()
			sq, sok, _ := s.Select()
			if hok != sok {
				return false
			}
			if !hok {
				return true
			}
			if hq != sq {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConstructorValidation(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("NewHardware(0)", func() { NewHardware(0, RoundRobin, nil) })
	assertPanics("NewSoftware(0)", func() { NewSoftware(0, RoundRobin, nil) })
	assertPanics("WRR missing weights", func() { NewHardware(4, WeightedRoundRobin, nil) })
	assertPanics("WRR zero weight", func() { NewHardware(2, WeightedRoundRobin, []int{1, 0}) })
	assertPanics("NewBitVec(0)", func() { NewBitVec(0) })
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" ||
		WeightedRoundRobin.String() != "weighted-round-robin" ||
		StrictPriority.String() != "strict-priority" ||
		Policy(99).String() != "unknown" {
		t.Error("Policy.String mismatch")
	}
}

package ready

import (
	"errors"
	"testing"
	"testing/quick"

	"hyperplane/internal/policy"
)

// hw / sw build ready sets for tests, panicking on spec errors so they
// can be used inside testing/quick closures.
func hw(n int, kind policy.Kind, weights []int) *Hardware {
	h, err := NewHardware(n, policy.Spec{Kind: kind, Weights: weights})
	if err != nil {
		panic(err)
	}
	return h
}

func sw(n int, kind policy.Kind, weights []int) *Software {
	s, err := NewSoftware(n, policy.Spec{Kind: kind, Weights: weights})
	if err != nil {
		panic(err)
	}
	return s
}

func TestBitVecBasics(t *testing.T) {
	v := NewBitVec(130)
	if v.Any() || v.Count() != 0 {
		t.Fatal("fresh vector not empty")
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) || v.Get(1) {
		t.Fatal("get/set mismatch")
	}
	if v.Count() != 3 {
		t.Errorf("count = %d", v.Count())
	}
	v.Clear(64)
	if v.Get(64) || v.Count() != 2 {
		t.Fatal("clear failed")
	}
	v.SetAll()
	if v.Count() != 130 {
		t.Errorf("SetAll count = %d", v.Count())
	}
	v.ClearAll()
	if v.Any() {
		t.Fatal("ClearAll failed")
	}
}

func TestBitVecBounds(t *testing.T) {
	v := NewBitVec(10)
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			v.Set(i)
		}()
	}
}

func TestRoundRobinRotation(t *testing.T) {
	h := hw(8, policy.RoundRobin, nil)
	for _, q := range []int{1, 3, 6} {
		h.Activate(q)
	}
	var got []int
	for {
		q, ok, lat := h.Select()
		if !ok {
			break
		}
		if lat != HardwareLatency {
			t.Errorf("latency = %v", lat)
		}
		got = append(got, q)
	}
	want := []int{1, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("selected %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
	// After servicing 6, priority sits at 7; re-activating 1 and 7 must
	// yield 7 first (circular order from current priority).
	h.Activate(1)
	h.Activate(7)
	if q, _, _ := h.Select(); q != 7 {
		t.Errorf("after rotation selected %d, want 7", q)
	}
	if q, _, _ := h.Select(); q != 1 {
		t.Errorf("then selected %d, want 1", q)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// All queues always ready: each must be served exactly once per round.
	const n = 16
	h := hw(n, policy.RoundRobin, nil)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		h.Activate(i)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < n; i++ {
			q, ok, _ := h.Select()
			if !ok {
				t.Fatal("ran dry")
			}
			counts[q]++
			h.Activate(q) // immediately ready again
		}
	}
	for q, c := range counts {
		if c != 10 {
			t.Errorf("queue %d served %d times, want 10", q, c)
		}
	}
}

func TestStrictPriority(t *testing.T) {
	h := hw(8, policy.StrictPriority, nil)
	h.Activate(5)
	h.Activate(2)
	h.Activate(7)
	if q, _, _ := h.Select(); q != 2 {
		t.Errorf("selected %d, want 2", q)
	}
	h.Activate(2) // low QID keeps winning: starvation by design
	if q, _, _ := h.Select(); q != 2 {
		t.Error("strict priority did not prefer lowest QID")
	}
	if q, _, _ := h.Select(); q != 5 {
		t.Error("next should be 5")
	}
}

func TestWeightedRoundRobin(t *testing.T) {
	weights := []int{3, 1, 2}
	h := hw(3, policy.WeightedRoundRobin, weights)
	// Keep all queues perpetually ready; observe service proportions.
	for i := 0; i < 3; i++ {
		h.Activate(i)
	}
	counts := make([]int, 3)
	for i := 0; i < 60; i++ {
		q, ok, _ := h.Select()
		if !ok {
			t.Fatal("ran dry")
		}
		counts[q]++
		h.Activate(q)
	}
	// 60 services over weights 3:1:2 -> 30:10:20.
	if counts[0] != 30 || counts[1] != 10 || counts[2] != 20 {
		t.Errorf("WRR service counts = %v, want [30 10 20]", counts)
	}
}

func TestWRRSkipsEmptyFavored(t *testing.T) {
	weights := []int{4, 1}
	h := hw(2, policy.WeightedRoundRobin, weights)
	h.Activate(0)
	if q, _, _ := h.Select(); q != 0 {
		t.Fatal("first select")
	}
	// Queue 0 ran out of items (not re-activated); queue 1 becomes ready.
	// Despite 0's remaining weight, 1 must be selected.
	h.Activate(1)
	if q, ok, _ := h.Select(); !ok || q != 1 {
		t.Errorf("selected %d, want 1 (favored queue empty)", q)
	}
}

func TestMaskBits(t *testing.T) {
	for _, mk := range []func() Set{
		func() Set { return hw(4, policy.RoundRobin, nil) },
		func() Set { return sw(4, policy.RoundRobin, nil) },
	} {
		s := mk()
		s.Activate(1)
		s.Activate(2)
		s.SetEnabled(1, false) // QWAIT-DISABLE
		if q, ok, _ := s.Select(); !ok || q != 2 {
			t.Errorf("selected %d, want 2 (1 disabled)", q)
		}
		if _, ok, _ := s.Select(); ok {
			t.Error("disabled queue was selected")
		}
		// Ready bit survives the mask: re-enabling reveals it.
		s.SetEnabled(1, true) // QWAIT-ENABLE
		if q, ok, _ := s.Select(); !ok || q != 1 {
			t.Errorf("selected %d after enable, want 1", q)
		}
	}
}

func TestPeekAndCounts(t *testing.T) {
	for _, mk := range []func() Set{
		func() Set { return hw(8, policy.RoundRobin, nil) },
		func() Set { return sw(8, policy.RoundRobin, nil) },
	} {
		s := mk()
		if s.Peek() || s.ReadyCount() != 0 {
			t.Fatal("fresh set not empty")
		}
		s.Activate(3)
		s.Activate(3) // idempotent
		if !s.Peek() || s.ReadyCount() != 1 || !s.IsReady(3) {
			t.Fatal("activate bookkeeping wrong")
		}
		s.SetEnabled(3, false)
		if s.Peek() {
			t.Error("masked-only set peeks true")
		}
		if s.ReadyCount() != 1 {
			t.Error("mask must not clear ready state")
		}
		s.SetEnabled(3, true)
		s.Deactivate(3)
		if s.Peek() || s.IsReady(3) {
			t.Error("deactivate failed")
		}
	}
}

func TestSoftwareLatencyGrowsWithReadyCount(t *testing.T) {
	s := sw(1000, policy.RoundRobin, nil)
	s.Activate(0)
	_, _, lat1 := s.Select()
	for i := 0; i < 1000; i++ {
		s.Activate(i)
	}
	_, _, lat1000 := s.Select()
	if lat1000 <= lat1 {
		t.Errorf("software latency did not grow: %v vs %v", lat1, lat1000)
	}
	want := SoftwareBaseLatency + 1000*SoftwarePerEntryLatency
	if lat1000 != want {
		t.Errorf("lat at 1000 ready = %v, want %v", lat1000, want)
	}
}

func TestHardwareLatencyConstant(t *testing.T) {
	h := hw(1024, policy.RoundRobin, nil)
	for i := 0; i < 1024; i++ {
		h.Activate(i)
	}
	_, _, lat := h.Select()
	if lat != HardwareLatency {
		t.Errorf("hardware latency = %v, want %v", lat, HardwareLatency)
	}
}

func TestSoftwareRoundRobinOrder(t *testing.T) {
	s := sw(8, policy.RoundRobin, nil)
	for _, q := range []int{6, 1, 3} {
		s.Activate(q)
	}
	var got []int
	for {
		q, ok, _ := s.Select()
		if !ok {
			break
		}
		got = append(got, q)
	}
	want := []int{1, 3, 6}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSoftwareWRRProportions(t *testing.T) {
	weights := []int{2, 1}
	s := sw(2, policy.WeightedRoundRobin, weights)
	s.Activate(0)
	s.Activate(1)
	counts := make([]int, 2)
	for i := 0; i < 30; i++ {
		q, ok, _ := s.Select()
		if !ok {
			t.Fatal("ran dry")
		}
		counts[q]++
		s.Activate(q)
	}
	if counts[0] != 20 || counts[1] != 10 {
		t.Errorf("counts = %v, want [20 10]", counts)
	}
}

// Property: hardware and software ready sets select the same QIDs in the
// same order for any activation set, under every discipline — they drive
// the same arbitration layer by construction.
func TestHardwareSoftwareAgree(t *testing.T) {
	weights := make([]int, 256)
	for i := range weights {
		weights[i] = 1 + i%5
	}
	for _, kind := range policy.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			var w []int
			if kind.UsesWeights() {
				w = weights
			}
			f := func(qs []uint8) bool {
				h := hw(256, kind, w)
				s := sw(256, kind, w)
				for _, q := range qs {
					h.Activate(int(q))
					s.Activate(int(q))
				}
				for {
					hq, hok, _ := h.Select()
					sq, sok, _ := s.Select()
					if hok != sok {
						return false
					}
					if !hok {
						return true
					}
					if hq != sq {
						return false
					}
				}
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewHardware(0, policy.Spec{}); !errors.Is(err, policy.ErrBadCount) {
		t.Errorf("NewHardware(0) err = %v, want ErrBadCount", err)
	}
	if _, err := NewSoftware(0, policy.Spec{}); !errors.Is(err, policy.ErrBadCount) {
		t.Errorf("NewSoftware(0) err = %v, want ErrBadCount", err)
	}
	// WRR with nil weights is valid: all-1 default, same as the runtime.
	if _, err := NewHardware(4, policy.Spec{Kind: policy.WeightedRoundRobin}); err != nil {
		t.Errorf("WRR nil weights err = %v, want nil", err)
	}
	var werr *policy.WeightsError
	if _, err := NewHardware(4, policy.Spec{Kind: policy.WeightedRoundRobin, Weights: []int{1, 2}}); !errors.As(err, &werr) {
		t.Errorf("WRR short weights err = %v, want WeightsError", err)
	}
	if _, err := NewSoftware(2, policy.Spec{Kind: policy.WeightedRoundRobin, Weights: []int{1, 0}}); !errors.As(err, &werr) {
		t.Errorf("WRR zero weight err = %v, want WeightsError", err)
	} else if werr.QID != 1 {
		t.Errorf("WeightsError.QID = %d, want 1", werr.QID)
	}
	if _, err := NewHardware(4, policy.Spec{Kind: policy.Kind(99)}); !errors.Is(err, policy.ErrUnknownKind) {
		t.Errorf("unknown kind err = %v, want ErrUnknownKind", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewBitVec(0) did not panic")
			}
		}()
		NewBitVec(0)
	}()
}

// TestChargeBatchDRRWorkShares checks that post-selection Charge keeps
// deficit round-robin work-aware when one queue drains batches: with
// equal weights, a queue consuming 4 items per selection should receive
// one quarter of the selections, so *items* stay balanced.
func TestChargeBatchDRRWorkShares(t *testing.T) {
	for name, rs := range map[string]Set{
		"hardware": hw(2, policy.DeficitRoundRobin, []int{8, 8}),
		"software": sw(2, policy.DeficitRoundRobin, []int{8, 8}),
	} {
		t.Run(name, func(t *testing.T) {
			rs.Activate(0)
			rs.Activate(1)
			items := [2]int{}
			for i := 0; i < 4000; i++ {
				qid, ok, _ := rs.Select()
				if !ok {
					t.Fatal("nothing ready")
				}
				if qid == 0 {
					// Batch consumer: 4 items per selection; Select charged
					// 1, bill the other 3.
					rs.Charge(0, 3)
					items[0] += 4
				} else {
					items[1]++
				}
				rs.Activate(qid)
			}
			total := items[0] + items[1]
			share := float64(items[0]) / float64(total)
			if share < 0.45 || share > 0.55 {
				t.Errorf("batched queue got %.0f%% of items (%v), want ~50%%", share*100, items)
			}
		})
	}
}

// TestChargeNonPositiveIgnored: Charge with cost <= 0 must be a no-op so
// ConsumeN(qid, 1) matches Consume(qid) exactly.
func TestChargeNonPositiveIgnored(t *testing.T) {
	a := hw(2, policy.DeficitRoundRobin, []int{4, 4})
	b := hw(2, policy.DeficitRoundRobin, []int{4, 4})
	order := func(rs *Hardware, chargeZero bool) []int {
		rs.Activate(0)
		rs.Activate(1)
		var got []int
		for i := 0; i < 16; i++ {
			qid, ok, _ := rs.Select()
			if !ok {
				break
			}
			if chargeZero {
				rs.Charge(qid, 0)
				rs.Charge(qid, -3)
			}
			got = append(got, qid)
			rs.Activate(qid)
		}
		return got
	}
	oa, ob := order(a, false), order(b, true)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("zero-cost Charge changed order: %v vs %v", oa, ob)
		}
	}
}

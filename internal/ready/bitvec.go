// Package ready implements HyperPlane's ready set (paper §IV-B): the
// structure that tracks which queues have work and selects the next QID to
// return from QWAIT according to a service policy.
//
// The hardware design is a pair of bit vectors (ready bits, mask bits)
// feeding a Programmable Priority Arbiter (PPA). The service disciplines
// themselves live in internal/policy — the shared arbitration layer this
// package drives; this package contributes the bit substrate, the latency
// models (constant-time Hardware vs per-entry Software, Fig. 13), and a
// gate-level Brent–Kung prefix-network model cross-checked against the
// word-parallel production selector.
package ready

import (
	"math/bits"

	"hyperplane/internal/policy"
)

// BitVec is a fixed-width bit vector over queue IDs.
type BitVec struct {
	words []uint64
	n     int
}

// NewBitVec returns an n-bit vector, all zero.
func NewBitVec(n int) *BitVec {
	if n <= 0 {
		panic("ready: bit vector width must be positive")
	}
	return &BitVec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the width of the vector.
func (v *BitVec) Len() int { return v.n }

func (v *BitVec) check(i int) {
	if i < 0 || i >= v.n {
		panic("ready: bit index out of range")
	}
}

// Set sets bit i.
func (v *BitVec) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (v *BitVec) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports bit i.
func (v *BitVec) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// SetAll sets every bit.
func (v *BitVec) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll zeroes the vector.
func (v *BitVec) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes bits beyond n in the last word.
func (v *BitVec) trim() {
	if rem := v.n & 63; rem != 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Any reports whether any bit is set.
func (v *BitVec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (v *BitVec) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// masked adapts a ready/mask BitVec pair to policy.View (nil mask =
// all-ones).
type masked struct {
	v, m *BitVec
}

// Masked returns a policy.View over (v AND m); a nil mask means no
// masking. Tests use it to drive the arbitration layer over arbitrary bit
// patterns.
func Masked(v, m *BitVec) policy.View { return masked{v: v, m: m} }

func (x masked) Len() int { return x.v.n }

func (x masked) Word(i int) uint64 {
	w := x.v.words[i]
	if x.m != nil {
		w &= x.m.words[i]
	}
	return w
}

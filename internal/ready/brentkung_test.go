package ready

import (
	"testing"
	"testing/quick"

	"hyperplane/internal/policy"
)

func TestBrentKungPrefixORSmall(t *testing.T) {
	in := []bool{false, true, false, false, true, false}
	got := brentKungPrefixOR(in)
	// Exclusive prefix OR: [F, F, T, T, T, T]
	want := []bool{false, false, true, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestBrentKungPrefixORMatchesNaive(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) == 0 {
			return true
		}
		got := brentKungPrefixOR(bits)
		acc := false
		for i, b := range bits {
			if got[i] != acc {
				return false
			}
			acc = acc || b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBrentKungDepthLogarithmic(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 3, 8: 5, 1024: 19, 1000: 19}
	for n, want := range cases {
		if got := brentKungDepth(n); got != want {
			t.Errorf("depth(%d) = %d, want %d", n, got, want)
		}
	}
	// The paper's 1024-entry ready set: 19 OR levels plus grant logic is
	// what makes the 12.25 ns latency plausible at 32 nm.
	if brentKungDepth(1024) >= 1024/8 {
		t.Error("depth is not logarithmic")
	}
}

// Property: all three arbiter implementations — ripple (bit-slice
// reference), the word-parallel policy.SelectFrom production selector,
// and the gate-level Brent–Kung network — agree on every input.
func TestThreeArbitersAgree(t *testing.T) {
	f := func(readyBits, maskBits []bool, prio uint16) bool {
		n := len(readyBits)
		if n == 0 {
			return true
		}
		if n > 200 {
			n = 200
		}
		v := NewBitVec(n)
		m := NewBitVec(n)
		for i := 0; i < n; i++ {
			if readyBits[i] {
				v.Set(i)
			}
			if i < len(maskBits) && maskBits[i] {
				m.Set(i)
			}
		}
		p := int(prio) % n
		q1, ok1 := policy.RippleSelect(func(i int) bool { return v.Get(i) && m.Get(i) }, n, p)
		q2, ok2 := policy.SelectFrom(Masked(v, m), p)
		q3, ok3 := brentKungSelect(v, m, p)
		if ok1 != ok2 || ok2 != ok3 {
			return false
		}
		return !ok1 || (q1 == q2 && q2 == q3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBrentKungNilMask(t *testing.T) {
	v := NewBitVec(10)
	v.Set(7)
	q, ok := brentKungSelect(v, nil, 3)
	if !ok || q != 7 {
		t.Fatalf("select = %d, %v", q, ok)
	}
	// Wrap-around: priority past the only set bit.
	q, ok = brentKungSelect(v, nil, 8)
	if !ok || q != 7 {
		t.Fatalf("wrapped select = %d, %v", q, ok)
	}
}

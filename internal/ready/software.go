package ready

import (
	"fmt"

	"hyperplane/internal/sim"
)

// Software models the paper's software ready-set alternative (§III-B, §V-E):
// QWAIT's selection runs as code that iterates over an unsorted list of
// ready QIDs to find the next one per the policy. Its cost grows with the
// number of ready queues, which is why the hardware PPA wins under
// fully-balanced traffic (Fig. 13).
type Software struct {
	policy   Policy
	n        int
	list     []int // unsorted ready QIDs
	inList   []bool
	enabled  []bool
	last     int // last serviced QID (round-robin origin)
	weights  []int
	counter  int
	base     sim.Time // fixed per-call overhead
	perEntry sim.Time // cost of examining one list entry
}

// Software iteration cost model: a handful of instructions per examined
// entry on a 3 GHz core, plus fixed call overhead.
const (
	SoftwareBaseLatency     = 25 * sim.Nanosecond
	SoftwarePerEntryLatency = sim.Time(1500) // 1.5 ns
)

// NewSoftware builds an n-queue software ready set.
func NewSoftware(n int, policy Policy, weights []int) *Software {
	if n <= 0 {
		panic("ready: queue count must be positive")
	}
	s := &Software{
		policy:   policy,
		n:        n,
		inList:   make([]bool, n),
		enabled:  make([]bool, n),
		last:     n - 1, // so queue 0 is first in circular order
		base:     SoftwareBaseLatency,
		perEntry: SoftwarePerEntryLatency,
	}
	for i := range s.enabled {
		s.enabled[i] = true
	}
	if policy == WeightedRoundRobin {
		if len(weights) != n {
			panic(fmt.Sprintf("ready: WRR needs %d weights, got %d", n, len(weights)))
		}
		s.weights = append([]int(nil), weights...)
		for i, w := range s.weights {
			if w < 1 {
				panic(fmt.Sprintf("ready: WRR weight for qid %d must be >= 1", i))
			}
		}
	}
	return s
}

// Activate implements Set.
func (s *Software) Activate(qid int) {
	if qid < 0 || qid >= s.n {
		panic("ready: qid out of range")
	}
	if !s.inList[qid] {
		s.inList[qid] = true
		s.list = append(s.list, qid)
	}
}

// Deactivate implements Set.
func (s *Software) Deactivate(qid int) {
	if qid < 0 || qid >= s.n {
		panic("ready: qid out of range")
	}
	if !s.inList[qid] {
		return
	}
	s.inList[qid] = false
	for i, q := range s.list {
		if q == qid {
			s.removeAt(i)
			return
		}
	}
}

func (s *Software) removeAt(i int) {
	s.list[i] = s.list[len(s.list)-1]
	s.list = s.list[:len(s.list)-1]
}

// SetEnabled implements Set.
func (s *Software) SetEnabled(qid int, enabled bool) { s.enabled[qid] = enabled }

// IsReady implements Set.
func (s *Software) IsReady(qid int) bool { return s.inList[qid] }

// ReadyCount implements Set.
func (s *Software) ReadyCount() int { return len(s.list) }

// Peek implements Set.
func (s *Software) Peek() bool {
	for _, q := range s.list {
		if s.enabled[q] {
			return true
		}
	}
	return false
}

// circDist returns the circular distance from 'from' (exclusive) to 'to'.
func (s *Software) circDist(from, to int) int {
	d := to - from
	if d <= 0 {
		d += s.n
	}
	return d
}

// Select implements Set: a full scan of the ready list, charged per entry.
func (s *Software) Select() (int, bool, sim.Time) {
	lat := s.base + sim.Time(len(s.list))*s.perEntry
	best, bestIdx := -1, -1
	switch s.policy {
	case StrictPriority:
		for i, q := range s.list {
			if !s.enabled[q] {
				continue
			}
			if best < 0 || q < best {
				best, bestIdx = q, i
			}
		}
	case WeightedRoundRobin:
		// Favored QID keeps being selected while its weight budget lasts.
		if s.counter > 0 && s.inList[s.last] && s.enabled[s.last] {
			for i, q := range s.list {
				if q == s.last {
					s.counter--
					s.removeAt(i)
					s.inList[q] = false
					return q, true, lat
				}
			}
		}
		fallthrough
	case RoundRobin:
		bestDist := s.n + 1
		for i, q := range s.list {
			if !s.enabled[q] {
				continue
			}
			if d := s.circDist(s.last, q); d < bestDist {
				bestDist, best, bestIdx = d, q, i
			}
		}
	}
	if bestIdx < 0 {
		return 0, false, lat
	}
	s.removeAt(bestIdx)
	s.inList[best] = false
	s.last = best
	if s.policy == WeightedRoundRobin {
		s.counter = s.weights[best] - 1
	}
	return best, true, lat
}

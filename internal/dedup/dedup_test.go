package dedup

import "testing"

func TestWindowRememberLookup(t *testing.T) {
	w := NewWindow(4)
	if w.Seen(1) {
		t.Fatal("empty window claims to have seen id 1")
	}
	w.Remember(1, 100)
	v, ok := w.Lookup(1)
	if !ok || v != 100 {
		t.Fatalf("Lookup(1) = %d,%v, want 100,true", v, ok)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	for id := uint64(1); id <= 3; id++ {
		w.Remember(id, id*10)
	}
	w.Remember(4, 40) // evicts 1
	if w.Seen(1) {
		t.Fatal("id 1 should have been evicted")
	}
	for id := uint64(2); id <= 4; id++ {
		if v, ok := w.Lookup(id); !ok || v != id*10 {
			t.Fatalf("Lookup(%d) = %d,%v, want %d,true", id, v, ok, id*10)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
}

func TestWindowReRememberUpdatesValue(t *testing.T) {
	w := NewWindow(2)
	w.Remember(7, 1)
	w.Remember(7, 2)
	if v, _ := w.Lookup(7); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (re-remember must not duplicate)", w.Len())
	}
	// The duplicate insert must not have burned an eviction slot.
	w.Remember(8, 3)
	if !w.Seen(7) || !w.Seen(8) {
		t.Fatal("window of 2 should hold both ids")
	}
}

func TestWindowSizeClamp(t *testing.T) {
	w := NewWindow(0)
	if w.Size() != 1 {
		t.Fatalf("Size = %d, want 1", w.Size())
	}
	w.Remember(1, 0)
	w.Remember(2, 0)
	if w.Seen(1) || !w.Seen(2) {
		t.Fatal("window of 1 should only hold the newest id")
	}
}

// TestWindowZeroAllocWarm pins the no-allocation claim for a warmed
// window: steady-state Lookup+Remember over a rotating id set must not
// allocate (the edge calls this under its per-tenant stager lock on the
// ingest hot path).
func TestWindowZeroAllocWarm(t *testing.T) {
	const size = 64
	w := NewWindow(size)
	id := uint64(0)
	warm := func() {
		for i := 0; i < 4*size; i++ {
			id++
			if _, ok := w.Lookup(id); !ok {
				w.Remember(id, id)
			}
		}
	}
	warm()
	if avg := testing.AllocsPerRun(100, warm); avg != 0 {
		t.Errorf("allocs per warmed window cycle = %v, want 0", avg)
	}
}

// Package dedup is the bounded message-id window shared by the durable
// tier's exactly-once admission and the network edge's idempotency keys.
// A Window remembers the last N distinct 64-bit ids (insertion order,
// oldest evicted first) and an optional 64-bit value per id — the durable
// tier stores nothing, the edge stores the sequence number of the
// original accept so a retried request can be answered identically
// without re-enqueueing.
//
// A Window is not safe for concurrent use; callers serialize on the
// per-tenant admission lock they already hold (the durable tier's
// admission mutex, the edge's stager mutex). Lookup and Remember do not
// allocate once the window has warmed: the map is pre-sized to the
// window bound and never grows past it, and the eviction ring is a fixed
// slice.
package dedup

// Window is a bounded id -> value history with FIFO eviction.
type Window struct {
	vals  map[uint64]uint64
	order []uint64 // insertion-ordered ids backing vals
	pos   int      // next eviction/insertion slot in order
	n     int      // remembered ids (<= len(order))
}

// NewWindow builds a window remembering up to size ids; size < 1 is
// clamped to 1.
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{
		vals:  make(map[uint64]uint64, size),
		order: make([]uint64, size),
	}
}

// Size returns the window bound.
func (w *Window) Size() int { return len(w.order) }

// Len returns the number of ids currently remembered.
func (w *Window) Len() int { return w.n }

// Seen reports whether id is inside the window.
func (w *Window) Seen(id uint64) bool {
	_, ok := w.vals[id]
	return ok
}

// Lookup returns the value remembered for id and whether id is inside
// the window.
func (w *Window) Lookup(id uint64) (uint64, bool) {
	v, ok := w.vals[id]
	return v, ok
}

// AppendIDs appends every remembered id to dst, oldest first — the
// serialization the cluster's tenant handoff ships to the new owner so
// duplicate suppression survives the ownership change.
func (w *Window) AppendIDs(dst []uint64) []uint64 {
	if w.n == 0 {
		return dst
	}
	start := w.pos - w.n
	if start < 0 {
		start += len(w.order)
	}
	for i := 0; i < w.n; i++ {
		dst = append(dst, w.order[(start+i)%len(w.order)])
	}
	return dst
}

// Remember inserts id with the given value, evicting the oldest
// remembered id once the window is full. Re-remembering an id already in
// the window updates its value but not its eviction order.
func (w *Window) Remember(id, val uint64) {
	if _, ok := w.vals[id]; ok {
		w.vals[id] = val
		return
	}
	if w.n == len(w.order) {
		delete(w.vals, w.order[w.pos])
	} else {
		w.n++
	}
	w.order[w.pos] = id
	w.vals[id] = val
	w.pos = (w.pos + 1) % len(w.order)
}

package policy

// The three disciplines of the paper's PPA (§III-A): round-robin,
// weighted round-robin, and strict priority. Their state machines are the
// exact logic the retired ready.Hardware carried — a current-priority
// position plus, for WRR, the favored queue's remaining service budget.

// rrPolicy rotates the current-priority position past each selected QID.
type rrPolicy struct {
	n    int
	prio int
}

func (p *rrPolicy) Kind() Kind              { return RoundRobin }
func (p *rrPolicy) Observe(int)             {}
func (p *rrPolicy) Next(v View) (int, bool) { return SelectFrom(v, p.prio) }

func (p *rrPolicy) Charge(qid, _ int) {
	// Rotate: selected QID gets lowest priority next round.
	p.prio = qid + 1
	if p.prio == p.n {
		p.prio = 0
	}
}

// Steal hands out the queue the rotor would reach last.
func (p *rrPolicy) Steal(v View) (int, bool) { return SelectLast(v, p.prio) }

// ChargeSteal is a no-op: round-robin accounts no work, and the rotor
// stays put so the home service order is unchanged.
func (p *rrPolicy) ChargeSteal(int, int) {}

// wrrPolicy keeps the current-priority position parked on a favored queue
// until its weight budget is spent, then rotates.
type wrrPolicy struct {
	n       int
	prio    int
	counter int // remaining consecutive services for the favored QID
	weights []int
}

func (p *wrrPolicy) Kind() Kind              { return WeightedRoundRobin }
func (p *wrrPolicy) Observe(int)             {}
func (p *wrrPolicy) Next(v View) (int, bool) { return SelectFrom(v, p.prio) }

func (p *wrrPolicy) Charge(qid, cost int) {
	// counter tracks how many more services the favored QID (prio) may
	// receive before the priority rotates past it.
	if qid == p.prio {
		p.counter -= cost
	} else {
		// Favored queue had no work: priority passes to the selected QID,
		// which consumes its own weight now.
		p.prio = qid
		p.counter = p.weights[qid] - cost
	}
	if p.counter <= 0 {
		// Budget exhausted: rotate to the next QID and reload.
		p.prio = qid + 1
		if p.prio == p.n {
			p.prio = 0
		}
		p.counter = p.weights[p.prio]
	}
}

// Steal hands out the queue the rotor would reach last.
func (p *wrrPolicy) Steal(v View) (int, bool) { return SelectLast(v, p.prio) }

// ChargeSteal draws down the favored queue's remaining budget when the
// stolen queue happens to be the favored one (its weight is cross-call
// state); any other queue carries no state between turns, so stealing it
// costs nothing. The rotor is never re-parked: the home consumer's order
// is what it would have been had the stolen queue drained on its own.
func (p *wrrPolicy) ChargeSteal(qid, cost int) {
	if qid != p.prio {
		return
	}
	p.counter -= cost
	if p.counter <= 0 {
		p.prio = qid + 1
		if p.prio == p.n {
			p.prio = 0
		}
		p.counter = p.weights[p.prio]
	}
}

// strictPolicy fixes the current-priority vector at "10...0": the lowest
// ready QID always wins, starving high QIDs by design.
type strictPolicy struct{}

func (strictPolicy) Kind() Kind              { return StrictPriority }
func (strictPolicy) Observe(int)             {}
func (strictPolicy) Charge(int, int)         {}
func (strictPolicy) Next(v View) (int, bool) { return SelectFrom(v, 0) }

// Steal hands out the highest-numbered ready QID — the one strict
// priority would starve longest.
func (strictPolicy) Steal(v View) (int, bool) { return SelectLast(v, 0) }

// ChargeSteal is a no-op: strict priority carries no state at all.
func (strictPolicy) ChargeSteal(int, int) {}

package policy

import "math/bits"

// ewmaPolicy biases service toward queues whose backlog is rising. Each
// queue carries an exponentially-weighted moving average of arrival
// pressure: Observe (the ready-set activation edge — a producer ringing a
// doorbell that found the queue idle) pushes the score toward 1, and
// Charge (a completed service) decays it toward 0. A queue whose
// activations outpace its services — the signature of rising backlog —
// accumulates score and is drained first, before its latency tail grows.
//
// Pure backlog-greedy selection can starve a quiet ready queue behind a
// persistently hot one, so selection ranks queues by score plus an aging
// bonus of 1/(4n) per service round the queue has waited: any ready queue
// overtakes any score difference within at most 4n rounds and the
// discipline stays starvation-free. With no Observe signal at all, every
// score is zero and the aging term plus the circular tie-break reduce it
// to plain round-robin.
type ewmaPolicy struct {
	n     int
	prio  int     // rotor for the equal-rank tie-break
	alpha float64 // smoothing factor
	age   float64 // aging bonus per round waited, 1/(4n)
	round int64   // service counter
	score []float64
	last  []int64 // round of each queue's last service
}

func (p *ewmaPolicy) Kind() Kind { return EWMAAdaptive }

func (p *ewmaPolicy) Observe(qid int) {
	// EWMA of an arrival indicator: each activation pushes toward 1.
	p.score[qid] += p.alpha * (1 - p.score[qid])
}

func (p *ewmaPolicy) Charge(qid, cost int) {
	// Each unit of service decays the pressure estimate toward 0.
	for i := 0; i < cost; i++ {
		p.score[qid] *= 1 - p.alpha
	}
	p.round++
	p.last[qid] = p.round
	p.prio = qid + 1
	if p.prio == p.n {
		p.prio = 0
	}
}

// rank is a queue's effective selection score: backlog pressure plus the
// aging bonus for rounds waited since its last service.
func (p *ewmaPolicy) rank(qid int) float64 {
	return p.score[qid] + p.age*float64(p.round-p.last[qid])
}

// circDist is the circular distance from the rotor to qid, the
// deterministic tie-break that makes equal-rank selection round-robin.
func (p *ewmaPolicy) circDist(qid int) int {
	d := qid - p.prio
	if d < 0 {
		d += p.n
	}
	return d
}

const rankEpsilon = 1e-9

func (p *ewmaPolicy) Next(v View) (int, bool) {
	best, bestDist := -1, 0
	var bestRank float64
	nw := (p.n + 63) >> 6
	for w := 0; w < nw; w++ {
		word := v.Word(w)
		for word != 0 {
			qid := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r, d := p.rank(qid), p.circDist(qid)
			if best < 0 || r > bestRank+rankEpsilon ||
				(r > bestRank-rankEpsilon && d < bestDist) {
				best, bestRank, bestDist = qid, r, d
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Steal is Next inverted: the stealing worker takes the LOWEST-pressure
// ready queue — the one the home consumer would reach last — so the hot
// queues the adaptive discipline is prioritizing stay with their home
// bank. Ties break toward the largest rotor distance (served last).
func (p *ewmaPolicy) Steal(v View) (int, bool) {
	best, bestDist := -1, 0
	var bestRank float64
	nw := (p.n + 63) >> 6
	for w := 0; w < nw; w++ {
		word := v.Word(w)
		for word != 0 {
			qid := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r, d := p.rank(qid), p.circDist(qid)
			if best < 0 || r < bestRank-rankEpsilon ||
				(r < bestRank+rankEpsilon && d > bestDist) {
				best, bestRank, bestDist = qid, r, d
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// ChargeSteal applies the service decay without a service round: the
// stolen work lowers the queue's pressure estimate just like home
// service, but the rotor and round counter belong to the home consumer's
// order and stay put. The wait-age reset uses the current round so the
// just-drained queue does not keep an unearned aging bonus.
func (p *ewmaPolicy) ChargeSteal(qid, cost int) {
	for i := 0; i < cost; i++ {
		p.score[qid] *= 1 - p.alpha
	}
	p.last[qid] = p.round
}

// SetAlpha retunes the smoothing factor live (AlphaSetter). Scores keep
// their current values; only future Observe/Charge steps use the new
// alpha — a governor can stiffen or relax adaptation without resetting
// learned pressure.
func (p *ewmaPolicy) SetAlpha(alpha float64) { p.alpha = alpha }

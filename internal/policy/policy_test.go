package policy

import (
	"errors"
	"testing"
	"testing/quick"
)

// testView is a mutable View for driving policies directly.
type testView struct {
	words []uint64
	n     int
}

func newView(n int) *testView {
	return &testView{words: make([]uint64, (n+63)/64), n: n}
}

func (v *testView) Len() int          { return v.n }
func (v *testView) Word(i int) uint64 { return v.words[i] }
func (v *testView) set(i int)         { v.words[i>>6] |= 1 << uint(i&63) }
func (v *testView) clear(i int)       { v.words[i>>6] &^= 1 << uint(i&63) }

func mustNew(t *testing.T, s Spec, n int) Policy {
	t.Helper()
	p, err := s.New(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// serve drives iters selections over an always-backlogged view (bits are
// never cleared), charging the given cost per selection, and returns the
// per-queue service counts.
func serve(t *testing.T, p Policy, v *testView, iters, cost int) []int {
	t.Helper()
	counts := make([]int, v.n)
	for i := 0; i < iters; i++ {
		q, ok := p.Next(v)
		if !ok {
			t.Fatal("ran dry on a fully-ready view")
		}
		counts[q]++
		p.Charge(q, cost)
	}
	return counts
}

func fullView(n int) *testView {
	v := newView(n)
	for i := 0; i < n; i++ {
		v.set(i)
	}
	return v
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		RoundRobin:         "round-robin",
		WeightedRoundRobin: "weighted-round-robin",
		StrictPriority:     "strict-priority",
		DeficitRoundRobin:  "deficit-round-robin",
		EWMAAdaptive:       "ewma-adaptive",
		Kind(99):           "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if len(Kinds()) != 5 {
		t.Errorf("Kinds() = %v, want 5 disciplines", Kinds())
	}
}

func TestParse(t *testing.T) {
	for _, k := range Kinds() {
		s, err := Parse(k.String())
		if err != nil || s.Kind != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), s, err)
		}
	}
	short := map[string]Kind{
		"rr": RoundRobin, "wrr": WeightedRoundRobin, "strict": StrictPriority,
		"drr": DeficitRoundRobin, "ewma": EWMAAdaptive,
	}
	for name, k := range short {
		s, err := Parse(name)
		if err != nil || s.Kind != k {
			t.Errorf("Parse(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := Parse("fifo"); err == nil {
		t.Error("Parse accepted an unknown name")
	}
}

func TestValidateTypedErrors(t *testing.T) {
	if err := (Spec{}).Validate(0); !errors.Is(err, ErrBadCount) {
		t.Errorf("n=0: %v, want ErrBadCount", err)
	}
	if err := (Spec{Kind: Kind(42)}).Validate(4); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("bad kind: %v, want ErrUnknownKind", err)
	}
	var werr *WeightsError
	err := Spec{Kind: WeightedRoundRobin, Weights: []int{1, 2}}.Validate(4)
	if !errors.As(err, &werr) || werr.Want != 4 || werr.Got != 2 || werr.QID != -1 {
		t.Errorf("short weights: %v", err)
	}
	err = Spec{Kind: DeficitRoundRobin, Weights: []int{1, 0, 3}}.Validate(3)
	if !errors.As(err, &werr) || werr.QID != 1 || werr.Weight != 0 {
		t.Errorf("zero weight: %v", err)
	}
	// nil weights are the documented all-1 default for every substrate.
	if err := (Spec{Kind: WeightedRoundRobin}).Validate(8); err != nil {
		t.Errorf("nil weights: %v, want valid", err)
	}
	// Weights on non-weighted disciplines are ignored, not rejected.
	if err := (Spec{Kind: StrictPriority, Weights: []int{1}}).Validate(8); err != nil {
		t.Errorf("ignored weights: %v, want valid", err)
	}
	if err := (Spec{Kind: EWMAAdaptive, Alpha: 1.5}).Validate(4); !errors.Is(err, ErrBadAlpha) {
		t.Errorf("alpha 1.5: %v, want ErrBadAlpha", err)
	}
	if err := (Spec{Kind: EWMAAdaptive, Alpha: -0.1}).Validate(4); !errors.Is(err, ErrBadAlpha) {
		t.Errorf("alpha -0.1: %v, want ErrBadAlpha", err)
	}
	if err := (Spec{Kind: EWMAAdaptive}).Validate(4); err != nil {
		t.Errorf("alpha 0 (default): %v, want valid", err)
	}
}

func TestSubSlicesWeights(t *testing.T) {
	s := Spec{Kind: WeightedRoundRobin, Weights: []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}}
	// Bank 1 of 4 over 10 queues owns global QIDs 1, 5, 9.
	sub, err := s.Sub(10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{11, 15, 19}
	if len(sub.Weights) != len(want) {
		t.Fatalf("sub weights = %v, want %v", sub.Weights, want)
	}
	for i := range want {
		if sub.Weights[i] != want[i] {
			t.Fatalf("sub weights = %v, want %v", sub.Weights, want)
		}
	}
	// Non-weighted disciplines and nil weights pass through untouched.
	if sub, err := (Spec{Kind: RoundRobin}).Sub(10, 4, 1); err != nil || sub.Weights != nil {
		t.Errorf("RR sub = %v, %v", sub, err)
	}
	if _, err := s.Sub(10, 0, 0); err == nil {
		t.Error("stride 0 accepted")
	}
	if _, err := s.Sub(10, 4, 4); err == nil {
		t.Error("offset >= stride accepted")
	}
	if _, err := (Spec{Kind: WeightedRoundRobin, Weights: []int{1}}).Sub(10, 4, 1); err == nil {
		t.Error("Sub skipped validation")
	}
}

func TestWRRServiceRatios(t *testing.T) {
	cases := []struct {
		weights []int
		iters   int
		want    []int
	}{
		{[]int{3, 1, 2}, 60, []int{30, 10, 20}},
		{[]int{2, 1}, 30, []int{20, 10}},
		{[]int{1, 1, 1, 1}, 40, []int{10, 10, 10, 10}},
	}
	for _, c := range cases {
		n := len(c.weights)
		p := mustNew(t, Spec{Kind: WeightedRoundRobin, Weights: c.weights}, n)
		counts := serve(t, p, fullView(n), c.iters, 1)
		for q := range c.want {
			if counts[q] != c.want[q] {
				t.Errorf("weights %v: counts = %v, want %v", c.weights, counts, c.want)
				break
			}
		}
	}
}

// With unit costs DRR must service in exactly WRR's order: the quantum is
// spent one service at a time, which is precisely the WRR counter.
func TestDRRUnitCostMatchesWRR(t *testing.T) {
	weights := []int{3, 1, 2}
	n := len(weights)
	wrr := mustNew(t, Spec{Kind: WeightedRoundRobin, Weights: weights}, n)
	drr := mustNew(t, Spec{Kind: DeficitRoundRobin, Weights: weights}, n)
	v := fullView(n)
	for i := 0; i < 200; i++ {
		wq, wok := wrr.Next(v)
		dq, dok := drr.Next(v)
		if wok != dok || wq != dq {
			t.Fatalf("step %d: wrr=(%d,%v) drr=(%d,%v)", i, wq, wok, dq, dok)
		}
		wrr.Charge(wq, 1)
		drr.Charge(dq, 1)
	}
}

// Work-awareness: with every service costing 2 units and weights {4, 3},
// WRR forgives queue 1's overdraw each round (the counter reloads to the
// full weight on rotation) and degenerates to 1:1, while DRR carries the
// debt across rounds — queue 1 alternates between 2 and 1 services per
// round, restoring the 4:3 work share the weights ask for.
func TestDRRCostAware(t *testing.T) {
	weights := []int{4, 3}
	drr := mustNew(t, Spec{Kind: DeficitRoundRobin, Weights: weights}, 2)
	counts := serve(t, drr, fullView(2), 70, 2)
	if counts[0] != 40 || counts[1] != 30 {
		t.Errorf("DRR cost-2 counts = %v, want [40 30] (4:3 by work)", counts)
	}
	wrr := mustNew(t, Spec{Kind: WeightedRoundRobin, Weights: weights}, 2)
	counts = serve(t, wrr, fullView(2), 68, 2)
	if counts[0] != 34 || counts[1] != 34 {
		t.Errorf("WRR cost-2 counts = %v, want [34 34] (overdraw forgiven)", counts)
	}
}

func TestStrictPriorityStarves(t *testing.T) {
	p := mustNew(t, Spec{Kind: StrictPriority}, 8)
	v := newView(8)
	v.set(0)
	v.set(5)
	counts := serve(t, p, v, 50, 1)
	if counts[0] != 50 || counts[5] != 0 {
		t.Errorf("counts = %v: strict priority must starve queue 5 behind ready queue 0", counts)
	}
}

// The rotor guarantees DRR visits every ready queue once per round even
// when one queue is deep in debt from overdrawing.
func TestDRRNoStarvation(t *testing.T) {
	p := mustNew(t, Spec{Kind: DeficitRoundRobin, Weights: []int{1, 8, 1, 1}}, 4)
	counts := serve(t, p, fullView(4), 200, 3) // every service overdraws quantum-1 queues
	for q, c := range counts {
		if c == 0 {
			t.Fatalf("queue %d starved: counts = %v", q, counts)
		}
	}
}

func TestEWMABiasTowardRisingBacklog(t *testing.T) {
	p := mustNew(t, Spec{Kind: EWMAAdaptive}, 4)
	// Queue 2's backlog is rising: repeated activation edges.
	p.Observe(2)
	p.Observe(2)
	p.Observe(2)
	if q, ok := p.Next(fullView(4)); !ok || q != 2 {
		t.Errorf("Next = %d, want hot queue 2", q)
	}
}

// With no arrival signal every score is zero and the aging bonus plus the
// circular tie-break must reduce EWMA to plain round-robin.
func TestEWMAEqualScoresIsRoundRobin(t *testing.T) {
	p := mustNew(t, Spec{Kind: EWMAAdaptive}, 4)
	v := fullView(4)
	var got []int
	for i := 0; i < 8; i++ {
		q, ok := p.Next(v)
		if !ok {
			t.Fatal("dry")
		}
		got = append(got, q)
		p.Charge(q, 1)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// Starvation freedom: a persistently hot queue (fresh activation edge
// before every selection) must not shut out quiet ready queues — the
// aging bonus lets any waiter overtake any score gap within ~4n rounds.
func TestEWMANoStarvation(t *testing.T) {
	const n = 8
	p := mustNew(t, Spec{Kind: EWMAAdaptive}, n)
	v := fullView(n)
	counts := make([]int, n)
	for i := 0; i < 40*n; i++ {
		p.Observe(0) // queue 0 stays red-hot
		q, ok := p.Next(v)
		if !ok {
			t.Fatal("dry")
		}
		counts[q]++
		p.Charge(q, 1)
	}
	for q, c := range counts {
		if c == 0 {
			t.Fatalf("queue %d starved: counts = %v", q, counts)
		}
	}
	if counts[0] <= counts[1] {
		t.Errorf("hot queue not favored: counts = %v", counts)
	}
}

// Observe must be a no-op for the static disciplines.
func TestObserveIgnoredByStaticPolicies(t *testing.T) {
	for _, kind := range []Kind{RoundRobin, WeightedRoundRobin, StrictPriority} {
		p := mustNew(t, Spec{Kind: kind}, 4)
		v := fullView(4)
		p.Observe(3)
		p.Observe(3)
		if q, _ := p.Next(v); q != 0 {
			t.Errorf("%v: Observe changed selection to %d", kind, q)
		}
	}
}

// Property: the word-parallel circular selector agrees with the bit-slice
// ripple reference on every input.
func TestSelectFromMatchesRipple(t *testing.T) {
	f := func(bits []bool, prio uint16) bool {
		n := len(bits)
		if n == 0 {
			return true
		}
		if n > 300 {
			n = 300
		}
		v := newView(n)
		for i := 0; i < n; i++ {
			if bits[i] {
				v.set(i)
			}
		}
		p := int(prio) % n
		gq, gok := SelectFrom(v, p)
		wq, wok := RippleSelect(func(i int) bool { return bits[i] }, n, p)
		return gok == wok && (!gok || gq == wq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHas(t *testing.T) {
	v := newView(130)
	v.set(0)
	v.set(129)
	if !Has(v, 0) || !Has(v, 129) || Has(v, 64) {
		t.Error("Has mismatch")
	}
	v.clear(129)
	if Has(v, 129) {
		t.Error("Has after clear")
	}
}

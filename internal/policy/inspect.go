package policy

// Inspection is a point-in-time copy of a policy instance's internal
// arbitration state, the observability hook behind the telemetry plane's
// /debug/tenants endpoint: operators can see *why* the arbiter is
// servicing what it services — DRR debt, EWMA pressure scores, the WRR
// budget — without any way to mutate it. All slices are fresh copies
// indexed by the policy's local queue index; callers over a sharded ready
// set scatter them back to global QIDs (Notifier.InspectPolicy).
//
// Vector fields are nil when the discipline has no such state.
type Inspection struct {
	// Kind is the discipline.
	Kind Kind
	// Rotor is the current-priority position the next selection scans
	// from (all disciplines except strict priority).
	Rotor int
	// Counter is WRR's remaining consecutive-service budget for the
	// favored queue.
	Counter int
	// Weights are the static per-queue service weights (WRR) or per-round
	// quanta (DRR).
	Weights []int
	// Deficit is DRR's remaining per-queue work credit (negative =
	// carried debt).
	Deficit []int64
	// Score is EWMAAdaptive's per-queue arrival-pressure estimate.
	Score []float64
	// Round is EWMAAdaptive's service-round counter.
	Round int64
}

// Inspector is implemented by policies that expose internal state to the
// telemetry plane.
type Inspector interface {
	// Inspect returns a copy of the policy's current state. Like every
	// other Policy method it must be called under the owner's lock.
	Inspect() Inspection
}

// Inspect returns a snapshot of p's arbitration state. ok is false when p
// does not implement Inspector (the snapshot then carries only the Kind).
func Inspect(p Policy) (Inspection, bool) {
	if i, ok := p.(Inspector); ok {
		return i.Inspect(), true
	}
	return Inspection{Kind: p.Kind()}, false
}

func (p *rrPolicy) Inspect() Inspection {
	return Inspection{Kind: RoundRobin, Rotor: p.prio}
}

func (p *wrrPolicy) Inspect() Inspection {
	w := make([]int, len(p.weights))
	copy(w, p.weights)
	return Inspection{Kind: WeightedRoundRobin, Rotor: p.prio, Counter: p.counter, Weights: w}
}

func (strictPolicy) Inspect() Inspection {
	return Inspection{Kind: StrictPriority}
}

func (p *drrPolicy) Inspect() Inspection {
	w := make([]int, p.n)
	d := make([]int64, p.n)
	for i := 0; i < p.n; i++ {
		w[i] = int(p.quantum[i])
		d[i] = p.deficit[i]
	}
	return Inspection{Kind: DeficitRoundRobin, Rotor: p.prio, Weights: w, Deficit: d}
}

func (p *ewmaPolicy) Inspect() Inspection {
	s := make([]float64, p.n)
	copy(s, p.score)
	return Inspection{Kind: EWMAAdaptive, Rotor: p.prio, Score: s, Round: p.round}
}

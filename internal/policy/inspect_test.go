package policy

import "testing"

// mustPolicy builds a policy instance or fails the test.
func mustPolicy(t *testing.T, s Spec, n int) Policy {
	t.Helper()
	p, err := s.New(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInspectAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		p := mustPolicy(t, Spec{Kind: kind}, 4)
		insp, ok := Inspect(p)
		if !ok {
			t.Errorf("%v: no Inspector", kind)
		}
		if insp.Kind != kind {
			t.Errorf("%v: Inspect kind = %v", kind, insp.Kind)
		}
	}
}

func TestInspectDRRDeficit(t *testing.T) {
	p := mustPolicy(t, Spec{Kind: DeficitRoundRobin, Weights: []int{4, 1}}, 2)
	v := newView(2)
	v.set(0)
	v.set(1)
	qid, ok := p.Next(v)
	if !ok || qid != 0 {
		t.Fatalf("Next = %d, %v", qid, ok)
	}
	p.Charge(0, 1) // grants quantum 4, spends 1 → deficit 3
	insp, _ := Inspect(p)
	if len(insp.Deficit) != 2 || len(insp.Weights) != 2 {
		t.Fatalf("vector lengths: %+v", insp)
	}
	if insp.Deficit[0] != 3 {
		t.Errorf("deficit[0] = %d, want 3", insp.Deficit[0])
	}
	if insp.Weights[0] != 4 || insp.Weights[1] != 1 {
		t.Errorf("weights = %v", insp.Weights)
	}
	// The snapshot is a copy: mutating it must not corrupt the policy.
	insp.Deficit[0] = -999
	insp2, _ := Inspect(p)
	if insp2.Deficit[0] != 3 {
		t.Error("Inspect returned a live slice, not a copy")
	}
}

func TestInspectEWMAScore(t *testing.T) {
	p := mustPolicy(t, Spec{Kind: EWMAAdaptive, Alpha: 0.5}, 3)
	p.Observe(2)
	p.Observe(2)
	insp, _ := Inspect(p)
	if len(insp.Score) != 3 {
		t.Fatalf("score length %d", len(insp.Score))
	}
	if insp.Score[2] <= insp.Score[0] {
		t.Errorf("observed queue score %v not above idle %v", insp.Score[2], insp.Score[0])
	}
	// 0.5 + 0.5*0.5 = 0.75 after two observations at alpha 0.5.
	if insp.Score[2] < 0.74 || insp.Score[2] > 0.76 {
		t.Errorf("score[2] = %v, want 0.75", insp.Score[2])
	}
}

func TestInspectWRRBudget(t *testing.T) {
	p := mustPolicy(t, Spec{Kind: WeightedRoundRobin, Weights: []int{3, 1}}, 2)
	v := newView(2)
	v.set(0)
	qid, _ := p.Next(v)
	p.Charge(qid, 1)
	insp, _ := Inspect(p)
	if insp.Counter != 2 {
		t.Errorf("counter = %d, want 2 remaining of weight 3", insp.Counter)
	}
	if insp.Rotor != 0 {
		t.Errorf("rotor = %d, want favored queue 0", insp.Rotor)
	}
}

// Package policy is HyperPlane's pluggable service-policy arbitration
// layer: the one implementation of queue-service disciplines shared by
// every ready-set substrate in the repository — the cycle-accurate
// hardware PPA model (internal/ready.Hardware), the software ready-set
// baseline (internal/ready.Software), and the production banked runtime
// (internal/nshard.Bank).
//
// The paper's Programmable Priority Arbiter (§III-A, §IV-B) is one
// selection mechanism parameterized by a discipline: the current-priority
// vector and weight counters are *policy state*, while the ready/mask bit
// substrate is *queue state*. This package keeps that split explicit: a
// Policy owns all rotation/weight/deficit state and selects over a View —
// a read-only bit view of "ready AND enabled" — while the substrate owns
// the bits. Because the simulator and the runtime drive the very same
// policy code, their service order is identical by construction, which the
// differential fuzz test in internal/nshard asserts for every discipline.
//
// Five disciplines are built in: the paper's RoundRobin,
// WeightedRoundRobin and StrictPriority, plus two software extensions the
// old per-substrate copies made impractical — DeficitRoundRobin
// (work-aware fairness with per-queue quanta) and EWMAAdaptive (biases
// toward queues with rising backlog, with an aging term that keeps it
// starvation-free).
package policy

import (
	"errors"
	"fmt"
)

// Kind identifies a service discipline.
type Kind uint8

// Service disciplines.
const (
	// RoundRobin gives the selected QID lowest priority in the next round.
	RoundRobin Kind = iota
	// WeightedRoundRobin lets a selected queue be serviced for weight
	// consecutive rounds before the priority rotates.
	WeightedRoundRobin
	// StrictPriority always prefers lower-numbered QIDs. The paper notes
	// it can starve high-numbered queues and is rarely used in practice.
	StrictPriority
	// DeficitRoundRobin grants each queue a per-round quantum of work
	// credit (its weight); Charge costs draw the credit down, so queues
	// doing large batches yield proportionally sooner. With unit costs it
	// degenerates to WeightedRoundRobin.
	DeficitRoundRobin
	// EWMAAdaptive scores queues by an exponentially-weighted moving
	// average of arrival pressure (Observe raises, Charge decays) and
	// services the highest-scoring ready queue, so rising backlog is
	// drained first. An aging bonus bounds how long a ready queue can be
	// passed over, keeping the discipline starvation-free.
	EWMAAdaptive

	numKinds
)

func (k Kind) String() string {
	switch k {
	case RoundRobin:
		return "round-robin"
	case WeightedRoundRobin:
		return "weighted-round-robin"
	case StrictPriority:
		return "strict-priority"
	case DeficitRoundRobin:
		return "deficit-round-robin"
	case EWMAAdaptive:
		return "ewma-adaptive"
	}
	return "unknown"
}

// UsesWeights reports whether the discipline consumes per-queue weights.
func (k Kind) UsesWeights() bool {
	return k == WeightedRoundRobin || k == DeficitRoundRobin
}

// Kinds lists the built-in disciplines.
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// View is a read-only bit view of the arbitration input: bit i is set iff
// queue i is ready AND enabled. Bits at or beyond Len are zero.
type View interface {
	// Len returns the number of queues.
	Len() int
	// Word returns the w'th 64-bit chunk of the view.
	Word(w int) uint64
}

// A Policy is one service-discipline instance over a fixed number of
// queues. It owns all selection state (priority rotor, weight counters,
// deficits, scores); the caller owns the ready bits. Instances are not
// safe for concurrent use — each ready-set bank builds its own from a
// Spec and serializes access under the bank lock.
type Policy interface {
	// Next returns the QID the discipline selects among the asserted bits
	// of v, without committing any state. ok is false when no bit is set.
	Next(v View) (qid int, ok bool)
	// Charge commits the selection of qid with the given work cost
	// (>= 1; batch-aware drivers may pass bytes or items), consuming
	// budget and rotating priority per the discipline. It must follow a
	// successful Next returning qid.
	Charge(qid, cost int)
	// Observe records an arrival signal for qid (a queue transitioning to
	// ready). Adaptive disciplines use it to track backlog pressure;
	// static ones ignore it.
	Observe(qid int)
	// Steal returns the QID a work-stealing consumer should claim among
	// the asserted bits of v: the queue the discipline would service
	// *last*, so removing it least disturbs the pending home service
	// order. Like Next it commits nothing; a successful steal is followed
	// by ChargeSteal, not Charge.
	Steal(v View) (qid int, ok bool)
	// ChargeSteal commits a steal of qid with the given work cost: it
	// bills the work to the queue's fairness accounting (DRR deficit,
	// EWMA score) WITHOUT advancing the priority rotor or the current
	// service turn, so the home consumer's service order is exactly what
	// it would have been had the stolen queue simply drained on its own.
	ChargeSteal(qid, cost int)
	// Kind reports the discipline.
	Kind() Kind
}

// DefaultAlpha is the EWMAAdaptive smoothing factor used when Spec.Alpha
// is zero.
const DefaultAlpha = 0.25

// Errors returned by Spec validation. WeightsError carries the detail for
// weight problems.
var (
	ErrUnknownKind = errors.New("policy: unknown policy kind")
	ErrBadCount    = errors.New("policy: queue count must be positive")
	ErrBadAlpha    = errors.New("policy: EWMA alpha must be in (0, 1]")
)

// WeightsError reports an invalid per-queue weight configuration: either
// a length mismatch (Got != Want, QID < 0) or a non-positive entry
// (QID >= 0 with its Weight).
type WeightsError struct {
	Want   int // required weight count (the queue count)
	Got    int // provided weight count
	QID    int // offending entry, -1 for length errors
	Weight int // offending value when QID >= 0
}

func (e *WeightsError) Error() string {
	if e.QID < 0 {
		return fmt.Sprintf("policy: need %d weights, got %d", e.Want, e.Got)
	}
	return fmt.Sprintf("policy: weight for qid %d must be >= 1, got %d", e.QID, e.Weight)
}

// Spec is a policy constructor: a discipline plus its parameters. The
// zero value is plain round-robin. A Spec is inert configuration — every
// ready set (and every bank of a sharded ready set, via Sub) builds its
// own Policy instance from it with New.
type Spec struct {
	// Kind selects the discipline.
	Kind Kind
	// Weights are per-QID service weights (WeightedRoundRobin: consecutive
	// services per round; DeficitRoundRobin: work quantum per round). nil
	// defaults to all-1; otherwise the length must equal the queue count
	// and every entry must be >= 1. Ignored by non-weighted disciplines.
	Weights []int
	// Alpha is the EWMAAdaptive smoothing factor in (0, 1]; 0 selects
	// DefaultAlpha. Ignored by other disciplines.
	Alpha float64
}

// String returns the discipline name.
func (s Spec) String() string { return s.Kind.String() }

// Validate checks the Spec against a queue count. It is the single
// weights/parameter validation for every ready-set implementation.
func (s Spec) Validate(n int) error {
	if n <= 0 {
		return ErrBadCount
	}
	if s.Kind >= numKinds {
		return ErrUnknownKind
	}
	if s.Kind.UsesWeights() && s.Weights != nil {
		if len(s.Weights) != n {
			return &WeightsError{Want: n, Got: len(s.Weights), QID: -1}
		}
		for i, w := range s.Weights {
			if w < 1 {
				return &WeightsError{Want: n, Got: n, QID: i, Weight: w}
			}
		}
	}
	if s.Kind == EWMAAdaptive && (s.Alpha < 0 || s.Alpha > 1) {
		return ErrBadAlpha
	}
	return nil
}

// weights returns the effective weight slice for n queues (a copy; nil
// Weights defaults to all-1). Callers must have validated first.
func (s Spec) weights(n int) []int {
	w := make([]int, n)
	for i := range w {
		if s.Weights != nil {
			w[i] = s.Weights[i]
		} else {
			w[i] = 1
		}
	}
	return w
}

// New validates the Spec for n queues and builds a fresh Policy instance.
func (s Spec) New(n int) (Policy, error) {
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	switch s.Kind {
	case RoundRobin:
		return &rrPolicy{n: n}, nil
	case WeightedRoundRobin:
		w := s.weights(n)
		return &wrrPolicy{n: n, weights: w, counter: w[0]}, nil
	case StrictPriority:
		return strictPolicy{}, nil
	case DeficitRoundRobin:
		w := s.weights(n)
		q := make([]int64, n)
		for i, v := range w {
			q[i] = int64(v)
		}
		return &drrPolicy{n: n, cur: -1, quantum: q, deficit: make([]int64, n)}, nil
	case EWMAAdaptive:
		a := s.Alpha
		if a == 0 {
			a = DefaultAlpha
		}
		return &ewmaPolicy{
			n:     n,
			alpha: a,
			age:   1 / float64(4*n),
			score: make([]float64, n),
			last:  make([]int64, n),
		}, nil
	}
	return nil, ErrUnknownKind
}

// Sub derives the Spec for one bank of a sharded ready set owning the
// local indices {offset, offset+stride, 2*stride+offset, ...} below
// total: per-queue weights follow their queue into the bank. The banked
// Notifier uses it so per-bank policy state sees exactly its own queues'
// parameters.
func (s Spec) Sub(total, stride, offset int) (Spec, error) {
	if err := s.Validate(total); err != nil {
		return Spec{}, err
	}
	if stride < 1 || offset < 0 || offset >= stride || offset >= total {
		return Spec{}, fmt.Errorf("policy: bad shard geometry stride=%d offset=%d total=%d", stride, offset, total)
	}
	out := s
	if s.Weights != nil && s.Kind.UsesWeights() {
		localN := (total - offset + stride - 1) / stride
		lw := make([]int, localN)
		for l := range lw {
			lw[l] = s.Weights[l*stride+offset]
		}
		out.Weights = lw
	}
	return out, nil
}

// Parse maps a policy name — short ("rr", "wrr", "strict", "drr",
// "ewma") or canonical ("round-robin", ...) — to a Spec with default
// parameters. CLI tools share it so every binary accepts the same names.
func Parse(name string) (Spec, error) {
	switch name {
	case "rr", "round-robin":
		return Spec{Kind: RoundRobin}, nil
	case "wrr", "weighted-round-robin":
		return Spec{Kind: WeightedRoundRobin}, nil
	case "strict", "strict-priority":
		return Spec{Kind: StrictPriority}, nil
	case "drr", "deficit-round-robin":
		return Spec{Kind: DeficitRoundRobin}, nil
	case "ewma", "ewma-adaptive":
		return Spec{Kind: EWMAAdaptive}, nil
	}
	return Spec{}, fmt.Errorf("policy: unknown policy %q", name)
}

// AlphaSetter is implemented by disciplines whose smoothing factor can
// be retuned while running (EWMAAdaptive). Callers must hold whatever
// lock serializes the policy's other methods.
type AlphaSetter interface {
	SetAlpha(alpha float64)
}

// SetAlpha retunes p's smoothing factor if its discipline has one,
// reporting whether it applied. Alpha outside (0, 1] never applies.
func SetAlpha(p Policy, alpha float64) bool {
	if p == nil || alpha <= 0 || alpha > 1 {
		return false
	}
	s, ok := p.(AlphaSetter)
	if ok {
		s.SetAlpha(alpha)
	}
	return ok
}

package policy

// drrPolicy is deficit round-robin (Shreedhar & Varghese) adapted to the
// PPA's bit-vector substrate: a rotor visits ready queues in circular
// order; each visit grants the queue its quantum of work credit, and
// Charge costs draw the credit down, so a queue consuming large batches
// (or bytes, when the driver charges them) yields its turn proportionally
// sooner. With unit costs it services exactly like weighted round-robin.
//
// Two deviations from the textbook algorithm, forced by the substrate
// (the policy sees ready bits, not queue departures):
//
//   - Credit left when a queue drains is capped at one quantum when the
//     rotor moves on, instead of being reset to zero — the policy cannot
//     observe "queue went empty", only "bit no longer set at Next".
//   - A queue that overdraws (one Charge cost larger than its remaining
//     credit) carries the debt into its next visit, shortening that
//     burst. The rotor still visits every ready queue once per round, so
//     no queue starves regardless of debt.
type drrPolicy struct {
	n    int
	prio int // rotor: where the next visit scans from
	cur  int // queue currently spending its credit, -1 between visits

	quantum []int64 // per-round credit grant (the configured weight)
	deficit []int64 // remaining credit (may go negative on overdraw)
}

func (p *drrPolicy) Kind() Kind  { return DeficitRoundRobin }
func (p *drrPolicy) Observe(int) {}

func (p *drrPolicy) Next(v View) (int, bool) {
	// Keep serving the current queue while it is ready and in credit.
	if p.cur >= 0 && p.deficit[p.cur] > 0 && Has(v, p.cur) {
		return p.cur, true
	}
	return SelectFrom(v, p.prio)
}

func (p *drrPolicy) Charge(qid, cost int) {
	if qid != p.cur {
		// Rotor moved on: cap the previous queue's banked credit at one
		// quantum so an idle queue cannot hoard rounds of credit.
		if p.cur >= 0 && p.deficit[p.cur] > p.quantum[p.cur] {
			p.deficit[p.cur] = p.quantum[p.cur]
		}
		p.cur = qid
		p.deficit[qid] += p.quantum[qid]
	}
	p.deficit[qid] -= int64(cost)
	if p.deficit[qid] <= 0 {
		// Credit spent (or overdrawn): the turn ends, rotor rotates past.
		p.prio = qid + 1
		if p.prio == p.n {
			p.prio = 0
		}
		p.cur = -1
	}
}

// Steal hands out the queue the rotor would reach last. That may be the
// in-credit current queue when it is the only ready one — its remaining
// turn is then simply spent through ChargeSteal debt.
func (p *drrPolicy) Steal(v View) (int, bool) { return SelectLast(v, p.prio) }

// ChargeSteal draws the stolen work against the queue's credit without
// touching the rotor or the current turn: overdraw carries as debt into
// the queue's next quantum grant, exactly like a home-consumer overdraw,
// so long-run service share stays proportional to the configured quantum
// no matter how much of a queue's work is stolen.
func (p *drrPolicy) ChargeSteal(qid, cost int) {
	p.deficit[qid] -= int64(cost)
}

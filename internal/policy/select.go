package policy

import "math/bits"

// This file holds the selection primitive every discipline builds on: the
// software analogue of the paper's Programmable Priority Arbiter datapath
// (§IV-B, Figs. 6-7). Two models are provided:
//
//   - SelectFrom: the production design — thermometer coding to eliminate
//     the wrap-around plus word-parallel scanning, the software analogue
//     of the Brent–Kung parallel-prefix network the paper synthesizes
//     (internal/ready still carries the gate-level prefix-network model
//     for cross-checking).
//   - RippleSelect: the bit-slice ripple-priority reference — O(n) per
//     selection, mirroring Fig. 7's Pin/Pout chain including the
//     wrap-around connection.
//
// Both must agree bit-for-bit; the test suite property-checks equivalence.

// SelectFrom returns the first asserted bit of v at or after prio in
// circular order. This is the only word-parallel priority-select
// implementation in the repository; the hardware PPA model, the software
// ready set, and the banked runtime all arbitrate through it.
func SelectFrom(v View, prio int) (int, bool) {
	n := v.Len()
	nw := (n + 63) >> 6
	startWord := prio >> 6
	startBit := uint(prio & 63)

	// Segment [prio, n): mask off bits below prio in the first word.
	w := v.Word(startWord) &^ ((1 << startBit) - 1)
	if w != 0 {
		return startWord<<6 + bits.TrailingZeros64(w), true
	}
	for i := startWord + 1; i < nw; i++ {
		if w := v.Word(i); w != 0 {
			return i<<6 + bits.TrailingZeros64(w), true
		}
	}
	// Wrapped segment [0, prio).
	for i := 0; i <= startWord && i < nw; i++ {
		w := v.Word(i)
		if i == startWord {
			w &= (1 << startBit) - 1
		}
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// SelectLast returns the asserted bit of v that is *last* in circular
// order starting at prio — the queue the discipline would reach last, and
// therefore the victim whose removal least disturbs the pending service
// order. It is the selection primitive of the steal path (Policy.Steal):
// a stealing worker takes from the back of the victim bank's service
// order, mirroring the deque discipline of classic work stealing. It is
// SelectFrom run in the opposite direction: highest asserted bit of the
// wrapped segment [0, prio) first, else highest asserted bit of
// [prio, n).
func SelectLast(v View, prio int) (int, bool) {
	n := v.Len()
	nw := (n + 63) >> 6
	startWord := prio >> 6
	startBit := uint(prio & 63)

	// Wrapped segment [0, prio): its highest asserted bit is the last
	// queue the rotor would reach.
	for i := startWord; i >= 0; i-- {
		if i >= nw {
			continue
		}
		w := v.Word(i)
		if i == startWord {
			w &= (1 << startBit) - 1
		}
		if w != 0 {
			return i<<6 + 63 - bits.LeadingZeros64(w), true
		}
	}
	// Segment [prio, n): highest asserted bit.
	for i := nw - 1; i >= startWord; i-- {
		w := v.Word(i)
		if i == startWord {
			w &^= (1 << startBit) - 1
		}
		if w != 0 {
			return i<<6 + 63 - bits.LeadingZeros64(w), true
		}
	}
	return 0, false
}

// RippleSelectLast is the O(n) reference for SelectLast: walk the circular
// order backwards from the position just before prio. Tests cross-check
// the word-parallel implementation against it.
func RippleSelectLast(readyMasked func(int) bool, n, prio int) (int, bool) {
	for k := 1; k <= n; k++ {
		i := prio - k
		if i < 0 {
			i += n // wrap-around connection, reversed
		}
		if readyMasked(i) {
			return i, true
		}
	}
	return 0, false
}

// RippleSelect walks bit positions one at a time starting at prio,
// propagating priority exactly like the Pin/Pout ripple chain. It is the
// reference model tests cross-check SelectFrom (and the gate-level
// Brent–Kung network in internal/ready) against.
func RippleSelect(readyMasked func(int) bool, n, prio int) (int, bool) {
	for k := 0; k < n; k++ {
		i := prio + k
		if i >= n {
			i -= n // wrap-around connection
		}
		if readyMasked(i) {
			return i, true
		}
	}
	return 0, false
}

// Has reports whether bit qid of v is asserted.
func Has(v View, qid int) bool {
	return v.Word(qid>>6)&(1<<uint(qid&63)) != 0
}

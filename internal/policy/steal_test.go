package policy

import (
	"math/rand"
	"testing"
)

// TestSelectLastAgainstRipple property-checks the word-parallel
// SelectLast against the O(n) reversed ripple reference across random
// views, sizes, and rotor positions — the same contract SelectFrom has
// with RippleSelect.
func TestSelectLastAgainstRipple(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(200)
		v := newView(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.set(i)
			}
		}
		prio := rng.Intn(n)
		got, gok := SelectLast(v, prio)
		want, wok := RippleSelectLast(func(i int) bool {
			return v.words[i>>6]&(1<<uint(i&63)) != 0
		}, n, prio)
		if gok != wok || (gok && got != want) {
			t.Fatalf("n=%d prio=%d words=%x: SelectLast=(%d,%v) ripple=(%d,%v)",
				n, prio, v.words, got, gok, want, wok)
		}
	}
}

// TestSelectLastOrder pins the semantics: the steal victim is the queue
// Next would reach last, i.e. repeatedly stealing from a static view
// yields exactly the reverse of repeatedly selecting from it.
func TestSelectLastOrder(t *testing.T) {
	const n = 70
	v := newView(n)
	for _, q := range []int{2, 5, 63, 64, 69} {
		v.set(q)
	}
	for _, prio := range []int{0, 3, 5, 64, 69} {
		var forward, backward []int
		fv := *v
		fw := &testView{words: append([]uint64(nil), fv.words...), n: n}
		for {
			q, ok := SelectFrom(fw, prio)
			if !ok {
				break
			}
			forward = append(forward, q)
			fw.clear(q)
		}
		bw := &testView{words: append([]uint64(nil), v.words...), n: n}
		for {
			q, ok := SelectLast(bw, prio)
			if !ok {
				break
			}
			backward = append(backward, q)
			bw.clear(q)
		}
		if len(forward) != len(backward) {
			t.Fatalf("prio %d: %d vs %d selections", prio, len(forward), len(backward))
		}
		for i := range forward {
			if forward[i] != backward[len(backward)-1-i] {
				t.Fatalf("prio %d: forward %v is not reverse of backward %v", prio, forward, backward)
			}
		}
	}
}

// stealKindCase drives one discipline's Steal+ChargeSteal and asserts the
// rotor-relevant inspection fields stay where home consumers left them.
func inspect(t *testing.T, p Policy) Inspection {
	t.Helper()
	insp, ok := Inspect(p)
	if !ok {
		t.Fatalf("%v: policy not inspectable", p.Kind())
	}
	return insp
}

// TestChargeStealPreservesRR: stealing never moves the RR rotor.
func TestChargeStealPreservesRR(t *testing.T) {
	p := mustNew(t, Spec{Kind: RoundRobin}, 8)
	v := fullView(8)
	q, _ := p.Next(v)
	p.Charge(q, 1) // rotor now q+1
	rotor := inspect(t, p).Rotor
	sq, ok := p.Steal(v)
	if !ok {
		t.Fatal("steal ran dry on a full view")
	}
	if want := rotor - 1 + 8; sq != want%8 {
		t.Fatalf("steal picked %d, want last-in-order %d", sq, want%8)
	}
	p.ChargeSteal(sq, 100)
	if got := inspect(t, p).Rotor; got != rotor {
		t.Fatalf("rotor moved %d -> %d on ChargeSteal", rotor, got)
	}
}

// TestChargeStealWRR: stealing a non-favored queue is free; stealing the
// favored queue spends its budget (and rotates only on exhaustion),
// mirroring what home service of that queue would have consumed.
func TestChargeStealWRR(t *testing.T) {
	weights := []int{3, 1, 1, 1}
	p := mustNew(t, Spec{Kind: WeightedRoundRobin, Weights: weights}, 4)
	v := fullView(4)
	q, _ := p.Next(v)
	p.Charge(q, 1) // favored queue 0, counter 2
	before := inspect(t, p)
	if before.Rotor != 0 || before.Counter != 2 {
		t.Fatalf("setup: rotor=%d counter=%d", before.Rotor, before.Counter)
	}
	// Non-favored steal: no state moves.
	p.ChargeSteal(2, 50)
	if got := inspect(t, p); got.Rotor != 0 || got.Counter != 2 {
		t.Fatalf("non-favored steal moved state: rotor=%d counter=%d", got.Rotor, got.Counter)
	}
	// Favored steal: budget spends without rotating.
	p.ChargeSteal(0, 1)
	if got := inspect(t, p); got.Rotor != 0 || got.Counter != 1 {
		t.Fatalf("favored steal: rotor=%d counter=%d, want 0/1", got.Rotor, got.Counter)
	}
	// Exhaustion rotates, exactly like home service would.
	p.ChargeSteal(0, 1)
	if got := inspect(t, p); got.Rotor != 1 || got.Counter != weights[1] {
		t.Fatalf("exhausting steal: rotor=%d counter=%d, want 1/%d", got.Rotor, got.Counter, weights[1])
	}
}

// TestChargeStealDRR: stolen work lands as deficit debt; rotor and the
// current turn stay put.
func TestChargeStealDRR(t *testing.T) {
	weights := []int{4, 4, 4, 4}
	p := mustNew(t, Spec{Kind: DeficitRoundRobin, Weights: weights}, 4)
	v := fullView(4)
	q, _ := p.Next(v)
	p.Charge(q, 1)
	before := inspect(t, p)
	p.ChargeSteal(2, 7)
	after := inspect(t, p)
	if after.Rotor != before.Rotor {
		t.Fatalf("rotor moved %d -> %d", before.Rotor, after.Rotor)
	}
	if want := before.Deficit[2] - 7; after.Deficit[2] != want {
		t.Fatalf("deficit[2] = %d, want %d", after.Deficit[2], want)
	}
	// Debt carries: the rotor's next visit grants one quantum on top of
	// the negative balance, shortening the burst rather than erasing it.
	if after.Deficit[2] >= 0 {
		t.Fatalf("expected carried debt, got %d", after.Deficit[2])
	}
}

// TestChargeStealEWMA: stolen work decays the score like service does,
// but the round counter and rotor (the home service order) stay put.
func TestChargeStealEWMA(t *testing.T) {
	p := mustNew(t, Spec{Kind: EWMAAdaptive, Alpha: 0.5}, 4)
	v := fullView(4)
	p.Observe(2)
	p.Observe(2)
	q, _ := p.Next(v)
	if q != 2 {
		t.Fatalf("setup: hot queue not selected, got %d", q)
	}
	p.Charge(q, 1)
	before := inspect(t, p)
	p.ChargeSteal(3, 2)
	after := inspect(t, p)
	if after.Round != before.Round || after.Rotor != before.Rotor {
		t.Fatalf("home order state moved: round %d->%d rotor %d->%d",
			before.Round, after.Round, before.Rotor, after.Rotor)
	}
	if after.Score[3] > before.Score[3] {
		t.Fatalf("score[3] rose on steal: %v -> %v", before.Score[3], after.Score[3])
	}
}

// TestEWMAStealTakesColdest: the steal path returns the lowest-pressure
// ready queue, leaving the hot queue for its home consumer.
func TestEWMAStealTakesColdest(t *testing.T) {
	p := mustNew(t, Spec{Kind: EWMAAdaptive, Alpha: 0.5}, 4)
	v := fullView(4)
	p.Observe(1)
	p.Observe(1)
	p.Observe(3)
	hot, _ := p.Next(v)
	if hot != 1 {
		t.Fatalf("Next should take the hottest queue, got %d", hot)
	}
	cold, ok := p.Steal(v)
	if !ok || cold == 1 || cold == 3 {
		t.Fatalf("Steal took a scored queue: (%d, %v)", cold, ok)
	}
}

// TestStealVictimIsServedLast: for the rotor disciplines, the steal
// victim is exactly the queue a full home sweep would reach last.
func TestStealVictimIsServedLast(t *testing.T) {
	for _, kind := range []Kind{RoundRobin, WeightedRoundRobin, StrictPriority, DeficitRoundRobin} {
		spec := Spec{Kind: kind}
		if kind.UsesWeights() {
			spec.Weights = []int{1, 1, 1, 1, 1, 1, 1, 1}
		}
		victim := mustNew(t, spec, 8)
		home := mustNew(t, spec, 8)
		v := newView(8)
		for _, q := range []int{1, 3, 6} {
			v.set(q)
		}
		sq, sok := victim.Steal(v)
		var last int
		vv := &testView{words: append([]uint64(nil), v.words...), n: 8}
		for {
			q, ok := home.Next(vv)
			if !ok {
				break
			}
			last = q
			vv.clear(q)
			home.Charge(q, 1)
		}
		if !sok || sq != last {
			t.Fatalf("%v: steal=(%d,%v), home sweep ends at %d", kind, sq, sok, last)
		}
	}
}

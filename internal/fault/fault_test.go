package fault

import (
	"errors"
	"testing"
	"time"
)

// run drives the wrapped handler n times for one tenant and records each
// outcome as 'p' (panic), 'e' (error), or '.' (success).
func run(t *testing.T, in *Injector, tenant, n int) string {
	t.Helper()
	h := in.Wrap(func(_ int, payload []byte) ([]byte, error) { return payload, nil })
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != PanicValue {
						t.Fatalf("unexpected panic value %v", r)
					}
					out = append(out, 'p')
				}
			}()
			_, err := h(tenant, []byte{1})
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error %v", err)
				}
				out = append(out, 'e')
			} else {
				out = append(out, '.')
			}
		}()
	}
	return string(out)
}

func TestDeterministicSameSeed(t *testing.T) {
	cfg := Config{Seed: 42, Tenants: 4, Faulty: []int{1, 3}, PanicEvery: 3, ErrorEvery: 5}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range []int{1, 3} {
		sa, sb := run(t, a, tn, 40), run(t, b, tn, 40)
		if sa != sb {
			t.Fatalf("tenant %d: same seed diverged:\n%s\n%s", tn, sa, sb)
		}
	}
	// A different seed shifts the phases; at least one tenant's pattern
	// should differ.
	c, _ := New(Config{Seed: 43, Tenants: 4, Faulty: []int{1, 3}, PanicEvery: 3, ErrorEvery: 5})
	if run(t, a, 1, 40) == run(t, c, 1, 40) && run(t, a, 3, 40) == run(t, c, 3, 40) {
		t.Error("different seeds produced identical fault plans for all tenants")
	}
}

func TestHealthyTenantsUntouched(t *testing.T) {
	in, err := New(Config{Seed: 1, Tenants: 4, Faulty: []int{2}, PanicEvery: 1, ErrorEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range []int{0, 1, 3} {
		if s := run(t, in, tn, 20); s != "...................." {
			t.Errorf("healthy tenant %d got faults: %s", tn, s)
		}
	}
	if !in.Faulty(2) || in.Faulty(0) || in.Faulty(-1) || in.Faulty(99) {
		t.Error("Faulty() wrong")
	}
}

func TestPanicEveryItem(t *testing.T) {
	in, _ := New(Config{Seed: 7, Tenants: 2, Faulty: []int{0}, PanicEvery: 1})
	if s := run(t, in, 0, 10); s != "pppppppppp" {
		t.Errorf("PanicEvery=1 produced %s", s)
	}
	st := in.Stats()
	if st.Panics != 10 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClearStopsInjection(t *testing.T) {
	in, _ := New(Config{Seed: 9, Tenants: 2, Faulty: []int{0}, PanicEvery: 1, StallConsumers: true})
	if !in.Stalled(0) || in.Stalled(1) {
		t.Fatal("stall gates wrong at start")
	}
	if !in.Active() {
		t.Fatal("injector should start active")
	}
	in.Clear()
	if in.Active() || in.Stalled(0) {
		t.Fatal("Clear did not deactivate")
	}
	if s := run(t, in, 0, 5); s != "....." {
		t.Errorf("cleared injector still faults: %s", s)
	}
	in.Activate()
	if s := run(t, in, 0, 5); s != "ppppp" {
		t.Errorf("reactivated injector idle: %s", s)
	}
	in.SetStalled(1, true)
	if !in.Stalled(1) {
		t.Error("SetStalled(1) lost")
	}
}

func TestSpikeDelays(t *testing.T) {
	in, _ := New(Config{Seed: 3, Tenants: 1, Faulty: []int{0}, SpikeEvery: 1, Spike: 2 * time.Millisecond})
	h := in.Wrap(func(_ int, p []byte) ([]byte, error) { return p, nil })
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := h(0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 6*time.Millisecond {
		t.Errorf("3 spikes of 2ms took only %v", d)
	}
	if st := in.Stats(); st.Spikes != 3 {
		t.Errorf("spikes = %d", st.Spikes)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Tenants: 0}); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := New(Config{Tenants: 2, Faulty: []int{5}}); err == nil {
		t.Error("out-of-range faulty tenant accepted")
	}
	if _, err := New(Config{Tenants: 2, PanicEvery: -1}); err == nil {
		t.Error("negative cadence accepted")
	}
}

// Package fault is a seeded, deterministic fault-injection harness for the
// data plane: it wraps transport handlers to inject panics, errors, and
// latency spikes into a chosen subset of tenants, and gates tenant
// consumers to emulate stalled delivery rings. Chaos tests and
// cmd/planebench use it to prove that healthy tenants stay isolated from
// faulty ones and that quarantined tenants recover once the fault clears.
//
// The injector avoids importing dataplane (which sits above internal/) by
// operating on the plain handler signature; dataplane.Handler converts
// implicitly.
package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Handler mirrors dataplane.Handler without importing it.
type Handler func(tenant int, payload []byte) ([]byte, error)

// ErrInjected is the error returned by injected handler failures.
var ErrInjected = errors.New("fault: injected handler error")

// PanicValue is the value raised by injected handler panics, so recovery
// paths can recognize harness-induced crashes.
const PanicValue = "fault: injected handler panic"

// Config describes a deterministic fault plan. Cadences are per faulty
// tenant and phase-shifted by a seed-derived offset, so tenants do not
// fault in lockstep yet every run with the same seed faults identically.
type Config struct {
	// Seed derives the per-tenant phase offsets. Same seed, same plan.
	Seed int64
	// Tenants is the total tenant count (sizes per-tenant state).
	Tenants int
	// Faulty lists the tenant ids faults are injected into.
	Faulty []int
	// PanicEvery panics on every Nth handled item of a faulty tenant
	// (1 = every item; 0 = never).
	PanicEvery int
	// ErrorEvery returns ErrInjected on every Nth item (0 = never).
	ErrorEvery int
	// SpikeEvery sleeps Spike before every Nth item (0 = never) —
	// a handler latency spike.
	SpikeEvery int
	// Spike is the injected handler latency (default 1ms when
	// SpikeEvery > 0).
	Spike time.Duration
	// StallConsumers starts faulty tenants' consumer gates stalled.
	StallConsumers bool
}

// Injector injects the configured faults. All methods are safe for
// concurrent use.
type Injector struct {
	cfg     Config
	faulty  []bool
	phase   []uint64        // seed-derived cadence offsets
	count   []atomic.Uint64 // per-tenant handled-item counters
	stalled []atomic.Bool   // consumer stall gates
	active  atomic.Bool

	panics atomic.Int64
	errs   atomic.Int64
	spikes atomic.Int64
}

// Stats counts faults injected so far, by kind.
type Stats struct {
	Panics int64
	Errors int64
	Spikes int64
}

// New builds an Injector; injection starts active.
func New(cfg Config) (*Injector, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("fault: Tenants must be positive, got %d", cfg.Tenants)
	}
	if cfg.PanicEvery < 0 || cfg.ErrorEvery < 0 || cfg.SpikeEvery < 0 {
		return nil, fmt.Errorf("fault: cadences must be >= 0")
	}
	if cfg.SpikeEvery > 0 && cfg.Spike <= 0 {
		cfg.Spike = time.Millisecond
	}
	in := &Injector{
		cfg:     cfg,
		faulty:  make([]bool, cfg.Tenants),
		phase:   make([]uint64, cfg.Tenants),
		count:   make([]atomic.Uint64, cfg.Tenants),
		stalled: make([]atomic.Bool, cfg.Tenants),
	}
	for _, t := range cfg.Faulty {
		if t < 0 || t >= cfg.Tenants {
			return nil, fmt.Errorf("fault: faulty tenant %d out of range [0,%d)", t, cfg.Tenants)
		}
		in.faulty[t] = true
		in.phase[t] = splitmix64(uint64(cfg.Seed) ^ (uint64(t)+1)*0x9e3779b97f4a7c15)
		if cfg.StallConsumers {
			in.stalled[t].Store(true)
		}
	}
	in.active.Store(true)
	return in, nil
}

// splitmix64 is the standard seed scrambler — deterministic, stateless.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Wrap decorates a handler with the configured fault plan. Spikes fire
// before the decision between panic and error, so a single item can both
// stall and fail — the worst case a real buggy handler produces.
func (in *Injector) Wrap(h Handler) Handler {
	return func(tenant int, payload []byte) ([]byte, error) {
		if tenant < 0 || tenant >= len(in.faulty) || !in.faulty[tenant] || !in.active.Load() {
			return h(tenant, payload)
		}
		n := in.count[tenant].Add(1) - 1 + in.phase[tenant]
		if in.cfg.SpikeEvery > 0 && n%uint64(in.cfg.SpikeEvery) == 0 {
			in.spikes.Add(1)
			time.Sleep(in.cfg.Spike)
		}
		if in.cfg.PanicEvery > 0 && n%uint64(in.cfg.PanicEvery) == 0 {
			in.panics.Add(1)
			panic(PanicValue)
		}
		if in.cfg.ErrorEvery > 0 && n%uint64(in.cfg.ErrorEvery) == 0 {
			in.errs.Add(1)
			return nil, ErrInjected
		}
		return h(tenant, payload)
	}
}

// Seed returns the seed the fault plan was derived from, so chaos tests
// can surface it in failure messages for reproduction.
func (in *Injector) Seed() int64 { return in.cfg.Seed }

// Faulty reports whether the tenant is in the fault plan.
func (in *Injector) Faulty(tenant int) bool {
	return tenant >= 0 && tenant < len(in.faulty) && in.faulty[tenant]
}

// Clear stops all injection and opens every consumer gate — the fault has
// "cleared", letting recovery (quarantine probes succeeding, consumers
// draining) be observed.
func (in *Injector) Clear() {
	in.active.Store(false)
	for i := range in.stalled {
		in.stalled[i].Store(false)
	}
}

// Activate (re-)starts injection (gates are left as they are).
func (in *Injector) Activate() { in.active.Store(true) }

// Active reports whether injection is currently on.
func (in *Injector) Active() bool { return in.active.Load() }

// Stalled reports the tenant's consumer gate; test consumers poll it and
// refuse to drain the tenant-side ring while it is set.
func (in *Injector) Stalled(tenant int) bool {
	return tenant >= 0 && tenant < len(in.stalled) && in.stalled[tenant].Load()
}

// SetStalled flips one tenant's consumer gate.
func (in *Injector) SetStalled(tenant int, v bool) {
	if tenant >= 0 && tenant < len(in.stalled) {
		in.stalled[tenant].Store(v)
	}
}

// Stats returns the injected-fault counts.
func (in *Injector) Stats() Stats {
	return Stats{
		Panics: in.panics.Load(),
		Errors: in.errs.Load(),
		Spikes: in.spikes.Load(),
	}
}

// WAL fault injection: a seeded hook implementing the wal.Hook surface
// (Write/Fsync interception) without importing internal/wal, so the WAL
// package stays dependency-free. Three storage failure modes are
// modeled, all deterministic under a seed:
//
//   - torn write: a chosen commit is cut short mid-buffer and the log is
//     sticky-crashed, emulating power loss during a segment write;
//   - short fsync: fsync is skipped (data sits in the page cache) for a
//     window of commits, emulating firmware that lies about flushes;
//   - failing fsync: fsync returns an error after N successes, emulating
//     a dying disk — the log must sticky-fail, never silently continue.
package fault

import (
	"fmt"
	"sync/atomic"
)

// WALConfig describes a deterministic WAL fault plan. Zero values disable
// each mode; commit counting starts at 1.
type WALConfig struct {
	// Seed scrambles the torn-write cut point. Same seed, same tear.
	Seed int64
	// TearAtCommit cuts commit number N short (keeping a seed-derived
	// prefix) and returns ErrInjectedCrash, sticky-failing the log.
	TearAtCommit int64
	// SkipFsyncAfter skips (not fails) every fsync after the Nth,
	// emulating a device that acknowledges flushes it never performed.
	SkipFsyncAfter int64
	// FailFsyncAfter fails every fsync after the Nth with
	// ErrInjectedFsync.
	FailFsyncAfter int64
}

// ErrInjectedCrash is returned by a torn write — the simulated power cut.
var ErrInjectedCrash = fmt.Errorf("fault: injected torn-write crash")

// ErrInjectedFsync is returned by an injected fsync failure.
var ErrInjectedFsync = fmt.Errorf("fault: injected fsync failure")

// WAL implements the wal.Hook Write/Fsync surface with the configured
// fault plan. Safe for the single committer goroutine plus concurrent
// Stats readers.
type WAL struct {
	cfg     WALConfig
	writes  atomic.Int64
	fsyncs  atomic.Int64
	torn    atomic.Bool
	skipped atomic.Int64
	failed  atomic.Int64
}

// NewWAL builds a WAL hook from the plan.
func NewWAL(cfg WALConfig) *WAL { return &WAL{cfg: cfg} }

// Seed returns the plan's seed for failure-message reproduction.
func (w *WAL) Seed() int64 { return w.cfg.Seed }

// Describe summarizes the plan for test logs.
func (w *WAL) Describe() string {
	return fmt.Sprintf("wal fault plan: seed=%d tear@%d skip-fsync>%d fail-fsync>%d",
		w.cfg.Seed, w.cfg.TearAtCommit, w.cfg.SkipFsyncAfter, w.cfg.FailFsyncAfter)
}

// Write intercepts a commit buffer. On the torn commit it returns a
// seed-derived prefix of the buffer plus ErrInjectedCrash; the WAL
// writes the prefix (the torn tail on disk) and sticky-fails.
func (w *WAL) Write(b []byte) ([]byte, error) {
	n := w.writes.Add(1)
	if w.cfg.TearAtCommit > 0 && n == w.cfg.TearAtCommit {
		w.torn.Store(true)
		cut := 0
		if len(b) > 1 {
			// Cut strictly inside the buffer so a tail is actually torn.
			cut = 1 + int(splitmix64(uint64(w.cfg.Seed)^uint64(n))%uint64(len(b)-1))
		}
		return b[:cut], ErrInjectedCrash
	}
	return b, nil
}

// Fsync intercepts the flush: skipped after SkipFsyncAfter, failing
// after FailFsyncAfter, otherwise delegated to the real fsync.
func (w *WAL) Fsync(do func() error) error {
	n := w.fsyncs.Add(1)
	if w.cfg.SkipFsyncAfter > 0 && n > w.cfg.SkipFsyncAfter {
		w.skipped.Add(1)
		return nil
	}
	if w.cfg.FailFsyncAfter > 0 && n > w.cfg.FailFsyncAfter {
		w.failed.Add(1)
		return ErrInjectedFsync
	}
	return do()
}

// WALStats counts intercepted operations.
type WALStats struct {
	Writes      int64
	Fsyncs      int64
	Torn        bool
	SkippedSync int64
	FailedSync  int64
}

// Stats returns the interception counts.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Writes:      w.writes.Load(),
		Fsyncs:      w.fsyncs.Load(),
		Torn:        w.torn.Load(),
		SkippedSync: w.skipped.Load(),
		FailedSync:  w.failed.Load(),
	}
}

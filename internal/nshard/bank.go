package nshard

import (
	"sync"
	"sync/atomic"

	"hyperplane/internal/policy"
	"hyperplane/internal/ready"
)

// Bank is one shard of the banked ready set. QIDs interleave across banks
// exactly like doorbell lines interleave across directory banks in the
// paper (monitor.Banked.BankOf): bank s of S owns every QID congruent to
// s mod S, mapped to local index qid/S. Each bank runs its own
// ready.Hardware — and through it the same internal/policy arbitration
// state machine the simulated RTL drives — over those local indices, so
// every discipline's semantics hold exactly within a bank. The bank's
// policy instance is built from the shared policy.Spec via Spec.Sub, so
// per-queue parameters (WRR/DRR weights) follow each queue into its bank.
// Cross-bank order is governed by the caller's sweep rotor: with S banks
// and a per-bank policy bound of R selections (ready-queue count for
// round-robin/EWMA, outstanding weight or quantum sum for WRR/DRR), a
// continuously-ready queue is serviced at least once every S*R
// selections (see Notifier docs).
//
// Each bank also owns one bit of a shared summary word, kept in sync
// under the bank lock: bit set iff the bank has at least one enabled
// ready queue. Sweeps load the summary once and skip empty banks without
// taking their locks.
type Bank struct {
	mu      sync.Mutex
	rs      *ready.Hardware
	stride  int
	offset  int
	summary *atomic.Uint64
	bit     uint64

	// Telemetry counters, atomics so the export plane reads them without
	// the bank lock. Selects counts consumed selections (Select and each
	// SelectMany fill), activations counts Activate calls, steals counts
	// QIDs claimed FROM this bank by stealing consumers (StealMany fills).
	selects     atomic.Int64
	activations atomic.Int64
	steals      atomic.Int64
}

// Counts is a point-in-time copy of the bank's activity counters plus its
// current ready occupancy, the bank-level series the telemetry plane
// exports.
type Counts struct {
	Ready       int   // ready queues right now
	Selects     int64 // selections consumed from this bank
	Activations int64 // activations inserted into this bank
	Steals      int64 // QIDs stolen from this bank by sibling consumers
}

// Counts snapshots the bank's counters and occupancy.
func (b *Bank) Counts() Counts {
	return Counts{
		Ready:       b.ReadyCount(),
		Selects:     b.selects.Load(),
		Activations: b.activations.Load(),
		Steals:      b.steals.Load(),
	}
}

// Inspect snapshots the bank's arbitration state (policy.Inspect) under
// the bank lock. Vector fields are indexed by the bank's local queue
// index; the caller maps local index l to global QID l*stride+offset.
func (b *Bank) Inspect() policy.Inspection {
	b.mu.Lock()
	insp := b.rs.Inspect()
	b.mu.Unlock()
	return insp
}

// Geometry returns the bank's shard stride and offset (for mapping
// Inspect's local indices back to global QIDs).
func (b *Bank) Geometry() (stride, offset int) { return b.stride, b.offset }

// SetAlpha retunes the bank policy's EWMA smoothing factor live under
// the bank lock, reporting whether the discipline accepted it.
func (b *Bank) SetAlpha(alpha float64) bool {
	b.mu.Lock()
	ok := b.rs.SetAlpha(alpha)
	b.mu.Unlock()
	return ok
}

// NewBank builds the bank owning QIDs {offset, offset+stride, ...} below
// total, arbitrated by spec (whose Weights, if any, are the full global
// slice; the bank extracts its own entries via Spec.Sub).
func NewBank(total, stride, offset int, spec policy.Spec, summary *atomic.Uint64, bit uint) (*Bank, error) {
	sub, err := spec.Sub(total, stride, offset)
	if err != nil {
		return nil, err
	}
	localN := (total - offset + stride - 1) / stride
	rs, err := ready.NewHardware(localN, sub)
	if err != nil {
		return nil, err
	}
	return &Bank{
		rs:      rs,
		stride:  stride,
		offset:  offset,
		summary: summary,
		bit:     1 << bit,
	}, nil
}

func (b *Bank) local(qid int) int { return qid / b.stride }
func (b *Bank) global(l int) int  { return l*b.stride + b.offset }

// syncSummaryLocked publishes the bank's non-empty bit. Called with b.mu
// held after every mutation, so the summary never goes stale relative to
// the lock order sweeps use.
func (b *Bank) syncSummaryLocked() {
	for {
		old := b.summary.Load()
		var nw uint64
		if b.rs.Peek() {
			nw = old | b.bit
		} else {
			nw = old &^ b.bit
		}
		if nw == old || b.summary.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Activate marks qid ready.
func (b *Bank) Activate(qid int) {
	b.activations.Add(1)
	b.mu.Lock()
	b.rs.Activate(b.local(qid))
	b.syncSummaryLocked()
	b.mu.Unlock()
}

// Deactivate clears qid's ready bit (QWAIT-REMOVE).
func (b *Bank) Deactivate(qid int) {
	b.mu.Lock()
	b.rs.Deactivate(b.local(qid))
	b.syncSummaryLocked()
	b.mu.Unlock()
}

// Select returns the next ready QID per the bank's policy, clearing its
// ready bit.
func (b *Bank) Select() (int, bool) {
	b.mu.Lock()
	l, ok, _ := b.rs.Select()
	b.syncSummaryLocked()
	b.mu.Unlock()
	if !ok {
		return 0, false
	}
	b.selects.Add(1)
	return b.global(l), true
}

// SelectMany fills dst with ready QIDs under a single lock acquisition,
// returning the count — the bank half of Notifier.WaitBatch.
func (b *Bank) SelectMany(dst []int) int {
	b.mu.Lock()
	i := 0
	for i < len(dst) {
		l, ok, _ := b.rs.Select()
		if !ok {
			break
		}
		dst[i] = b.global(l)
		i++
	}
	b.syncSummaryLocked()
	b.mu.Unlock()
	b.selects.Add(int64(i))
	return i
}

// StealMany fills dst with ready QIDs claimed through the policy's steal
// path — the bank half of a cross-bank steal. Each claim takes the queue
// the bank's discipline would service last and charges it one unit via
// ChargeSteal, so the rotor (and with it the order of the queues left
// behind for the bank's home consumers) is untouched. Returns the count.
func (b *Bank) StealMany(dst []int) int {
	b.mu.Lock()
	i := 0
	for i < len(dst) {
		l, ok := b.rs.Steal()
		if !ok {
			break
		}
		dst[i] = b.global(l)
		i++
	}
	b.syncSummaryLocked()
	b.mu.Unlock()
	b.steals.Add(int64(i))
	return i
}

// Charge bills cost extra service units to qid's policy state — the bank
// half of Notifier.ConsumeN. Selection already charged one unit, so batch
// consumers pass items-1. For DRR this draws the queue's deficit down by
// the real batch size (debt-carry absorbs any overdraw); for EWMA it
// decays the service-rate estimate once per item.
func (b *Bank) Charge(qid, cost int) {
	if cost <= 0 {
		return
	}
	b.mu.Lock()
	b.rs.Charge(b.local(qid), cost)
	b.mu.Unlock()
}

// ChargeSteal bills cost extra service units to a stolen qid through the
// policy's steal accounting: DRR deficits and EWMA scores move exactly as
// under Charge, but the rotor stays put — the batch was drained by a
// stealing consumer, not by this bank's service order (the steal half of
// Notifier.ConsumeN).
func (b *Bank) ChargeSteal(qid, cost int) {
	if cost <= 0 {
		return
	}
	b.mu.Lock()
	b.rs.ChargeSteal(b.local(qid), cost)
	b.mu.Unlock()
}

// SetEnabled flips the QWAIT-ENABLE/DISABLE mask bit and reports whether
// the queue is ready and enabled afterwards (so the caller knows to wake
// a waiter on Enable).
func (b *Bank) SetEnabled(qid int, enabled bool) bool {
	l := b.local(qid)
	b.mu.Lock()
	b.rs.SetEnabled(l, enabled)
	ready := b.rs.IsReady(l)
	b.syncSummaryLocked()
	b.mu.Unlock()
	return ready && enabled
}

// IsReady reports qid's ready bit.
func (b *Bank) IsReady(qid int) bool {
	b.mu.Lock()
	r := b.rs.IsReady(b.local(qid))
	b.mu.Unlock()
	return r
}

// ReadyCount returns the number of ready queues in the bank.
func (b *Bank) ReadyCount() int {
	b.mu.Lock()
	n := b.rs.ReadyCount()
	b.mu.Unlock()
	return n
}

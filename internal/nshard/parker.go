package nshard

import (
	"sync"
	"sync/atomic"
	"time"
)

// Waiter states.
const (
	wWaiting uint32 = iota
	wSignaled
	wCancelled
)

// Waiter is one blocked consumer's parking token. A waiter is enqueued on
// a Parker stripe, then blocks on C() until a producer signals it (or it
// cancels itself after finding work in a re-sweep).
type Waiter struct {
	state atomic.Uint32
	ch    chan struct{}

	// Residency bookkeeping, written by Enqueue and read by whichever
	// side settles the waiter (the state CAS winner).
	stripe int32
	t0     int64 // park timestamp, ns since parkEpoch
}

// NewWaiter allocates a parking token. Allocation happens only on the
// blocking slow path; the notify/wait fast paths are allocation-free.
func NewWaiter() *Waiter {
	return &Waiter{ch: make(chan struct{}, 1)}
}

// C is the channel the waiter blocks on; it receives exactly one token
// when the waiter is signaled.
func (w *Waiter) C() <-chan struct{} { return w.ch }

// trySignal delivers the wakeup token unless the waiter already
// cancelled.
func (w *Waiter) trySignal() bool {
	if w.state.CompareAndSwap(wWaiting, wSignaled) {
		w.ch <- struct{}{}
		return true
	}
	return false
}

// parkEpoch anchors residency timestamps to the monotonic clock so
// wall-clock jumps cannot corrupt the blocked-time series.
var parkEpoch = time.Now()

func sinceEpoch() int64 { return int64(time.Since(parkEpoch)) }

// Parker is the shard-striped wakeup list: parked waiters are spread over
// stripes (one per bank) so producers in different banks do not contend
// on a single wait-queue lock, the way a global sync.Cond would make
// them. A live-waiter count lets producers skip the scan entirely when
// nobody is parked — the common case for a busy data plane.
type Parker struct {
	parked  atomic.Int64
	stripes []stripe
}

type stripe struct {
	mu sync.Mutex
	ws []*Waiter

	// Telemetry counters: parks counts Enqueue calls (a consumer giving up
	// its timeslice — the paper's halted core), wakes counts delivered
	// wakeups. Read lock-free by the export plane.
	parks atomic.Int64
	wakes atomic.Int64

	// Blocked-residency accounting (the C1 analog of Fig. 11/12). Settled
	// intervals accumulate in blockedNs; liveCount/liveStart carry the
	// in-progress parks so StripeCounts can report residency that is still
	// accruing — a worker parked for minutes at low load must not read as
	// zero until its next wake. All three are guarded by mu; each waiter is
	// settled exactly once, by whichever side wins its state CAS.
	blockedNs int64
	liveCount int64
	liveStart int64 // sum of live waiters' t0 stamps
}

// StripeCounts is a point-in-time copy of one stripe's park/wake
// counters, the per-bank wake/park series the telemetry plane exports.
type StripeCounts struct {
	Parks     int64 // waiters enqueued on the stripe
	Wakes     int64 // wakeups delivered from the stripe
	BlockedNs int64 // cumulative ns waiters spent blocked (C1 residency), including in-progress parks
}

// Stripes returns the stripe count.
func (p *Parker) Stripes() int { return len(p.stripes) }

// StripeCounts snapshots stripe s's counters. BlockedNs includes the
// still-open intervals of currently-parked waiters.
func (p *Parker) StripeCounts(s int) StripeCounts {
	st := &p.stripes[s%len(p.stripes)]
	st.mu.Lock()
	// The stamp is taken under mu: every t0 in liveStart was recorded
	// before its Enqueue critical section, so it cannot exceed now.
	blocked := st.blockedNs + st.liveCount*sinceEpoch() - st.liveStart
	st.mu.Unlock()
	return StripeCounts{Parks: st.parks.Load(), Wakes: st.wakes.Load(), BlockedNs: blocked}
}

// NewParker builds a parker with n stripes.
func NewParker(n int) *Parker {
	return &Parker{stripes: make([]stripe, n)}
}

// Enqueue parks w on stripe s. The caller MUST re-sweep the ready banks
// after Enqueue returns and cancel if it finds work: the enqueue-then-
// recheck order, against producers' activate-then-wake order, is what
// makes lost wakeups impossible.
func (p *Parker) Enqueue(s int, w *Waiter) {
	p.parked.Add(1)
	i := s % len(p.stripes)
	st := &p.stripes[i]
	st.parks.Add(1)
	w.stripe = int32(i)
	w.t0 = sinceEpoch()
	st.mu.Lock()
	st.ws = append(st.ws, w)
	st.liveCount++
	st.liveStart += w.t0
	st.mu.Unlock()
}

// settleLocked closes w's residency interval. Caller holds st.mu, where
// st is w's enqueue stripe.
func (st *stripe) settleLocked(w *Waiter) {
	st.liveCount--
	st.liveStart -= w.t0
	st.blockedNs += sinceEpoch() - w.t0
}

// Cancel retracts a parked waiter that found work on its own (or is
// giving up on timeout/context-cancel/close). If a producer signaled it
// concurrently, the wakeup token it holds is passed on to another parked
// waiter so the activation it represents is not silently dropped.
func (p *Parker) Cancel(w *Waiter, from int) {
	if w.state.CompareAndSwap(wWaiting, wCancelled) {
		p.parked.Add(-1)
		st := &p.stripes[w.stripe]
		st.mu.Lock()
		st.settleLocked(w)
		st.mu.Unlock()
		return
	}
	// Already signaled: hand the token to someone else.
	p.WakeOne(from)
}

// WakeOne wakes one parked waiter, scanning stripes starting at `from`
// (producers pass the bank they just activated in, so the waiter most
// likely to find that work is preferred). Cancelled entries found along
// the way are discarded. Returns false if no live waiter exists.
func (p *Parker) WakeOne(from int) bool {
	if p.parked.Load() == 0 {
		return false
	}
	n := len(p.stripes)
	for i := 0; i < n; i++ {
		st := &p.stripes[(from+i)%n]
		st.mu.Lock()
		for len(st.ws) > 0 {
			w := st.ws[0]
			st.ws[0] = nil
			st.ws = st.ws[1:]
			if len(st.ws) == 0 {
				st.ws = nil // let the grown backing array go
			}
			if w.trySignal() {
				p.parked.Add(-1)
				st.wakes.Add(1)
				st.settleLocked(w) // scan only visits enqueue stripes, so st is w's
				st.mu.Unlock()
				return true
			}
		}
		st.mu.Unlock()
	}
	return false
}

// WakeN wakes up to n waiters (NotifyBatch's amortized wakeup).
func (p *Parker) WakeN(from, n int) int {
	woken := 0
	for woken < n && p.WakeOne(from) {
		woken++
	}
	return woken
}

// WakeAll signals every parked waiter (Close).
func (p *Parker) WakeAll() {
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for _, w := range st.ws {
			if w.trySignal() {
				p.parked.Add(-1)
				st.wakes.Add(1)
				st.settleLocked(w)
			}
		}
		st.ws = nil
		st.mu.Unlock()
	}
}

// Parked returns the live parked-waiter count (for tests/stats).
func (p *Parker) Parked() int { return int(p.parked.Load()) }

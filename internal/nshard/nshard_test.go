package nshard

import (
	"sync"
	"sync/atomic"
	"testing"

	"hyperplane/internal/policy"
)

// bank builds a Bank for tests, failing the test on spec errors.
func bank(t *testing.T, total, stride, offset int, spec policy.Spec, summary *atomic.Uint64, bit uint) *Bank {
	t.Helper()
	b, err := NewBank(total, stride, offset, spec, summary, bit)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestQStateLifecycle(t *testing.T) {
	var q QState
	if q.Registered() || q.Pending() {
		t.Fatal("zero state must be unregistered and armed")
	}
	if q.TryActivate() {
		t.Fatal("unregistered entry activated")
	}
	var db atomic.Int64
	q.Register(&db)
	if !q.Registered() || q.Pending() {
		t.Fatal("fresh registration must be armed")
	}
	if q.Doorbell() != &db {
		t.Fatal("doorbell pointer lost")
	}
	if !q.TryActivate() {
		t.Fatal("armed entry refused activation")
	}
	if q.TryActivate() {
		t.Fatal("pending entry re-activated (notify must coalesce)")
	}
	if !q.Pending() {
		t.Fatal("state not pending")
	}
	if !q.TryRearm() {
		t.Fatal("pending entry refused rearm")
	}
	if q.TryRearm() {
		t.Fatal("armed entry re-armed")
	}
	q.Unregister()
	if q.Registered() || q.TryActivate() || q.TryRearm() {
		t.Fatal("unregistered entry still live")
	}
	if q.Doorbell() != nil {
		t.Fatal("doorbell not released")
	}
}

func TestQStateEpochAdvances(t *testing.T) {
	var q QState
	var db atomic.Int64
	e0 := q.Epoch()
	q.Register(&db)
	e1 := q.Epoch()
	q.Unregister()
	q.Register(&db)
	e2 := q.Epoch()
	if !(e0 < e1 && e1 < e2) {
		t.Fatalf("epoch must advance per registration: %d %d %d", e0, e1, e2)
	}
}

// One goroutine activates, one rearms: every transition must be won by
// exactly one side (CAS), and the word must never hold an illegal value.
func TestQStateConcurrentTransitions(t *testing.T) {
	var q QState
	var db atomic.Int64
	q.Register(&db)
	const iters = 20000
	var activations, rearms atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if q.TryActivate() {
					activations.Add(1)
				}
				if q.TryRearm() {
					rearms.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	diff := activations.Load() - rearms.Load()
	if diff != 0 && diff != 1 {
		t.Fatalf("activations=%d rearms=%d: state machine leaked a transition",
			activations.Load(), rearms.Load())
	}
}

func TestBankStridedMapping(t *testing.T) {
	var summary atomic.Uint64
	// Bank 1 of 4 over 10 queues owns qids 1, 5, 9.
	b := bank(t, 10, 4, 1, policy.Spec{Kind: policy.RoundRobin}, &summary, 1)
	for _, qid := range []int{9, 1, 5} {
		b.Activate(qid)
	}
	if summary.Load()&(1<<1) == 0 {
		t.Fatal("summary bit not set on activate")
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		q, ok := b.Select()
		if !ok {
			t.Fatalf("select %d dry", i)
		}
		if q%4 != 1 {
			t.Fatalf("bank returned foreign qid %d", q)
		}
		seen[q] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round robin visited %d of 3", len(seen))
	}
	if _, ok := b.Select(); ok {
		t.Fatal("empty bank selected")
	}
	if summary.Load()&(1<<1) != 0 {
		t.Fatal("summary bit not cleared when bank drained")
	}
}

func TestBankSelectMany(t *testing.T) {
	var summary atomic.Uint64
	b := bank(t, 16, 2, 0, policy.Spec{Kind: policy.RoundRobin}, &summary, 0)
	for q := 0; q < 16; q += 2 {
		b.Activate(q)
	}
	dst := make([]int, 16)
	got := b.SelectMany(dst)
	if got != 8 {
		t.Fatalf("SelectMany = %d, want 8", got)
	}
	for _, q := range dst[:got] {
		if q%2 != 0 {
			t.Fatalf("foreign qid %d", q)
		}
	}
	if summary.Load() != 0 {
		t.Fatal("summary bit survived a full drain")
	}
}

func TestBankMaskMaintainsSummary(t *testing.T) {
	var summary atomic.Uint64
	b := bank(t, 4, 1, 0, policy.Spec{Kind: policy.RoundRobin}, &summary, 0)
	b.Activate(2)
	if b.SetEnabled(2, false) {
		t.Fatal("disabled queue reported wakeable")
	}
	if summary.Load() != 0 {
		t.Fatal("summary set with only masked queues ready")
	}
	if _, ok := b.Select(); ok {
		t.Fatal("masked queue selected")
	}
	if !b.SetEnabled(2, true) {
		t.Fatal("enable of a ready queue must report wakeable")
	}
	if summary.Load() == 0 {
		t.Fatal("summary not restored on enable")
	}
	if q, ok := b.Select(); !ok || q != 2 {
		t.Fatalf("Select = %d, %v", q, ok)
	}
	if b.IsReady(2) || b.ReadyCount() != 0 {
		t.Fatal("ready accounting broken after select")
	}
}

func TestBankWRRLocalWeights(t *testing.T) {
	var summary atomic.Uint64
	// Bank 0 of 2 over 4 queues owns qids 0, 2 with weights 3 and 1.
	weights := []int{3, 7, 1, 9}
	b := bank(t, 4, 2, 0, policy.Spec{Kind: policy.WeightedRoundRobin, Weights: weights}, &summary, 0)
	counts := map[int]int{}
	b.Activate(0)
	b.Activate(2)
	for i := 0; i < 400; i++ {
		q, ok := b.Select()
		if !ok {
			t.Fatal("dry")
		}
		counts[q]++
		b.Activate(q) // continuously backlogged
	}
	ratio := float64(counts[0]) / float64(counts[2])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("WRR 3:1 ratio off: counts=%v ratio=%.2f", counts, ratio)
	}
}

func TestParkerSignalAndCancel(t *testing.T) {
	p := NewParker(4)
	w := NewWaiter()
	p.Enqueue(1, w)
	if p.Parked() != 1 {
		t.Fatalf("parked = %d", p.Parked())
	}
	if !p.WakeOne(3) { // scan wraps across stripes
		t.Fatal("WakeOne found nobody")
	}
	<-w.C()
	if p.Parked() != 0 {
		t.Fatalf("parked = %d after wake", p.Parked())
	}
	// Cancelled waiters are skipped and the token goes to a live one.
	wc, wl := NewWaiter(), NewWaiter()
	p.Enqueue(0, wc)
	p.Enqueue(0, wl)
	p.Cancel(wc, 0)
	if !p.WakeOne(0) {
		t.Fatal("live waiter not found past cancelled one")
	}
	<-wl.C()
	select {
	case <-wc.C():
		t.Fatal("cancelled waiter signaled")
	default:
	}
}

func TestParkerCancelAfterSignalPassesTokenOn(t *testing.T) {
	p := NewParker(2)
	w1, w2 := NewWaiter(), NewWaiter()
	p.Enqueue(0, w1)
	if !p.WakeOne(0) {
		t.Fatal("wake failed")
	}
	// w1 was signaled but decides to cancel (found work in re-sweep):
	// its token must wake w2 instead of vanishing.
	p.Enqueue(1, w2)
	p.Cancel(w1, 0)
	select {
	case <-w2.C():
	default:
		t.Fatal("token dropped: w2 not woken")
	}
	if p.Parked() != 0 {
		t.Fatalf("parked = %d", p.Parked())
	}
}

func TestParkerWakeAll(t *testing.T) {
	p := NewParker(3)
	ws := make([]*Waiter, 7)
	for i := range ws {
		ws[i] = NewWaiter()
		p.Enqueue(i, ws[i])
	}
	p.WakeAll()
	for i, w := range ws {
		select {
		case <-w.C():
		default:
			t.Fatalf("waiter %d not woken", i)
		}
	}
	if p.Parked() != 0 {
		t.Fatalf("parked = %d", p.Parked())
	}
}

// Hammer enqueue/cancel/wake from many goroutines; -race is the oracle,
// plus the invariant that no live waiter is left behind at the end.
func TestParkerConcurrentStress(t *testing.T) {
	p := NewParker(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w := NewWaiter()
				p.Enqueue(g, w)
				if i%2 == 0 {
					p.Cancel(w, g)
				} else {
					// Tokens may land on any live waiter (including ones
					// whose Cancel passes them on), so don't insist this
					// call succeeds or that our own waiter gets it.
					p.WakeOne(i % 4)
				}
			}
		}(g)
	}
	wg.Wait()
	p.WakeAll()
	if p.Parked() != 0 {
		t.Fatalf("parked = %d at end", p.Parked())
	}
}

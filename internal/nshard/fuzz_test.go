package nshard

import (
	"sync/atomic"
	"testing"

	"hyperplane/internal/policy"
	"hyperplane/internal/ready"
)

// fuzzQueues deliberately spans more than one 64-bit word so selection
// must cross word boundaries in every substrate.
const fuzzQueues = 70

// FuzzDifferentialServiceOrder feeds an identical activate / consume /
// mask stream to the three arbitration substrates — the hardware PPA
// model, the software fallback, and a single-shard runtime Bank — and
// requires that all three service queues in exactly the same order for
// every built-in discipline. This is the acceptance check for the
// unified policy layer: sim and runtime cannot drift because they share
// one state machine.
func FuzzDifferentialServiceOrder(f *testing.F) {
	f.Add([]byte{0, 5, 0, 64, 0, 69, 1, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{0, 1, 0, 2, 4, 0, 4, 0, 4, 0, 4, 0, 4, 0, 4, 0})
	f.Add([]byte{0, 3, 2, 3, 1, 0, 2, 3, 1, 0, 3, 3, 1, 0})
	f.Add([]byte{0, 10, 0, 20, 0, 30, 2, 20, 1, 0, 1, 0, 2, 20, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		weights := make([]int, fuzzQueues)
		for i := range weights {
			weights[i] = 1 + i%5
		}
		for _, kind := range policy.Kinds() {
			spec := policy.Spec{Kind: kind}
			if kind.UsesWeights() {
				spec.Weights = weights
			}
			hw, err := ready.NewHardware(fuzzQueues, spec)
			if err != nil {
				t.Fatal(err)
			}
			sw, err := ready.NewSoftware(fuzzQueues, spec)
			if err != nil {
				t.Fatal(err)
			}
			var summary atomic.Uint64
			bk, err := NewBank(fuzzQueues, 1, 0, spec, &summary, 0)
			if err != nil {
				t.Fatal(err)
			}

			enabled := make([]bool, fuzzQueues)
			for i := range enabled {
				enabled[i] = true
			}
			for i := 0; i+1 < len(data); i += 2 {
				op, qid := data[i]%6, int(data[i+1])%fuzzQueues
				switch op {
				case 0: // arrival
					hw.Activate(qid)
					sw.Activate(qid)
					bk.Activate(qid)
				case 1: // consume
					hq, hok, _ := hw.Select()
					sq, sok, _ := sw.Select()
					bq, bok := bk.Select()
					if hok != sok || hok != bok || (hok && (hq != sq || hq != bq)) {
						t.Fatalf("%v op %d: hw=(%d,%v) sw=(%d,%v) bank=(%d,%v)",
							kind, i/2, hq, hok, sq, sok, bq, bok)
					}
				case 2: // QWAIT-ENABLE / QWAIT-DISABLE toggle
					enabled[qid] = !enabled[qid]
					hw.SetEnabled(qid, enabled[qid])
					sw.SetEnabled(qid, enabled[qid])
					bk.SetEnabled(qid, enabled[qid])
				case 3: // QWAIT-REMOVE
					hw.Deactivate(qid)
					sw.Deactivate(qid)
					bk.Deactivate(qid)
				case 4: // consume and re-arm (persistent backlog)
					hq, hok, _ := hw.Select()
					sq, sok, _ := sw.Select()
					bq, bok := bk.Select()
					if hok != sok || hok != bok || (hok && (hq != sq || hq != bq)) {
						t.Fatalf("%v op %d: hw=(%d,%v) sw=(%d,%v) bank=(%d,%v)",
							kind, i/2, hq, hok, sq, sok, bq, bok)
					}
					if hok {
						hw.Activate(hq)
						sw.Activate(sq)
						bk.Activate(bq)
					}
				case 5: // cross-bank steal claim
					hq, hok := hw.Steal()
					sq, sok := sw.Steal()
					var one [1]int
					bok := bk.StealMany(one[:]) == 1
					bq := one[0]
					if hok != sok || hok != bok || (hok && (hq != sq || hq != bq)) {
						t.Fatalf("%v op %d steal: hw=(%d,%v) sw=(%d,%v) bank=(%d,%v)",
							kind, i/2, hq, hok, sq, sok, bq, bok)
					}
				}
				if hw.ReadyCount() != sw.ReadyCount() || hw.ReadyCount() != bk.ReadyCount() {
					t.Fatalf("%v op %d: ready counts diverged hw=%d sw=%d bank=%d",
						kind, i/2, hw.ReadyCount(), sw.ReadyCount(), bk.ReadyCount())
				}
			}
		}
	})
}

// Package nshard is the banked core of the runtime Notifier: it mirrors
// the paper's banked monitoring set (§IV-A) in software so that thousands
// of producer goroutines can ring doorbells without serializing on one
// lock. Three pieces compose:
//
//   - QState: the per-queue monitoring-set entry, a packed atomic word
//     (armed/pending bit, registered bit, registration epoch) manipulated
//     only by CAS. A producer notifying an already-activated queue costs a
//     single atomic load; activating an armed queue is one CAS.
//   - Bank: a QID-interleaved shard of the ready set (one small mutex
//     around a ready.Hardware over the shard's local indices, plus one bit
//     in a shared summary word so sweeps can skip empty banks).
//   - Parker: a shard-striped wakeup list that consumers block on, so
//     producers wake exactly one waiter without a global condition
//     variable.
package nshard

import "sync/atomic"

// Packed word layout: bit 0 is the activation state (0 = armed, 1 =
// pending/activated), bit 1 is the registered bit, and the remaining bits
// are a registration epoch bumped on every Register. The epoch makes the
// word ABA-safe: a CAS prepared against a queue that was unregistered and
// re-registered in between always fails, so a stale Notify cannot
// activate the new tenant's entry.
const (
	pendingBit uint64 = 1 << 0
	regBit     uint64 = 1 << 1
	epochShift        = 2
)

// QState is one queue's monitoring-set entry: the packed atomic state
// word plus the doorbell pointer (Go cannot pack a pointer into the same
// word, so it rides alongside; both are only ever accessed atomically).
// The struct is padded to a cache line so neighbouring queues' producers
// do not false-share.
type QState struct {
	word atomic.Uint64
	db   atomic.Pointer[atomic.Int64]
	_    [64 - 16]byte
}

// Register stores the doorbell, sets the registered bit, arms the entry,
// and bumps the epoch. The caller serializes Register/Unregister (they
// are the cold control path); producers may race freely.
func (q *QState) Register(db *atomic.Int64) {
	q.db.Store(db)
	for {
		w := q.word.Load()
		nw := (w>>epochShift+1)<<epochShift | regBit
		if q.word.CompareAndSwap(w, nw) {
			return
		}
	}
}

// Unregister clears the registered and pending bits, keeping the epoch so
// in-flight CASes against the old registration fail.
func (q *QState) Unregister() {
	for {
		w := q.word.Load()
		nw := (w >> epochShift) << epochShift
		if q.word.CompareAndSwap(w, nw) {
			break
		}
	}
	q.db.Store(nil)
}

// Registered reports the registered bit.
func (q *QState) Registered() bool { return q.word.Load()&regBit != 0 }

// Pending reports whether the entry is activated (disarmed).
func (q *QState) Pending() bool {
	w := q.word.Load()
	return w&regBit != 0 && w&pendingBit != 0
}

// Epoch returns the registration epoch.
func (q *QState) Epoch() uint64 { return q.word.Load() >> epochShift }

// Doorbell returns the registered doorbell, or nil.
func (q *QState) Doorbell() *atomic.Int64 { return q.db.Load() }

// TryActivate is the producer fast path: armed -> pending. It returns
// false when the entry is unregistered or already pending (the notify
// coalesces, exactly like a disarmed monitoring-set entry swallowing
// doorbell writes). On false the caller does nothing further; on true the
// caller must insert the QID into its Bank and wake a waiter.
func (q *QState) TryActivate() bool {
	for {
		w := q.word.Load()
		if w&regBit == 0 || w&pendingBit != 0 {
			return false
		}
		if q.word.CompareAndSwap(w, w|pendingBit) {
			return true
		}
	}
}

// TryRearm is the consumer side: pending -> armed, so the next Notify
// activates again. Returns false if the entry is unregistered or already
// armed. Callers must re-check the doorbell AFTER a successful rearm and
// re-activate if it is non-zero: a producer that incremented the doorbell
// before the rearm may have had its Notify coalesced against the pending
// state, and the post-rearm re-check is what closes that window.
func (q *QState) TryRearm() bool {
	for {
		w := q.word.Load()
		if w&regBit == 0 || w&pendingBit == 0 {
			return false
		}
		if q.word.CompareAndSwap(w, w&^pendingBit) {
			return true
		}
	}
}

package experiments

import "fmt"

// HWCost reproduces the paper's §IV-C hardware cost analysis as a table:
// the RTL/CACTI/McPAT-derived area, power, and timing figures, and the
// derived chip-level overheads. We encode the published numbers (we cannot
// re-run RTL synthesis; see DESIGN.md §2) and recompute the derived
// percentages so the arithmetic is checked by tests.

// Published §IV-C constants (32 nm technology, 1024 entries, 16 cores).
const (
	ReadySetAreaMM2   = 0.13
	MonitorAreaMM2    = 0.21
	CoreAreaMM2       = 8.4
	ChipCores         = 16
	ReadySetPowerPct  = 2.1 // of a single core's power
	MonitorPowerPct   = 4.1
	ReadySetLatencyNS = 12.25
	MonitorLookupCyc  = 5
	QWaitLatencyCyc   = 50
)

// AreaOverheadPct returns the HyperPlane area as a percentage of total
// core area on a 16-core chip (paper: "within 0.26%").
func AreaOverheadPct() float64 {
	return (ReadySetAreaMM2 + MonitorAreaMM2) / (CoreAreaMM2 * ChipCores) * 100
}

// PowerOverheadPct returns HyperPlane power as a percentage of total core
// power for the 16-core chip (paper: "within 0.4%"; 6.2% of a single
// core).
func PowerOverheadPct() float64 {
	return (ReadySetPowerPct + MonitorPowerPct) / ChipCores
}

// HWCost builds the §IV-C table.
func HWCost(Options) []Table {
	t := Table{
		ID:     "hwcost",
		Title:  "HyperPlane hardware costs (paper §IV-C, 32 nm RTL/CACTI/McPAT)",
		XLabel: "component (1=ready set, 2=monitoring set, 3=core)",
		YLabel: "area (mm^2)",
		Series: []Series{
			{Label: "area mm^2", X: []float64{1, 2, 3},
				Y: []float64{ReadySetAreaMM2, MonitorAreaMM2, CoreAreaMM2}},
		},
	}
	t.Notes = []string{
		noteF("area overhead: %.2f%% of 16-core area (paper: within 0.26%%)", AreaOverheadPct()),
		noteF("power overhead: %.2f%% of 16-core power (paper: within 0.4%%; 6.2%% of one core)", PowerOverheadPct()),
		noteF("ready set latency: %.2f ns; monitoring lookup: %d cycles; QWAIT: %d cycles",
			ReadySetLatencyNS, MonitorLookupCyc, QWaitLatencyCyc),
		"these are the paper's published synthesis figures; the simulator consumes the latencies directly",
	}
	return []Table{t}
}

func noteF(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

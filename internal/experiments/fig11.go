package experiments

import (
	"hyperplane/internal/sdp"
)

// fig11Loads sweeps 0-100% including near-idle.
func fig11Loads(o Options) []float64 {
	if o.Quick {
		return []float64{0.02, 0.5, 0.9}
	}
	return []float64{0.02, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
}

// Fig11a reproduces the IPC breakdown (§V-D): the spinning data plane's
// useful vs useless IPC, and HyperPlane's IPC, across the load spectrum
// (packet encapsulation).
func Fig11a(o Options) []Table {
	t := Table{
		ID:     "fig11a",
		Title:  "IPC breakdown of the data plane core vs load",
		XLabel: "load (%)",
		YLabel: "IPC",
	}
	spinUseful := Series{Label: "spinning useful"}
	spinUseless := Series{Label: "spinning useless"}
	spinTotal := Series{Label: "spinning total"}
	hp := Series{Label: "hyperplane"}
	for _, load := range fig11Loads(o) {
		x := load * 100
		rs := mustRun(loadSweepCfg(o, sdp.Spinning, load, false))
		spinUseful.X = append(spinUseful.X, x)
		spinUseful.Y = append(spinUseful.Y, rs.UsefulIPC)
		spinUseless.X = append(spinUseless.X, x)
		spinUseless.Y = append(spinUseless.Y, rs.UselessIPC)
		spinTotal.X = append(spinTotal.X, x)
		spinTotal.Y = append(spinTotal.Y, rs.OverallIPC)

		rh := mustRun(loadSweepCfg(o, sdp.HyperPlane, load, false))
		hp.X = append(hp.X, x)
		hp.Y = append(hp.Y, rh.OverallIPC)
	}
	t.Series = []Series{spinUseful, spinUseless, spinTotal, hp}
	t.Notes = append(t.Notes,
		"expect: spinning IPC highest at 0% load (all useless); HyperPlane IPC ~linear in load (paper Fig. 11a)")
	return []Table{t}
}

// Fig11b reproduces the SMT co-runner interference experiment: the IPC of
// a matrix-multiply hyperthread sharing the core with each data plane,
// derived from the measured data plane activity through the ICOUNT-style
// contention model.
func Fig11b(o Options) []Table {
	t := Table{
		ID:     "fig11b",
		Title:  "IPC of an SMT co-runner sharing the core with the data plane",
		XLabel: "load (%)",
		YLabel: "co-runner IPC",
	}
	spin := Series{Label: "co-running with spinning"}
	hp := Series{Label: "co-running with hyperplane"}
	for _, load := range fig11Loads(o) {
		x := load * 100
		rs := mustRun(loadSweepCfg(o, sdp.Spinning, load, false))
		spin.X = append(spin.X, x)
		spin.Y = append(spin.Y, sdp.CoRunnerIPC(rs.OverallIPC))

		rh := mustRun(loadSweepCfg(o, sdp.HyperPlane, load, false))
		hp.X = append(hp.X, x)
		hp.Y = append(hp.Y, sdp.CoRunnerIPC(rh.OverallIPC))
	}
	t.Series = []Series{spin, hp}
	t.Notes = append(t.Notes,
		"expect: co-runner IPC rises with load under spinning, falls under HyperPlane (paper Fig. 11b)")
	return []Table{t}
}

package experiments

import (
	"fmt"

	"hyperplane/internal/sdp"
	"hyperplane/internal/traffic"
)

// fig9Samples returns the latency sample target per run.
func fig9Samples(o Options) int {
	if o.Quick {
		return 60
	}
	return 300
}

// Fig9a reproduces the spinning data plane's zero-load latency (§V-B):
// average and 99th-percentile latency per workload as queue count grows,
// under <1% load.
func Fig9a(o Options) []Table {
	t := Table{
		ID:     "fig9a",
		Title:  "Zero-load latency of the spinning data plane",
		XLabel: "queues",
		YLabel: "latency (us)",
	}
	for _, w := range workloads(o) {
		avg := Series{Label: w.Name + " avg"}
		tail := Series{Label: w.Name + " p99"}
		for _, n := range queueCounts(o) {
			r := mustRun(lightCfg(o, w, traffic.FB, n, sdp.Spinning, fig9Samples(o)))
			avg.X = append(avg.X, float64(n))
			avg.Y = append(avg.Y, r.AvgLatency.Microseconds())
			tail.X = append(tail.X, float64(n))
			tail.Y = append(tail.Y, r.P99Latency.Microseconds())
		}
		t.Series = append(t.Series, avg, tail)
	}
	t.Notes = append(t.Notes,
		"expect: avg and p99 grow ~linearly with queues; p99 slope steeper (paper Fig. 9a)")
	return []Table{t}
}

// Fig9b reproduces HyperPlane's zero-load latency in regular and
// power-optimized (C1) modes: flat in queue count, with the ~0.5 us wake-up
// penalty in the power-optimized mode.
func Fig9b(o Options) []Table {
	t := Table{
		ID:     "fig9b",
		Title:  "Zero-load average latency of HyperPlane (regular vs power-optimized)",
		XLabel: "queues",
		YLabel: "latency (us)",
	}
	for _, w := range workloads(o) {
		for _, popt := range []bool{false, true} {
			mode := "regular"
			if popt {
				mode = "power-optimized"
			}
			s := Series{Label: fmt.Sprintf("%s %s", w.Name, mode)}
			for _, n := range queueCounts(o) {
				cfg := lightCfg(o, w, traffic.FB, n, sdp.HyperPlane, fig9Samples(o))
				cfg.PowerOptimized = popt
				r := mustRun(cfg)
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, r.AvgLatency.Microseconds())
			}
			t.Series = append(t.Series, s)
		}
	}
	t.Notes = append(t.Notes,
		"expect: flat in queue count; power-optimized ~0.5us above regular (paper Fig. 9b)")
	return []Table{t}
}

package experiments

import (
	"fmt"

	"hyperplane/internal/sdp"
	"hyperplane/internal/traffic"
)

// Fig12a reproduces the power-proportionality comparison (§V-D): core
// power at zero load and saturation, normalized to the spinning data
// plane's saturation power (=100%).
func Fig12a(o Options) []Table {
	t := Table{
		ID:     "fig12a",
		Title:  "Normalized core power at zero load vs saturation",
		XLabel: "point (0=zero load, 1=saturation)",
		YLabel: "power (% of spinning saturation)",
	}
	const idle, sat = 0.02, 1.0
	spinIdle := mustRun(loadSweepCfg(o, sdp.Spinning, idle, false))
	spinSat := mustRun(loadSweepCfg(o, sdp.Spinning, sat, false))
	hpIdle := mustRun(loadSweepCfg(o, sdp.HyperPlane, idle, false))
	hpSat := mustRun(loadSweepCfg(o, sdp.HyperPlane, sat, false))
	hpIdleC1 := mustRun(loadSweepCfg(o, sdp.HyperPlane, idle, true))

	base := spinSat.AvgPowerW
	norm := func(w float64) float64 { return w / base * 100 }

	t.Series = []Series{
		{Label: "spinning", X: []float64{0, 1}, Y: []float64{norm(spinIdle.AvgPowerW), 100}},
		{Label: "hyperplane", X: []float64{0, 1}, Y: []float64{norm(hpIdle.AvgPowerW), norm(hpSat.AvgPowerW)}},
		{Label: "hyperplane power-optimized", X: []float64{0}, Y: []float64{norm(hpIdleC1.AvgPowerW)}},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("power-optimized zero-load power = %.1f%% of spinning saturation (paper: 16.2%%)",
			norm(hpIdleC1.AvgPowerW)),
		"expect: spinning zero-load > spinning saturation (work disproportionality) (paper Fig. 12a)")
	return []Table{t}
}

// Fig12b reproduces the wake-up latency cost of the power-optimized mode:
// P99 latency vs load for regular HyperPlane, power-optimized HyperPlane,
// and the spinning baseline (Fig. 10a's FB multicore setup; paper plots
// log-scale).
func Fig12b(o Options) []Table {
	t := Table{
		ID:     "fig12b",
		Title:  "Tail latency vs load with power-optimized HyperPlane (4 cores, FB)",
		XLabel: "load (%)",
		YLabel: "P99 latency (us)",
	}
	type variant struct {
		name  string
		plane sdp.PlaneKind
		popt  bool
	}
	for _, v := range []variant{
		{"spinning", sdp.Spinning, false},
		{"hyperplane", sdp.HyperPlane, false},
		{"hyperplane low-power idle", sdp.HyperPlane, true},
	} {
		s := Series{Label: v.name}
		for _, load := range loadPoints(o) {
			cfg := multicoreCfg(o, traffic.FB, v.plane, 4, load, 0)
			if v.plane == sdp.Spinning {
				cfg.ClusterSize = 1 // spinning runs scale-out, its best org
			}
			cfg.PowerOptimized = v.popt
			r := mustRun(cfg)
			s.X = append(s.X, load*100)
			s.Y = append(s.Y, r.P99Latency.Microseconds())
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		"expect: low-power idle costs most at low load (~38% in paper) and the gap shrinks with load (paper Fig. 12b)")
	return []Table{t}
}

package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true, Seed: 7}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure in the paper's evaluation must be present.
	want := []string{"table1", "fig3a", "fig3b", "fig3c", "fig8", "fig9a",
		"fig9b", "fig10a", "fig10b", "fig11a", "fig11b", "fig12a", "fig12b",
		"fig13", "headline",
		"ext-mwait", "ext-steal", "ext-policy", "ext-monitor", "ext-inorder",
		"ext-batch", "ext-burst", "ext-numa", "hwcost", "ext-scaling"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestTableIReflectsDefaults(t *testing.T) {
	tabs := TableI(quick)
	if len(tabs) != 1 {
		t.Fatal("TableI should return one table")
	}
	text := tabs[0].Format()
	for _, frag := range []string{"3.0 GHz", "32 KB", "4-way", "16-way", "MESI", "1024-entry", "50 cycles"} {
		if !strings.Contains(text, frag) {
			t.Errorf("Table I output missing %q:\n%s", frag, text)
		}
	}
}

func TestFig3aShapes(t *testing.T) {
	tabs := Fig3a(quick)
	tab := tabs[0]
	if len(tab.Series) != 4 {
		t.Fatalf("series = %d, want 4 shapes", len(tab.Series))
	}
	// SQ must collapse from the smallest to largest queue count.
	var sq Series
	for _, s := range tab.Series {
		if s.Label == "SQ" {
			sq = s
		}
	}
	if len(sq.Y) < 2 {
		t.Fatal("SQ series missing")
	}
	first, last := sq.Y[0], sq.Y[len(sq.Y)-1]
	if last >= first*0.7 {
		t.Errorf("SQ throughput did not collapse: %.3f -> %.3f", first, last)
	}
}

func TestFig3bMonotone(t *testing.T) {
	tab := Fig3b(quick)[0]
	if len(tab.Series) != 2 {
		t.Fatal("want avg and tail series")
	}
	avg, tail := tab.Series[0], tab.Series[1]
	if avg.Y[len(avg.Y)-1] <= avg.Y[0] {
		t.Error("average latency did not grow with queue count")
	}
	for i := range avg.Y {
		if tail.Y[i] < avg.Y[i] {
			t.Errorf("tail below average at x=%v", avg.X[i])
		}
	}
}

func TestFig3cCDFMonotone(t *testing.T) {
	tab := Fig3c(quick)[0]
	for _, s := range tab.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s: CDF not monotone", s.Label)
			}
		}
	}
}

func TestFig13SoftwareSlower(t *testing.T) {
	tab := Fig13(quick)[0]
	for _, s := range tab.Series {
		for i, y := range s.Y {
			if y > 101 {
				t.Errorf("%s[%d]: software ready set at %.1f%% (faster than hardware?)", s.Label, i, y)
			}
			if y < 5 {
				t.Errorf("%s[%d]: software ready set at %.1f%% (unreasonably slow)", s.Label, i, y)
			}
		}
	}
}

func TestFig12aProportions(t *testing.T) {
	tab := Fig12a(quick)[0]
	byLabel := map[string]Series{}
	for _, s := range tab.Series {
		byLabel[s.Label] = s
	}
	spin := byLabel["spinning"]
	if len(spin.Y) != 2 || spin.Y[0] <= spin.Y[1] {
		t.Errorf("spinning zero-load power (%v) should exceed saturation (%v)", spin.Y[0], spin.Y[1])
	}
	popt := byLabel["hyperplane power-optimized"]
	if len(popt.Y) != 1 || popt.Y[0] > 30 || popt.Y[0] < 8 {
		t.Errorf("power-optimized zero-load = %.1f%%, expect near paper's 16.2%%", popt.Y[0])
	}
}

func TestFormatAndCSV(t *testing.T) {
	tab := Table{
		ID: "x", Title: "test", XLabel: "q", YLabel: "v",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{2}, Y: []float64{30}},
		},
		Notes: []string{"hello"},
	}
	text := tab.Format()
	for _, frag := range []string{"== x: test ==", "a", "b", "hello", "10", "30", "-"} {
		if !strings.Contains(text, frag) {
			t.Errorf("Format missing %q in:\n%s", frag, text)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "x,a,b") || !strings.Contains(csv, "1,10,") {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

func TestExtMonitorShape(t *testing.T) {
	tab := ExtMonitor(quick)[0]
	if len(tab.Series) != 2 {
		t.Fatal("want bucketized and classic series")
	}
	bucketized, classic := tab.Series[0], tab.Series[1]
	// At 90% occupancy the bucketized design must be far below classic.
	for i, x := range bucketized.X {
		if x == 90 {
			if bucketized.Y[i] > 1 {
				t.Errorf("bucketized conflict rate at 90%% = %.2f%%", bucketized.Y[i])
			}
			if classic.Y[i] < 10 {
				t.Errorf("classic conflict rate at 90%% = %.2f%%, expected blow-up", classic.Y[i])
			}
		}
	}
}

func TestExtInOrderShape(t *testing.T) {
	tab := ExtInOrder(quick)[0]
	byLabel := map[string]Series{}
	for _, s := range tab.Series {
		byLabel[s.Label] = s
	}
	conc, ord := byLabel["concurrent"], byLabel["in-order"]
	// SQ (x=1): ordered must be well below concurrent.
	if ord.Y[0] > conc.Y[0]*0.5 {
		t.Errorf("in-order SQ %.3f vs concurrent %.3f: not serialized", ord.Y[0], conc.Y[0])
	}
	// FB (x=4): within 15%.
	if ord.Y[3] < conc.Y[3]*0.85 {
		t.Errorf("in-order FB %.3f vs concurrent %.3f: unexpected cost", ord.Y[3], conc.Y[3])
	}
}

func TestExtPolicyMinimalImpact(t *testing.T) {
	tab := ExtPolicy(quick)[0]
	// All policies within 20% of each other at every queue count.
	base := tab.Series[0]
	for _, s := range tab.Series[1:] {
		for i := range base.Y {
			lo, hi := base.Y[i]*0.8, base.Y[i]*1.2
			if s.Y[i] < lo || s.Y[i] > hi {
				t.Errorf("%s at x=%v: %.3f deviates from %s %.3f",
					s.Label, s.X[i], s.Y[i], base.Label, base.Y[i])
			}
		}
	}
}

func TestPlotRendering(t *testing.T) {
	tab := Table{
		ID: "p", Title: "plot test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "up", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 4}},
			{Label: "steep", X: []float64{0, 1, 2, 3}, Y: []float64{1, 10, 1000, 100000}},
		},
	}
	out := tab.Plot(40, 10)
	for _, frag := range []string{"plot test", "log scale", "* up", "o steep", "x: x"} {
		if !strings.Contains(out, frag) {
			t.Errorf("plot missing %q:\n%s", frag, out)
		}
	}
	// Empty table renders gracefully.
	empty := Table{ID: "e", Title: "empty"}
	if !strings.Contains(empty.Plot(40, 10), "no data") {
		t.Error("empty plot")
	}
	// Linear case.
	lin := Table{ID: "l", Title: "lin", Series: []Series{{Label: "a", X: []float64{0, 1}, Y: []float64{5, 6}}}}
	if !strings.Contains(lin.Plot(40, 10), "linear scale") {
		t.Error("linear scale not used")
	}
}

// TestAllExperimentsQuick exercises every registered experiment end-to-end
// in quick mode, checking structural sanity of each output.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep skipped in -short mode")
	}
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tabs := e.Run(quick)
			if len(tabs) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tabs {
				if tab.ID == "" || tab.Title == "" {
					t.Error("missing id/title")
				}
				if tab.ID != "table1" && len(tab.Series) == 0 {
					t.Error("no series")
				}
				for _, s := range tab.Series {
					if len(s.X) != len(s.Y) {
						t.Errorf("series %q: |X|=%d |Y|=%d", s.Label, len(s.X), len(s.Y))
					}
					for i, y := range s.Y {
						if y < 0 {
							t.Errorf("series %q point %d negative: %v", s.Label, i, y)
						}
					}
				}
				if tab.Format() == "" || tab.CSV() == "" || tab.Plot(40, 8) == "" {
					t.Error("empty rendering")
				}
			}
		})
	}
}

func TestHWCostArithmetic(t *testing.T) {
	// The derived overheads must reproduce the paper's §IV-C claims.
	if got := AreaOverheadPct(); got > 0.26 || got < 0.2 {
		t.Errorf("area overhead = %.3f%%, paper says within 0.26%%", got)
	}
	if got := PowerOverheadPct(); got > 0.4 || got < 0.3 {
		t.Errorf("power overhead = %.3f%%, paper says within 0.4%%", got)
	}
	tab := HWCost(quick)[0]
	if len(tab.Series) != 1 || len(tab.Notes) < 3 {
		t.Error("hwcost table malformed")
	}
}

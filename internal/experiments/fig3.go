package experiments

import (
	"fmt"

	"hyperplane/internal/sdp"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// Fig3a reproduces the DPDK case study's throughput scalability (§II-C):
// a single spinning core executing packet encapsulation under the four
// traffic shapes as the queue count grows.
func Fig3a(o Options) []Table {
	t := Table{
		ID:     "fig3a",
		Title:  "Throughput of packet encapsulation (spinning data plane)",
		XLabel: "queues",
		YLabel: "million tasks/sec",
	}
	for _, shape := range traffic.Shapes {
		s := Series{Label: shape.String()}
		for _, n := range queueCounts(o) {
			r := mustRun(satCfg(o, workload.PacketEncap, shape, n, sdp.Spinning))
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.ThroughputMTasks)
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		"expect: drastic drop for SQ, milder for NC, stabilizing for FB/PC (paper Fig. 3a)")
	return []Table{t}
}

// fig3bQueueCounts is the Fig. 3b sweep (paper: up to 512).
func fig3bQueueCounts(o Options) []int {
	if o.Quick {
		return []int{1, 64, 256}
	}
	return []int{1, 64, 128, 256, 384, 512}
}

// Fig3b reproduces the round-trip latency of packet forwarding under light
// traffic (~0.01 MPPS): average and 99th percentile vs queue count.
func Fig3b(o Options) []Table {
	t := Table{
		ID:     "fig3b",
		Title:  "Round-trip latency of packet forwarding under light traffic",
		XLabel: "queues",
		YLabel: "latency (us)",
	}
	samples := 400
	if o.Quick {
		samples = 80
	}
	avg := Series{Label: "average"}
	tail := Series{Label: "99% tail"}
	for _, n := range fig3bQueueCounts(o) {
		r := mustRun(lightCfg(o, forwarding, traffic.FB, n, sdp.Spinning, samples))
		avg.X = append(avg.X, float64(n))
		avg.Y = append(avg.Y, (r.AvgLatency + wireRTT).Microseconds())
		tail.X = append(tail.X, float64(n))
		tail.Y = append(tail.Y, (r.P99Latency + wireRTT).Microseconds())
	}
	t.Series = []Series{avg, tail}
	t.Notes = append(t.Notes,
		"expect: both grow ~linearly with queue count, tail with a higher slope (paper Fig. 3b)")
	return []Table{t}
}

// Fig3c reproduces the latency CDF at three queue counts.
func Fig3c(o Options) []Table {
	t := Table{
		ID:     "fig3c",
		Title:  "Distribution of round-trip latency (CDF)",
		XLabel: "CDF percentile",
		YLabel: "latency (us)",
	}
	counts := []int{1, 256, 512}
	if o.Quick {
		counts = []int{1, 128}
	}
	samples := 600
	if o.Quick {
		samples = 120
	}
	for _, n := range counts {
		r := mustRun(lightCfg(o, forwarding, traffic.FB, n, sdp.Spinning, samples))
		s := Series{Label: plural(n)}
		for _, pt := range r.CDF {
			s.X = append(s.X, pt.Pct)
			s.Y = append(s.Y, (sim.Time(pt.Value) + wireRTT).Microseconds())
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		"expect: wider latency spread at higher queue counts (paper Fig. 3c)")
	return []Table{t}
}

func plural(n int) string {
	if n == 1 {
		return "1 queue"
	}
	return fmt.Sprintf("%d queues", n)
}

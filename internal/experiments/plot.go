package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the table as an ASCII chart: one mark per series over a
// width x height grid, with a legend. Y is linear unless the series span
// more than three decades, in which case a log scale is used. Intended for
// quick terminal inspection (hyperbench -plot); the Format/CSV renderings
// remain the precise outputs.
func (t Table) Plot(width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range t.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		return fmt.Sprintf("== %s: %s == (no data)\n", t.ID, t.Title)
	}
	logY := ymin > 0 && ymax/ymin > 1000
	ty := func(y float64) float64 {
		if logY {
			return math.Log10(y)
		}
		return y
	}
	lo, hi := ty(ymin), ty(ymax)
	if hi == lo {
		hi = lo + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range t.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((ty(s.Y[i])-lo)/(hi-lo)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	scale := "linear"
	if logY {
		scale = "log"
	}
	fmt.Fprintf(&b, "   y: %s (%s scale, %.4g .. %.4g)\n", t.YLabel, scale, ymin, ymax)
	for _, row := range grid {
		b.WriteString("   |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("   +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "    x: %s (%.4g .. %.4g)\n", t.XLabel, xmin, xmax)
	for si, s := range t.Series {
		fmt.Fprintf(&b, "    %c %s\n", marks[si%len(marks)], s.Label)
	}
	return b.String()
}

package experiments

import (
	"fmt"

	"hyperplane/internal/mem"
	"hyperplane/internal/monitor"
	"hyperplane/internal/policy"
	"hyperplane/internal/sdp"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// The ext-* experiments go beyond the paper's figures: they evaluate the
// designs the paper discusses qualitatively (the MWAIT baseline of §III-A,
// the in-order mode and work-stealing sketch of §III-B) and ablate design
// choices DESIGN.md calls out (monitoring-set over-provisioning, service
// policy, batching).

// ExtMWait compares the three notification mechanisms' zero-load latency
// scaling: spinning, MWAIT-style halting, and HyperPlane. MWAIT restores
// work proportionality but keeps the queue-scalability problem.
func ExtMWait(o Options) []Table {
	t := Table{
		ID:     "ext-mwait",
		Title:  "Zero-load latency: spinning vs MWAIT-style halting vs HyperPlane",
		XLabel: "queues",
		YLabel: "avg latency (us)",
	}
	planes := []sdp.PlaneKind{sdp.Spinning, sdp.MWait, sdp.HyperPlane}
	idlePower := make([]float64, len(planes))
	for pi, plane := range planes {
		s := Series{Label: plane.String()}
		for _, n := range queueCounts(o) {
			r := mustRun(lightCfg(o, workload.PacketEncap, traffic.FB, n, plane, fig9Samples(o)))
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.AvgLatency.Microseconds())
			idlePower[pi] = r.AvgPowerW
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("idle core power: spinning %.1fW, mwait %.1fW, hyperplane %.1fW",
			idlePower[0], idlePower[1], idlePower[2]),
		"expect: mwait tracks spinning's latency growth but hyperplane's idle power (paper §III-A)")
	return []Table{t}
}

// ExtSteal evaluates the work-stealing extension under severe static
// imbalance: scale-out HyperPlane with and without stealing.
func ExtSteal(o Options) []Table {
	t := Table{
		ID:     "ext-steal",
		Title:  "Work stealing across ready sets under static imbalance (4 cores, scale-out)",
		XLabel: "load (%)",
		YLabel: "P99 latency (us)",
	}
	queues := 400
	dur := 40 * sim.Millisecond
	if o.Quick {
		queues = 80
		dur = 10 * sim.Millisecond
	}
	mk := func(steal bool, imbalance float64) Series {
		name := fmt.Sprintf("imbalance=%.0f%%", imbalance*100)
		if steal {
			name += " + stealing"
		}
		s := Series{Label: name}
		for _, load := range loadPoints(o) {
			cfg := sdp.Config{
				Cores:        4,
				ClusterSize:  1,
				Queues:       queues,
				Workload:     workload.PacketEncap,
				Shape:        traffic.PC,
				Plane:        sdp.HyperPlane,
				Policy:       policy.Spec{Kind: policy.RoundRobin},
				Mode:         sdp.OpenLoop,
				Load:         load,
				Imbalance:    imbalance,
				WorkStealing: steal,
				Warmup:       dur / 8,
				Duration:     dur,
				Seed:         o.Seed + 8,
			}
			r := mustRun(cfg)
			s.X = append(s.X, load*100)
			s.Y = append(s.Y, r.P99Latency.Microseconds())
		}
		return s
	}
	t.Series = []Series{
		mk(false, 0),
		mk(false, 0.5),
		mk(true, 0.5),
	}
	t.Notes = append(t.Notes,
		"expect: stealing recovers most of the imbalance-induced tail (paper §III-B future work)")
	return []Table{t}
}

// ExtPolicy ablates the service policy: the paper reports policies have
// minimal impact on performance trends (§V-A); this verifies it across
// all five disciplines of the shared arbitration layer, including the
// deficit-round-robin and EWMA-adaptive extensions.
func ExtPolicy(o Options) []Table {
	t := Table{
		ID:     "ext-policy",
		Title:  "Service policy ablation: peak throughput per policy",
		XLabel: "queues",
		YLabel: "million tasks/sec",
	}
	queues := queueCounts(o)
	skewed := func(n int) []int {
		w := make([]int, n)
		for i := range w {
			w[i] = 1 + i%4
		}
		return w
	}
	none := func(int) []int { return nil }
	type pol struct {
		name    string
		kind    policy.Kind
		weights func(n int) []int
	}
	pols := []pol{
		{"round-robin", policy.RoundRobin, none},
		{"weighted-round-robin", policy.WeightedRoundRobin, skewed},
		{"strict-priority", policy.StrictPriority, none},
		{"deficit-round-robin", policy.DeficitRoundRobin, skewed},
		{"ewma-adaptive", policy.EWMAAdaptive, none},
	}
	for _, pl := range pols {
		s := Series{Label: pl.name}
		for _, n := range queues {
			cfg := satCfg(o, workload.PacketEncap, traffic.PC, n, sdp.HyperPlane)
			cfg.Policy = policy.Spec{Kind: pl.kind}
			cfg.Weights = pl.weights(n)
			r := mustRun(cfg)
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.ThroughputMTasks)
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		"expect: near-identical throughput across policies (paper §V-A)")
	return []Table{t}
}

// ExtMonitor ablates monitoring-set over-provisioning: cuckoo insertion
// conflict rate vs occupancy (the paper's 5-10% headroom -> ~0.1% claim).
func ExtMonitor(o Options) []Table {
	t := Table{
		ID:     "ext-monitor",
		Title:  "Monitoring set (bucketized cuckoo) conflict rate vs occupancy",
		XLabel: "occupancy (%)",
		YLabel: "first-attempt conflict rate (%)",
	}
	const entries = 1024
	occupancies := []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.977, 1.0}
	if o.Quick {
		occupancies = []float64{0.7, 0.9, 1.0}
	}
	s := Series{Label: "2-way x 4-slot cuckoo"}
	s1 := Series{Label: "2-way x 1-slot (classic)"}
	for _, occ := range occupancies {
		q := int(occ * entries)
		s.X = append(s.X, occ*100)
		s.Y = append(s.Y, monitor.ConflictRate(entries, q, o.Seed+1)*100)
	}
	for _, occ := range occupancies {
		// Classic cuckoo for contrast: conflicts explode past ~50%.
		cfg := monitor.DefaultConfig()
		cfg.Slots = 1
		s1.X = append(s1.X, occ*100)
		s1.Y = append(s1.Y, classicConflictRate(cfg, entries, int(occ*entries))*100)
	}
	t.Series = []Series{s, s1}
	t.Notes = append(t.Notes,
		"expect: bucketized design sustains ~0.1% conflicts at 5-10% headroom (paper §IV-A)")
	return []Table{t}
}

func memAddr(a int) mem.Addr { return mem.Addr(a) }

func classicConflictRate(cfg monitor.Config, entries, queues int) float64 {
	cfg.Entries = entries
	s := monitor.New(cfg)
	conflicts := 0
	for q := 0; q < queues; q++ {
		addr := 0x600000 + q*64
		err := s.Add(q, memAddr(addr))
		for try := 1; err == monitor.ErrConflict; try++ {
			conflicts++
			if try > 200 {
				// Classic cuckoo genuinely cannot reach this occupancy;
				// count the remaining insertions as conflicts and stop.
				conflicts += queues - q
				return float64(conflicts) / float64(queues)
			}
			err = s.Add(q, memAddr(0x900000+(q*131+try*7919)*64))
		}
		if err != nil {
			return float64(conflicts) / float64(queues)
		}
	}
	return float64(conflicts) / float64(queues)
}

// ExtInOrder measures the cost of flow-stateful in-order processing
// (paper §III-B): intra-queue concurrency is forgone, so concentrated
// traffic serializes.
func ExtInOrder(o Options) []Table {
	t := Table{
		ID:     "ext-inorder",
		Title:  "In-order (flow-stateful) processing cost, 4 scale-up cores",
		XLabel: "shape (1=SQ, 2=NC, 3=PC, 4=FB)",
		YLabel: "peak throughput (M tasks/s)",
	}
	shapes := []traffic.Shape{traffic.SQ, traffic.NC, traffic.PC, traffic.FB}
	for _, inOrder := range []bool{false, true} {
		label := "concurrent"
		if inOrder {
			label = "in-order"
		}
		s := Series{Label: label}
		for i, shape := range shapes {
			cfg := satCfg(o, workload.PacketEncap, shape, 64, sdp.HyperPlane)
			cfg.Cores = 4
			cfg.ClusterSize = 4
			cfg.InOrder = inOrder
			r := mustRun(cfg)
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, r.ThroughputMTasks)
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		"expect: in-order serializes SQ to ~1 core's rate; balanced shapes unaffected (paper §III-B)")
	return []Table{t}
}

// ExtBatch ablates the dequeue batch size: batching amortizes notification
// overheads at the cost of per-item latency.
func ExtBatch(o Options) []Table {
	t := Table{
		ID:     "ext-batch",
		Title:  "Dequeue batch size ablation (HyperPlane, PC traffic)",
		XLabel: "batch size",
		YLabel: "value",
	}
	batches := []int{1, 2, 4, 8, 16}
	if o.Quick {
		batches = []int{1, 4, 16}
	}
	thr := Series{Label: "peak throughput (M/s)"}
	p99 := Series{Label: "p99 latency at 70% load (us)"}
	for _, b := range batches {
		cfg := satCfg(o, workload.PacketEncap, traffic.PC, 256, sdp.HyperPlane)
		cfg.BatchSize = b
		thr.X = append(thr.X, float64(b))
		thr.Y = append(thr.Y, mustRun(cfg).ThroughputMTasks)

		lcfg := loadSweepCfg(o, sdp.HyperPlane, 0.7, false)
		lcfg.BatchSize = b
		p99.X = append(p99.X, float64(b))
		p99.Y = append(p99.Y, mustRun(lcfg).P99Latency.Microseconds())
	}
	t.Series = []Series{thr, p99}
	t.Notes = append(t.Notes,
		"expect: throughput rises slightly with batch size; latency impact modest at moderate load")
	return []Table{t}
}

// ExtBurst evaluates robustness to bursty tenant activity (the paper's
// §II-B motivation): P99 latency vs burstiness at fixed 50% load, spinning
// vs HyperPlane. Spinning pays the empty-queue interrogation tax exactly
// when bursts subside, so its tail degrades faster.
func ExtBurst(o Options) []Table {
	t := Table{
		ID:     "ext-burst",
		Title:  "Tail latency vs traffic burstiness (PC traffic, 50% load)",
		XLabel: "burstiness (peak/mean rate)",
		YLabel: "P99 latency (us)",
	}
	bursts := []float64{1, 2, 4, 8}
	if o.Quick {
		bursts = []float64{1, 4}
	}
	queues := 400
	dur := 40 * sim.Millisecond
	if o.Quick {
		queues = 100
		dur = 8 * sim.Millisecond
	}
	for _, plane := range []sdp.PlaneKind{sdp.Spinning, sdp.HyperPlane} {
		s := Series{Label: plane.String()}
		for _, burst := range bursts {
			cfg := sdp.Config{
				Cores:      1,
				Queues:     queues,
				Workload:   workload.PacketEncap,
				Shape:      traffic.PC,
				Plane:      plane,
				Policy:     policy.Spec{Kind: policy.RoundRobin},
				Mode:       sdp.OpenLoop,
				Load:       0.5,
				Burstiness: burst,
				Warmup:     dur / 8,
				Duration:   dur,
				Seed:       o.Seed + 9,
			}
			r := mustRun(cfg)
			s.X = append(s.X, burst)
			s.Y = append(s.Y, r.P99Latency.Microseconds())
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		"expect: both degrade with burstiness; HyperPlane stays well below spinning throughout")
	return []Table{t}
}

// ExtNUMA evaluates the paper's envisioned multi-socket deployment
// (§III-B): 2 sockets x 2 cores, scale-out per socket, with socket-level
// load imbalance. Cross-socket work stealing trades an interconnect hop per
// stolen item against the imbalance-induced queueing.
func ExtNUMA(o Options) []Table {
	t := Table{
		ID:     "ext-numa",
		Title:  "NUMA deployment: 2 sockets, socket imbalance, cross-socket stealing",
		XLabel: "load (%)",
		YLabel: "P99 latency (us)",
	}
	queues := 400
	dur := 40 * sim.Millisecond
	if o.Quick {
		queues = 80
		dur = 10 * sim.Millisecond
	}
	mk := func(label string, imbalance float64, steal bool) Series {
		s := Series{Label: label}
		for _, load := range loadPoints(o) {
			cfg := sdp.Config{
				Cores:        4,
				ClusterSize:  1,
				Sockets:      2,
				Queues:       queues,
				Workload:     workload.PacketEncap,
				Shape:        traffic.PC,
				Plane:        sdp.HyperPlane,
				Policy:       policy.Spec{Kind: policy.RoundRobin},
				Mode:         sdp.OpenLoop,
				Load:         load,
				Imbalance:    imbalance,
				WorkStealing: steal,
				Warmup:       dur / 8,
				Duration:     dur,
				Seed:         o.Seed + 10,
			}
			r := mustRun(cfg)
			s.X = append(s.X, load*100)
			s.Y = append(s.Y, r.P99Latency.Microseconds())
		}
		return s
	}
	t.Series = []Series{
		mk("balanced", 0, false),
		mk("socket imbalance 50%", 0.5, false),
		mk("socket imbalance 50% + stealing", 0.5, true),
	}
	t.Notes = append(t.Notes,
		"expect: stealing absorbs the imbalance at the cost of interconnect hops (paper §III-B)")
	return []Table{t}
}

// ExtScaling measures HyperPlane's peak-throughput scaling with core count
// in the full scale-up organization: the shared ready set serializes QWAIT
// selections, but at 12.25 ns per selection against multi-microsecond
// tasks, scaling stays near-linear well past the paper's 1-4 data plane
// cores (§IV-C argues it can serve O(100) cores).
func ExtScaling(o Options) []Table {
	t := Table{
		ID:     "ext-scaling",
		Title:  "HyperPlane scale-up throughput vs core count (FB saturation)",
		XLabel: "cores",
		YLabel: "million tasks/sec",
	}
	coreCounts := []int{1, 2, 4, 8, 16}
	if o.Quick {
		coreCounts = []int{1, 2, 4}
	}
	for _, w := range []workload.Spec{workload.PacketEncap, workload.CryptoForward} {
		s := Series{Label: w.Name}
		ideal := Series{Label: w.Name + " (ideal linear)"}
		var base float64
		for _, cores := range coreCounts {
			cfg := satCfg(o, w, traffic.FB, 256, sdp.HyperPlane)
			cfg.Cores = cores
			cfg.ClusterSize = cores
			r := mustRun(cfg)
			if cores == 1 {
				base = r.ThroughputMTasks
			}
			s.X = append(s.X, float64(cores))
			s.Y = append(s.Y, r.ThroughputMTasks)
			ideal.X = append(ideal.X, float64(cores))
			ideal.Y = append(ideal.Y, base*float64(cores))
		}
		t.Series = append(t.Series, s, ideal)
	}
	t.Notes = append(t.Notes,
		"expect: near-linear scaling — the shared ready set is far from serialization at these core counts (paper §IV-C)")
	return []Table{t}
}

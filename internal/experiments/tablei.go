package experiments

import (
	"fmt"

	"hyperplane/internal/mem"
	"hyperplane/internal/monitor"
	"hyperplane/internal/ready"
)

// TableI reports the simulated microarchitecture configuration (paper
// Table I) as rendered notes, cross-checked against the live defaults of
// the mem/monitor/ready packages so the report can never drift from the
// code.
func TableI(Options) []Table {
	mc := mem.DefaultConfig(16)
	mon := monitor.DefaultConfig()
	t := Table{
		ID:    "table1",
		Title: "Microarchitecture details (paper Table I)",
	}
	t.Notes = []string{
		"Core: 8-wide issue OoO, 192/32-entry ROB/LSQ (modeled behaviourally: calibrated IPC + latency costs)",
		fmt.Sprintf("Clock: %.1f GHz (period %v)", mc.Clock.FreqGHz(), mc.Clock.Period()),
		fmt.Sprintf("L1 I/D: private, %d KB, %d B lines, %d-way SA, %d-cycle hit",
			mc.L1Size>>10, mem.LineSize, mc.L1Ways, mc.L1HitCycles),
		fmt.Sprintf("LLC: %d MB total (1 MB per core), %d B lines, %d-way SA, %d-cycle hit",
			mc.LLCSize>>20, mem.LineSize, mc.LLCWays, mc.LLCHitCycles),
		fmt.Sprintf("Memory: %v; cache-to-cache: %d cycles", mc.MemLatency, mc.C2CCycles),
		"CMP: 16 cores, directory-based MESI coherence",
		fmt.Sprintf("HyperPlane: %d-entry monitoring set (2-way cuckoo, %d-cycle lookup), %d-entry ready set (PPA, %v)",
			mon.Entries, mon.LookupCycles, mon.Entries, ready.HardwareLatency),
		"QWAIT end-to-end latency: 50 cycles (conservative, paper §IV-C)",
	}
	return []Table{t}
}

package experiments

import (
	"fmt"
	"math"

	"hyperplane/internal/sdp"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// Headline computes the paper's summary numbers: HyperPlane's mean peak-
// throughput improvement (paper: 4.1x) across workloads, traffic shapes,
// and queue counts, and its mean average/tail zero-load latency
// improvements (paper: 9.1x / 16.4x) across queue counts.
func Headline(o Options) []Table {
	t := Table{
		ID:     "headline",
		Title:  "Mean improvements of HyperPlane over the spinning data plane",
		XLabel: "metric (1=throughput, 2=avg latency, 3=p99 latency)",
		YLabel: "improvement (x)",
	}

	// Throughput: mean of per-point ratios over the Fig. 8 grid (the
	// paper's "on average ... across a varying number of I/O queues" is an
	// arithmetic mean over its sweep; the geometric mean is reported in
	// the notes for robustness).
	var sum, logSum float64
	var points int
	counts := queueCounts(o)
	for _, w := range throughputWorkloads(o) {
		for _, shape := range traffic.Shapes {
			for _, n := range counts {
				spin := mustRun(satCfg(o, w, shape, n, sdp.Spinning)).ThroughputMTasks
				hp := mustRun(satCfg(o, w, shape, n, sdp.HyperPlane)).ThroughputMTasks
				if spin > 0 && hp > 0 {
					sum += hp / spin
					logSum += math.Log(hp / spin)
					points++
				}
			}
		}
	}
	thr := sum / float64(points)
	thrGeo := math.Exp(logSum / float64(points))

	// Latency: mean ratios across queue counts at <1% load.
	var avgSum, tailSum float64
	var latPoints int
	samples := fig9Samples(o)
	for _, w := range throughputWorkloads(o) {
		for _, n := range counts {
			spin := mustRun(lightCfg(o, w, traffic.FB, n, sdp.Spinning, samples))
			hp := mustRun(lightCfg(o, w, traffic.FB, n, sdp.HyperPlane, samples))
			if hp.AvgLatency > 0 && hp.P99Latency > 0 {
				avgSum += float64(spin.AvgLatency) / float64(hp.AvgLatency)
				tailSum += float64(spin.P99Latency) / float64(hp.P99Latency)
				latPoints++
			}
		}
	}
	avgImp := avgSum / float64(latPoints)
	tailImp := tailSum / float64(latPoints)

	t.Series = []Series{
		{Label: "measured", X: []float64{1, 2, 3}, Y: []float64{thr, avgImp, tailImp}},
		{Label: "paper", X: []float64{1, 2, 3}, Y: []float64{4.1, 9.1, 16.4}},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured: %.1fx peak throughput (geomean %.1fx), %.1fx avg latency, %.1fx p99 latency",
			thr, thrGeo, avgImp, tailImp),
		"paper: 4.1x peak throughput, 9.1x avg latency, 16.4x p99 latency",
		"absolute factors depend on substrate calibration; direction and magnitude class should match")
	return []Table{t}
}

// throughputWorkloads bounds the headline sweep (2 workloads in quick mode,
// 3 in full to keep the full suite's runtime reasonable — the remaining
// workloads behave identically per Fig. 8).
func throughputWorkloads(o Options) []workload.Spec {
	if o.Quick {
		return []workload.Spec{workload.PacketEncap}
	}
	return []workload.Spec{workload.PacketEncap, workload.PacketSteering, workload.RAIDProtection}
}

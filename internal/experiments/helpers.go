package experiments

import (
	"fmt"

	"hyperplane/internal/policy"
	"hyperplane/internal/sdp"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// quickWorkloads limits the workload sweep in Quick mode.
func workloads(o Options) []workload.Spec {
	if o.Quick {
		return []workload.Spec{workload.PacketEncap, workload.PacketSteering}
	}
	return workload.All
}

// satCfg builds a peak-throughput (Saturate) configuration.
func satCfg(o Options, w workload.Spec, shape traffic.Shape, queues int, plane sdp.PlaneKind) sdp.Config {
	warm, dur := satWindow(o, w.ServiceMean)
	return sdp.Config{
		Cores:    1,
		Queues:   queues,
		Workload: w,
		Shape:    shape,
		Plane:    plane,
		Policy:   policy.Spec{Kind: policy.RoundRobin},
		Mode:     sdp.Saturate,
		Warmup:   warm,
		Duration: dur,
		Seed:     o.Seed + 1,
	}
}

// lightCfg builds a near-zero-load latency configuration. samples controls
// the expected number of latency observations.
func lightCfg(o Options, w workload.Spec, shape traffic.Shape, queues int, plane sdp.PlaneKind, samples int) sdp.Config {
	const load = 0.01
	rate := load * 1 / w.ServiceMean.Seconds()
	dur := sim.FromSeconds(float64(samples) / rate)
	return sdp.Config{
		Cores:    1,
		Queues:   queues,
		Workload: w,
		Shape:    shape,
		Plane:    plane,
		Policy:   policy.Spec{Kind: policy.RoundRobin},
		Mode:     sdp.OpenLoop,
		Load:     load,
		Warmup:   dur / 20,
		Duration: dur,
		Seed:     o.Seed + 2,
	}
}

// multicoreCfg builds the Fig. 10/12b configuration: 4 cores, 400 queues.
func multicoreCfg(o Options, shape traffic.Shape, plane sdp.PlaneKind, clusterSize int, load, imbalance float64) sdp.Config {
	queues := 400
	dur := 40 * sim.Millisecond
	if o.Quick {
		queues = 100
		dur = 8 * sim.Millisecond
	}
	return sdp.Config{
		Cores:       4,
		ClusterSize: clusterSize,
		Queues:      queues,
		Workload:    workload.PacketEncap,
		Shape:       shape,
		Plane:       plane,
		Policy:      policy.Spec{Kind: policy.RoundRobin},
		Mode:        sdp.OpenLoop,
		Load:        load,
		Imbalance:   imbalance,
		Warmup:      dur / 8,
		Duration:    dur,
		Seed:        o.Seed + 3,
	}
}

// loadSweepCfg builds the Fig. 11/12a single-core load-sweep configuration.
// 100 queues keeps the queue heads L1-resident, giving the paper's high
// idle-spin IPC (~2) that then *drops* with load as task buffers evict them
// (the paper's >50%-load anomaly).
func loadSweepCfg(o Options, plane sdp.PlaneKind, load float64, powerOpt bool) sdp.Config {
	queues := 100
	dur := 30 * sim.Millisecond
	if o.Quick {
		queues = 64
		dur = 6 * sim.Millisecond
	}
	return sdp.Config{
		Cores:          1,
		Queues:         queues,
		Workload:       workload.PacketEncap,
		Shape:          traffic.FB,
		Plane:          plane,
		Policy:         policy.Spec{Kind: policy.RoundRobin},
		Mode:           sdp.OpenLoop,
		Load:           load,
		PowerOptimized: powerOpt,
		Warmup:         dur / 8,
		Duration:       dur,
		Seed:           o.Seed + 4,
	}
}

// mustRun executes a configuration; config errors are programming bugs in
// the experiment definitions, hence panic.
func mustRun(cfg sdp.Config) sdp.Result {
	r, err := sdp.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return r
}

// forwarding is the light packet-forwarding task of the §II-C DPDK case
// study (Fig. 3b/3c): minimal per-packet work.
var forwarding = workload.Spec{
	Name:               "packet-forwarding",
	ServiceMean:        450 * sim.Nanosecond,
	CV:                 0.4,
	BufferLinesPerItem: 2,
	UsefulIPC:          1.5,
}

// wireRTT is the generator<->NIC round-trip added to Fig. 3b/3c latencies
// (the paper measures at an external packet generator).
const wireRTT = 4 * sim.Microsecond

package experiments

import (
	"fmt"

	"hyperplane/internal/sdp"
	"hyperplane/internal/traffic"
)

// Fig8 reproduces the peak-throughput comparison (§V-B): one table per
// workload, each with eight series (4 traffic shapes x {spinning,
// HyperPlane}) over the queue-count sweep.
func Fig8(o Options) []Table {
	var out []Table
	for _, w := range workloads(o) {
		t := Table{
			ID:     "fig8",
			Title:  fmt.Sprintf("Peak throughput: %s", w.Name),
			XLabel: "queues",
			YLabel: "million tasks/sec",
		}
		for _, shape := range traffic.Shapes {
			for _, plane := range []sdp.PlaneKind{sdp.Spinning, sdp.HyperPlane} {
				s := Series{Label: fmt.Sprintf("%s-%s", shape, plane)}
				for _, n := range queueCounts(o) {
					r := mustRun(satCfg(o, w, shape, n, plane))
					s.X = append(s.X, float64(n))
					s.Y = append(s.Y, r.ThroughputMTasks)
				}
				t.Series = append(t.Series, s)
			}
		}
		t.Notes = append(t.Notes,
			"expect: spinning collapses under SQ/NC; HyperPlane flat in queue count (paper Fig. 8)")
		out = append(out, t)
	}
	return out
}

package experiments

import (
	"fmt"

	"hyperplane/internal/sdp"
	"hyperplane/internal/traffic"
)

// Fig13 reproduces the ready-set implementation study (§V-E): single-core
// HyperPlane peak throughput with a software ready set, relative to the
// hardware PPA, for each workload under PC and FB traffic at the maximum
// queue count.
func Fig13(o Options) []Table {
	queues := 1000
	if o.Quick {
		queues = 256
	}
	t := Table{
		ID:     "fig13",
		Title:  fmt.Sprintf("Software ready set throughput relative to hardware (%d queues)", queues),
		XLabel: "workload index",
		YLabel: "relative throughput (%)",
	}
	for _, shape := range []traffic.Shape{traffic.PC, traffic.FB} {
		s := Series{Label: shape.String()}
		for i, w := range workloads(o) {
			hwCfg := satCfg(o, w, shape, queues, sdp.HyperPlane)
			swCfg := hwCfg
			swCfg.SoftwareReadySet = true
			hw := mustRun(hwCfg).ThroughputMTasks
			sw := mustRun(swCfg).ThroughputMTasks
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, sw/hw*100)
		}
		t.Series = append(t.Series, s)
	}
	var names []string
	for i, w := range workloads(o) {
		names = append(names, fmt.Sprintf("%d=%s", i+1, w.Name))
	}
	t.Notes = append(t.Notes,
		"workloads: "+join(names),
		"expect: software ready set loses most under FB (larger ready list to iterate) (paper Fig. 13)")
	return []Table{t}
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

package experiments

import (
	"strings"
	"testing"
)

// fakeRunner yields Y = base + seed-derived offset so averaging is testable.
func fakeRunner(o Options) []Table {
	off := float64(o.Seed % 5)
	return []Table{{
		ID: "fake", Title: "fake", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", X: []float64{1, 2}, Y: []float64{10 + off, 20 + off}}},
	}}
}

func TestReplicateAverages(t *testing.T) {
	// Seeds 0, 0x9e3779b9, ... produce offsets seed%5: deterministic set.
	out := Replicate(fakeRunner, Options{Seed: 0}, 5)
	if len(out) != 1 || len(out[0].Series) != 1 {
		t.Fatal("shape")
	}
	s := out[0].Series[0]
	// Offsets for seeds {0, 1*k, 2*k, ...} mod 5 — compute expected mean.
	var want float64
	for i := 0; i < 5; i++ {
		want += float64((uint64(i) * 0x9e3779b9) % 5)
	}
	want = want / 5
	if s.Y[0] != 10+want || s.Y[1] != 20+want {
		t.Errorf("averaged Y = %v, want offsets %v", s.Y, want)
	}
	found := false
	for _, n := range out[0].Notes {
		if strings.Contains(n, "averaged over 5 seeds") {
			found = true
		}
	}
	if !found {
		t.Error("missing replication note")
	}
}

func TestReplicateSingle(t *testing.T) {
	out := Replicate(fakeRunner, Options{Seed: 3}, 1)
	if out[0].Series[0].Y[0] != 10+3 {
		t.Error("n=1 must be a plain run")
	}
}

func TestReplicateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 accepted")
		}
	}()
	Replicate(fakeRunner, Options{}, 0)
}

func TestReplicateRealExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("replication of a real experiment skipped in -short mode")
	}
	// Fig. 3a quick, 3 seeds: output shape preserved, values averaged.
	out := Replicate(Fig3a, quick, 3)
	if len(out) != 1 || len(out[0].Series) != 4 {
		t.Fatal("shape changed under replication")
	}
	for _, s := range out[0].Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %s has non-positive averaged throughput", s.Label)
			}
		}
	}
}

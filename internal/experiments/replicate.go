package experiments

import (
	"fmt"
	"math"
)

// Replicate runs an experiment n times with distinct seeds and returns
// tables whose Y values are the across-seed means, with a note reporting
// the worst-case relative standard deviation — the standard way to put
// confidence behind single-seed simulation numbers.
//
// Series and X grids must be identical across seeds (they are: sweeps are
// configuration-driven); Replicate panics otherwise, since that would
// indicate a nondeterministic experiment definition.
func Replicate(run Runner, o Options, n int) []Table {
	if n < 1 {
		panic("experiments: replication count must be positive")
	}
	if n == 1 {
		return run(o)
	}
	var reps [][]Table
	for i := 0; i < n; i++ {
		oi := o
		oi.Seed = o.Seed + uint64(i)*0x9e3779b9
		reps = append(reps, run(oi))
	}
	base := reps[0]
	out := make([]Table, len(base))
	var worstRSD float64
	for ti := range base {
		t := base[ti]
		avg := Table{ID: t.ID, Title: t.Title, XLabel: t.XLabel, YLabel: t.YLabel, Notes: t.Notes}
		for si, s := range t.Series {
			mean := Series{Label: s.Label, X: append([]float64(nil), s.X...)}
			for pi := range s.Y {
				var sum, sumSq float64
				for _, rep := range reps {
					checkShape(rep, ti, si, pi, t, s)
					y := rep[ti].Series[si].Y[pi]
					sum += y
					sumSq += y * y
				}
				m := sum / float64(n)
				mean.Y = append(mean.Y, m)
				if m != 0 && n > 1 {
					variance := (sumSq - float64(n)*m*m) / float64(n-1)
					if variance < 0 {
						variance = 0
					}
					if rsd := math.Sqrt(variance) / math.Abs(m); rsd > worstRSD {
						worstRSD = rsd
					}
				}
			}
			avg.Series = append(avg.Series, mean)
		}
		out[ti] = avg
	}
	for ti := range out {
		out[ti].Notes = append(out[ti].Notes,
			fmt.Sprintf("averaged over %d seeds; worst-case relative stddev %.1f%%", n, worstRSD*100))
	}
	return out
}

func checkShape(rep []Table, ti, si, pi int, t Table, s Series) {
	if ti >= len(rep) || si >= len(rep[ti].Series) || pi >= len(rep[ti].Series[si].Y) ||
		rep[ti].Series[si].X[pi] != s.X[pi] {
		panic(fmt.Sprintf("experiments: replicate shape mismatch in %s/%s", t.ID, s.Label))
	}
}

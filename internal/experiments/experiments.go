// Package experiments regenerates every table and figure of the HyperPlane
// paper's evaluation (§II-C case study and §V). Each constructor returns a
// Table holding the same series the paper plots; cmd/hyperbench renders
// them as text, and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hyperplane/internal/sim"
)

// Series is one plotted line: Y(X) with a label matching the paper legend.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is one regenerated figure or table.
type Table struct {
	ID     string // e.g. "fig8"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Options tunes experiment fidelity.
type Options struct {
	// Quick shrinks queue counts, loads, and windows so the whole suite
	// runs in seconds (used by tests and -short benchmarks); the full
	// settings match the paper's sweep ranges.
	Quick bool
	Seed  uint64
}

// Runner is an experiment constructor.
type Runner func(Options) []Table

// Registry maps experiment IDs to runners, in paper order.
var Registry = []struct {
	ID   string
	Desc string
	Run  Runner
}{
	{"table1", "Table I: microarchitecture configuration", TableI},
	{"fig3a", "Fig. 3a: DPDK throughput vs queue count (4 traffic shapes)", Fig3a},
	{"fig3b", "Fig. 3b: DPDK round-trip latency vs queue count (light load)", Fig3b},
	{"fig3c", "Fig. 3c: DPDK latency CDF at 1/256/512 queues", Fig3c},
	{"fig8", "Fig. 8: peak throughput, spinning vs HyperPlane, 6 workloads x 4 shapes", Fig8},
	{"fig9a", "Fig. 9a: zero-load avg/P99 latency of the spinning data plane", Fig9a},
	{"fig9b", "Fig. 9b: zero-load latency of HyperPlane, regular vs power-optimized", Fig9b},
	{"fig10a", "Fig. 10a: multicore P99 vs load, FB traffic, scale-out/up-2/up-4", Fig10a},
	{"fig10b", "Fig. 10b: multicore P99 vs load, PC traffic, with 10% imbalance", Fig10b},
	{"fig11a", "Fig. 11a: IPC breakdown (useful vs useless) vs load", Fig11a},
	{"fig11b", "Fig. 11b: SMT co-runner IPC vs data plane load", Fig11b},
	{"fig12a", "Fig. 12a: normalized core power at zero load vs saturation", Fig12a},
	{"fig12b", "Fig. 12b: tail latency of power-optimized HyperPlane vs load", Fig12b},
	{"fig13", "Fig. 13: software vs hardware ready set throughput", Fig13},
	{"headline", "Headline: mean peak-throughput and tail-latency improvements", Headline},
	{"ext-mwait", "Extension: MWAIT-style halting baseline vs spinning vs HyperPlane", ExtMWait},
	{"ext-steal", "Extension: work stealing across ready sets under imbalance", ExtSteal},
	{"ext-policy", "Extension: service policy ablation (paper reports minimal impact)", ExtPolicy},
	{"ext-monitor", "Extension: monitoring-set conflict rate vs occupancy", ExtMonitor},
	{"ext-inorder", "Extension: in-order (flow-stateful) processing cost", ExtInOrder},
	{"ext-batch", "Extension: dequeue batch size ablation", ExtBatch},
	{"ext-burst", "Extension: tail latency under bursty tenant activity", ExtBurst},
	{"ext-numa", "Extension: 2-socket NUMA deployment with cross-socket stealing", ExtNUMA},
	{"hwcost", "Paper §IV-C: HyperPlane hardware area/power/timing costs", HWCost},
	{"ext-scaling", "Extension: scale-up throughput vs core count", ExtScaling},
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// queueCounts returns the sweep over total queue counts.
func queueCounts(o Options) []int {
	if o.Quick {
		return []int{8, 64, 256}
	}
	return []int{8, 100, 200, 400, 600, 800, 1000}
}

// loadPoints returns the offered-load sweep for latency-vs-load figures.
func loadPoints(o Options) []float64 {
	if o.Quick {
		return []float64{0.2, 0.5, 0.8}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// satWindow returns warmup and duration for peak-throughput runs, scaled to
// the workload's service time so every run completes a useful task count.
func satWindow(o Options, svc sim.Time) (warmup, dur sim.Time) {
	tasks := sim.Time(3000)
	if o.Quick {
		tasks = 400
	}
	dur = tasks * svc
	if dur < 2*sim.Millisecond {
		dur = 2 * sim.Millisecond
	}
	return dur / 10, dur
}

// Format renders a table as aligned text, the harness's output format.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.XLabel != "" || t.YLabel != "" {
		fmt.Fprintf(&b, "   x: %s | y: %s\n", t.XLabel, t.YLabel)
	}
	// Collect the union of X values to form rows.
	xsSet := map[float64]bool{}
	for _, s := range t.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	// Header.
	fmt.Fprintf(&b, "%12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%12.4g", x)
		for _, s := range t.Series {
			v, ok := lookupX(s, x)
			if ok {
				fmt.Fprintf(&b, " %22.5g", v)
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

func lookupX(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	b.WriteString("x")
	for _, s := range t.Series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteByte('\n')
	xsSet := map[float64]bool{}
	for _, s := range t.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			if v, ok := lookupX(s, x); ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

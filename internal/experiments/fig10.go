package experiments

import (
	"fmt"

	"hyperplane/internal/sdp"
	"hyperplane/internal/traffic"
)

// Fig10a reproduces the multicore tail-latency comparison under fully
// balanced traffic (§V-C): 4 cores / 400 queues, P99 vs load for scale-out,
// scale-up-2, and scale-up-4 organizations of both planes.
func Fig10a(o Options) []Table {
	t := Table{
		ID:     "fig10a",
		Title:  "Multicore 99% tail latency, fully balanced traffic (4 cores, 400 queues)",
		XLabel: "load (%)",
		YLabel: "P99 latency (us)",
	}
	clusterSizes := []int{1, 2, 4}
	for _, plane := range []sdp.PlaneKind{sdp.Spinning, sdp.HyperPlane} {
		for _, cl := range clusterSizes {
			org := map[int]string{1: "scale-out", 2: "scale-up-2", 4: "scale-up-4"}[cl]
			s := Series{Label: fmt.Sprintf("%s %s", plane, org)}
			for _, load := range loadPoints(o) {
				r := mustRun(multicoreCfg(o, traffic.FB, plane, cl, load, 0))
				s.X = append(s.X, load*100)
				s.Y = append(s.Y, r.P99Latency.Microseconds())
			}
			t.Series = append(t.Series, s)
		}
	}
	t.Notes = append(t.Notes,
		"expect: HyperPlane scale-up best; spinning scale-up worst (sync + 4x empty polls) (paper Fig. 10a)")
	return []Table{t}
}

// Fig10b reproduces the proportionally concentrated variant with static
// load imbalance: scale-out (0% and 10% imbalance) vs scale-up-2.
func Fig10b(o Options) []Table {
	t := Table{
		ID:     "fig10b",
		Title:  "Multicore 99% tail latency, proportionally concentrated traffic",
		XLabel: "load (%)",
		YLabel: "P99 latency (us)",
	}
	type variant struct {
		name      string
		cluster   int
		imbalance float64
	}
	variants := []variant{
		{"scale-out (no imbalance)", 1, 0},
		{"scale-out (10% imbalance)", 1, 0.10},
		{"scale-up-2", 2, 0},
	}
	for _, plane := range []sdp.PlaneKind{sdp.Spinning, sdp.HyperPlane} {
		for _, v := range variants {
			s := Series{Label: fmt.Sprintf("%s %s", plane, v.name)}
			for _, load := range loadPoints(o) {
				r := mustRun(multicoreCfg(o, traffic.PC, plane, v.cluster, load, v.imbalance))
				s.X = append(s.X, load*100)
				s.Y = append(s.Y, r.P99Latency.Microseconds())
			}
			t.Series = append(t.Series, s)
		}
	}
	t.Notes = append(t.Notes,
		"expect: imbalance hurts scale-out; HyperPlane scale-up immune (paper Fig. 10b)")
	return []Table{t}
}

// Package mem models the memory hierarchy of the simulated CMP: per-core
// private L1 caches, a shared LLC, and a directory-based MESI coherence
// protocol (Table I of the HyperPlane paper).
//
// The model is behavioural, not cycle-accurate: each Access returns the
// latency the requesting core observes, and the directory exposes the write
// transactions (GetM and device DMA writes) that HyperPlane's monitoring set
// snoops. Silent E->M upgrades are modelled faithfully — they produce no
// visible transaction, which is exactly why the paper's re-arm path issues a
// GetS (ForceShared here) so that a subsequent doorbell write must make a
// GetM visible.
package mem

import "hyperplane/internal/sim"

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// LineSize is the cache line size in bytes (Table I: 64 B lines).
const LineSize = 64

// LineOf returns the address of the cache line containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// lineNum returns the line index used for set selection.
func lineNum(a Addr) uint64 { return uint64(a) / LineSize }

// MESI is the coherence state of a line in a private cache.
type MESI uint8

// Coherence states.
const (
	Invalid MESI = iota
	Shared
	Exclusive
	Modified
)

func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Level identifies where an access was satisfied.
type Level uint8

// Hit levels.
const (
	LevelL1 Level = iota
	LevelLLC
	LevelRemoteL1 // cache-to-cache transfer from another core's L1
	LevelMemory
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelLLC:
		return "LLC"
	case LevelRemoteL1:
		return "remote-L1"
	case LevelMemory:
		return "memory"
	}
	return "?"
}

// SnoopFunc observes a coherence write transaction: a GetM issued by a core,
// or a device DMA write. writer is the core id, or -1 for a device.
// HyperPlane's monitoring set registers one of these.
type SnoopFunc func(line Addr, writer int)

// Config sizes the hierarchy. Defaults (via DefaultConfig) follow Table I.
type Config struct {
	Cores int

	L1Size int // bytes, per core
	L1Ways int

	LLCSize int // bytes, total shared
	LLCWays int

	Clock sim.Clock

	L1HitCycles  int64    // tag+data access on an L1 hit
	LLCHitCycles int64    // L1 miss satisfied by the LLC
	C2CCycles    int64    // cache-to-cache transfer between L1s
	MemLatency   sim.Time // L1+LLC miss to DRAM
}

// DefaultConfig returns the Table I configuration: 32 KB 4-way L1,
// 1 MB/core 16-way shared LLC, 3 GHz clock.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:        cores,
		L1Size:       32 << 10,
		L1Ways:       4,
		LLCSize:      cores * (1 << 20),
		LLCWays:      16,
		Clock:        sim.NewClock(3.0),
		L1HitCycles:  4,
		LLCHitCycles: 30,
		C2CCycles:    60,
		MemLatency:   80 * sim.Nanosecond,
	}
}

// Stats counts accesses by outcome for one core (or the device, index Cores).
type Stats struct {
	Accesses      int64
	L1Hits        int64
	LLCHits       int64
	C2CTransfers  int64
	MemAccesses   int64
	Invalidations int64 // invalidations this agent caused in other L1s
}

// dirEntry tracks the global state of one line: which L1s hold it and which
// (if any) holds it in E or M.
type dirEntry struct {
	sharers uint64 // bitmask over cores
	owner   int    // core holding E/M, or -1
}

// System is the simulated memory hierarchy.
type System struct {
	cfg    Config
	l1     []*cache
	llc    *cache
	dir    map[Addr]*dirEntry
	snoops []SnoopFunc
	stats  []Stats // per core, plus one slot for the device

	l1Hit  sim.Time
	llcHit sim.Time
	c2c    sim.Time
}

// NewSystem builds the hierarchy described by cfg.
func NewSystem(cfg Config) *System {
	if cfg.Cores <= 0 {
		panic("mem: Cores must be positive")
	}
	if cfg.Cores > 64 {
		panic("mem: directory bitmask supports at most 64 cores")
	}
	s := &System{
		cfg:    cfg,
		dir:    make(map[Addr]*dirEntry),
		stats:  make([]Stats, cfg.Cores+1),
		l1Hit:  cfg.Clock.Cycles(cfg.L1HitCycles),
		llcHit: cfg.Clock.Cycles(cfg.LLCHitCycles),
		c2c:    cfg.Clock.Cycles(cfg.C2CCycles),
	}
	for i := 0; i < cfg.Cores; i++ {
		s.l1 = append(s.l1, newCache(cfg.L1Size, cfg.L1Ways))
	}
	s.llc = newCache(cfg.LLCSize, cfg.LLCWays)
	return s
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// OnWrite registers a snoop hook, called on every visible write transaction
// to any line. The monitoring set filters by its reserved doorbell range.
func (s *System) OnWrite(fn SnoopFunc) { s.snoops = append(s.snoops, fn) }

func (s *System) snoop(line Addr, writer int) {
	for _, fn := range s.snoops {
		fn(line, writer)
	}
}

// Stats returns access statistics for the given core (or Cores for device).
func (s *System) Stats(agent int) Stats { return s.stats[agent] }

func (s *System) entry(line Addr) *dirEntry {
	e := s.dir[line]
	if e == nil {
		e = &dirEntry{owner: -1}
		s.dir[line] = e
	}
	return e
}

// Read performs a load by core from addr and returns the observed latency
// and the level that satisfied it.
func (s *System) Read(core int, addr Addr) (sim.Time, Level) {
	line := LineOf(addr)
	st := &s.stats[core]
	st.Accesses++
	l1 := s.l1[core]
	if w := l1.lookup(line); w != nil {
		st.L1Hits++
		return s.l1Hit, LevelL1
	}
	// L1 miss: consult the directory.
	e := s.entry(line)
	lat := s.l1Hit // tag check before going out
	var lvl Level
	switch {
	case e.owner >= 0 && e.owner != core:
		// Dirty (or exclusive) in a remote L1: cache-to-cache transfer,
		// owner downgrades to S and the LLC picks up the data.
		lat += s.c2c
		lvl = LevelRemoteL1
		st.C2CTransfers++
		if w := s.l1[e.owner].lookup(line); w != nil {
			w.state = Shared
		}
		e.sharers |= 1 << uint(e.owner)
		e.owner = -1
		s.llcInsert(line)
	case s.llc.lookup(line) != nil:
		lat += s.llcHit
		lvl = LevelLLC
		st.LLCHits++
	default:
		lat += s.cfg.MemLatency
		lvl = LevelMemory
		st.MemAccesses++
		s.llcInsert(line)
	}
	// Fill into L1: E if nobody else holds it, else S.
	state := Shared
	if e.sharers&^(1<<uint(core)) == 0 && e.owner < 0 {
		state = Exclusive
	}
	s.l1Insert(core, line, state)
	e = s.entry(line) // l1Insert may evict and mutate the directory
	if state == Exclusive {
		e.owner = core
		e.sharers = 0
	} else {
		e.sharers |= 1 << uint(core)
	}
	return lat, lvl
}

// Write performs a store by core to addr and returns the observed latency
// and satisfying level. Stores that upgrade from S or miss entirely issue a
// GetM, which invalidates remote copies and fires the snoop hooks. Silent
// E->M upgrades fire no hooks (no bus/directory transaction exists).
func (s *System) Write(core int, addr Addr) (sim.Time, Level) {
	line := LineOf(addr)
	st := &s.stats[core]
	st.Accesses++
	l1 := s.l1[core]
	if w := l1.lookup(line); w != nil {
		switch w.state {
		case Modified:
			st.L1Hits++
			return s.l1Hit, LevelL1
		case Exclusive:
			// Silent upgrade: no visible transaction.
			w.state = Modified
			st.L1Hits++
			e := s.entry(line)
			e.owner = core
			return s.l1Hit, LevelL1
		case Shared:
			// Upgrade: invalidate other sharers; data already present.
			lat := s.l1Hit + s.invalidateOthers(core, line)
			w.state = Modified
			e := s.entry(line)
			e.owner = core
			e.sharers = 0
			s.snoop(line, core)
			return lat, LevelL1
		}
	}
	// Write miss: GetM. Fetch data and invalidate everyone else.
	e := s.entry(line)
	lat := s.l1Hit
	var lvl Level
	switch {
	case e.owner >= 0 && e.owner != core:
		lat += s.c2c
		lvl = LevelRemoteL1
		st.C2CTransfers++
	case s.llc.lookup(line) != nil:
		lat += s.llcHit
		lvl = LevelLLC
		st.LLCHits++
	default:
		lat += s.cfg.MemLatency
		lvl = LevelMemory
		st.MemAccesses++
		s.llcInsert(line)
	}
	lat += s.invalidateOthers(core, line)
	s.l1Insert(core, line, Modified)
	e = s.entry(line)
	e.owner = core
	e.sharers = 0
	s.snoop(line, core)
	return lat, lvl
}

// DeviceWrite models a DMA write by an I/O device (e.g. a NIC posting a
// descriptor or ringing a doorbell). It invalidates all cached copies,
// updates memory/LLC, and fires the snoop hooks. The returned latency is the
// device-side cost and is normally not charged to any core.
func (s *System) DeviceWrite(addr Addr) sim.Time {
	line := LineOf(addr)
	st := &s.stats[s.cfg.Cores]
	st.Accesses++
	e := s.entry(line)
	lat := s.cfg.MemLatency
	for c := 0; c < s.cfg.Cores; c++ {
		held := e.sharers&(1<<uint(c)) != 0 || e.owner == c
		if held {
			s.l1[c].invalidate(line)
			st.Invalidations++
		}
	}
	e.sharers = 0
	e.owner = -1
	s.llcInsert(line)
	s.snoop(line, -1)
	return lat
}

// ForceShared models the monitoring set's re-arm GetS (paper §IV-A): it
// ensures no core holds the line in E/M, so the next write must issue a
// visible GetM. Any dirty copy is downgraded to S with its data pushed to
// the LLC.
func (s *System) ForceShared(addr Addr) {
	line := LineOf(addr)
	e := s.entry(line)
	if e.owner < 0 {
		return
	}
	if w := s.l1[e.owner].lookup(line); w != nil {
		w.state = Shared
	}
	e.sharers |= 1 << uint(e.owner)
	e.owner = -1
	s.llcInsert(line)
}

// HasOwner reports whether some core holds the line in E or M (test hook).
func (s *System) HasOwner(addr Addr) bool {
	e := s.dir[LineOf(addr)]
	return e != nil && e.owner >= 0
}

// StateIn returns core's L1 state for the line (test hook).
func (s *System) StateIn(core int, addr Addr) MESI {
	if w := s.l1[core].lookup(LineOf(addr)); w != nil {
		return w.state
	}
	return Invalid
}

// invalidateOthers removes all remote copies of line and returns the added
// latency (one cross-core hop if any copy existed).
func (s *System) invalidateOthers(core int, line Addr) sim.Time {
	e := s.entry(line)
	var lat sim.Time
	st := &s.stats[core]
	for c := 0; c < s.cfg.Cores; c++ {
		if c == core {
			continue
		}
		held := e.sharers&(1<<uint(c)) != 0 || e.owner == c
		if !held {
			continue
		}
		if w := s.l1[c].lookup(line); w != nil {
			if w.state == Modified {
				s.llcInsert(line) // writeback
			}
			w.valid = false
		}
		st.Invalidations++
		if lat == 0 {
			lat = s.c2c // invalidation acks overlap; charge one hop
		}
	}
	e.sharers &= 1 << uint(core)
	if e.owner != core {
		e.owner = -1
	}
	return lat
}

// l1Insert fills line into core's L1, handling victim eviction.
func (s *System) l1Insert(core int, line Addr, state MESI) {
	victim, hadVictim := s.l1[core].insert(line, state)
	if !hadVictim {
		return
	}
	ve := s.entry(victim.tag)
	if victim.state == Modified || victim.state == Exclusive {
		if victim.state == Modified {
			s.llcInsert(victim.tag) // writeback
		}
		if ve.owner == core {
			ve.owner = -1
		}
	}
	ve.sharers &^= 1 << uint(core)
}

// llcInsert fills line into the shared LLC; evicted victims are simply
// dropped (the directory is full-map and independent of LLC capacity, like
// the monitoring set in the paper).
func (s *System) llcInsert(line Addr) {
	s.llc.insert(line, Shared)
}

// FlushAgentStats zeroes the statistics (between warm-up and measurement).
func (s *System) FlushAgentStats() {
	for i := range s.stats {
		s.stats[i] = Stats{}
	}
}

package mem

import "testing"

func TestLevelAndStateStrings(t *testing.T) {
	if LevelL1.String() != "L1" || LevelLLC.String() != "LLC" ||
		LevelRemoteL1.String() != "remote-L1" || LevelMemory.String() != "memory" ||
		Level(9).String() != "?" {
		t.Error("level names")
	}
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" ||
		MESI(9).String() != "?" {
		t.Error("state names")
	}
}

func TestDeviceWriteOverwritesDirtyLine(t *testing.T) {
	s := testSystem(2)
	addr := Addr(0x9000)
	s.Write(0, addr) // core 0 holds M
	if s.StateIn(0, addr) != Modified {
		t.Fatal("setup")
	}
	s.DeviceWrite(addr)
	if s.StateIn(0, addr) != Invalid {
		t.Error("dirty copy survived DMA write")
	}
	if s.HasOwner(addr) {
		t.Error("owner survived DMA write")
	}
	if s.Stats(2).Invalidations == 0 { // device slot = Cores
		t.Error("device invalidation not counted")
	}
}

func TestForceSharedNoOwnerNoop(t *testing.T) {
	s := testSystem(2)
	s.ForceShared(0xAAAA) // untouched line: nothing to do, must not panic
	s.Read(0, 0xAAAA)
	s.Read(1, 0xAAAA)
	s.ForceShared(0xAAAA) // both in S: still a no-op
	if s.StateIn(0, 0xAAAA) != Shared || s.StateIn(1, 0xAAAA) != Shared {
		t.Error("ForceShared disturbed shared copies")
	}
}

func TestWriteMissFetchesFromRemoteDirty(t *testing.T) {
	s := testSystem(2)
	addr := Addr(0xB000)
	s.Write(0, addr) // core 0: M
	lat, lvl := s.Write(1, addr)
	if lvl != LevelRemoteL1 {
		t.Fatalf("write miss level = %v", lvl)
	}
	if lat <= s.cfg.Clock.Cycles(s.cfg.L1HitCycles) {
		t.Error("remote dirty fetch too cheap")
	}
	if s.StateIn(0, addr) != Invalid || s.StateIn(1, addr) != Modified {
		t.Error("ownership did not transfer")
	}
}

func TestUpgradePathSharedToModified(t *testing.T) {
	s := testSystem(4)
	addr := Addr(0xC000)
	for c := 0; c < 4; c++ {
		s.Read(c, addr)
	}
	writerStats := s.Stats(2)
	base := writerStats.Invalidations
	s.Write(2, addr)
	if got := s.Stats(2).Invalidations - base; got != 3 {
		t.Errorf("invalidations = %d, want 3", got)
	}
	for c := 0; c < 4; c++ {
		want := Invalid
		if c == 2 {
			want = Modified
		}
		if s.StateIn(c, addr) != want {
			t.Errorf("core %d state = %v, want %v", c, s.StateIn(c, addr), want)
		}
	}
}

func TestSameLineDifferentOffsets(t *testing.T) {
	s := testSystem(1)
	s.Read(0, 0xD000)
	// Any offset within the same 64 B line is an L1 hit.
	for off := Addr(1); off < LineSize; off += 7 {
		if _, lvl := s.Read(0, 0xD000+off); lvl != LevelL1 {
			t.Fatalf("offset %d missed", off)
		}
	}
	// The next line misses.
	if _, lvl := s.Read(0, 0xD000+LineSize); lvl == LevelL1 {
		t.Error("adjacent line hit in L1 unexpectedly")
	}
}

func TestLLCSharedAcrossCores(t *testing.T) {
	s := testSystem(4)
	addr := Addr(0xE000)
	s.Read(0, addr) // mem -> LLC, core 0 E
	// Evict from core 0's L1 by filling its set.
	stride := Addr(128 * LineSize)
	for i := 1; i <= 4; i++ {
		s.Read(0, addr+Addr(i)*stride)
	}
	// Other cores now hit the shared LLC, not memory.
	if _, lvl := s.Read(3, addr); lvl != LevelLLC {
		t.Errorf("cross-core read level = %v, want LLC", lvl)
	}
}

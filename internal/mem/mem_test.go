package mem

import (
	"testing"
	"testing/quick"

	"hyperplane/internal/sim"
)

func testSystem(cores int) *System {
	return NewSystem(DefaultConfig(cores))
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 64 || LineOf(130) != 128 {
		t.Error("LineOf misaligned")
	}
}

func TestReadMissThenHit(t *testing.T) {
	s := testSystem(2)
	lat, lvl := s.Read(0, 0x1000)
	if lvl != LevelMemory {
		t.Fatalf("first read level = %v", lvl)
	}
	if lat < s.cfg.MemLatency {
		t.Errorf("miss latency %v < memory latency", lat)
	}
	lat2, lvl2 := s.Read(0, 0x1008) // same line
	if lvl2 != LevelL1 {
		t.Fatalf("second read level = %v", lvl2)
	}
	if lat2 >= lat {
		t.Errorf("hit latency %v not below miss latency %v", lat2, lat)
	}
	st := s.Stats(0)
	if st.Accesses != 2 || st.L1Hits != 1 || st.MemAccesses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLLCHitAfterRemoteRead(t *testing.T) {
	s := testSystem(2)
	s.Read(0, 0x2000) // memory -> LLC + core0 L1 (E)
	_, lvl := s.Read(1, 0x2000)
	// Core 0 holds it E (owner), so this is a cache-to-cache transfer.
	if lvl != LevelRemoteL1 {
		t.Fatalf("remote read level = %v", lvl)
	}
	// Both now share; a third core-0 read is an L1 hit.
	if _, lvl := s.Read(0, 0x2000); lvl != LevelL1 {
		t.Errorf("re-read level = %v", lvl)
	}
}

func TestExclusiveThenSilentUpgrade(t *testing.T) {
	s := testSystem(2)
	s.Read(0, 0x3000)
	if st := s.StateIn(0, 0x3000); st != Exclusive {
		t.Fatalf("state after solo read = %v, want E", st)
	}
	snooped := 0
	s.OnWrite(func(line Addr, writer int) { snooped++ })
	_, lvl := s.Write(0, 0x3000)
	if lvl != LevelL1 {
		t.Errorf("upgrade level = %v", lvl)
	}
	if snooped != 0 {
		t.Error("silent E->M upgrade fired a snoop; it must be invisible")
	}
	if st := s.StateIn(0, 0x3000); st != Modified {
		t.Errorf("state after upgrade = %v, want M", st)
	}
}

func TestWriteToSharedInvalidatesAndSnoops(t *testing.T) {
	s := testSystem(4)
	addr := Addr(0x4000)
	s.Read(0, addr)
	s.Read(1, addr)
	s.Read(2, addr)
	var snoops []int
	s.OnWrite(func(line Addr, writer int) {
		if line != LineOf(addr) {
			t.Errorf("snooped wrong line %#x", line)
		}
		snoops = append(snoops, writer)
	})
	s.Write(1, addr)
	if len(snoops) != 1 || snoops[0] != 1 {
		t.Fatalf("snoops = %v", snoops)
	}
	if s.StateIn(0, addr) != Invalid || s.StateIn(2, addr) != Invalid {
		t.Error("sharers not invalidated")
	}
	if s.StateIn(1, addr) != Modified {
		t.Error("writer not in M")
	}
	// Writer's next write is a silent M hit: no more snoops.
	s.Write(1, addr)
	if len(snoops) != 1 {
		t.Error("M-state write fired a snoop")
	}
}

func TestForceSharedMakesNextWriteVisible(t *testing.T) {
	s := testSystem(2)
	addr := Addr(0x5000)
	// Producer writes doorbell: ends in M.
	s.Write(0, addr)
	snooped := 0
	s.OnWrite(func(Addr, int) { snooped++ })
	// Without ForceShared, a second write would be silent.
	s.Write(0, addr)
	if snooped != 0 {
		t.Fatal("M write was visible")
	}
	// Re-arm: monitoring set issues GetS.
	s.ForceShared(addr)
	if s.HasOwner(addr) {
		t.Fatal("ForceShared left an owner")
	}
	if s.StateIn(0, addr) != Shared {
		t.Fatalf("owner state after ForceShared = %v", s.StateIn(0, addr))
	}
	s.Write(0, addr)
	if snooped != 1 {
		t.Error("write after ForceShared did not snoop")
	}
}

func TestDeviceWrite(t *testing.T) {
	s := testSystem(2)
	addr := Addr(0x6000)
	s.Read(0, addr)
	s.Read(1, addr)
	snooped := 0
	var lastWriter int
	s.OnWrite(func(line Addr, writer int) { snooped++; lastWriter = writer })
	s.DeviceWrite(addr)
	if snooped != 1 {
		t.Fatal("device write did not snoop")
	}
	if lastWriter != -1 {
		t.Errorf("device writer id = %d, want -1", lastWriter)
	}
	if s.StateIn(0, addr) != Invalid || s.StateIn(1, addr) != Invalid {
		t.Error("device write did not invalidate caches")
	}
	// Next read should hit the LLC (device deposited the line there).
	if _, lvl := s.Read(0, addr); lvl != LevelLLC {
		t.Errorf("read after device write = %v, want LLC", lvl)
	}
}

func TestPingPong(t *testing.T) {
	// Two cores alternately writing one line: every write after the first
	// must pay a remote transfer — the coherence cost that makes scale-up
	// spinning expensive (paper §II-B).
	s := testSystem(2)
	addr := Addr(0x7000)
	s.Write(0, addr)
	for i := 0; i < 10; i++ {
		core := (i + 1) % 2
		_, lvl := s.Write(core, addr)
		if lvl != LevelRemoteL1 {
			t.Fatalf("write %d level = %v, want remote-L1", i, lvl)
		}
	}
	if s.Stats(0).C2CTransfers != 5 || s.Stats(1).C2CTransfers != 5 {
		t.Errorf("C2C counts = %d, %d", s.Stats(0).C2CTransfers, s.Stats(1).C2CTransfers)
	}
}

func TestL1Eviction(t *testing.T) {
	s := testSystem(1)
	// L1: 32 KB, 4-way, 64 B lines -> 128 sets. Lines that map to the same
	// set differ by 128*64 = 8192 bytes. Fill 5 such lines: first must go.
	base := Addr(0x10000)
	stride := Addr(128 * LineSize)
	for i := 0; i < 5; i++ {
		s.Read(0, base+Addr(i)*stride)
	}
	if s.StateIn(0, base) != Invalid {
		t.Error("LRU victim still present after overfill")
	}
	if s.StateIn(0, base+4*stride) == Invalid {
		t.Error("most recently inserted line was evicted")
	}
	// Victim read now misses L1 but hits LLC.
	if _, lvl := s.Read(0, base); lvl != LevelLLC {
		t.Errorf("evicted line read level = %v, want LLC", lvl)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s := testSystem(1)
	base := Addr(0x20000)
	stride := Addr(128 * LineSize)
	s.Write(0, base) // M
	for i := 1; i < 5; i++ {
		s.Read(0, base+Addr(i)*stride)
	}
	// The dirty victim must have been written back to the LLC and its
	// ownership cleared.
	if s.HasOwner(base) {
		t.Error("evicted dirty line still has an owner")
	}
	if _, lvl := s.Read(0, base); lvl != LevelLLC {
		t.Errorf("read of written-back line = %v, want LLC", lvl)
	}
}

func TestLatencyOrdering(t *testing.T) {
	s := testSystem(2)
	l1, _ := s.Read(0, 0x8000)    // mem
	llcMiss := l1                 // memory-level latency
	_, _ = s.Read(1, 0x8000)      // c2c or LLC
	l1hit, _ := s.Read(0, 0x8000) // L1 hit
	if !(l1hit < llcMiss) {
		t.Errorf("L1 hit %v !< mem %v", l1hit, llcMiss)
	}
	if l1hit != s.cfg.Clock.Cycles(s.cfg.L1HitCycles) {
		t.Errorf("L1 hit latency = %v", l1hit)
	}
}

func TestNewSystemValidation(t *testing.T) {
	for _, cores := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSystem with %d cores did not panic", cores)
				}
			}()
			NewSystem(DefaultConfig(cores))
		}()
	}
}

func TestFlushAgentStats(t *testing.T) {
	s := testSystem(1)
	s.Read(0, 0x100)
	s.FlushAgentStats()
	if s.Stats(0).Accesses != 0 {
		t.Error("stats not flushed")
	}
}

// Property: the coherence invariant SWMR (single writer or multiple readers)
// holds under random access sequences — at most one core in E/M, and if any
// core is in E/M no other core holds the line.
func TestCoherenceSWMRProperty(t *testing.T) {
	type op struct {
		Core  uint8
		Addr  uint16
		Write bool
		Dev   bool
	}
	f := func(ops []op) bool {
		s := testSystem(4)
		lines := map[Addr]bool{}
		for _, o := range ops {
			addr := Addr(o.Addr) * 8 // keep within a modest range
			lines[LineOf(addr)] = true
			core := int(o.Core % 4)
			switch {
			case o.Dev:
				s.DeviceWrite(addr)
			case o.Write:
				s.Write(core, addr)
			default:
				s.Read(core, addr)
			}
		}
		for line := range lines {
			owners, holders := 0, 0
			for c := 0; c < 4; c++ {
				switch s.StateIn(c, line) {
				case Modified, Exclusive:
					owners++
					holders++
				case Shared:
					holders++
				}
			}
			if owners > 1 {
				return false
			}
			if owners == 1 && holders > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: latency returned is always positive and bounded by
// mem + c2c + invalidation cost.
func TestLatencyBoundsProperty(t *testing.T) {
	s := testSystem(4)
	maxLat := s.cfg.MemLatency + 2*s.c2c + 2*s.l1Hit
	f := func(core uint8, a uint16, w bool) bool {
		var lat sim.Time
		if w {
			lat, _ = s.Write(int(core%4), Addr(a))
		} else {
			lat, _ = s.Read(int(core%4), Addr(a))
		}
		return lat > 0 && lat <= maxLat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

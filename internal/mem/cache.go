package mem

// way is one cache way entry.
type way struct {
	tag   Addr // line address
	state MESI
	valid bool
	lru   uint64
}

// cache is a set-associative cache with true-LRU replacement. It stores only
// tags and states; data contents are not modelled.
type cache struct {
	sets  [][]way
	nsets uint64
	tick  uint64
}

// newCache builds a cache of size bytes with the given associativity.
// The set count is rounded down to a power of two for cheap indexing.
func newCache(size, ways int) *cache {
	if size <= 0 || ways <= 0 {
		panic("mem: cache size and ways must be positive")
	}
	nsets := size / (LineSize * ways)
	if nsets < 1 {
		nsets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	c := &cache{nsets: uint64(p)}
	c.sets = make([][]way, p)
	for i := range c.sets {
		c.sets[i] = make([]way, ways)
	}
	return c
}

func (c *cache) set(line Addr) []way {
	return c.sets[lineNum(line)&(c.nsets-1)]
}

// lookup returns the way holding line, or nil. A hit refreshes LRU.
func (c *cache) lookup(line Addr) *way {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			c.tick++
			set[i].lru = c.tick
			return &set[i]
		}
	}
	return nil
}

// insert fills line with the given state, returning the evicted victim if a
// valid entry had to be replaced. Inserting a line already present just
// updates its state.
func (c *cache) insert(line Addr, state MESI) (victim way, evicted bool) {
	set := c.set(line)
	c.tick++
	// Already present?
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].state = state
			set[i].lru = c.tick
			return way{}, false
		}
	}
	// Free way?
	for i := range set {
		if !set[i].valid {
			set[i] = way{tag: line, state: state, valid: true, lru: c.tick}
			return way{}, false
		}
	}
	// Evict LRU.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim = set[vi]
	set[vi] = way{tag: line, state: state, valid: true, lru: c.tick}
	return victim, true
}

// invalidate drops line if present.
func (c *cache) invalidate(line Addr) {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].valid = false
			return
		}
	}
}

package dispatch

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func frame(t RequestType, tenant uint32, id uint64, payload []byte) []byte {
	r := Request{Type: t, Tenant: tenant, RequestID: id, Payload: payload}
	return r.Marshal(nil)
}

func newDispatcher() *Dispatcher {
	d := NewDispatcher()
	d.AddBackend("cache", "cache-0")
	d.AddBackend("cache", "cache-1")
	d.AddBackend("search", "search-0")
	d.AddBackend("ml", "ml-0")
	return d
}

func TestMarshalParseRoundTrip(t *testing.T) {
	in := Request{Type: TypeQuery, Tenant: 77, RequestID: 0xDEADBEEF, Payload: []byte("select *")}
	wire := in.Marshal(nil)
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != in.Type || got.Tenant != in.Tenant || got.RequestID != in.RequestID {
		t.Errorf("got %+v", got)
	}
	if !bytes.Equal(got.Payload, in.Payload) {
		t.Error("payload mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	valid := frame(TypeGet, 1, 2, []byte("k"))

	short := valid[:10]
	if _, err := Parse(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 0xFF
	if _, err := Parse(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}

	badVer := append([]byte(nil), valid...)
	badVer[2] = 9
	if _, err := Parse(badVer); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}

	badType := append([]byte(nil), valid...)
	badType[3] = 200
	if _, err := Parse(badType); !errors.Is(err, ErrBadType) {
		t.Errorf("type: %v", err)
	}

	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x01 // payload bit flip
	if _, err := Parse(corrupt); !errors.Is(err, ErrBadCRC) {
		t.Errorf("crc: %v", err)
	}

	lenLie := append([]byte(nil), valid...)
	lenLie[19] = 200 // claims payload longer than frame
	if _, err := Parse(lenLie); !errors.Is(err, ErrTruncated) {
		t.Errorf("length lie: %v", err)
	}
}

func TestTierRouting(t *testing.T) {
	d := newDispatcher()
	cases := map[RequestType]string{
		TypeGet:     "cache",
		TypeSet:     "cache",
		TypeQuery:   "search",
		TypeCompute: "ml",
	}
	for typ, tier := range cases {
		disp, err := d.Prepare(frame(typ, 1, 1, nil))
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if disp.Tier != tier {
			t.Errorf("%v routed to %s, want %s", typ, disp.Tier, tier)
		}
		if d.TierOf(typ) != tier {
			t.Errorf("TierOf(%v) = %s", typ, d.TierOf(typ))
		}
	}
}

func TestEmptyTier(t *testing.T) {
	d := NewDispatcher() // no backends
	if _, err := d.Prepare(frame(TypeGet, 1, 1, nil)); !errors.Is(err, ErrNoBackends) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadBalancing(t *testing.T) {
	d := NewDispatcher()
	for i := 0; i < 4; i++ {
		d.AddBackend("cache", string(rune('a'+i)))
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		disp, err := d.Prepare(frame(TypeGet, 1, uint64(i), nil))
		if err != nil {
			t.Fatal(err)
		}
		counts[disp.Backend]++
		d.Complete("cache", disp.Backend)
	}
	fair := n / 4
	for be, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("backend %s got %d (fair %d)", be, c, fair)
		}
	}
}

func TestPowerOfTwoChoicesAvoidsLoadedBackend(t *testing.T) {
	d := NewDispatcher()
	d.AddBackend("cache", "busy")
	d.AddBackend("cache", "idle")
	// Saturate "busy" artificially.
	d.pools["cache"][0].Outstanding = 1000
	busy := 0
	for i := 0; i < 200; i++ {
		disp, _ := d.Prepare(frame(TypeGet, 1, uint64(i), nil))
		if disp.Backend == "busy" {
			busy++
		}
		// Don't complete: keep imbalance visible.
	}
	// P2C picks the loaded backend only when both samples land on it
	// (~25% of draws).
	if busy > 100 {
		t.Errorf("busy backend chosen %d/200 times", busy)
	}
}

func TestOutstandingAccounting(t *testing.T) {
	d := NewDispatcher()
	d.AddBackend("ml", "ml-0")
	disp, err := d.Prepare(frame(TypeCompute, 1, 1, []byte("model")))
	if err != nil {
		t.Fatal(err)
	}
	if d.pools["ml"][0].Outstanding != 1 {
		t.Error("outstanding not incremented")
	}
	d.Complete(disp.Tier, disp.Backend)
	if d.pools["ml"][0].Outstanding != 0 {
		t.Error("outstanding not decremented")
	}
	d.Complete(disp.Tier, disp.Backend) // no-op below zero
	if d.pools["ml"][0].Outstanding != 0 {
		t.Error("outstanding went negative")
	}
}

func TestTypeCounts(t *testing.T) {
	d := newDispatcher()
	d.Prepare(frame(TypeGet, 1, 1, nil))
	d.Prepare(frame(TypeGet, 1, 2, nil))
	d.Prepare(frame(TypeQuery, 1, 3, nil))
	counts := d.TypeCounts()
	if counts[TypeGet] != 2 || counts[TypeQuery] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestRequestTypeString(t *testing.T) {
	if TypeGet.String() != "get" || TypeCompute.String() != "compute" {
		t.Error("type names")
	}
	if RequestType(42).String() != "type(42)" {
		t.Error("unknown type name")
	}
}

// Property: Marshal/Parse round-trips arbitrary requests, and any
// single-byte corruption is rejected.
func TestFrameProperty(t *testing.T) {
	f := func(typRaw uint8, tenant uint32, id uint64, payload []byte, flipAt uint16, flipBit uint8) bool {
		typ := RequestType(typRaw % uint8(typeCount))
		wire := frame(typ, tenant, id, payload)
		got, err := Parse(wire)
		if err != nil || got.Type != typ || got.Tenant != tenant || got.RequestID != id ||
			!bytes.Equal(got.Payload, payload) {
			return false
		}
		// Corrupt one bit anywhere: must be rejected.
		bad := append([]byte(nil), wire...)
		pos := int(flipAt) % len(bad)
		bad[pos] ^= 1 << (flipBit % 8)
		_, err = Parse(bad)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

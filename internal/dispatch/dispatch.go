// Package dispatch implements the paper's "request dispatching" workload:
// an online data-intensive (OLDI) front end that identifies request types
// and prepares remote procedure calls to be dispatched to servers at
// different tiers.
//
// Requests arrive in a compact binary framing; the dispatcher validates the
// frame, classifies the request type, picks a backend in the type's tier
// (power-of-two-choices on outstanding load), and emits a ready-to-send
// dispatch descriptor.
package dispatch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Request frame layout (big endian):
//
//	offset size field
//	0      2    magic 0x5250 ("RP")
//	2      1    version (1)
//	3      1    request type
//	4      4    tenant id
//	8      8    request id
//	16     4    payload length
//	20     4    CRC32 (IEEE) over bytes [0,20) ++ payload
//	24     n    payload
const (
	HeaderLen = 24
	Magic     = 0x5250
	Version   = 1
)

// RequestType classifies requests into the microservice tiers the paper's
// dispatcher motivates.
type RequestType uint8

// Request types.
const (
	TypeGet RequestType = iota
	TypeSet
	TypeQuery
	TypeCompute
	typeCount
)

func (t RequestType) String() string {
	switch t {
	case TypeGet:
		return "get"
	case TypeSet:
		return "set"
	case TypeQuery:
		return "query"
	case TypeCompute:
		return "compute"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Errors returned by the parser and dispatcher.
var (
	ErrTruncated  = errors.New("dispatch: truncated request")
	ErrBadMagic   = errors.New("dispatch: bad magic")
	ErrBadVersion = errors.New("dispatch: unsupported version")
	ErrBadType    = errors.New("dispatch: unknown request type")
	ErrBadCRC     = errors.New("dispatch: CRC mismatch")
	ErrNoBackends = errors.New("dispatch: tier has no backends")
)

// Request is a parsed request frame.
type Request struct {
	Type      RequestType
	Tenant    uint32
	RequestID uint64
	Payload   []byte
}

// Marshal appends the wire form of the request to b.
func (r *Request) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, HeaderLen)...)
	p := b[start:]
	binary.BigEndian.PutUint16(p[0:], Magic)
	p[2] = Version
	p[3] = byte(r.Type)
	binary.BigEndian.PutUint32(p[4:], r.Tenant)
	binary.BigEndian.PutUint64(p[8:], r.RequestID)
	binary.BigEndian.PutUint32(p[16:], uint32(len(r.Payload)))
	b = append(b, r.Payload...)
	p = b[start:]
	crc := crc32.NewIEEE()
	crc.Write(p[:20])
	crc.Write(r.Payload)
	binary.BigEndian.PutUint32(p[20:24], crc.Sum32())
	return b
}

// Parse decodes and validates a request frame.
func Parse(frame []byte) (Request, error) {
	var r Request
	if len(frame) < HeaderLen {
		return r, ErrTruncated
	}
	if binary.BigEndian.Uint16(frame[0:]) != Magic {
		return r, ErrBadMagic
	}
	if frame[2] != Version {
		return r, ErrBadVersion
	}
	r.Type = RequestType(frame[3])
	if r.Type >= typeCount {
		return r, ErrBadType
	}
	r.Tenant = binary.BigEndian.Uint32(frame[4:])
	r.RequestID = binary.BigEndian.Uint64(frame[8:])
	n := binary.BigEndian.Uint32(frame[16:])
	if int(n) > len(frame)-HeaderLen {
		return r, ErrTruncated
	}
	r.Payload = frame[HeaderLen : HeaderLen+int(n)]
	crc := crc32.NewIEEE()
	crc.Write(frame[:20])
	crc.Write(r.Payload)
	if crc.Sum32() != binary.BigEndian.Uint32(frame[20:24]) {
		return r, ErrBadCRC
	}
	return r, nil
}

// Backend is one server in a tier.
type Backend struct {
	Name        string
	Outstanding int // RPCs dispatched but not yet completed
}

// Dispatch is a prepared RPC: which backend gets which serialized request.
type Dispatch struct {
	Backend string
	Tier    string
	Wire    []byte
}

// Dispatcher routes parsed requests to tier backends.
type Dispatcher struct {
	tiers  map[RequestType]string
	pools  map[string][]*Backend
	rng    uint64
	counts map[RequestType]int64
}

// NewDispatcher builds a dispatcher with the canonical OLDI tier layout:
// get/set -> "cache" tier, query -> "search" tier, compute -> "ml" tier.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{
		tiers: map[RequestType]string{
			TypeGet:     "cache",
			TypeSet:     "cache",
			TypeQuery:   "search",
			TypeCompute: "ml",
		},
		pools:  make(map[string][]*Backend),
		rng:    0x853c49e6748fea9b,
		counts: make(map[RequestType]int64),
	}
}

// AddBackend registers a server in a tier.
func (d *Dispatcher) AddBackend(tier, name string) {
	d.pools[tier] = append(d.pools[tier], &Backend{Name: name})
}

func (d *Dispatcher) rand() uint64 {
	x := d.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	d.rng = x
	return x * 0x2545f4914f6cdd1d
}

// pick chooses a backend via power-of-two-choices on outstanding load.
func (d *Dispatcher) pick(pool []*Backend) *Backend {
	if len(pool) == 1 {
		return pool[0]
	}
	a := pool[d.rand()%uint64(len(pool))]
	b := pool[d.rand()%uint64(len(pool))]
	if b.Outstanding < a.Outstanding {
		return b
	}
	return a
}

// Prepare classifies a raw frame and produces the dispatch descriptor,
// incrementing the chosen backend's outstanding count.
func (d *Dispatcher) Prepare(frame []byte) (Dispatch, error) {
	r, err := Parse(frame)
	if err != nil {
		return Dispatch{}, err
	}
	tier := d.tiers[r.Type]
	pool := d.pools[tier]
	if len(pool) == 0 {
		return Dispatch{}, fmt.Errorf("%w: %s", ErrNoBackends, tier)
	}
	be := d.pick(pool)
	be.Outstanding++
	d.counts[r.Type]++
	return Dispatch{Backend: be.Name, Tier: tier, Wire: frame}, nil
}

// Complete marks an RPC finished on the named backend.
func (d *Dispatcher) Complete(tier, backend string) {
	for _, be := range d.pools[tier] {
		if be.Name == backend && be.Outstanding > 0 {
			be.Outstanding--
			return
		}
	}
}

// TypeCounts returns how many requests of each type were dispatched.
func (d *Dispatcher) TypeCounts() map[RequestType]int64 {
	out := make(map[RequestType]int64, len(d.counts))
	for k, v := range d.counts {
		out[k] = v
	}
	return out
}

// TierOf returns the tier a request type routes to.
func (d *Dispatcher) TierOf(t RequestType) string { return d.tiers[t] }

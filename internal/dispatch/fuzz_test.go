package dispatch

import (
	"bytes"
	"testing"
)

// FuzzParse: the RPC frame parser must never panic, and any frame it
// accepts must re-marshal to an equivalent frame.
func FuzzParse(f *testing.F) {
	r := Request{Type: TypeQuery, Tenant: 9, RequestID: 1234, Payload: []byte("select")}
	f.Add(r.Marshal(nil))
	f.Add([]byte{0x52, 0x50})
	f.Add(bytes.Repeat([]byte{0}, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := Parse(data)
		if err != nil {
			return
		}
		re := req.Marshal(nil)
		req2, err := Parse(re)
		if err != nil {
			t.Fatalf("re-parse of accepted frame failed: %v", err)
		}
		if req2.Type != req.Type || req2.Tenant != req.Tenant ||
			req2.RequestID != req.RequestID || !bytes.Equal(req2.Payload, req.Payload) {
			t.Fatal("frame fields changed across round-trip")
		}
	})
}

package raidp

import (
	"bytes"
	"testing"
	"testing/quick"
)

// stripe builds deterministic test data for n disks of the given block size.
func stripe(n, size int) [][]byte {
	data := make([][]byte, n)
	for d := range data {
		data[d] = make([]byte, size)
		for i := range data[d] {
			data[d][i] = byte(d*31 + i*7 + 1)
		}
	}
	return data
}

func clone(data [][]byte) [][]byte {
	out := make([][]byte, len(data))
	for i := range data {
		if data[i] != nil {
			out[i] = append([]byte(nil), data[i]...)
		}
	}
	return out
}

func TestComputeVerifyPQ(t *testing.T) {
	a, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	data := stripe(5, 64)
	p := make([]byte, 64)
	q := make([]byte, 64)
	if err := a.ComputePQ(data, p, q); err != nil {
		t.Fatal(err)
	}
	ok, err := a.VerifyStripe(data, p, q)
	if err != nil || !ok {
		t.Fatalf("verify = %v, %v", ok, err)
	}
	// P must equal the XOR of all blocks.
	for i := 0; i < 64; i++ {
		var x byte
		for d := 0; d < 5; d++ {
			x ^= data[d][i]
		}
		if p[i] != x {
			t.Fatalf("P[%d] wrong", i)
		}
	}
	data[2][10] ^= 0xff
	ok, _ = a.VerifyStripe(data, p, q)
	if ok {
		t.Error("corrupted stripe verified")
	}
}

func TestRecoverOneData(t *testing.T) {
	a, _ := New(4)
	data := stripe(4, 32)
	orig := clone(data)
	p := make([]byte, 32)
	q := make([]byte, 32)
	a.ComputePQ(data, p, q)
	for x := 0; x < 4; x++ {
		d := clone(orig)
		d[x] = nil
		if err := a.RecoverOneData(d, p, x); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d[x], orig[x]) {
			t.Errorf("disk %d wrong after single recovery", x)
		}
	}
}

func TestRecoverDataAndP(t *testing.T) {
	a, _ := New(4)
	orig := stripe(4, 32)
	p := make([]byte, 32)
	q := make([]byte, 32)
	a.ComputePQ(orig, p, q)
	for x := 0; x < 4; x++ {
		d := clone(orig)
		d[x] = nil
		pBad := make([]byte, 32) // P lost too
		if err := a.RecoverDataAndP(d, pBad, q, x); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d[x], orig[x]) {
			t.Errorf("disk %d wrong after data+P recovery", x)
		}
		if !bytes.Equal(pBad, p) {
			t.Errorf("P wrong after data+P recovery (x=%d)", x)
		}
	}
}

func TestRecoverTwoData(t *testing.T) {
	a, _ := New(6)
	orig := stripe(6, 48)
	p := make([]byte, 48)
	q := make([]byte, 48)
	a.ComputePQ(orig, p, q)
	for x := 0; x < 6; x++ {
		for y := x + 1; y < 6; y++ {
			d := clone(orig)
			d[x], d[y] = nil, nil
			if err := a.RecoverTwoData(d, p, q, x, y); err != nil {
				t.Fatalf("recover (%d,%d): %v", x, y, err)
			}
			if !bytes.Equal(d[x], orig[x]) || !bytes.Equal(d[y], orig[y]) {
				t.Fatalf("disks (%d,%d) wrong after double recovery", x, y)
			}
		}
	}
}

func TestRecoverDispatch(t *testing.T) {
	a, _ := New(4)
	orig := stripe(4, 16)
	p := make([]byte, 16)
	q := make([]byte, 16)
	a.ComputePQ(orig, p, q)
	pIdx, qIdx := 4, 5

	cases := [][]int{
		{},           // nothing lost
		{1},          // one data
		{0, 2},       // two data
		{3, pIdx},    // data + P
		{2, qIdx},    // data + Q
		{pIdx},       // P only
		{qIdx},       // Q only
		{pIdx, qIdx}, // both parities
	}
	for _, failed := range cases {
		d := clone(orig)
		pp := append([]byte(nil), p...)
		qq := append([]byte(nil), q...)
		for _, f := range failed {
			switch {
			case f < 4:
				d[f] = nil
			case f == pIdx:
				for i := range pp {
					pp[i] = 0xEE
				}
			case f == qIdx:
				for i := range qq {
					qq[i] = 0xEE
				}
			}
		}
		if err := a.Recover(d, pp, qq, failed); err != nil {
			t.Fatalf("recover %v: %v", failed, err)
		}
		for i := range orig {
			if !bytes.Equal(d[i], orig[i]) {
				t.Fatalf("recover %v: disk %d wrong", failed, i)
			}
		}
		if !bytes.Equal(pp, p) || !bytes.Equal(qq, q) {
			t.Fatalf("recover %v: parity wrong", failed)
		}
	}
}

func TestRecoverErrors(t *testing.T) {
	a, _ := New(3)
	data := stripe(3, 8)
	p := make([]byte, 8)
	q := make([]byte, 8)
	a.ComputePQ(data, p, q)
	if err := a.Recover(data, p, q, []int{0, 1, 2}); err != ErrTooManyBad {
		t.Errorf("3 failures: %v", err)
	}
	if err := a.Recover(data, p, q, []int{9}); err != ErrBadIndex {
		t.Errorf("bad index: %v", err)
	}
	if err := a.RecoverTwoData(data, p, q, 1, 1); err != ErrBadIndex {
		t.Errorf("x==y: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 255, 300} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
}

func TestComputePQValidation(t *testing.T) {
	a, _ := New(2)
	p := make([]byte, 4)
	q := make([]byte, 4)
	if err := a.ComputePQ([][]byte{{1, 2, 3, 4}}, p, q); err != ErrBlockCount {
		t.Errorf("block count: %v", err)
	}
	if err := a.ComputePQ([][]byte{{1, 2}, {1, 2, 3}}, p, q); err != ErrBlockSize {
		t.Errorf("ragged: %v", err)
	}
	if err := a.ComputePQ([][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}}, p[:2], q); err != ErrBlockSize {
		t.Errorf("short parity: %v", err)
	}
}

// Property: random stripes survive any random loss of up to two devices.
func TestRecoverProperty(t *testing.T) {
	f := func(blocks []byte, nRaw uint8, f1, f2 uint8) bool {
		n := int(nRaw%8) + 2
		size := len(blocks)/n + 1
		a, err := New(n)
		if err != nil {
			return false
		}
		data := make([][]byte, n)
		for d := range data {
			data[d] = make([]byte, size)
			for i := range data[d] {
				idx := d*size + i
				if idx < len(blocks) {
					data[d][i] = blocks[idx]
				}
			}
		}
		orig := clone(data)
		p := make([]byte, size)
		q := make([]byte, size)
		if err := a.ComputePQ(data, p, q); err != nil {
			return false
		}
		origP := append([]byte(nil), p...)
		origQ := append([]byte(nil), q...)

		i1 := int(f1) % (n + 2)
		i2 := int(f2) % (n + 2)
		failed := []int{i1}
		if i2 != i1 {
			failed = append(failed, i2)
		}
		for _, f := range failed {
			switch {
			case f < n:
				data[f] = nil
			case f == n:
				for i := range p {
					p[i] = 0xAA
				}
			default:
				for i := range q {
					q[i] = 0xAA
				}
			}
		}
		if err := a.Recover(data, p, q, failed); err != nil {
			return false
		}
		for d := range orig {
			if !bytes.Equal(data[d], orig[d]) {
				return false
			}
		}
		return bytes.Equal(p, origP) && bytes.Equal(q, origQ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

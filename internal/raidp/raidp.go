// Package raidp implements RAID with P+Q redundancy (RAID-6), the paper's
// "RAID protection" workload: computing the P (XOR) and Q (Reed–Solomon
// over GF(2^8)) parity bytes of input data blocks and reconstructing after
// one or two device failures.
package raidp

import (
	"errors"
	"fmt"

	"hyperplane/internal/erasure"
)

// Errors returned by the array operations.
var (
	ErrBlockSize  = errors.New("raidp: blocks must be non-empty and equal-sized")
	ErrBlockCount = errors.New("raidp: wrong number of data blocks")
	ErrTooManyBad = errors.New("raidp: more than two failures cannot be recovered")
	ErrBadIndex   = errors.New("raidp: failure index out of range")
)

// Array is a RAID-6 stripe layout over n data disks plus P and Q.
//
//	P = D_0 ^ D_1 ^ ... ^ D_{n-1}
//	Q = g^0*D_0 ^ g^1*D_1 ^ ... ^ g^{n-1}*D_{n-1},  g = 2 in GF(2^8)
type Array struct {
	n int
}

// New returns an array with n data disks (2 <= n <= 254, so that the g^i
// coefficients stay distinct and nonzero).
func New(n int) (*Array, error) {
	if n < 2 || n > 254 {
		return nil, fmt.Errorf("raidp: data disk count %d out of range [2,254]", n)
	}
	return &Array{n: n}, nil
}

// DataDisks returns n.
func (a *Array) DataDisks() int { return a.n }

func (a *Array) checkBlocks(data [][]byte) (int, error) {
	if len(data) != a.n {
		return 0, ErrBlockCount
	}
	size := -1
	for _, d := range data {
		if d == nil {
			continue
		}
		if size == -1 {
			size = len(d)
		}
		if len(d) != size || size == 0 {
			return 0, ErrBlockSize
		}
	}
	if size <= 0 {
		return 0, ErrBlockSize
	}
	return size, nil
}

// ComputePQ fills p and q with the stripe parities. p and q must be the
// same length as the data blocks.
func (a *Array) ComputePQ(data [][]byte, p, q []byte) error {
	size, err := a.checkBlocks(data)
	if err != nil {
		return err
	}
	if len(p) != size || len(q) != size {
		return ErrBlockSize
	}
	for i := range p {
		p[i], q[i] = 0, 0
	}
	for d := a.n - 1; d >= 0; d-- {
		// Horner's rule for Q: Q = ((...(D_{n-1})*g ^ D_{n-2})*g ...) ^ D_0.
		for i, b := range data[d] {
			p[i] ^= b
			q[i] = erasure.Mul(q[i], 2) ^ b
		}
	}
	return nil
}

// VerifyStripe recomputes P and Q and compares.
func (a *Array) VerifyStripe(data [][]byte, p, q []byte) (bool, error) {
	size, err := a.checkBlocks(data)
	if err != nil {
		return false, err
	}
	if len(p) != size || len(q) != size {
		return false, ErrBlockSize
	}
	pp := make([]byte, size)
	qq := make([]byte, size)
	if err := a.ComputePQ(data, pp, qq); err != nil {
		return false, err
	}
	for i := range pp {
		if pp[i] != p[i] || qq[i] != q[i] {
			return false, nil
		}
	}
	return true, nil
}

// coef returns g^d, the Q coefficient of data disk d.
func coef(d int) byte { return erasure.Exp(d) }

// RecoverOneData rebuilds data disk x from the surviving data and P.
func (a *Array) RecoverOneData(data [][]byte, p []byte, x int) error {
	if x < 0 || x >= a.n {
		return ErrBadIndex
	}
	size := len(p)
	out := make([]byte, size)
	copy(out, p)
	for d := 0; d < a.n; d++ {
		if d == x {
			continue
		}
		if data[d] == nil || len(data[d]) != size {
			return ErrBlockSize
		}
		for i, b := range data[d] {
			out[i] ^= b
		}
	}
	data[x] = out
	return nil
}

// RecoverDataAndP rebuilds data disk x and the P parity using Q.
func (a *Array) RecoverDataAndP(data [][]byte, p, q []byte, x int) error {
	if x < 0 || x >= a.n {
		return ErrBadIndex
	}
	size := len(q)
	// D_x = (Q ^ Q') * g^{-x}, where Q' is Q computed over surviving disks.
	out := make([]byte, size)
	qq := make([]byte, size)
	for d := 0; d < a.n; d++ {
		if d == x {
			continue
		}
		if data[d] == nil || len(data[d]) != size {
			return ErrBlockSize
		}
		c := coef(d)
		for i, b := range data[d] {
			qq[i] ^= erasure.Mul(c, b)
		}
	}
	invCx := erasure.Inv(coef(x))
	for i := range out {
		out[i] = erasure.Mul(q[i]^qq[i], invCx)
	}
	data[x] = out
	// Recompute P from the complete data.
	for i := range p {
		p[i] = 0
	}
	for d := 0; d < a.n; d++ {
		for i, b := range data[d] {
			p[i] ^= b
		}
	}
	return nil
}

// RecoverTwoData rebuilds data disks x and y (x != y) from P and Q using
// the standard RAID-6 two-failure equations.
func (a *Array) RecoverTwoData(data [][]byte, p, q []byte, x, y int) error {
	if x == y {
		return ErrBadIndex
	}
	if x > y {
		x, y = y, x
	}
	if x < 0 || y >= a.n {
		return ErrBadIndex
	}
	size := len(p)
	if len(q) != size {
		return ErrBlockSize
	}
	// Pxy = P ^ (xor of surviving), Qxy = Q ^ (Q-sum of surviving):
	//   D_x ^ D_y           = Pxy
	//   g^x D_x ^ g^y D_y   = Qxy
	// =>
	//   D_x = (g^{y-x} Pxy ^ g^{-x} Qxy) / (g^{y-x} ^ 1)
	//   D_y = D_x ^ Pxy
	pxy := make([]byte, size)
	qxy := make([]byte, size)
	copy(pxy, p)
	copy(qxy, q)
	for d := 0; d < a.n; d++ {
		if d == x || d == y {
			continue
		}
		if data[d] == nil || len(data[d]) != size {
			return ErrBlockSize
		}
		c := coef(d)
		for i, b := range data[d] {
			pxy[i] ^= b
			qxy[i] ^= erasure.Mul(c, b)
		}
	}
	gyx := erasure.Div(coef(y), coef(x)) // g^{y-x}
	denom := erasure.Inv(gyx ^ 1)
	ginvx := erasure.Inv(coef(x))
	dx := make([]byte, size)
	dy := make([]byte, size)
	for i := 0; i < size; i++ {
		dx[i] = erasure.Mul(erasure.Mul(gyx, pxy[i])^erasure.Mul(ginvx, qxy[i]), denom)
		dy[i] = dx[i] ^ pxy[i]
	}
	data[x] = dx
	data[y] = dy
	return nil
}

// Recover dispatches on the failure pattern: failed lists the indices of
// lost devices, where 0..n-1 are data disks, n is P, and n+1 is Q. Data,
// p, and q are repaired in place.
func (a *Array) Recover(data [][]byte, p, q []byte, failed []int) error {
	if len(failed) > 2 {
		return ErrTooManyBad
	}
	for _, f := range failed {
		if f < 0 || f > a.n+1 {
			return ErrBadIndex
		}
	}
	pIdx, qIdx := a.n, a.n+1
	has := func(idx int) bool {
		for _, f := range failed {
			if f == idx {
				return true
			}
		}
		return false
	}
	var lostData []int
	for _, f := range failed {
		if f < a.n {
			lostData = append(lostData, f)
		}
	}
	switch {
	case len(lostData) == 2:
		if err := a.RecoverTwoData(data, p, q, lostData[0], lostData[1]); err != nil {
			return err
		}
	case len(lostData) == 1 && has(pIdx):
		if err := a.RecoverDataAndP(data, p, q, lostData[0]); err != nil {
			return err
		}
	case len(lostData) == 1:
		if err := a.RecoverOneData(data, p, lostData[0]); err != nil {
			return err
		}
	}
	// Any lost parity is recomputed from (now complete) data.
	if has(pIdx) || has(qIdx) {
		return a.ComputePQ(data, p, q)
	}
	return nil
}

package sdp

import (
	"testing"

	"hyperplane/internal/policy"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// base returns a small, fast configuration for tests.
func base() Config {
	return Config{
		Cores:    1,
		Queues:   64,
		Workload: workload.PacketEncap,
		Shape:    traffic.SQ,
		Plane:    Spinning,
		Policy:   policy.Spec{Kind: policy.RoundRobin},
		Mode:     Saturate,
		Warmup:   200 * sim.Microsecond,
		Duration: 2 * sim.Millisecond,
		Seed:     1,
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 32 },
		func(c *Config) { c.Queues = 0 },
		func(c *Config) { c.Workload = workload.Spec{} },
		func(c *Config) { c.ClusterSize = 3 }, // does not divide 1 core
		func(c *Config) { c.Mode = OpenLoop; c.Load = 0 },
		func(c *Config) { c.Imbalance = 2 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.BatchSize = -1 },
		func(c *Config) { c.ProducerBatch = -1 },
		func(c *Config) { c.Policy = policy.Spec{Kind: policy.WeightedRoundRobin, Weights: []int{1}} }, // short weights
	}
	for i, mutate := range bad {
		cfg := base()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.BatchSize != 1 || good.ClusterSize != 1 || good.ProducerBatch != 1 {
		t.Error("defaults not applied")
	}
}

func TestProducerBatchCoalescesDoorbells(t *testing.T) {
	// Device-side doorbell coalescing: with ProducerBatch=8 the refill path
	// rings one doorbell per 8 items, so the monitoring set sees far fewer
	// snoops for the same completed work — and the run still makes
	// comparable progress.
	through := func(pb int) (Result, float64) {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.BatchSize = 8 // refill happens in dequeue-batch-sized chunks
		cfg.ProducerBatch = pb
		r := run(t, cfg)
		return r, float64(r.Monitor.Snoops) / float64(r.Completed)
	}
	r1, snoops1 := through(1)
	r8, snoops8 := through(8)
	if r8.Completed == 0 {
		t.Fatal("no completions with ProducerBatch=8")
	}
	// Consumer-side doorbell decrements snoop too, and dequeue batches can
	// run short of BatchSize, so expect a solid cut rather than a full 8x.
	if snoops8 > snoops1*0.67 {
		t.Errorf("snoops/completion %0.3f -> %0.3f: coalescing did not cut doorbell traffic",
			snoops1, snoops8)
	}
	if r8.ThroughputMTasks < r1.ThroughputMTasks*0.8 {
		t.Errorf("throughput regressed under coalescing: %0.3f -> %0.3f",
			r1.ThroughputMTasks, r8.ThroughputMTasks)
	}
}

func TestProducerBatchOpenLoop(t *testing.T) {
	// OpenLoop arrivals flush a pending run as soon as the next arrival
	// targets a different queue, so coalescing must not strand items: the
	// run completes with healthy sample counts on every plane.
	for _, plane := range []PlaneKind{Spinning, HyperPlane} {
		cfg := base()
		cfg.Plane = plane
		cfg.Mode = OpenLoop
		cfg.Load = 0.3
		cfg.ProducerBatch = 4
		cfg.Duration = 10 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		r := run(t, cfg)
		if r.Completed < 100 {
			t.Errorf("%v: only %d completions under coalesced arrivals", plane, r.Completed)
		}
	}
}

func TestSaturateThroughputPositive(t *testing.T) {
	for _, plane := range []PlaneKind{Spinning, HyperPlane} {
		cfg := base()
		cfg.Plane = plane
		r := run(t, cfg)
		if r.Completed == 0 {
			t.Errorf("%v: no completions", plane)
		}
		if r.ThroughputMTasks <= 0 {
			t.Errorf("%v: throughput = %v", plane, r.ThroughputMTasks)
		}
	}
}

func TestQueueScalabilityThroughput(t *testing.T) {
	// Paper Fig. 8, SQ traffic: spinning throughput collapses as queues
	// grow; HyperPlane stays flat.
	through := func(plane PlaneKind, queues int) float64 {
		cfg := base()
		cfg.Plane = plane
		cfg.Queues = queues
		return run(t, cfg).ThroughputMTasks
	}
	spin8, spin512 := through(Spinning, 8), through(Spinning, 512)
	hp8, hp512 := through(HyperPlane, 8), through(HyperPlane, 512)
	if spin512 >= spin8*0.6 {
		t.Errorf("spinning SQ throughput did not collapse: %0.3f -> %0.3f", spin8, spin512)
	}
	if hp512 < hp8*0.9 {
		t.Errorf("HyperPlane SQ throughput not flat: %0.3f -> %0.3f", hp8, hp512)
	}
	if hp512 < spin512*2 {
		t.Errorf("HyperPlane (%0.3f) should dominate spinning (%0.3f) at 512 queues", hp512, spin512)
	}
}

func TestZeroLoadLatencyScaling(t *testing.T) {
	// Paper Fig. 9: spinning latency grows with queue count; HyperPlane's
	// does not.
	lat := func(plane PlaneKind, queues int) (avg, p99 sim.Time) {
		cfg := base()
		cfg.Plane = plane
		cfg.Queues = queues
		cfg.Shape = traffic.FB
		cfg.Mode = OpenLoop
		cfg.Load = 0.01
		cfg.Duration = 30 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		r := run(t, cfg)
		if r.Completed < 20 {
			t.Fatalf("%v/%d queues: only %d samples", plane, queues, r.Completed)
		}
		return r.AvgLatency, r.P99Latency
	}
	spinAvg16, _ := lat(Spinning, 16)
	spinAvg256, spinP99 := lat(Spinning, 256)
	hpAvg16, _ := lat(HyperPlane, 16)
	hpAvg256, _ := lat(HyperPlane, 256)

	if spinAvg256 < spinAvg16*2 {
		t.Errorf("spinning latency not growing with queues: %v -> %v", spinAvg16, spinAvg256)
	}
	if hpAvg256 > hpAvg16*3/2 {
		t.Errorf("HyperPlane latency grew with queues: %v -> %v", hpAvg16, hpAvg256)
	}
	if hpAvg256*2 > spinAvg256 {
		t.Errorf("HyperPlane (%v) should beat spinning (%v) at 256 queues", hpAvg256, spinAvg256)
	}
	if spinP99 < spinAvg256 {
		t.Errorf("P99 (%v) below average (%v)", spinP99, spinAvg256)
	}
}

func TestWorkProportionalityIPC(t *testing.T) {
	// Paper Fig. 11a: spinning IPC is highest at zero load; HyperPlane IPC
	// grows with load.
	ipc := func(plane PlaneKind, load float64) Result {
		cfg := base()
		cfg.Plane = plane
		cfg.Queues = 128
		cfg.Shape = traffic.FB
		cfg.Mode = OpenLoop
		cfg.Load = load
		cfg.Duration = 10 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		return run(t, cfg)
	}
	spinIdle := ipc(Spinning, 0.02)
	spinBusy := ipc(Spinning, 0.7)
	hpIdle := ipc(HyperPlane, 0.02)
	hpBusy := ipc(HyperPlane, 0.7)

	if spinIdle.OverallIPC < 1.5 {
		t.Errorf("idle spin IPC = %.2f, want full-tilt (> 1.5)", spinIdle.OverallIPC)
	}
	if spinIdle.UselessIPC <= spinBusy.UselessIPC {
		t.Errorf("useless spin IPC should fall with load: %.2f -> %.2f",
			spinIdle.UselessIPC, spinBusy.UselessIPC)
	}
	if hpIdle.OverallIPC > 0.1 {
		t.Errorf("idle HyperPlane IPC = %.2f, want ~0 (halted)", hpIdle.OverallIPC)
	}
	if hpBusy.OverallIPC <= hpIdle.OverallIPC {
		t.Error("HyperPlane IPC not growing with load")
	}
	if hpBusy.UselessIPC > 0.2 {
		t.Errorf("HyperPlane useless IPC = %.2f, want ~0", hpBusy.UselessIPC)
	}
}

func TestPowerProportionality(t *testing.T) {
	// Paper Fig. 12a: spinning consumes more power at zero load than at
	// saturation; HyperPlane idles cheaply, cheaper still in C1.
	runAt := func(plane PlaneKind, load float64, popt bool) Result {
		cfg := base()
		cfg.Plane = plane
		cfg.Queues = 128
		cfg.Shape = traffic.FB
		cfg.Mode = OpenLoop
		cfg.Load = load
		cfg.PowerOptimized = popt
		cfg.Duration = 10 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		return run(t, cfg)
	}
	spinIdle := runAt(Spinning, 0.02, false)
	spinBusy := runAt(Spinning, 0.8, false)
	hpIdle := runAt(HyperPlane, 0.02, false)
	hpIdleC1 := runAt(HyperPlane, 0.02, true)

	if spinIdle.AvgPowerW <= spinBusy.AvgPowerW {
		t.Errorf("spinning idle power (%.2fW) should exceed busy power (%.2fW)",
			spinIdle.AvgPowerW, spinBusy.AvgPowerW)
	}
	if hpIdle.AvgPowerW >= spinIdle.AvgPowerW/2 {
		t.Errorf("HyperPlane idle power (%.2fW) not well below spinning (%.2fW)",
			hpIdle.AvgPowerW, spinIdle.AvgPowerW)
	}
	if hpIdleC1.AvgPowerW >= hpIdle.AvgPowerW {
		t.Errorf("C1 mode (%.2fW) should undercut C0-halt (%.2fW)",
			hpIdleC1.AvgPowerW, hpIdle.AvgPowerW)
	}
}

func TestPowerOptimizedWakeLatency(t *testing.T) {
	// Paper Fig. 9b / 12b: the C1 wake-up adds ~0.5 us at light load.
	lat := func(popt bool) sim.Time {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Queues = 64
		cfg.Shape = traffic.FB
		cfg.Mode = OpenLoop
		cfg.Load = 0.01
		cfg.PowerOptimized = popt
		cfg.Duration = 30 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		return run(t, cfg).AvgLatency
	}
	regular, optimized := lat(false), lat(true)
	delta := optimized - regular
	if delta < 300*sim.Nanosecond || delta > 700*sim.Nanosecond {
		t.Errorf("C1 wake-up penalty = %v, want ~0.5us", delta)
	}
}

func TestScaleUpBeatsScaleOutForHyperPlane(t *testing.T) {
	// Paper Fig. 10: scale-up HyperPlane wins; scale-up spinning loses to
	// its own scale-out variant due to synchronization.
	// Paper Fig. 10a configuration: 4 cores, 400 queues, FB traffic.
	p99 := func(plane PlaneKind, clusterSize int) sim.Time {
		cfg := base()
		cfg.Cores = 4
		cfg.ClusterSize = clusterSize
		cfg.Queues = 400
		cfg.Shape = traffic.FB
		cfg.Plane = plane
		cfg.Mode = OpenLoop
		cfg.Load = 0.5
		cfg.Duration = 15 * sim.Millisecond
		cfg.Warmup = 2 * sim.Millisecond
		r := run(t, cfg)
		if r.Completed < 100 {
			t.Fatalf("%v cluster=%d: only %d completions", plane, clusterSize, r.Completed)
		}
		return r.P99Latency
	}
	hpOut := p99(HyperPlane, 1)
	hpUp := p99(HyperPlane, 4)
	spinOut := p99(Spinning, 1)
	spinUp := p99(Spinning, 4)

	if hpUp > hpOut {
		t.Errorf("HyperPlane scale-up P99 (%v) worse than scale-out (%v)", hpUp, hpOut)
	}
	if spinUp < spinOut {
		t.Errorf("spinning scale-up P99 (%v) better than scale-out (%v); sync costs missing", spinUp, spinOut)
	}
	if hpUp > spinOut {
		t.Errorf("HyperPlane scale-up (%v) should beat spinning scale-out (%v)", hpUp, spinOut)
	}
}

func TestSoftwareReadySetSlower(t *testing.T) {
	// Paper Fig. 13: under FB traffic with many queues, the software ready
	// set costs substantial throughput.
	through := func(software bool) float64 {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Queues = 512
		cfg.Shape = traffic.FB
		cfg.SoftwareReadySet = software
		cfg.Duration = 4 * sim.Millisecond
		return run(t, cfg).ThroughputMTasks
	}
	hw, sw := through(false), through(true)
	if sw >= hw*0.95 {
		t.Errorf("software ready set (%.3f) not slower than hardware (%.3f)", sw, hw)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Mode = OpenLoop
	cfg.Load = 0.5
	cfg.Shape = traffic.PC
	cfg.Duration = 5 * sim.Millisecond
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Completed != b.Completed || a.P99Latency != b.P99Latency ||
		a.ThroughputMTasks != b.ThroughputMTasks {
		t.Errorf("runs diverged: %d/%v vs %d/%v",
			a.Completed, a.P99Latency, b.Completed, b.P99Latency)
	}
}

func TestHyperPlaneNoUselessSpinningWhenIdle(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Mode = OpenLoop
	cfg.Load = 0.01
	cfg.Shape = traffic.SQ
	cfg.Duration = 20 * sim.Millisecond
	cfg.Warmup = sim.Millisecond
	r := run(t, cfg)
	// The halted core must spend nearly all its time in C0-halt.
	res := r.Cores[0].Residency
	total := res[0] + res[1] + res[2]
	if total == 0 {
		t.Fatal("no residency recorded")
	}
	idleFrac := float64(res[1]+res[2]) / float64(total)
	if idleFrac < 0.9 {
		t.Errorf("idle fraction = %.2f, want > 0.9", idleFrac)
	}
}

func TestMonitorIntegration(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Mode = OpenLoop
	cfg.Load = 0.3
	cfg.Shape = traffic.PC
	cfg.Duration = 10 * sim.Millisecond
	r := run(t, cfg)
	if r.Monitor.Activations == 0 {
		t.Error("monitoring set never activated a QID")
	}
	if r.Monitor.Adds != int64(cfg.Queues) {
		t.Errorf("adds = %d, want %d", r.Monitor.Adds, cfg.Queues)
	}
	if r.Completed == 0 {
		t.Error("no completions")
	}
}

func TestImbalancePartition(t *testing.T) {
	cfg := base()
	cfg.Cores = 4
	cfg.ClusterSize = 1
	cfg.Queues = 80
	cfg.Shape = traffic.PC
	cfg.Imbalance = 0.5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hotPer := make([]int, 4)
	for q, cl := range s.clusterOfQueue {
		if s.hot[q] {
			hotPer[cl]++
		}
	}
	// PC(80) has 16 hot queues, 4 per cluster balanced; 50% imbalance
	// moves 2 extra to cluster 0.
	if hotPer[0] <= 4 {
		t.Errorf("cluster 0 hot queues = %d, want > 4 (imbalanced)", hotPer[0])
	}
	sum := hotPer[0] + hotPer[1] + hotPer[2] + hotPer[3]
	if sum != 16 {
		t.Errorf("hot total = %d", sum)
	}
	// Cluster sizes stay equal.
	for cl, qs := range s.queuesOfCluster {
		if len(qs) != 20 {
			t.Errorf("cluster %d has %d queues", cl, len(qs))
		}
	}
	s.eng.Run(sim.Microsecond)
	s.eng.Shutdown()
}

func TestCoRunnerIPCModel(t *testing.T) {
	// Fig. 11b directions: a high-IPC spinning antagonist suppresses the
	// co-runner; a halted HyperPlane thread does not.
	idleHP := CoRunnerIPC(0)
	busany := CoRunnerIPC(1.2)
	spin := CoRunnerIPC(2.3)
	if idleHP != CoRunnerBaseIPC {
		t.Errorf("co-runner with halted sibling = %.2f, want %v", idleHP, CoRunnerBaseIPC)
	}
	if !(spin < busany && busany < idleHP) {
		t.Errorf("co-runner ordering wrong: spin=%.2f busy=%.2f idle=%.2f", spin, busany, idleHP)
	}
	if CoRunnerIPC(100) < 0 {
		t.Error("co-runner IPC went negative")
	}
}

func TestBatchDequeue(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.BatchSize = 4
	r := run(t, cfg)
	if r.Completed == 0 {
		t.Error("no completions with batching")
	}
}

func TestSpuriousWakeupsFiltered(t *testing.T) {
	// Spurious wake-ups may occur, but they must never produce phantom
	// completions: completed <= enqueued.
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Cores = 2
	cfg.ClusterSize = 2
	cfg.Queues = 32
	cfg.Shape = traffic.FB
	cfg.Mode = OpenLoop
	cfg.Load = 0.5
	cfg.Duration = 10 * sim.Millisecond
	r := run(t, cfg)
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
	t.Logf("spurious wake-ups: %d over %d completions", r.SpuriousWakeups, r.Completed)
}

func TestDeterminismAllPlanes(t *testing.T) {
	for _, plane := range []PlaneKind{Spinning, MWait, HyperPlane} {
		cfg := base()
		cfg.Plane = plane
		cfg.Mode = OpenLoop
		cfg.Load = 0.4
		cfg.Shape = traffic.NC
		cfg.Queues = 128
		cfg.Duration = 5 * sim.Millisecond
		a := run(t, cfg)
		b := run(t, cfg)
		if a.Completed != b.Completed || a.P99Latency != b.P99Latency ||
			a.AvgPowerW != b.AvgPowerW {
			t.Errorf("%v runs diverged: %d/%v vs %d/%v",
				plane, a.Completed, a.P99Latency, b.Completed, b.P99Latency)
		}
	}
}

// Package sdp implements the systems under test: a spin-polling software
// data plane (the DPDK-like baseline) and the HyperPlane-accelerated data
// plane, both running on the simulated CMP (internal/sim + internal/mem)
// with the monitoring set (internal/monitor) and ready set (internal/ready)
// wired to the coherence fabric.
//
// One Sim instance corresponds to one experimental point: a plane kind, a
// sharing organization, a workload, a traffic shape, a queue count, and a
// load mode (peak-saturation or open-loop Poisson at a load fraction).
package sdp

import (
	"fmt"

	"hyperplane/internal/mem"
	"hyperplane/internal/monitor"
	"hyperplane/internal/policy"
	"hyperplane/internal/power"
	"hyperplane/internal/sim"
	"hyperplane/internal/stats"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// PlaneKind selects the notification mechanism under test.
type PlaneKind uint8

// Plane kinds.
const (
	// Spinning is the software-only baseline: cores iterate over queue
	// heads at full tilt.
	Spinning PlaneKind = iota
	// HyperPlane uses the monitoring set + ready set and the QWAIT
	// programming model.
	HyperPlane
	// MWait is the intermediate baseline the paper discusses (§III-A): an
	// MWAIT/UMWAIT-style data plane that halts when every queue is empty
	// (restoring work proportionality at idle) but, on wake-up, must still
	// iterate across the queues to find which one has work — so it keeps
	// the spinning plane's queue-scalability problem.
	MWait
)

func (p PlaneKind) String() string {
	switch p {
	case Spinning:
		return "spinning"
	case HyperPlane:
		return "hyperplane"
	case MWait:
		return "mwait"
	}
	return "unknown"
}

// LoadMode selects how work is offered.
type LoadMode uint8

// Load modes.
const (
	// Saturate keeps every hot queue backlogged to measure peak throughput
	// (Fig. 8 / Fig. 3a / Fig. 13).
	Saturate LoadMode = iota
	// OpenLoop offers Poisson arrivals at Load x nominal capacity
	// (Figs. 3b, 9, 10, 11, 12).
	OpenLoop
)

// Config describes one simulation run.
type Config struct {
	Cores  int // data plane cores (paper: 1-4)
	Queues int

	Workload workload.Spec
	Shape    traffic.Shape
	Plane    PlaneKind
	// Policy is the service discipline spec shared with the runtime (the
	// arbitration layer in internal/policy). Zero value = round-robin.
	Policy policy.Spec
	// Weights parameterizes weight-aware disciplines when Policy.Weights
	// is nil (one entry per queue, each >= 1; nil = all-1).
	Weights []int

	// ClusterSize is the number of cores sharing one queue partition:
	// 1 = scale-out, Cores = scale-up-all, 2 = scale-up-2 (paper §V-C).
	ClusterSize int

	// Sockets models the paper's envisioned NUMA deployment (§III-B):
	// clusters are placed on sockets contiguously, queues (doorbells and
	// buffers) are homed on their owning cluster's socket, and any access
	// or steal that crosses sockets pays an inter-socket penalty. 0 or 1 =
	// single socket.
	Sockets int

	// SoftwareReadySet swaps the PPA for the software iterator (Fig. 13).
	SoftwareReadySet bool
	// MonitorBanks > 1 banks the monitoring set across directory banks
	// (paper §IV-A, distributed directories). 0 or 1 = unified.
	MonitorBanks int
	// PowerOptimized lets halted HyperPlane/MWait cores enter C1
	// (Fig. 9b, 12).
	PowerOptimized bool
	// InOrder enforces per-queue processing order for flow-stateful
	// workloads (paper §III-B: QWAIT-RECONSIDER moves after processing,
	// forgoing intra-queue concurrency).
	InOrder bool
	// WorkStealing lets a HyperPlane core whose cluster ready set is empty
	// fetch ready QIDs from remote clusters' ready sets (the mitigation
	// the paper sketches for NUMA scale-out imbalance, §III-B).
	WorkStealing bool

	Mode LoadMode
	// Load is the offered fraction of nominal capacity in OpenLoop mode.
	Load float64
	// Burstiness > 1 switches OpenLoop arrivals from Poisson to an on/off-
	// modulated process with that peak-to-mean ratio (paper §II-B: tenants
	// "typically experience bursty activity patterns"). 0 or 1 = Poisson.
	Burstiness float64
	// Imbalance statically skews hot-queue assignment toward cluster 0 in
	// scale-out configurations (0.1 = 10%, paper Fig. 10b).
	Imbalance float64

	// Warmup and Duration bound the run; measurement covers [Warmup,
	// Warmup+Duration).
	Warmup   sim.Time
	Duration sim.Time

	Seed uint64

	// BatchSize bounds items dequeued per notification (default 1).
	BatchSize int

	// ProducerBatch models device-side doorbell coalescing (default 1 =
	// one doorbell write per item, the classic model): the emulated device
	// rings a queue's doorbell once per up-to-ProducerBatch back-to-back
	// items for that queue, cutting doorbell-line write traffic — and
	// monitoring-set snoop work — by the batch factor. Applies to the
	// OpenLoop arrival process (a run flushes early when arrivals switch
	// queues, bounding added notification delay to one inter-arrival) and
	// to the HyperPlane plane's Saturate refill path.
	ProducerBatch int

	// Trace, when non-nil, receives every notification-protocol event
	// (arrivals, activations, QWAIT returns, completions, halts/wakes).
	Trace func(TraceEvent)
}

// Validate checks the configuration, applying defaults where documented.
func (c *Config) Validate() error {
	if c.Cores < 1 || c.Cores > 16 {
		return fmt.Errorf("sdp: Cores must be in [1,16], got %d", c.Cores)
	}
	if c.Queues < 1 {
		return fmt.Errorf("sdp: Queues must be positive, got %d", c.Queues)
	}
	if c.Workload.Name == "" || c.Workload.ServiceMean <= 0 {
		return fmt.Errorf("sdp: missing workload spec")
	}
	if c.ClusterSize == 0 {
		c.ClusterSize = 1
	}
	if c.ClusterSize < 1 || c.ClusterSize > c.Cores || c.Cores%c.ClusterSize != 0 {
		return fmt.Errorf("sdp: ClusterSize %d must divide Cores %d", c.ClusterSize, c.Cores)
	}
	if c.Sockets == 0 {
		c.Sockets = 1
	}
	if c.Sockets < 1 || c.Clusters()%c.Sockets != 0 {
		return fmt.Errorf("sdp: Sockets %d must divide the %d clusters", c.Sockets, c.Clusters())
	}
	if c.Mode == OpenLoop && (c.Load <= 0 || c.Load > 1.5) {
		return fmt.Errorf("sdp: OpenLoop Load must be in (0, 1.5], got %v", c.Load)
	}
	if c.Burstiness != 0 && c.Burstiness < 1 {
		return fmt.Errorf("sdp: Burstiness must be 0 or >= 1, got %v", c.Burstiness)
	}
	if c.MonitorBanks < 0 {
		return fmt.Errorf("sdp: MonitorBanks must be non-negative, got %d", c.MonitorBanks)
	}
	if c.Imbalance < 0 || c.Imbalance > 1 {
		return fmt.Errorf("sdp: Imbalance must be in [0,1], got %v", c.Imbalance)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sdp: Duration must be positive")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("sdp: Warmup must be non-negative")
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("sdp: BatchSize must be positive")
	}
	if c.ProducerBatch == 0 {
		c.ProducerBatch = 1
	}
	if c.ProducerBatch < 0 {
		return fmt.Errorf("sdp: ProducerBatch must be positive")
	}
	if err := c.PolicySpec().Validate(c.Queues); err != nil {
		return fmt.Errorf("sdp: %w", err)
	}
	if c.WorkStealing && c.Plane != HyperPlane {
		return fmt.Errorf("sdp: WorkStealing requires the HyperPlane plane")
	}
	if c.WorkStealing && c.Clusters() < 2 {
		return fmt.Errorf("sdp: WorkStealing needs at least two clusters")
	}
	if c.SoftwareReadySet && c.Plane != HyperPlane {
		return fmt.Errorf("sdp: SoftwareReadySet requires the HyperPlane plane")
	}
	return nil
}

// Clusters returns the number of core clusters.
func (c *Config) Clusters() int { return c.Cores / c.ClusterSize }

// PolicySpec returns the effective arbitration spec: Policy with the
// legacy Weights field folded in when the spec's own Weights is nil.
func (c *Config) PolicySpec() policy.Spec {
	s := c.Policy
	if s.Weights == nil {
		s.Weights = c.Weights
	}
	return s
}

// NominalCapacity returns the ideal task service rate (tasks/sec) of all
// cores ignoring notification overheads; OpenLoop offered rate is
// Load x this.
func (c *Config) NominalCapacity() float64 {
	return float64(c.Cores) / c.Workload.ServiceMean.Seconds()
}

// CoreResult reports one core's measured activity.
type CoreResult struct {
	Core        int
	Completions int64
	UsefulIPC   float64
	UselessIPC  float64
	OverallIPC  float64
	PowerW      float64
	Residency   [3]sim.Time // C0-active, C0-halt, C1
}

// Result is the outcome of one simulation run.
type Result struct {
	Config Config

	Completed        int64
	ThroughputMTasks float64 // million tasks/sec across all cores

	AvgLatency sim.Time
	P50Latency sim.Time
	P99Latency sim.Time
	MaxLatency sim.Time
	CDF        []stats.CDFPoint

	// Aggregate IPC metrics (mean across cores), the Fig. 11a breakdown.
	UsefulIPC  float64
	UselessIPC float64
	OverallIPC float64

	AvgPowerW float64 // mean core power during measurement

	Cores   []CoreResult
	Monitor monitor.Stats
	Mem     []mem.Stats

	// SpuriousWakeups counts QWAIT returns whose QWAIT-VERIFY found an
	// empty queue.
	SpuriousWakeups int64
	// LockContention counts scale-up spinning lock acquisition conflicts.
	LockContention int64
	// Drops counts arrivals rejected by bounded queues (0 when unbounded).
	Drops int64
	// QueueFairness is Jain's fairness index over the hot queues'
	// completion counts: ~1 under round-robin, low under strict priority
	// with contention.
	QueueFairness float64
}

// CoRunnerBaseIPC is the solo IPC of the matrix-multiply SMT co-runner of
// Fig. 11b.
const CoRunnerBaseIPC = 2.2

// smtInterference scales how strongly the data plane thread's issue-slot
// consumption suppresses its SMT sibling.
const smtInterference = 0.65

// CoRunnerIPC models the Fig. 11b experiment analytically: an ICOUNT-style
// SMT fetch policy grants slots in proportion to thread activity, so the
// co-runner's IPC falls as the data plane thread's overall IPC rises. A
// halted (QWAIT-blocked) thread consumes nothing.
func CoRunnerIPC(dataPlaneOverallIPC float64) float64 {
	m := power.Default()
	frac := dataPlaneOverallIPC / m.MaxIPC
	if frac > 1 {
		frac = 1
	}
	return CoRunnerBaseIPC * (1 - smtInterference*frac)
}

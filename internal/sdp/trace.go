package sdp

import (
	"fmt"

	"hyperplane/internal/sim"
)

// TraceKind classifies a simulation trace event.
type TraceKind uint8

// Trace event kinds, in rough lifecycle order of one work item.
const (
	// TraceArrival: a work item was enqueued and the doorbell rung.
	TraceArrival TraceKind = iota
	// TraceActivate: the monitoring set matched the doorbell write and
	// activated the QID in the ready set.
	TraceActivate
	// TraceQWait: a core's QWAIT returned this QID.
	TraceQWait
	// TraceSpurious: QWAIT-VERIFY found the queue empty; re-armed.
	TraceSpurious
	// TraceDequeue: the core dequeued item(s) from the queue.
	TraceDequeue
	// TraceComplete: processing finished (tenant notified).
	TraceComplete
	// TraceHalt: a core blocked with no ready queues.
	TraceHalt
	// TraceWake: a halted core resumed.
	TraceWake
)

func (k TraceKind) String() string {
	switch k {
	case TraceArrival:
		return "arrival"
	case TraceActivate:
		return "activate"
	case TraceQWait:
		return "qwait"
	case TraceSpurious:
		return "spurious"
	case TraceDequeue:
		return "dequeue"
	case TraceComplete:
		return "complete"
	case TraceHalt:
		return "halt"
	case TraceWake:
		return "wake"
	}
	return "?"
}

// TraceEvent is one notification-protocol event in virtual time. Core is
// -1 for device-side events (arrivals, activations).
type TraceEvent struct {
	At   sim.Time
	Kind TraceKind
	Core int
	QID  int
}

// String formats the event for logs.
func (e TraceEvent) String() string {
	if e.Core < 0 {
		return fmt.Sprintf("%12v %-9s qid=%d", e.At, e.Kind, e.QID)
	}
	return fmt.Sprintf("%12v %-9s core=%d qid=%d", e.At, e.Kind, e.Core, e.QID)
}

// trace emits an event to the configured sink, if any.
func (s *Sim) trace(kind TraceKind, core, qid int) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{At: s.eng.Now(), Kind: kind, Core: core, QID: qid})
	}
}

package sdp

import (
	"math"
	"testing"

	"hyperplane/internal/policy"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// Queueing-theory validation: with a single queue and a single HyperPlane
// core, the system is an M/G/1 queue (Poisson arrivals, general service,
// one server). The measured mean sojourn time must match the
// Pollaczek–Khinchine formula
//
//	T = E[S] + rho * E[S] * (1 + CV^2) / (2 * (1 - rho))
//
// within the tolerance allowed by the notification overheads (which we fold
// into an effective service time). This cross-checks the arrival process,
// the service sampler, and the event engine end-to-end against closed-form
// theory.

// mg1Run measures mean sojourn time at offered load rho for a service
// distribution with the given CV.
func mg1Run(t *testing.T, rho, cv float64, samples int) (measured, service sim.Time) {
	t.Helper()
	spec := workload.Spec{
		Name:               "mg1-validation",
		ServiceMean:        10 * sim.Microsecond,
		CV:                 cv,
		BufferLinesPerItem: 1,
		UsefulIPC:          1.5,
	}
	dur := sim.Time(float64(samples)) * sim.Time(float64(spec.ServiceMean)/rho)
	cfg := Config{
		Cores:    1,
		Queues:   1,
		Workload: spec,
		Shape:    traffic.SQ,
		Plane:    HyperPlane,
		Policy:   policy.Spec{Kind: policy.RoundRobin},
		Mode:     OpenLoop,
		Load:     rho,
		Warmup:   dur / 10,
		Duration: dur,
		Seed:     123,
	}
	r := run(t, cfg)
	if r.Completed < int64(samples)*8/10 {
		t.Fatalf("rho=%v: only %d completions", rho, r.Completed)
	}
	return r.AvgLatency, spec.ServiceMean
}

func pkSojourn(s sim.Time, rho, cv float64) sim.Time {
	wait := rho * float64(s) * (1 + cv*cv) / (2 * (1 - rho))
	return s + sim.Time(wait)
}

func TestMG1SojournMatchesTheory(t *testing.T) {
	cases := []struct {
		rho, cv float64
		tol     float64 // relative tolerance (higher rho -> slower CLT)
	}{
		{0.3, 1.0, 0.12},
		{0.5, 1.0, 0.12},
		{0.7, 1.0, 0.18},
		{0.5, 0.0, 0.10}, // M/D/1
		{0.5, 0.3, 0.10},
	}
	for _, c := range cases {
		measured, s := mg1Run(t, c.rho, c.cv, 12000)
		want := pkSojourn(s, c.rho, c.cv)
		ratio := float64(measured) / float64(want)
		if math.Abs(ratio-1) > c.tol {
			t.Errorf("rho=%.1f cv=%.1f: measured %v vs P-K %v (ratio %.3f)",
				c.rho, c.cv, measured, want, ratio)
		} else {
			t.Logf("rho=%.1f cv=%.1f: measured %v vs P-K %v (ratio %.3f)",
				c.rho, c.cv, measured, want, ratio)
		}
	}
}

// With multiple scale-up cores and one shared queue set, the system
// approaches M/M/c, whose sojourn time at equal total load is strictly
// below c independent M/M/1 queues — the paper's scale-up queuing argument
// (§II-B) stated as theory, verified in the simulator.
func TestScaleUpBeatsScaleOutTheory(t *testing.T) {
	spec := workload.Spec{
		Name:               "mmc-validation",
		ServiceMean:        10 * sim.Microsecond,
		CV:                 1.0,
		BufferLinesPerItem: 1,
		UsefulIPC:          1.5,
	}
	runOrg := func(clusterSize int) sim.Time {
		cfg := Config{
			Cores:       4,
			ClusterSize: clusterSize,
			Queues:      64,
			Workload:    spec,
			Shape:       traffic.FB,
			Plane:       HyperPlane,
			Policy:      policy.Spec{Kind: policy.RoundRobin},
			Mode:        OpenLoop,
			Load:        0.7,
			Warmup:      10 * sim.Millisecond,
			Duration:    80 * sim.Millisecond,
			Seed:        77,
		}
		return run(t, cfg).AvgLatency
	}
	scaleOut := runOrg(1)
	scaleUp := runOrg(4)
	if scaleUp >= scaleOut {
		t.Fatalf("scale-up mean (%v) not below scale-out (%v)", scaleUp, scaleOut)
	}
	// M/M/1 at rho=0.7: T = S/(1-rho) ~ 33.3us. M/M/4 at the same rho:
	// T ~ S * (1 + C(4,0.7)/ (4*(1-rho))) ~ 13.1us (Erlang C ~ 0.51).
	// Allow generous tolerance for notification overheads.
	s := float64(spec.ServiceMean)
	mm1 := s / 0.3
	if r := float64(scaleOut) / mm1; r < 0.8 || r > 1.3 {
		t.Errorf("scale-out mean %v vs M/M/1 %.0fns (ratio %.2f)", scaleOut, mm1, r)
	}
	erlangC := 0.51
	mm4 := s * (1 + erlangC/(4*0.3))
	if r := float64(scaleUp) / mm4; r < 0.7 || r > 1.4 {
		t.Errorf("scale-up mean %v vs M/M/4 %.0fns (ratio %.2f)", scaleUp, mm4, r)
	}
}

// Zero-load spinning latency must match the scan-geometry prediction:
// an arrival waits on average half a scan round before discovery.
func TestSpinningZeroLoadMatchesScanGeometry(t *testing.T) {
	cfg := base()
	cfg.Queues = 256
	cfg.Shape = traffic.FB
	cfg.Mode = OpenLoop
	cfg.Load = 0.005
	cfg.Duration = 80 * sim.Millisecond
	cfg.Warmup = 2 * sim.Millisecond
	r := run(t, cfg)

	// Predicted per-poll cost: fixed overhead + doorbell/descriptor reads.
	// At 256 queues those lines mostly live in the LLC (32 KB > L1), so
	// use the LLC hit cost (tag check + LLC access cycles) for both.
	clock := sim.NewClock(3.0)
	perPoll := pollOverhead + clock.Cycles(4+30) + clock.Cycles(4+30)
	halfRound := sim.Time(cfg.Queues) * perPoll / 2
	// Sojourn ~ half scan round + dequeue + service.
	want := halfRound + dequeueOverhead + cfg.Workload.ServiceMean
	ratio := float64(r.AvgLatency) / float64(want)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("zero-load avg %v vs scan-geometry prediction %v (ratio %.2f)",
			r.AvgLatency, want, ratio)
	}
}

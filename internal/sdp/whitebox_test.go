package sdp

import (
	"testing"

	"hyperplane/internal/mem"
	"hyperplane/internal/power"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
)

// White-box tests of the simulation internals: measurement clipping,
// partitioning invariants, and address-space separation.

func mustNew(t *testing.T, cfg Config) *Sim {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartitionCoversAllQueuesOnce(t *testing.T) {
	for _, tc := range []struct {
		cores, cluster, queues int
		shape                  traffic.Shape
		imbalance              float64
	}{
		{1, 1, 17, traffic.FB, 0},
		{4, 1, 100, traffic.PC, 0},
		{4, 2, 64, traffic.NC, 0},
		{4, 4, 33, traffic.SQ, 0},
		{4, 1, 80, traffic.PC, 0.3},
		{8, 2, 123, traffic.FB, 0},
	} {
		cfg := base()
		cfg.Cores = tc.cores
		cfg.ClusterSize = tc.cluster
		cfg.Queues = tc.queues
		cfg.Shape = tc.shape
		cfg.Imbalance = tc.imbalance
		s := mustNew(t, cfg)
		seen := make([]int, tc.queues)
		for cl, qs := range s.queuesOfCluster {
			for _, q := range qs {
				seen[q]++
				if s.clusterOfQueue[q] != cl {
					t.Fatalf("%+v: queue %d cluster mapping inconsistent", tc, q)
				}
			}
		}
		for q, n := range seen {
			if n != 1 {
				t.Fatalf("%+v: queue %d assigned %d times", tc, q, n)
			}
		}
		s.eng.Shutdown()
	}
}

func TestImbalanceKeepsClusterSizesEqual(t *testing.T) {
	cfg := base()
	cfg.Cores = 4
	cfg.Queues = 80
	cfg.Shape = traffic.PC
	cfg.Imbalance = 1.0
	s := mustNew(t, cfg)
	defer s.eng.Shutdown()
	for cl, qs := range s.queuesOfCluster {
		if len(qs) != 20 {
			t.Errorf("cluster %d has %d queues, want 20", cl, len(qs))
		}
	}
}

func TestAddressSpacesDisjoint(t *testing.T) {
	cfg := base()
	cfg.Queues = 100
	s := mustNew(t, cfg)
	defer s.eng.Shutdown()
	kinds := map[mem.Addr]string{}
	put := func(a mem.Addr, kind string) {
		if prev, dup := kinds[a]; dup {
			t.Fatalf("address %#x used by both %s and %s", a, prev, kind)
		}
		kinds[a] = kind
	}
	for q := 0; q < cfg.Queues; q++ {
		put(s.queues[q].Doorbell, "doorbell")
		put(s.descAddr(q), "descriptor")
		put(s.tenantAddr(q), "tenant")
		for slot := 0; slot < s.layout.BufferLines; slot++ {
			put(s.layout.BufferAddr(q, slot), "buffer")
		}
	}
}

func TestChargeClipsToMeasurementWindow(t *testing.T) {
	cfg := base()
	s := mustNew(t, cfg)
	// Kill the core processes so only this test's explicit charges are
	// booked; the engine remains usable for fresh events.
	s.eng.Shutdown()
	cs := s.cores[0]

	// Before measurement: nothing is booked.
	s.charge(cs, power.C0Active, sim.Microsecond, 1000, true)
	if cs.useful != 0 || cs.res.Total() != 0 {
		t.Fatal("charged before measurement started")
	}

	// Simulate measurement starting midway through a sleep: the span
	// [now-1us, now) straddles measStart by 400ns.
	s.measuring = true
	s.measStart = 600 * sim.Nanosecond
	s.eng.At(sim.Microsecond, func() {
		s.charge(cs, power.C0Active, sim.Microsecond, 1000, true)
	})
	s.eng.Run(2 * sim.Microsecond)
	if cs.res.Time[power.C0Active] != 400*sim.Nanosecond {
		t.Errorf("clipped residency = %v, want 400ns", cs.res.Time[power.C0Active])
	}
	if cs.useful != 400 {
		t.Errorf("clipped instructions = %d, want 400 (prorated)", cs.useful)
	}
}

func TestChargeWaitSplitsC1(t *testing.T) {
	cfg := base()
	cfg.PowerOptimized = true
	s := mustNew(t, cfg)
	defer s.eng.Shutdown()
	cs := s.cores[0]
	s.measuring = true
	s.measStart = 0

	// A 10us halt: first c1EntryDelay in C0-halt, remainder in C1.
	s.chargeWait(cs, 0, 10*sim.Microsecond)
	if cs.res.Time[power.C0Halt] != c1EntryDelay {
		t.Errorf("C0-halt = %v, want %v", cs.res.Time[power.C0Halt], c1EntryDelay)
	}
	if cs.res.Time[power.C1] != 10*sim.Microsecond-c1EntryDelay {
		t.Errorf("C1 = %v", cs.res.Time[power.C1])
	}

	// A short halt never reaches C1.
	cs2 := s.cores[0]
	before := cs2.res.Time[power.C1]
	s.chargeWait(cs2, 20*sim.Microsecond, 20*sim.Microsecond+c1EntryDelay/2)
	if cs2.res.Time[power.C1] != before {
		t.Error("short halt booked C1 time")
	}
}

func TestMonitorOverProvisionedForLargeQueueCounts(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Queues = 2000 // beyond the default 1024-entry monitoring set
	s := mustNew(t, cfg)
	defer s.eng.Shutdown()
	if s.mon.Capacity() < 2100 {
		t.Errorf("monitoring set capacity = %d for 2000 queues", s.mon.Capacity())
	}
	if s.mon.Occupancy() != 2000 {
		t.Errorf("occupancy = %d", s.mon.Occupancy())
	}
}

func TestSaturatePrimesOnlyHotQueues(t *testing.T) {
	cfg := base()
	cfg.Shape = traffic.NC
	cfg.Queues = 200
	s := mustNew(t, cfg)
	defer s.eng.Shutdown()
	for q := 0; q < 100; q++ {
		if s.queues[q].Len() != refillDepth {
			t.Fatalf("hot queue %d primed with %d", q, s.queues[q].Len())
		}
	}
	for q := 100; q < 200; q++ {
		if s.queues[q].Len() != 0 {
			t.Fatalf("cold queue %d primed", q)
		}
	}
}

func TestNominalCapacity(t *testing.T) {
	cfg := base()
	cfg.Cores = 4
	// packet-encapsulation: 1.3us mean -> ~769k/s/core -> ~3.08M/s for 4.
	got := cfg.NominalCapacity()
	if got < 3.0e6 || got > 3.2e6 {
		t.Errorf("nominal capacity = %.3g", got)
	}
}

func TestResultContainsMemAndCDF(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Mode = OpenLoop
	cfg.Load = 0.4
	cfg.Duration = 5 * sim.Millisecond
	r := run(t, cfg)
	if len(r.Mem) != cfg.Cores+1 {
		t.Errorf("mem stats entries = %d", len(r.Mem))
	}
	if r.Mem[0].Accesses == 0 {
		t.Error("core 0 recorded no memory accesses")
	}
	if len(r.CDF) == 0 {
		t.Error("no latency CDF in open-loop result")
	}
	for i := 1; i < len(r.CDF); i++ {
		if r.CDF[i].Value < r.CDF[i-1].Value {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestBurstyProducerRuns(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Mode = OpenLoop
	cfg.Load = 0.3
	cfg.Burstiness = 4
	cfg.Duration = 10 * sim.Millisecond
	r := run(t, cfg)
	if r.Completed == 0 {
		t.Fatal("bursty producer delivered nothing")
	}
	// Validation rejects sub-1 burstiness.
	cfg.Burstiness = 0.5
	if err := cfg.Validate(); err == nil {
		t.Error("burstiness 0.5 accepted")
	}
}

func TestBurstinessRaisesTail(t *testing.T) {
	p99 := func(burst float64) sim.Time {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Queues = 64
		cfg.Shape = traffic.PC
		cfg.Mode = OpenLoop
		cfg.Load = 0.5
		cfg.Burstiness = burst
		cfg.Duration = 20 * sim.Millisecond
		cfg.Warmup = 2 * sim.Millisecond
		return run(t, cfg).P99Latency
	}
	if plain, bursty := p99(1), p99(6); bursty < plain*2 {
		t.Errorf("burstiness 6 P99 (%v) not well above Poisson (%v)", bursty, plain)
	}
}

func TestBankedMonitorIntegration(t *testing.T) {
	// A banked monitoring set must behave identically to the unified one at
	// the data plane level.
	through := func(banks int) (float64, int64) {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Queues = 256
		cfg.Shape = traffic.PC
		cfg.MonitorBanks = banks
		r := run(t, cfg)
		return r.ThroughputMTasks, r.Monitor.Activations
	}
	uniThr, uniAct := through(0)
	bankThr, bankAct := through(4)
	if bankAct == 0 || uniAct == 0 {
		t.Fatal("no activations")
	}
	if bankThr < uniThr*0.95 || bankThr > uniThr*1.05 {
		t.Errorf("banked throughput %.3f deviates from unified %.3f", bankThr, uniThr)
	}
	cfg := base()
	cfg.MonitorBanks = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative banks accepted")
	}
}

func TestDriverAssignsDoorbellsWithinSnoopRange(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Queues = 1000
	s := mustNew(t, cfg)
	defer s.eng.Shutdown()
	lo, hi := s.drv.Range()
	seen := map[mem.Addr]bool{}
	for q := 0; q < cfg.Queues; q++ {
		a := s.queues[q].Doorbell
		if a < lo || a >= hi {
			t.Fatalf("queue %d doorbell %#x outside driver range", q, a)
		}
		if seen[a] {
			t.Fatalf("doorbell %#x assigned twice", a)
		}
		seen[a] = true
		if got, ok := s.mon.(interface {
			Lookup(mem.Addr) (int, bool)
		}); ok {
			if qid, found := got.Lookup(a); !found || qid != q {
				t.Fatalf("monitoring set lookup for queue %d failed", q)
			}
		}
	}
	if s.drv.Connected() != cfg.Queues {
		t.Errorf("driver connected = %d", s.drv.Connected())
	}
}

func TestWorkConservation(t *testing.T) {
	// Simulator-wide invariant: every enqueued item is either completed,
	// still queued, or in flight on a core (at most Cores x BatchSize).
	for _, tc := range []struct {
		plane   PlaneKind
		cores   int
		cluster int
		batch   int
	}{
		{Spinning, 1, 1, 1},
		{MWait, 1, 1, 1},
		{HyperPlane, 1, 1, 1},
		{HyperPlane, 4, 4, 1},
		{HyperPlane, 4, 2, 4},
		{Spinning, 4, 4, 2},
	} {
		cfg := base()
		cfg.Plane = tc.plane
		cfg.Cores = tc.cores
		cfg.ClusterSize = tc.cluster
		cfg.BatchSize = tc.batch
		cfg.Queues = 64
		cfg.Shape = traffic.PC
		cfg.Mode = OpenLoop
		cfg.Load = 0.6
		cfg.Duration = 8 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		s := mustNew(t, cfg)
		s.eng.At(cfg.Warmup, s.startMeasure)
		s.eng.At(cfg.Warmup+cfg.Duration, func() { s.finalize(); s.eng.Stop() })
		s.eng.Run(sim.MaxTime)
		s.eng.Shutdown()

		var queued int64
		for _, q := range s.queues {
			queued += int64(q.Len())
		}
		inFlight := int64(s.seq) - s.totalDone - queued
		if inFlight < 0 {
			t.Errorf("%+v: more completions than arrivals (%d)", tc, inFlight)
		}
		if maxFlight := int64(tc.cores * tc.batch); inFlight > maxFlight {
			t.Errorf("%+v: %d items unaccounted for (max in-flight %d)", tc, inFlight, maxFlight)
		}
	}
}

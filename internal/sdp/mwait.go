package sdp

import (
	"hyperplane/internal/power"
	"hyperplane/internal/sim"
)

// mwCore is the MWAIT-style baseline (paper §III-A): identical to the
// spinning loop, except that after observing a full scan round with every
// queue empty, the core halts on an address-range monitor covering the
// doorbells and wakes when any of them is written. The paper's criticism
// holds by construction: the wake-up says only that *some* queue has work,
// so the core must resume iterating to find it, keeping the latency and
// throughput queue-scalability problems while fixing idle-time work
// disproportionality.
func (s *Sim) mwCore(p *sim.Proc, cs *coreState) {
	myQueues := s.queuesOfCluster[cs.cluster]
	idx := (cs.id * len(myQueues)) / s.cfg.Cores
	var accum sim.Time
	var accumInstr int64
	emptyStreak := 0

	flush := func() {
		if accum <= 0 {
			return
		}
		p.Sleep(accum)
		s.charge(cs, power.C0Active, accum, accumInstr, false)
		accum, accumInstr = 0, 0
	}

	anyWork := func() bool {
		for _, qid := range myQueues {
			if !s.queues[qid].Empty() {
				return true
			}
		}
		return false
	}

	for {
		qid := myQueues[idx]
		idx++
		if idx == len(myQueues) {
			idx = 0
		}
		q := s.queues[qid]
		lat, _ := s.sys.Read(cs.id, q.Doorbell)
		lat2, _ := s.sys.Read(cs.id, s.descAddr(qid))
		accum += lat + lat2 + pollOverhead
		accumInstr += pollInstrs
		if q.Empty() {
			emptyStreak++
			if emptyStreak >= len(myQueues) {
				// Every queue observed empty in one full round: arm the
				// range monitor and halt (MWAIT).
				flush()
				emptyStreak = 0
				if anyWork() {
					// An arrival landed during the flush; the armed
					// monitor would have caught the write — keep scanning.
					continue
				}
				cs.waiting = true
				cs.waitStart = p.Now()
				p.WaitSignal(s.signals[cs.cluster])
				cs.waiting = false
				waited := p.Now() - cs.waitStart
				s.chargeWait(cs, cs.waitStart, p.Now())
				if s.cfg.PowerOptimized && waited > c1EntryDelay {
					p.Sleep(power.C1WakeLatency)
					s.charge(cs, power.C0Active, power.C1WakeLatency, 0, false)
				}
				// Woken: some doorbell was written, but MWAIT cannot say
				// which — resume the scan to find it.
			}
			if accum >= scanQuantum {
				flush()
			}
			continue
		}
		emptyStreak = 0
		flush()

		if s.cfg.ClusterSize > 1 {
			s.acquireLock(p, cs, qid)
		}
		s.trace(TraceDequeue, cs.id, qid)
		batch := q.DequeueBatch(s.cfg.BatchSize)
		if len(batch) == 0 {
			continue
		}
		dlat, _ := s.sys.Write(cs.id, q.Doorbell)
		dlat += dequeueOverhead
		p.Sleep(dlat)
		s.charge(cs, power.C0Active, dlat, dequeueInstrs, true)
		for _, it := range batch {
			s.refill(qid)
			s.process(p, cs, qid, it)
		}
	}
}

package sdp

import (
	"hyperplane/internal/power"
	"hyperplane/internal/sim"
)

// hpCore runs the HyperPlane data plane loop of Algorithm 1: QWAIT for the
// next ready QID (halting when none), QWAIT-VERIFY it, dequeue,
// QWAIT-RECONSIDER, and process.
func (s *Sim) hpCore(p *sim.Proc, cs *coreState) {
	rs := s.rsets[cs.cluster]
	sig := s.signals[cs.cluster]
	for {
		// QWAIT: select the next ready queue per the service policy.
		qid, ok, selLat := rs.Select()
		if !ok && s.cfg.WorkStealing {
			qid, ok, selLat = s.steal(cs)
		}
		if !ok {
			// No ready queue: halt until the monitoring set activates one.
			// With work stealing the halt is bounded so the core
			// periodically re-checks remote ready sets (local activations
			// still wake it immediately).
			s.trace(TraceHalt, cs.id, -1)
			cs.waiting = true
			cs.waitStart = p.Now()
			if s.cfg.WorkStealing {
				p.WaitSignalTimeout(sig, stealCheckPeriod)
			} else {
				p.WaitSignal(sig)
			}
			cs.waiting = false
			s.trace(TraceWake, cs.id, -1)
			waited := p.Now() - cs.waitStart
			s.chargeWait(cs, cs.waitStart, p.Now())
			if s.cfg.PowerOptimized && waited > c1EntryDelay {
				// The core reached C1; pay the wake-up latency.
				p.Sleep(power.C1WakeLatency)
				s.charge(cs, power.C0Active, power.C1WakeLatency, 0, false)
			}
			continue // re-run QWAIT; a peer may have raced us to the QID
		}
		// The paper charges a conservative 50-cycle QWAIT latency covering
		// the non-uniform core <-> ready-set distance; a software ready set
		// costs whatever its iterator does.
		qlat := s.qwaitLat
		if selLat > qlat {
			qlat = selLat
		}
		p.Sleep(qlat)
		s.charge(cs, power.C0Active, qlat, qwaitInstrs, true)
		s.trace(TraceQWait, cs.id, qid)

		q := s.queues[qid]
		// QWAIT-VERIFY: check the doorbell counter; if the queue is empty
		// (spurious wake-up), atomically re-arm it in the monitoring set.
		vlat, _ := s.sys.Read(cs.id, q.Doorbell)
		vlat += s.mon.LookupLatency()
		if q.Empty() {
			s.mon.Arm(q.Doorbell)
			s.sys.ForceShared(q.Doorbell)
			p.Sleep(vlat)
			s.charge(cs, power.C0Active, vlat, verifyInstrs, false)
			if s.measuring {
				s.spurious++
			}
			s.trace(TraceSpurious, cs.id, qid)
			continue
		}

		s.trace(TraceDequeue, cs.id, qid)
		batch := q.DequeueBatch(s.cfg.BatchSize)
		dlat, _ := s.sys.Write(cs.id, q.Doorbell) // decrement counter
		if len(batch) > 1 {
			// Select charged one service unit; bill the rest of the batch
			// to the queue's home ready set so work-aware policies (DRR
			// deficits, EWMA rates) account what was actually dequeued.
			s.rsets[s.clusterOfQueue[qid]].Charge(qid, len(batch)-1)
		}
		s.refillN(qid, len(batch))

		head := vlat + dlat + dequeueOverhead
		if s.cfg.InOrder {
			// Flow-stateful processing (paper §III-B): the queue may only
			// be serviced again once this item is fully processed, so
			// QWAIT-RECONSIDER moves after process() — forgoing intra-queue
			// concurrency to preserve order.
			p.Sleep(head)
			s.charge(cs, power.C0Active, head, verifyInstrs+dequeueInstrs, true)
			for _, it := range batch {
				s.process(p, cs, qid, it)
			}
			s.reconsider(p, cs, qid)
			continue
		}

		// QWAIT-RECONSIDER: re-arm if the queue drained, else re-activate
		// so the iterator will select it again. Activation always targets
		// the queue's home cluster — a stolen queue goes back to its owner
		// after one batch rather than migrating to the thief.
		rlat := s.mon.LookupLatency()
		if q.Empty() {
			s.mon.Arm(q.Doorbell)
			s.sys.ForceShared(q.Doorbell)
		} else {
			home := s.clusterOfQueue[qid]
			s.rsets[home].Activate(qid)
			s.signals[home].Fire(qid) // a halted peer can take it
		}
		head += rlat
		p.Sleep(head)
		s.charge(cs, power.C0Active, head,
			verifyInstrs+dequeueInstrs+reconsiderInstrs, true)

		for _, it := range batch {
			s.process(p, cs, qid, it)
		}
	}
}

// reconsider performs QWAIT-RECONSIDER as a standalone step (in-order mode).
func (s *Sim) reconsider(p *sim.Proc, cs *coreState, qid int) {
	q := s.queues[qid]
	rlat := s.mon.LookupLatency()
	if q.Empty() {
		s.mon.Arm(q.Doorbell)
		s.sys.ForceShared(q.Doorbell)
	} else {
		cl := s.clusterOfQueue[qid]
		s.rsets[cl].Activate(qid)
		s.signals[cl].Fire(qid)
	}
	p.Sleep(rlat)
	s.charge(cs, power.C0Active, rlat, reconsiderInstrs, true)
}

// steal scans remote clusters' ready sets for a QID when the local one is
// empty (paper §III-B's work-stealing sketch). Remote ready sets sit by
// other directory banks, so a successful steal pays an extra cross-chip
// hop on top of the normal QWAIT latency.
func (s *Sim) steal(cs *coreState) (int, bool, sim.Time) {
	for d := 1; d < len(s.rsets); d++ {
		cl := (cs.cluster + d) % len(s.rsets)
		if qid, ok, selLat := s.rsets[cl].Select(); ok {
			lat := selLat + stealPenalty
			if s.cfg.Sockets > 1 && s.socketOfCluster(cs.cluster) != s.socketOfCluster(cl) {
				lat += interSocket // remote ready set sits across the interconnect
			}
			return qid, true, lat
		}
	}
	return 0, false, 0
}

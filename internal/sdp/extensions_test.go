package sdp

import (
	"testing"

	"hyperplane/internal/policy"
	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// --- MWAIT baseline plane -------------------------------------------------

func TestMWaitWorkProportionalAtIdle(t *testing.T) {
	// The MWAIT plane fixes the spinning plane's idle-time waste: at near-
	// zero load its IPC and power approach HyperPlane's, not spinning's.
	runAt := func(plane PlaneKind) Result {
		cfg := base()
		cfg.Plane = plane
		cfg.Queues = 128
		cfg.Shape = traffic.FB
		cfg.Mode = OpenLoop
		cfg.Load = 0.02
		cfg.Duration = 10 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		return run(t, cfg)
	}
	spin := runAt(Spinning)
	mw := runAt(MWait)
	hp := runAt(HyperPlane)
	if mw.OverallIPC > spin.OverallIPC/3 {
		t.Errorf("MWait idle IPC %.2f not far below spinning %.2f", mw.OverallIPC, spin.OverallIPC)
	}
	if mw.AvgPowerW > spin.AvgPowerW*0.8 {
		t.Errorf("MWait idle power %.2fW not well below spinning %.2fW", mw.AvgPowerW, spin.AvgPowerW)
	}
	if mw.AvgPowerW > hp.AvgPowerW*1.5 {
		t.Errorf("MWait idle power %.2fW should approach HyperPlane %.2fW", mw.AvgPowerW, hp.AvgPowerW)
	}
}

func TestMWaitKeepsQueueScalabilityProblem(t *testing.T) {
	// Paper §III-A: MWAIT cannot indicate which queue has work, so zero-
	// load latency still grows with queue count (unlike HyperPlane).
	lat := func(plane PlaneKind, queues int) sim.Time {
		cfg := base()
		cfg.Plane = plane
		cfg.Queues = queues
		cfg.Shape = traffic.FB
		cfg.Mode = OpenLoop
		cfg.Load = 0.01
		cfg.Duration = 30 * sim.Millisecond
		cfg.Warmup = sim.Millisecond
		return run(t, cfg).AvgLatency
	}
	mw16, mw256 := lat(MWait, 16), lat(MWait, 256)
	hp256 := lat(HyperPlane, 256)
	if mw256 < mw16*2 {
		t.Errorf("MWait latency did not grow with queues: %v -> %v", mw16, mw256)
	}
	if mw256 < hp256*2 {
		t.Errorf("MWait (%v) should be far above HyperPlane (%v) at 256 queues", mw256, hp256)
	}
}

func TestMWaitPeakThroughputMatchesSpinning(t *testing.T) {
	// Under saturation nothing halts, so MWait behaves like spinning.
	through := func(plane PlaneKind) float64 {
		cfg := base()
		cfg.Plane = plane
		cfg.Queues = 256
		cfg.Shape = traffic.SQ
		return run(t, cfg).ThroughputMTasks
	}
	spin, mw := through(Spinning), through(MWait)
	ratio := mw / spin
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("MWait saturation throughput %.3f vs spinning %.3f (ratio %.2f)", mw, spin, ratio)
	}
}

func TestMWaitNoLostWakeups(t *testing.T) {
	// Sparse arrivals across many queues must all complete.
	cfg := base()
	cfg.Plane = MWait
	cfg.Queues = 64
	cfg.Shape = traffic.PC
	cfg.Mode = OpenLoop
	cfg.Load = 0.05
	cfg.Duration = 20 * sim.Millisecond
	cfg.Warmup = sim.Millisecond
	r := run(t, cfg)
	if r.Completed < 300 {
		t.Fatalf("only %d completions; lost wake-ups?", r.Completed)
	}
	if r.P99Latency > 500*sim.Microsecond {
		t.Errorf("P99 = %v suggests stalls", r.P99Latency)
	}
}

func TestPlaneKindString(t *testing.T) {
	if Spinning.String() != "spinning" || HyperPlane.String() != "hyperplane" ||
		MWait.String() != "mwait" || PlaneKind(9).String() != "unknown" {
		t.Error("plane names")
	}
}

// --- In-order (flow-stateful) processing ----------------------------------

func TestInOrderLimitsIntraQueueConcurrency(t *testing.T) {
	// With SQ traffic and 4 scale-up cores, normal HyperPlane drains one
	// queue with all cores; in-order mode serializes it to ~1 core's rate.
	through := func(inOrder bool) float64 {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Cores = 4
		cfg.ClusterSize = 4
		cfg.Queues = 16
		cfg.Shape = traffic.SQ
		cfg.InOrder = inOrder
		cfg.Duration = 5 * sim.Millisecond
		return run(t, cfg).ThroughputMTasks
	}
	concurrent := through(false)
	ordered := through(true)
	if ordered > concurrent*0.6 {
		t.Errorf("in-order SQ throughput %.3f not serialized vs concurrent %.3f",
			ordered, concurrent)
	}
	// One core's nominal rate for packet encapsulation is ~0.77 M/s; the
	// ordered plane must stay in that regime, not 4x it.
	if ordered > 1.0 {
		t.Errorf("in-order throughput %.3f exceeds single-core regime", ordered)
	}
}

func TestInOrderMultiQueueUnaffected(t *testing.T) {
	// With FB traffic the order constraint binds per queue only, so
	// multicore throughput is preserved.
	through := func(inOrder bool) float64 {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Cores = 4
		cfg.ClusterSize = 4
		cfg.Queues = 64
		cfg.Shape = traffic.FB
		cfg.InOrder = inOrder
		cfg.Duration = 5 * sim.Millisecond
		return run(t, cfg).ThroughputMTasks
	}
	if o, c := through(true), through(false); o < c*0.85 {
		t.Errorf("in-order FB throughput %.3f dropped vs %.3f", o, c)
	}
}

// --- Work stealing ---------------------------------------------------------

func TestWorkStealingValidation(t *testing.T) {
	cfg := base()
	cfg.WorkStealing = true
	if err := cfg.Validate(); err == nil {
		t.Error("stealing with spinning plane accepted")
	}
	cfg = base()
	cfg.Plane = HyperPlane
	cfg.WorkStealing = true // single cluster
	if err := cfg.Validate(); err == nil {
		t.Error("stealing with one cluster accepted")
	}
	cfg = base()
	cfg.SoftwareReadySet = true // spinning plane
	if err := cfg.Validate(); err == nil {
		t.Error("software ready set with spinning plane accepted")
	}
}

func TestWorkStealingMitigatesImbalance(t *testing.T) {
	// Scale-out HyperPlane with heavy static imbalance: stealing lets idle
	// clusters drain the overloaded one, cutting tail latency.
	p99 := func(steal bool) sim.Time {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Cores = 4
		cfg.ClusterSize = 1
		cfg.Queues = 80
		cfg.Shape = traffic.PC
		cfg.Imbalance = 1.0 // all movable hot queues into cluster 0
		cfg.WorkStealing = steal
		cfg.Mode = OpenLoop
		cfg.Load = 0.7
		cfg.Duration = 20 * sim.Millisecond
		cfg.Warmup = 2 * sim.Millisecond
		r := run(t, cfg)
		if r.Completed < 500 {
			t.Fatalf("steal=%v: only %d completions", steal, r.Completed)
		}
		return r.P99Latency
	}
	without := p99(false)
	with := p99(true)
	if with >= without {
		t.Errorf("stealing did not help under imbalance: %v -> %v", without, with)
	}
}

// --- Policy behaviour in full simulation ----------------------------------

func TestSimWithWRRPolicy(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Queues = 8
	cfg.Shape = traffic.FB
	cfg.Policy = policy.Spec{Kind: policy.WeightedRoundRobin}
	cfg.Weights = []int{4, 1, 1, 1, 1, 1, 1, 1}
	r := run(t, cfg)
	if r.Completed == 0 {
		t.Fatal("no completions under WRR")
	}
}

func TestSimWithStrictPriority(t *testing.T) {
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Queues = 8
	cfg.Shape = traffic.FB
	cfg.Policy = policy.Spec{Kind: policy.StrictPriority}
	r := run(t, cfg)
	if r.Completed == 0 {
		t.Fatal("no completions under strict priority")
	}
}

func TestPolicyMinimalThroughputImpact(t *testing.T) {
	// Paper §V-A: "we found service policy to have minimal impact on the
	// performance trends."
	through := func(pol policy.Spec, weights []int) float64 {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Queues = 64
		cfg.Shape = traffic.FB
		cfg.Policy = pol
		cfg.Weights = weights
		return run(t, cfg).ThroughputMTasks
	}
	rr := through(policy.Spec{Kind: policy.RoundRobin}, nil)
	w := make([]int, 64)
	for i := range w {
		w[i] = 1 + i%3
	}
	wrr := through(policy.Spec{Kind: policy.WeightedRoundRobin}, w)
	if wrr < rr*0.9 || wrr > rr*1.1 {
		t.Errorf("WRR throughput %.3f deviates from RR %.3f", wrr, rr)
	}
}

// --- MWait with the six workloads ------------------------------------------

func TestAllWorkloadsRunOnAllPlanes(t *testing.T) {
	for _, w := range workload.All {
		for _, plane := range []PlaneKind{Spinning, MWait, HyperPlane} {
			cfg := base()
			cfg.Workload = w
			cfg.Plane = plane
			cfg.Queues = 32
			cfg.Shape = traffic.PC
			cfg.Duration = 4 * sim.Millisecond
			r := run(t, cfg)
			if r.Completed == 0 {
				t.Errorf("%s on %v: no completions", w.Name, plane)
			}
		}
	}
}

func TestServicePolicyFairness(t *testing.T) {
	// Under FB saturation every queue is always ready: round-robin must
	// serve them evenly (Jain index ~1) while strict priority starves
	// high-numbered queues (index near 1/n).
	fairness := func(pol policy.Spec) float64 {
		cfg := base()
		cfg.Plane = HyperPlane
		cfg.Queues = 16
		cfg.Shape = traffic.FB
		cfg.Policy = pol
		cfg.Duration = 5 * sim.Millisecond
		return run(t, cfg).QueueFairness
	}
	rr := fairness(policy.Spec{Kind: policy.RoundRobin})
	strict := fairness(policy.Spec{Kind: policy.StrictPriority})
	if rr < 0.98 {
		t.Errorf("round-robin fairness = %.3f, want ~1", rr)
	}
	if strict > 0.2 {
		t.Errorf("strict-priority fairness = %.3f, want near 1/16 (starvation)", strict)
	}
}

func TestWRRFairnessWeighted(t *testing.T) {
	// Weighted round-robin with weight 3 on queue 0: queue 0 gets ~3x the
	// service of each other queue under FB saturation.
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Queues = 8
	cfg.Shape = traffic.FB
	cfg.Policy = policy.Spec{Kind: policy.WeightedRoundRobin}
	cfg.Weights = []int{3, 1, 1, 1, 1, 1, 1, 1}
	cfg.Duration = 5 * sim.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.eng.At(cfg.Warmup, s.startMeasure)
	s.eng.At(cfg.Warmup+cfg.Duration, func() { s.finalize(); s.eng.Stop() })
	s.eng.Run(sim.MaxTime)
	s.eng.Shutdown()
	q0 := float64(s.qCompleted[0])
	var others float64
	for q := 1; q < 8; q++ {
		others += float64(s.qCompleted[q])
	}
	perOther := others / 7
	ratio := q0 / perOther
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("WRR weight-3 ratio = %.2f, want ~3", ratio)
	}
}

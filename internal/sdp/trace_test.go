package sdp

import (
	"strings"
	"testing"

	"hyperplane/internal/sim"
	"hyperplane/internal/traffic"
)

func TestTraceProtocolOrdering(t *testing.T) {
	var events []TraceEvent
	cfg := base()
	cfg.Plane = HyperPlane
	cfg.Queues = 4
	cfg.Shape = traffic.FB
	cfg.Mode = OpenLoop
	cfg.Load = 0.2
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 0
	cfg.Trace = func(e TraceEvent) { events = append(events, e) }
	r := run(t, cfg)
	if r.Completed == 0 || len(events) == 0 {
		t.Fatal("no events traced")
	}

	// Per-queue lifecycle: every dequeue must be preceded by a qwait for
	// the same QID, and every complete by a dequeue.
	lastKind := map[int]TraceKind{}
	counts := map[TraceKind]int{}
	for _, e := range events {
		counts[e.Kind]++
		switch e.Kind {
		case TraceQWait:
			lastKind[e.QID] = TraceQWait
		case TraceDequeue:
			if lastKind[e.QID] != TraceQWait {
				t.Fatalf("dequeue of qid %d without preceding qwait", e.QID)
			}
			lastKind[e.QID] = TraceDequeue
		case TraceComplete:
			if lastKind[e.QID] != TraceDequeue {
				t.Fatalf("complete of qid %d without preceding dequeue", e.QID)
			}
			lastKind[e.QID] = TraceComplete
		}
	}
	// Event times must be non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("trace times went backwards")
		}
	}
	// Every arrival eventually activates (armed queues) or coalesces;
	// completes equal the result count.
	if int64(counts[TraceComplete]) < r.Completed {
		t.Errorf("complete events %d < completions %d", counts[TraceComplete], r.Completed)
	}
	if counts[TraceArrival] == 0 || counts[TraceActivate] == 0 ||
		counts[TraceHalt] == 0 || counts[TraceWake] == 0 {
		t.Errorf("missing event kinds: %v", counts)
	}
	// Activations never exceed arrivals (coalescing only removes).
	if counts[TraceActivate] > counts[TraceArrival] {
		t.Errorf("activations %d exceed arrivals %d",
			counts[TraceActivate], counts[TraceArrival])
	}
}

func TestTraceEventString(t *testing.T) {
	dev := TraceEvent{At: sim.Microsecond, Kind: TraceArrival, Core: -1, QID: 3}
	if !strings.Contains(dev.String(), "arrival") || strings.Contains(dev.String(), "core") {
		t.Errorf("device event string = %q", dev.String())
	}
	core := TraceEvent{At: sim.Microsecond, Kind: TraceQWait, Core: 2, QID: 3}
	if !strings.Contains(core.String(), "core=2") {
		t.Errorf("core event string = %q", core.String())
	}
	for k := TraceArrival; k <= TraceWake; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TraceKind(99).String() != "?" {
		t.Error("unknown kind name")
	}
}

func TestTraceSpinningPlane(t *testing.T) {
	var dequeues, completes int
	cfg := base()
	cfg.Duration = sim.Millisecond
	cfg.Trace = func(e TraceEvent) {
		switch e.Kind {
		case TraceDequeue:
			dequeues++
		case TraceComplete:
			completes++
		}
	}
	r := run(t, cfg)
	if r.Completed == 0 || dequeues == 0 || completes == 0 {
		t.Fatalf("spinning plane traced %d dequeues, %d completes", dequeues, completes)
	}
}

package sdp

import (
	"hyperplane/internal/driver"
	"hyperplane/internal/mem"
	"hyperplane/internal/monitor"
	"hyperplane/internal/power"
	"hyperplane/internal/queue"
	"hyperplane/internal/ready"
	"hyperplane/internal/sim"
	"hyperplane/internal/stats"
	"hyperplane/internal/traffic"
	"hyperplane/internal/workload"
)

// Modeled software costs of the data plane fast paths. The poll-loop costs
// are calibrated to DPDK-like empty-poll behaviour: ~170 instructions and
// ~24 ns of non-memory work per interrogated queue, yielding the paper's
// observed spin IPC of ~2.2 when queue heads hit in the L1 and the IPC
// collapse when they fall out (Fig. 11a).
const (
	pollInstrs   = 240
	pollOverhead = 40 * sim.Nanosecond

	dequeueInstrs   = 120
	dequeueOverhead = 20 * sim.Nanosecond

	notifyInstrs = 40 // tenant-side doorbell trigger

	qwaitInstrs      = 12
	verifyInstrs     = 18
	reconsiderInstrs = 18

	lockInstrs = 60 // CAS + retry path on shared dequeue
	// criticalSection is the multi-consumer dequeue's synchronized window
	// (CAS on head, tail update, memory fences); ~120 ns matches contended
	// DPDK MC-ring dequeues.
	criticalSection = 120 * sim.Nanosecond

	// scanQuantum bounds how much poll-loop time is simulated per engine
	// event; larger values are faster but delay arrival visibility by up
	// to one quantum.
	scanQuantum = sim.Microsecond

	// c1EntryDelay is how long a halted core idles in C0 before the power
	// management transitions it to C1 (power-optimized mode only).
	c1EntryDelay = sim.Microsecond

	// refillDepth is the standing backlog per hot queue in Saturate mode.
	refillDepth = 2

	// qwaitCycles is the paper's conservative end-to-end QWAIT latency
	// (§IV-C).
	qwaitCycles = 50

	// stealPenalty is the extra cross-chip hop a work-stealing QWAIT pays
	// to reach a remote cluster's ready set.
	stealPenalty = 40 * sim.Nanosecond

	// stealCheckPeriod bounds a halted work-stealing core's sleep so it
	// periodically re-checks remote ready sets.
	stealCheckPeriod = 5 * sim.Microsecond

	// interSocket is the extra one-way latency of crossing the socket
	// interconnect (QPI/UPI-class hop), paid by cross-socket queue
	// accesses and cross-socket ready-set steals in NUMA configurations.
	interSocket = 60 * sim.Nanosecond
)

// coreState tracks one data plane core's measured activity.
type coreState struct {
	id      int
	cluster int
	res     *power.Residency
	useful  int64
	useless int64
	compl   int64

	waiting      bool
	waitStart    sim.Time
	everMeasured bool
}

// monitorSet is the monitoring-set surface the data plane uses; satisfied
// by both the unified *monitor.Set and the *monitor.Banked variant.
type monitorSet interface {
	driver.Monitor
	Arm(doorbell mem.Addr) bool
	Snoop(line mem.Addr) (qid int, activate bool)
	LookupLatency() sim.Time
	Occupancy() int
	Capacity() int
	Stats() monitor.Stats
}

// Sim is one assembled simulation run.
type Sim struct {
	cfg   Config
	eng   *sim.Engine
	clock sim.Clock
	sys   *mem.System

	layout     queue.Layout
	descBase   mem.Addr
	tenantBase mem.Addr
	queues     []*queue.Queue
	hot        []bool
	bufCursor  []int
	locks      []sim.Time // scale-up spinning: per-queue lock release time

	mon     monitorSet
	drv     *driver.Driver
	rsets   []ready.Set
	signals []*sim.Signal

	clusterOfQueue  []int
	queuesOfCluster [][]int

	cores []*coreState

	svc    *workload.Sampler
	arrRNG *sim.RNG

	lat        *stats.Sample
	qCompleted []int64 // completions per queue during measurement
	totalDone  int64   // all completions, including warm-up (conservation)
	measuring  bool
	measStart  sim.Time
	completed  int64
	spurious   int64
	lockConf   int64
	seq        uint64
	qwaitLat   sim.Time
}

// New assembles (but does not run) a simulation.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:        cfg,
		eng:        sim.NewEngine(),
		layout:     queue.DefaultLayout(),
		descBase:   3 << 30,
		tenantBase: 4 << 30,
		lat:        stats.NewSample(100_000),
	}
	memCfg := mem.DefaultConfig(cfg.Cores)
	s.clock = memCfg.Clock
	s.sys = mem.NewSystem(memCfg)
	s.qwaitLat = s.clock.Cycles(qwaitCycles)

	s.queues = queue.NewSet(cfg.Queues, s.layout, 0)
	s.qCompleted = make([]int64, cfg.Queues)
	s.bufCursor = make([]int, cfg.Queues)
	s.locks = make([]sim.Time, cfg.Queues)
	s.hot = make([]bool, cfg.Queues)
	for i, w := range traffic.Weights(cfg.Shape, cfg.Queues) {
		s.hot[i] = w >= 1
	}

	s.partition()

	s.svc = workload.NewSampler(cfg.Workload, sim.NewRNG(cfg.Seed, 1))
	s.arrRNG = sim.NewRNG(cfg.Seed, 2)

	switch cfg.Plane {
	case HyperPlane:
		s.buildHyperPlane()
	case MWait:
		// MWAIT needs only a per-cluster range monitor: a wake signal
		// fired on any doorbell write to the cluster's queues.
		for cl := 0; cl < cfg.Clusters(); cl++ {
			s.signals = append(s.signals, s.eng.NewSignal("mwait-wake"))
		}
	}

	for c := 0; c < cfg.Cores; c++ {
		cs := &coreState{id: c, cluster: c / cfg.ClusterSize, res: power.NewResidency(s.clock)}
		s.cores = append(s.cores, cs)
	}

	s.prime()

	// Launch core processes.
	for _, cs := range s.cores {
		cs := cs
		switch cfg.Plane {
		case Spinning:
			s.eng.Go("spin-core", func(p *sim.Proc) { s.spinCore(p, cs) })
		case MWait:
			s.eng.Go("mwait-core", func(p *sim.Proc) { s.mwCore(p, cs) })
		default:
			s.eng.Go("hp-core", func(p *sim.Proc) { s.hpCore(p, cs) })
		}
	}
	if cfg.Mode == OpenLoop {
		s.eng.Go("producer", s.producer)
	}
	return s, nil
}

// partition assigns queues to clusters. Queues go round-robin across
// clusters so hot queues (which the traffic shapes place at low indices)
// spread evenly; the Imbalance knob then moves extra hot queues into
// cluster 0 (swapping with cold ones) to model static load imbalance.
func (s *Sim) partition() {
	clusters := s.cfg.Clusters()
	s.clusterOfQueue = make([]int, s.cfg.Queues)
	s.queuesOfCluster = make([][]int, clusters)
	for q := 0; q < s.cfg.Queues; q++ {
		s.clusterOfQueue[q] = q % clusters
	}
	if s.cfg.Imbalance > 0 && clusters > 1 {
		hotTotal := 0
		for _, h := range s.hot {
			if h {
				hotTotal++
			}
		}
		perCluster := hotTotal / clusters
		extra := int(float64(perCluster)*s.cfg.Imbalance + 0.5)
		moved := 0
		for q := 0; q < s.cfg.Queues && moved < extra; q++ {
			if !s.hot[q] || s.clusterOfQueue[q] == 0 {
				continue
			}
			// Swap this hot queue into cluster 0 with a cold queue from 0.
			for w := 0; w < s.cfg.Queues; w++ {
				if !s.hot[w] && s.clusterOfQueue[w] == 0 {
					s.clusterOfQueue[w] = s.clusterOfQueue[q]
					s.clusterOfQueue[q] = 0
					moved++
					break
				}
			}
		}
	}
	for q := 0; q < s.cfg.Queues; q++ {
		cl := s.clusterOfQueue[q]
		s.queuesOfCluster[cl] = append(s.queuesOfCluster[cl], q)
	}
}

// buildHyperPlane wires the monitoring set and per-cluster ready sets to
// the coherence fabric.
func (s *Sim) buildHyperPlane() {
	mcfg := monitor.DefaultConfig()
	mcfg.Clock = s.clock
	if s.cfg.Queues > mcfg.Entries {
		// Over-provision beyond the paper's 1024 when asked for more
		// queues; round up to a bucket multiple.
		granule := 2 * mcfg.Slots
		mcfg.Entries = (s.cfg.Queues*110/100 + granule - 1) / granule * granule
	}
	if s.cfg.MonitorBanks > 1 {
		per := mcfg.Entries / s.cfg.MonitorBanks
		granule := 2 * mcfg.Slots
		per = (per + granule - 1) / granule * granule
		s.mon = monitor.NewBanked(s.cfg.MonitorBanks, per, mcfg)
	} else {
		s.mon = monitor.New(mcfg)
	}
	// The driver owns a reserved range with generous headroom for
	// conflict reallocations.
	lo := s.layout.DoorbellBase
	hi := lo + mem.Addr(4*s.cfg.Queues+1024)*mem.LineSize

	clusters := s.cfg.Clusters()
	s.rsets = make([]ready.Set, clusters)
	s.signals = make([]*sim.Signal, clusters)
	spec := s.cfg.PolicySpec()
	for cl := 0; cl < clusters; cl++ {
		var err error
		if s.cfg.SoftwareReadySet {
			s.rsets[cl], err = ready.NewSoftware(s.cfg.Queues, spec)
		} else {
			s.rsets[cl], err = ready.NewHardware(s.cfg.Queues, spec)
		}
		if err != nil {
			// Config.Validate already vetted the spec; a failure here is a
			// programming error, not an input error.
			panic("sdp: ready set construction after validation: " + err.Error())
		}
		s.signals[cl] = s.eng.NewSignal("hp-wake")
	}

	// Control plane (Algorithm 1): the driver allocates each queue's
	// doorbell and executes QWAIT-ADD, reallocating on cuckoo conflicts.
	drv, err := driver.New(s.mon, lo, hi)
	if err != nil {
		panic(err) // static range; cannot fail for positive queue counts
	}
	s.drv = drv
	for q := 0; q < s.cfg.Queues; q++ {
		addr, err := drv.Connect(q)
		if err != nil {
			panic(err) // range sized with 4x headroom above
		}
		s.queues[q].Doorbell = addr
	}

	s.sys.OnWrite(func(line mem.Addr, writer int) {
		if line < lo || line >= hi {
			return
		}
		qid, activate := s.mon.Snoop(line)
		if !activate {
			return
		}
		s.trace(TraceActivate, -1, qid)
		cl := s.clusterOfQueue[qid]
		s.rsets[cl].Activate(qid)
		s.signals[cl].Fire(qid)
	})
}

// prime pre-loads hot queues in Saturate mode.
func (s *Sim) prime() {
	if s.cfg.Mode != Saturate {
		return
	}
	for q := 0; q < s.cfg.Queues; q++ {
		if !s.hot[q] {
			continue
		}
		for i := 0; i < refillDepth; i++ {
			s.enqueue(q)
		}
	}
}

// enqueue adds one item to queue q and rings its doorbell from the device
// side (DMA write), which the monitoring set snoops.
func (s *Sim) enqueue(q int) {
	s.enqueueQuiet(q)
	s.ringDoorbell(q)
}

// enqueueQuiet stamps and enqueues one item without ringing the doorbell —
// the DMA half of an arrival whose doorbell write the device is coalescing
// (ProducerBatch > 1).
func (s *Sim) enqueueQuiet(q int) {
	s.seq++
	s.queues[q].Enqueue(queue.Item{Enqueued: s.eng.Now(), Seq: s.seq})
	s.trace(TraceArrival, -1, q)
}

// ringDoorbell issues the device-side doorbell write the monitoring set
// snoops, covering every item enqueued for q since the last ring.
func (s *Sim) ringDoorbell(q int) {
	s.sys.DeviceWrite(s.queues[q].Doorbell)
	if s.cfg.Plane == MWait {
		// The doorbell write hits the MWAIT range monitor of the cluster
		// owning this queue.
		s.signals[s.clusterOfQueue[q]].Fire(q)
	}
}

// refill keeps hot queues backlogged in Saturate mode; called right after a
// dequeue so QWAIT-RECONSIDER sees the standing backlog.
func (s *Sim) refill(q int) {
	if s.cfg.Mode == Saturate && s.hot[q] {
		s.enqueue(q)
	}
}

// refillN refills n items after a batch dequeue in Saturate mode, ringing
// the doorbell once per ProducerBatch chunk (one coalesced device write
// per chunk). With ProducerBatch 1 it degenerates to n refill calls.
func (s *Sim) refillN(q, n int) {
	if s.cfg.Mode != Saturate || !s.hot[q] {
		return
	}
	pb := s.cfg.ProducerBatch
	if pb < 1 {
		pb = 1
	}
	for n > 0 {
		c := pb
		if c > n {
			c = n
		}
		for i := 0; i < c; i++ {
			s.enqueueQuiet(q)
		}
		s.ringDoorbell(q)
		n -= c
	}
}

// burstPhase is the mean ON-phase duration of the bursty arrival process.
const burstPhase = 50 * sim.Microsecond

// producer is the OpenLoop arrival process (an emulated I/O device):
// Poisson by default, on/off-modulated when Burstiness > 1.
func (s *Sim) producer(p *sim.Proc) {
	rate := s.cfg.Load * s.cfg.NominalCapacity()
	var next func() (sim.Time, int)
	if s.cfg.Burstiness > 1 {
		b := traffic.NewBursty(s.cfg.Shape, s.cfg.Queues, rate, s.cfg.Burstiness, burstPhase, s.arrRNG)
		next = b.Next
	} else {
		pois := traffic.NewPoisson(s.cfg.Shape, s.cfg.Queues, rate, s.arrRNG)
		next = pois.Next
	}
	if s.cfg.ProducerBatch <= 1 {
		for {
			d, q := next()
			p.Sleep(d)
			s.enqueue(q)
		}
	}
	// Device-side doorbell coalescing: back-to-back arrivals to the same
	// queue share one doorbell write. A run flushes when it reaches
	// ProducerBatch or when the next arrival targets a different queue, so
	// a pending item waits at most one inter-arrival for its notification.
	pendingQ, pendingN := -1, 0
	for {
		d, q := next()
		p.Sleep(d)
		if pendingQ >= 0 && q != pendingQ {
			s.ringDoorbell(pendingQ)
			pendingN = 0
		}
		pendingQ = q
		s.enqueueQuiet(q)
		pendingN++
		if pendingN >= s.cfg.ProducerBatch {
			s.ringDoorbell(q)
			pendingQ, pendingN = -1, 0
		}
	}
}

// socketOfCluster places clusters on sockets contiguously.
func (s *Sim) socketOfCluster(cl int) int {
	perSocket := s.cfg.Clusters() / s.cfg.Sockets
	return cl / perSocket
}

// numaPenalty returns the added latency for core cs touching queue qid's
// memory (doorbell, descriptor, buffers): zero on the home socket, one
// interconnect hop otherwise.
func (s *Sim) numaPenalty(cs *coreState, qid int) sim.Time {
	if s.cfg.Sockets <= 1 {
		return 0
	}
	if s.socketOfCluster(cs.cluster) == s.socketOfCluster(s.clusterOfQueue[qid]) {
		return 0
	}
	return interSocket
}

// descAddr is the queue descriptor line polled alongside the doorbell
// (DPDK-style rings span multiple metadata lines).
func (s *Sim) descAddr(q int) mem.Addr {
	return s.descBase + mem.Addr(q)*mem.LineSize
}

// tenantAddr is the tenant-side doorbell written to notify the tenant
// (step 2d in the paper's Fig. 2).
func (s *Sim) tenantAddr(q int) mem.Addr {
	return s.tenantBase + mem.Addr(q)*mem.LineSize
}

// charge books d of state time plus instructions to a core, clipped to the
// measurement window. Call immediately after the core slept for d.
func (s *Sim) charge(cs *coreState, st power.CState, d sim.Time, instrs int64, useful bool) {
	if !s.measuring || d < 0 {
		return
	}
	start := s.eng.Now() - d
	if start < s.measStart {
		if s.eng.Now() <= s.measStart {
			return
		}
		clipped := s.eng.Now() - s.measStart
		instrs = int64(float64(instrs) * float64(clipped) / float64(d))
		d = clipped
	}
	cs.res.Add(st, d)
	cs.res.AddInstrs(instrs)
	if useful {
		cs.useful += instrs
	} else {
		cs.useless += instrs
	}
}

// chargeWait books a halt interval, splitting C0-halt and C1 residency in
// power-optimized mode.
func (s *Sim) chargeWait(cs *coreState, start, end sim.Time) {
	if !s.measuring || end <= start {
		return
	}
	if start < s.measStart {
		start = s.measStart
	}
	if end <= start {
		return
	}
	d := end - start
	if s.cfg.PowerOptimized && d > c1EntryDelay {
		cs.res.Add(power.C0Halt, c1EntryDelay)
		cs.res.Add(power.C1, d-c1EntryDelay)
	} else {
		cs.res.Add(power.C0Halt, d)
	}
}

// process executes one work item on a core: buffer-line touches, the
// workload's service time, and the tenant-side notification.
func (s *Sim) process(p *sim.Proc, cs *coreState, qid int, it queue.Item) {
	var lat sim.Time
	spec := s.cfg.Workload
	cur := s.bufCursor[qid]
	for i := 0; i < spec.BufferLinesPerItem; i++ {
		l, _ := s.sys.Read(cs.id, s.layout.BufferAddr(qid, cur+i))
		lat += l
	}
	s.bufCursor[qid] = cur + spec.BufferLinesPerItem
	svc := s.svc.Next()
	wlat, _ := s.sys.Write(cs.id, s.tenantAddr(qid))
	total := lat + svc + wlat + s.numaPenalty(cs, qid)
	p.Sleep(total)
	s.charge(cs, power.C0Active, total, spec.Instructions(s.clock)+notifyInstrs, true)
	s.totalDone++
	s.trace(TraceComplete, cs.id, qid)
	if s.measuring {
		cs.compl++
		s.completed++
		s.qCompleted[qid]++
		if s.cfg.Mode == OpenLoop {
			s.lat.Add(float64(p.Now() - it.Enqueued))
		}
	}
}

// startMeasure flips measurement on and resets warm-up statistics.
func (s *Sim) startMeasure() {
	s.measuring = true
	s.measStart = s.eng.Now()
	s.sys.FlushAgentStats()
	s.lat.Reset()
	for i := range s.qCompleted {
		s.qCompleted[i] = 0
	}
	s.completed = 0
	s.spurious = 0
	s.lockConf = 0
	for _, cs := range s.cores {
		cs.compl = 0
		cs.useful, cs.useless = 0, 0
		cs.res = power.NewResidency(s.clock)
	}
}

// finalize closes out residency for cores still halted when measurement
// ends.
func (s *Sim) finalize() {
	now := s.eng.Now()
	for _, cs := range s.cores {
		if cs.waiting {
			s.chargeWait(cs, cs.waitStart, now)
			cs.waiting = false
		}
	}
}

// Run executes the configured run and returns its measurements.
func Run(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	s.eng.At(cfg.Warmup, s.startMeasure)
	end := cfg.Warmup + cfg.Duration
	s.eng.At(end, func() {
		s.finalize()
		s.eng.Stop()
	})
	s.eng.Run(sim.MaxTime)
	s.eng.Shutdown()
	return s.result(), nil
}

// result assembles the Result from measured state.
func (s *Sim) result() Result {
	r := Result{
		Config:          s.cfg,
		Completed:       s.completed,
		SpuriousWakeups: s.spurious,
		LockContention:  s.lockConf,
	}
	window := s.cfg.Duration.Seconds()
	r.ThroughputMTasks = float64(s.completed) / window / 1e6
	if s.lat.Count() > 0 {
		r.AvgLatency = sim.Time(s.lat.Mean())
		r.P50Latency = sim.Time(s.lat.P50())
		r.P99Latency = sim.Time(s.lat.P99())
		r.MaxLatency = sim.Time(s.lat.Max())
		r.CDF = s.lat.CDF(100)
	}
	m := power.Default()
	var uIPC, sIPC, oIPC, pw float64
	for _, cs := range s.cores {
		cycles := s.clock.ToCycles(cs.res.Total())
		var u, l float64
		if cycles > 0 {
			u = float64(cs.useful) / float64(cycles)
			l = float64(cs.useless) / float64(cycles)
		}
		cr := CoreResult{
			Core:        cs.id,
			Completions: cs.compl,
			UsefulIPC:   u,
			UselessIPC:  l,
			OverallIPC:  cs.res.OverallIPC(),
			PowerW:      cs.res.AveragePower(m),
			Residency:   cs.res.Time,
		}
		r.Cores = append(r.Cores, cr)
		uIPC += u
		sIPC += l
		oIPC += cr.OverallIPC
		pw += cr.PowerW
	}
	n := float64(len(s.cores))
	r.UsefulIPC = uIPC / n
	r.UselessIPC = sIPC / n
	r.OverallIPC = oIPC / n
	r.AvgPowerW = pw / n
	if s.mon != nil {
		r.Monitor = s.mon.Stats()
	}
	for a := 0; a <= s.cfg.Cores; a++ {
		r.Mem = append(r.Mem, s.sys.Stats(a))
	}
	var drops int64
	for _, q := range s.queues {
		drops += q.Drops()
	}
	r.Drops = drops
	r.QueueFairness = jainIndex(s.qCompleted, s.hot)
	return r
}

// jainIndex computes Jain's fairness index over the hot queues' completion
// counts: 1.0 = perfectly even service, 1/n = one queue monopolizes.
func jainIndex(counts []int64, hot []bool) float64 {
	var sum, sumSq float64
	n := 0
	for q, c := range counts {
		if !hot[q] {
			continue
		}
		n++
		x := float64(c)
		sum += x
		sumSq += x * x
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

package sdp

import (
	"hyperplane/internal/power"
	"hyperplane/internal/sim"
)

// spinCore is the software-only baseline: the core iterates over its
// cluster's queues at full tilt, interrogating (possibly empty) queue heads.
// Poll costs accumulate and are slept in quanta so that simulating a
// thousand empty polls does not cost a thousand engine events; the quantum
// bounds how stale an emptiness check can be.
func (s *Sim) spinCore(p *sim.Proc, cs *coreState) {
	myQueues := s.queuesOfCluster[cs.cluster]
	idx := (cs.id * len(myQueues)) / s.cfg.Cores // stagger scan starts
	var accum sim.Time
	var accumInstr int64

	flush := func() {
		if accum <= 0 {
			return
		}
		p.Sleep(accum)
		s.charge(cs, power.C0Active, accum, accumInstr, false)
		accum, accumInstr = 0, 0
	}

	for {
		qid := myQueues[idx]
		idx++
		if idx == len(myQueues) {
			idx = 0
		}
		q := s.queues[qid]
		// Interrogate the queue head: doorbell plus descriptor line.
		lat, _ := s.sys.Read(cs.id, q.Doorbell)
		lat2, _ := s.sys.Read(cs.id, s.descAddr(qid))
		accum += lat + lat2 + pollOverhead
		accumInstr += pollInstrs
		if q.Empty() {
			if accum >= scanQuantum {
				flush()
			}
			continue
		}
		flush()

		if s.cfg.ClusterSize > 1 {
			s.acquireLock(p, cs, qid)
		}
		s.trace(TraceDequeue, cs.id, qid)
		batch := q.DequeueBatch(s.cfg.BatchSize)
		if len(batch) == 0 {
			// A cluster peer drained the queue between our poll and the
			// lock acquisition.
			continue
		}
		// Decrement the doorbell counter (consumer side).
		dlat, _ := s.sys.Write(cs.id, q.Doorbell)
		dlat += dequeueOverhead
		p.Sleep(dlat)
		s.charge(cs, power.C0Active, dlat, dequeueInstrs, true)
		for _, it := range batch {
			s.refill(qid)
			s.process(p, cs, qid, it)
		}
	}
}

// acquireLock models the synchronization a scale-up spinning data plane
// needs to dequeue from shared queues: an atomic RMW on the queue's
// metadata line (which ping-pongs between the cluster's L1s) plus blocking
// while a peer holds the short critical section.
func (s *Sim) acquireLock(p *sim.Proc, cs *coreState, qid int) {
	for {
		lat, _ := s.sys.Write(cs.id, s.descAddr(qid)) // CAS attempt
		now := p.Now()
		if s.locks[qid] <= now {
			s.locks[qid] = now + lat + criticalSection
			p.Sleep(lat)
			s.charge(cs, power.C0Active, lat, lockInstrs, false)
			return
		}
		// Contended: spin until the holder's critical section ends.
		if s.measuring {
			s.lockConf++
		}
		wait := s.locks[qid] - now + lat
		p.Sleep(wait)
		s.charge(cs, power.C0Active, wait, lockInstrs, false)
	}
}

package monitor

import (
	"errors"
	"testing"
	"testing/quick"

	"hyperplane/internal/mem"
)

func smallSet(entries int) *Set {
	cfg := DefaultConfig()
	cfg.Entries = entries
	return New(cfg)
}

// doorbell returns distinct cache-line-aligned addresses.
func doorbell(i int) mem.Addr { return mem.Addr(0x10_0000 + i*mem.LineSize) }

func TestAddLookupSnoop(t *testing.T) {
	s := New(DefaultConfig())
	if err := s.Add(7, doorbell(1)); err != nil {
		t.Fatal(err)
	}
	if qid, ok := s.Lookup(doorbell(1)); !ok || qid != 7 {
		t.Fatalf("lookup = %d, %v", qid, ok)
	}
	if !s.IsArmed(doorbell(1)) {
		t.Fatal("fresh entry not armed")
	}
	qid, activate := s.Snoop(doorbell(1))
	if !activate || qid != 7 {
		t.Fatalf("snoop = %d, %v", qid, activate)
	}
	// Second write before re-arm: no activation (paper: further arrivals
	// have no effect until the queue is armed again).
	if _, activate := s.Snoop(doorbell(1)); activate {
		t.Fatal("disarmed entry activated")
	}
	if !s.Arm(doorbell(1)) {
		t.Fatal("re-arm failed")
	}
	if _, activate := s.Snoop(doorbell(1)); !activate {
		t.Fatal("re-armed entry did not activate")
	}
	st := s.Stats()
	if st.Activations != 2 || st.SpuriousHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSnoopUnmonitoredLine(t *testing.T) {
	s := New(DefaultConfig())
	s.Add(1, doorbell(1))
	if _, activate := s.Snoop(doorbell(99)); activate {
		t.Fatal("unmonitored line activated")
	}
	if s.Stats().Snoops != 0 {
		t.Error("unmonitored line counted as snoop match")
	}
}

func TestAddressTruncatedToLine(t *testing.T) {
	s := New(DefaultConfig())
	s.Add(3, doorbell(5)+17) // unaligned doorbell address
	if qid, ok := s.Lookup(doorbell(5)); !ok || qid != 3 {
		t.Fatal("lookup by line base failed")
	}
	if _, activate := s.Snoop(doorbell(5) + 40); !activate {
		t.Fatal("snoop within the same line did not match")
	}
}

func TestDuplicateAdd(t *testing.T) {
	s := New(DefaultConfig())
	s.Add(1, doorbell(1))
	if err := s.Add(2, doorbell(1)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	s := New(DefaultConfig())
	s.Add(1, doorbell(1))
	if !s.Remove(doorbell(1)) {
		t.Fatal("remove failed")
	}
	if s.Remove(doorbell(1)) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := s.Lookup(doorbell(1)); ok {
		t.Fatal("removed entry still found")
	}
	if s.Occupancy() != 0 {
		t.Errorf("occupancy = %d", s.Occupancy())
	}
}

func TestArmUnknown(t *testing.T) {
	s := New(DefaultConfig())
	if s.Arm(doorbell(1)) {
		t.Fatal("arming unknown doorbell succeeded")
	}
}

func TestHighOccupancyInsertions(t *testing.T) {
	// The paper over-provisions by 5-10% to make conflicts negligible.
	// Fill a 1024-entry set to 1000 queues (97.7%): cuckoo walks should
	// place nearly all; count conflicts.
	s := New(DefaultConfig())
	conflicts := 0
	for i := 0; i < 1000; i++ {
		err := s.Add(i, doorbell(i))
		if errors.Is(err, ErrConflict) {
			conflicts++
			// Driver behaviour: reallocate another address.
			for try := 1; err != nil; try++ {
				err = s.Add(i, doorbell(100000+i*64+try))
			}
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if s.Occupancy() != 1000 {
		t.Fatalf("occupancy = %d", s.Occupancy())
	}
	t.Logf("conflicts at 97.7%% load: %d (walk steps %d)", conflicts, s.Stats().WalkSteps)
	// Every queue must remain findable.
	found := 0
	for w := 0; w < 2; w++ {
		for _, e := range s.way[w] {
			if e.Valid {
				found++
			}
		}
	}
	if found != 1000 {
		t.Errorf("valid entries = %d", found)
	}
}

func TestConflictRollback(t *testing.T) {
	// Force conflicts with a tiny table and verify the table is unchanged
	// after a failed insert.
	cfg := DefaultConfig()
	cfg.Entries = 4
	cfg.Slots = 1 // classic (non-bucketized) cuckoo to force conflicts
	cfg.MaxWalk = 8
	s := New(cfg)
	inserted := map[int]mem.Addr{}
	i := 0
	for len(inserted) < 4 {
		a := doorbell(i)
		if err := s.Add(i, a); err == nil {
			inserted[i] = a
		}
		i++
		if i > 10000 {
			t.Fatal("could not fill tiny table")
		}
	}
	if s.Occupancy() != 4 {
		t.Fatalf("occupancy = %d", s.Occupancy())
	}
	// Next insert must fail (full) and leave all residents intact.
	err := s.Add(999, doorbell(777777))
	if err == nil {
		t.Fatal("insert into full table succeeded")
	}
	for qid, a := range inserted {
		if got, ok := s.Lookup(a); !ok || got != qid {
			t.Errorf("resident qid %d lost after failed insert", qid)
		}
	}
}

func TestFullTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 2
	cfg.Slots = 1
	s := New(cfg)
	n := 0
	for i := 0; n < 2 && i < 1000; i++ {
		if s.Add(i, doorbell(i)) == nil {
			n++
		}
	}
	if err := s.Add(1000, doorbell(5000)); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, entries := range []int{0, -2, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with Entries=%d did not panic", entries)
				}
			}()
			cfg := DefaultConfig()
			cfg.Entries = entries
			New(cfg)
		}()
	}
}

func TestLookupLatency(t *testing.T) {
	s := New(DefaultConfig())
	want := DefaultConfig().Clock.Cycles(5)
	if got := s.LookupLatency(); got != want {
		t.Errorf("lookup latency = %v, want %v", got, want)
	}
}

// Property: for any set of distinct lines inserted within capacity with
// retry-on-conflict, every line is found with its QID, and snooping each
// exactly once activates each exactly once.
func TestInsertFindProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		cfg := DefaultConfig()
		cfg.Entries = 256
		s := New(cfg)
		if len(seeds) > 200 {
			seeds = seeds[:200]
		}
		placed := map[mem.Addr]int{}
		for i, seed := range seeds {
			a := mem.Addr(mem.LineOf(mem.Addr(seed) * mem.LineSize))
			if _, dup := placed[a]; dup {
				continue
			}
			err := s.Add(i, a)
			for try := 1; errors.Is(err, ErrConflict); try++ {
				a = mem.Addr((uint64(seed) + uint64(try)*7919) * mem.LineSize)
				if _, dup := placed[a]; dup {
					continue
				}
				err = s.Add(i, a)
			}
			if err != nil {
				continue
			}
			placed[a] = i
		}
		for a, qid := range placed {
			got, ok := s.Lookup(a)
			if !ok || got != qid {
				return false
			}
			sq, activate := s.Snoop(a)
			if !activate || sq != qid {
				return false
			}
			if _, again := s.Snoop(a); again {
				return false // double activation without re-arm
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package monitor

import (
	"fmt"

	"hyperplane/internal/mem"
	"hyperplane/internal/sim"
)

// Banked is a monitoring set distributed across directory banks (paper
// §IV-A: "In the case of distributed directories, the monitoring set must
// also be banked, attached to individual directory banks"). Lines map to
// banks by address hash, mirroring how a distributed directory interleaves
// lines; the kernel driver must spread doorbell addresses so tenants load
// banks evenly (Add reports per-bank occupancy so the driver can).
type Banked struct {
	banks []*Set
	cfg   Config
}

// NewBanked builds banks monitoring sets of entriesPerBank each.
func NewBanked(banks, entriesPerBank int, base Config) *Banked {
	if banks <= 0 {
		panic(fmt.Sprintf("monitor: bank count must be positive, got %d", banks))
	}
	base.Entries = entriesPerBank
	b := &Banked{cfg: base}
	for i := 0; i < banks; i++ {
		cfg := base
		cfg.Seed = base.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		b.banks = append(b.banks, New(cfg))
	}
	return b
}

// BankOf returns the bank index serving a line (the directory interleave).
func (b *Banked) BankOf(addr mem.Addr) int {
	line := uint64(mem.LineOf(addr)) / mem.LineSize
	// Multiplicative hash: consecutive doorbells spread across banks.
	line *= 0x9e3779b97f4a7c15
	return int(line % uint64(len(b.banks)))
}

// Banks returns the number of banks.
func (b *Banked) Banks() int { return len(b.banks) }

// Add inserts a doorbell into its home bank.
func (b *Banked) Add(qid int, doorbell mem.Addr) error {
	return b.banks[b.BankOf(doorbell)].Add(qid, doorbell)
}

// Remove deletes a doorbell from its home bank.
func (b *Banked) Remove(doorbell mem.Addr) bool {
	return b.banks[b.BankOf(doorbell)].Remove(doorbell)
}

// Arm sets the monitoring bit in the home bank.
func (b *Banked) Arm(doorbell mem.Addr) bool {
	return b.banks[b.BankOf(doorbell)].Arm(doorbell)
}

// IsArmed reports the monitoring bit.
func (b *Banked) IsArmed(doorbell mem.Addr) bool {
	return b.banks[b.BankOf(doorbell)].IsArmed(doorbell)
}

// Lookup returns the monitored QID for the line.
func (b *Banked) Lookup(doorbell mem.Addr) (int, bool) {
	return b.banks[b.BankOf(doorbell)].Lookup(doorbell)
}

// Snoop routes a write transaction to the owning bank only — the point of
// banking: each bank sees a fraction of the snoop traffic.
func (b *Banked) Snoop(line mem.Addr) (qid int, activate bool) {
	return b.banks[b.BankOf(line)].Snoop(line)
}

// LookupLatency is a single bank's tag lookup latency (banks operate in
// parallel).
func (b *Banked) LookupLatency() sim.Time { return b.banks[0].LookupLatency() }

// Occupancy returns total valid entries across banks.
func (b *Banked) Occupancy() int {
	n := 0
	for _, bank := range b.banks {
		n += bank.Occupancy()
	}
	return n
}

// BankOccupancy returns each bank's valid-entry count, for driver-side
// placement decisions.
func (b *Banked) BankOccupancy() []int {
	out := make([]int, len(b.banks))
	for i, bank := range b.banks {
		out[i] = bank.Occupancy()
	}
	return out
}

// Capacity returns total entries across banks.
func (b *Banked) Capacity() int { return len(b.banks) * b.cfg.Entries }

// Stats aggregates bank counters.
func (b *Banked) Stats() Stats {
	var s Stats
	for _, bank := range b.banks {
		bs := bank.Stats()
		s.Adds += bs.Adds
		s.Conflicts += bs.Conflicts
		s.WalkSteps += bs.WalkSteps
		s.Removes += bs.Removes
		s.Snoops += bs.Snoops
		s.Activations += bs.Activations
		s.SpuriousHits += bs.SpuriousHits
		s.Arms += bs.Arms
	}
	return s
}

// ConflictRate measures the cuckoo conflict probability at a target
// occupancy for a given over-provisioning factor, by filling a fresh table
// and counting failed first-attempt insertions. It validates the paper's
// claim that 5-10% over-provisioning reduces conflicts to ~0.1% (§IV-A,
// citing the ZCache analysis).
func ConflictRate(entries, queues int, seed uint64) float64 {
	cfg := DefaultConfig()
	cfg.Entries = entries
	cfg.Seed = seed
	s := New(cfg)
	conflicts := 0
	for q := 0; q < queues; q++ {
		addr := mem.Addr(0x40_0000 + q*mem.LineSize)
		err := s.Add(q, addr)
		for try := 1; err == ErrConflict; try++ {
			conflicts++
			addr = mem.Addr(0x80_0000 + (q*131+try*7919)*mem.LineSize)
			err = s.Add(q, addr)
		}
		if err != nil {
			panic(err) // duplicate/full cannot occur with distinct lines under capacity
		}
	}
	return float64(conflicts) / float64(queues)
}

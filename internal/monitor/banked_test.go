package monitor

import (
	"testing"
)

func TestBankedRouting(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBanked(4, 256, cfg)
	if b.Banks() != 4 || b.Capacity() != 1024 {
		t.Fatalf("banks=%d capacity=%d", b.Banks(), b.Capacity())
	}
	// Insert many doorbells; each must be findable and snoopable, and the
	// load should spread across banks.
	for i := 0; i < 800; i++ {
		a := doorbell(i)
		for try := 1; b.Add(i, a) != nil; try++ {
			a = doorbell(100000 + i*31 + try)
		}
	}
	if b.Occupancy() != 800 {
		t.Fatalf("occupancy = %d", b.Occupancy())
	}
	occ := b.BankOccupancy()
	for bank, n := range occ {
		if n < 120 || n > 280 {
			t.Errorf("bank %d occupancy %d badly skewed (fair 200)", bank, n)
		}
	}
}

func TestBankedSnoopActivation(t *testing.T) {
	b := NewBanked(2, 64, DefaultConfig())
	a := doorbell(7)
	if err := b.Add(42, a); err != nil {
		t.Fatal(err)
	}
	if !b.IsArmed(a) {
		t.Fatal("not armed after add")
	}
	qid, activate := b.Snoop(a)
	if !activate || qid != 42 {
		t.Fatalf("snoop = %d, %v", qid, activate)
	}
	if _, again := b.Snoop(a); again {
		t.Fatal("double activation")
	}
	if !b.Arm(a) {
		t.Fatal("re-arm failed")
	}
	if _, ok := b.Lookup(a); !ok {
		t.Fatal("lookup failed")
	}
	if !b.Remove(a) {
		t.Fatal("remove failed")
	}
	if b.Occupancy() != 0 {
		t.Fatal("occupancy after remove")
	}
}

func TestBankedStatsAggregate(t *testing.T) {
	b := NewBanked(2, 64, DefaultConfig())
	for i := 0; i < 20; i++ {
		b.Add(i, doorbell(i))
		b.Snoop(doorbell(i))
	}
	st := b.Stats()
	if st.Adds != 20 || st.Activations != 20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBankedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero banks accepted")
		}
	}()
	NewBanked(0, 64, DefaultConfig())
}

func TestConflictRateOverProvisioning(t *testing.T) {
	// Paper §IV-A: over-provisioning a cuckoo table by 5-10% pushes the
	// conflict rate to ~0.1%. At 1024 entries for 930 queues (10% headroom)
	// the rate must be tiny; at 100% occupancy it must be visibly larger.
	relaxed := ConflictRate(1024, 930, 99)
	if relaxed > 0.005 {
		t.Errorf("conflict rate at 10%% over-provisioning = %.4f, want < 0.5%%", relaxed)
	}
	tight := ConflictRate(1024, 1024, 99)
	if tight <= relaxed {
		t.Errorf("full table conflict rate (%.4f) not above over-provisioned (%.4f)", tight, relaxed)
	}
	t.Logf("conflict rate: 10%% headroom %.5f, 0%% headroom %.5f", relaxed, tight)
}

// Package monitor implements HyperPlane's monitoring set (paper §IV-A): an
// associative structure mapping doorbell cache-line tags to queue IDs,
// realized as a 2-way bucketized cuckoo hash table (ZCache-style): lookups
// touch only two bucket rows, while insertion table-walks provide high
// effective associativity. With 4 slots per bucket the structure sustains
// >95% occupancy, which is what lets the paper over-provision by just
// 5-10% and see ~0.1% conflicts.
//
// The monitoring set snoops coherence write transactions. When a write hits
// an armed entry, the entry is disarmed and the QID is handed to the ready
// set. Re-arming (QWAIT-VERIFY / QWAIT-RECONSIDER) only flips the monitoring
// bit — entries are inserted once per QWAIT-ADD and removed only by
// QWAIT-REMOVE.
package monitor

import (
	"errors"
	"fmt"

	"hyperplane/internal/mem"
	"hyperplane/internal/sim"
)

// ErrConflict is returned by Add when the cuckoo table walk fails to place
// the new entry. The HyperPlane kernel driver responds by reallocating a
// different doorbell address for the queue and retrying.
var ErrConflict = errors.New("monitor: cuckoo insertion conflict")

// ErrDuplicate is returned by Add when the doorbell line is already present.
var ErrDuplicate = errors.New("monitor: doorbell already monitored")

// ErrFull is returned by Add when every entry is valid.
var ErrFull = errors.New("monitor: monitoring set full")

// Entry is one monitoring-set entry (paper: tag, QID, monitoring bit,
// valid bit).
type Entry struct {
	Tag   mem.Addr // doorbell cache-line address
	QID   int
	Armed bool // monitoring bit: watching for write transactions
	Valid bool
}

// Config sizes the monitoring set.
type Config struct {
	Entries int // total entries across both ways (paper: 1024)
	Slots   int // entries per bucket (bucketized cuckoo; default 4)
	MaxWalk int // cuckoo displacement bound before declaring a conflict
	Seed    uint64
	// LookupCycles is the latency of a tag lookup (paper §IV-C: within 5
	// CPU cycles), charged by callers that model timing.
	LookupCycles int64
	Clock        sim.Clock
}

// DefaultConfig returns the paper's 1024-entry configuration.
func DefaultConfig() Config {
	return Config{
		Entries:      1024,
		Slots:        4,
		MaxWalk:      64,
		Seed:         0x9e3779b97f4a7c15,
		LookupCycles: 5,
		Clock:        sim.NewClock(3.0),
	}
}

// Stats counts monitoring-set activity.
type Stats struct {
	Adds         int64
	Conflicts    int64 // failed insertions (driver must reallocate)
	WalkSteps    int64 // total cuckoo displacements performed
	Removes      int64
	Snoops       int64 // write transactions matching a valid entry
	Activations  int64 // snoops that hit an *armed* entry
	SpuriousHits int64 // snoops on valid but disarmed entries
	Arms         int64
}

// Set is a 2-way bucketized cuckoo-hashed monitoring set: each way holds
// rows buckets of Slots entries; a tag hashes to exactly one bucket per
// way.
type Set struct {
	cfg   Config
	rows  int        // buckets per way
	way   [2][]Entry // flat: bucket r spans [r*Slots, (r+1)*Slots)
	used  int
	stats Stats
}

// New builds a monitoring set; Entries must be a positive multiple of
// 2*Slots.
func New(cfg Config) *Set {
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.MaxWalk <= 0 {
		cfg.MaxWalk = 64
	}
	if cfg.Entries <= 0 || cfg.Entries%(2*cfg.Slots) != 0 {
		panic(fmt.Sprintf("monitor: Entries must be a positive multiple of %d, got %d",
			2*cfg.Slots, cfg.Entries))
	}
	s := &Set{cfg: cfg, rows: cfg.Entries / (2 * cfg.Slots)}
	s.way[0] = make([]Entry, s.rows*cfg.Slots)
	s.way[1] = make([]Entry, s.rows*cfg.Slots)
	return s
}

// bucket returns the slot slice of tag's bucket in way w.
func (s *Set) bucket(w int, tag mem.Addr) []Entry {
	r := s.hash(w, tag)
	return s.way[w][r*s.cfg.Slots : (r+1)*s.cfg.Slots]
}

// hash computes the row for tag in the given way.
func (s *Set) hash(w int, tag mem.Addr) int {
	x := uint64(tag) ^ s.cfg.Seed
	if w == 1 {
		x ^= 0xda3e39cb94b95bdb
	}
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(s.rows))
}

// find returns the entry holding tag, or nil. Hardware compares the two
// buckets' tags in parallel, so this remains a 2-row lookup.
func (s *Set) find(tag mem.Addr) *Entry {
	for w := 0; w < 2; w++ {
		b := s.bucket(w, tag)
		for i := range b {
			if b[i].Valid && b[i].Tag == tag {
				return &b[i]
			}
		}
	}
	return nil
}

// Add inserts a <QID, doorbell line> pair, armed. It corresponds to the
// QWAIT-ADD instruction. The doorbell address is truncated to its cache
// line. On ErrConflict the caller should allocate a different doorbell
// address and retry (Algorithm 1, control plane).
func (s *Set) Add(qid int, doorbell mem.Addr) error {
	tag := mem.LineOf(doorbell)
	if s.find(tag) != nil {
		return ErrDuplicate
	}
	if s.used >= s.cfg.Entries {
		return ErrFull
	}
	s.stats.Adds++
	ins := Entry{Tag: tag, QID: qid, Armed: true, Valid: true}
	// Record every displacement so a failed walk can be rolled back in
	// reverse, leaving the table exactly as it was (the paper's driver then
	// reallocates a different doorbell address and retries).
	type slotRef struct {
		w, idx int
		prev   Entry
	}
	var chain []slotRef
	w := 0
	for step := 0; step < s.cfg.MaxWalk; step++ {
		// Place into either way's bucket if a slot is free.
		for w2 := 0; w2 < 2; w2++ {
			b := s.bucket(w2, ins.Tag)
			for i := range b {
				if !b[i].Valid {
					b[i] = ins
					s.used++
					return nil
				}
			}
		}
		// Both buckets full: displace a slot from way w's bucket (rotating
		// victim choice by step) and continue with the victim.
		row := s.hash(w, ins.Tag)
		idx := row*s.cfg.Slots + step%s.cfg.Slots
		e := &s.way[w][idx]
		chain = append(chain, slotRef{w: w, idx: idx, prev: *e})
		ins, *e = *e, ins
		s.stats.WalkSteps++
		w = 1 - w
	}
	for i := len(chain) - 1; i >= 0; i-- {
		s.way[chain[i].w][chain[i].idx] = chain[i].prev
	}
	s.stats.Conflicts++
	return ErrConflict
}

// Remove deletes the entry for the doorbell line (QWAIT-REMOVE), returning
// false if it was not present.
func (s *Set) Remove(doorbell mem.Addr) bool {
	e := s.find(mem.LineOf(doorbell))
	if e == nil {
		return false
	}
	*e = Entry{}
	s.used--
	s.stats.Removes++
	return true
}

// Arm sets the monitoring bit for the doorbell line so subsequent write
// transactions activate its QID. It returns false if the line is not
// monitored. Arm is invoked by QWAIT-VERIFY / QWAIT-RECONSIDER when the
// queue tests empty.
func (s *Set) Arm(doorbell mem.Addr) bool {
	e := s.find(mem.LineOf(doorbell))
	if e == nil {
		return false
	}
	e.Armed = true
	s.stats.Arms++
	return true
}

// IsArmed reports the monitoring bit for the doorbell line.
func (s *Set) IsArmed(doorbell mem.Addr) bool {
	e := s.find(mem.LineOf(doorbell))
	return e != nil && e.Armed
}

// Lookup returns the QID monitored at the doorbell line.
func (s *Set) Lookup(doorbell mem.Addr) (qid int, ok bool) {
	e := s.find(mem.LineOf(doorbell))
	if e == nil {
		return 0, false
	}
	return e.QID, true
}

// Snoop processes a coherence write transaction for the given line. If the
// line matches an armed entry, the entry is disarmed and its QID returned
// with activate=true; the caller then activates the QID in the ready set.
// Writes to disarmed entries (further arrivals before re-arm, or consumer
// doorbell decrements) return activate=false.
func (s *Set) Snoop(line mem.Addr) (qid int, activate bool) {
	e := s.find(mem.LineOf(line))
	if e == nil {
		return 0, false
	}
	s.stats.Snoops++
	if !e.Armed {
		s.stats.SpuriousHits++
		return e.QID, false
	}
	e.Armed = false
	s.stats.Activations++
	return e.QID, true
}

// LookupLatency returns the modeled latency of a tag lookup.
func (s *Set) LookupLatency() sim.Time {
	return s.cfg.Clock.Cycles(s.cfg.LookupCycles)
}

// Occupancy returns the number of valid entries.
func (s *Set) Occupancy() int { return s.used }

// Capacity returns the total entry count.
func (s *Set) Capacity() int { return s.cfg.Entries }

// Stats returns activity counters.
func (s *Set) Stats() Stats { return s.stats }

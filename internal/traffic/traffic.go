// Package traffic generates the arrival processes of the HyperPlane
// evaluation: open-loop Poisson arrivals spread over N queues according to
// the paper's four traffic shapes (§II-C, §V-A):
//
//   - FB (Fully Balanced): traffic passes through all queues.
//   - PC (Proportionally Concentrated): 20% of queues carry traffic all the
//     time; the rest with probability 5%.
//   - NC (Non-proportionally Concentrated): 100 queues carry traffic all
//     the time; the rest with probability 5%.
//   - SQ (Single Queue): all traffic through one queue.
package traffic

import (
	"fmt"

	"hyperplane/internal/sim"
)

// Shape is a traffic concentration pattern.
type Shape uint8

// Traffic shapes.
const (
	FB Shape = iota
	PC
	NC
	SQ
)

func (s Shape) String() string {
	switch s {
	case FB:
		return "FB"
	case PC:
		return "PC"
	case NC:
		return "NC"
	case SQ:
		return "SQ"
	}
	return "?"
}

// Shapes lists all four in paper order.
var Shapes = []Shape{FB, PC, NC, SQ}

// coldWeight is the relative arrival rate of non-hot queues under PC/NC
// ("with a probability of 5%").
const coldWeight = 0.05

// Weights returns the per-queue relative arrival rates for shape s over n
// queues. Hot queues have weight 1.
func Weights(s Shape, n int) []float64 {
	if n <= 0 {
		panic("traffic: queue count must be positive")
	}
	w := make([]float64, n)
	switch s {
	case FB:
		for i := range w {
			w[i] = 1
		}
	case PC:
		hot := n / 5
		if hot < 1 {
			hot = 1
		}
		for i := range w {
			if i < hot {
				w[i] = 1
			} else {
				w[i] = coldWeight
			}
		}
	case NC:
		hot := 100
		if hot > n {
			hot = n
		}
		for i := range w {
			if i < hot {
				w[i] = 1
			} else {
				w[i] = coldWeight
			}
		}
	case SQ:
		w[0] = 1
	default:
		panic(fmt.Sprintf("traffic: unknown shape %d", s))
	}
	return w
}

// HotQueues returns how many queues carry full-rate traffic under s.
func HotQueues(s Shape, n int) int {
	switch s {
	case FB:
		return n
	case PC:
		hot := n / 5
		if hot < 1 {
			hot = 1
		}
		return hot
	case NC:
		if n < 100 {
			return n
		}
		return 100
	case SQ:
		return 1
	}
	return 0
}

// Sampler draws queue indices with probability proportional to the shape's
// weights, using Walker's alias method for O(1) draws.
type Sampler struct {
	prob  []float64
	alias []int
	rng   *sim.RNG
}

// NewSampler builds a sampler for the shape over n queues.
func NewSampler(s Shape, n int, rng *sim.RNG) *Sampler {
	return NewWeightedSampler(Weights(s, n), rng)
}

// NewWeightedSampler builds an alias-method sampler over arbitrary
// non-negative weights (at least one positive).
func NewWeightedSampler(weights []float64, rng *sim.RNG) *Sampler {
	n := len(weights)
	if n == 0 {
		panic("traffic: empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("traffic: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("traffic: all weights zero")
	}
	sm := &Sampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
		rng:   rng,
	}
	// Walker/Vose alias table construction.
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		sm.prob[s] = scaled[s]
		sm.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		sm.prob[i] = 1
	}
	for _, i := range small {
		sm.prob[i] = 1
	}
	return sm
}

// Next draws a queue index.
func (sm *Sampler) Next() int {
	i := sm.rng.IntN(len(sm.prob))
	if sm.rng.Float64() < sm.prob[i] {
		return i
	}
	return sm.alias[i]
}

// Poisson is an open-loop Poisson arrival process over shaped queues.
type Poisson struct {
	sampler *Sampler
	rng     *sim.RNG
	mean    sim.Time // mean inter-arrival time
}

// NewPoisson builds a process with aggregate rate ratePerSec arrivals/sec.
func NewPoisson(s Shape, n int, ratePerSec float64, rng *sim.RNG) *Poisson {
	if ratePerSec <= 0 {
		panic("traffic: arrival rate must be positive")
	}
	return &Poisson{
		sampler: NewSampler(s, n, rng),
		rng:     rng,
		mean:    sim.FromSeconds(1 / ratePerSec),
	}
}

// Next returns the delay until the next arrival and its target queue.
func (p *Poisson) Next() (sim.Time, int) {
	return p.rng.Exp(p.mean), p.sampler.Next()
}

// MeanInterarrival returns the process's mean inter-arrival time.
func (p *Poisson) MeanInterarrival() sim.Time { return p.mean }

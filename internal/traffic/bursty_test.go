package traffic

import (
	"testing"

	"hyperplane/internal/sim"
	"hyperplane/internal/stats"
)

func TestBurstyMeanRatePreserved(t *testing.T) {
	// Regardless of burstiness, the time-averaged rate must match.
	for _, burst := range []float64{1, 2, 5, 10} {
		rng := sim.NewRNG(3, uint64(burst))
		b := NewBursty(FB, 16, 1e6, burst, 20*sim.Microsecond, rng)
		var total sim.Time
		const n = 200000
		for i := 0; i < n; i++ {
			d, q := b.Next()
			if q < 0 || q >= 16 {
				t.Fatal("queue out of range")
			}
			total += d
		}
		rate := n / total.Seconds()
		if rate < 0.92e6 || rate > 1.08e6 {
			t.Errorf("burstiness %v: mean rate = %.3g/s, want ~1e6", burst, rate)
		}
	}
}

func TestBurstyIsBurstier(t *testing.T) {
	// The inter-arrival CV must grow with burstiness: an MMPP has heavier
	// variability than Poisson (CV 1).
	cv := func(burst float64) float64 {
		rng := sim.NewRNG(4, uint64(burst*10))
		b := NewBursty(FB, 4, 1e6, burst, 50*sim.Microsecond, rng)
		var s stats.Summary
		for i := 0; i < 100000; i++ {
			d, _ := b.Next()
			s.Add(float64(d))
		}
		return s.Stddev() / s.Mean()
	}
	plain := cv(1)
	heavy := cv(8)
	if plain < 0.9 || plain > 1.1 {
		t.Errorf("burstiness 1 CV = %.3f, want ~1 (Poisson)", plain)
	}
	if heavy < plain*1.5 {
		t.Errorf("burstiness 8 CV = %.3f not above Poisson %.3f", heavy, plain)
	}
}

func TestBurstyDegeneratesToPoisson(t *testing.T) {
	// burstiness 1: offMean = 0, always ON — statistically Poisson.
	rng := sim.NewRNG(5, 0)
	b := NewBursty(SQ, 8, 5e5, 1, sim.Millisecond, rng)
	for i := 0; i < 1000; i++ {
		_, q := b.Next()
		if q != 0 {
			t.Fatal("SQ shape violated")
		}
	}
}

func TestBurstyValidation(t *testing.T) {
	rng := sim.NewRNG(1, 0)
	cases := []func(){
		func() { NewBursty(FB, 4, 0, 2, sim.Millisecond, rng) },
		func() { NewBursty(FB, 4, 1e6, 0.5, sim.Millisecond, rng) },
		func() { NewBursty(FB, 4, 1e6, 2, 0, rng) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

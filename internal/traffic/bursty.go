package traffic

import "hyperplane/internal/sim"

// Bursty is an on/off-modulated Poisson process (a 2-state MMPP): tenants
// alternate between exponentially distributed ON periods, during which they
// generate Poisson arrivals at an elevated rate, and OFF periods with no
// arrivals. The paper motivates this directly: "tenant applications/VMs
// typically experience bursty activity patterns at different times"
// (§I, §II-B); time-averaged rate equals the configured rate.
type Bursty struct {
	sampler *Sampler
	rng     *sim.RNG

	onMean  sim.Time // mean ON duration
	offMean sim.Time // mean OFF duration
	onGap   sim.Time // mean inter-arrival while ON

	on        bool
	phaseLeft sim.Time // remaining time in the current phase
}

// NewBursty builds a bursty process with the given time-averaged aggregate
// rate. burstiness b >= 1 scales the peak rate: the source is ON a fraction
// 1/b of the time and generates at b x rate while ON (b = 1 degenerates to
// plain Poisson). phase sets the mean ON duration.
func NewBursty(s Shape, n int, ratePerSec, burstiness float64, phase sim.Time, rng *sim.RNG) *Bursty {
	if ratePerSec <= 0 {
		panic("traffic: arrival rate must be positive")
	}
	if burstiness < 1 {
		panic("traffic: burstiness must be >= 1")
	}
	if phase <= 0 {
		panic("traffic: phase duration must be positive")
	}
	b := &Bursty{
		sampler: NewSampler(s, n, rng),
		rng:     rng,
		onMean:  phase,
		offMean: sim.Time(float64(phase) * (burstiness - 1)),
		onGap:   sim.FromSeconds(1 / (ratePerSec * burstiness)),
		on:      true,
	}
	b.phaseLeft = rng.Exp(b.onMean)
	return b
}

// Next returns the delay to the next arrival and its target queue, skipping
// over OFF periods.
func (b *Bursty) Next() (sim.Time, int) {
	var delay sim.Time
	for {
		gap := b.rng.Exp(b.onGap)
		if gap <= b.phaseLeft {
			// Arrival lands inside the current ON phase.
			b.phaseLeft -= gap
			return delay + gap, b.sampler.Next()
		}
		// ON phase ends before the next arrival: fast-forward through the
		// OFF phase and redraw within the next ON phase.
		delay += b.phaseLeft
		if b.offMean > 0 {
			delay += b.rng.Exp(b.offMean)
		}
		b.phaseLeft = b.rng.Exp(b.onMean)
	}
}

package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"hyperplane/internal/sim"
)

func TestWeightsShapes(t *testing.T) {
	n := 500
	fb := Weights(FB, n)
	for _, w := range fb {
		if w != 1 {
			t.Fatal("FB weight != 1")
		}
	}
	pc := Weights(PC, n)
	hot := 0
	for _, w := range pc {
		switch w {
		case 1:
			hot++
		case coldWeight:
		default:
			t.Fatalf("PC weight %v", w)
		}
	}
	if hot != 100 { // 20% of 500
		t.Errorf("PC hot = %d", hot)
	}
	nc := Weights(NC, n)
	hot = 0
	for _, w := range nc {
		if w == 1 {
			hot++
		}
	}
	if hot != 100 {
		t.Errorf("NC hot = %d", hot)
	}
	sq := Weights(SQ, n)
	if sq[0] != 1 {
		t.Error("SQ queue 0 not hot")
	}
	for _, w := range sq[1:] {
		if w != 0 {
			t.Error("SQ extra hot queue")
		}
	}
}

func TestWeightsSmallN(t *testing.T) {
	if Weights(PC, 3)[0] != 1 {
		t.Error("PC with tiny n lacks a hot queue")
	}
	if got := HotQueues(NC, 50); got != 50 {
		t.Errorf("NC hot with 50 queues = %d", got)
	}
	if HotQueues(PC, 10) != 2 || HotQueues(SQ, 10) != 1 || HotQueues(FB, 10) != 10 {
		t.Error("HotQueues wrong")
	}
}

func TestWeightsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Weights(FB, 0) did not panic")
		}
	}()
	Weights(FB, 0)
}

func TestShapeString(t *testing.T) {
	if FB.String() != "FB" || PC.String() != "PC" || NC.String() != "NC" || SQ.String() != "SQ" {
		t.Error("shape names")
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	rng := sim.NewRNG(1, 0)
	weights := []float64{4, 1, 0, 3}
	s := NewWeightedSampler(weights, rng)
	counts := make([]int, 4)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[2])
	}
	total := 8.0
	for i, w := range weights {
		want := float64(draws) * w / total
		got := float64(counts[i])
		if w > 0 && math.Abs(got-want) > want*0.05 {
			t.Errorf("index %d drawn %v times, want ~%v", i, got, want)
		}
	}
}

func TestSamplerSQ(t *testing.T) {
	rng := sim.NewRNG(2, 0)
	s := NewSampler(SQ, 100, rng)
	for i := 0; i < 1000; i++ {
		if s.Next() != 0 {
			t.Fatal("SQ drew a non-zero queue")
		}
	}
}

func TestSamplerValidation(t *testing.T) {
	rng := sim.NewRNG(1, 0)
	for name, weights := range map[string][]float64{
		"empty":    {},
		"all-zero": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights did not panic", name)
				}
			}()
			NewWeightedSampler(weights, rng)
		}()
	}
}

func TestPoissonRate(t *testing.T) {
	rng := sim.NewRNG(3, 0)
	p := NewPoisson(FB, 10, 1e6, rng) // 1M arrivals/sec
	if p.MeanInterarrival() != sim.Microsecond {
		t.Fatalf("mean interarrival = %v", p.MeanInterarrival())
	}
	var total sim.Time
	const n = 100000
	for i := 0; i < n; i++ {
		d, q := p.Next()
		if q < 0 || q >= 10 {
			t.Fatal("queue out of range")
		}
		total += d
	}
	mean := float64(total) / n / float64(sim.Microsecond)
	if mean < 0.97 || mean > 1.03 {
		t.Errorf("empirical mean interarrival = %.3fus", mean)
	}
}

func TestPoissonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	NewPoisson(FB, 1, 0, sim.NewRNG(1, 0))
}

// Property: the alias table always returns indices with positive weight and
// covers all of them given enough draws.
func TestSamplerSupportProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, r := range raw {
			weights[i] = float64(r % 8)
			if weights[i] > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return true
		}
		s := NewWeightedSampler(weights, sim.NewRNG(99, 7))
		seen := make([]bool, len(weights))
		for i := 0; i < 4096; i++ {
			idx := s.Next()
			if weights[idx] == 0 {
				return false
			}
			seen[idx] = true
		}
		// Every decently weighted index should appear in 4096 draws.
		for i, w := range weights {
			if w >= 1 && !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

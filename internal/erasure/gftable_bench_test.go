package erasure

import "testing"

// Ablation: table-driven vs log/exp inner loop (DESIGN.md design choice).
func benchMulSlice(b *testing.B, fn func(byte, []byte, []byte)) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	for i := range src {
		src[i] = byte(i*7 + 1)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(byte(i%254+2), src, dst)
	}
}

func BenchmarkGFMulSliceTable(b *testing.B) { benchMulSlice(b, mulSliceTable) }
func BenchmarkGFMulSliceLog(b *testing.B)   { benchMulSlice(b, mulSliceLog) }

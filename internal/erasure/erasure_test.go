package erasure

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Exhaustive checks over small sets: commutativity, associativity,
	// distributivity, inverses.
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			x, y := byte(a), byte(b)
			if Mul(x, y) != Mul(y, x) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			if Add(x, y) != Add(y, x) {
				t.Fatalf("add not commutative")
			}
			for c := 0; c < 256; c += 31 {
				z := byte(c)
				if Mul(x, Mul(y, z)) != Mul(Mul(x, y), z) {
					t.Fatalf("mul not associative")
				}
				if Mul(x, Add(y, z)) != Add(Mul(x, y), Mul(x, z)) {
					t.Fatalf("not distributive")
				}
			}
		}
	}
	for a := 1; a < 256; a++ {
		x := byte(a)
		if Mul(x, Inv(x)) != 1 {
			t.Fatalf("inverse of %d wrong", a)
		}
		if Div(x, x) != 1 {
			t.Fatalf("div of %d wrong", a)
		}
		if Mul(x, 1) != x {
			t.Fatalf("identity")
		}
		if Mul(x, 0) != 0 {
			t.Fatalf("zero")
		}
	}
}

func TestGFDivMulInverse(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b += 3 {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("div/mul mismatch at %d/%d", a, b)
			}
		}
	}
}

func TestGFPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Div by zero", func() { Div(3, 0) })
	assertPanics("Inv of zero", func() { Inv(0) })
}

func TestGFExp(t *testing.T) {
	if Exp(0) != 1 || Exp(1) != 2 || Exp(255) != 1 {
		t.Error("Exp generator values wrong")
	}
	if Exp(-1) != Exp(254) {
		t.Error("negative exponent")
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		m := Identity(n)
		inv, ok := m.Invert()
		if !ok {
			t.Fatalf("identity %d not invertible", n)
		}
		if !bytes.Equal(inv.Data, m.Data) {
			t.Errorf("inverse of identity is not identity (n=%d)", n)
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	m := CauchyMatrix(6, 6)
	inv, ok := m.Invert()
	if !ok {
		t.Fatal("Cauchy matrix not invertible")
	}
	prod := m.Mul(inv)
	if !bytes.Equal(prod.Data, Identity(6).Data) {
		t.Error("m * m^-1 != I")
	}
}

func TestMatrixSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2) // duplicate row
	if _, ok := m.Invert(); ok {
		t.Error("singular matrix inverted")
	}
}

func TestCauchySubmatricesNonsingular(t *testing.T) {
	// Spot-check the MDS property: square submatrices of the Cauchy matrix
	// are invertible.
	c := CauchyMatrix(4, 4)
	for r0 := 0; r0 < 3; r0++ {
		for c0 := 0; c0 < 3; c0++ {
			sub := NewMatrix(2, 2)
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					sub.Set(i, j, c.At(r0+i, c0+j))
				}
			}
			if _, ok := sub.Invert(); !ok {
				t.Errorf("2x2 Cauchy submatrix at (%d,%d) singular", r0, c0)
			}
		}
	}
}

func TestEncodeVerify(t *testing.T) {
	code, err := NewCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	shards := code.Split(data)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := code.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("verify = %v, %v", ok, err)
	}
	shards[5][0] ^= 1
	ok, _ = code.Verify(shards)
	if ok {
		t.Error("corrupted parity verified")
	}
}

func TestReconstructAllPatterns(t *testing.T) {
	code, _ := NewCode(4, 2)
	data := []byte("erasure coding for the storage data plane workload!!")
	orig := code.Split(data)
	if err := code.Encode(orig); err != nil {
		t.Fatal(err)
	}
	// Every way of losing up to m=2 shards must reconstruct.
	n := len(orig)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			shards := make([][]byte, n)
			for s := range shards {
				shards[s] = append([]byte(nil), orig[s]...)
			}
			shards[i] = nil
			shards[j] = nil // i == j loses one shard only
			if err := code.Reconstruct(shards); err != nil {
				t.Fatalf("reconstruct losing %d,%d: %v", i, j, err)
			}
			for s := range shards {
				if !bytes.Equal(shards[s], orig[s]) {
					t.Fatalf("shard %d wrong after losing %d,%d", s, i, j)
				}
			}
		}
	}
}

func TestReconstructTooMany(t *testing.T) {
	code, _ := NewCode(3, 2)
	shards := code.Split([]byte("abcdef"))
	code.Encode(shards)
	shards[0], shards[1], shards[2] = nil, nil, nil // lost 3 > m=2
	if err := code.Reconstruct(shards); err != ErrTooFewOK {
		t.Errorf("err = %v, want ErrTooFewOK", err)
	}
}

func TestReconstructNoLoss(t *testing.T) {
	code, _ := NewCode(2, 1)
	shards := code.Split([]byte("xy"))
	code.Encode(shards)
	if err := code.Reconstruct(shards); err != nil {
		t.Error(err)
	}
}

func TestSplitJoin(t *testing.T) {
	code, _ := NewCode(3, 2)
	data := []byte("0123456789") // 10 bytes over 3 shards: 4+4+2pad
	shards := code.Split(data)
	if len(shards) != 5 {
		t.Fatalf("shard count = %d", len(shards))
	}
	if len(shards[0]) != 4 {
		t.Errorf("shard size = %d", len(shards[0]))
	}
	got, err := code.Join(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("join = %q", got)
	}
	if _, err := code.Join(shards, 100); err == nil {
		t.Error("overlong join succeeded")
	}
}

func TestCodeValidation(t *testing.T) {
	if _, err := NewCode(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCode(1, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewCode(200, 100); err == nil {
		t.Error("k+m > 256 accepted")
	}
	code, _ := NewCode(2, 2)
	if err := code.Encode([][]byte{{1}, {2}}); err != ErrShardCount {
		t.Errorf("short shard slice: %v", err)
	}
	if err := code.Encode([][]byte{{1}, {2, 3}, {0}, {0}}); err != ErrShardSize {
		t.Errorf("ragged shards: %v", err)
	}
}

// Property: for random data, k, m, and loss patterns of size <= m,
// reconstruction recovers the data exactly.
func TestReconstructProperty(t *testing.T) {
	f := func(data []byte, kRaw, mRaw uint8, lossSeed uint32) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		k := int(kRaw%8) + 1
		m := int(mRaw%4) + 1
		code, err := NewCode(k, m)
		if err != nil {
			return false
		}
		shards := code.Split(data)
		if err := code.Encode(shards); err != nil {
			return false
		}
		orig := make([][]byte, len(shards))
		for i := range shards {
			orig[i] = append([]byte(nil), shards[i]...)
		}
		// Knock out up to m shards pseudo-randomly.
		losses := int(lossSeed%uint32(m)) + 1
		seed := lossSeed
		for i := 0; i < losses; i++ {
			seed = seed*1664525 + 1013904223
			shards[int(seed)%len(shards)] = nil
		}
		if err := code.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		got, err := code.Join(shards, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: matrix inversion round-trips for random invertible matrices
// built from Cauchy rows.
func TestInvertProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		m := CauchyMatrix(n, n)
		inv, ok := m.Invert()
		if !ok {
			return false
		}
		return bytes.Equal(m.Mul(inv).Data, Identity(n).Data) &&
			bytes.Equal(inv.Mul(m).Data, Identity(n).Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the table-driven and log/exp mulSlice implementations agree for
// every coefficient and data byte.
func TestMulSliceImplementationsAgree(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	for c := 0; c < 256; c++ {
		a := make([]byte, len(src))
		b := make([]byte, len(src))
		mulSliceTable(byte(c), src, a)
		mulSliceLog(byte(c), src, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("implementations diverge at c=%d", c)
		}
		// And both match scalar Mul.
		for i, s := range src {
			if a[i] != Mul(byte(c), s) {
				t.Fatalf("table mulSlice wrong at c=%d x=%d", c, s)
			}
		}
	}
}

func TestMulRow(t *testing.T) {
	row := MulRow(29)
	for x := 0; x < 256; x++ {
		if row[x] != Mul(29, byte(x)) {
			t.Fatalf("MulRow(29)[%d] wrong", x)
		}
	}
	if MulRow(0)[7] != 0 {
		t.Error("zero row must be all zero")
	}
}

package erasure

import (
	"errors"
	"fmt"
)

// Code is a systematic Cauchy Reed–Solomon erasure code with k data shards
// and m parity shards: any k of the k+m shards reconstruct the original
// data.
type Code struct {
	k, m   int
	parity *Matrix // m x k Cauchy coefficients
}

// Errors returned by the codec.
var (
	ErrShardCount = errors.New("erasure: wrong number of shards")
	ErrShardSize  = errors.New("erasure: shards must be non-empty and equal-sized")
	ErrTooFewOK   = errors.New("erasure: fewer than k shards available")
)

// NewCode builds a code with k data and m parity shards (k, m >= 1,
// k+m <= 256).
func NewCode(k, m int) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("erasure: k and m must be >= 1, got k=%d m=%d", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("erasure: k+m = %d exceeds 256", k+m)
	}
	return &Code{k: k, m: m, parity: CauchyMatrix(m, k)}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Code) ParityShards() int { return c.m }

// checkShards validates a full shard slice (k data followed by m parity for
// Encode; any mix for Reconstruct, with nil marking missing shards).
func (c *Code) shardSize(shards [][]byte) (int, error) {
	size := -1
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		}
		if len(s) != size || size == 0 {
			return 0, ErrShardSize
		}
	}
	if size <= 0 {
		return 0, ErrShardSize
	}
	return size, nil
}

// Encode fills the m parity shards from the k data shards. shards must hold
// k+m equal-length slices; the first k are inputs and the last m are
// overwritten.
func (c *Code) Encode(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return ErrShardCount
	}
	size, err := c.shardSize(shards)
	if err != nil {
		return err
	}
	for i := 0; i < c.m; i++ {
		p := shards[c.k+i]
		if len(p) != size {
			return ErrShardSize
		}
		for b := range p {
			p[b] = 0
		}
		row := c.parity.Row(i)
		for j := 0; j < c.k; j++ {
			mulSlice(row[j], shards[j], p)
		}
	}
	return nil
}

// Verify reports whether the parity shards are consistent with the data
// shards.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.k+c.m {
		return false, ErrShardCount
	}
	size, err := c.shardSize(shards)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for i := 0; i < c.m; i++ {
		for b := range buf {
			buf[b] = 0
		}
		row := c.parity.Row(i)
		for j := 0; j < c.k; j++ {
			mulSlice(row[j], shards[j], buf)
		}
		got := shards[c.k+i]
		for b := range buf {
			if buf[b] != got[b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds all missing shards in place. Missing shards are nil
// entries; at least k shards must be present. Reconstructed slices are
// freshly allocated.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return ErrShardCount
	}
	size, err := c.shardSize(shards)
	if err != nil {
		return err
	}
	present := 0
	for _, s := range shards {
		if s != nil {
			present++
		}
	}
	if present < c.k {
		return ErrTooFewOK
	}
	if present == c.k+c.m {
		return nil
	}

	// Build the k x k decode matrix from the first k available shards'
	// generator rows: row j of the full generator is e_j for data shard j
	// and the Cauchy row for parity shard j-k.
	sub := NewMatrix(c.k, c.k)
	srcIdx := make([]int, 0, c.k)
	for idx := 0; idx < c.k+c.m && len(srcIdx) < c.k; idx++ {
		if shards[idx] == nil {
			continue
		}
		r := len(srcIdx)
		if idx < c.k {
			sub.Set(r, idx, 1)
		} else {
			copy(sub.Row(r), c.parity.Row(idx-c.k))
		}
		srcIdx = append(srcIdx, idx)
	}
	inv, ok := sub.Invert()
	if !ok {
		// Cannot happen for a Cauchy code (every square submatrix is
		// nonsingular); guard anyway.
		return errors.New("erasure: decode matrix singular")
	}

	// Rebuild missing data shards: data_j = inv.Row(j) . available.
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		row := inv.Row(j)
		for r, idx := range srcIdx {
			mulSlice(row[r], shards[idx], out)
		}
		shards[j] = out
	}
	// Rebuild missing parity shards from the (now complete) data.
	for i := 0; i < c.m; i++ {
		if shards[c.k+i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.parity.Row(i)
		for j := 0; j < c.k; j++ {
			mulSlice(row[j], shards[j], out)
		}
		shards[c.k+i] = out
	}
	return nil
}

// Split slices data into k equal shards (padding the last with zeros) ready
// for Encode; the returned slice has k+m entries with parity allocated.
func (c *Code) Split(data []byte) [][]byte {
	per := (len(data) + c.k - 1) / c.k
	if per == 0 {
		per = 1
	}
	shards := make([][]byte, c.k+c.m)
	for i := 0; i < c.k; i++ {
		shard := make([]byte, per)
		lo := i * per
		if lo < len(data) {
			copy(shard, data[lo:])
		}
		shards[i] = shard
	}
	for i := 0; i < c.m; i++ {
		shards[c.k+i] = make([]byte, per)
	}
	return shards
}

// Join concatenates the k data shards and returns the first n bytes
// (undoing Split's padding).
func (c *Code) Join(shards [][]byte, n int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, ErrShardCount
	}
	var out []byte
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			return nil, errors.New("erasure: missing data shard in Join")
		}
		out = append(out, shards[i]...)
	}
	if n > len(out) {
		return nil, errors.New("erasure: requested length exceeds data")
	}
	return out[:n], nil
}

// Package erasure implements the storage-workload substrate: GF(2^8)
// arithmetic and Cauchy-matrix Reed–Solomon erasure coding, the paper's
// "erasure coding" data plane task ("Reed-Solomon erasure coding to encode
// data blocks/fragments using a Cauchy matrix").
package erasure

// GF(2^8) with the AES/Rijndael-compatible primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the polynomial commonly used by
// storage erasure codes.
const gfPoly = 0x11d

var (
	gfExp [512]byte // exp table doubled to avoid mod 255 in Mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// Add returns a+b in GF(2^8) (XOR; identical to subtraction).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// Div returns a/b in GF(2^8); it panics on division by zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	d := int(gfLog[a]) - int(gfLog[b])
	if d < 0 {
		d += 255
	}
	return gfExp[d]
}

// Inv returns the multiplicative inverse of a; it panics on zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("erasure: zero has no inverse in GF(2^8)")
	}
	return gfExp[255-int(gfLog[a])]
}

// Exp returns the generator g=2 raised to the power n.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// mulSlice computes dst[i] ^= c * src[i] for all i (the inner loop of both
// encoding and reconstruction). dst and src must have equal length. It uses
// the cached per-coefficient product rows (see gftable.go); the log/exp
// variant is kept for the ablation benchmark.
func mulSlice(c byte, src, dst []byte) {
	mulSliceTable(c, src, dst)
}

// Matrix is a dense matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // row-major
}

// NewMatrix allocates a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("erasure: matrix dimensions must be positive")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set writes element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("erasure: dimension mismatch in matrix multiply")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			logA := int(gfLog[a])
			orow := other.Row(k)
			dst := out.Row(r)
			for c, b := range orow {
				if b != 0 {
					dst[c] ^= gfExp[logA+int(gfLog[b])]
				}
			}
		}
	}
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Invert returns the inverse of a square matrix via Gauss-Jordan
// elimination, or ok=false if the matrix is singular.
func (m *Matrix) Invert() (*Matrix, bool) {
	if m.Rows != m.Cols {
		panic("erasure: cannot invert non-square matrix")
	}
	n := m.Rows
	// Work on [m | I].
	a := NewMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(a.Row(r)[:n], m.Row(r))
		a.Set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			pr, cr := a.Row(pivot), a.Row(col)
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		// Scale pivot row to 1.
		if d := a.At(col, col); d != 1 {
			inv := Inv(d)
			row := a.Row(col)
			for i, v := range row {
				row[i] = Mul(v, inv)
			}
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			src, dst := a.Row(col), a.Row(r)
			mulSlice(f, src, dst)
		}
	}
	out := NewMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.Row(r), a.Row(r)[n:])
	}
	return out, true
}

// CauchyMatrix returns the m x k Cauchy matrix C[i][j] = 1/(x_i + y_j) with
// x_i = i + k and y_j = j, which is guaranteed nonsingular in every square
// submatrix — the property that makes Cauchy Reed–Solomon codes MDS.
func CauchyMatrix(m, k int) *Matrix {
	if m+k > 256 {
		panic("erasure: k + m must be <= 256 for GF(2^8) Cauchy construction")
	}
	c := NewMatrix(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			c.Set(i, j, Inv(byte(i+k)^byte(j)))
		}
	}
	return c
}

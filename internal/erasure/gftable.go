package erasure

import "sync"

// Table-driven multiplication: storage codecs process megabytes per stripe,
// so the inner loop matters. A per-coefficient 256-entry product row turns
// `dst[i] ^= c*src[i]` into one load + one XOR per byte, removing the two
// log lookups and the branch of the log/exp path. Rows are built lazily and
// cached — there are at most 255 distinct coefficients.
var (
	mulRowsOnce sync.Once
	mulRows     *[256][256]byte
)

func buildMulRows() {
	mulRowsOnce.Do(func() {
		var rows [256][256]byte
		for c := 1; c < 256; c++ {
			logC := int(gfLog[byte(c)])
			for x := 1; x < 256; x++ {
				rows[c][x] = gfExp[logC+int(gfLog[byte(x)])]
			}
		}
		mulRows = &rows
	})
}

// MulRow returns the 256-entry product table of coefficient c
// (MulRow(c)[x] == Mul(c, x)).
func MulRow(c byte) *[256]byte {
	buildMulRows()
	return &mulRows[c]
}

// mulSliceTable computes dst[i] ^= c*src[i] using the product row.
func mulSliceTable(c byte, src, dst []byte) {
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	row := MulRow(c)
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// mulSliceLog is the log/exp-table implementation kept for the ablation
// benchmark (BenchmarkGFMulSlice*).
func mulSliceLog(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// Package cryptofwd implements the paper's "crypto forwarding" workload:
// network packets encrypted with AES-CBC-256 before being forwarded (the
// AES-CBC cipher as used with IPsec, RFC 3602).
//
// A Forwarder holds per-flow keys derived from a master secret; Seal
// produces IV || ciphertext with PKCS#7 padding, Open reverses it.
package cryptofwd

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the forwarder.
var (
	ErrShortPacket = errors.New("cryptofwd: ciphertext shorter than IV + one block")
	ErrBadPadding  = errors.New("cryptofwd: invalid PKCS#7 padding")
	ErrNotAligned  = errors.New("cryptofwd: ciphertext not block-aligned")
)

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

// Forwarder encrypts/decrypts packets for a set of flows. Each flow's key
// is derived from the master secret via HMAC-SHA256(master, flowID), an
// HKDF-expand-like derivation, and the resulting cipher.Block is cached.
type Forwarder struct {
	master []byte
	flows  map[uint64]cipher.Block
	// ivCounter provides deterministic unique IVs. Production systems would
	// use a CSPRNG; the data plane evaluation needs reproducibility.
	ivCounter uint64
}

// NewForwarder creates a forwarder with the given master secret.
func NewForwarder(master []byte) (*Forwarder, error) {
	if len(master) == 0 {
		return nil, errors.New("cryptofwd: empty master secret")
	}
	return &Forwarder{
		master: append([]byte(nil), master...),
		flows:  make(map[uint64]cipher.Block),
	}, nil
}

// flowKey derives the AES-256 key for a flow.
func (f *Forwarder) flowKey(flow uint64) []byte {
	mac := hmac.New(sha256.New, f.master)
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], flow)
	mac.Write(id[:])
	return mac.Sum(nil) // 32 bytes: exactly an AES-256 key
}

// block returns (creating if needed) the cached cipher for a flow.
func (f *Forwarder) block(flow uint64) (cipher.Block, error) {
	if b, ok := f.flows[flow]; ok {
		return b, nil
	}
	b, err := aes.NewCipher(f.flowKey(flow))
	if err != nil {
		return nil, fmt.Errorf("cryptofwd: %w", err)
	}
	f.flows[flow] = b
	return b, nil
}

// pad appends PKCS#7 padding up to the AES block size.
func pad(data []byte) []byte {
	n := aes.BlockSize - len(data)%aes.BlockSize
	out := make([]byte, len(data)+n)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

// unpad strips and validates PKCS#7 padding.
func unpad(data []byte) ([]byte, error) {
	if len(data) == 0 || len(data)%aes.BlockSize != 0 {
		return nil, ErrBadPadding
	}
	n := int(data[len(data)-1])
	if n == 0 || n > aes.BlockSize || n > len(data) {
		return nil, ErrBadPadding
	}
	for _, b := range data[len(data)-n:] {
		if b != byte(n) {
			return nil, ErrBadPadding
		}
	}
	return data[:len(data)-n], nil
}

// nextIV produces a unique deterministic IV.
func (f *Forwarder) nextIV() [aes.BlockSize]byte {
	f.ivCounter++
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[:8], f.ivCounter)
	binary.BigEndian.PutUint64(iv[8:], f.ivCounter*0x9e3779b97f4a7c15)
	return iv
}

// Seal encrypts plaintext for the given flow, returning IV || ciphertext.
func (f *Forwarder) Seal(flow uint64, plaintext []byte) ([]byte, error) {
	b, err := f.block(flow)
	if err != nil {
		return nil, err
	}
	iv := f.nextIV()
	padded := pad(plaintext)
	out := make([]byte, aes.BlockSize+len(padded))
	copy(out[:aes.BlockSize], iv[:])
	cipher.NewCBCEncrypter(b, iv[:]).CryptBlocks(out[aes.BlockSize:], padded)
	return out, nil
}

// Open decrypts a packet produced by Seal for the given flow.
func (f *Forwarder) Open(flow uint64, sealed []byte) ([]byte, error) {
	if len(sealed) < 2*aes.BlockSize {
		return nil, ErrShortPacket
	}
	ct := sealed[aes.BlockSize:]
	if len(ct)%aes.BlockSize != 0 {
		return nil, ErrNotAligned
	}
	b, err := f.block(flow)
	if err != nil {
		return nil, err
	}
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(b, sealed[:aes.BlockSize]).CryptBlocks(pt, ct)
	return unpad(pt)
}

// FlowCount returns the number of flows with cached keys.
func (f *Forwarder) FlowCount() int { return len(f.flows) }

// EvictFlow discards a flow's cached key material (tenant disconnect).
func (f *Forwarder) EvictFlow(flow uint64) { delete(f.flows, flow) }

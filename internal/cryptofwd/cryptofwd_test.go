package cryptofwd

import (
	"bytes"
	"crypto/aes"
	"errors"
	"testing"
	"testing/quick"
)

func newFwd(t *testing.T) *Forwarder {
	t.Helper()
	f, err := NewForwarder([]byte("master secret for tests"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSealOpenRoundTrip(t *testing.T) {
	f := newFwd(t)
	for _, n := range []int{0, 1, 15, 16, 17, 64, 1500} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i * 13)
		}
		sealed, err := f.Seal(42, pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Open(42, sealed)
		if err != nil {
			t.Fatalf("open n=%d: %v", n, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip n=%d mismatch", n)
		}
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	f := newFwd(t)
	pt := bytes.Repeat([]byte("A"), 64)
	sealed, _ := f.Seal(1, pt)
	if bytes.Contains(sealed, pt[:aes.BlockSize]) {
		t.Error("ciphertext contains plaintext block")
	}
}

func TestIVUniquePerPacket(t *testing.T) {
	f := newFwd(t)
	a, _ := f.Seal(1, []byte("same message"))
	b, _ := f.Seal(1, []byte("same message"))
	if bytes.Equal(a[:aes.BlockSize], b[:aes.BlockSize]) {
		t.Error("IV reused")
	}
	if bytes.Equal(a, b) {
		t.Error("identical ciphertexts for identical plaintexts")
	}
}

func TestFlowIsolation(t *testing.T) {
	f := newFwd(t)
	pt := []byte("flow-isolated payload")
	sealed, _ := f.Seal(1, pt)
	// Opening with a different flow's key must fail (bad padding) or
	// produce different bytes.
	got, err := f.Open(2, sealed)
	if err == nil && bytes.Equal(got, pt) {
		t.Error("cross-flow decryption succeeded")
	}
}

func TestOpenErrors(t *testing.T) {
	f := newFwd(t)
	if _, err := f.Open(1, make([]byte, 8)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short: %v", err)
	}
	if _, err := f.Open(1, make([]byte, aes.BlockSize+5)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("below two blocks: %v", err)
	}
	sealed, _ := f.Seal(1, []byte("valid message padded"))
	if _, err := f.Open(1, append(sealed, 0x00)); !errors.Is(err, ErrNotAligned) {
		t.Errorf("unaligned: %v", err)
	}
	// Corrupt the final block: padding check must fail.
	bad := append([]byte(nil), sealed...)
	bad[len(bad)-1] ^= 0xff
	if _, err := f.Open(1, bad); !errors.Is(err, ErrBadPadding) {
		t.Errorf("corrupt tail: %v", err)
	}
}

func TestKeyDerivationDeterministic(t *testing.T) {
	f1, _ := NewForwarder([]byte("k"))
	f2, _ := NewForwarder([]byte("k"))
	if !bytes.Equal(f1.flowKey(7), f2.flowKey(7)) {
		t.Error("same master/flow derived different keys")
	}
	if bytes.Equal(f1.flowKey(7), f1.flowKey(8)) {
		t.Error("different flows derived same key")
	}
	f3, _ := NewForwarder([]byte("other"))
	if bytes.Equal(f1.flowKey(7), f3.flowKey(7)) {
		t.Error("different masters derived same key")
	}
	if len(f1.flowKey(0)) != KeySize {
		t.Error("derived key is not AES-256 sized")
	}
}

func TestEmptyMasterRejected(t *testing.T) {
	if _, err := NewForwarder(nil); err == nil {
		t.Error("empty master accepted")
	}
}

func TestFlowCacheManagement(t *testing.T) {
	f := newFwd(t)
	f.Seal(1, []byte("x"))
	f.Seal(2, []byte("y"))
	if f.FlowCount() != 2 {
		t.Errorf("flow count = %d", f.FlowCount())
	}
	f.EvictFlow(1)
	if f.FlowCount() != 1 {
		t.Errorf("after evict = %d", f.FlowCount())
	}
	// Evicted flow still decrypts (key re-derived identically).
	sealed, _ := f.Seal(1, []byte("again"))
	if got, err := f.Open(1, sealed); err != nil || string(got) != "again" {
		t.Error("re-derived flow key mismatch")
	}
}

func TestPadUnpad(t *testing.T) {
	for n := 0; n < 40; n++ {
		data := bytes.Repeat([]byte{0xCC}, n)
		padded := pad(data)
		if len(padded)%aes.BlockSize != 0 {
			t.Fatalf("pad(%d) not aligned", n)
		}
		if len(padded) == len(data) {
			t.Fatalf("pad(%d) added no padding", n)
		}
		got, err := unpad(padded)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("unpad(pad(%d)) failed: %v", n, err)
		}
	}
}

func TestUnpadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		bytes.Repeat([]byte{0}, 16),            // padding byte 0
		bytes.Repeat([]byte{17}, 16),           // padding byte > block
		append(bytes.Repeat([]byte{1}, 15), 3), // inconsistent padding
	}
	for i, c := range cases {
		if _, err := unpad(c); err == nil {
			t.Errorf("case %d: garbage unpaded", i)
		}
	}
}

// Property: Seal/Open round-trips arbitrary payloads on arbitrary flows.
func TestSealOpenProperty(t *testing.T) {
	f, _ := NewForwarder([]byte("prop master"))
	fn := func(flow uint64, pt []byte) bool {
		sealed, err := f.Seal(flow, pt)
		if err != nil {
			return false
		}
		got, err := f.Open(flow, sealed)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package steering implements the paper's "packet steering" workload: a
// work-distribution mechanism that redirects traffic by obtaining a session
// affinity from a hash table. Packets are classified by their 5-tuple; the
// first packet of a flow is assigned a target worker via rendezvous
// (highest-random-weight) hashing, and subsequent packets stick to it.
package steering

import (
	"encoding/binary"
	"errors"

	"hyperplane/internal/netproto"
)

// FiveTuple identifies a transport flow.
type FiveTuple struct {
	Src, Dst         [4]byte
	SrcPort, DstPort uint16
	Proto            uint8
}

// Errors returned by the steerer.
var (
	ErrNotTransport = errors.New("steering: packet is not TCP or UDP")
	ErrNoWorkers    = errors.New("steering: no workers configured")
)

// ParseFiveTuple extracts the flow key from an IPv4 TCP/UDP packet.
func ParseFiveTuple(pkt []byte) (FiveTuple, error) {
	var ft FiveTuple
	h, payload, err := netproto.ParseIPv4(pkt)
	if err != nil {
		return ft, err
	}
	if h.Protocol != netproto.ProtoTCP && h.Protocol != netproto.ProtoUDP {
		return ft, ErrNotTransport
	}
	if len(payload) < 4 {
		return ft, netproto.ErrTruncated
	}
	ft.Src, ft.Dst = h.Src, h.Dst
	ft.Proto = h.Protocol
	ft.SrcPort = binary.BigEndian.Uint16(payload[0:])
	ft.DstPort = binary.BigEndian.Uint16(payload[2:])
	return ft, nil
}

// hash64 mixes the 5-tuple into a 64-bit flow hash (splitmix-style).
func (ft FiveTuple) hash64() uint64 {
	x := uint64(binary.BigEndian.Uint32(ft.Src[:]))<<32 |
		uint64(binary.BigEndian.Uint32(ft.Dst[:]))
	x ^= uint64(ft.SrcPort)<<24 | uint64(ft.DstPort)<<8 | uint64(ft.Proto)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sessionEntry is one open-addressed table slot.
type sessionEntry struct {
	key    FiveTuple
	hash   uint64
	worker int
	used   bool
	tick   uint64 // last access, for LRU-ish eviction
}

// Steerer maps flows to workers with session affinity.
type Steerer struct {
	workers  []string
	slots    []sessionEntry
	mask     uint64
	size     int
	maxLoad  int
	tick     uint64
	hits     int64
	misses   int64
	evicted  int64
	capacity int
}

// NewSteerer creates a steerer over the named workers with room for at
// least capacity concurrent sessions.
func NewSteerer(workers []string, capacity int) (*Steerer, error) {
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	if capacity < 1 {
		capacity = 1
	}
	// Size the table at 2x capacity, power of two, for open addressing.
	n := 1
	for n < capacity*2 {
		n *= 2
	}
	return &Steerer{
		workers:  append([]string(nil), workers...),
		slots:    make([]sessionEntry, n),
		mask:     uint64(n - 1),
		maxLoad:  capacity,
		capacity: capacity,
	}, nil
}

// rendezvous picks the worker with the highest hash(flow, worker) — flows
// spread evenly and reassignments stay minimal when the worker set changes.
func (s *Steerer) rendezvous(h uint64) int {
	best, bestScore := 0, uint64(0)
	for i := range s.workers {
		x := h ^ (uint64(i+1) * 0xda3e39cb94b95bdb)
		x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
		x ^= x >> 33
		if x >= bestScore {
			best, bestScore = i, x
		}
	}
	return best
}

// Steer returns the worker index for the flow, creating the session on
// first sight. The second return reports whether the session already
// existed (affinity hit).
func (s *Steerer) Steer(ft FiveTuple) (worker int, existing bool) {
	h := ft.hash64()
	s.tick++
	idx := h & s.mask
	var firstFree = -1
	// Linear probing with a bounded scan.
	for probe := uint64(0); probe < uint64(len(s.slots)); probe++ {
		e := &s.slots[(idx+probe)&s.mask]
		if !e.used {
			if firstFree < 0 {
				firstFree = int((idx + probe) & s.mask)
			}
			break // open addressing: an empty slot ends the probe chain
		}
		if e.hash == h && e.key == ft {
			e.tick = s.tick
			s.hits++
			return e.worker, true
		}
	}
	// Miss: assign and insert.
	s.misses++
	w := s.rendezvous(h)
	if s.size >= s.maxLoad {
		s.evictOldest()
		// Eviction may have opened a different slot; re-probe for one.
		firstFree = -1
		for probe := uint64(0); probe < uint64(len(s.slots)); probe++ {
			if !s.slots[(idx+probe)&s.mask].used {
				firstFree = int((idx + probe) & s.mask)
				break
			}
		}
	}
	if firstFree < 0 {
		// Table unexpectedly full; steer statelessly.
		return w, false
	}
	s.slots[firstFree] = sessionEntry{key: ft, hash: h, worker: w, used: true, tick: s.tick}
	s.size++
	return w, false
}

// evictOldest removes the least-recently-used session. A linear scan is
// acceptable: eviction happens only at capacity.
func (s *Steerer) evictOldest() {
	oldest, oldestTick := -1, ^uint64(0)
	for i := range s.slots {
		if s.slots[i].used && s.slots[i].tick < oldestTick {
			oldest, oldestTick = i, s.slots[i].tick
		}
	}
	if oldest >= 0 {
		s.removeAt(oldest)
		s.evicted++
	}
}

// removeAt deletes slot i and re-inserts the displaced probe chain
// (backward-shift deletion for linear probing).
func (s *Steerer) removeAt(i int) {
	s.slots[i] = sessionEntry{}
	s.size--
	// Rehash the contiguous cluster after i.
	j := (uint64(i) + 1) & s.mask
	for s.slots[j].used {
		e := s.slots[j]
		s.slots[j] = sessionEntry{}
		s.size--
		s.reinsert(e)
		j = (j + 1) & s.mask
	}
}

func (s *Steerer) reinsert(e sessionEntry) {
	idx := e.hash & s.mask
	for probe := uint64(0); probe < uint64(len(s.slots)); probe++ {
		slot := &s.slots[(idx+probe)&s.mask]
		if !slot.used {
			*slot = e
			s.size++
			return
		}
	}
}

// End removes a session (flow termination), reporting whether it existed.
func (s *Steerer) End(ft FiveTuple) bool {
	h := ft.hash64()
	idx := h & s.mask
	for probe := uint64(0); probe < uint64(len(s.slots)); probe++ {
		i := int((idx + probe) & s.mask)
		e := &s.slots[i]
		if !e.used {
			return false
		}
		if e.hash == h && e.key == ft {
			s.removeAt(i)
			return true
		}
	}
	return false
}

// SteerPacket parses an IPv4 packet and steers it, returning the worker
// name.
func (s *Steerer) SteerPacket(pkt []byte) (string, error) {
	ft, err := ParseFiveTuple(pkt)
	if err != nil {
		return "", err
	}
	w, _ := s.Steer(ft)
	return s.workers[w], nil
}

// Sessions returns the number of live sessions.
func (s *Steerer) Sessions() int { return s.size }

// Stats reports affinity hits, misses, and evictions.
func (s *Steerer) Stats() (hits, misses, evicted int64) {
	return s.hits, s.misses, s.evicted
}

// Workers returns the configured worker names.
func (s *Steerer) Workers() []string { return append([]string(nil), s.workers...) }

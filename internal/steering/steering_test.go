package steering

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"hyperplane/internal/netproto"
)

func tuple(i int) FiveTuple {
	return FiveTuple{
		Src:     [4]byte{10, 0, byte(i >> 8), byte(i)},
		Dst:     [4]byte{10, 1, 0, 1},
		SrcPort: uint16(1024 + i),
		DstPort: 443,
		Proto:   netproto.ProtoTCP,
	}
}

func newSteerer(t *testing.T, workers int, capacity int) *Steerer {
	t.Helper()
	names := make([]string, workers)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	s, err := NewSteerer(names, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAffinity(t *testing.T) {
	s := newSteerer(t, 4, 100)
	ft := tuple(1)
	w1, existing := s.Steer(ft)
	if existing {
		t.Fatal("first packet reported existing session")
	}
	for i := 0; i < 10; i++ {
		w, existing := s.Steer(ft)
		if !existing {
			t.Fatal("follow-up packet missed session")
		}
		if w != w1 {
			t.Fatal("affinity violated")
		}
	}
	hits, misses, _ := s.Stats()
	if hits != 10 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
}

func TestDistribution(t *testing.T) {
	s := newSteerer(t, 4, 10000)
	counts := make(map[int]int)
	const flows = 8000
	for i := 0; i < flows; i++ {
		w, _ := s.Steer(tuple(i))
		counts[w]++
	}
	// Rendezvous hashing should spread flows within ~±25% of fair share.
	fair := flows / 4
	for w, c := range counts {
		if c < fair*3/4 || c > fair*5/4 {
			t.Errorf("worker %d got %d flows (fair %d)", w, c, fair)
		}
	}
}

func TestDeterministicAssignment(t *testing.T) {
	s1 := newSteerer(t, 5, 100)
	s2 := newSteerer(t, 5, 100)
	for i := 0; i < 50; i++ {
		w1, _ := s1.Steer(tuple(i))
		w2, _ := s2.Steer(tuple(i))
		if w1 != w2 {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestEnd(t *testing.T) {
	s := newSteerer(t, 2, 10)
	ft := tuple(3)
	s.Steer(ft)
	if s.Sessions() != 1 {
		t.Fatal("session not created")
	}
	if !s.End(ft) {
		t.Fatal("End missed live session")
	}
	if s.Sessions() != 0 {
		t.Fatal("session not removed")
	}
	if s.End(ft) {
		t.Fatal("End found dead session")
	}
	// New packet re-creates.
	if _, existing := s.Steer(ft); existing {
		t.Fatal("dead session resurrected")
	}
}

func TestCapacityEviction(t *testing.T) {
	s := newSteerer(t, 2, 8)
	for i := 0; i < 20; i++ {
		s.Steer(tuple(i))
	}
	if s.Sessions() > 8 {
		t.Errorf("sessions = %d exceeds capacity 8", s.Sessions())
	}
	_, _, evicted := s.Stats()
	if evicted == 0 {
		t.Error("no evictions despite overflow")
	}
	// Recently used flows survive; oldest were evicted.
	if _, existing := s.Steer(tuple(19)); !existing {
		t.Error("most recent flow evicted")
	}
}

func TestLRUKeepsHotFlows(t *testing.T) {
	s := newSteerer(t, 2, 4)
	hot := tuple(0)
	s.Steer(hot)
	for i := 1; i < 12; i++ {
		s.Steer(hot) // keep hot flow fresh
		s.Steer(tuple(i))
	}
	if _, existing := s.Steer(hot); !existing {
		t.Error("hot flow was evicted")
	}
}

func TestParseFiveTuple(t *testing.T) {
	h := netproto.IPv4Header{
		TotalLen: netproto.IPv4HeaderLen + 8,
		TTL:      64,
		Protocol: netproto.ProtoUDP,
		Src:      [4]byte{1, 2, 3, 4},
		Dst:      [4]byte{5, 6, 7, 8},
	}
	pkt := h.Marshal(nil)
	l4 := make([]byte, 8)
	binary.BigEndian.PutUint16(l4[0:], 5353)
	binary.BigEndian.PutUint16(l4[2:], 53)
	pkt = append(pkt, l4...)
	ft, err := ParseFiveTuple(pkt)
	if err != nil {
		t.Fatal(err)
	}
	want := FiveTuple{
		Src: [4]byte{1, 2, 3, 4}, Dst: [4]byte{5, 6, 7, 8},
		SrcPort: 5353, DstPort: 53, Proto: netproto.ProtoUDP,
	}
	if ft != want {
		t.Errorf("tuple = %+v", ft)
	}
}

func TestParseRejectsNonTransport(t *testing.T) {
	h := netproto.IPv4Header{
		TotalLen: netproto.IPv4HeaderLen + 8,
		TTL:      1,
		Protocol: netproto.ProtoGRE,
	}
	pkt := append(h.Marshal(nil), make([]byte, 8)...)
	if _, err := ParseFiveTuple(pkt); !errors.Is(err, ErrNotTransport) {
		t.Errorf("err = %v", err)
	}
}

func TestParseTruncatedL4(t *testing.T) {
	h := netproto.IPv4Header{
		TotalLen: netproto.IPv4HeaderLen + 2,
		TTL:      1,
		Protocol: netproto.ProtoTCP,
	}
	pkt := append(h.Marshal(nil), 0, 1)
	if _, err := ParseFiveTuple(pkt); err == nil {
		t.Error("truncated L4 accepted")
	}
}

func TestSteerPacket(t *testing.T) {
	s := newSteerer(t, 3, 16)
	h := netproto.IPv4Header{
		TotalLen: netproto.IPv4HeaderLen + 4,
		TTL:      64,
		Protocol: netproto.ProtoTCP,
		Src:      [4]byte{9, 9, 9, 9},
	}
	pkt := append(h.Marshal(nil), 0x01, 0x02, 0x03, 0x04)
	w1, err := s.SteerPacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := s.SteerPacket(pkt)
	if w1 != w2 {
		t.Error("packet-level affinity violated")
	}
}

func TestNoWorkers(t *testing.T) {
	if _, err := NewSteerer(nil, 8); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("err = %v", err)
	}
}

// Property: affinity holds under interleaved traffic from many flows,
// regardless of insertion order or table pressure.
func TestAffinityProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		s, err := NewSteerer([]string{"a", "b", "c"}, 64)
		if err != nil {
			return false
		}
		assigned := map[int]int{}
		for _, b := range seq {
			id := int(b % 32) // 32 flows fit comfortably in capacity 64
			w, _ := s.Steer(tuple(id))
			if prev, ok := assigned[id]; ok && prev != w {
				return false
			}
			assigned[id] = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: removal via End keeps the probe chains intact — remaining
// sessions stay findable after arbitrary interleavings of Steer and End.
func TestDeletionIntegrityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		// Capacity 64 >> 24 distinct flows, so no LRU eviction interferes.
		s, err := NewSteerer([]string{"a", "b"}, 64)
		if err != nil {
			return false
		}
		live := map[int]int{}
		for _, op := range ops {
			id := int(op % 24)
			if op&0x80 != 0 {
				s.End(tuple(id))
				delete(live, id)
				continue
			}
			w, existing := s.Steer(tuple(id))
			if prev, ok := live[id]; ok {
				if !existing || w != prev {
					return false
				}
			}
			live[id] = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Package governor is the elastic control loop that closes the path from
// the telemetry plane back into the dataplane — the runtime analog of the
// paper's work-proportionality result (Figs. 11–12), where IPC and core
// power track offered load because idle cores drop from C0 to C1.
//
// The Controller is pure decision logic: the dataplane feeds it periodic
// Samples (cumulative ingress/processed counters, instantaneous backlog,
// the live active-worker count) and applies the returned Decision (active
// worker target, MaxBatch, EWMA alpha). Keeping it free of goroutines,
// clocks it owns, and dataplane types makes every control response unit
// testable with synthetic load traces.
//
// Control law:
//
//   - Grow fast. A backlog spike beyond GrowBacklog items per active
//     worker doubles the active set immediately (latency is on the line;
//     the paper's wake cost is half a microsecond, so over-waking is
//     cheap).
//   - Shrink slow. Only after ShrinkAfter consecutive drained ticks, and
//     only one worker at a time (Efficient mode releases down to the
//     estimated need in one step), does the controller halt a worker —
//     hysteresis so a breathing workload does not flap the worker set.
//   - Batch follows arrival mass: MaxBatch is the items one worker is
//     expected to accumulate per BatchHorizon, clamped to [1, MaxBatch
//     ceiling] — per-item dispatch at trickle load, full batches at
//     saturation.
//   - Alpha follows burstiness: the EWMA-adaptive policy's smoothing
//     factor stiffens (toward AlphaMax) when the arrival rate is
//     volatile and relaxes (toward AlphaMin) when it is steady.
package governor

import (
	"fmt"
	"math"
	"time"
)

// Mode is the latency-vs-power operating point. The zero value is
// Balanced.
type Mode uint8

const (
	// Balanced pairs the hybrid spin-then-park wait strategy with
	// moderate shrink hysteresis: near-spin latency while traffic flows,
	// parked workers when it does not.
	Balanced Mode = iota
	// LowLatency pins the full worker set active (spin wait strategy at
	// the dataplane level): the C0-always extreme, minimum latency,
	// maximum CPU.
	LowLatency
	// Efficient parks eagerly: pure park waits and an aggressive shrink
	// that releases straight down to the estimated need.
	Efficient
)

// String names the mode; unknown values render as "governor(N)".
func (m Mode) String() string {
	switch m {
	case Balanced:
		return "balanced"
	case LowLatency:
		return "low-latency"
	case Efficient:
		return "efficient"
	}
	return fmt.Sprintf("governor(%d)", uint8(m))
}

// ParseMode maps a CLI-friendly name to its Mode.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "balanced":
		return Balanced, nil
	case "low-latency", "lowlatency":
		return LowLatency, nil
	case "efficient":
		return Efficient, nil
	}
	return 0, fmt.Errorf("governor: unknown mode %q (want balanced, low-latency or efficient)", name)
}

// Config parameterizes a Controller. The zero value of every tuning
// field picks the documented default.
type Config struct {
	// Mode is the initial operating point (switchable via SetMode).
	Mode Mode
	// MinWorkers/MaxWorkers bound the active set. MaxWorkers is
	// required (>= 1); MinWorkers defaults to 1.
	MinWorkers int
	MaxWorkers int
	// MaxBatch is the autotune ceiling for the batch-size decision
	// (>= 1; defaults to 1, which disables batch growth).
	MaxBatch int
	// BatchHorizon is the arrival mass one batch should cover: the
	// tuned batch is arrivalRate-per-worker x BatchHorizon. Defaults to
	// 100 µs.
	BatchHorizon time.Duration
	// GrowBacklog is the backlog per active worker that triggers the
	// doubling response. Defaults to 4 x MaxBatch.
	GrowBacklog int
	// ShrinkAfter is how many consecutive drained ticks precede a
	// one-worker release. Defaults to 4.
	ShrinkAfter int
	// AlphaMin/AlphaMax bound the EWMA-alpha autotune. Defaults 0.05
	// and 0.5; both must stay in (0, 1].
	AlphaMin float64
	AlphaMax float64
}

func (c *Config) defaults() error {
	if c.MaxWorkers < 1 {
		return fmt.Errorf("governor: MaxWorkers must be >= 1, got %d", c.MaxWorkers)
	}
	if c.MinWorkers == 0 {
		c.MinWorkers = 1
	}
	if c.MinWorkers < 1 || c.MinWorkers > c.MaxWorkers {
		return fmt.Errorf("governor: MinWorkers must be in [1, MaxWorkers=%d], got %d", c.MaxWorkers, c.MinWorkers)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 1
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("governor: MaxBatch must be >= 1, got %d", c.MaxBatch)
	}
	if c.BatchHorizon == 0 {
		c.BatchHorizon = 100 * time.Microsecond
	}
	if c.BatchHorizon < 0 {
		return fmt.Errorf("governor: BatchHorizon must be > 0, got %v", c.BatchHorizon)
	}
	if c.GrowBacklog == 0 {
		c.GrowBacklog = 4 * c.MaxBatch
	}
	if c.GrowBacklog < 1 {
		return fmt.Errorf("governor: GrowBacklog must be >= 1, got %d", c.GrowBacklog)
	}
	if c.ShrinkAfter == 0 {
		c.ShrinkAfter = 4
	}
	if c.ShrinkAfter < 1 {
		return fmt.Errorf("governor: ShrinkAfter must be >= 1, got %d", c.ShrinkAfter)
	}
	if c.AlphaMin == 0 {
		c.AlphaMin = 0.05
	}
	if c.AlphaMax == 0 {
		c.AlphaMax = 0.5
	}
	if c.AlphaMin <= 0 || c.AlphaMin > 1 || c.AlphaMax <= 0 || c.AlphaMax > 1 || c.AlphaMin > c.AlphaMax {
		return fmt.Errorf("governor: alpha bounds must satisfy 0 < AlphaMin <= AlphaMax <= 1, got [%v, %v]", c.AlphaMin, c.AlphaMax)
	}
	return nil
}

// Sample is one observation window handed to Tick. Counter fields are
// cumulative (the controller differences consecutive samples itself).
type Sample struct {
	// Ingressed is the cumulative count of items admitted to the plane.
	Ingressed int64
	// Processed is the cumulative count of items handled.
	Processed int64
	// Backlog is the instantaneous queued-item count across all device
	// rings.
	Backlog int
	// Active is the live active-worker count the dataplane is running
	// with (feedback; normally the previous Decision's Active).
	Active int
}

// Decision is the control output of one Tick.
type Decision struct {
	// Active is the target active-worker count, in [MinWorkers,
	// MaxWorkers]. Workers at index >= Active halt.
	Active int
	// MaxBatch is the tuned per-dispatch batch cap, in [1, cfg.MaxBatch].
	MaxBatch int
	// Alpha is the tuned EWMA smoothing factor, in [AlphaMin, AlphaMax].
	Alpha float64
	// Reason describes the most recent active-set transition (for
	// DebugSnapshot; unchanged while the set holds steady).
	Reason string
}

// smoothing gain for the controller's internal rate estimates.
const gain = 0.3

// utilization headroom targeted when estimating how many workers the
// observed arrival rate needs.
func headroom(m Mode) float64 {
	if m == Efficient {
		return 0.9
	}
	return 0.7
}

// Controller is the pure elastic-control state machine. Not safe for
// concurrent use: one goroutine (the dataplane's governor loop) owns it.
type Controller struct {
	cfg  Config
	mode Mode

	init     bool
	lastTime time.Time
	lastIng  int64
	lastProc int64

	arrRate float64 // EWMA arrival rate, items/s
	burst   float64 // EWMA relative arrival-rate change, [0, 1]
	svcRate float64 // EWMA per-worker service rate learned while backlogged
	quiet   int     // consecutive drained ticks

	active int
	batch  int
	alpha  float64
	reason string
}

// New builds a Controller starting with the full worker set active.
func New(cfg Config) (*Controller, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:    cfg,
		mode:   cfg.Mode,
		active: cfg.MaxWorkers,
		batch:  cfg.MaxBatch,
		alpha:  cfg.AlphaMin,
		reason: "start: full worker set",
	}
	return c, nil
}

// Mode returns the current operating mode.
func (c *Controller) Mode() Mode { return c.mode }

// SetMode switches the operating point live. Shrink hysteresis resets so
// the new mode's law starts from a clean window; the active set adjusts
// on the next Tick.
func (c *Controller) SetMode(m Mode) {
	c.mode = m
	c.quiet = 0
}

// ArrivalRate returns the smoothed arrival-rate estimate (items/s).
func (c *Controller) ArrivalRate() float64 { return c.arrRate }

// Decision returns the current control output without advancing the
// controller.
func (c *Controller) Decision() Decision {
	return Decision{Active: c.active, MaxBatch: c.batch, Alpha: c.alpha, Reason: c.reason}
}

// Tick folds one observation window into the rate estimates and returns
// the (possibly unchanged) control decision.
func (c *Controller) Tick(now time.Time, s Sample) Decision {
	if !c.init {
		c.init = true
		c.lastTime, c.lastIng, c.lastProc = now, s.Ingressed, s.Processed
		return c.Decision()
	}
	dt := now.Sub(c.lastTime).Seconds()
	if dt <= 0 {
		return c.Decision()
	}
	arr := float64(s.Ingressed-c.lastIng) / dt
	proc := float64(s.Processed-c.lastProc) / dt
	c.lastTime, c.lastIng, c.lastProc = now, s.Ingressed, s.Processed

	prev := c.arrRate
	c.arrRate += gain * (arr - c.arrRate)
	rel := math.Abs(arr-prev) / math.Max(c.arrRate, 1)
	if rel > 1 {
		rel = 1
	}
	c.burst += gain * (rel - c.burst)

	active := s.Active
	if active < 1 {
		active = 1
	}
	// Per-worker capacity is only observable while workers are saturated
	// (backlog present); an idle plane reveals arrival, not capacity.
	if s.Backlog > 0 {
		if pw := proc / float64(active); pw > 0 {
			if c.svcRate == 0 {
				c.svcRate = pw
			} else {
				c.svcRate += gain * (pw - c.svcRate)
			}
		}
	}

	c.retarget(s, active)

	// Batch covers the arrival mass one worker sees per horizon.
	b := int(math.Ceil(c.arrRate / float64(c.active) * c.cfg.BatchHorizon.Seconds()))
	c.batch = clamp(b, 1, c.cfg.MaxBatch)

	// Alpha stiffens with arrival volatility.
	c.alpha = c.cfg.AlphaMin + (c.cfg.AlphaMax-c.cfg.AlphaMin)*c.burst

	return c.Decision()
}

// retarget applies the grow/shrink law to the active-worker target.
func (c *Controller) retarget(s Sample, active int) {
	if c.mode == LowLatency {
		if c.active != c.cfg.MaxWorkers {
			c.reason = fmt.Sprintf("low-latency: pin %d workers active", c.cfg.MaxWorkers)
		}
		c.active = c.cfg.MaxWorkers
		c.quiet = 0
		return
	}
	// Grow fast: a backlog spike beyond the per-worker threshold doubles
	// the active set.
	if s.Backlog > c.cfg.GrowBacklog*active {
		c.quiet = 0
		target := clamp(active*2, c.cfg.MinWorkers, c.cfg.MaxWorkers)
		if target > c.active {
			c.reason = fmt.Sprintf("backlog %d > %d/worker: grow %d -> %d",
				s.Backlog, c.cfg.GrowBacklog, c.active, target)
			c.active = target
		}
		return
	}
	// Shrink slow: require ShrinkAfter consecutive drained ticks, then
	// release one worker (Balanced) or drop to the estimated need
	// (Efficient).
	if s.Backlog > active {
		c.quiet = 0
		c.active = clamp(c.active, c.cfg.MinWorkers, c.cfg.MaxWorkers)
		return
	}
	need := c.cfg.MinWorkers
	if c.svcRate > 0 {
		need = clamp(int(math.Ceil(c.arrRate/(c.svcRate*headroom(c.mode)))),
			c.cfg.MinWorkers, c.cfg.MaxWorkers)
	}
	if need >= c.active {
		c.quiet = 0
		return
	}
	c.quiet++
	if c.quiet < c.cfg.ShrinkAfter {
		return
	}
	c.quiet = 0
	target := c.active - 1
	if c.mode == Efficient {
		target = need
	}
	target = clamp(target, c.cfg.MinWorkers, c.cfg.MaxWorkers)
	if target < c.active {
		c.reason = fmt.Sprintf("drained x%d (arrival ~%.0f/s): shrink %d -> %d",
			c.cfg.ShrinkAfter, c.arrRate, c.active, target)
		c.active = target
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package governor

import (
	"strings"
	"testing"
	"time"
)

// tick advances a synthetic clock by step and feeds the controller a
// window with the given arrival/service totals.
type trace struct {
	t    *testing.T
	c    *Controller
	now  time.Time
	ing  int64
	proc int64
}

func newTrace(t *testing.T, cfg Config) *trace {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &trace{t: t, c: c, now: time.Unix(0, 0)}
}

func (tr *trace) tick(arrived, processed int64, backlog int) Decision {
	tr.now = tr.now.Add(time.Millisecond)
	tr.ing += arrived
	tr.proc += processed
	return tr.c.Tick(tr.now, Sample{
		Ingressed: tr.ing,
		Processed: tr.proc,
		Backlog:   backlog,
		Active:    tr.c.Decision().Active,
	})
}

func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{Balanced: "balanced", LowLatency: "low-latency", Efficient: "efficient", Mode(9): "governor(9)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
	for _, name := range []string{"balanced", "low-latency", "efficient"} {
		m, err := ParseMode(name)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", name, err)
		}
		if m.String() != name {
			t.Errorf("round trip %q -> %v", name, m)
		}
	}
	if _, err := ParseMode("turbo"); err == nil {
		t.Error("ParseMode(turbo) should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("MaxWorkers=0 should be rejected")
	}
	if _, err := New(Config{MaxWorkers: 2, MinWorkers: 3}); err == nil {
		t.Error("MinWorkers > MaxWorkers should be rejected")
	}
	if _, err := New(Config{MaxWorkers: 2, AlphaMin: 0.9, AlphaMax: 0.1}); err == nil {
		t.Error("AlphaMin > AlphaMax should be rejected")
	}
	c, err := New(Config{MaxWorkers: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if d := c.Decision(); d.Active != 4 || d.MaxBatch != 1 || d.Alpha != 0.05 {
		t.Errorf("defaults: got %+v", d)
	}
}

func TestShrinkOnDrainedLoad(t *testing.T) {
	tr := newTrace(t, Config{MaxWorkers: 4, MaxBatch: 16, ShrinkAfter: 3})
	// Trickle load, always drained: the controller should step down one
	// worker per ShrinkAfter window until the floor.
	var d Decision
	for i := 0; i < 40; i++ {
		d = tr.tick(2, 2, 0)
	}
	if d.Active != 1 {
		t.Fatalf("drained trickle should shrink to MinWorkers=1, got %d (reason %q)", d.Active, d.Reason)
	}
	if !strings.Contains(d.Reason, "shrink") {
		t.Errorf("reason should describe the shrink, got %q", d.Reason)
	}
}

func TestGrowOnBacklogSpike(t *testing.T) {
	tr := newTrace(t, Config{MaxWorkers: 8, MaxBatch: 4, GrowBacklog: 8})
	var d Decision
	for i := 0; i < 40; i++ {
		d = tr.tick(2, 2, 0)
	}
	if d.Active != 1 {
		t.Fatalf("setup: want 1 active, got %d", d.Active)
	}
	// Burst: backlog way past GrowBacklog*active doubles per tick back
	// to the ceiling.
	d = tr.tick(5000, 100, 1000)
	if d.Active != 2 {
		t.Fatalf("first spike tick should double 1 -> 2, got %d", d.Active)
	}
	for i := 0; i < 3; i++ {
		d = tr.tick(5000, 100, 1000)
	}
	if d.Active != 8 {
		t.Fatalf("sustained spike should reach MaxWorkers=8, got %d", d.Active)
	}
	if !strings.Contains(d.Reason, "grow") {
		t.Errorf("reason should describe the growth, got %q", d.Reason)
	}
}

func TestShrinkHoldsAtEstimatedNeed(t *testing.T) {
	tr := newTrace(t, Config{MaxWorkers: 8, MaxBatch: 16, ShrinkAfter: 2})
	// Teach it per-worker capacity: 8 workers, backlogged, processing
	// 8000/s total => ~1000/s per worker.
	var d Decision
	for i := 0; i < 20; i++ {
		d = tr.tick(9, 8, 200)
	}
	if d.Active != 8 {
		t.Fatalf("backlogged plane must keep all workers, got %d", d.Active)
	}
	// Arrival settles at ~2000/s with no backlog: need ~= 2000/(1000*0.7)
	// = 3 workers; shrink should stop there, not at the floor.
	for i := 0; i < 60; i++ {
		d = tr.tick(2, 2, 0)
	}
	if d.Active < 2 || d.Active > 4 {
		t.Fatalf("shrink should hold near the estimated need (~3), got %d", d.Active)
	}
}

func TestEfficientShrinksInOneStep(t *testing.T) {
	cfg := Config{MaxWorkers: 8, MaxBatch: 16, ShrinkAfter: 2, Mode: Efficient}
	tr := newTrace(t, cfg)
	var d Decision
	// No capacity estimate (never backlogged): Efficient drops straight
	// to the floor after one quiet window.
	d = tr.tick(1, 1, 0)
	d = tr.tick(1, 1, 0)
	d = tr.tick(1, 1, 0)
	if d.Active != 1 {
		t.Fatalf("Efficient should release to MinWorkers in one step, got %d", d.Active)
	}
}

func TestLowLatencyPinsFullSet(t *testing.T) {
	tr := newTrace(t, Config{MaxWorkers: 4, Mode: LowLatency})
	var d Decision
	for i := 0; i < 30; i++ {
		d = tr.tick(0, 0, 0)
	}
	if d.Active != 4 {
		t.Fatalf("LowLatency must pin MaxWorkers active, got %d", d.Active)
	}
	// Live switch to Efficient: the set may now shrink.
	tr.c.SetMode(Efficient)
	for i := 0; i < 10; i++ {
		d = tr.tick(0, 0, 0)
	}
	if d.Active != 1 {
		t.Fatalf("after SetMode(Efficient) idle plane should shrink to 1, got %d", d.Active)
	}
	if tr.c.Mode() != Efficient {
		t.Errorf("Mode() = %v, want Efficient", tr.c.Mode())
	}
}

func TestBatchTracksArrivalRate(t *testing.T) {
	tr := newTrace(t, Config{MaxWorkers: 1, MaxBatch: 64, BatchHorizon: time.Millisecond})
	var d Decision
	for i := 0; i < 30; i++ {
		d = tr.tick(1, 1, 0) // 1000/s => ~1 item per 1ms horizon
	}
	if d.MaxBatch > 2 {
		t.Errorf("trickle load should tune batch near 1, got %d", d.MaxBatch)
	}
	for i := 0; i < 30; i++ {
		d = tr.tick(1000, 1000, 10) // 1M/s => horizon mass >> ceiling
	}
	if d.MaxBatch != 64 {
		t.Errorf("flood should tune batch to the ceiling, got %d", d.MaxBatch)
	}
}

func TestAlphaTracksBurstiness(t *testing.T) {
	tr := newTrace(t, Config{MaxWorkers: 2, AlphaMin: 0.1, AlphaMax: 0.9})
	var steady Decision
	for i := 0; i < 50; i++ {
		steady = tr.tick(100, 100, 0)
	}
	var bursty Decision
	for i := 0; i < 50; i++ {
		arr := int64(0)
		if i%2 == 0 {
			arr = 1000
		}
		bursty = tr.tick(arr, arr, 0)
	}
	if !(bursty.Alpha > steady.Alpha) {
		t.Errorf("alpha should stiffen under bursty arrivals: steady %.3f, bursty %.3f",
			steady.Alpha, bursty.Alpha)
	}
	for _, d := range []Decision{steady, bursty} {
		if d.Alpha < 0.1 || d.Alpha > 0.9 {
			t.Errorf("alpha %.3f outside configured bounds", d.Alpha)
		}
	}
}

func TestTickIgnoresClockGoingBackwards(t *testing.T) {
	c, err := New(Config{MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(10, 0)
	c.Tick(now, Sample{Active: 2})
	before := c.Decision()
	got := c.Tick(now.Add(-time.Second), Sample{Ingressed: 1 << 40, Active: 2})
	if got != before {
		t.Errorf("non-advancing clock must not change the decision: %+v vs %+v", got, before)
	}
}

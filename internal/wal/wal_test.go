package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, cfg Config) (*Log, *Recovery) {
	t.Helper()
	cfg.Dir = dir
	if cfg.Streams == 0 {
		cfg.Streams = 4
	}
	l, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func payload(i int) []byte { return []byte(fmt.Sprintf("payload-%04d", i)) }

// TestRoundtrip appends across streams, closes, reopens, and checks the
// replay set is exactly the un-acked records in append order.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Config{})
	if len(rec.Records) != 0 || rec.Corrupt {
		t.Fatalf("fresh dir recovery not empty: %+v", rec)
	}
	for i := 1; i <= 20; i++ {
		tenant := i % 4
		if err := l.Append(Record{Tenant: tenant, Seq: uint64((i + 3) / 4), MsgID: uint64(i), Payload: payload(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Ack stream 0 fully (seqs 1..5), stream 1 partially (seq 1 only).
	for s := uint64(1); s <= 5; s++ {
		l.Ack(0, s)
	}
	l.Ack(1, 1)
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir, Config{})
	defer l2.Close()
	if rec2.Corrupt {
		t.Fatalf("unexpected Corrupt")
	}
	for _, r := range rec2.Records {
		if r.Tenant == 0 {
			t.Fatalf("stream 0 fully acked but record %+v replayed", r)
		}
		if r.Tenant == 1 && r.Seq <= 1 {
			t.Fatalf("stream 1 acked through 1 but record %+v replayed", r)
		}
	}
	// Streams 2 and 3 contributed 5 records each, stream 1 has 4 left.
	want := 5 + 5 + 4
	if len(rec2.Records) != want {
		t.Fatalf("replay set: got %d records, want %d", len(rec2.Records), want)
	}
	// Append order preserved per stream.
	lastSeq := map[int]uint64{}
	for _, r := range rec2.Records {
		if r.Seq <= lastSeq[r.Tenant] {
			t.Fatalf("replay out of order for tenant %d: %d after %d", r.Tenant, r.Seq, lastSeq[r.Tenant])
		}
		lastSeq[r.Tenant] = r.Seq
	}
	if got := rec2.MaxSeq[2]; got != 5 {
		t.Fatalf("MaxSeq[2] = %d, want 5", got)
	}
	if got := rec2.Acked[0]; got != 5 {
		t.Fatalf("Acked[0] = %d, want 5", got)
	}
	// New appends continue above MaxSeq without clashing.
	if err := l2.Append(Record{Tenant: 2, Seq: rec2.MaxSeq[2] + 1, Payload: []byte("next")}); err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
}

// TestDurableWatermark checks Durable advances only after a commit.
func TestDurableWatermark(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Config{FsyncEvery: time.Hour}) // no background ticks
	defer l.Close()
	if err := l.Append(Record{Tenant: 0, Seq: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if got := l.Durable(0); got != 0 {
		t.Fatalf("Durable before Sync = %d, want 0", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Durable(0); got != 1 {
		t.Fatalf("Durable after Sync = %d, want 1", got)
	}
}

// TestOutOfOrderAck holds acks above a gap until it closes.
func TestOutOfOrderAck(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Config{})
	defer l.Close()
	for s := uint64(1); s <= 4; s++ {
		if err := l.Append(Record{Tenant: 0, Seq: s, Payload: payload(int(s))}); err != nil {
			t.Fatal(err)
		}
	}
	l.Ack(0, 3)
	l.Ack(0, 2)
	if got := l.Acked(0); got != 0 {
		t.Fatalf("Acked = %d before gap closes, want 0", got)
	}
	l.Ack(0, 1)
	if got := l.Acked(0); got != 3 {
		t.Fatalf("Acked = %d after gap closes, want 3", got)
	}
	l.Ack(0, 4)
	if got := l.Acked(0); got != 4 {
		t.Fatalf("Acked = %d, want 4", got)
	}
}

// TestRotationTruncation drives rotation with small segments and checks
// fully-acked segments are unlinked.
func TestRotationTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Config{Streams: 1, SegmentBytes: 512, FsyncEvery: time.Hour})
	big := make([]byte, 200)
	for s := uint64(1); s <= 12; s++ {
		if err := l.Append(Record{Tenant: 0, Seq: s, MsgID: s, Payload: big}); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatalf("expected rotations, got %+v", st)
	}
	for s := uint64(1); s <= 12; s++ {
		l.Ack(0, s)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// One more commit cycle so truncation (which runs after the ack
	// records are durably persisted) can unlink old segments.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Truncated == 0 {
		t.Fatalf("expected truncated segments, got %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// After full ack nothing replays.
	l2, rec := openT(t, dir, Config{Streams: 1})
	defer l2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("replayed %d records after full ack", len(rec.Records))
	}
	if rec.MaxSeq[0] < 12 && rec.Acked[0] != 12 {
		t.Fatalf("watermark lost: %+v", rec)
	}
}

// TestDroppedBasePersists checks NoteDropped survives reopen.
func TestDroppedBasePersists(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Config{Streams: 2})
	l.NoteDropped(1, 7)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Config{Streams: 2})
	defer l2.Close()
	if rec.DroppedBase[1] != 7 {
		t.Fatalf("DroppedBase[1] = %d, want 7", rec.DroppedBase[1])
	}
}

// TestTornTail truncates the newest segment mid-record: recovery must
// stop at the last valid record without flagging corruption.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Config{Streams: 1})
	for s := uint64(1); s <= 5; s++ {
		if err := l.Append(Record{Tenant: 0, Seq: s, Payload: payload(int(s))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the newest non-empty segment mid-way through the last record.
	path := newestSegment(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Config{Streams: 1})
	defer l2.Close()
	if rec.Corrupt {
		t.Fatalf("torn tail in newest segment must not flag Corrupt")
	}
	if len(rec.Records) != 4 {
		t.Fatalf("got %d records after torn tail, want 4", len(rec.Records))
	}
	if rec.MaxSeq[0] != 4 {
		t.Fatalf("MaxSeq = %d, want 4", rec.MaxSeq[0])
	}
}

// TestBitFlip corrupts a byte inside a middle record: recovery stops
// before it and keeps the earlier records.
func TestBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Config{Streams: 1})
	for s := uint64(1); s <= 5; s++ {
		if err := l.Append(Record{Tenant: 0, Seq: s, Payload: payload(int(s))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := newestSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := headerSize + len(payload(1))
	data[2*recLen+headerSize] ^= 0x40 // flip a payload byte of record 3
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Config{Streams: 1})
	defer l2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("got %d records after bit flip, want 2", len(rec.Records))
	}
}

// TestSeenIDs returns the trailing message-id window per stream.
func TestSeenIDs(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Config{Streams: 1, SeenWindow: 3})
	for s := uint64(1); s <= 5; s++ {
		if err := l.Append(Record{Tenant: 0, Seq: s, MsgID: 100 + s, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Config{Streams: 1, SeenWindow: 3})
	defer l2.Close()
	want := []uint64{103, 104, 105}
	if len(rec.SeenIDs[0]) != len(want) {
		t.Fatalf("SeenIDs = %v, want %v", rec.SeenIDs[0], want)
	}
	for i, id := range want {
		if rec.SeenIDs[0][i] != id {
			t.Fatalf("SeenIDs = %v, want %v", rec.SeenIDs[0], want)
		}
	}
}

// TestStickyError: a failing fsync poisons the log; later appends and
// syncs surface the error instead of pretending durability.
func TestStickyError(t *testing.T) {
	hook := &failFsync{}
	l, _ := openT(t, t.TempDir(), Config{Streams: 1, FsyncEvery: time.Hour, Hook: hook})
	defer l.Close()
	if err := l.Append(Record{Tenant: 0, Seq: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err == nil {
		t.Fatalf("Sync with failing fsync must error")
	}
	if err := l.Append(Record{Tenant: 0, Seq: 2, Payload: []byte("x")}); err == nil {
		t.Fatalf("Append after sticky error must fail")
	}
	if got := l.Durable(0); got != 0 {
		t.Fatalf("Durable advanced past failed fsync: %d", got)
	}
}

type failFsync struct{}

func (failFsync) Write(b []byte) ([]byte, error) { return b, nil }
func (failFsync) Fsync(func() error) error       { return fmt.Errorf("injected fsync failure") }

// TestAppendAllocs pins the zero-allocation durable append hot path: once
// the commit buffer has warmed to the working-set size, Append and
// AppendBatch allocate nothing.
func TestAppendAllocs(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Config{Streams: 1, FsyncEvery: time.Hour})
	defer l.Close()
	p := make([]byte, 64)
	recs := make([]Record, 16)
	for i := range recs {
		recs[i] = Record{Tenant: 0, Payload: p}
	}
	seq := uint64(0)
	warm := func() {
		for i := range recs {
			seq++
			recs[i].Seq = seq
			recs[i].MsgID = seq
		}
		if err := l.AppendBatch(recs); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the buffer, drain it through a commit, then measure against
	// the recycled (spare) buffer — the steady state.
	for i := 0; i < 64; i++ {
		warm()
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, warm); avg != 0 {
		t.Fatalf("AppendBatch allocates %.1f/op at steady state, want 0", avg)
	}
	single := func() {
		seq++
		if err := l.Append(Record{Tenant: 0, Seq: seq, MsgID: seq, Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(50, single); avg != 0 {
		t.Fatalf("Append allocates %.1f/op at steady state, want 0", avg)
	}
}

// TestRecordEncodeDecode round-trips the wire format directly.
func TestRecordEncodeDecode(t *testing.T) {
	buf := appendRecord(nil, kindData, 3, 42, 99, []byte("hello"))
	buf = appendRecord(buf, kindAck, 1, 7, 13, nil)
	var got []struct {
		kind     byte
		tenant   int
		seq, aux uint64
		payload  string
	}
	ok := scanSegment(buf, 8, func(kind byte, tenant int, seq, aux uint64, payload []byte) {
		got = append(got, struct {
			kind     byte
			tenant   int
			seq, aux uint64
			payload  string
		}{kind, tenant, seq, aux, string(payload)})
	})
	if !ok || len(got) != 2 {
		t.Fatalf("scan: ok=%v n=%d", ok, len(got))
	}
	if got[0].kind != kindData || got[0].tenant != 3 || got[0].seq != 42 || got[0].aux != 99 || got[0].payload != "hello" {
		t.Fatalf("data record mismatch: %+v", got[0])
	}
	if got[1].kind != kindAck || got[1].tenant != 1 || got[1].seq != 7 || got[1].aux != 13 {
		t.Fatalf("ack record mismatch: %+v", got[1])
	}
	// Garbage length field stops the scan without panic.
	bad := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(bad[4:8], 1<<30)
	n := 0
	if scanSegment(bad, 8, func(byte, int, uint64, uint64, []byte) { n++ }) || n != 0 {
		t.Fatalf("garbage length accepted: n=%d", n)
	}
}

func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	sort.Strings(matches)
	// Newest non-empty (Close leaves a fresh empty segment behind the
	// data-bearing one only when reopened; pick the last with size > 0).
	for i := len(matches) - 1; i >= 0; i-- {
		if info, err := os.Stat(matches[i]); err == nil && info.Size() > 0 {
			return matches[i]
		}
	}
	t.Fatalf("all segments empty in %s", dir)
	return ""
}

// Package wal is the durable tier's write-ahead log: a single segmented,
// group-committed log shared by every tenant stream of a data plane.
//
// The design rides the same batch-append shape as the runtime rings
// (queue.PushBatch): producers encode whole record batches into an
// in-memory commit buffer under one short mutex hold — no allocation, no
// file I/O on the append path — and a background committer flushes and
// fsyncs the accumulated buffer once per group-commit window
// (Config.FsyncEvery). Durability is therefore batched exactly like the
// paper's doorbell coalescing: one fsync amortizes across every record
// appended in the window, and Durable/Sync expose the watermark producers
// gate their acks on.
//
// Consumption is acknowledged per tenant stream as a contiguous watermark
// (Ack); watermarks are persisted as ack records piggybacked on the next
// group commit, and whole segments are unlinked once every stream's
// records in them sit below the durably persisted watermark — the
// ack-then-truncate half of the persist→enqueue→ack→truncate lifecycle
// (DESIGN.md §12).
//
// Recovery (Open on a non-empty directory) scans segments in order,
// verifies each record's CRC, and stops cleanly at the first invalid
// record — a torn tail from a crash mid-write never panics and never
// replays garbage. It returns the un-acked records in append order for
// the plane to replay through normal ingress, plus the per-stream seq,
// watermark, and dedup-seed state the runtime continues from.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record kinds.
const (
	kindData = 1 // Aux = message id, Payload = item bytes
	kindAck  = 2 // Seq = acked watermark, Aux = cumulative dropped count
)

// Record layout (little endian):
//
//	[0:4)   crc32c over bytes [4:29+len)
//	[4:8)   payload length (u32)
//	[8:9)   kind (u8)
//	[9:13)  tenant (u32)
//	[13:21) seq (u64)
//	[21:29) aux (u64; msg id for data, dropped count for ack)
//	[29:..) payload
const headerSize = 29

// maxPayload bounds a single record; anything larger in a scanned segment
// is treated as corruption (recovery stops there).
const maxPayload = 1 << 28

// Defaults for Config zero values.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultFsyncEvery   = 2 * time.Millisecond
	DefaultSeenWindow   = 4096
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

// Hook intercepts the committer's file operations for fault injection
// (internal/fault.WAL implements it). Write may shorten the buffer (a
// torn write) and/or return an error (a simulated crash); Fsync wraps the
// real fsync and may skip or fail it. A nil Hook is the production path.
type Hook interface {
	// Write is given the bytes about to be written and returns the bytes
	// to actually write (a prefix simulates a torn write) and an error to
	// sticky-fail the log (a simulated crash).
	Write(b []byte) ([]byte, error)
	// Fsync wraps the real fsync call.
	Fsync(do func() error) error
}

// Config describes a log.
type Config struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// Streams is the number of tenant streams (records carry a stream id
	// in [0, Streams)).
	Streams int
	// SegmentBytes rotates the current segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int
	// FsyncEvery is the group-commit window: appended records become
	// durable at the next window tick (or a forced Sync). Default 2ms.
	FsyncEvery time.Duration
	// SeenWindow bounds the per-stream message-id history recovery
	// returns for dedup seeding (default 4096).
	SeenWindow int
	// Hook, when non-nil, intercepts file writes and fsyncs (fault
	// injection in tests).
	Hook Hook
}

// Record is one logical log entry: a payload appended for a tenant
// stream under a stream-monotone sequence number, tagged with the
// producer's message id (0 = anonymous, exempt from dedup).
type Record struct {
	Tenant  int
	Seq     uint64
	MsgID   uint64
	Payload []byte
}

// Stats counts log activity.
type Stats struct {
	Appends       int64 // data records appended
	Acks          int64 // Ack calls that advanced state
	Fsyncs        int64 // group commits that reached the disk
	AppendedBytes int64 // bytes written to segment files
	Rotations     int64 // segment rotations
	Truncated     int64 // segments unlinked after full acknowledgment
	Segments      int   // segments currently on disk (incl. current)
}

// Recovery is the state Open reconstructs from an existing directory.
type Recovery struct {
	// Records holds every record appended but not durably acked, in
	// append order across streams — the replay set.
	Records []Record
	// MaxSeq is the highest seq seen per stream (0 = none); new appends
	// must continue above it.
	MaxSeq []uint64
	// Acked is the durably persisted ack watermark per stream.
	Acked []uint64
	// DroppedBase is the persisted cumulative dropped count per stream.
	DroppedBase []uint64
	// SeenIDs is the trailing window of non-zero message ids per stream
	// in append order (acked or not) — the dedup window seed.
	SeenIDs [][]uint64
	// Corrupt reports that the scan stopped at an invalid record before
	// the end of the newest segment (data after it was not replayed). A
	// torn tail in the newest segment is normal crash damage and does
	// not set it.
	Corrupt bool
}

// stream is one tenant's log state. appended/acked/pending/dropped/dirty
// are guarded by Log.mu; durable is published by the committer.
type stream struct {
	appended uint64              // last appended seq
	acked    uint64              // contiguous ack watermark
	pending  map[uint64]struct{} // acks above the watermark
	dropped  uint64              // cumulative dropped count to persist
	dirty    bool                // ack/dropped changed since last persisted
	durable  atomic.Uint64       // highest seq covered by a completed fsync
}

// segment is one closed on-disk segment.
type segment struct {
	path    string
	lastSeq []uint64 // per stream: no record in this or an earlier segment exceeds it
}

// Log is a running write-ahead log. Append/Ack/Durable/Sync are safe for
// concurrent use; one background goroutine owns all file I/O.
type Log struct {
	cfg Config

	mu      sync.Mutex
	buf     []byte // records encoded since the last commit
	spare   []byte // double buffer the committer swaps in
	streams []stream
	err     error // sticky failure: all writes since are refused
	closed  bool

	// committer-owned (no lock needed beyond the handoff above)
	cur        *os.File
	curIdx     uint64
	curSize    int64
	closedSegs []segment
	flushedSeq []uint64 // per stream: last seq written to a segment file
	persisted  []uint64 // per stream: ack watermark durably on disk
	dirtyList  []int    // scratch: streams whose ack record went into this commit
	ackSnap    []uint64 // scratch: the watermark each dirty stream persisted
	appendSnap []uint64 // scratch: appended seqs covered by this commit

	stopCh chan struct{}
	doneCh chan struct{}
	syncCh chan chan error

	appends   atomic.Int64
	acks      atomic.Int64
	fsyncs    atomic.Int64
	bytes     atomic.Int64
	rotations atomic.Int64
	truncated atomic.Int64
	segCount  atomic.Int64
}

// Open opens (or creates) the log in cfg.Dir, scans any existing
// segments, and starts the group committer. The returned Recovery holds
// the replay set and per-stream state; on a fresh directory it is empty.
func Open(cfg Config) (*Log, *Recovery, error) {
	if cfg.Streams < 1 {
		return nil, nil, fmt.Errorf("wal: Streams must be positive, got %d", cfg.Streams)
	}
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Dir must be set")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = DefaultFsyncEvery
	}
	if cfg.SeenWindow <= 0 {
		cfg.SeenWindow = DefaultSeenWindow
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	rec, segs, lastIdx, err := scanDir(cfg)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{
		cfg:        cfg,
		streams:    make([]stream, cfg.Streams),
		closedSegs: segs,
		flushedSeq: make([]uint64, cfg.Streams),
		persisted:  make([]uint64, cfg.Streams),
		ackSnap:    make([]uint64, cfg.Streams),
		appendSnap: make([]uint64, cfg.Streams),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
		syncCh:     make(chan chan error),
	}
	for t := range l.streams {
		s := &l.streams[t]
		s.appended = rec.MaxSeq[t]
		s.acked = rec.Acked[t]
		s.dropped = rec.DroppedBase[t]
		s.pending = make(map[uint64]struct{})
		s.durable.Store(rec.MaxSeq[t]) // scanned segments are on disk
		l.flushedSeq[t] = rec.MaxSeq[t]
		l.persisted[t] = rec.Acked[t]
	}
	// Never append to an existing segment: its tail may be torn, and
	// records behind a torn tail would be unreachable to recovery. A
	// fresh segment starts clean.
	l.curIdx = lastIdx + 1
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	l.segCount.Store(int64(len(l.closedSegs) + 1))
	go l.run()
	return l, rec, nil
}

// segPath names segment files so lexical order is scan order.
func segPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016d.wal", idx))
}

// openSegment creates the current segment file and fsyncs the directory
// so the file name survives a crash.
func (l *Log) openSegment() error {
	f, err := os.OpenFile(segPath(l.cfg.Dir, l.curIdx), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	l.curSize = 0
	syncDir(l.cfg.Dir)
	return nil
}

// syncDir fsyncs a directory (best effort: some filesystems refuse).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// appendRecord encodes one record into buf and returns the extended
// buffer. Allocation-free once buf has warmed to the working-set size.
func appendRecord(buf []byte, kind byte, tenant uint32, seq, aux uint64, payload []byte) []byte {
	var hdr [headerSize]byte
	off := len(buf)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	b := buf[off:]
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(payload)))
	b[8] = kind
	binary.LittleEndian.PutUint32(b[9:13], tenant)
	binary.LittleEndian.PutUint64(b[13:21], seq)
	binary.LittleEndian.PutUint64(b[21:29], aux)
	binary.LittleEndian.PutUint32(b[0:4], crc32.Checksum(b[4:], crcTable))
	return buf
}

// Append appends one data record. The record is durable once a group
// commit covering it completes (Durable(tenant) >= seq, or after Sync).
// Seqs must be monotone per stream; the caller owns assignment (the
// dataplane continues from Recovery.MaxSeq).
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	if err := l.appendLocked(r); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	l.appends.Add(1)
	return nil
}

// AppendBatch appends a batch of data records under one lock hold — the
// group-commit analogue of queue.PushBatch. Allocation-free at steady
// state.
func (l *Log) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	for i := range recs {
		if err := l.appendLocked(recs[i]); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	l.mu.Unlock()
	l.appends.Add(int64(len(recs)))
	return nil
}

func (l *Log) appendLocked(r Record) error {
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if r.Tenant < 0 || r.Tenant >= len(l.streams) {
		return fmt.Errorf("wal: tenant %d out of range [0,%d)", r.Tenant, len(l.streams))
	}
	if len(r.Payload) > maxPayload {
		return fmt.Errorf("wal: payload %d exceeds max %d", len(r.Payload), maxPayload)
	}
	l.buf = appendRecord(l.buf, kindData, uint32(r.Tenant), r.Seq, r.MsgID, r.Payload)
	if s := &l.streams[r.Tenant]; r.Seq > s.appended {
		s.appended = r.Seq
	}
	return nil
}

// Ack marks one record consumed. Acks advance a contiguous per-stream
// watermark: out-of-order acks are held until the gap below them closes.
// The watermark is persisted by the next group commit; records at or
// below a persisted watermark are never replayed, and segments whose
// records all sit below it are unlinked.
func (l *Log) Ack(tenant int, seq uint64) {
	if tenant < 0 || tenant >= len(l.streams) || seq == 0 {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	s := &l.streams[tenant]
	switch {
	case seq <= s.acked:
		l.mu.Unlock()
		return
	case seq == s.acked+1:
		s.acked = seq
		for {
			if _, ok := s.pending[s.acked+1]; !ok {
				break
			}
			delete(s.pending, s.acked+1)
			s.acked++
		}
	default:
		s.pending[seq] = struct{}{}
	}
	s.dirty = true
	l.mu.Unlock()
	l.acks.Add(1)
}

// NoteDropped records the stream's cumulative dropped-item count for
// persistence alongside the ack watermark, so drop accounting stays
// monotone across crash and recovery.
func (l *Log) NoteDropped(tenant int, total uint64) {
	if tenant < 0 || tenant >= len(l.streams) {
		return
	}
	l.mu.Lock()
	if s := &l.streams[tenant]; !l.closed && total > s.dropped {
		s.dropped = total
		s.dirty = true
	}
	l.mu.Unlock()
}

// Durable returns the highest seq of the stream covered by a completed
// group commit — the producer-side durability watermark.
func (l *Log) Durable(tenant int) uint64 {
	if tenant < 0 || tenant >= len(l.streams) {
		return 0
	}
	return l.streams[tenant].durable.Load()
}

// Acked returns the stream's in-memory contiguous ack watermark.
func (l *Log) Acked(tenant int) uint64 {
	if tenant < 0 || tenant >= len(l.streams) {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.streams[tenant].acked
}

// Appended returns the stream's last appended seq.
func (l *Log) Appended(tenant int) uint64 {
	if tenant < 0 || tenant >= len(l.streams) {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.streams[tenant].appended
}

// Sync forces a group commit now and blocks until everything appended
// before the call is durable (or the log has failed).
func (l *Log) Sync() error {
	ch := make(chan error, 1)
	select {
	case l.syncCh <- ch:
		return <-ch
	case <-l.doneCh:
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.err != nil {
			return l.err
		}
		return ErrClosed
	}
}

// Close performs a final commit and releases the segment files. It is
// idempotent; Append/Ack after Close are refused/ignored.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.doneCh
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stopCh)
	<-l.doneCh
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns a snapshot of log activity counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:       l.appends.Load(),
		Acks:          l.acks.Load(),
		Fsyncs:        l.fsyncs.Load(),
		AppendedBytes: l.bytes.Load(),
		Rotations:     l.rotations.Load(),
		Truncated:     l.truncated.Load(),
		Segments:      int(l.segCount.Load()),
	}
}

// run is the group committer: one commit per FsyncEvery tick, plus
// forced commits for Sync callers, plus a final commit at Close.
func (l *Log) run() {
	defer close(l.doneCh)
	t := time.NewTicker(l.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopCh:
			l.commit(nil)
			_ = l.cur.Close()
			return
		case <-t.C:
			l.commit(nil)
		case ch := <-l.syncCh:
			l.commit(ch)
		}
	}
}

// commit flushes the append buffer (plus ack records for dirty streams)
// to the current segment, fsyncs, publishes the durable watermarks, and
// truncates fully-acked segments. reply (a Sync caller) is answered once
// the commit's outcome is known.
func (l *Log) commit(reply chan error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		if reply != nil {
			reply <- err
		}
		return
	}
	l.dirtyList = l.dirtyList[:0]
	for t := range l.streams {
		s := &l.streams[t]
		if s.dirty {
			l.buf = appendRecord(l.buf, kindAck, uint32(t), s.acked, s.dropped, nil)
			s.dirty = false
			l.dirtyList = append(l.dirtyList, t)
			l.ackSnap[t] = s.acked
		}
		l.appendSnap[t] = s.appended
	}
	take := l.buf
	l.buf = l.spare[:0]
	l.mu.Unlock()

	if len(take) == 0 {
		// Nothing appended or acked since the last commit: the previous
		// fsync already covers everything.
		if reply != nil {
			reply <- nil
		}
		return
	}

	err := l.writeOut(take)
	if err == nil {
		err = l.fsync()
	}
	if err != nil {
		l.mu.Lock()
		l.err = err
		l.mu.Unlock()
		if reply != nil {
			reply <- err
		}
		return
	}
	l.fsyncs.Add(1)
	for t := range l.streams {
		l.streams[t].durable.Store(l.appendSnap[t])
		l.flushedSeq[t] = l.appendSnap[t]
	}
	for _, t := range l.dirtyList {
		l.persisted[t] = l.ackSnap[t]
	}
	l.mu.Lock()
	l.spare = take[:0]
	l.mu.Unlock()
	l.truncate()
	if reply != nil {
		reply <- nil
	}
}

// writeOut writes the commit buffer to the current segment, rotating
// first when the segment is full.
func (l *Log) writeOut(b []byte) error {
	if l.curSize > 0 && l.curSize+int64(len(b)) > int64(l.cfg.SegmentBytes) {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if l.cfg.Hook != nil {
		var err error
		b2, err := l.cfg.Hook.Write(b)
		if len(b2) > 0 {
			n, werr := l.cur.Write(b2)
			l.curSize += int64(n)
			l.bytes.Add(int64(n))
			if err == nil {
				err = werr
			}
		}
		return err
	}
	n, err := l.cur.Write(b)
	l.curSize += int64(n)
	l.bytes.Add(int64(n))
	return err
}

func (l *Log) fsync() error {
	if l.cfg.Hook != nil {
		return l.cfg.Hook.Fsync(l.cur.Sync)
	}
	return l.cur.Sync()
}

// rotate closes the current segment — snapshotting the per-stream upper
// seq bound that truncation checks against — and opens the next one.
func (l *Log) rotate() error {
	if err := l.cur.Sync(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return err
	}
	last := make([]uint64, len(l.flushedSeq))
	copy(last, l.flushedSeq)
	l.closedSegs = append(l.closedSegs, segment{
		path:    segPath(l.cfg.Dir, l.curIdx),
		lastSeq: last,
	})
	l.curIdx++
	if err := l.openSegment(); err != nil {
		return err
	}
	l.rotations.Add(1)
	l.segCount.Store(int64(len(l.closedSegs) + 1))
	return nil
}

// truncate unlinks leading closed segments whose records are all covered
// by durably persisted ack watermarks. The watermark records proving the
// coverage live in newer segments (the committer writes them before this
// runs), so a crash between unlink and anything else recovers correctly.
func (l *Log) truncate() {
	removed := 0
	for _, seg := range l.closedSegs {
		covered := true
		for t, last := range seg.lastSeq {
			if last > l.persisted[t] {
				covered = false
				break
			}
		}
		if !covered {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			break
		}
		removed++
	}
	if removed > 0 {
		l.closedSegs = l.closedSegs[removed:]
		syncDir(l.cfg.Dir)
		l.truncated.Add(int64(removed))
		l.segCount.Store(int64(len(l.closedSegs) + 1))
	}
}

// scanDir recovers state from an existing directory: segments in index
// order, each scanned to its first invalid record.
func scanDir(cfg Config) (*Recovery, []segment, uint64, error) {
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("wal: %w", err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal") {
			paths = append(paths, name)
		}
	}
	sort.Strings(paths)

	rec := &Recovery{
		MaxSeq:      make([]uint64, cfg.Streams),
		Acked:       make([]uint64, cfg.Streams),
		DroppedBase: make([]uint64, cfg.Streams),
		SeenIDs:     make([][]uint64, cfg.Streams),
	}
	seen := make([]*seenRing, cfg.Streams)
	for t := range seen {
		seen[t] = newSeenRing(cfg.SeenWindow)
	}

	var segs []segment
	var lastIdx uint64
	var all []Record
	stopped := false
	for pi, name := range paths {
		var idx uint64
		if _, err := fmt.Sscanf(name, "seg-%d.wal", &idx); err == nil && idx > lastIdx {
			lastIdx = idx
		}
		path := filepath.Join(cfg.Dir, name)
		if stopped {
			// An invalid record in an older segment poisons everything
			// after it: never replay records from beyond the damage.
			_ = os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("wal: %w", err)
		}
		valid := scanSegment(data, cfg.Streams, func(kind byte, tenant int, seq, aux uint64, payload []byte) {
			switch kind {
			case kindData:
				p := make([]byte, len(payload))
				copy(p, payload)
				all = append(all, Record{Tenant: tenant, Seq: seq, MsgID: aux, Payload: p})
				if seq > rec.MaxSeq[tenant] {
					rec.MaxSeq[tenant] = seq
				}
				if aux != 0 {
					seen[tenant].add(aux)
				}
			case kindAck:
				if seq > rec.Acked[tenant] {
					rec.Acked[tenant] = seq
				}
				if aux > rec.DroppedBase[tenant] {
					rec.DroppedBase[tenant] = aux
				}
			}
		})
		if !valid {
			stopped = true
			if pi < len(paths)-1 {
				rec.Corrupt = true
			}
		}
		last := make([]uint64, cfg.Streams)
		copy(last, rec.MaxSeq)
		segs = append(segs, segment{path: path, lastSeq: last})
	}

	// Replay set: records above each stream's persisted ack watermark.
	for _, r := range all {
		if r.Seq > rec.Acked[r.Tenant] {
			rec.Records = append(rec.Records, r)
		}
	}
	for t := range seen {
		rec.SeenIDs[t] = seen[t].ordered()
	}
	return rec, segs, lastIdx, nil
}

// scanSegment decodes records until the data runs out or a record fails
// validation; it reports whether the whole segment decoded cleanly.
func scanSegment(data []byte, streams int, visit func(kind byte, tenant int, seq, aux uint64, payload []byte)) bool {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return true
		}
		if len(rest) < headerSize {
			return false // torn header
		}
		size := int(binary.LittleEndian.Uint32(rest[4:8]))
		if size > maxPayload || headerSize+size > len(rest) {
			return false // torn or garbage length
		}
		recBytes := rest[:headerSize+size]
		if crc32.Checksum(recBytes[4:], crcTable) != binary.LittleEndian.Uint32(recBytes[0:4]) {
			return false // bit flip or torn payload
		}
		kind := recBytes[8]
		tenant := int(binary.LittleEndian.Uint32(recBytes[9:13]))
		if (kind != kindData && kind != kindAck) || tenant < 0 || tenant >= streams {
			return false
		}
		visit(kind, tenant,
			binary.LittleEndian.Uint64(recBytes[13:21]),
			binary.LittleEndian.Uint64(recBytes[21:29]),
			recBytes[headerSize:])
		off += headerSize + size
	}
}

// seenRing keeps the trailing window of message ids in insertion order.
type seenRing struct {
	buf []uint64
	pos int
	n   int
}

func newSeenRing(capacity int) *seenRing {
	return &seenRing{buf: make([]uint64, capacity)}
}

func (r *seenRing) add(id uint64) {
	r.buf[r.pos] = id
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *seenRing) ordered() []uint64 {
	if r.n == 0 {
		return nil
	}
	out := make([]uint64, 0, r.n)
	start := (r.pos - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

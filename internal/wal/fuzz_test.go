package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecover feeds arbitrary bytes to the segment scanner (the core
// of crash recovery): it must never panic, must stop at the first
// invalid record, and every record it does yield must re-encode to a
// byte-identical prefix of the input — i.e. recovery never replays
// garbage.
func FuzzWALRecover(f *testing.F) {
	// Seed corpus: empty, valid records, torn tails, bit flips.
	f.Add([]byte{})
	valid := appendRecord(nil, kindData, 1, 7, 42, []byte("seed-payload"))
	valid = appendRecord(valid, kindAck, 0, 3, 1, nil)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	f.Add(valid[:headerSize/2]) // torn header
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+2] ^= 0x10
	f.Add(flipped) // bit flip in first payload
	huge := appendRecord(nil, kindData, 0, 1, 0, bytes.Repeat([]byte{0xAB}, 300))
	f.Add(huge)

	const streams = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		var reenc []byte
		n := 0
		ok := scanSegment(data, streams, func(kind byte, tenant int, seq, aux uint64, payload []byte) {
			n++
			if tenant < 0 || tenant >= streams {
				t.Fatalf("scanner yielded out-of-range tenant %d", tenant)
			}
			if kind != kindData && kind != kindAck {
				t.Fatalf("scanner yielded unknown kind %d", kind)
			}
			reenc = appendRecord(reenc, kind, uint32(tenant), seq, aux, payload)
		})
		// Every yielded record must be exactly the bytes scanned: the
		// accepted prefix re-encodes byte-identically.
		if !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatalf("accepted prefix does not round-trip: %d records, %d bytes", n, len(reenc))
		}
		if ok && len(reenc) != len(data) {
			t.Fatalf("scanner reported clean but consumed %d of %d bytes", len(reenc), len(data))
		}
		if !ok && len(reenc) == len(data) {
			t.Fatalf("scanner reported dirty but consumed all %d bytes", len(data))
		}
	})
}

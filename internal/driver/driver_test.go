package driver

import (
	"errors"
	"testing"

	"hyperplane/internal/mem"
	"hyperplane/internal/monitor"
)

func newDriver(t *testing.T, entries int, banks int) (*Driver, Monitor) {
	t.Helper()
	cfg := monitor.DefaultConfig()
	cfg.Entries = entries
	var mon Monitor
	if banks > 1 {
		mon = monitor.NewBanked(banks, entries/banks, cfg)
	} else {
		mon = monitor.New(cfg)
	}
	d, err := New(mon, 1<<30, 1<<30+1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return d, mon
}

func TestConnectDisconnect(t *testing.T) {
	d, _ := newDriver(t, 64, 1)
	a, err := d.Connect(7)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d.DoorbellOf(7); !ok || got != a {
		t.Fatal("doorbell map")
	}
	if a != mem.LineOf(a) {
		t.Error("doorbell not line-aligned")
	}
	lo, hi := d.Range()
	if a < lo || a >= hi {
		t.Error("doorbell outside managed range")
	}
	if _, err := d.Connect(7); !errors.Is(err, ErrDuplicateQID) {
		t.Errorf("duplicate: %v", err)
	}
	if err := d.Disconnect(7); err != nil {
		t.Fatal(err)
	}
	if err := d.Disconnect(7); !errors.Is(err, ErrUnknownQID) {
		t.Errorf("double disconnect: %v", err)
	}
	if d.Connected() != 0 {
		t.Error("connected count")
	}
}

func TestAddressReuseAfterDisconnect(t *testing.T) {
	d, _ := newDriver(t, 64, 1)
	a1, _ := d.Connect(1)
	d.Disconnect(1)
	a2, err := d.Connect(2)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Errorf("freed doorbell %#x not reused (got %#x)", a1, a2)
	}
}

func TestConnectManyWithRetries(t *testing.T) {
	// Fill a 1024-entry set to 1000 queues: the driver must succeed for
	// every queue, transparently retrying on cuckoo conflicts.
	d, _ := newDriver(t, 1024, 1)
	seen := map[mem.Addr]bool{}
	for q := 0; q < 1000; q++ {
		a, err := d.Connect(q)
		if err != nil {
			t.Fatalf("connect %d: %v", q, err)
		}
		if seen[a] {
			t.Fatalf("doorbell %#x assigned twice", a)
		}
		seen[a] = true
	}
	if d.Connected() != 1000 {
		t.Fatalf("connected = %d", d.Connected())
	}
	t.Logf("conflict reallocations: %d", d.Retries())
}

func TestConnectBankedSpreads(t *testing.T) {
	d, mon := newDriver(t, 1024, 4)
	for q := 0; q < 800; q++ {
		if _, err := d.Connect(q); err != nil {
			t.Fatalf("connect %d: %v", q, err)
		}
	}
	b := mon.(*monitor.Banked)
	for bank, occ := range b.BankOccupancy() {
		if occ < 120 || occ > 280 {
			t.Errorf("bank %d occupancy %d badly skewed (fair 200)", bank, occ)
		}
	}
}

func TestRangeExhaustion(t *testing.T) {
	cfg := monitor.DefaultConfig()
	cfg.Entries = 64
	mon := monitor.New(cfg)
	// Only 4 doorbell lines available.
	d, err := New(mon, 0x1000, 0x1000+4*mem.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		if _, err := d.Connect(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Connect(99); !errors.Is(err, ErrExhausted) {
		t.Errorf("exhaustion: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	mon := monitor.New(monitor.DefaultConfig())
	if _, err := New(nil, 0, 100); err == nil {
		t.Error("nil monitor accepted")
	}
	if _, err := New(mon, 0x1000, 0x1000); err == nil {
		t.Error("empty range accepted")
	}
	// Unaligned bounds are normalized inward.
	d, err := New(mon, 0x1001, 0x1000+3*mem.LineSize-1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.Range()
	if lo != 0x1040 || hi != 0x1080 {
		t.Errorf("normalized range = [%#x, %#x)", lo, hi)
	}
}

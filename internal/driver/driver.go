// Package driver implements the control plane of Algorithm 1 in the
// HyperPlane paper: the privileged kernel-driver code that owns the
// reserved doorbell address range (QWAIT_init), allocates a doorbell per
// queue, and executes QWAIT-ADD with the reallocate-and-retry loop on
// cuckoo conflicts:
//
//	for all QIDs do
//	    do
//	        doorbell = allocate_address(doorbell_addr_range)
//	    while (QWAIT-ADD(QID, doorbell) == FAIL)
//	    doorbell_map[QID] = doorbell
//	end
//
// With a banked monitoring set the driver also spreads allocations across
// banks (paper §IV-A: "the driver must spread doorbell addresses across
// banks").
package driver

import (
	"errors"
	"fmt"

	"hyperplane/internal/mem"
	"hyperplane/internal/monitor"
)

// Monitor is the monitoring-set interface the driver programs; satisfied
// by both *monitor.Set and *monitor.Banked.
type Monitor interface {
	Add(qid int, doorbell mem.Addr) error
	Remove(doorbell mem.Addr) bool
}

// Driver errors.
var (
	ErrExhausted    = errors.New("driver: doorbell address range exhausted")
	ErrDuplicateQID = errors.New("driver: QID already connected")
	ErrUnknownQID   = errors.New("driver: QID not connected")
)

// Driver manages the reserved doorbell range for one monitoring set.
type Driver struct {
	mon      Monitor
	lo, hi   mem.Addr // [lo, hi), line-aligned
	next     mem.Addr
	freed    []mem.Addr
	doorbell map[int]mem.Addr
	retries  int64
}

// New creates a driver over the range [lo, hi) (QWAIT_init). Bounds are
// line-aligned outward/inward respectively.
func New(mon Monitor, lo, hi mem.Addr) (*Driver, error) {
	lo = mem.LineOf(lo + mem.LineSize - 1)
	hi = mem.LineOf(hi)
	if mon == nil {
		return nil, errors.New("driver: nil monitor")
	}
	if hi <= lo {
		return nil, fmt.Errorf("driver: empty doorbell range [%#x, %#x)", lo, hi)
	}
	return &Driver{
		mon:      mon,
		lo:       lo,
		hi:       hi,
		next:     lo,
		doorbell: make(map[int]mem.Addr),
	}, nil
}

// allocate hands out the next unused doorbell line.
func (d *Driver) allocate() (mem.Addr, bool) {
	if n := len(d.freed); n > 0 {
		a := d.freed[n-1]
		d.freed = d.freed[:n-1]
		return a, true
	}
	if d.next >= d.hi {
		return 0, false
	}
	a := d.next
	d.next += mem.LineSize
	return a, true
}

// Connect allocates a doorbell for qid and inserts it into the monitoring
// set, reallocating on cuckoo conflicts until placement succeeds (the
// Algorithm 1 control-plane loop). It returns the assigned doorbell.
func (d *Driver) Connect(qid int) (mem.Addr, error) {
	if _, dup := d.doorbell[qid]; dup {
		return 0, ErrDuplicateQID
	}
	var skipped []mem.Addr // conflicted addresses, recycled afterwards
	defer func() { d.freed = append(d.freed, skipped...) }()
	for {
		addr, ok := d.allocate()
		if !ok {
			return 0, ErrExhausted
		}
		err := d.mon.Add(qid, addr)
		switch {
		case err == nil:
			d.doorbell[qid] = addr
			return addr, nil
		case errors.Is(err, monitor.ErrConflict):
			// This address's buckets are full; try another. The address
			// stays usable for other queues that hash elsewhere.
			d.retries++
			skipped = append(skipped, addr)
		default:
			skipped = append(skipped, addr)
			return 0, err
		}
	}
}

// Disconnect removes qid's doorbell from the monitoring set and releases
// the address (tenant teardown; paper: QWAIT-REMOVE).
func (d *Driver) Disconnect(qid int) error {
	addr, ok := d.doorbell[qid]
	if !ok {
		return ErrUnknownQID
	}
	d.mon.Remove(addr)
	delete(d.doorbell, qid)
	d.freed = append(d.freed, addr)
	return nil
}

// DoorbellOf returns the doorbell assigned to qid.
func (d *Driver) DoorbellOf(qid int) (mem.Addr, bool) {
	a, ok := d.doorbell[qid]
	return a, ok
}

// Range returns the managed address range (for snoop filtering).
func (d *Driver) Range() (lo, hi mem.Addr) { return d.lo, d.hi }

// Connected returns the number of connected queues.
func (d *Driver) Connected() int { return len(d.doorbell) }

// Retries returns how many conflict reallocations occurred.
func (d *Driver) Retries() int64 { return d.retries }

package sim

import "testing"

func TestRunResumableAcrossHorizons(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * Nanosecond)
			ticks++
		}
	})
	e.Run(35 * Nanosecond)
	if ticks != 3 {
		t.Fatalf("ticks after first horizon = %d", ticks)
	}
	e.Run(200 * Nanosecond)
	if ticks != 10 {
		t.Fatalf("ticks after second horizon = %d", ticks)
	}
	e.Shutdown()
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run(MaxTime)
	// a's zero-length sleep must let b run before a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	recovered := false
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
				panic(errKilled) // unwind cooperatively after observing
			}
		}()
		p.Sleep(-Nanosecond)
	})
	e.Run(MaxTime)
	if !recovered {
		t.Fatal("negative sleep did not panic")
	}
}

func TestSignalFIFOOrder(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("fifo")
	var woken []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			// Stagger arrival so waiter order is deterministic.
			p.Sleep(Time(i) * Nanosecond)
			p.WaitSignal(s)
			woken = append(woken, i)
		})
	}
	e.At(100*Nanosecond, func() {
		for i := 0; i < 4; i++ {
			s.Fire(nil)
		}
	})
	e.Run(MaxTime)
	for i := range woken {
		if woken[i] != i {
			t.Fatalf("wake order = %v, want FIFO", woken)
		}
	}
}

func TestSignalFireDoesNotPreempt(t *testing.T) {
	// Fire from within a running process must not run the waiter inline.
	e := NewEngine()
	s := e.NewSignal("defer")
	var order []string
	e.Go("waiter", func(p *Proc) {
		p.WaitSignal(s)
		order = append(order, "waiter")
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(Nanosecond)
		s.Fire(nil)
		order = append(order, "firer-after-fire")
	})
	e.Run(MaxTime)
	if len(order) != 2 || order[0] != "firer-after-fire" {
		t.Fatalf("order = %v; Fire must not preempt the caller", order)
	}
}

func TestProcFinishedAndName(t *testing.T) {
	e := NewEngine()
	p := e.Go("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Error("name")
		}
		if p.Engine() != e {
			t.Error("engine")
		}
		p.Sleep(Nanosecond)
	})
	if p.Finished() {
		t.Error("finished before run")
	}
	e.Run(MaxTime)
	if !p.Finished() {
		t.Error("not finished after run")
	}
}

func TestShutdownTwice(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("x")
	e.Go("stuck", func(p *Proc) { p.WaitSignal(s) })
	e.Run(Microsecond)
	e.Shutdown()
	e.Shutdown() // idempotent
	if e.LiveProcs() != 0 {
		t.Error("procs after double shutdown")
	}
}

func TestCancelSleepViaShutdown(t *testing.T) {
	// A proc sleeping when Shutdown hits must unwind, and its pending
	// timer event must not fire afterwards.
	e := NewEngine()
	fired := false
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		fired = true
	})
	e.Run(Microsecond)
	e.Shutdown()
	if fired {
		t.Error("sleeper resumed after shutdown")
	}
}

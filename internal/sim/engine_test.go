package sim

import (
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{Nanosecond, "1ns"},
		{1500 * Nanosecond, "1.5us"},
		{Millisecond, "1ms"},
		{2 * Second, "2s"},
		{MaxTime, "inf"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromMicroseconds(2.5); got != 2500*Nanosecond {
		t.Errorf("FromMicroseconds(2.5) = %v", got)
	}
	if got := FromNanoseconds(0.5); got != 500*Picosecond {
		t.Errorf("FromNanoseconds(0.5) = %v", got)
	}
	if got := FromSeconds(1e-6); got != Microsecond {
		t.Errorf("FromSeconds(1e-6) = %v", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3.0 {
		t.Errorf("Microseconds = %v", got)
	}
}

func TestClock(t *testing.T) {
	c := NewClock(3.0) // 3 GHz -> 333ps period (rounded)
	if c.Period() != 333*Picosecond {
		t.Fatalf("period = %v, want 333ps", c.Period())
	}
	if got := c.Cycles(50); got != 50*333*Picosecond {
		t.Errorf("Cycles(50) = %v", got)
	}
	if got := c.ToCycles(Microsecond); got != 3003 {
		t.Errorf("ToCycles(1us) = %d", got)
	}
	c2 := NewClock(2.0)
	if c2.Period() != 500*Picosecond {
		t.Errorf("2GHz period = %v", c2.Period())
	}
}

func TestClockInvalidFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	e.At(10*Nanosecond, func() { order = append(order, 11) }) // FIFO tie-break
	end := e.Run(MaxTime)
	if end != 30*Nanosecond {
		t.Errorf("end time = %v", end)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100*Nanosecond, func() { fired = true })
	end := e.Run(50 * Nanosecond)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if end != 50*Nanosecond {
		t.Errorf("end = %v, want 50ns", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Resume past the event.
	end = e.Run(200 * Nanosecond)
	if !fired {
		t.Error("event did not fire on resumed run")
	}
	if end != 200*Nanosecond {
		t.Errorf("end = %v", end)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.After(10*Nanosecond, func() { fired = true })
	if id.Cancelled() {
		t.Error("fresh event reports cancelled")
	}
	e.Cancel(id)
	if !id.Cancelled() {
		t.Error("cancelled event does not report cancelled")
	}
	e.Cancel(id) // double-cancel is a no-op
	e.Run(MaxTime)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			e.Stop()
			return
		}
		e.After(Nanosecond, tick)
	}
	e.After(Nanosecond, tick)
	e.Run(MaxTime)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if !e.Stopped() {
		t.Error("engine not stopped")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run(MaxTime)
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Nanosecond)
			wakes = append(wakes, p.Now())
		}
	})
	e.Run(MaxTime)
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	if len(wakes) != 3 {
		t.Fatalf("wakes = %v", wakes)
	}
	for i := range want {
		if wakes[i] != want[i] {
			t.Errorf("wake %d = %v, want %v", i, wakes[i], want[i])
		}
	}
	if e.LiveProcs() != 0 {
		t.Errorf("live procs = %d", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var trace []string
	mk := func(name string, period Time) {
		e.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(period)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 10*Nanosecond)
	mk("b", 15*Nanosecond)
	e.Run(MaxTime)
	// a wakes at 10, 20, 30; b wakes at 15, 30, 45. At t=30 b's wake event
	// was scheduled earlier (at t=15) than a's (at t=20), so b runs first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalFire(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("work")
	var got any
	e.Go("waiter", func(p *Proc) {
		got = p.WaitSignal(s)
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		if !s.Fire(42) {
			t.Error("Fire found no waiter")
		}
	})
	e.Run(MaxTime)
	if got != 42 {
		t.Errorf("signal data = %v, want 42", got)
	}
}

func TestSignalTimeout(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	var ok bool
	var at Time
	e.Go("waiter", func(p *Proc) {
		_, ok = p.WaitSignalTimeout(s, 50*Nanosecond)
		at = p.Now()
	})
	e.Run(MaxTime)
	if ok {
		t.Error("wait did not time out")
	}
	if at != 50*Nanosecond {
		t.Errorf("timed out at %v", at)
	}
	if s.Waiters() != 0 {
		t.Errorf("stale waiters: %d", s.Waiters())
	}
}

func TestSignalTimeoutRace(t *testing.T) {
	// A fire and a timeout at the same instant: the fire is scheduled first
	// and must win; the stale timeout must not double-wake.
	e := NewEngine()
	s := e.NewSignal("race")
	wakes := 0
	var ok bool
	e.Go("waiter", func(p *Proc) {
		_, ok = p.WaitSignalTimeout(s, 50*Nanosecond)
		wakes++
	})
	e.At(50*Nanosecond, func() { s.Fire("x") })
	e.Run(MaxTime)
	if wakes != 1 {
		t.Fatalf("wakes = %d", wakes)
	}
	if !ok {
		t.Error("fire at deadline should win over timeout (scheduled first)")
	}
}

func TestSignalFireAll(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("broadcast")
	woken := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			p.WaitSignal(s)
			woken++
		})
	}
	e.At(10*Nanosecond, func() {
		if n := s.FireAll("go"); n != 5 {
			t.Errorf("FireAll woke %d", n)
		}
	})
	e.Run(MaxTime)
	if woken != 5 {
		t.Errorf("woken = %d", woken)
	}
}

func TestSignalFireNoWaiters(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("empty")
	if s.Fire(nil) {
		t.Error("Fire with no waiters returned true")
	}
	if n := s.FireAll(nil); n != 0 {
		t.Errorf("FireAll with no waiters woke %d", n)
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	cleaned := false
	e.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		p.WaitSignal(s)
		t.Error("stuck proc should never resume")
	})
	e.Run(Microsecond)
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs = %d", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Errorf("live procs after shutdown = %d", e.LiveProcs())
	}
	if !cleaned {
		t.Error("deferred cleanup did not run on kill")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		g := NewRNG(7, 0)
		var arrivals []Time
		e.Go("poisson", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(g.Exp(Microsecond))
				arrivals = append(arrivals, p.Now())
			}
		})
		e.Run(MaxTime)
		return arrivals
	}
	a, b := run(), run()
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(1, 0)
	b := NewRNG(1, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams collide %d/64 times", same)
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(42, 3)
	const n = 200000
	mean := 10 * Microsecond
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(g.Exp(mean))
	}
	got := sum / n / float64(Microsecond)
	if got < 9.8 || got > 10.2 {
		t.Errorf("empirical mean = %.3fus, want ~10us", got)
	}
}

func TestRNGNormalClamped(t *testing.T) {
	g := NewRNG(9, 4)
	for i := 0; i < 10000; i++ {
		if d := g.Normal(Nanosecond, 100*Nanosecond); d < 0 {
			t.Fatal("Normal returned negative duration")
		}
	}
}

package sim

// Signal is a broadcast/wake-one rendezvous for processes, analogous to a
// condition variable in virtual time. Processes block on it with
// Proc.WaitSignal; other simulation code wakes them with Fire or FireAll.
//
// Wake-ups are delivered through the event queue at the current instant, so
// firing a signal never runs another process in the middle of the caller.
type Signal struct {
	eng     *Engine
	name    string
	waiters []sigWaiter
}

type sigWaiter struct {
	p   *Proc
	gen uint64
}

// NewSignal creates a signal bound to the engine.
func (e *Engine) NewSignal(name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Waiters returns the number of processes currently blocked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Fire wakes the longest-waiting process, passing it data. It returns true
// if a waiter was woken, false if nobody was waiting (the signal is not
// latched: a Fire with no waiters is lost, exactly like a condition variable
// notify).
func (s *Signal) Fire(data any) bool {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		// Claim immediately so a timeout at the same instant cannot steal the
		// wake-up; deliver the dispatch through the event queue so firing
		// never runs another process in the middle of the caller.
		if !w.p.claim(w.gen) {
			continue
		}
		s.eng.At(s.eng.now, func() { w.p.dispatch(wakeMsg{data: data}) })
		return true
	}
	return false
}

// FireAll wakes every waiting process, passing each the same data. It returns
// the number of processes woken.
func (s *Signal) FireAll(data any) int {
	n := 0
	for len(s.waiters) > 0 {
		if s.Fire(data) {
			n++
		}
	}
	return n
}

// remove deletes p from the waiter list (after a timeout fired).
func (s *Signal) remove(p *Proc) {
	for i, w := range s.waiters {
		if w.p == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// WaitSignal blocks the process until the signal fires for it, returning the
// data passed to Fire/FireAll.
func (p *Proc) WaitSignal(s *Signal) any {
	data, _ := p.waitSignal(s, -1)
	return data
}

// WaitSignalTimeout blocks until the signal fires or d elapses. ok is false
// on timeout.
func (p *Proc) WaitSignalTimeout(s *Signal, d Time) (data any, ok bool) {
	return p.waitSignal(s, d)
}

func (p *Proc) waitSignal(s *Signal, d Time) (any, bool) {
	gen := p.nextGen()
	s.waiters = append(s.waiters, sigWaiter{p: p, gen: gen})
	var timeoutEv EventID
	if d >= 0 {
		timeoutEv = p.eng.After(d, func() {
			s.remove(p)
			p.tryWake(gen, wakeMsg{timeout: true})
		})
	}
	msg := p.park()
	if d >= 0 {
		p.eng.Cancel(timeoutEv)
	}
	return msg.data, !msg.timeout
}

package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a seeded random stream for a simulation. Distinct model components
// should draw from distinct streams (NewRNG with distinct stream ids) so that
// adding randomness in one component does not perturb another — a standard
// variance-reduction practice for simulation studies.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic stream derived from (seed, stream).
func NewRNG(seed, stream uint64) *RNG {
	// splitmix the pair so nearby seeds produce unrelated streams.
	s := seed
	s ^= stream * 0x9e3779b97f4a7c15
	return &RNG{r: rand.New(rand.NewPCG(splitmix(s), splitmix(s^0xda3e39cb94b95bdb)))}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed duration with the given mean,
// the inter-arrival time of a Poisson process. Mean must be positive.
func (g *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		panic("sim: Exp mean must be positive")
	}
	u := g.r.Float64()
	// Guard against log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := -math.Log(u) * float64(mean)
	if d > float64(math.MaxInt64)/2 {
		d = float64(math.MaxInt64) / 2
	}
	return Time(d)
}

// Normal returns a normally distributed duration clamped at zero.
func (g *RNG) Normal(mean, stddev Time) Time {
	d := g.r.NormFloat64()*float64(stddev) + float64(mean)
	if d < 0 {
		d = 0
	}
	return Time(d)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

package sim

import "errors"

// errKilled is panicked inside a process goroutine to unwind it when the
// engine shuts down. It never escapes the package.
var errKilled = errors.New("sim: process killed")

// wakeMsg carries the reason a parked process is resumed.
type wakeMsg struct {
	kill    bool
	timeout bool
	data    any
}

// Proc is a simulated process: a goroutine that runs cooperatively under the
// engine. At any instant at most one process (or event callback) executes, so
// process bodies need no synchronization and runs are deterministic.
//
// All Proc methods must be called from the process's own body.
type Proc struct {
	eng      *Engine
	name     string
	resume   chan wakeMsg
	yield    chan struct{}
	gen      uint64 // park generation; guards against stale wake-ups
	parked   bool
	claimed  bool // a waker has committed to waking this park generation
	finished bool
}

// Go starts a new process whose body begins executing at the current virtual
// time (after the caller returns to the engine).
func (e *Engine) Go(name string, body func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan wakeMsg),
		yield:  make(chan struct{}),
		parked: true,
	}
	e.procs++
	e.live = append(e.live, p)
	go func() {
		defer func() {
			p.finished = true
			p.eng.procs--
			r := recover()
			if r != nil && r != errKilled {
				// Re-panic on the engine goroutine would be nicer, but the
				// stack trace here is what identifies the bug.
				panic(r)
			}
			p.yield <- struct{}{}
		}()
		msg := <-p.resume
		if msg.kill {
			panic(errKilled)
		}
		body(p)
	}()
	startGen := p.gen
	e.At(e.now, func() { p.tryWake(startGen, wakeMsg{}) })
	return p
}

// dispatch hands control to the process until it parks again or finishes.
// It must run on the engine goroutine (inside an event callback).
func (p *Proc) dispatch(msg wakeMsg) {
	p.parked = false
	p.resume <- msg
	<-p.yield
}

// claim commits the caller to waking park generation gen. Exactly one waker
// can claim a given park; losers (e.g. a timeout racing a signal fire at the
// same instant) get false and must drop their wake-up.
func (p *Proc) claim(gen uint64) bool {
	if p.finished || !p.parked || p.gen != gen || p.claimed {
		return false
	}
	p.claimed = true
	return true
}

// tryWake resumes the process if it is still parked on generation gen and no
// other waker has claimed it. It must run on the engine goroutine.
func (p *Proc) tryWake(gen uint64, msg wakeMsg) {
	if !p.claim(gen) {
		return
	}
	p.dispatch(msg)
}

// park suspends the process until some waker dispatches it.
func (p *Proc) park() wakeMsg {
	p.parked = true
	p.claimed = false
	p.gen++
	p.yield <- struct{}{}
	msg := <-p.resume
	if msg.kill {
		panic(errKilled)
	}
	return msg
}

// nextGen returns the generation the next park will have; wakers registered
// before parking must capture it.
func (p *Proc) nextGen() uint64 { return p.gen + 1 }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		// Still yield through the event queue so same-time events interleave
		// fairly.
		d = 0
	}
	gen := p.nextGen()
	p.eng.After(d, func() { p.tryWake(gen, wakeMsg{}) })
	p.park()
}

// Finished reports whether the process body has returned.
func (p *Proc) Finished() bool { return p.finished }

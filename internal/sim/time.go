// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine replaces the gem5 full-system simulation used by the HyperPlane
// paper (MICRO 2020). It offers picosecond-resolution virtual time, an event
// heap, and a cooperative process model in which each simulated actor (a data
// plane core, a traffic source, an I/O device) runs as a goroutine that is
// scheduled one-at-a-time by the engine, making runs fully deterministic for
// a given seed.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in (or duration of) virtual time, in picoseconds.
//
// Picoseconds let us represent sub-nanosecond quantities such as clock cycles
// at multi-GHz frequencies and the paper's 12.25 ns ready-set latency without
// floating-point drift.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable Time; used as an "infinite" deadline.
const MaxTime = Time(math.MaxInt64)

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "inf"
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromNanoseconds converts a floating-point nanosecond count to Time,
// rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	return Time(math.Round(ns * float64(Nanosecond)))
}

// FromMicroseconds converts a floating-point microsecond count to Time.
func FromMicroseconds(us float64) Time {
	return Time(math.Round(us * float64(Microsecond)))
}

// FromSeconds converts a floating-point second count to Time.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// Clock converts between CPU cycles and Time at a fixed frequency.
type Clock struct {
	period Time // picoseconds per cycle
}

// NewClock returns a Clock running at the given frequency in GHz.
// A 3 GHz clock has a period of 333 ps (rounded).
func NewClock(freqGHz float64) Clock {
	if freqGHz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return Clock{period: Time(math.Round(1000.0 / freqGHz))}
}

// Period returns the duration of one cycle.
func (c Clock) Period() Time { return c.period }

// Cycles returns the duration of n cycles.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.period }

// ToCycles converts a duration to a (truncated) cycle count.
func (c Clock) ToCycles(t Time) int64 {
	if c.period == 0 {
		return 0
	}
	return int64(t / c.period)
}

// FreqGHz reports the clock frequency in GHz.
func (c Clock) FreqGHz() float64 { return 1000.0 / float64(c.period) }

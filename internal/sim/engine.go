package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback in virtual time.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
	idx int // heap index; -1 when cancelled or popped
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Cancelled reports whether the event has already fired or been cancelled.
func (id EventID) Cancelled() bool { return id.ev == nil || id.ev.idx < 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulation engine.
//
// All access to an Engine must happen from simulation context: either from
// event callbacks or from processes started with Go. The engine runs exactly
// one process or callback at a time, so no additional synchronization is
// needed inside simulation code.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   int // live (not yet finished) processes
	live    []*Proc
	stopped bool
	running bool
}

// NewEngine returns an engine with virtual time at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a modelling bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return EventID{ev: ev}
}

// After schedules fn to run after delay d.
func (e *Engine) After(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.ev == nil || id.ev.idx < 0 {
		return
	}
	heap.Remove(&e.events, id.ev.idx)
	id.ev.idx = -1
}

// Stop ends the simulation: Run returns once the current callback or process
// step completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events in time order until the horizon is reached, Stop is
// called, or no events remain. It returns the virtual time at which the run
// ended. Run(MaxTime) runs to quiescence.
func (e *Engine) Run(horizon Time) Time {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.events) > 0 {
		next := e.events[0]
		if next.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
	}
	if e.now < horizon && horizon != MaxTime {
		e.now = horizon
	}
	return e.now
}

// Pending returns the number of scheduled events (for tests and diagnostics).
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs returns the number of processes whose bodies have not returned.
func (e *Engine) LiveProcs() int { return e.procs }

// Shutdown unwinds every live process goroutine. It must be called after Run
// returns (never from simulation context) and is required before discarding
// an engine whose processes may still be parked, to avoid leaking goroutines
// across many simulation runs.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown called from simulation context")
	}
	for _, p := range e.live {
		if !p.finished && p.parked {
			p.dispatch(wakeMsg{kill: true})
		}
	}
	e.live = nil
	e.events = nil
}

package power

import (
	"math"
	"testing"

	"hyperplane/internal/sim"
)

func TestModelOrdering(t *testing.T) {
	m := Default()
	spin := m.Active(2.4)      // full-tilt useless spinning
	saturated := m.Active(1.2) // mixed useful work
	halt := m.Halted()
	sleep := m.Sleeping()
	if !(sleep < halt && halt < saturated && saturated < spin) {
		t.Fatalf("power ordering violated: sleep=%.2f halt=%.2f sat=%.2f spin=%.2f",
			sleep, halt, saturated, spin)
	}
}

func TestPaperProportions(t *testing.T) {
	// Paper Fig. 12a: power-optimized HyperPlane at zero load draws ~16.2%
	// of the spinning data plane's saturation power.
	m := Default()
	saturated := m.Active(1.2)
	ratio := m.Sleeping() / saturated
	if math.Abs(ratio-0.162) > 0.02 {
		t.Errorf("C1/saturation ratio = %.3f, want ~0.162", ratio)
	}
	// And zero-load spinning must exceed saturation power (work
	// disproportionality).
	if m.Active(2.4) <= saturated {
		t.Error("spinning at zero load should out-consume saturation")
	}
}

func TestActiveClampsIPC(t *testing.T) {
	m := Default()
	if m.Active(-5) != m.Active(0) {
		t.Error("negative IPC not clamped")
	}
	if m.Active(100) != m.Active(m.MaxIPC) {
		t.Error("excessive IPC not clamped")
	}
}

func TestResidencyIPC(t *testing.T) {
	clock := sim.NewClock(3.0)
	r := NewResidency(clock)
	r.Add(C0Active, sim.Microsecond)
	r.Add(C0Halt, sim.Microsecond)
	r.AddInstrs(3000)
	// Active cycles: ~3003 at 3GHz over 1us -> active IPC ~1.0.
	if ipc := r.ActiveIPC(); ipc < 0.95 || ipc > 1.05 {
		t.Errorf("active IPC = %.3f", ipc)
	}
	// Overall spans 2us -> ~0.5.
	if ipc := r.OverallIPC(); ipc < 0.45 || ipc > 0.55 {
		t.Errorf("overall IPC = %.3f", ipc)
	}
	if r.Total() != 2*sim.Microsecond {
		t.Errorf("total = %v", r.Total())
	}
}

func TestResidencyAveragePower(t *testing.T) {
	m := Default()
	clock := sim.NewClock(3.0)

	// All time in C1 -> exactly sleeping power.
	r := NewResidency(clock)
	r.Add(C1, sim.Millisecond)
	if p := r.AveragePower(m); math.Abs(p-m.Sleeping()) > 1e-9 {
		t.Errorf("C1 power = %v", p)
	}

	// Half active at IPC 2, half halted -> between the two.
	r2 := NewResidency(clock)
	r2.Add(C0Active, sim.Millisecond)
	r2.AddInstrs(2 * clock.ToCycles(sim.Millisecond))
	r2.Add(C0Halt, sim.Millisecond)
	p := r2.AveragePower(m)
	want := (m.Active(2) + m.Halted()) / 2
	if math.Abs(p-want) > 0.05 {
		t.Errorf("mixed power = %.3f, want ~%.3f", p, want)
	}

	// Energy = power * time.
	e := r2.EnergyJoules(m)
	if math.Abs(e-p*r2.Total().Seconds()) > 1e-12 {
		t.Errorf("energy = %v", e)
	}
}

func TestResidencyEmpty(t *testing.T) {
	r := NewResidency(sim.NewClock(3.0))
	if r.AveragePower(Default()) != 0 || r.OverallIPC() != 0 || r.ActiveIPC() != 0 {
		t.Error("empty residency should report zeros")
	}
}

func TestResidencyNegativePanics(t *testing.T) {
	r := NewResidency(sim.NewClock(3.0))
	defer func() {
		if recover() == nil {
			t.Fatal("negative residency accepted")
		}
	}()
	r.Add(C0Active, -sim.Nanosecond)
}

func TestCStateString(t *testing.T) {
	if C0Active.String() != "C0-active" || C0Halt.String() != "C0-halt" || C1.String() != "C1" {
		t.Error("state names")
	}
	if CState(9).String() != "?" {
		t.Error("unknown state name")
	}
}

func TestC1WakeLatencyValue(t *testing.T) {
	if C1WakeLatency != 500*sim.Nanosecond {
		t.Errorf("C1 wake latency = %v, want 0.5us (paper §V-D)", C1WakeLatency)
	}
}

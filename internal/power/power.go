// Package power models core power consumption for the work-proportionality
// evaluation (paper §V-D, Figs. 11-12): an activity-based model in the
// spirit of McPAT, with static and IPC-proportional dynamic components and
// C-state residency.
//
// The paper's key observations this model reproduces:
//   - a spinning core burns *more* power at zero load than at saturation,
//     because useless spinning commits instructions at higher IPC than
//     mixed useful work;
//   - HyperPlane halting cuts dynamic power at idle, and the C1
//     power-optimized mode cuts core power to ~16% of the spinning
//     baseline at zero load.
package power

import (
	"fmt"

	"hyperplane/internal/sim"
)

// CState is a core power state.
type CState uint8

// Core power states.
const (
	C0Active CState = iota // executing instructions
	C0Halt                 // halted (e.g. blocked in QWAIT), clocks running
	C1                     // clock-gated sleep; 0.5 us wake-up (paper §V-D)
)

func (c CState) String() string {
	switch c {
	case C0Active:
		return "C0-active"
	case C0Halt:
		return "C0-halt"
	case C1:
		return "C1"
	}
	return "?"
}

// C1WakeLatency is the paper's C1->C0 transition cost (~0.5 us, consistent
// with MWAIT characterizations).
const C1WakeLatency = 500 * sim.Nanosecond

// Model computes power from activity.
type Model struct {
	// StaticW is leakage + always-on power in C0.
	StaticW float64
	// DynPerIPC is dynamic watts per unit of committed IPC.
	DynPerIPC float64
	// HaltFactor scales dynamic power in C0-halt (clock toggling but no
	// commits).
	HaltFactor float64
	// C1Factor scales static power while clock-gated in C1.
	C1Factor float64
	// MaxIPC caps the activity input.
	MaxIPC float64
}

// Default returns the calibrated model: with spin IPC ~2.4 the idle
// spinning core draws ~9 W while a saturated core at mixed IPC ~1.2 draws
// ~6 W, and C1 residency reaches 16.2% of the saturated baseline — the
// paper's Fig. 12a proportions.
func Default() Model {
	return Model{
		StaticW:    3.0,
		DynPerIPC:  2.5,
		HaltFactor: 0.05,
		C1Factor:   0.324,
		MaxIPC:     3.0,
	}
}

// Active returns power while committing at the given IPC.
func (m Model) Active(ipc float64) float64 {
	if ipc < 0 {
		ipc = 0
	}
	if ipc > m.MaxIPC {
		ipc = m.MaxIPC
	}
	return m.StaticW + m.DynPerIPC*ipc
}

// Halted returns power in C0-halt.
func (m Model) Halted() float64 { return m.StaticW + m.DynPerIPC*m.HaltFactor }

// Sleeping returns power in C1.
func (m Model) Sleeping() float64 { return m.StaticW * m.C1Factor }

// Residency accumulates time per state plus committed activity to produce
// an average power for an interval.
type Residency struct {
	Time   [3]sim.Time
	Instrs int64 // instructions committed during C0-active time
	clock  sim.Clock
}

// NewResidency returns a tracker at the given core clock.
func NewResidency(clock sim.Clock) *Residency {
	return &Residency{clock: clock}
}

// Add accrues d in state s.
func (r *Residency) Add(s CState, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("power: negative residency %v", d))
	}
	r.Time[s] += d
}

// AddInstrs accrues committed instructions (during C0-active time).
func (r *Residency) AddInstrs(n int64) { r.Instrs += n }

// Total returns the tracked wall time.
func (r *Residency) Total() sim.Time {
	return r.Time[C0Active] + r.Time[C0Halt] + r.Time[C1]
}

// ActiveIPC returns instructions per cycle during C0-active time.
func (r *Residency) ActiveIPC() float64 {
	cycles := r.clock.ToCycles(r.Time[C0Active])
	if cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(cycles)
}

// OverallIPC returns instructions per total elapsed cycle — the paper's
// Fig. 11a metric (a halted core commits nothing).
func (r *Residency) OverallIPC() float64 {
	cycles := r.clock.ToCycles(r.Total())
	if cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(cycles)
}

// AveragePower returns the time-weighted mean power under model m.
func (r *Residency) AveragePower(m Model) float64 {
	total := r.Total()
	if total == 0 {
		return 0
	}
	p := m.Active(r.ActiveIPC())*r.Time[C0Active].Seconds() +
		m.Halted()*r.Time[C0Halt].Seconds() +
		m.Sleeping()*r.Time[C1].Seconds()
	return p / total.Seconds()
}

// EnergyJoules returns total energy over the interval.
func (r *Residency) EnergyJoules(m Model) float64 {
	return r.AveragePower(m) * r.Total().Seconds()
}

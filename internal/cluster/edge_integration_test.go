package cluster_test

import (
	"sync/atomic"
	"testing"
	"time"

	"hyperplane/internal/cluster"
	"hyperplane/internal/edge"
)

// edgeMember is one federated edge: an edge Server whose plane counts
// deliveries, routed through its cluster node.
type edgeMember struct {
	srv       *edge.Server
	node      *cluster.Node
	delivered atomic.Int64
}

// TestCrossEntryIdempotency pins the end-to-end exactly-once contract
// for identified ingest across entry nodes: the same idempotency key
// submitted at two DIFFERENT edges — in either order relative to the
// owner — must deliver exactly once. The owner-entry copy is the
// subtle one: it must pass through the cluster dedup window (not just
// the edge's per-server idem window), otherwise the key only exists
// where it was first seen and the copy entering elsewhere delivers a
// second time.
func TestCrossEntryIdempotency(t *testing.T) {
	const tenants = 8
	mk := func(id string) *edgeMember {
		m := &edgeMember{}
		cfg := edge.Config{FlushBatch: 4, FlushInterval: 100 * time.Microsecond}
		cfg.Plane.Tenants = tenants
		cfg.Plane.Workers = 2
		cfg.Plane.RingCapacity = 1 << 10
		cfg.Plane.Handler = func(_ int, p []byte) ([]byte, error) {
			m.delivered.Add(1)
			return nil, nil
		}
		srv, err := edge.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		node, err := cluster.NewNode(cluster.Config{
			ID:            id,
			Plane:         srv.Plane(),
			FlushBatch:    4,
			FlushInterval: 100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		srv.SetRouter(node)
		m.srv, m.node = srv, node
		return m
	}
	a, b := mk("a"), mk("b")
	t.Cleanup(func() {
		a.node.Stop()
		b.node.Stop()
		a.srv.Plane().Stop()
		b.srv.Plane().Stop()
	})
	if err := a.node.AddPeer(cluster.PeerSpec{ID: "b", Addr: b.node.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.node.AddPeer(cluster.PeerSpec{ID: "a", Addr: a.node.Addr()}); err != nil {
		t.Fatal(err)
	}

	// Pick a tenant owned by a.
	owned := -1
	for tn := 0; tn < tenants; tn++ {
		if a.node.Owner(tn) == "a" {
			owned = tn
			break
		}
	}
	if owned < 0 {
		t.Fatal("no tenant owned by a")
	}

	total := func() int64 { return a.delivered.Load() + b.delivered.Load() }
	settle := func(want int64) {
		deadline := time.Now().Add(10 * time.Second)
		for total() < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	// Owner entry first, replay at the non-owner.
	if _, st := a.srv.Submit(owned, []byte("v1"), edge.IdemKey("k1")); st != edge.SubmitAccepted {
		t.Fatalf("owner-entry submit: %v", st)
	}
	settle(1)
	if _, st := b.srv.Submit(owned, []byte("v1"), edge.IdemKey("k1")); st != edge.SubmitAccepted {
		t.Fatalf("non-owner replay: %v", st)
	}

	// Non-owner entry first, replay at the owner.
	if _, st := b.srv.Submit(owned, []byte("v2"), edge.IdemKey("k2")); st != edge.SubmitAccepted {
		t.Fatalf("non-owner entry submit: %v", st)
	}
	settle(2)
	if _, st := a.srv.Submit(owned, []byte("v2"), edge.IdemKey("k2")); st != edge.SubmitAccepted {
		t.Fatalf("owner replay: %v", st)
	}

	// Both replays must be suppressed: give any stray duplicate time to
	// flush through the bridge, then check the count stayed at 2.
	settle(2)
	time.Sleep(50 * time.Millisecond)
	if got := total(); got != 2 {
		t.Fatalf("delivered %d times across 2 keys x 2 entries, want exactly 2", got)
	}
}

package frame

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the full hostile-input surface of the decoder: raw
// bytes are parsed as a frame stream (header validation, CRC check) and
// every structurally valid batch payload is iterated to exhaustion. The
// decoder must never panic, never hand out an item view that escapes the
// payload bounds, and — when the input round-trips through the encoder —
// must reproduce it exactly. The seed corpus covers every frame type,
// empty and multi-run batches, and each corruption class the unit tests
// pin (bad magic, bad version, truncation, CRC damage, lying run
// counts).
func FuzzDecode(f *testing.F) {
	var e Encoder
	e.Reset()
	f.Add(e.Finish()) // empty batch
	e.Reset()
	e.Add(0, 0, nil)
	f.Add(append([]byte(nil), e.Finish()...))
	e.Reset()
	e.Add(1, 10, []byte("a"))
	e.Add(1, 11, []byte("bb"))
	e.Add(2, 20, []byte("ccc"))
	e.Add(1, 12, bytes.Repeat([]byte{0x5A}, 300))
	good := append([]byte(nil), e.Finish()...)
	f.Add(good)
	f.Add(AppendHello(nil, "node-a"))
	f.Add(AppendPing(nil, TypePing, 1))
	f.Add(AppendPing(nil, TypePong, 2))
	f.Add(AppendHandoff(nil, 3, 99))
	f.Add(AppendState(nil, 7, []uint64{1, 2, 3}))
	f.Add(AppendState(nil, 0, nil))
	// Corruptions of the good frame: magic, version, type, length, crc,
	// payload, truncation.
	for _, off := range []int{0, 4, 5, 8, 12, HeaderSize, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}
	f.Add(good[:HeaderSize-1])
	f.Add(good[:len(good)-2])
	// A batch payload whose run count lies about the item count.
	lie := append([]byte(nil), good...)
	lie[HeaderSize+4] = 0xFF // inflate first run's count
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), 1<<16)
		for {
			h, payload, err := r.Next()
			if err != nil {
				return // terminal, by contract
			}
			switch h.Type {
			case TypeBatch:
				it := IterBatch(payload)
				n := 0
				for {
					_, _, body, ok := it.Next()
					if !ok {
						break
					}
					// The view must stay inside the payload buffer.
					if len(body) > len(payload) {
						t.Fatalf("item view larger than payload: %d > %d", len(body), len(payload))
					}
					n++
					if n > len(payload)+1 {
						t.Fatalf("iterator yielded more items than the payload could hold")
					}
				}
			case TypeHello:
				_, _ = ParseHello(payload)
			case TypePing, TypePong:
				_, _ = ParsePing(payload)
			case TypeHandoff:
				_, _, _ = ParseHandoff(payload)
			case TypeState:
				_, _, _ = ParseState(payload)
			}
		}
	})
}

// FuzzRoundTrip: decode-re-encode equivalence on arbitrary item sets
// derived from fuzz bytes.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add([]byte("some payload bytes here"), uint64(12345))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		// Slice data into pseudo-random items driven by seed.
		var e Encoder
		e.Reset()
		type rec struct {
			tenant uint32
			msgID  uint64
			body   []byte
		}
		var want []rec
		s := seed
		for off := 0; off < len(data); {
			s = s*6364136223846793005 + 1442695040888963407
			n := int(s>>33) % (len(data) - off + 1)
			tenant := uint32(s>>16) % 8
			body := data[off : off+n]
			e.Add(tenant, s, body)
			want = append(want, rec{tenant, s, body})
			off += n + 1
		}
		fr := e.Finish()
		h, err := ParseHeader(fr, 0)
		if err != nil {
			t.Fatalf("own frame failed header parse: %v", err)
		}
		payload := fr[HeaderSize:]
		if err := CheckPayload(h, payload); err != nil {
			t.Fatalf("own frame failed CRC: %v", err)
		}
		it := IterBatch(payload)
		i := 0
		for {
			tn, id, body, ok := it.Next()
			if !ok {
				break
			}
			if i >= len(want) {
				t.Fatalf("decoded more items than encoded (%d)", i)
			}
			w := want[i]
			if tn != w.tenant || id != w.msgID || !bytes.Equal(body, w.body) {
				t.Fatalf("item %d mismatch: got (%d,%d,%q) want (%d,%d,%q)",
					i, tn, id, body, w.tenant, w.msgID, w.body)
			}
			i++
		}
		if it.Err() != nil {
			t.Fatalf("own frame corrupt: %v", it.Err())
		}
		if i != len(want) {
			t.Fatalf("decoded %d items, encoded %d", i, len(want))
		}
	})
}

// Package frame is the node-to-node wire protocol of the federation
// bridge: length-prefixed, CRC-framed messages carrying batches of
// tenant-grouped work items between planes. The format mirrors the ring
// batch path it feeds — items are grouped into same-tenant runs exactly
// like IngressBatch coalesces them, so one frame decodes straight into
// one IngressBatch call — and both directions are zero-alloc at steady
// state: the Encoder seals frames in place in a reusable buffer, and the
// Reader hands out payload views into its own reusable buffer that the
// BatchIter never copies.
//
// Frame layout (little-endian):
//
//	off  0: magic  uint32  "HPF1"
//	off  4: type   uint8
//	off  5: ver    uint8   (protocol version, currently 1)
//	off  6: rsv    uint16  (zero)
//	off  8: length uint32  (payload bytes after the header)
//	off 12: crc    uint32  (CRC-32C of the payload)
//
// Batch payload: repeated runs of
//
//	tenant uint32 | count uint32 | count x ( msgID uint64 | len uint32 | bytes )
//
// A decoder must treat every field as hostile: lengths are bounded
// before any allocation, the CRC is verified before iteration, and a
// truncated or inconsistent batch surfaces ErrCorrupt from the
// iterator, never a panic (see FuzzDecode).
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire constants.
const (
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 16
	// Magic marks the start of every frame ("HPF1").
	Magic = 0x31465048
	// Version is the protocol version stamped into every header.
	Version = 1
	// DefaultMaxPayload bounds a peer's frame size unless the Reader is
	// built with an explicit cap: 1 MiB, comfortably above any staged
	// forward batch, small enough that a corrupt length field cannot
	// balloon memory.
	DefaultMaxPayload = 1 << 20
	// BatchRunOverhead and BatchItemOverhead are the batch payload's
	// per-run (tenant + count) and per-item (msgID + len) header sizes.
	// A sender staging items must seal its open batch before
	// Encoder.Len() - HeaderSize plus the next item's worst-case cost
	// (BatchRunOverhead + BatchItemOverhead + payload bytes) would
	// exceed the receiver's payload cap — an oversized frame is not a
	// soft error, it tears the receiving connection down.
	BatchRunOverhead  = 8
	BatchItemOverhead = 12
)

// Type identifies a frame's meaning.
type Type uint8

// Frame types.
const (
	// TypeHello opens a bridge connection: payload = sender node id.
	TypeHello Type = 1
	// TypeBatch carries tenant-grouped work items (the forwarded ingress
	// path).
	TypeBatch Type = 2
	// TypePing is a health probe; payload = 8-byte nonce.
	TypePing Type = 3
	// TypePong answers a ping, echoing its nonce.
	TypePong Type = 4
	// TypeHandoff transfers tenant ownership: payload = tenant uint32 +
	// items uint64 (how many items the old owner forwarded as the tail).
	TypeHandoff Type = 5
	// TypeState ships a tenant's dedup-window ids to the new owner ahead
	// of a handoff: payload = tenant uint32 + N x id uint64.
	TypeState Type = 6
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeBatch:
		return "batch"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	case TypeHandoff:
		return "handoff"
	case TypeState:
		return "state"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Decode errors. Everything a hostile or corrupt peer can provoke is one
// of these — never a panic.
var (
	ErrMagic     = errors.New("frame: bad magic")
	ErrVersion   = errors.New("frame: unsupported protocol version")
	ErrTooLarge  = errors.New("frame: payload exceeds cap")
	ErrCRC       = errors.New("frame: payload CRC mismatch")
	ErrCorrupt   = errors.New("frame: corrupt payload")
	ErrTruncated = errors.New("frame: truncated")
)

// castagnoli is the CRC-32C table (same polynomial as the WAL's record
// framing, hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is a parsed frame header.
type Header struct {
	Type   Type
	Length int    // payload bytes following the header
	CRC    uint32 // expected CRC-32C of the payload
}

// ParseHeader validates the fixed header fields. maxPayload <= 0 means
// DefaultMaxPayload.
func ParseHeader(b []byte, maxPayload int) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[0:]) != Magic {
		return Header{}, ErrMagic
	}
	if b[5] != Version {
		return Header{}, ErrVersion
	}
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	n := binary.LittleEndian.Uint32(b[8:])
	if n > uint32(maxPayload) {
		return Header{}, ErrTooLarge
	}
	return Header{
		Type:   Type(b[4]),
		Length: int(n),
		CRC:    binary.LittleEndian.Uint32(b[12:]),
	}, nil
}

// CheckPayload verifies the payload against the header's CRC and length.
func CheckPayload(h Header, payload []byte) error {
	if len(payload) != h.Length {
		return ErrTruncated
	}
	if crc32.Checksum(payload, castagnoli) != h.CRC {
		return ErrCRC
	}
	return nil
}

// putHeader seals the 16-byte header in place over an already-appended
// payload.
func putHeader(dst []byte, typ Type, payload []byte) {
	binary.LittleEndian.PutUint32(dst[0:], Magic)
	dst[4] = byte(typ)
	dst[5] = Version
	dst[6], dst[7] = 0, 0
	binary.LittleEndian.PutUint32(dst[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[12:], crc32.Checksum(payload, castagnoli))
}

// AppendFrame appends a complete frame (header + payload) to dst and
// returns the extended slice.
func AppendFrame(dst []byte, typ Type, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	dst = append(dst, payload...)
	putHeader(dst[off:], typ, dst[off+HeaderSize:])
	return dst
}

// ---- control-frame payloads ----

// AppendHello appends a complete hello frame carrying the sender's node
// id.
func AppendHello(dst []byte, nodeID string) []byte {
	return AppendFrame(dst, TypeHello, []byte(nodeID))
}

// ParseHello decodes a hello payload.
func ParseHello(payload []byte) (string, error) {
	if len(payload) == 0 || len(payload) > 256 {
		return "", ErrCorrupt
	}
	return string(payload), nil
}

// AppendPing appends a ping (or pong) frame carrying nonce.
func AppendPing(dst []byte, typ Type, nonce uint64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], nonce)
	return AppendFrame(dst, typ, p[:])
}

// ParsePing decodes a ping/pong nonce.
func ParsePing(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, ErrCorrupt
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// AppendHandoff appends a handoff frame: tenant changes owner, items is
// the forwarded-tail count (informational, for telemetry).
func AppendHandoff(dst []byte, tenant uint32, items uint64) []byte {
	var p [12]byte
	binary.LittleEndian.PutUint32(p[0:], tenant)
	binary.LittleEndian.PutUint64(p[4:], items)
	return AppendFrame(dst, TypeHandoff, p[:])
}

// ParseHandoff decodes a handoff payload.
func ParseHandoff(payload []byte) (tenant uint32, items uint64, err error) {
	if len(payload) != 12 {
		return 0, 0, ErrCorrupt
	}
	return binary.LittleEndian.Uint32(payload[0:]), binary.LittleEndian.Uint64(payload[4:]), nil
}

// AppendState appends a dedup-state frame: the tenant's remembered
// message ids, oldest first, primed into the new owner's window before
// ownership flips.
func AppendState(dst []byte, tenant uint32, ids []uint64) []byte {
	p := make([]byte, 4+8*len(ids))
	binary.LittleEndian.PutUint32(p[0:], tenant)
	for i, id := range ids {
		binary.LittleEndian.PutUint64(p[4+8*i:], id)
	}
	return AppendFrame(dst, TypeState, p)
}

// ParseState decodes a dedup-state payload. The returned ids alias a
// fresh slice (the payload buffer may be reused by the caller).
func ParseState(payload []byte) (tenant uint32, ids []uint64, err error) {
	if len(payload) < 4 || (len(payload)-4)%8 != 0 {
		return 0, nil, ErrCorrupt
	}
	tenant = binary.LittleEndian.Uint32(payload[0:])
	n := (len(payload) - 4) / 8
	ids = make([]uint64, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(payload[4+8*i:])
	}
	return tenant, ids, nil
}

// ---- batch encoding ----

// Encoder builds batch frames in place in a growable, reusable buffer:
// Add items (same-tenant items coalesce into one run, exactly like
// IngressBatch groups them), then Finish seals header, length and CRC
// and hands back the framed bytes. After the buffer has grown to the
// working batch size the encoder allocates nothing (see
// TestEncoderZeroAlloc).
type Encoder struct {
	buf        []byte
	items      int
	lastTenant uint32
	countOff   int // offset of the open run's count field; 0 = no open run
}

// Reset clears the encoder for a new frame, keeping the buffer capacity.
func (e *Encoder) Reset() {
	if cap(e.buf) < HeaderSize {
		e.buf = make([]byte, HeaderSize, 512)
	}
	e.buf = e.buf[:HeaderSize]
	e.items = 0
	e.countOff = 0
}

// Items returns the number of items added since Reset.
func (e *Encoder) Items() int { return e.items }

// Len returns the current frame size (header included) in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Add appends one item. Items for the same tenant added back to back
// share one run header.
func (e *Encoder) Add(tenant uint32, msgID uint64, payload []byte) {
	if len(e.buf) < HeaderSize {
		e.Reset()
	}
	if e.countOff == 0 || e.lastTenant != tenant {
		var run [8]byte
		binary.LittleEndian.PutUint32(run[0:], tenant)
		e.countOff = len(e.buf) + 4
		e.buf = append(e.buf, run[:]...)
		e.lastTenant = tenant
	}
	cnt := binary.LittleEndian.Uint32(e.buf[e.countOff:])
	binary.LittleEndian.PutUint32(e.buf[e.countOff:], cnt+1)
	var it [12]byte
	binary.LittleEndian.PutUint64(it[0:], msgID)
	binary.LittleEndian.PutUint32(it[8:], uint32(len(payload)))
	e.buf = append(e.buf, it[:]...)
	e.buf = append(e.buf, payload...)
	e.items++
}

// Finish seals the frame and returns it. The returned slice aliases the
// encoder's buffer: consume (write) it before the next Reset/Add.
func (e *Encoder) Finish() []byte {
	if len(e.buf) < HeaderSize {
		e.Reset()
	}
	putHeader(e.buf, TypeBatch, e.buf[HeaderSize:])
	return e.buf
}

// ---- batch decoding ----

// BatchIter walks a verified batch payload without copying: Next yields
// views into the payload buffer. Any structural inconsistency ends the
// iteration with Err() == ErrCorrupt.
type BatchIter struct {
	buf    []byte
	off    int
	tenant uint32
	left   uint32
	err    error
}

// IterBatch starts iterating a batch payload that already passed
// CheckPayload.
func IterBatch(payload []byte) BatchIter {
	return BatchIter{buf: payload}
}

// Next returns the next item as views into the payload. ok is false at
// the end of the batch or on corruption (check Err).
func (it *BatchIter) Next() (tenant uint32, msgID uint64, payload []byte, ok bool) {
	if it.err != nil {
		return 0, 0, nil, false
	}
	for it.left == 0 {
		if it.off == len(it.buf) {
			return 0, 0, nil, false
		}
		if len(it.buf)-it.off < 8 {
			it.err = ErrCorrupt
			return 0, 0, nil, false
		}
		it.tenant = binary.LittleEndian.Uint32(it.buf[it.off:])
		it.left = binary.LittleEndian.Uint32(it.buf[it.off+4:])
		it.off += 8
		// A zero-count run is legal (an empty flush) but two in a row
		// with no progress must not loop forever: the for condition
		// re-reads, and off advances every pass, so termination holds.
	}
	if len(it.buf)-it.off < 12 {
		it.err = ErrCorrupt
		return 0, 0, nil, false
	}
	msgID = binary.LittleEndian.Uint64(it.buf[it.off:])
	n := binary.LittleEndian.Uint32(it.buf[it.off+8:])
	it.off += 12
	if uint32(len(it.buf)-it.off) < n {
		it.err = ErrCorrupt
		return 0, 0, nil, false
	}
	payload = it.buf[it.off : it.off+int(n) : it.off+int(n)]
	it.off += int(n)
	it.left--
	return it.tenant, msgID, payload, true
}

// Err returns the corruption error, if iteration ended early.
func (it *BatchIter) Err() error { return it.err }

// ---- framed reader ----

// Reader decodes a stream of frames from r into a reusable payload
// buffer. The payload returned by Next is valid until the next call.
type Reader struct {
	r   io.Reader
	max int
	hdr [HeaderSize]byte
	buf []byte
}

// NewReader builds a Reader with the given payload cap (<= 0 means
// DefaultMaxPayload).
func NewReader(r io.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{r: r, max: maxPayload}
}

// Next reads, validates and returns the next frame. Any wire error —
// including a CRC mismatch — is terminal for the connection: the caller
// must drop it and reconnect, because framing can no longer be trusted.
func (fr *Reader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(fr.hdr[:], fr.max)
	if err != nil {
		return Header{}, nil, err
	}
	if cap(fr.buf) < h.Length {
		fr.buf = make([]byte, h.Length)
	}
	payload := fr.buf[:h.Length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return Header{}, nil, err
	}
	if err := CheckPayload(h, payload); err != nil {
		return Header{}, nil, err
	}
	return h, payload, nil
}

package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

type decoded struct {
	tenant uint32
	msgID  uint64
	body   string
}

func roundTrip(t *testing.T, items []decoded) {
	t.Helper()
	var e Encoder
	e.Reset()
	for _, it := range items {
		e.Add(it.tenant, it.msgID, []byte(it.body))
	}
	fr := e.Finish()
	h, err := ParseHeader(fr, 0)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if h.Type != TypeBatch {
		t.Fatalf("type = %v, want batch", h.Type)
	}
	payload := fr[HeaderSize:]
	if err := CheckPayload(h, payload); err != nil {
		t.Fatalf("CheckPayload: %v", err)
	}
	it := IterBatch(payload)
	var got []decoded
	for {
		tn, id, body, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, decoded{tn, id, string(body)})
	}
	if it.Err() != nil {
		t.Fatalf("iter error: %v", it.Err())
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], items[i])
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	roundTrip(t, nil) // empty batch
	roundTrip(t, []decoded{{0, 0, ""}})
	roundTrip(t, []decoded{{7, 42, "hello"}})
	// Same-tenant runs coalesce; interleaving opens new runs.
	roundTrip(t, []decoded{
		{1, 10, "a"}, {1, 11, "bb"}, {1, 12, ""},
		{2, 20, "ccc"},
		{1, 13, "d"},
		{0xFFFFFFFF, 1 << 63, "max-tenant"},
	})
	// Large-ish payloads.
	big := string(bytes.Repeat([]byte{0xAB}, 64<<10))
	roundTrip(t, []decoded{{3, 1, big}, {3, 2, big}})
}

func TestRunCoalescing(t *testing.T) {
	var e Encoder
	e.Reset()
	e.Add(5, 1, []byte("x"))
	e.Add(5, 2, []byte("y"))
	one := e.Len()
	e.Reset()
	e.Add(5, 1, []byte("x"))
	e.Add(6, 2, []byte("y"))
	two := e.Len()
	if two-one != 8 {
		t.Fatalf("tenant switch should cost exactly one 8-byte run header, got %d extra", two-one)
	}
}

func TestHeaderErrors(t *testing.T) {
	var e Encoder
	e.Reset()
	e.Add(1, 2, []byte("p"))
	fr := append([]byte(nil), e.Finish()...)

	if _, err := ParseHeader(fr[:8], 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), fr...)
	bad[0] ^= 0xFF
	if _, err := ParseHeader(bad, 0); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic: %v, want ErrMagic", err)
	}
	bad = append(bad[:0], fr...)
	bad[5] = 99
	if _, err := ParseHeader(bad, 0); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v, want ErrVersion", err)
	}
	if _, err := ParseHeader(fr, len(fr)-HeaderSize-1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over cap: %v, want ErrTooLarge", err)
	}
	h, err := ParseHeader(fr, 0)
	if err != nil {
		t.Fatal(err)
	}
	flip := append([]byte(nil), fr[HeaderSize:]...)
	flip[len(flip)-1] ^= 1
	if err := CheckPayload(h, flip); !errors.Is(err, ErrCRC) {
		t.Errorf("flipped payload: %v, want ErrCRC", err)
	}
	if err := CheckPayload(h, fr[HeaderSize:len(fr)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: %v, want ErrTruncated", err)
	}
}

func TestIterCorrupt(t *testing.T) {
	// Run header promises more items than the payload holds.
	var e Encoder
	e.Reset()
	e.Add(1, 1, []byte("abcd"))
	payload := append([]byte(nil), e.Finish()[HeaderSize:]...)
	for cut := 1; cut < len(payload); cut++ {
		it := IterBatch(payload[:cut])
		for {
			if _, _, _, ok := it.Next(); !ok {
				break
			}
		}
		if it.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestControlFrames(t *testing.T) {
	fr := AppendHello(nil, "node-a")
	h, _ := ParseHeader(fr, 0)
	if h.Type != TypeHello {
		t.Fatalf("type %v", h.Type)
	}
	id, err := ParseHello(fr[HeaderSize:])
	if err != nil || id != "node-a" {
		t.Fatalf("hello round-trip: %q, %v", id, err)
	}
	if _, err := ParseHello(nil); err == nil {
		t.Error("empty hello accepted")
	}
	if _, err := ParseHello(bytes.Repeat([]byte("x"), 300)); err == nil {
		t.Error("oversized hello accepted")
	}

	fr = AppendPing(nil, TypePing, 0xDEADBEEF)
	n, err := ParsePing(fr[HeaderSize:])
	if err != nil || n != 0xDEADBEEF {
		t.Fatalf("ping round-trip: %x, %v", n, err)
	}

	fr = AppendHandoff(nil, 17, 4096)
	tn, items, err := ParseHandoff(fr[HeaderSize:])
	if err != nil || tn != 17 || items != 4096 {
		t.Fatalf("handoff round-trip: %d %d %v", tn, items, err)
	}
	if _, _, err := ParseHandoff([]byte{1, 2}); err == nil {
		t.Error("short handoff accepted")
	}
}

func TestReaderStream(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(AppendHello(nil, "n1"))
	var e Encoder
	e.Reset()
	e.Add(4, 9, []byte("payload"))
	buf.Write(e.Finish())
	buf.Write(AppendPing(nil, TypePing, 7))

	r := NewReader(&buf, 0)
	h, p, err := r.Next()
	if err != nil || h.Type != TypeHello || string(p) != "n1" {
		t.Fatalf("frame 1: %v %v %q", h, err, p)
	}
	h, p, err = r.Next()
	if err != nil || h.Type != TypeBatch {
		t.Fatalf("frame 2: %v %v", h, err)
	}
	it := IterBatch(p)
	tn, id, body, ok := it.Next()
	if !ok || tn != 4 || id != 9 || string(body) != "payload" {
		t.Fatalf("batch item: %d %d %q %v", tn, id, body, ok)
	}
	h, _, err = r.Next()
	if err != nil || h.Type != TypePing {
		t.Fatalf("frame 3: %v %v", h, err)
	}
	if _, _, err = r.Next(); err != io.EOF {
		t.Fatalf("EOF: %v", err)
	}
}

// TestReaderCorruptIsTerminal: CRC damage surfaces as an error, not a
// decoded frame.
func TestReaderCorruptIsTerminal(t *testing.T) {
	var e Encoder
	e.Reset()
	e.Add(1, 1, []byte("x"))
	fr := append([]byte(nil), e.Finish()...)
	fr[len(fr)-1] ^= 1
	r := NewReader(bytes.NewReader(fr), 0)
	if _, _, err := r.Next(); !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupt frame: %v, want ErrCRC", err)
	}
}

// TestEncoderZeroAlloc pins the bridge send path: once the buffer has
// grown, encoding a full batch allocates nothing.
func TestEncoderZeroAlloc(t *testing.T) {
	var e Encoder
	payload := bytes.Repeat([]byte{1}, 128)
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		for i := 0; i < 64; i++ {
			e.Add(uint32(i%4), uint64(i), payload)
		}
		_ = e.Finish()
	})
	if allocs != 0 {
		t.Fatalf("encoder allocates %.1f/op, want 0", allocs)
	}
}

// TestIterZeroAlloc pins the receive path: iterating a decoded batch
// allocates nothing (items are views into the payload buffer).
func TestIterZeroAlloc(t *testing.T) {
	var e Encoder
	e.Reset()
	for i := 0; i < 64; i++ {
		e.Add(uint32(i%4), uint64(i), []byte("0123456789abcdef"))
	}
	payload := append([]byte(nil), e.Finish()[HeaderSize:]...)
	allocs := testing.AllocsPerRun(100, func() {
		it := IterBatch(payload)
		for {
			if _, _, _, ok := it.Next(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("iterator allocates %.1f/op, want 0", allocs)
	}
}

// TestStateRoundTrip: the dedup-state frame reproduces its id list
// (including none) and rejects malformed payloads.
func TestStateRoundTrip(t *testing.T) {
	for _, ids := range [][]uint64{nil, {42}, {1, 2, 3, ^uint64(0)}} {
		f := AppendState(nil, 9, ids)
		h, err := ParseHeader(f, 0)
		if err != nil || h.Type != TypeState {
			t.Fatalf("header: %v %v", h, err)
		}
		payload := f[HeaderSize:]
		if err := CheckPayload(h, payload); err != nil {
			t.Fatal(err)
		}
		tenant, got, err := ParseState(payload)
		if err != nil || tenant != 9 {
			t.Fatalf("ParseState: tenant=%d err=%v", tenant, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("ids = %v, want %v", got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("ids = %v, want %v", got, ids)
			}
		}
	}
	if _, _, err := ParseState([]byte{1, 2}); err != ErrCorrupt {
		t.Fatalf("short state parse = %v, want ErrCorrupt", err)
	}
	if _, _, err := ParseState(make([]byte, 4+5)); err != ErrCorrupt {
		t.Fatalf("ragged state parse = %v, want ErrCorrupt", err)
	}
}

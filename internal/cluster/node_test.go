package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperplane/dataplane"
)

// testNode bundles a node with its plane and a delivery log keyed by
// the message id each test encodes into its payloads.
type testNode struct {
	node  *Node
	plane *dataplane.Plane

	mu  sync.Mutex
	got map[uint64]int // msgID (from payload) -> delivery count
}

func (tn *testNode) deliveries(id uint64) int {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return tn.got[id]
}

func (tn *testNode) totalDeliveries() int {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	n := 0
	for _, c := range tn.got {
		n += c
	}
	return n
}

// payloadFor encodes a message id as the payload so delivery logs can
// attribute every delivery.
func payloadFor(id uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id)
	return b[:]
}

// newTestCluster builds size nodes with aggressive timings, starts them
// and fully meshes them. Every node's ring agrees on membership from
// the start.
func newTestCluster(t *testing.T, size, tenants int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, size)
	for i := range nodes {
		tn := &testNode{got: make(map[uint64]int)}
		p, err := dataplane.New(dataplane.Config{
			Tenants: tenants,
			// Deep rings: the chaos drills assert loss-free delivery, so
			// backpressure must not silently shed bridge-received items
			// (which, unlike local Ingress, are not retried).
			RingCapacity: 1 << 14,
			OnDeliver: func(tenant int, payload []byte, tag uint64) {
				if payload == nil || len(payload) < 8 {
					return
				}
				id := binary.LittleEndian.Uint64(payload)
				tn.mu.Lock()
				tn.got[id]++
				tn.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		n, err := NewNode(Config{
			ID:             fmt.Sprintf("node-%d", i),
			Plane:          p,
			FlushBatch:     8,
			FlushInterval:  time.Millisecond,
			ForwardBuffer:  1 << 14, // see RingCapacity above
			HealthInterval: 20 * time.Millisecond,
			HealthTimeout:  500 * time.Millisecond,
			DeadAfter:      400 * time.Millisecond,
			DedupWindow:    1 << 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		tn.node, tn.plane = n, p
		nodes[i] = tn
		t.Cleanup(func() {
			n.Stop()
			p.Stop()
		})
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				if err := a.node.AddPeer(PeerSpec{ID: b.node.ID(), Addr: b.node.Addr()}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return nodes
}

// byID finds the test node with the given cluster id.
func byID(nodes []*testNode, id string) *testNode {
	for _, tn := range nodes {
		if tn.node.ID() == id {
			return tn
		}
	}
	return nil
}

// tenantOwnedBy picks a tenant the given node owns (by every ring).
func tenantOwnedBy(t *testing.T, nodes []*testNode, id string, tenants int) int {
	t.Helper()
	for tenant := 0; tenant < tenants; tenant++ {
		if nodes[0].node.Owner(tenant) == id {
			return tenant
		}
	}
	t.Fatalf("no tenant owned by %s", id)
	return -1
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterRoutesLocalAndRemote: an item for a locally owned tenant
// is delivered by the local plane; an item for a remotely owned tenant
// crosses the bridge and is delivered by the owner.
func TestClusterRoutesLocalAndRemote(t *testing.T) {
	const tenants = 64
	nodes := newTestCluster(t, 2, tenants)
	a := nodes[0]
	local := tenantOwnedBy(t, nodes, a.node.ID(), tenants)
	remote := tenantOwnedBy(t, nodes, nodes[1].node.ID(), tenants)
	owner := byID(nodes, nodes[1].node.ID())

	if !a.node.Ingress(local, 1, payloadFor(1)) {
		t.Fatal("local ingress rejected")
	}
	if !a.node.Ingress(remote, 2, payloadFor(2)) {
		t.Fatal("remote ingress rejected")
	}
	waitUntil(t, 10*time.Second, "local delivery", func() bool { return a.deliveries(1) == 1 })
	waitUntil(t, 10*time.Second, "forwarded delivery", func() bool { return owner.deliveries(2) == 1 })
	if got := a.deliveries(2); got != 0 {
		t.Fatalf("forwarded item also delivered at the entry node (%d times)", got)
	}
	if f := a.node.Metrics().Forwarded.Load(); f != 1 {
		t.Fatalf("Forwarded = %d, want 1", f)
	}
	if r := owner.node.Metrics().ReceivedItems.Load(); r != 1 {
		t.Fatalf("ReceivedItems = %d, want 1", r)
	}
}

// TestClusterBulkForwarding pushes a burst through the bridge and
// checks batching actually coalesces (frames < items).
func TestClusterBulkForwarding(t *testing.T) {
	const tenants = 64
	nodes := newTestCluster(t, 2, tenants)
	a, b := nodes[0], nodes[1]
	remote := tenantOwnedBy(t, nodes, b.node.ID(), tenants)

	const burst = 500
	for i := uint64(1); i <= burst; i++ {
		if !a.node.Ingress(remote, i, payloadFor(i)) {
			t.Fatalf("ingress %d rejected", i)
		}
	}
	waitUntil(t, 20*time.Second, "burst delivery", func() bool { return b.totalDeliveries() == burst })
	for i := uint64(1); i <= burst; i++ {
		if b.deliveries(i) != 1 {
			t.Fatalf("msg %d delivered %d times", i, b.deliveries(i))
		}
	}
	m := a.node.Metrics()
	if fb := m.ForwardBatches.Load(); fb == 0 || fb >= burst {
		t.Fatalf("ForwardBatches = %d, want coalescing (0 < frames < %d)", fb, burst)
	}
}

// TestClusterDedup: duplicates of a message id — whether retried into
// the same entry node or the owner directly — deliver exactly once.
func TestClusterDedup(t *testing.T) {
	const tenants = 64
	nodes := newTestCluster(t, 2, tenants)
	a, b := nodes[0], nodes[1]
	remote := tenantOwnedBy(t, nodes, b.node.ID(), tenants)
	local := tenantOwnedBy(t, nodes, a.node.ID(), tenants)

	// Remote tenant: send the same id three times through the bridge
	// and once directly at the owner.
	for i := 0; i < 3; i++ {
		if !a.node.Ingress(remote, 42, payloadFor(42)) {
			t.Fatal("ingress rejected")
		}
	}
	if !b.node.Ingress(remote, 42, payloadFor(42)) {
		t.Fatal("owner ingress rejected")
	}
	// Local tenant: duplicate suppression without the bridge.
	for i := 0; i < 3; i++ {
		if !a.node.Ingress(local, 7, payloadFor(7)) {
			t.Fatal("local ingress rejected")
		}
	}
	waitUntil(t, 10*time.Second, "dedup settle", func() bool {
		return b.deliveries(42) >= 1 && a.deliveries(7) >= 1
	})
	// Give late duplicates a chance to (wrongly) arrive.
	time.Sleep(50 * time.Millisecond)
	if got := b.deliveries(42); got != 1 {
		t.Fatalf("remote msg delivered %d times, want 1", got)
	}
	if got := a.deliveries(7); got != 1 {
		t.Fatalf("local msg delivered %d times, want 1", got)
	}
	if d := a.node.Metrics().RecvDeduped.Load(); d != 2 {
		t.Fatalf("entry-node dedup count = %d, want 2", d)
	}
	if d := b.node.Metrics().RecvDeduped.Load(); d < 2 {
		t.Fatalf("owner dedup count = %d, want >= 2", d)
	}
}

// TestClusterHandoff: a graceful handoff drains the old owner, moves
// ownership, and keeps traffic flowing — relayed by the old owner until
// membership changes, delivered by the new one.
func TestClusterHandoff(t *testing.T) {
	const tenants = 64
	nodes := newTestCluster(t, 2, tenants)
	a, b := nodes[0], nodes[1]
	tenant := tenantOwnedBy(t, nodes, a.node.ID(), tenants)

	// Seed some local traffic, then hand the tenant to b.
	for i := uint64(1); i <= 50; i++ {
		if !a.node.Ingress(tenant, i, payloadFor(i)) {
			t.Fatalf("pre-handoff ingress %d rejected", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.node.Handoff(ctx, tenant, b.node.ID()); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if got := a.node.Owner(tenant); got != b.node.ID() {
		t.Fatalf("old owner still routes tenant to %q", got)
	}
	waitUntil(t, 10*time.Second, "ownership transfer", func() bool {
		return b.node.Owner(tenant) == b.node.ID()
	})
	// Pre-handoff backlog was drained locally at a.
	if got := a.totalDeliveries(); got != 50 {
		t.Fatalf("old owner delivered %d of the pre-handoff backlog, want 50", got)
	}
	// New arrivals at either node land at b.
	if !a.node.Ingress(tenant, 100, payloadFor(100)) {
		t.Fatal("post-handoff ingress via old owner rejected")
	}
	if !b.node.Ingress(tenant, 101, payloadFor(101)) {
		t.Fatal("post-handoff ingress via new owner rejected")
	}
	waitUntil(t, 10*time.Second, "post-handoff delivery", func() bool {
		return b.deliveries(100) == 1 && b.deliveries(101) == 1
	})
	if a.deliveries(100) != 0 {
		t.Fatal("post-handoff item delivered at the old owner")
	}
	if h := a.node.Metrics().Handoffs.Load(); h != 1 {
		t.Fatalf("Handoffs = %d, want 1", h)
	}
	if h := b.node.Metrics().HandoffsInbound.Load(); h != 1 {
		t.Fatalf("HandoffsInbound = %d, want 1", h)
	}
}

// TestClusterPeerDeathRehoming: killing a node re-homes its tenants
// onto the survivors (each survivor recomputes the same ring), and
// traffic to those tenants keeps flowing.
func TestClusterPeerDeathRehoming(t *testing.T) {
	const tenants = 96
	nodes := newTestCluster(t, 3, tenants)
	victim := nodes[2]
	doomed := tenantOwnedBy(t, nodes, victim.node.ID(), tenants)

	victim.node.Kill()
	victim.plane.Stop()

	survivors := nodes[:2]
	waitUntil(t, 15*time.Second, "membership convergence", func() bool {
		for _, tn := range survivors {
			if len(tn.node.Members()) != 2 {
				return false
			}
		}
		return true
	})
	newOwner := survivors[0].node.Owner(doomed)
	if newOwner == victim.node.ID() || newOwner == "" {
		t.Fatalf("tenant %d still owned by dead node", doomed)
	}
	if got := survivors[1].node.Owner(doomed); got != newOwner {
		t.Fatalf("survivors disagree on the new owner: %q vs %q", newOwner, got)
	}
	// Traffic to the re-homed tenant flows via either survivor.
	if !survivors[0].node.Ingress(doomed, 1000, payloadFor(1000)) {
		t.Fatal("post-death ingress rejected")
	}
	if !survivors[1].node.Ingress(doomed, 1001, payloadFor(1001)) {
		t.Fatal("post-death ingress rejected")
	}
	ownerTN := byID(nodes, newOwner)
	waitUntil(t, 15*time.Second, "re-homed delivery", func() bool {
		return ownerTN.deliveries(1000) == 1 && ownerTN.deliveries(1001) == 1
	})
	for _, tn := range survivors {
		m := tn.node.Metrics()
		if m.PeerDowns.Load() < 1 {
			t.Fatalf("%s recorded no peer death", tn.node.ID())
		}
		if m.Rehomed.Load() < 1 {
			t.Fatalf("%s recorded no re-homed tenants", tn.node.ID())
		}
	}
}

// TestClusterWriteProm: the cluster collector emits the
// hyperplane_cluster_* series including live per-peer gauges.
func TestClusterWriteProm(t *testing.T) {
	const tenants = 16
	nodes := newTestCluster(t, 2, tenants)
	var buf strings.Builder
	nodes[0].node.Metrics().WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"hyperplane_cluster_forwarded_total",
		"hyperplane_cluster_handoffs_total",
		"hyperplane_cluster_peer_up{peer=\"node-1\"}",
		"hyperplane_cluster_outbox_frames{peer=\"node-1\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q", want)
		}
	}
}

// TestStaleSenderReforwardsWithIDs pins the receive-side ownership
// re-check: a handoff marker travels only to the NEW owner, so a third
// node keeps sending the tenant to the OLD owner. The old owner must
// re-forward those frames to the new owner with their message ids
// intact — relaying them anonymously through the plane forward would
// bypass the new owner's dedup window and double-deliver any id that
// also reached the new owner directly.
func TestStaleSenderReforwardsWithIDs(t *testing.T) {
	const tenants = 16
	nodes := newTestCluster(t, 3, tenants)
	a := byID(nodes, nodes[0].node.ID())
	b := byID(nodes, nodes[1].node.ID())
	c := byID(nodes, nodes[2].node.ID())
	tenant := tenantOwnedBy(t, nodes, a.node.ID(), tenants)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.node.Handoff(ctx, tenant, b.node.ID()); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	// c never saw the handoff marker: it still maps the tenant to a.
	if got := c.node.Owner(tenant); got != a.node.ID() {
		t.Fatalf("precondition: c's owner for tenant %d is %q, want stale %q", tenant, got, a.node.ID())
	}
	// The same id enters through the stale node AND the new owner. The
	// stale copy hops c -> a -> b; the direct copy lands at b first or
	// last — either way b's window must collapse them to one delivery.
	for id := uint64(9000); id < 9050; id++ {
		if !c.node.Ingress(tenant, id, payloadFor(id)) {
			t.Fatalf("stale-entry ingress of %d refused", id)
		}
		if !b.node.Ingress(tenant, id, payloadFor(id)) {
			t.Fatalf("owner-entry ingress of %d refused", id)
		}
	}
	waitUntil(t, 20*time.Second, "all ids delivered at the new owner", func() bool {
		for id := uint64(9000); id < 9050; id++ {
			if b.deliveries(id) < 1 {
				return false
			}
		}
		return true
	})
	time.Sleep(50 * time.Millisecond) // let the relayed copies land
	for id := uint64(9000); id < 9050; id++ {
		if n := a.deliveries(id) + b.deliveries(id) + c.deliveries(id); n != 1 {
			t.Fatalf("id %d delivered %d times, want exactly 1", id, n)
		}
	}
	if a.totalDeliveries() != 0 {
		// Nothing in this test targets a tenant a owns post-handoff.
		t.Fatalf("old owner delivered %d items for a tenant it handed off", a.totalDeliveries())
	}
}

// TestMembershipChangeClearsOverrides: a handoff override is only valid
// against the ring it was minted on. When membership changes (here: a
// new peer joins), every node must fall back to pure ring ownership —
// keeping the override would split the tenant between the override
// target and the new ring owner, because nodes that never saw the
// handoff route purely by ring.
func TestMembershipChangeClearsOverrides(t *testing.T) {
	const tenants = 32
	nodes := newTestCluster(t, 2, tenants)
	a, b := nodes[0], nodes[1]
	tenant := tenantOwnedBy(t, nodes, a.node.ID(), tenants)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.node.Handoff(ctx, tenant, b.node.ID()); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if got := a.node.Owner(tenant); got != b.node.ID() {
		t.Fatalf("post-handoff owner at a = %q, want %q", got, b.node.ID())
	}
	waitUntil(t, 10*time.Second, "handoff marker accepted", func() bool {
		return b.node.Metrics().HandoffsInbound.Load() == 1
	})

	// Membership change: both nodes learn of a new member (it does not
	// need to be reachable — joining the ring is what matters here).
	for _, tn := range nodes {
		if err := tn.node.AddPeer(PeerSpec{ID: "joiner", Addr: "127.0.0.1:1"}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tn := range nodes {
		tn.node.mu.RLock()
		no, nf := len(tn.node.overrides), len(tn.node.fwdTo)
		tn.node.mu.RUnlock()
		if no != 0 || nf != 0 {
			t.Fatalf("%s kept %d override(s) and %d forward(s) across a membership change",
				tn.node.ID(), no, nf)
		}
	}
	// Both nodes now agree on pure ring ownership for every tenant — no
	// split between an override holder and a ring router.
	for tn := 0; tn < tenants; tn++ {
		if ao, bo := a.node.Owner(tn), b.node.Owner(tn); ao != bo {
			t.Fatalf("tenant %d ownership split after membership change: %q vs %q", tn, ao, bo)
		}
	}
}

// TestStopWithoutStart: stopping a node whose peers never ran must not
// hang (shutdown joins only peers that actually started), and AddPeer
// after Stop must refuse instead of leaking an unjoinable goroutine.
func TestStopWithoutStart(t *testing.T) {
	p, err := dataplane.New(dataplane.Config{Tenants: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	n, err := NewNode(Config{
		ID:    "a",
		Plane: p,
		Peers: []PeerSpec{{ID: "b", Addr: "127.0.0.1:1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		n.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung joining a peer that never started")
	}
	if err := n.AddPeer(PeerSpec{ID: "c", Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("AddPeer after Stop succeeded")
	}
}

package cluster

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosFedPartition is the partition chaos drill the federation
// must survive: three nodes take concurrent traffic from racing
// producers, one node is killed mid-stream (no flush, no goodbye — a
// crash), and the cluster must (1) converge both survivors onto the
// same two-member ring, (2) keep delivering traffic to the dead node's
// re-homed tenants, and (3) preserve exactly-once per message id on the
// survivors even though every producer deliberately sends each id
// twice, through randomly chosen entry nodes. Run under -race: the
// interesting failures here are ordering bugs between the prober, the
// re-homing path and the admission locks.
func TestChaosFedPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill is seconds-long; skipped in -short")
	}
	const (
		tenants   = 96
		producers = 4
		perPhase  = 300 // ids per producer per phase
	)
	nodes := newTestCluster(t, 3, tenants)
	victim := nodes[2]

	var idGen atomic.Uint64
	var wg sync.WaitGroup
	produce := func(entry []*testNode, seed int64, n int) []uint64 {
		rng := rand.New(rand.NewSource(seed))
		sent := make([]uint64, 0, n)
		for len(sent) < n {
			id := idGen.Add(1)
			tenant := rng.Intn(tenants)
			// Exactly-once probe: every id goes in twice, possibly via
			// different entry nodes; the owner's window must collapse
			// them to one delivery.
			first := entry[rng.Intn(len(entry))]
			second := entry[rng.Intn(len(entry))]
			okA := first.node.Ingress(tenant, id, payloadFor(id))
			okB := second.node.Ingress(tenant, id, payloadFor(id))
			if okA || okB {
				sent = append(sent, id)
			}
		}
		return sent
	}

	// Phase 1: all three nodes take traffic.
	phase1 := make([][]uint64, producers)
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phase1[i] = produce(nodes, int64(i), perPhase)
		}(i)
	}
	// Kill the victim while the producers are mid-stream.
	time.Sleep(20 * time.Millisecond)
	victim.node.Kill()
	victim.plane.Stop()
	wg.Wait()

	// Survivors converge on the two-member ring.
	survivors := nodes[:2]
	waitUntil(t, 30*time.Second, "membership convergence", func() bool {
		for _, tn := range survivors {
			if len(tn.node.Members()) != 2 {
				return false
			}
		}
		return true
	})
	for tenant := 0; tenant < tenants; tenant++ {
		a := survivors[0].node.Owner(tenant)
		if b := survivors[1].node.Owner(tenant); a != b {
			t.Fatalf("tenant %d ownership split: %q vs %q", tenant, a, b)
		}
		if a == victim.node.ID() {
			t.Fatalf("tenant %d still owned by the dead node", tenant)
		}
	}

	// Phase 2: post-partition traffic through the survivors only. Every
	// id must deliver exactly once across the surviving planes.
	phase2 := make([][]uint64, producers)
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phase2[i] = produce(survivors, int64(100+i), perPhase)
		}(i)
	}
	wg.Wait()

	want := 0
	for _, ids := range phase2 {
		want += len(ids)
	}
	waitUntil(t, 60*time.Second, "phase-2 delivery", func() bool {
		got := 0
		for _, ids := range phase2 {
			for _, id := range ids {
				if survivors[0].deliveries(id)+survivors[1].deliveries(id) >= 1 {
					got++
				}
			}
		}
		return got == want
	})
	// Let stragglers (retried frames, late flushes) land before the
	// exactly-once sweep.
	time.Sleep(100 * time.Millisecond)
	for _, ids := range phase2 {
		for _, id := range ids {
			if n := survivors[0].deliveries(id) + survivors[1].deliveries(id); n != 1 {
				t.Fatalf("post-partition msg %d delivered %d times, want exactly 1", id, n)
			}
		}
	}
	// Phase-1 ids that reached a survivor-owned tenant must not have
	// been double-delivered either (dedup held through the chaos).
	for _, ids := range phase1 {
		for _, id := range ids {
			if n := survivors[0].deliveries(id) + survivors[1].deliveries(id); n > 1 {
				t.Fatalf("phase-1 msg %d delivered %d times on the survivors", id, n)
			}
		}
	}
}

// TestChaosFedHandoffUnderLoad: graceful handoffs while producers keep
// hammering the tenant — no message may be double-delivered and the
// tenant must end up served by the new owner.
func TestChaosFedHandoffUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill is seconds-long; skipped in -short")
	}
	const tenants = 32
	nodes := newTestCluster(t, 2, tenants)
	a, b := nodes[0], nodes[1]
	tenant := tenantOwnedBy(t, nodes, a.node.ID(), tenants)

	const perProducer = 600
	var sent []uint64
	var sentMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perProducer; i++ {
				id := uint64(w+1)<<32 | uint64(i+1)
				entry := nodes[rng.Intn(2)]
				// Double-send every id: dedup must hold mid-handoff.
				okA := entry.node.Ingress(tenant, id, payloadFor(id))
				okB := nodes[rng.Intn(2)].node.Ingress(tenant, id, payloadFor(id))
				if okA || okB {
					sentMu.Lock()
					sent = append(sent, id)
					sentMu.Unlock()
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.node.Handoff(ctx, tenant, b.node.ID()); err != nil {
		t.Fatalf("handoff under load: %v", err)
	}
	wg.Wait()

	sentMu.Lock()
	ids := append([]uint64(nil), sent...)
	sentMu.Unlock()
	waitUntil(t, 60*time.Second, "all ids delivered", func() bool {
		for _, id := range ids {
			if a.deliveries(id)+b.deliveries(id) < 1 {
				return false
			}
		}
		return true
	})
	time.Sleep(100 * time.Millisecond)
	dupes := 0
	for _, id := range ids {
		if n := a.deliveries(id) + b.deliveries(id); n > 1 {
			dupes++
		}
	}
	// The dedup window travels with the handoff (state frame precedes
	// forwarded traffic in the bridge's FIFO outbox), so even ids whose
	// duplicate raced the ownership flip must collapse to one delivery.
	if dupes > 0 {
		t.Fatalf("%d of %d ids double-delivered across the handoff", dupes, len(ids))
	}
	if b.node.Owner(tenant) != b.node.ID() {
		t.Fatal("tenant not owned by the new owner after handoff")
	}
}

package cluster

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/cluster/frame"
)

// PeerSpec names a remote node: its cluster-wide id and dial address.
type PeerSpec struct {
	ID   string
	Addr string
}

// Dial backoff bounds: the first retry after a connection loss waits
// dialBackoffMin, doubling per failure up to dialBackoffMax.
const (
	dialBackoffMin = 100 * time.Millisecond
	dialBackoffMax = 5 * time.Second
)

// outFrame is one encoded frame queued for the writer, with its item
// count so drop accounting charges the right number of items.
type outFrame struct {
	bytes []byte
	items int
}

// peer is one remote node as seen from here: the staging encoder that
// coalesces forwarded items into batch frames (the remote-doorbell
// analogue of the edge's per-tenant stagers — same-tenant items share a
// run header, and one frame decodes into one IngressBatch on the
// owner), the bounded outbox a dedicated writer goroutine drains into a
// persistent TCP connection, and the health state that decides when the
// remote is declared dead.
type peer struct {
	id   string
	addr string
	n    *Node

	mu       sync.Mutex
	enc      frame.Encoder
	staged   int       // items in the open (unsealed) batch
	stagedAt time.Time // when the open batch got its first item
	outbox   []outFrame

	kick chan struct{} // size-1 writer nudge

	up           atomic.Bool
	everUp       atomic.Bool
	lastPong     atomic.Int64 // UnixNano of the last pong (liveness proof)
	declaredDown atomic.Bool  // this node has removed the peer from its ring

	running  atomic.Bool // run() launched (set under the node's mu)
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newPeer(n *Node, spec PeerSpec) *peer {
	return &peer{
		id:   spec.ID,
		addr: spec.Addr,
		n:    n,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// send stages one item for this peer. The payload is copied into the
// staging encoder before returning, so the caller may recycle its
// buffer immediately. A batch is sealed into the outbox (and the
// writer kicked) when it reaches FlushBatch items OR when adding the
// item would push the frame past the receiver's payload cap — both
// sides run the same MaxPayload config, and an oversized frame is not
// a soft error on the wire: the receiver tears the connection down. A
// single payload too large to fit any frame is rejected here and
// counted in hyperplane_cluster_forward_dropped_total.
//
// Acceptance means "queued for forwarding", not delivered: the outbox
// retries frames whose socket write failed, but there is no
// application-level ack, so a frame the kernel accepted and the
// receiver then discarded (crash, or a stream poisoned by an earlier
// corrupt frame) is lost without retry — see writeOutbox. Bounded
// overflow drops under the configured policy, counted in
// hyperplane_cluster_forward_dropped_total.
func (pr *peer) send(tenant uint32, msgID uint64, payload []byte) bool {
	need := frame.BatchRunOverhead + frame.BatchItemOverhead + len(payload)
	if need > pr.n.maxPayload {
		pr.n.cm.ForwardDropped.Add(1)
		return false
	}
	pr.mu.Lock()
	sealed := false
	if pr.staged > 0 && pr.enc.Len()-frame.HeaderSize+need > pr.n.maxPayload {
		pr.flushLocked()
		sealed = true
	}
	if pr.staged == 0 {
		pr.enc.Reset()
		pr.stagedAt = time.Now()
	}
	pr.enc.Add(tenant, msgID, payload)
	pr.staged++
	if pr.staged >= pr.n.flushBatch {
		pr.flushLocked()
		sealed = true
	}
	pr.mu.Unlock()
	if sealed {
		pr.wake()
	}
	return true
}

// flushLocked seals the open batch into the outbox.
func (pr *peer) flushLocked() {
	if pr.staged == 0 {
		return
	}
	f := pr.enc.Finish()
	pr.enqueueLocked(outFrame{bytes: append([]byte(nil), f...), items: pr.staged})
	pr.staged = 0
	pr.enc.Reset()
}

// enqueueLocked appends a frame to the bounded outbox, applying the
// forward-buffer drop policy on overflow. Control frames (items == 0)
// always make room by evicting the oldest batch — an ownership marker
// must not be the thing a full buffer drops.
func (pr *peer) enqueueLocked(f outFrame) {
	for len(pr.outbox) >= pr.n.forwardBuffer {
		if pr.n.forwardPolicy == dataplane.DropNewest && f.items > 0 {
			pr.n.cm.ForwardDropped.Add(int64(f.items))
			return
		}
		victim := pr.outbox[0]
		copy(pr.outbox, pr.outbox[1:])
		pr.outbox = pr.outbox[:len(pr.outbox)-1]
		pr.n.cm.ForwardDropped.Add(int64(victim.items))
	}
	pr.outbox = append(pr.outbox, f)
}

// flush seals any partial batch and kicks the writer (FlushInterval
// staleness, handoff tails, connection re-establishment).
func (pr *peer) flush() {
	pr.mu.Lock()
	pr.flushLocked()
	pending := len(pr.outbox) > 0
	pr.mu.Unlock()
	if pending {
		pr.wake()
	}
}

// control enqueues a pre-encoded control frame behind any staged items,
// preserving order (a handoff marker must trail the forwarded tail).
func (pr *peer) control(f []byte) {
	pr.mu.Lock()
	pr.flushLocked()
	pr.enqueueLocked(outFrame{bytes: f})
	pr.mu.Unlock()
	pr.wake()
}

func (pr *peer) wake() {
	select {
	case pr.kick <- struct{}{}:
	default:
	}
}

// outboxLen reports queued frames (telemetry gauge).
func (pr *peer) outboxLen() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return len(pr.outbox)
}

// shutdown stops the peer goroutine; graceful seals the partial batch
// first so a final writeOutbox attempt can push it out.
func (pr *peer) shutdown(graceful bool) {
	if graceful {
		pr.flush()
	}
	pr.stopOnce.Do(func() { close(pr.stop) })
}

// start launches the connection goroutine exactly once. Callers hold
// the node's mu, so the start decision serializes with the shutdown
// snapshot: every peer shutdown() sees with running set is joinable,
// and no peer can begin running after the snapshot was taken.
func (pr *peer) start() {
	if pr.running.CompareAndSwap(false, true) {
		go pr.run()
	}
}

// alive records a liveness proof — an actual pong from the remote —
// and re-admits the peer to the ring if this node had declared it
// dead. A successful dial is deliberately NOT proof: a hung process
// can keep accepting TCP connections forever.
func (pr *peer) alive() {
	pr.lastPong.Store(time.Now().UnixNano())
	if pr.declaredDown.CompareAndSwap(true, false) {
		pr.n.peerUp(pr.id)
	}
}

// checkDead declares the peer dead once the pong clock is stale past
// DeadAfter — regardless of whether dials succeed.
func (pr *peer) checkDead() {
	if pr.declaredDown.Load() {
		return
	}
	if time.Since(time.Unix(0, pr.lastPong.Load())) >= pr.n.deadAfter {
		if pr.declaredDown.CompareAndSwap(false, true) {
			pr.n.peerDown(pr.id)
		}
	}
}

// run is the peer's connection lifecycle: dial with capped backoff,
// hello, serve until the connection dies, repeat until shutdown.
// Liveness is judged by pongs alone: lastPong refreshes only when the
// remote answers a ping (readLoop → alive), and the peer is declared
// dead whenever now−lastPong exceeds DeadAfter, whether the failure
// mode is refused dials or a hung-but-listening process. The ring
// re-admits the peer on the next pong, not on a mere successful dial.
func (pr *peer) run() {
	defer close(pr.done)
	backoff := dialBackoffMin
	pr.lastPong.Store(time.Now().UnixNano()) // grace window from start
	for {
		select {
		case <-pr.stop:
			return
		default:
		}
		pr.checkDead()
		conn, err := net.DialTimeout("tcp", pr.addr, pr.n.healthTimeout)
		if err == nil {
			conn.SetWriteDeadline(time.Now().Add(pr.n.healthTimeout))
			if _, werr := conn.Write(frame.AppendHello(nil, pr.n.cfg.ID)); werr != nil {
				conn.Close()
				err = werr
			} else {
				conn.SetWriteDeadline(time.Time{})
			}
		}
		if err != nil {
			select {
			case <-pr.stop:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > dialBackoffMax {
				backoff = dialBackoffMax
			}
			continue
		}
		if pr.everUp.Load() {
			pr.n.cm.Reconnects.Add(1)
		}
		pr.everUp.Store(true)
		backoff = dialBackoffMin
		pr.up.Store(true)
		pr.flush() // anything staged while disconnected goes out now
		pr.serveConn(conn)
		pr.up.Store(false)
		conn.Close()
	}
}

// serveConn drives one established connection: drain the outbox on
// kicks, seal stale partial batches on the flush tick, probe liveness
// with pings, and bail on any read/write error (framing is untrusted
// after a failure — the reconnect path starts clean).
func (pr *peer) serveConn(conn net.Conn) {
	readErr := make(chan struct{}, 1)
	go pr.readLoop(conn, readErr)
	ping := time.NewTicker(pr.n.healthInterval)
	defer ping.Stop()
	flushT := time.NewTicker(pr.n.flushInterval)
	defer flushT.Stop()
	var nonce uint64
	for {
		select {
		case <-pr.stop:
			pr.writeOutbox(conn) // best-effort final drain
			return
		case <-readErr:
			return
		case <-ping.C:
			if time.Since(time.Unix(0, pr.lastPong.Load())) > pr.n.deadAfter {
				// The remote accepts our writes but never answers:
				// declare it dead, but KEEP the connection and keep
				// pinging — the next pong is what re-admits it, so the
				// probe stream must not stop (a truly wedged socket
				// ends via the write deadline below instead).
				pr.n.cm.ProbeFailures.Add(1)
				pr.checkDead()
			}
			nonce++
			conn.SetWriteDeadline(time.Now().Add(pr.n.healthTimeout))
			if _, err := conn.Write(frame.AppendPing(nil, frame.TypePing, nonce)); err != nil {
				return
			}
		case <-flushT.C:
			pr.mu.Lock()
			if pr.staged > 0 && time.Since(pr.stagedAt) >= pr.n.flushInterval {
				pr.flushLocked()
			}
			pr.mu.Unlock()
			if err := pr.writeOutbox(conn); err != nil {
				return
			}
		case <-pr.kick:
			if err := pr.writeOutbox(conn); err != nil {
				return
			}
		}
	}
}

// writeOutbox drains queued frames onto the connection. A failed write
// puts the frame back at the head so the reconnect retries it; a frame
// the socket accepted is treated as delivered and popped. That makes
// the forward hop at-least-once across write *errors* but at-most-once
// past a successful write: with no application-level ack, a frame the
// receiver discards after the write (receiver crash, or a connection
// torn down by an earlier corrupt/oversized frame) is lost without
// retry and without a ForwardDropped count. The owner's dedup window
// absorbs the duplicates retries can produce; end-to-end delivery
// confirmation belongs to the layer above (the edge acks only what the
// owner admitted).
func (pr *peer) writeOutbox(conn net.Conn) error {
	for {
		pr.mu.Lock()
		if len(pr.outbox) == 0 {
			pr.mu.Unlock()
			return nil
		}
		f := pr.outbox[0]
		copy(pr.outbox, pr.outbox[1:])
		pr.outbox = pr.outbox[:len(pr.outbox)-1]
		pr.mu.Unlock()

		conn.SetWriteDeadline(time.Now().Add(pr.n.healthTimeout))
		if _, err := conn.Write(f.bytes); err != nil {
			pr.mu.Lock()
			pr.outbox = append(pr.outbox, outFrame{})
			copy(pr.outbox[1:], pr.outbox)
			pr.outbox[0] = f
			pr.mu.Unlock()
			return err
		}
		if f.items > 0 {
			pr.n.cm.ForwardBatches.Add(1)
		}
		pr.n.cm.ForwardBytes.Add(int64(len(f.bytes)))
	}
}

// readLoop consumes the response side of the outbound connection —
// pongs refresh the liveness clock; anything else is tolerated and
// ignored. Any error closes the loop and signals serveConn.
func (pr *peer) readLoop(conn net.Conn, errc chan<- struct{}) {
	r := frame.NewReader(conn, pr.n.maxPayload)
	for {
		h, payload, err := r.Next()
		if err != nil {
			select {
			case errc <- struct{}{}:
			default:
			}
			return
		}
		if h.Type == frame.TypePong {
			if _, err := frame.ParsePing(payload); err == nil {
				pr.alive()
			}
		}
	}
}

package cluster

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/cluster/frame"
)

// newLoneNode builds a started node with no peers and fast timings.
func newLoneNode(t *testing.T, id string, mut func(*Config)) (*Node, *dataplane.Plane) {
	t.Helper()
	p, err := dataplane.New(dataplane.Config{Tenants: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	cfg := Config{
		ID:             id,
		Plane:          p,
		FlushBatch:     1,
		FlushInterval:  time.Millisecond,
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  300 * time.Millisecond,
		DeadAfter:      400 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Stop()
		p.Stop()
	})
	return n, p
}

// TestOutboxDropOldest: with an unreachable peer and a tiny forward
// buffer, overflow evicts the oldest frames and charges ForwardDropped.
func TestOutboxDropOldest(t *testing.T) {
	n, _ := newLoneNode(t, "a", func(c *Config) {
		c.ForwardBuffer = 2
		c.ForwardPolicy = dataplane.DropOldest
	})
	// Unroutable address: the dialer stays in backoff, nothing drains.
	if err := n.AddPeer(PeerSpec{ID: "ghost", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	pr := n.peers["ghost"]
	for i := uint64(1); i <= 10; i++ {
		pr.send(0, i, []byte("x"))
	}
	if got := pr.outboxLen(); got != 2 {
		t.Fatalf("outbox holds %d frames, want the 2-frame bound", got)
	}
	if d := n.Metrics().ForwardDropped.Load(); d != 8 {
		t.Fatalf("ForwardDropped = %d, want 8", d)
	}
	// DropOldest keeps the newest frames: the survivors are 9 and 10.
	pr.mu.Lock()
	first := pr.outbox[0].bytes
	pr.mu.Unlock()
	h, err := frame.ParseHeader(first, 0)
	if err != nil {
		t.Fatal(err)
	}
	it := frame.IterBatch(first[frame.HeaderSize : frame.HeaderSize+h.Length])
	_, id, _, ok := it.Next()
	if !ok || id != 9 {
		t.Fatalf("oldest surviving frame carries msg %d, want 9", id)
	}
}

// TestOutboxDropNewest: the opposite policy refuses new frames instead.
func TestOutboxDropNewest(t *testing.T) {
	n, _ := newLoneNode(t, "a", func(c *Config) {
		c.ForwardBuffer = 2
		c.ForwardPolicy = dataplane.DropNewest
	})
	if err := n.AddPeer(PeerSpec{ID: "ghost", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	pr := n.peers["ghost"]
	for i := uint64(1); i <= 10; i++ {
		pr.send(0, i, []byte("x"))
	}
	if d := n.Metrics().ForwardDropped.Load(); d != 8 {
		t.Fatalf("ForwardDropped = %d, want 8", d)
	}
	pr.mu.Lock()
	first := pr.outbox[0].bytes
	pr.mu.Unlock()
	h, _ := frame.ParseHeader(first, 0)
	it := frame.IterBatch(first[frame.HeaderSize : frame.HeaderSize+h.Length])
	_, id, _, ok := it.Next()
	if !ok || id != 1 {
		t.Fatalf("oldest frame carries msg %d, want 1 (DropNewest keeps the head)", id)
	}
	// A control frame always makes room, even under DropNewest.
	pr.control(frame.AppendHandoff(nil, 3, 0))
	pr.mu.Lock()
	last := pr.outbox[len(pr.outbox)-1].bytes
	pr.mu.Unlock()
	if h, _ := frame.ParseHeader(last, 0); h.Type != frame.TypeHandoff {
		t.Fatalf("control frame not queued under DropNewest (tail is %v)", h.Type)
	}
}

// TestSendSealsAtFrameCap: staging seals by byte size before the frame
// would exceed the receiver's payload cap, not only at FlushBatch
// items — an oversized frame is fatal to the receiving connection, so
// one must never be built.
func TestSendSealsAtFrameCap(t *testing.T) {
	const maxPayload = 4096
	n, _ := newLoneNode(t, "a", func(c *Config) {
		c.FlushBatch = 64 // item-count seal must NOT be what bounds frames here
		c.MaxPayload = maxPayload
		c.DedupWindow = 64
		c.FlushInterval = time.Hour // no tick-driven seals during the test
	})
	if err := n.AddPeer(PeerSpec{ID: "ghost", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	pr := n.peers["ghost"]
	const items = 40
	payload := make([]byte, 512)
	for i := uint64(1); i <= items; i++ {
		if !pr.send(uint32(i%4), i, payload) {
			t.Fatalf("send %d rejected", i)
		}
	}
	pr.flush()
	pr.mu.Lock()
	frames := make([][]byte, len(pr.outbox))
	counts := 0
	for i, f := range pr.outbox {
		frames[i] = append([]byte(nil), f.bytes...)
		counts += f.items
	}
	pr.mu.Unlock()
	if counts != items {
		t.Fatalf("outbox accounts for %d items, want %d", counts, items)
	}
	got := 0
	for _, fb := range frames {
		h, err := frame.ParseHeader(fb, maxPayload)
		if err != nil {
			t.Fatalf("a staged frame violates the receiver's cap: %v", err)
		}
		it := frame.IterBatch(fb[frame.HeaderSize : frame.HeaderSize+h.Length])
		for {
			if _, _, _, ok := it.Next(); !ok {
				break
			}
			got++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
	}
	if got != items {
		t.Fatalf("decoded %d items across sealed frames, want %d", got, items)
	}
	if d := n.Metrics().ForwardDropped.Load(); d != 0 {
		t.Fatalf("ForwardDropped = %d, want 0", d)
	}
}

// TestSendRejectsOversizePayload: a single payload that cannot fit any
// frame is refused at send and counted as dropped, instead of being
// framed and killing the receiving connection.
func TestSendRejectsOversizePayload(t *testing.T) {
	n, _ := newLoneNode(t, "a", func(c *Config) {
		c.MaxPayload = 2048
		c.DedupWindow = 64
	})
	if err := n.AddPeer(PeerSpec{ID: "ghost", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	pr := n.peers["ghost"]
	if pr.send(1, 7, make([]byte, 2048)) {
		t.Fatal("oversize payload accepted")
	}
	if d := n.Metrics().ForwardDropped.Load(); d != 1 {
		t.Fatalf("ForwardDropped = %d, want 1", d)
	}
	// Right at the boundary it still fits.
	if !pr.send(1, 8, make([]byte, 2048-frame.BatchRunOverhead-frame.BatchItemOverhead)) {
		t.Fatal("boundary payload rejected")
	}
}

// TestForwardingSurvivesByteHeavyBatches: end-to-end pin for the frame
// cap — two real nodes with a small shared MaxPayload and a FlushBatch
// whose worst case is far above it. Every forwarded item must arrive:
// before byte-based sealing, one staged batch exceeded the receiver's
// cap, tore the connection down, and silently lost the frame.
func TestForwardingSurvivesByteHeavyBatches(t *testing.T) {
	const (
		tenants    = 16
		maxPayload = 4096
		items      = 60
	)
	mut := func(c *Config) {
		c.FlushBatch = 64
		c.MaxPayload = maxPayload
		c.DedupWindow = 256
	}
	a, _ := newLoneNode(t, "a", mut)
	b, _ := newLoneNode(t, "b", mut)
	if err := a.AddPeer(PeerSpec{ID: "b", Addr: b.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(PeerSpec{ID: "a", Addr: a.Addr()}); err != nil {
		t.Fatal(err)
	}
	remote := -1
	for tn := 0; tn < 8; tn++ { // newLoneNode planes have 8 tenants
		if a.Owner(tn) == "b" {
			remote = tn
			break
		}
	}
	if remote == -1 {
		t.Fatal("no tenant owned by b")
	}
	payload := make([]byte, 512)
	for i := uint64(1); i <= items; i++ {
		if !a.Ingress(remote, i, payload) {
			t.Fatalf("ingress %d rejected", i)
		}
	}
	waitUntil(t, 15*time.Second, "byte-heavy batches delivered", func() bool {
		return b.Metrics().ReceivedItems.Load() == items
	})
	if fe := b.Metrics().FrameErrors.Load(); fe != 0 {
		t.Fatalf("receiver counted %d frame errors, want 0", fe)
	}
	if d := a.Metrics().ForwardDropped.Load(); d != 0 {
		t.Fatalf("sender dropped %d items, want 0", d)
	}
}

// TestHungPeerDeclaredDead: a remote that accepts TCP connections but
// never answers pings must still be declared dead (its tenants re-home)
// — and must be re-admitted once it starts answering. Liveness is the
// pong clock, not dial success.
func TestHungPeerDeclaredDead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var answer atomic.Bool
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := frame.NewReader(c, 0)
				for {
					h, payload, err := r.Next()
					if err != nil {
						return
					}
					if h.Type == frame.TypePing && answer.Load() {
						nonce, perr := frame.ParsePing(payload)
						if perr != nil {
							return
						}
						if _, werr := c.Write(frame.AppendPing(nil, frame.TypePong, nonce)); werr != nil {
							return
						}
					}
				}
			}(c)
		}
	}()
	n, _ := newLoneNode(t, "a", nil)
	if err := n.AddPeer(PeerSpec{ID: "hung", Addr: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Members()); got != 2 {
		t.Fatalf("optimistic membership = %d members, want 2", got)
	}
	// The hung phase: connections succeed, pings vanish. The old
	// dial-success liveness never fired here.
	waitUntil(t, 15*time.Second, "hung peer declared dead", func() bool {
		return len(n.Members()) == 1
	})
	if pd := n.Metrics().PeerDowns.Load(); pd < 1 {
		t.Fatalf("PeerDowns = %d, want >= 1", pd)
	}
	// Recovery: the moment it answers a ping, the pong re-admits it.
	answer.Store(true)
	waitUntil(t, 15*time.Second, "recovered peer re-admitted", func() bool {
		return len(n.Members()) == 2
	})
	if pu := n.Metrics().PeerUps.Load(); pu < 1 {
		t.Fatalf("PeerUps = %d, want >= 1", pu)
	}
}

// TestBridgeReconnect: a flaky remote that accepts and immediately
// drops connections drives the dialer through its reconnect path.
func TestBridgeReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close() // drop immediately: the peer's read loop errors out
		}
	}()
	n, _ := newLoneNode(t, "a", nil)
	if err := n.AddPeer(PeerSpec{ID: "flaky", Addr: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 15*time.Second, "reconnect attempts", func() bool {
		return n.Metrics().Reconnects.Load() >= 2
	})
}

// TestInboundRejectsGarbage: a connection speaking garbage is counted
// and dropped; the node survives and keeps serving valid peers.
func TestInboundRejectsGarbage(t *testing.T) {
	n, _ := newLoneNode(t, "a", nil)
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "frame error count", func() bool {
		return n.Metrics().FrameErrors.Load() >= 1
	})
	// The listener is still alive for well-formed peers.
	conn2, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(frame.AppendHello(nil, "b")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write(frame.AppendPing(nil, frame.TypePing, 77)); err != nil {
		t.Fatal(err)
	}
	r := frame.NewReader(conn2, 0)
	conn2.SetReadDeadline(time.Now().Add(10 * time.Second))
	h, payload, err := r.Next()
	if err != nil {
		t.Fatalf("pong read: %v", err)
	}
	if h.Type != frame.TypePong {
		t.Fatalf("got %v, want pong", h.Type)
	}
	if nonce, _ := frame.ParsePing(payload); nonce != 77 {
		t.Fatalf("pong nonce = %d, want 77", nonce)
	}
}

// TestInboundBatchFeedsPlane: a raw peer connection delivering a batch
// frame lands items in the plane, and the payload copy keeps them
// intact after the reader's buffer is reused by a second frame.
func TestInboundBatchFeedsPlane(t *testing.T) {
	n, p := newLoneNode(t, "a", nil)
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frame.AppendHello(nil, "b")); err != nil {
		t.Fatal(err)
	}
	var e frame.Encoder
	e.Reset()
	e.Add(1, 500, []byte("first-frame-payload"))
	if _, err := conn.Write(e.Finish()); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	e.Add(2, 501, []byte("XXXXX-overwrite-XXX"))
	if _, err := conn.Write(e.Finish()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "batch admission", func() bool {
		return n.Metrics().ReceivedItems.Load() == 2
	})
	got, ok := p.EgressWait(1)
	if !ok || string(got) != "first-frame-payload" {
		t.Fatalf("tenant 1 payload = %q, %v", got, ok)
	}
	got, ok = p.EgressWait(2)
	if !ok || string(got) != "XXXXX-overwrite-XXX" {
		t.Fatalf("tenant 2 payload = %q, %v", got, ok)
	}
}

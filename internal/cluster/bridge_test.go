package cluster

import (
	"net"
	"testing"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/cluster/frame"
)

// newLoneNode builds a started node with no peers and fast timings.
func newLoneNode(t *testing.T, id string, mut func(*Config)) (*Node, *dataplane.Plane) {
	t.Helper()
	p, err := dataplane.New(dataplane.Config{Tenants: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	cfg := Config{
		ID:             id,
		Plane:          p,
		FlushBatch:     1,
		FlushInterval:  time.Millisecond,
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  300 * time.Millisecond,
		DeadAfter:      400 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Stop()
		p.Stop()
	})
	return n, p
}

// TestOutboxDropOldest: with an unreachable peer and a tiny forward
// buffer, overflow evicts the oldest frames and charges ForwardDropped.
func TestOutboxDropOldest(t *testing.T) {
	n, _ := newLoneNode(t, "a", func(c *Config) {
		c.ForwardBuffer = 2
		c.ForwardPolicy = dataplane.DropOldest
	})
	// Unroutable address: the dialer stays in backoff, nothing drains.
	if err := n.AddPeer(PeerSpec{ID: "ghost", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	pr := n.peers["ghost"]
	for i := uint64(1); i <= 10; i++ {
		pr.send(0, i, []byte("x"))
	}
	if got := pr.outboxLen(); got != 2 {
		t.Fatalf("outbox holds %d frames, want the 2-frame bound", got)
	}
	if d := n.Metrics().ForwardDropped.Load(); d != 8 {
		t.Fatalf("ForwardDropped = %d, want 8", d)
	}
	// DropOldest keeps the newest frames: the survivors are 9 and 10.
	pr.mu.Lock()
	first := pr.outbox[0].bytes
	pr.mu.Unlock()
	h, err := frame.ParseHeader(first, 0)
	if err != nil {
		t.Fatal(err)
	}
	it := frame.IterBatch(first[frame.HeaderSize : frame.HeaderSize+h.Length])
	_, id, _, ok := it.Next()
	if !ok || id != 9 {
		t.Fatalf("oldest surviving frame carries msg %d, want 9", id)
	}
}

// TestOutboxDropNewest: the opposite policy refuses new frames instead.
func TestOutboxDropNewest(t *testing.T) {
	n, _ := newLoneNode(t, "a", func(c *Config) {
		c.ForwardBuffer = 2
		c.ForwardPolicy = dataplane.DropNewest
	})
	if err := n.AddPeer(PeerSpec{ID: "ghost", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	pr := n.peers["ghost"]
	for i := uint64(1); i <= 10; i++ {
		pr.send(0, i, []byte("x"))
	}
	if d := n.Metrics().ForwardDropped.Load(); d != 8 {
		t.Fatalf("ForwardDropped = %d, want 8", d)
	}
	pr.mu.Lock()
	first := pr.outbox[0].bytes
	pr.mu.Unlock()
	h, _ := frame.ParseHeader(first, 0)
	it := frame.IterBatch(first[frame.HeaderSize : frame.HeaderSize+h.Length])
	_, id, _, ok := it.Next()
	if !ok || id != 1 {
		t.Fatalf("oldest frame carries msg %d, want 1 (DropNewest keeps the head)", id)
	}
	// A control frame always makes room, even under DropNewest.
	pr.control(frame.AppendHandoff(nil, 3, 0))
	pr.mu.Lock()
	last := pr.outbox[len(pr.outbox)-1].bytes
	pr.mu.Unlock()
	if h, _ := frame.ParseHeader(last, 0); h.Type != frame.TypeHandoff {
		t.Fatalf("control frame not queued under DropNewest (tail is %v)", h.Type)
	}
}

// TestBridgeReconnect: a flaky remote that accepts and immediately
// drops connections drives the dialer through its reconnect path.
func TestBridgeReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close() // drop immediately: the peer's read loop errors out
		}
	}()
	n, _ := newLoneNode(t, "a", nil)
	if err := n.AddPeer(PeerSpec{ID: "flaky", Addr: ln.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 15*time.Second, "reconnect attempts", func() bool {
		return n.Metrics().Reconnects.Load() >= 2
	})
}

// TestInboundRejectsGarbage: a connection speaking garbage is counted
// and dropped; the node survives and keeps serving valid peers.
func TestInboundRejectsGarbage(t *testing.T) {
	n, _ := newLoneNode(t, "a", nil)
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "frame error count", func() bool {
		return n.Metrics().FrameErrors.Load() >= 1
	})
	// The listener is still alive for well-formed peers.
	conn2, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(frame.AppendHello(nil, "b")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write(frame.AppendPing(nil, frame.TypePing, 77)); err != nil {
		t.Fatal(err)
	}
	r := frame.NewReader(conn2, 0)
	conn2.SetReadDeadline(time.Now().Add(10 * time.Second))
	h, payload, err := r.Next()
	if err != nil {
		t.Fatalf("pong read: %v", err)
	}
	if h.Type != frame.TypePong {
		t.Fatalf("got %v, want pong", h.Type)
	}
	if nonce, _ := frame.ParsePing(payload); nonce != 77 {
		t.Fatalf("pong nonce = %d, want 77", nonce)
	}
}

// TestInboundBatchFeedsPlane: a raw peer connection delivering a batch
// frame lands items in the plane, and the payload copy keeps them
// intact after the reader's buffer is reused by a second frame.
func TestInboundBatchFeedsPlane(t *testing.T) {
	n, p := newLoneNode(t, "a", nil)
	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frame.AppendHello(nil, "b")); err != nil {
		t.Fatal(err)
	}
	var e frame.Encoder
	e.Reset()
	e.Add(1, 500, []byte("first-frame-payload"))
	if _, err := conn.Write(e.Finish()); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	e.Add(2, 501, []byte("XXXXX-overwrite-XXX"))
	if _, err := conn.Write(e.Finish()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "batch admission", func() bool {
		return n.Metrics().ReceivedItems.Load() == 2
	})
	got, ok := p.EgressWait(1)
	if !ok || string(got) != "first-frame-payload" {
		t.Fatalf("tenant 1 payload = %q, %v", got, ok)
	}
	got, ok = p.EgressWait(2)
	if !ok || string(got) != "XXXXX-overwrite-XXX" {
		t.Fatalf("tenant 2 payload = %q, %v", got, ok)
	}
}

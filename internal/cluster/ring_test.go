package cluster

import (
	"fmt"
	"sort"
	"testing"
)

const ringTenants = 100_000

// ownerAt probes the ring at a raw 64-bit position (bypassing the
// tenant hash) so the wraparound/collision table can pin exact
// boundaries.
func ownerAt(r *Ring, pos uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

func ownerCounts(r *Ring, tenants int) map[string]int {
	c := make(map[string]int)
	for t := 0; t < tenants; t++ {
		c[r.Owner(t)]++
	}
	return c
}

// TestRingBalance is the load-imbalance property: for every cluster size
// the federation targets (3-16 nodes), the most-loaded node carries at
// most 15% more than its fair share of 100k tenants.
func TestRingBalance(t *testing.T) {
	for n := 3; n <= 16; n++ {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("node-%d", i))
		}
		counts := ownerCounts(r, ringTenants)
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own tenants", n, len(counts))
		}
		mean := float64(ringTenants) / float64(n)
		for node, c := range counts {
			imb := float64(c)/mean - 1
			if imb > 0.15 {
				t.Errorf("n=%d: %s owns %d tenants, %.1f%% over the fair share %f",
					n, node, c, imb*100, mean)
			}
		}
	}
}

// TestRingMinimalMovement is the consistency property: one node joining
// (or leaving) an n-node ring moves only the tenants it gains (loses) —
// roughly 1/(n+1) of them — and every unmoved tenant keeps its exact
// owner. Full remapping (a mod-N table) would move (n-1)/n of them.
func TestRingMinimalMovement(t *testing.T) {
	for _, n := range []int{3, 4, 8, 15} {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("node-%d", i))
		}
		before := make([]string, ringTenants)
		for tn := 0; tn < ringTenants; tn++ {
			before[tn] = r.Owner(tn)
		}

		// Join: the only allowed change is old-owner -> new node.
		r.Add("joiner")
		moved := 0
		for tn := 0; tn < ringTenants; tn++ {
			after := r.Owner(tn)
			if after == before[tn] {
				continue
			}
			if after != "joiner" {
				t.Fatalf("n=%d: tenant %d moved %s -> %s, not to the joiner",
					n, tn, before[tn], after)
			}
			moved++
		}
		fair := float64(ringTenants) / float64(n+1)
		if f := float64(moved); f < 0.5*fair || f > 1.5*fair {
			t.Errorf("n=%d: join moved %d tenants, want ~%.0f (1/(n+1) of %d)",
				n, moved, fair, ringTenants)
		}

		// Leave (symmetric): removing the joiner restores the exact
		// pre-join ownership — only its tenants move, each back to its
		// previous owner.
		r.Remove("joiner")
		for tn := 0; tn < ringTenants; tn++ {
			if got := r.Owner(tn); got != before[tn] {
				t.Fatalf("n=%d: tenant %d not restored after leave: %s != %s",
					n, tn, got, before[tn])
			}
		}
	}
}

// TestRingDeterminism: two rings built from the same member set in
// different insertion orders agree on every owner — the property that
// lets each node compute ownership locally.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, n := range names {
		a.Add(n)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.Add(names[i])
	}
	for tn := 0; tn < 10_000; tn++ {
		if a.Owner(tn) != b.Owner(tn) {
			t.Fatalf("tenant %d: insertion order changed owner %s vs %s",
				tn, a.Owner(tn), b.Owner(tn))
		}
	}
}

// TestRingEdgeCases is the wraparound/collision table: hand-built rings
// exercising the search boundaries and the collision tie-break.
func TestRingEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		points []ringPoint
		tenant uint64 // raw ring position (bypasses tenantHash)
		want   string
	}{
		{"exact-hit", []ringPoint{{100, "a"}, {200, "b"}}, 100, "a"},
		{"between", []ringPoint{{100, "a"}, {200, "b"}}, 150, "b"},
		{"wraparound", []ringPoint{{100, "a"}, {200, "b"}}, 201, "a"},
		{"wraparound-max", []ringPoint{{100, "a"}, {200, "b"}}, ^uint64(0), "a"},
		{"zero", []ringPoint{{100, "a"}, {200, "b"}}, 0, "a"},
		{"single-point", []ringPoint{{0, "solo"}}, 12345, "solo"},
		// Colliding hashes from different nodes: the tie-break sorts by
		// node id, so the lexically smaller node sits first and owns the
		// exact-hit key.
		{"collision", []ringPoint{{100, "a"}, {100, "b"}, {200, "c"}}, 100, "a"},
		{"collision-after", []ringPoint{{100, "a"}, {100, "b"}, {200, "c"}}, 101, "c"},
		{"collision-wrap", []ringPoint{{100, "a"}, {100, "b"}}, 300, "a"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := &Ring{vnodes: 1, members: map[string]struct{}{}, points: c.points}
			for _, p := range c.points {
				r.members[p.node] = struct{}{}
			}
			// Probe via a raw position: find the owner the same way
			// Owner does, but without the tenant mix, by searching for a
			// tenant whose hash is irrelevant — so call the internal
			// search directly through a shim.
			if got := ownerAt(r, c.tenant); got != c.want {
				t.Errorf("%s: ownerAt(%d) = %q, want %q", c.name, c.tenant, got, c.want)
			}
		})
	}

	t.Run("empty-ring", func(t *testing.T) {
		if got := NewRing(0).Owner(7); got != "" {
			t.Errorf("empty ring owner = %q, want \"\"", got)
		}
	})
	t.Run("add-remove-idempotent", func(t *testing.T) {
		r := NewRing(4)
		r.Add("x")
		r.Add("x")
		if len(r.points) != 4 {
			t.Errorf("duplicate Add doubled the points: %d", len(r.points))
		}
		r.Remove("y") // absent: no-op
		r.Remove("x")
		if r.Size() != 0 || len(r.points) != 0 {
			t.Errorf("remove left residue: %v", r)
		}
	})
}

// TestRingCollisionDeterminism forces a real vnode-hash collision by
// construction and checks both orders sort identically.
func TestRingCollisionDeterminism(t *testing.T) {
	mk := func(order []ringPoint) *Ring {
		r := &Ring{vnodes: 1, members: map[string]struct{}{}}
		r.points = append(r.points, order...)
		// Re-sort with the production comparator.
		for _, p := range order {
			r.members[p.node] = struct{}{}
		}
		sortPoints(r)
		return r
	}
	a := mk([]ringPoint{{50, "b"}, {50, "a"}, {10, "c"}})
	b := mk([]ringPoint{{10, "c"}, {50, "a"}, {50, "b"}})
	for pos := uint64(0); pos < 100; pos += 5 {
		if ownerAt(a, pos) != ownerAt(b, pos) {
			t.Fatalf("position %d: collision order changed owner", pos)
		}
	}
}

package cluster

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/cluster/frame"
	"hyperplane/internal/dedup"
	"hyperplane/internal/telemetry"
)

// Config parameterizes a federation node.
type Config struct {
	// ID is this node's cluster-wide identity (required, unique).
	ID string
	// ListenAddr is the bridge listener address (default "127.0.0.1:0";
	// read the bound address back with Addr).
	ListenAddr string
	// Peers are the other nodes to dial. Peers may also be added after
	// Start with AddPeer (useful when addresses are only known once
	// every listener is up).
	Peers []PeerSpec
	// VNodes is the consistent-hash replication factor (default
	// DefaultVNodes).
	VNodes int
	// Plane is the local data plane this node fronts (required). The
	// node does not own the plane's lifecycle — callers start and stop
	// it — but it does install per-tenant forwards during handoff.
	Plane *dataplane.Plane

	// FlushBatch seals a staged forward batch at this many items
	// (default 64, matching the edge's stagers); FlushInterval bounds
	// how long a partial batch waits (default 200µs).
	FlushBatch    int
	FlushInterval time.Duration

	// ForwardBuffer bounds each peer's outbox in frames (default 256);
	// ForwardPolicy picks the overflow policy — DropOldest (default) or
	// DropNewest, the plane's existing drop policies applied to the
	// forward path.
	ForwardBuffer int
	ForwardPolicy dataplane.DeliveryPolicy

	// HealthInterval is the ping cadence (default 250ms); HealthTimeout
	// bounds dials and writes (default 1s); DeadAfter is how long a
	// peer stays unreachable (no pong, no connection) before it is
	// declared dead and its tenants re-home (default 2s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	DeadAfter      time.Duration

	// DedupWindow is the per-tenant duplicate-suppression depth for
	// message ids (default 4096; windows allocate lazily per tenant).
	DedupWindow int
	// MaxPayload bounds a received frame's payload (default
	// frame.DefaultMaxPayload).
	MaxPayload int

	// Telemetry, when set, gets the node's ClusterMetrics attached as a
	// hyperplane_cluster_* collector.
	Telemetry *telemetry.T
	// Logf receives bridge lifecycle messages (nil = silent).
	Logf func(format string, args ...any)
}

// dedupShards stripes the per-tenant dedup windows' locks.
const dedupShards = 64

// Node federates a local dataplane with its peers: a consistent-hash
// ring maps every tenant to an owning node, Ingress routes to the local
// plane or a peer bridge accordingly, the listener feeds forwarded
// batches into the local plane's batched ingress with per-tenant
// duplicate suppression, and peer death re-homes the dead node's
// tenants onto the survivors — each node recomputes the same ownership
// from its own probes, no coordinator.
type Node struct {
	cfg   Config
	plane *dataplane.Plane
	cm    *telemetry.ClusterMetrics
	logf  func(string, ...any)

	flushBatch    int
	flushInterval time.Duration
	forwardBuffer int
	forwardPolicy dataplane.DeliveryPolicy

	healthInterval time.Duration
	healthTimeout  time.Duration
	deadAfter      time.Duration

	dedupWindow int
	maxPayload  int

	mu        sync.RWMutex
	ring      *Ring
	overrides map[int]string // handoff reroutes, consulted before the ring
	fwdTo     map[int]string // tenants whose plane forward targets a peer
	peers     map[string]*peer

	dmu     [dedupShards]sync.Mutex
	windows []*dedup.Window

	ln      net.Listener
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	stopped atomic.Bool
}

// NewNode validates cfg and builds a node. The ring starts with this
// node plus every configured peer (static membership, optimistic);
// death removes members, reconnection adds them back.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: Config.ID required")
	}
	if len(cfg.ID) > 256 {
		return nil, fmt.Errorf("cluster: Config.ID longer than 256 bytes")
	}
	if cfg.Plane == nil {
		return nil, fmt.Errorf("cluster: Config.Plane required")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Microsecond
	}
	if cfg.ForwardBuffer <= 0 {
		cfg.ForwardBuffer = 256
	}
	if cfg.ForwardPolicy != dataplane.DropNewest {
		cfg.ForwardPolicy = dataplane.DropOldest
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 2 * time.Second
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 4096
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = frame.DefaultMaxPayload
	}
	// Every frame this node can emit must fit its peers' frame cap
	// (the whole cluster runs one MaxPayload config): senders seal
	// batches by byte size, so the only fixed-size frame that could
	// overflow is the handoff State frame carrying a full dedup window.
	if min := frame.BatchRunOverhead + frame.BatchItemOverhead + 1; cfg.MaxPayload < min {
		return nil, fmt.Errorf("cluster: MaxPayload %d cannot carry a single item (need >= %d)", cfg.MaxPayload, min)
	}
	if stateBytes := 4 + 8*cfg.DedupWindow; stateBytes > cfg.MaxPayload {
		return nil, fmt.Errorf("cluster: DedupWindow %d needs a %d-byte state frame, above MaxPayload %d",
			cfg.DedupWindow, stateBytes, cfg.MaxPayload)
	}
	n := &Node{
		cfg:            cfg,
		plane:          cfg.Plane,
		cm:             &telemetry.ClusterMetrics{},
		logf:           cfg.Logf,
		flushBatch:     cfg.FlushBatch,
		flushInterval:  cfg.FlushInterval,
		forwardBuffer:  cfg.ForwardBuffer,
		forwardPolicy:  cfg.ForwardPolicy,
		healthInterval: cfg.HealthInterval,
		healthTimeout:  cfg.HealthTimeout,
		deadAfter:      cfg.DeadAfter,
		dedupWindow:    cfg.DedupWindow,
		maxPayload:     cfg.MaxPayload,
		ring:           NewRing(cfg.VNodes),
		overrides:      make(map[int]string),
		fwdTo:          make(map[int]string),
		peers:          make(map[string]*peer),
		windows:        make([]*dedup.Window, cfg.Plane.Tenants()),
		conns:          make(map[net.Conn]struct{}),
	}
	if n.logf == nil {
		n.logf = func(string, ...any) {}
	}
	n.ring.Add(cfg.ID)
	for _, spec := range cfg.Peers {
		if spec.ID == "" || spec.ID == cfg.ID {
			return nil, fmt.Errorf("cluster: bad peer id %q", spec.ID)
		}
		if _, dup := n.peers[spec.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", spec.ID)
		}
		n.peers[spec.ID] = newPeer(n, spec)
		n.ring.Add(spec.ID)
	}
	n.cm.PeerGauges = n.writePeerGauges
	if cfg.Telemetry != nil {
		cfg.Telemetry.AttachCollector(n.cm.WriteProm)
	}
	return n, nil
}

// Start binds the bridge listener and starts the peer dialers.
func (n *Node) Start() error {
	if !n.started.CompareAndSwap(false, true) {
		return fmt.Errorf("cluster: node already started")
	}
	ln, err := net.Listen("tcp", n.cfg.ListenAddr)
	if err != nil {
		n.started.Store(false)
		return err
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	// Exclusive lock: peer starts must serialize with the shutdown
	// snapshot so Stop joins exactly the set of running peers.
	n.mu.Lock()
	if !n.stopped.Load() {
		for _, pr := range n.peers {
			pr.start()
		}
	}
	n.mu.Unlock()
	return nil
}

// Addr returns the bound bridge address (valid after Start).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Plane returns the local data plane.
func (n *Node) Plane() *dataplane.Plane { return n.plane }

// Metrics returns the node's federation counters.
func (n *Node) Metrics() *telemetry.ClusterMetrics { return n.cm }

// ID returns the node's cluster identity.
func (n *Node) ID() string { return n.cfg.ID }

// AddPeer registers and starts dialing a peer discovered after Start.
// Insertion, the stop check, and the goroutine launch all happen under
// n.mu so AddPeer cannot race shutdown into a peer that runs unjoined:
// either the peer is inserted (and started) before the shutdown
// snapshot — which then stops and joins it — or AddPeer observes
// stopped and refuses.
func (n *Node) AddPeer(spec PeerSpec) error {
	if spec.ID == "" || spec.ID == n.cfg.ID {
		return fmt.Errorf("cluster: bad peer id %q", spec.ID)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped.Load() {
		return fmt.Errorf("cluster: node stopped")
	}
	if _, dup := n.peers[spec.ID]; dup {
		return fmt.Errorf("cluster: duplicate peer id %q", spec.ID)
	}
	pr := newPeer(n, spec)
	n.peers[spec.ID] = pr
	n.ring.Add(spec.ID)
	n.clearOverridesLocked()
	if n.started.Load() {
		pr.start()
	}
	return nil
}

// Members returns the current ring membership (sorted).
func (n *Node) Members() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring.Members()
}

// Owner returns the node id owning tenant right now: a handoff override
// if one is in force, the consistent-hash ring otherwise.
func (n *Node) Owner(tenant int) string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if o, ok := n.overrides[tenant]; ok {
		return o
	}
	return n.ring.Owner(tenant)
}

// Local reports whether tenant is currently served by this node's own
// plane. Together with Ingress it satisfies the edge's Router
// interface, letting an HTTP front route-or-forward at admission.
func (n *Node) Local(tenant int) bool { return n.Owner(tenant) == n.cfg.ID }

// Ingress routes one item: admitted into the local plane when this node
// owns the tenant (with msgID-based duplicate suppression; 0 means
// anonymous), staged onto the owner's bridge otherwise. A payload
// handed to a remote owner is copied before Ingress returns.
func (n *Node) Ingress(tenant int, msgID uint64, payload []byte) bool {
	if n.stopped.Load() {
		return false
	}
	owner := n.Owner(tenant)
	if owner == "" || owner == n.cfg.ID {
		return n.admit(tenant, msgID, payload)
	}
	n.mu.RLock()
	pr := n.peers[owner]
	n.mu.RUnlock()
	if pr == nil {
		// Owner unknown to us (misconfiguration); serve locally rather
		// than black-hole the tenant.
		return n.admit(tenant, msgID, payload)
	}
	if !pr.send(uint32(tenant), msgID, payload) {
		return false
	}
	n.cm.Forwarded.Add(1)
	return true
}

// admit pushes one item into the local plane under the tenant's dedup
// shard lock, remembering the message id only on acceptance so a
// backpressured retry is not wrongly suppressed. Ownership is
// re-checked under the lock: a concurrent handoff flips the override
// while holding this shard, so an admit that raced the flip either
// completed before the window snapshot was taken or re-routes to the
// new owner here — no id can slip between the snapshot and the flip.
func (n *Node) admit(tenant int, msgID uint64, payload []byte) bool {
	if tenant < 0 || tenant >= len(n.windows) {
		return false
	}
	if msgID == 0 {
		return n.plane.Ingress(tenant, payload)
	}
	sh := &n.dmu[tenant%dedupShards]
	sh.Lock()
	if owner := n.Owner(tenant); owner != "" && owner != n.cfg.ID {
		n.mu.RLock()
		pr := n.peers[owner]
		n.mu.RUnlock()
		if pr != nil {
			sh.Unlock()
			if !pr.send(uint32(tenant), msgID, payload) {
				return false
			}
			n.cm.Forwarded.Add(1)
			return true
		}
	}
	w := n.windows[tenant]
	if w == nil {
		w = dedup.NewWindow(n.dedupWindow)
		n.windows[tenant] = w
	}
	if w.Seen(msgID) {
		sh.Unlock()
		n.cm.RecvDeduped.Add(1)
		return true
	}
	ok := n.plane.Ingress(tenant, payload)
	if ok {
		w.Remember(msgID, 0)
	}
	sh.Unlock()
	return ok
}

// admitRun feeds one same-tenant run from a received batch into the
// plane's batched ingress, suppressing duplicate ids under the shard
// lock. bodies must be owned by the caller (they outlive this call
// inside the plane's rings). IngressBatch accepts a run as a prefix, so
// only the accepted prefix's ids are remembered.
//
// Ownership is re-checked under the shard lock before admission: a
// stale sender (one that has not yet processed a handoff marker or a
// membership change) may ship a tenant this node no longer owns, and
// those items must re-forward to the current owner WITH their message
// ids — relaying them anonymously through the plane-level forward would
// strip the ids and defeat the owner's window, double-delivering any id
// that also reached the owner directly. Frame order makes the bounce
// converge: the handoff marker precedes any re-forwarded frame in the
// peer's FIFO outbox, so the receiving owner admits rather than
// bouncing back.
func (n *Node) admitRun(tenant int, ids []uint64, bodies [][]byte, scratch []dataplane.IngressItem) []dataplane.IngressItem {
	if len(ids) == 0 {
		return scratch
	}
	if tenant < 0 || tenant >= len(n.windows) {
		n.cm.RecvRejected.Add(int64(len(ids)))
		return scratch
	}
	scratch = scratch[:0]
	sh := &n.dmu[tenant%dedupShards]
	sh.Lock()
	if owner := n.Owner(tenant); owner != "" && owner != n.cfg.ID {
		n.mu.RLock()
		pr := n.peers[owner]
		n.mu.RUnlock()
		if pr != nil {
			sh.Unlock()
			fwd := 0
			for i := range ids {
				if pr.send(uint32(tenant), ids[i], bodies[i]) {
					fwd++
				}
			}
			n.cm.Forwarded.Add(int64(fwd))
			if fwd < len(ids) {
				n.cm.RecvRejected.Add(int64(len(ids) - fwd))
			}
			return scratch
		}
	}
	w := n.windows[tenant]
	if w == nil {
		w = dedup.NewWindow(n.dedupWindow)
		n.windows[tenant] = w
	}
	// Duplicates are suppressed against the window AND within the run
	// itself: ids are only remembered after the batch is accepted, so
	// two copies in one frame would otherwise both pass the Seen check.
	var inRun map[uint64]struct{}
	if len(ids) > 128 {
		inRun = make(map[uint64]struct{}, len(ids))
	}
	kept := make([]uint64, 0, len(ids))
	for i := range ids {
		id := ids[i]
		if id != 0 {
			if w.Seen(id) {
				n.cm.RecvDeduped.Add(1)
				continue
			}
			if inRun != nil {
				if _, dup := inRun[id]; dup {
					n.cm.RecvDeduped.Add(1)
					continue
				}
				inRun[id] = struct{}{}
			} else if containsID(kept, id) {
				n.cm.RecvDeduped.Add(1)
				continue
			}
		}
		scratch = append(scratch, dataplane.IngressItem{Tenant: tenant, Payload: bodies[i]})
		kept = append(kept, id)
	}
	accepted := 0
	if len(scratch) > 0 {
		accepted = n.plane.IngressBatch(scratch)
		for i := 0; i < accepted && i < len(kept); i++ {
			if kept[i] != 0 {
				w.Remember(kept[i], 0)
			}
		}
	}
	sh.Unlock()
	n.cm.ReceivedItems.Add(int64(accepted))
	if rejected := len(scratch) - accepted; rejected > 0 {
		n.cm.RecvRejected.Add(int64(rejected))
	}
	return scratch
}

// containsID is the small-run duplicate scan (runs are sender batches,
// a few dozen items; the map path above covers hand-crafted big runs).
func containsID(ids []uint64, id uint64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// Handoff gracefully transfers a tenant to peer `to`: ship the
// tenant's dedup-window state, reroute new arrivals (node-level
// override plus a plane-level forward for raw producers), drain the
// locally queued backlog through the plane's per-tenant drain, flush
// the forwarded tail, then send the ownership marker. State snapshot
// and override flip happen under the tenant's dedup shard lock, so no
// admission can land between them; the state frame precedes every
// forwarded duplicate in the outbox, so the new owner's window is
// primed before traffic arrives. Until membership changes, other nodes
// keep sending to this node; those bridge arrivals re-forward to the
// new owner with their message ids intact (admitRun's ownership
// re-check), while the plane-level forward installed here relays only
// raw local producers — anonymous items that never had an id.
//
// An override lives only as long as the ring it was minted against:
// any membership change invalidates all overrides cluster-wide
// (clearOverridesLocked), and a handoff that races such a change
// aborts instead of leaving a stale forward behind.
func (n *Node) Handoff(ctx context.Context, tenant int, to string) error {
	if to == n.cfg.ID {
		return fmt.Errorf("cluster: handoff of tenant %d to self", tenant)
	}
	if tenant < 0 || tenant >= len(n.windows) {
		return fmt.Errorf("cluster: tenant %d out of range", tenant)
	}
	n.mu.RLock()
	pr := n.peers[to]
	n.mu.RUnlock()
	if pr == nil {
		return fmt.Errorf("cluster: handoff to unknown peer %q", to)
	}
	sh := &n.dmu[tenant%dedupShards]
	sh.Lock()
	if w := n.windows[tenant]; w != nil && w.Len() > 0 {
		pr.control(frame.AppendState(nil, uint32(tenant), w.AppendIDs(nil)))
	}
	n.mu.Lock()
	n.overrides[tenant] = to
	n.fwdTo[tenant] = to
	n.mu.Unlock()
	sh.Unlock()

	var tail atomic.Int64
	err := n.plane.SetTenantForward(tenant, func(items []dataplane.IngressItem) int {
		c := 0
		for _, it := range items {
			if pr.send(uint32(tenant), 0, it.Payload) {
				c++
			}
		}
		tail.Add(int64(c))
		return c
	})
	if err != nil {
		n.mu.Lock()
		delete(n.overrides, tenant)
		delete(n.fwdTo, tenant)
		n.mu.Unlock()
		return err
	}
	// A ring membership change invalidates overrides wholesale
	// (clearOverridesLocked); if one raced the forward installation
	// above, the fwdTo entry is already gone and the forward we just
	// installed would leak. Re-check and abort — ownership has fallen
	// back to the ring, which every node computes identically.
	n.mu.RLock()
	_, still := n.fwdTo[tenant]
	n.mu.RUnlock()
	if !still {
		n.plane.SetTenantForward(tenant, nil)
		return fmt.Errorf("cluster: handoff of tenant %d to %s aborted by a membership change", tenant, to)
	}
	if err := n.plane.DrainTenant(ctx, tenant); err != nil {
		return fmt.Errorf("cluster: handoff drain of tenant %d: %w", tenant, err)
	}
	// Same race window across the drain: do not send the ownership
	// marker if a membership change voided the handoff mid-flight —
	// the marker would install a fresh override on the target against
	// a ring that no longer backs it.
	n.mu.RLock()
	_, still = n.fwdTo[tenant]
	n.mu.RUnlock()
	if !still {
		return fmt.Errorf("cluster: handoff of tenant %d to %s aborted by a membership change", tenant, to)
	}
	pr.control(frame.AppendHandoff(nil, uint32(tenant), uint64(tail.Load())))
	n.cm.Handoffs.Add(1)
	n.cm.HandoffItems.Add(tail.Load())
	n.logf("cluster: tenant %d handed off to %s (%d tail items)", tenant, to, tail.Load())
	return nil
}

// primeWindow seeds a tenant's dedup window with ids shipped ahead of
// a handoff (oldest first, so relative eviction order is preserved).
func (n *Node) primeWindow(tenant int, ids []uint64) {
	if tenant < 0 || tenant >= len(n.windows) {
		return
	}
	sh := &n.dmu[tenant%dedupShards]
	sh.Lock()
	w := n.windows[tenant]
	if w == nil {
		w = dedup.NewWindow(n.dedupWindow)
		n.windows[tenant] = w
	}
	for _, id := range ids {
		if id != 0 {
			w.Remember(id, 0)
		}
	}
	sh.Unlock()
}

// acceptHandoff records an ownership transfer received from a peer.
func (n *Node) acceptHandoff(tenant int, from string) {
	n.mu.Lock()
	n.overrides[tenant] = n.cfg.ID
	if _, had := n.fwdTo[tenant]; had {
		delete(n.fwdTo, tenant)
		n.plane.SetTenantForward(tenant, nil)
	}
	n.mu.Unlock()
	n.cm.HandoffsInbound.Add(1)
	n.logf("cluster: accepted ownership of tenant %d from %s", tenant, from)
}

// clearOverridesLocked invalidates every handoff override (and the
// plane-level forwards riding them) on a ring membership change. An
// override is a point-in-time patch against a specific ring: nodes that
// never saw the handoff route purely by ring, so once a member joins or
// leaves, keeping the override would split a tenant between the
// override target and the new ring owner, with divergent dedup windows.
// Dropping them falls everything back to ring ownership, which all
// nodes compute identically; in-flight traffic bounces converge through
// admitRun's ownership re-check, and identified duplicates die in the
// owner's window. Caller holds n.mu.
func (n *Node) clearOverridesLocked() {
	if len(n.overrides) == 0 && len(n.fwdTo) == 0 {
		return
	}
	n.logf("cluster: membership change invalidates %d handoff override(s)", len(n.overrides))
	clear(n.overrides)
	for t := range n.fwdTo {
		delete(n.fwdTo, t)
		n.plane.SetTenantForward(t, nil)
	}
}

// peerUp re-admits a peer to the ring once a pong proves it alive.
func (n *Node) peerUp(id string) {
	n.mu.Lock()
	if !n.ring.Has(id) {
		n.ring.Add(id)
		n.clearOverridesLocked()
		n.cm.PeerUps.Add(1)
		n.logf("cluster: peer %s up, ring=%v", id, n.ring.Members())
	}
	n.mu.Unlock()
}

// peerDown removes a dead peer from the ring. Its tenants re-home to
// the survivors purely by recomputation — every node's prober reaches
// the same verdict and removes the same member, so the cluster
// converges on identical ownership without coordination. All handoff
// overrides and their plane forwards are invalidated (not just those
// naming the dead node — the membership change may move any tenant's
// ring owner), so affected tenants fall back to the ring.
func (n *Node) peerDown(id string) {
	n.mu.Lock()
	if !n.ring.Has(id) {
		n.mu.Unlock()
		return
	}
	rehomed := 0
	for t := 0; t < n.plane.Tenants(); t++ {
		if n.ring.Owner(t) == id {
			rehomed++
		}
	}
	n.ring.Remove(id)
	n.clearOverridesLocked()
	members := n.ring.Members()
	n.mu.Unlock()
	n.cm.PeerDowns.Add(1)
	n.cm.Rehomed.Add(int64(rehomed))
	n.logf("cluster: peer %s down, %d tenants re-home, ring=%v", id, rehomed, members)
}

// acceptLoop owns the bridge listener.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.connMu.Lock()
		if n.stopped.Load() {
			n.connMu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.connMu.Unlock()
		n.wg.Add(1)
		go n.serveInbound(conn)
	}
}

// serveInbound decodes one peer's frame stream: batches feed the local
// plane run by run, pings are answered in place, a handoff marker
// transfers ownership. Frame-level corruption drops the connection —
// the sender's outbox and the dedup window make the retry safe.
func (n *Node) serveInbound(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.connMu.Lock()
		delete(n.conns, conn)
		n.connMu.Unlock()
		conn.Close()
	}()
	r := frame.NewReader(conn, n.maxPayload)
	remote := "?"
	var scratch []dataplane.IngressItem
	var ids []uint64
	var bodies [][]byte
	for {
		h, payload, err := r.Next()
		if err != nil {
			if err != io.EOF && isFrameErr(err) {
				n.cm.FrameErrors.Add(1)
				n.logf("cluster: dropping connection from %s: %v", remote, err)
			}
			return
		}
		switch h.Type {
		case frame.TypeHello:
			if id, err := frame.ParseHello(payload); err == nil {
				remote = id
			}
		case frame.TypePing:
			nonce, perr := frame.ParsePing(payload)
			if perr != nil {
				n.cm.FrameErrors.Add(1)
				return
			}
			conn.SetWriteDeadline(time.Now().Add(n.healthTimeout))
			if _, werr := conn.Write(frame.AppendPing(nil, frame.TypePong, nonce)); werr != nil {
				return
			}
		case frame.TypeBatch:
			n.cm.ReceivedBatches.Add(1)
			n.cm.ReceivedBytes.Add(int64(len(payload)))
			// One copy owns every item in the frame: the plane keeps
			// payload views into it, the reader's buffer is reused.
			owned := append([]byte(nil), payload...)
			it := frame.IterBatch(owned)
			runTenant := -1
			ids, bodies = ids[:0], bodies[:0]
			for {
				t, id, body, ok := it.Next()
				if !ok {
					break
				}
				if int(t) != runTenant {
					scratch = n.admitRun(runTenant, ids, bodies, scratch)
					ids, bodies = ids[:0], bodies[:0]
					runTenant = int(t)
				}
				ids = append(ids, id)
				bodies = append(bodies, body)
			}
			scratch = n.admitRun(runTenant, ids, bodies, scratch)
			if it.Err() != nil {
				n.cm.FrameErrors.Add(1)
				return
			}
		case frame.TypeHandoff:
			tenant, _, herr := frame.ParseHandoff(payload)
			if herr != nil {
				n.cm.FrameErrors.Add(1)
				return
			}
			n.acceptHandoff(int(tenant), remote)
		case frame.TypeState:
			tenant, stateIDs, serr := frame.ParseState(payload)
			if serr != nil {
				n.cm.FrameErrors.Add(1)
				return
			}
			n.primeWindow(int(tenant), stateIDs)
		}
	}
}

// isFrameErr reports whether err came from frame validation (as opposed
// to an ordinary connection teardown).
func isFrameErr(err error) bool {
	switch err {
	case frame.ErrMagic, frame.ErrVersion, frame.ErrTooLarge,
		frame.ErrCRC, frame.ErrCorrupt, frame.ErrTruncated:
		return true
	}
	return false
}

// writePeerGauges emits the live per-peer series for WriteProm.
func (n *Node) writePeerGauges(w io.Writer) {
	n.mu.RLock()
	prs := make([]*peer, 0, len(n.peers))
	for _, pr := range n.peers {
		prs = append(prs, pr)
	}
	n.mu.RUnlock()
	fmt.Fprintf(w, "# HELP hyperplane_cluster_peer_up Peer connection state (1 = connected).\n")
	fmt.Fprintf(w, "# TYPE hyperplane_cluster_peer_up gauge\n")
	for _, pr := range prs {
		up := 0
		if pr.up.Load() {
			up = 1
		}
		fmt.Fprintf(w, "hyperplane_cluster_peer_up{peer=%q} %d\n", pr.id, up)
	}
	fmt.Fprintf(w, "# HELP hyperplane_cluster_outbox_frames Frames queued for a peer.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_cluster_outbox_frames gauge\n")
	for _, pr := range prs {
		fmt.Fprintf(w, "hyperplane_cluster_outbox_frames{peer=%q} %d\n", pr.id, pr.outboxLen())
	}
}

// Stop shuts the node down gracefully: peers flush and drain their
// outboxes best-effort, the listener and inbound connections close, and
// every goroutine is joined. The plane is left running (the caller owns
// it).
func (n *Node) Stop() { n.shutdown(true) }

// Kill is the chaos-path shutdown: connections and the listener drop on
// the floor with no flush — exactly what a crashed process looks like
// to the survivors.
func (n *Node) Kill() { n.shutdown(false) }

func (n *Node) shutdown(graceful bool) {
	if !n.stopped.CompareAndSwap(false, true) {
		return
	}
	// Exclusive snapshot: peer starts happen under n.mu after a stopped
	// re-check, so once this lock is released no further peer can begin
	// running and every running peer is in prs — the join below cannot
	// miss one (AddPeer racing Stop) or wait on one that never started.
	n.mu.Lock()
	prs := make([]*peer, 0, len(n.peers))
	for _, pr := range n.peers {
		prs = append(prs, pr)
	}
	n.mu.Unlock()
	for _, pr := range prs {
		pr.shutdown(graceful)
	}
	if n.started.Load() {
		if !graceful {
			// Abrupt: sever inbound connections before (not after) the
			// peers notice, like a process death would.
			n.connMu.Lock()
			for c := range n.conns {
				c.Close()
			}
			n.connMu.Unlock()
		}
		n.ln.Close()
	}
	for _, pr := range prs {
		if pr.running.Load() {
			<-pr.done
		}
	}
	if n.started.Load() {
		if graceful {
			n.connMu.Lock()
			for c := range n.conns {
				c.Close()
			}
			n.connMu.Unlock()
		}
		n.wg.Wait()
	}
}

// Package cluster federates N dataplane processes into one logical
// plane: a consistent-hash tenant->node map decides which node owns each
// tenant's queue state, a persistent TCP bridge forwards misrouted
// traffic to the owner in CRC-framed batches that feed the owner's
// batched shared ingress, graceful handoff migrates a tenant between
// owners through the plane's drain machinery, and peer health probes
// re-home a dead node's tenants onto the survivors. See DESIGN.md §16
// for the mapping onto the paper's notify->arbitrate->dispatch model
// (node = super-bank, bridge = remote doorbell, handoff =
// drain + re-register).
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node replication factor: enough points on
// the ring that tenant load stays within ~15% of even across 3-16 nodes
// (see TestRingBalance), cheap enough that membership changes rebuild in
// microseconds.
const DefaultVNodes = 256

// Ring is the consistent-hash tenant->node map: every member node
// contributes vnodes pseudo-random points on a 64-bit ring, and a tenant
// is owned by the first point clockwise from its hash. All nodes build
// the ring from the same member set with the same hash, so ownership is
// agreed without coordination; a join or leave moves only the tenants
// whose nearest point changed — about 1/N of them (see
// TestRingMinimalMovement).
//
// Ring is not safe for concurrent use; Node guards its ring with a
// mutex and swaps snapshots atomically.
type Ring struct {
	vnodes  int
	members map[string]struct{}
	points  []ringPoint // sorted by (hash, node)
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// Clone returns an independent copy (used to compute would-be ownership
// after a membership change without disturbing the live ring).
func (r *Ring) Clone() *Ring {
	c := &Ring{
		vnodes:  r.vnodes,
		members: make(map[string]struct{}, len(r.members)),
		points:  append([]ringPoint(nil), r.points...),
	}
	for m := range r.members {
		c.members[m] = struct{}{}
	}
	return c
}

// Add inserts a member node; adding an existing member is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{vnodeHash(node, v), node})
	}
	sortPoints(r)
}

// sortPoints orders the ring's points by (hash, node). Hash collisions
// between different nodes' vnodes break the tie by node id, so every
// member sorts them identically and the cluster still agrees on
// ownership.
func sortPoints(r *Ring) {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a member node; removing an absent member is a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member ids in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Has reports membership.
func (r *Ring) Has(node string) bool {
	_, ok := r.members[node]
	return ok
}

// Owner returns the node owning tenant, or "" on an empty ring. The
// tenant id is spread over the 64-bit ring by a splitmix64 finalizer so
// dense small ids do not clump.
func (r *Ring) Owner(tenant int) string {
	if len(r.points) == 0 {
		return ""
	}
	h := tenantHash(tenant)
	// First point with hash >= h, wrapping to points[0] past the end.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// vnodeHash places one of a node's virtual points: FNV-1a over
// "node\x00" plus the vnode index bytes.
func vnodeHash(node string, v int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	for s := 0; s < 32; s += 8 {
		h ^= uint64(v>>s) & 0xFF
		h *= prime64
	}
	// Finalize: FNV's low bits are weak for short inputs; splitmix64's
	// avalanche spreads the points evenly around the ring.
	return mix64(h)
}

// tenantHash spreads a dense tenant id over the 64-bit ring.
func tenantHash(tenant int) uint64 { return mix64(uint64(tenant)) }

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders the ring for debug output.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{members=%d vnodes=%d points=%d}", len(r.members), r.vnodes, len(r.points))
}

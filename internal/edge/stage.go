package edge

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/dedup"
)

// maxSlabs bounds the slab pool: at 64 KiB per slab that is 64 MiB of
// staged-payload memory before the pool overflows to plain allocations
// (counted in SlabOverflow, never an error). The table is a fixed array
// so unref can index it without taking the pool lock.
const maxSlabs = 1024

// slab is one pooled staging buffer shared by many in-flight payloads.
// Payload bytes are copied in at admission and read by the egress hook
// (fan-out) on the other side of the ring; refs counts the stager's hold
// plus one per in-flight item, and the slab recycles when it hits zero.
type slab struct {
	buf  []byte
	used int
	refs atomic.Int32
}

// slabPool hands out slabs by 1-based tag (the IngressItem.Tag cookie
// the dataplane carries through delivery). Tag 0 is reserved for
// untracked payloads: pool overflow and items not staged by the edge
// (e.g. WAL replay).
type slabPool struct {
	slabBytes int
	mu        sync.Mutex
	table     [maxSlabs]*slab
	free      []int32
	next      int32
}

func newSlabPool(slabBytes int) *slabPool {
	return &slabPool{slabBytes: slabBytes, free: make([]int32, 0, maxSlabs)}
}

// get returns an empty slab holding one reference (the caller's hold)
// and its tag, or (nil, 0) when the pool is exhausted.
func (p *slabPool) get() (*slab, uint64) {
	p.mu.Lock()
	var idx int32
	switch {
	case len(p.free) > 0:
		idx = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
	case p.next < maxSlabs:
		idx = p.next
		p.table[idx] = &slab{buf: make([]byte, p.slabBytes)}
		p.next++
	default:
		p.mu.Unlock()
		return nil, 0
	}
	s := p.table[idx]
	p.mu.Unlock()
	s.used = 0
	s.refs.Store(1)
	return s, uint64(idx) + 1
}

// unref drops one reference from the slab behind tag, recycling it on
// zero. Safe to call from the hook goroutines: the table entry was
// published before the tag ever escaped the stager.
func (p *slabPool) unref(tag uint64) {
	s := p.table[tag-1]
	if s.refs.Add(-1) == 0 {
		p.mu.Lock()
		p.free = append(p.free, int32(tag-1))
		p.mu.Unlock()
	}
}

// stager is one tenant's ingest staging state: requests accumulate in
// items (payloads copied into the current slab) until FlushBatch of them
// amortize one IngressBatch call — one MPSC cursor publish, one
// doorbell. mu also serializes the idempotency window and the accept
// sequence, mirroring the durable tier's per-tenant admission lock.
type stager struct {
	mu      sync.Mutex
	items   []dataplane.IngressItem
	slab    *slab
	slabTag uint64
	idem    *dedup.Window
	seq     uint64
}

// SubmitStatus is the outcome of one ingest admission.
type SubmitStatus uint8

// Submit outcomes.
const (
	SubmitAccepted SubmitStatus = iota
	SubmitDuplicate
	SubmitRateLimited
	SubmitTooLarge
	SubmitRejected
)

// Submit admits one payload for tenant: rate-limit check, idempotency
// lookup, copy into the staging slab, and — every FlushBatch requests or
// when draining — a flush into the plane's batched ingress. It returns
// the tenant-scoped accept sequence. The steady-state path allocates
// nothing: the payload lands in a pooled slab, the staged item reuses
// the preallocated batch buffer, and the flush rides IngressBatch's
// pooled plan (see TestSubmitZeroAllocs).
//
// idemKey 0 means no idempotency key. A duplicate key inside the
// tenant's window returns the original accept sequence with
// SubmitDuplicate and does not re-enqueue.
func (s *Server) Submit(tenant int, payload []byte, idemKey uint64) (uint64, SubmitStatus) {
	if tenant < 0 || tenant >= len(s.stagers) {
		return 0, SubmitRejected
	}
	if len(payload) > s.cfg.MaxPayload {
		return 0, SubmitTooLarge
	}
	if !s.limiter.Allow(tenant, time.Now().UnixNano()) {
		s.em.RateLimited.Add(1)
		return 0, SubmitRateLimited
	}
	if rp := s.router.Load(); rp != nil {
		// Remote tenants always route through the federation layer. So
		// do identified requests for LOCAL tenants: the cluster admission
		// path records the key in the owner's dedup window atomically
		// with plane ingress, which is what suppresses a retry of the
		// same key arriving through a different entry node — the staged
		// batch path below admits anonymously and cannot. Anonymous
		// local traffic keeps the zero-alloc batched path.
		if r := *rp; idemKey != 0 || !r.Local(tenant) {
			return s.submitForward(r, tenant, payload, idemKey)
		}
	}
	st := &s.stagers[tenant]
	st.mu.Lock()
	if idemKey != 0 {
		if seq, ok := st.idem.Lookup(idemKey); ok {
			st.mu.Unlock()
			s.em.Deduped.Add(1)
			return seq, SubmitDuplicate
		}
	}
	buf, tag := s.stagePayload(st, payload)
	st.seq++
	seq := st.seq
	st.items = append(st.items, dataplane.IngressItem{Tenant: tenant, Payload: buf, Tag: tag})
	if s.draining.Load() {
		// Drain window: flush batch-of-one synchronously so this item is
		// either in the plane (and covered by the shutdown drain) or
		// truthfully rejected — never stranded in a stager after the
		// flusher has stopped.
		want := len(st.items)
		if s.flushLocked(st) < want {
			st.mu.Unlock()
			return 0, SubmitRejected
		}
	} else if len(st.items) >= s.cfg.FlushBatch {
		s.flushLocked(st)
	}
	if idemKey != 0 {
		st.idem.Remember(idemKey, seq)
	}
	st.mu.Unlock()
	s.em.Accepted.Add(1)
	return seq, SubmitAccepted
}

// submitForward routes one payload through the federation router: to
// the owner's bridge when the tenant lives elsewhere, or through the
// cluster's local admission path (dedup window + plane ingress under
// one lock) when this node owns it but the request carries an
// idempotency key. It bypasses the slab/stager batch path — the bridge
// does its own coalescing and copies the payload into its frame
// encoder; local admission copies into the plane ring — but keeps the
// tenant's edge idempotency window and accept sequence under the
// stager lock, so a replayed key gets the same seq whether the tenant
// was local or remote when it first arrived. The key rides as the
// message id, so the owner's window suppresses retries that entered
// the cluster through ANY edge, including this one.
func (s *Server) submitForward(r Router, tenant int, payload []byte, idemKey uint64) (uint64, SubmitStatus) {
	st := &s.stagers[tenant]
	st.mu.Lock()
	if idemKey != 0 {
		if seq, ok := st.idem.Lookup(idemKey); ok {
			st.mu.Unlock()
			s.em.Deduped.Add(1)
			return seq, SubmitDuplicate
		}
	}
	remote := !r.Local(tenant)
	if !r.Ingress(tenant, idemKey, payload) {
		st.mu.Unlock()
		s.em.Rejected.Add(1)
		return 0, SubmitRejected
	}
	st.seq++
	seq := st.seq
	if idemKey != 0 {
		st.idem.Remember(idemKey, seq)
	}
	st.mu.Unlock()
	s.em.Accepted.Add(1)
	if remote {
		s.em.Forwarded.Add(1)
	}
	return seq, SubmitAccepted
}

// stagePayload copies payload into the tenant's current slab (st.mu
// held), returning the slab-backed view and its tag. Oversized payloads
// and pool exhaustion fall back to a plain allocation with tag 0.
func (s *Server) stagePayload(st *stager, payload []byte) ([]byte, uint64) {
	if len(payload) > s.slabs.slabBytes {
		s.em.SlabOverflow.Add(1)
		return append([]byte(nil), payload...), 0
	}
	sl := st.slab
	if sl == nil || sl.used+len(payload) > len(sl.buf) {
		if sl != nil {
			// Seal: drop the stager's hold; in-flight items keep it alive.
			s.slabs.unref(st.slabTag)
			st.slab, st.slabTag = nil, 0
		}
		nsl, tag := s.slabs.get()
		if nsl == nil {
			s.em.SlabOverflow.Add(1)
			return append([]byte(nil), payload...), 0
		}
		st.slab, st.slabTag = nsl, tag
		sl = nsl
	}
	dst := sl.buf[sl.used : sl.used+len(payload) : sl.used+len(payload)]
	copy(dst, payload)
	sl.used += len(payload)
	sl.refs.Add(1)
	return dst, st.slabTag
}

// flushLocked pushes the tenant's staged batch into the plane via
// IngressBatch (st.mu held): one call covers the whole batch — single
// cursor publish on the MPSC ring, one doorbell per worker. Backpressure
// retries until the plane accepts, the plane stops, or a shutdown
// deadline aborts; anything not accepted is released and counted
// Rejected. Returns the number accepted.
func (s *Server) flushLocked(st *stager) int {
	total := len(st.items)
	if total == 0 {
		return 0
	}
	off := 0
	for spins := 0; off < total; spins++ {
		off += s.plane.IngressBatch(st.items[off:])
		if off >= total || s.plane.Stopped() || s.abortFlush.Load() {
			break
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
	for i := off; i < total; i++ {
		if st.items[i].Tag != 0 {
			s.slabs.unref(st.items[i].Tag)
		}
	}
	if dropped := total - off; dropped > 0 {
		s.em.Rejected.Add(int64(dropped))
	}
	s.em.Flushes.Add(1)
	s.em.FlushedItems.Add(int64(off))
	st.items = st.items[:0]
	return off
}

// flusher is the background deadline flusher: partial batches older than
// FlushInterval go out even when traffic stops short of FlushBatch.
// TryLock skips tenants mid-flush so one backpressured tenant never
// stalls the others' deadline.
func (s *Server) flusher() {
	t := time.NewTicker(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopFlusher:
			return
		case <-t.C:
		}
		for i := range s.stagers {
			st := &s.stagers[i]
			if !st.mu.TryLock() {
				continue
			}
			if len(st.items) > 0 {
				s.flushLocked(st)
			}
			st.mu.Unlock()
		}
	}
}

// flushAll drains every stager once; used by Shutdown after the flusher
// has stopped.
func (s *Server) flushAll() {
	for i := range s.stagers {
		st := &s.stagers[i]
		st.mu.Lock()
		if len(st.items) > 0 {
			s.flushLocked(st)
		}
		st.mu.Unlock()
	}
}

// IdemKey hashes an Idempotency-Key header value to the 64-bit id space
// of the dedup window (FNV-1a; the zero digest is folded to 1 so a real
// key is never mistaken for "no key"). Empty keys return 0.
func IdemKey(key string) uint64 {
	if key == "" {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

package edge

import (
	"net/http"
	"sync"
	"testing"
)

// fakeRouter serves the tenants in local; everything else is captured
// by Ingress (after copying, honoring the borrow contract) unless
// reject is set.
type fakeRouter struct {
	mu     sync.Mutex
	local  map[int]bool
	reject bool
	fwd    []fwdRec
}

type fwdRec struct {
	tenant  int
	msgID   uint64
	payload string
}

func (f *fakeRouter) Local(tenant int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.local[tenant]
}

func (f *fakeRouter) Ingress(tenant int, msgID uint64, payload []byte) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.reject {
		return false
	}
	f.fwd = append(f.fwd, fwdRec{tenant, msgID, string(payload)})
	return true
}

func (f *fakeRouter) forwards() []fwdRec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]fwdRec(nil), f.fwd...)
}

// TestRouterForwardsRemoteTenant: with a router installed, ingest for a
// remote-owned tenant bypasses the local plane and reaches the router
// with the payload and hashed idempotency key; local tenants still take
// the staged path into the plane.
func TestRouterForwardsRemoteTenant(t *testing.T) {
	delivered := make(chan string, 16)
	cfg := Config{FlushBatch: 1}
	cfg.Plane.Tenants = 2
	cfg.Plane.Handler = func(_ int, p []byte) ([]byte, error) {
		delivered <- string(p)
		return nil, nil
	}
	s, hs := newTestServer(t, cfg)
	rt := &fakeRouter{local: map[int]bool{0: true}}
	s.SetRouter(rt)

	// Tenant 1 is remote: the router sees it, the plane does not.
	resp, ar := postIngest(t, hs.URL+"/v1/ingest?tenant=1", "remote-payload",
		map[string]string{"Idempotency-Key": "key-1"})
	if resp.StatusCode != http.StatusAccepted || ar.Seq != 1 {
		t.Fatalf("forwarded ingest: status %d seq %d", resp.StatusCode, ar.Seq)
	}
	fwds := rt.forwards()
	if len(fwds) != 1 {
		t.Fatalf("router saw %d forwards, want 1", len(fwds))
	}
	if fwds[0].tenant != 1 || fwds[0].payload != "remote-payload" {
		t.Fatalf("forward = %+v", fwds[0])
	}
	if want := IdemKey("key-1"); fwds[0].msgID != want {
		t.Fatalf("forwarded msgID = %d, want hashed key %d", fwds[0].msgID, want)
	}

	// Replaying the key answers from the edge's window without a second
	// forward — the duplicate never re-enters the cluster.
	resp, ar = postIngest(t, hs.URL+"/v1/ingest?tenant=1", "remote-payload",
		map[string]string{"Idempotency-Key": "key-1"})
	if resp.StatusCode != http.StatusAccepted || !ar.Duplicate || ar.Seq != 1 {
		t.Fatalf("replay: status %d resp %+v", resp.StatusCode, ar)
	}
	if n := len(rt.forwards()); n != 1 {
		t.Fatalf("replay forwarded again: %d forwards", n)
	}

	// Tenant 0 is local and anonymous: the plane handler fires via the
	// staged path, the router stays at 1.
	resp, _ = postIngest(t, hs.URL+"/v1/ingest?tenant=0", "local-payload", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("local ingest: status %d", resp.StatusCode)
	}
	if got := <-delivered; got != "local-payload" {
		t.Fatalf("plane delivered %q", got)
	}
	if n := len(rt.forwards()); n != 1 {
		t.Fatalf("local anonymous ingest leaked to the router: %d forwards", n)
	}

	// Tenant 0 local WITH a key: routed through the cluster admission
	// path (the router) so the key lands in the owner's dedup window —
	// that is what catches a replay entering at a different node. It is
	// not a remote forward, so Forwarded stays put.
	resp, ar = postIngest(t, hs.URL+"/v1/ingest?tenant=0", "keyed-local",
		map[string]string{"Idempotency-Key": "key-2"})
	if resp.StatusCode != http.StatusAccepted || ar.Duplicate {
		t.Fatalf("local keyed ingest: status %d resp %+v", resp.StatusCode, ar)
	}
	fwds = rt.forwards()
	if len(fwds) != 2 || fwds[1].tenant != 0 || fwds[1].msgID != IdemKey("key-2") {
		t.Fatalf("local keyed ingest did not route via the cluster: %+v", fwds)
	}
	if st := s.Stats(); st.Forwarded != 1 || st.Deduped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRouterRejectionIs503: a router that cannot place the message
// (owner's bridge full, cluster stopping) surfaces as 503 so the client
// retries, and the idempotency key is NOT burned — the retry forwards.
func TestRouterRejectionIs503(t *testing.T) {
	cfg := Config{FlushBatch: 1}
	cfg.Plane.Tenants = 2
	cfg.Plane.Handler = func(int, []byte) ([]byte, error) { return nil, nil }
	s, hs := newTestServer(t, cfg)
	rt := &fakeRouter{local: map[int]bool{}, reject: true}
	s.SetRouter(rt)

	resp, _ := postIngest(t, hs.URL+"/v1/ingest?tenant=1", "x",
		map[string]string{"Idempotency-Key": "k"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("rejected forward: status %d, want 503", resp.StatusCode)
	}
	rt.mu.Lock()
	rt.reject = false
	rt.mu.Unlock()
	resp, ar := postIngest(t, hs.URL+"/v1/ingest?tenant=1", "x",
		map[string]string{"Idempotency-Key": "k"})
	if resp.StatusCode != http.StatusAccepted || ar.Duplicate {
		t.Fatalf("retry after rejection: status %d resp %+v", resp.StatusCode, ar)
	}
	if n := len(rt.forwards()); n != 1 {
		t.Fatalf("retry did not forward: %d records", n)
	}

	// Clearing the router restores local-only routing.
	s.SetRouter(nil)
	resp, _ = postIngest(t, hs.URL+"/v1/ingest?tenant=1", "y", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-clear ingest: status %d", resp.StatusCode)
	}
	if n := len(rt.forwards()); n != 1 {
		t.Fatalf("cleared router still invoked: %d records", n)
	}
}

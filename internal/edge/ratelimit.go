package edge

import (
	"sync/atomic"
	"time"
)

// RateLimiter is a per-tenant GCRA ("leaky bucket as meter") admission
// limiter: one atomic word per tenant (the theoretical arrival time),
// one CAS per admitted request, no background refill goroutine and no
// allocation on Allow. It is the token-bucket equivalent — rate tokens
// per second with a burst-deep bucket — expressed as virtual scheduling,
// which is what makes it a single CAS instead of a locked
// tokens+timestamp pair.
type RateLimiter struct {
	interval int64 // emission interval: ns between sustained tokens
	burstNs  int64 // tolerance: (burst-1)*interval
	tats     []atomic.Int64
}

// NewRateLimiter builds a limiter admitting rate requests/sec with the
// given burst per tenant. rate <= 0 returns nil, and a nil *RateLimiter
// admits everything — "no limit" costs nothing on the hot path.
func NewRateLimiter(tenants int, rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(time.Second) / rate)
	if interval < 1 {
		interval = 1
	}
	return &RateLimiter{
		interval: interval,
		burstNs:  int64(burst-1) * interval,
		tats:     make([]atomic.Int64, tenants),
	}
}

// Allow reports whether the tenant may admit one request at time now
// (UnixNano). Concurrent callers race on the CAS; losers retry against
// the fresh TAT, so admission stays exact under contention.
func (l *RateLimiter) Allow(tenant int, now int64) bool {
	if l == nil {
		return true
	}
	tat := &l.tats[tenant]
	for {
		t := tat.Load()
		if t-now > l.burstNs {
			return false // bucket empty: arrival too far ahead of schedule
		}
		base := t
		if now > base {
			base = now
		}
		if tat.CompareAndSwap(t, base+l.interval) {
			return true
		}
	}
}

package edge

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/telemetry"
)

func TestConnRingDropOldest(t *testing.T) {
	msg := []byte("0123456789") // SSE frame: 6 + 10 + 2 = 18 bytes
	c := newConn(formatSSE, 3*18, dataplane.DropOldest, nil)
	for i := 0; i < 3; i++ {
		if !c.push(msg) {
			t.Fatalf("push %d rejected with room available", i)
		}
	}
	// Ring full: the next push evicts from the front (down to half the
	// ring) and stages the newcomer.
	if !c.push(msg) {
		t.Fatal("DropOldest push rejected")
	}
	if c.dropped.Load() == 0 {
		t.Fatal("eviction not counted")
	}
	buf := c.claim()
	if len(buf)%18 != 0 || len(buf) == 0 {
		t.Fatalf("claimed %d bytes, want a whole number of frames", len(buf))
	}
	if !bytes.HasSuffix(buf, []byte("data: 0123456789\n\n")) {
		t.Fatalf("newest frame missing from claim: %q", buf)
	}
}

func TestConnRingDropNewest(t *testing.T) {
	msg := []byte("0123456789")
	c := newConn(formatSSE, 3*18, dataplane.DropNewest, nil)
	for i := 0; i < 3; i++ {
		c.push(msg)
	}
	if c.push([]byte("newcomer")) {
		t.Fatal("DropNewest staged into a full ring")
	}
	if got := c.dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	// The original three frames survive intact.
	if buf := c.claim(); bytes.Count(buf, []byte("data: ")) != 3 {
		t.Fatalf("claim lost surviving frames: %q", buf)
	}
}

func TestConnRingOversizedFrame(t *testing.T) {
	c := newConn(formatSSE, 32, dataplane.DropOldest, nil)
	if c.push(make([]byte, 1024)) {
		t.Fatal("frame larger than the ring must drop, not wedge")
	}
	if c.dropped.Load() != 1 {
		t.Fatal("oversized drop not counted")
	}
}

// TestSlowSubscriberRingLevel is the deterministic half of the
// slow-subscriber story: one subscriber's writer consumes, the other
// never claims (a fully stalled peer). The stalled ring must absorb
// drops without the fan-out path blocking, and the consumer must see
// every message.
func TestSlowSubscriberRingLevel(t *testing.T) {
	em := &telemetry.EdgeMetrics{}
	b := newBroadcaster(1, em)
	fast := newConn(formatSSE, 1<<20, dataplane.DropOldest, em)
	stalled := newConn(formatSSE, 256, dataplane.DropOldest, em)
	b.register(0, fast)
	b.register(0, stalled)

	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range fast.wake {
			if buf := fast.claim(); buf != nil {
				got.Write(buf)
			}
			if fast.isClosed() {
				return
			}
		}
	}()

	const n = 500
	for i := 0; i < n; i++ {
		b.fanout(0, []byte(fmt.Sprintf("msg-%04d", i)))
	}
	b.unregister(0, fast)
	select {
	case fast.wake <- struct{}{}:
	default:
	}
	<-done
	if buf := fast.claim(); buf != nil { // writer may have exited before the last claim
		got.Write(buf)
	}

	if c := bytes.Count(got.Bytes(), []byte("data: msg-")); c != n {
		t.Fatalf("fast subscriber saw %d/%d messages", c, n)
	}
	if stalled.dropped.Load() == 0 {
		t.Fatal("stalled subscriber ring never dropped")
	}
	if em.SubDropped.Load() == 0 {
		t.Fatal("drops invisible in edge metrics")
	}
	if em.FanoutMsgs.Load() == 0 {
		t.Fatal("fanout count missing")
	}
}

// smallBufListener shrinks each accepted connection's kernel send
// buffer so a stalled client stops absorbing bytes after a few KiB —
// making slow-subscriber drops deterministic without megabytes of
// traffic.
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(4096)
		}
	}
	return c, err
}

// TestStalledSSEClientHTTP is the end-to-end half: a real SSE client
// that stops reading must trigger the drop policy (visible in Stats and
// /metrics) while a healthy subscriber on the same tenant keeps
// receiving.
func TestStalledSSEClientHTTP(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{Tenants: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Plane:         dataplane.Config{Tenants: 1, Workers: 1, RingCapacity: 1 << 12},
		FlushBatch:    1,
		FlushInterval: 100 * time.Microsecond,
		SubBuffer:     4096,
		SubPolicy:     dataplane.DropOldest,
		WriteTimeout:  2 * time.Second,
		Telemetry:     tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewUnstartedServer(s.Handler())
	hs.Listener = smallBufListener{hs.Listener}
	hs.Start()
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx, nil)
	}()

	// Stalled subscriber: raw TCP, reads the response header, then stops.
	raw, err := net.Dial("tcp", hs.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if tc, ok := raw.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	fmt.Fprintf(raw, "GET /v1/subscribe?tenant=0 HTTP/1.1\r\nHost: edge\r\n\r\n")
	hdr := bufio.NewReader(raw)
	for {
		line, err := hdr.ReadString('\n')
		if err != nil {
			t.Fatalf("stalled client handshake: %v", err)
		}
		if line == "\r\n" {
			break
		}
	}

	// Healthy subscriber via the normal client path.
	events, stop := sseClient(t, hs.URL+"/v1/subscribe?tenant=0")
	defer stop()
	waitSubscribed(t, s, 2)

	// Produce in paced waves until the stalled connection's drops show
	// up; the healthy reader keeps pace on loopback.
	payload := bytes.Repeat([]byte("p"), 1024)
	deadline := time.Now().Add(20 * time.Second)
	for s.Stats().SubDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled subscriber never dropped; stats %+v", s.Stats())
		}
		for i := 0; i < 64; i++ {
			s.Submit(0, payload, 0)
		}
		time.Sleep(2 * time.Millisecond)
		// Drain whatever the healthy subscriber has received so far.
		for drained := true; drained; {
			select {
			case <-events:
			default:
				drained = false
			}
		}
	}

	// Liveness: the healthy subscriber still receives new messages.
	time.Sleep(10 * time.Millisecond)
	for drained := true; drained; {
		select {
		case <-events:
		default:
			drained = false
		}
	}
	if _, st := s.Submit(0, []byte("marker"), 0); st != SubmitAccepted {
		t.Fatalf("marker submit status %v", st)
	}
	markerDeadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev == "marker" {
				goto verified
			}
		case <-markerDeadline:
			t.Fatal("healthy subscriber stalled behind the slow one")
		}
	}
verified:
	var buf bytes.Buffer
	tel.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "hyperplane_edge_sub_dropped_total") {
		t.Fatal("/metrics missing hyperplane_edge_sub_dropped_total")
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "hyperplane_edge_sub_dropped_total ") {
			if strings.TrimPrefix(line, "hyperplane_edge_sub_dropped_total ") == "0" {
				t.Fatalf("metrics report zero drops: %s", line)
			}
		}
	}
}

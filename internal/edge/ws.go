package edge

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"io"
)

// Minimal RFC 6455 server side: enough to upgrade, stream unmasked
// server->client text frames through the same coalescing ring as SSE,
// answer pings, and notice a client close. No extensions, no
// fragmentation on the write side.

const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// wsAcceptKey computes the Sec-WebSocket-Accept handshake response value.
func wsAcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// wsFrameLen is the on-wire size of an unmasked server frame carrying n
// payload bytes.
func wsFrameLen(n int) int {
	switch {
	case n < 126:
		return 2 + n
	case n < 1<<16:
		return 4 + n
	default:
		return 10 + n
	}
}

// appendWSFrame appends one FIN text frame (unmasked, server->client).
func appendWSFrame(dst, payload []byte) []byte {
	dst = append(dst, 0x81) // FIN | text
	n := len(payload)
	switch {
	case n < 126:
		dst = append(dst, byte(n))
	case n < 1<<16:
		dst = append(dst, 126)
		dst = binary.BigEndian.AppendUint16(dst, uint16(n))
	default:
		dst = append(dst, 127)
		dst = binary.BigEndian.AppendUint64(dst, uint64(n))
	}
	return append(dst, payload...)
}

// wsPingFrame is the heartbeat frame (empty ping).
var wsPingFrame = []byte{0x89, 0x00}

// errWSClosed reports a clean client close frame.
var errWSClosed = errors.New("edge: websocket closed by client")

// wsReadLoop consumes client frames, discarding payloads: data frames
// are ignored (the subscribe socket is one-way), pongs are dropped, a
// close frame or read error ends the loop. Its return unblocks the
// handler via the done channel.
func wsReadLoop(br *bufio.Reader) error {
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:2]); err != nil {
			return err
		}
		opcode := hdr[0] & 0x0f
		masked := hdr[1]&0x80 != 0
		n := int64(hdr[1] & 0x7f)
		switch n {
		case 126:
			if _, err := io.ReadFull(br, hdr[:2]); err != nil {
				return err
			}
			n = int64(binary.BigEndian.Uint16(hdr[:2]))
		case 127:
			if _, err := io.ReadFull(br, hdr[:8]); err != nil {
				return err
			}
			n = int64(binary.BigEndian.Uint64(hdr[:8]))
		}
		if masked {
			if _, err := io.ReadFull(br, hdr[:4]); err != nil {
				return err
			}
		}
		if _, err := io.CopyN(io.Discard, br, n); err != nil {
			return err
		}
		if opcode == 0x8 { // close
			return errWSClosed
		}
	}
}

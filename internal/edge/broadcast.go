package edge

import (
	"sync"
	"sync/atomic"

	"hyperplane/dataplane"
	"hyperplane/internal/telemetry"
)

// frameFormat selects how a subscriber connection frames messages.
type frameFormat uint8

const (
	formatSSE frameFormat = iota
	formatWS
)

// conn is one subscriber connection's bounded staging ring: fan-out
// frames messages directly into pend (no per-message buffer), and the
// connection's writer goroutine claims the whole pending region in one
// swap and pushes it with a single network write — write coalescing, one
// syscall per wakeup rather than per message. cap(pend) is the bound; a
// full ring applies the configured slow-subscriber drop policy instead
// of ever blocking the fan-out path.
type conn struct {
	format frameFormat
	policy dataplane.DeliveryPolicy
	em     *telemetry.EdgeMetrics

	mu     sync.Mutex
	pend   []byte // staged frames; cap fixed at SubBuffer
	frames []int  // per-frame lengths, for DropOldest eviction
	spare  []byte // writer-owned swap buffer
	closed bool

	wake    chan struct{}
	dropped atomic.Int64 // frames dropped on this connection
}

func newConn(format frameFormat, bufBytes int, policy dataplane.DeliveryPolicy, em *telemetry.EdgeMetrics) *conn {
	if policy == dataplane.Block {
		// Fan-out runs inside the plane's egress hook and must never
		// block; Block degrades to DropOldest (latest-wins).
		policy = dataplane.DropOldest
	}
	return &conn{
		format: format,
		policy: policy,
		em:     em,
		pend:   make([]byte, 0, bufBytes),
		frames: make([]int, 0, 64),
		spare:  make([]byte, 0, bufBytes),
		wake:   make(chan struct{}, 1),
	}
}

// frameLen returns the exact framed size of payload for this format.
func (c *conn) frameLen(payload []byte) int {
	switch c.format {
	case formatWS:
		return wsFrameLen(len(payload))
	default:
		return sseFrameLen(payload)
	}
}

// push frames payload into the ring, applying the drop policy on
// overflow, and wakes the writer. Reports whether the frame was staged.
func (c *conn) push(payload []byte) bool {
	need := c.frameLen(payload)
	c.mu.Lock()
	if c.closed || need > cap(c.pend) {
		c.mu.Unlock()
		c.noteDrop(1)
		return false
	}
	if len(c.pend)+need > cap(c.pend) {
		if c.policy == dataplane.DropNewest {
			c.mu.Unlock()
			c.noteDrop(1)
			return false
		}
		// DropOldest: evict leading frames until at least half the ring
		// (or the new frame, whichever is larger) fits, so a burst does
		// not pay one memmove per message.
		target := cap(c.pend) / 2
		if need > target {
			target = need
		}
		cut, nf := 0, 0
		for nf < len(c.frames) && cap(c.pend)-(len(c.pend)-cut) < target {
			cut += c.frames[nf]
			nf++
		}
		c.pend = c.pend[:copy(c.pend, c.pend[cut:])]
		c.frames = c.frames[:copy(c.frames, c.frames[nf:])]
		c.noteDrop(nf)
	}
	switch c.format {
	case formatWS:
		c.pend = appendWSFrame(c.pend, payload)
	default:
		c.pend = appendSSEFrame(c.pend, payload)
	}
	c.frames = append(c.frames, need)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return true
}

func (c *conn) noteDrop(n int) {
	if n <= 0 {
		return
	}
	c.dropped.Add(int64(n))
	if c.em != nil {
		c.em.SubDropped.Add(int64(n))
	}
}

// claim swaps out the pending region for the writer: everything staged
// so far comes back as one contiguous byte slice (owned by the writer
// until the next claim), and fan-out keeps staging into the other
// buffer without waiting for the network write. Returns nil when
// nothing is pending.
func (c *conn) claim() []byte {
	c.mu.Lock()
	if len(c.pend) == 0 {
		c.mu.Unlock()
		return nil
	}
	out := c.pend
	c.pend = c.spare[:0]
	c.spare = out
	c.frames = c.frames[:0]
	c.mu.Unlock()
	return out
}

// close marks the connection dead so fan-out stops staging into it.
func (c *conn) close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// isClosed reports whether close was called (server shutdown or
// unregister); writers exit after a final claim.
func (c *conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// sseFrameLen is the exact length appendSSEFrame will add: "data: " per
// line plus the terminating blank line.
func sseFrameLen(payload []byte) int {
	lines := 1
	for _, b := range payload {
		if b == '\n' {
			lines++
		}
	}
	return len(payload) + 6*lines + 2
}

// appendSSEFrame appends payload as one SSE event: every payload line
// becomes a "data: " field, the event ends with a blank line. Payload
// newlines are preserved by the client's field-joining rule.
func appendSSEFrame(dst, payload []byte) []byte {
	dst = append(dst, "data: "...)
	start := 0
	for i, b := range payload {
		if b == '\n' {
			dst = append(dst, payload[start:i+1]...)
			dst = append(dst, "data: "...)
			start = i + 1
		}
	}
	dst = append(dst, payload[start:]...)
	return append(dst, '\n', '\n')
}

// tenantSubs is one tenant's subscriber set. RWMutex: fan-out takes the
// read side (many deliveries), register/unregister the write side.
type tenantSubs struct {
	mu   sync.RWMutex
	subs []*conn
}

// broadcaster fans delivered payloads out to every subscriber of the
// tenant. It is the edge's half of the plane's egress hook.
type broadcaster struct {
	tenants []tenantSubs
	em      *telemetry.EdgeMetrics
}

func newBroadcaster(tenants int, em *telemetry.EdgeMetrics) *broadcaster {
	return &broadcaster{tenants: make([]tenantSubs, tenants), em: em}
}

func (b *broadcaster) register(tenant int, c *conn) {
	ts := &b.tenants[tenant]
	ts.mu.Lock()
	ts.subs = append(ts.subs, c)
	ts.mu.Unlock()
	b.em.Connects.Add(1)
	b.em.Connections.Add(1)
}

func (b *broadcaster) unregister(tenant int, c *conn) {
	ts := &b.tenants[tenant]
	ts.mu.Lock()
	for i, sc := range ts.subs {
		if sc == c {
			last := len(ts.subs) - 1
			ts.subs[i] = ts.subs[last]
			ts.subs[last] = nil
			ts.subs = ts.subs[:last]
			break
		}
	}
	ts.mu.Unlock()
	c.close()
	b.em.Disconnects.Add(1)
	b.em.Connections.Add(-1)
}

// fanout stages payload on every subscriber ring. Called from the
// plane's worker goroutines via the egress hook: it must not block and
// must not retain payload — push copies the bytes into each ring.
func (b *broadcaster) fanout(tenant int, payload []byte) {
	ts := &b.tenants[tenant]
	ts.mu.RLock()
	staged := 0
	for _, c := range ts.subs {
		if c.push(payload) {
			staged++
		}
	}
	ts.mu.RUnlock()
	if staged > 0 {
		b.em.FanoutMsgs.Add(int64(staged))
	}
}

// closeAll closes every subscriber ring and wakes every writer so
// connection handlers observe shutdown and exit after a final flush.
func (b *broadcaster) closeAll() {
	for t := range b.tenants {
		ts := &b.tenants[t]
		ts.mu.Lock()
		for _, c := range ts.subs {
			c.close()
			select {
			case c.wake <- struct{}{}:
			default:
			}
		}
		ts.mu.Unlock()
	}
}

package edge

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/telemetry"
)

// newTestServer builds a started edge over a small in-memory plane and
// an httptest listener. FlushInterval is tightened so partial batches
// flush promptly.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Plane.Tenants == 0 {
		cfg.Plane.Tenants = 2
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 100 * time.Microsecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx, nil)
	})
	return s, hs
}

type acceptResp struct {
	Seq       uint64 `json:"seq"`
	Duplicate bool   `json:"duplicate"`
}

func postIngest(t *testing.T, url, body string, hdr map[string]string) (*http.Response, acceptResp) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar acceptResp
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("decoding accept body: %v", err)
		}
	}
	return resp, ar
}

// sseClient subscribes and forwards decoded event payloads on a channel.
func sseClient(t *testing.T, url string) (<-chan string, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	events := make(chan string, 1024)
	go func() {
		defer resp.Body.Close()
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				events <- data
			}
		}
	}()
	return events, cancel
}

func waitEvent(t *testing.T, events <-chan string) string {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatal("subscriber stream closed early")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for event")
	}
	return ""
}

func TestIngestToSSERoundtrip(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	events, stop := sseClient(t, hs.URL+"/v1/subscribe?tenant=0")
	defer stop()
	waitSubscribed(t, s, 1)

	const n = 50
	for i := 0; i < n; i++ {
		resp, ar := postIngest(t, hs.URL+"/v1/ingest?tenant=0", fmt.Sprintf("hello-%d", i), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
		if ar.Seq != uint64(i+1) {
			t.Fatalf("ingest %d: seq %d, want %d", i, ar.Seq, i+1)
		}
	}
	got := make(map[string]bool, n)
	for len(got) < n {
		got[waitEvent(t, events)] = true
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("hello-%d", i)] {
			t.Fatalf("event hello-%d never arrived", i)
		}
	}
}

// waitSubscribed blocks until n subscriber connections are registered,
// so a test's ingest cannot race ahead of its subscribe.
func waitSubscribed(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.em.Connections.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d subscriptions", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMultilinePayloadSSEFraming(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	events, stop := sseClient(t, hs.URL+"/v1/subscribe?tenant=0")
	defer stop()
	waitSubscribed(t, s, 1)
	if resp, _ := postIngest(t, hs.URL+"/v1/ingest?tenant=0", "line1\nline2", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// The SSE field-joining rule reassembles the two data lines.
	if ev := waitEvent(t, events); ev != "line1" {
		t.Fatalf("first data line %q, want %q", ev, "line1")
	}
	if ev := waitEvent(t, events); ev != "line2" {
		t.Fatalf("second data line %q, want %q", ev, "line2")
	}
}

func TestBearerAuth(t *testing.T) {
	_, hs := newTestServer(t, Config{
		Auth:  map[string]int{"tok-a": 0, "tok-b": 1},
		Plane: dataplane.Config{Tenants: 2},
	})
	resp, _ := postIngest(t, hs.URL+"/v1/ingest", "x", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status %d, want 401", resp.StatusCode)
	}
	resp, _ = postIngest(t, hs.URL+"/v1/ingest", "x", map[string]string{"Authorization": "Bearer wrong"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: status %d, want 401", resp.StatusCode)
	}
	resp, ar := postIngest(t, hs.URL+"/v1/ingest", "x", map[string]string{"Authorization": "Bearer tok-b"})
	if resp.StatusCode != http.StatusAccepted || ar.Seq != 1 {
		t.Fatalf("good token: status %d seq %d", resp.StatusCode, ar.Seq)
	}
	// Auth mode must ignore the open-mode tenant query escape hatch.
	r, err := http.Get(hs.URL + "/v1/subscribe?tenant=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthorized subscribe: status %d, want 401", r.StatusCode)
	}
}

func TestTenantQueryValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, q := range []string{"?tenant=99", "?tenant=-1", "?tenant=abc"} {
		resp, _ := postIngest(t, hs.URL+"/v1/ingest"+q, "x", nil)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s: status %d, want 401", q, resp.StatusCode)
		}
	}
}

func TestIdempotencyKeyDedup(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	events, stop := sseClient(t, hs.URL+"/v1/subscribe?tenant=0")
	defer stop()
	waitSubscribed(t, s, 1)

	hdr := map[string]string{"Idempotency-Key": "order-42"}
	resp, first := postIngest(t, hs.URL+"/v1/ingest?tenant=0", "pay-once", hdr)
	if resp.StatusCode != http.StatusAccepted || first.Duplicate {
		t.Fatalf("first: status %d dup %v", resp.StatusCode, first.Duplicate)
	}
	resp, second := postIngest(t, hs.URL+"/v1/ingest?tenant=0", "pay-once", hdr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry: status %d", resp.StatusCode)
	}
	if !second.Duplicate || second.Seq != first.Seq {
		t.Fatalf("retry: seq %d dup %v, want original seq %d dup true", second.Seq, second.Duplicate, first.Seq)
	}
	// Exactly one delivery: the follow-up message proves nothing else
	// is in flight.
	postIngest(t, hs.URL+"/v1/ingest?tenant=0", "after", nil)
	if ev := waitEvent(t, events); ev != "pay-once" {
		t.Fatalf("event %q, want pay-once", ev)
	}
	if ev := waitEvent(t, events); ev != "after" {
		t.Fatalf("event %q, want after (duplicate must not re-enqueue)", ev)
	}
	if st := s.Stats(); st.Deduped != 1 || st.Accepted != 2 {
		t.Fatalf("stats = %+v, want Deduped 1 Accepted 2", st)
	}
}

func TestRateLimitHTTP(t *testing.T) {
	s, hs := newTestServer(t, Config{Rate: 0.001, Burst: 3})
	var codes []int
	for i := 0; i < 5; i++ {
		resp, _ := postIngest(t, hs.URL+"/v1/ingest?tenant=0", "x", nil)
		codes = append(codes, resp.StatusCode)
	}
	for i, c := range codes {
		want := http.StatusAccepted
		if i >= 3 {
			want = http.StatusTooManyRequests
		}
		if c != want {
			t.Fatalf("request %d: status %d, want %d (all: %v)", i, c, want, codes)
		}
	}
	if st := s.Stats(); st.RateLimited != 2 {
		t.Fatalf("RateLimited = %d, want 2", st.RateLimited)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxPayload: 128})
	resp, _ := postIngest(t, hs.URL+"/v1/ingest?tenant=0", strings.Repeat("x", 129), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	resp, _ = postIngest(t, hs.URL+"/v1/ingest?tenant=0", strings.Repeat("x", 128), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("at-limit status %d, want 202", resp.StatusCode)
	}
}

func TestEdgeMetricsExported(t *testing.T) {
	tel, err := telemetry.New(telemetry.Config{Tenants: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, hs := newTestServer(t, Config{Telemetry: tel})
	for i := 0; i < 3; i++ {
		postIngest(t, hs.URL+"/v1/ingest?tenant=0", "m", nil)
	}
	waitFlushed(t, s, 3)
	var buf bytes.Buffer
	tel.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"hyperplane_edge_accepted_total 3",
		"hyperplane_edge_connections 0",
		"hyperplane_edge_flushed_items_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q\n%s", want, out)
		}
	}
}

// waitFlushed blocks until n items have been flushed into the plane.
func waitFlushed(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.em.FlushedItems.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never flushed %d items (have %d)", n, s.em.FlushedItems.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWebSocketSubscribe(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	u := strings.TrimPrefix(hs.URL, "http://")
	conn, err := dialWS(u, "/v1/ws?tenant=0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitSubscribed(t, s, 1)
	if resp, _ := postIngest(t, hs.URL+"/v1/ingest?tenant=0", "ws-msg", nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	payload, err := conn.readText(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "ws-msg" {
		t.Fatalf("ws payload %q, want ws-msg", payload)
	}
}

package edge

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// wsTestConn is a minimal WebSocket client for tests: handshake over
// raw TCP, read unmasked server frames.
type wsTestConn struct {
	c  net.Conn
	br *bufio.Reader
}

func dialWS(addr, path string) (*wsTestConn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + addr + "\r\n" +
		"Upgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(c, req); err != nil {
		c.Close()
		return nil, err
	}
	br := bufio.NewReader(c)
	status, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return nil, err
	}
	if !strings.Contains(status, "101") {
		c.Close()
		return nil, fmt.Errorf("handshake status %q", strings.TrimSpace(status))
	}
	sawAccept := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			c.Close()
			return nil, err
		}
		if strings.HasPrefix(line, "Sec-WebSocket-Accept:") {
			sawAccept = true
		}
		if line == "\r\n" {
			break
		}
	}
	if !sawAccept {
		c.Close()
		return nil, fmt.Errorf("handshake missing Sec-WebSocket-Accept")
	}
	return &wsTestConn{c: c, br: br}, nil
}

// readText returns the next text-frame payload, transparently skipping
// control frames (pings).
func (w *wsTestConn) readText(timeout time.Duration) ([]byte, error) {
	w.c.SetReadDeadline(time.Now().Add(timeout))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(w.br, hdr[:2]); err != nil {
			return nil, err
		}
		opcode := hdr[0] & 0x0f
		n := int64(hdr[1] & 0x7f)
		switch n {
		case 126:
			if _, err := io.ReadFull(w.br, hdr[:2]); err != nil {
				return nil, err
			}
			n = int64(binary.BigEndian.Uint16(hdr[:2]))
		case 127:
			if _, err := io.ReadFull(w.br, hdr[:8]); err != nil {
				return nil, err
			}
			n = int64(binary.BigEndian.Uint64(hdr[:8]))
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(w.br, payload); err != nil {
			return nil, err
		}
		if opcode == 0x1 {
			return payload, nil
		}
		// control frame (ping/pong/close): skip and keep reading
		if opcode == 0x8 {
			return nil, fmt.Errorf("server sent close")
		}
	}
}

func (w *wsTestConn) Close() error { return w.c.Close() }

func TestWSAcceptKey(t *testing.T) {
	// RFC 6455 §1.3 worked example.
	if got := wsAcceptKey("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("accept key = %q", got)
	}
}

func TestWSFrameRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 125, 126, 400, 1 << 16} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i)
		}
		frame := appendWSFrame(nil, payload)
		if len(frame) != wsFrameLen(n) {
			t.Fatalf("n=%d: frame len %d, want %d", n, len(frame), wsFrameLen(n))
		}
		if frame[0] != 0x81 {
			t.Fatalf("n=%d: first byte %#x", n, frame[0])
		}
	}
}

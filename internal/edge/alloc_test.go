package edge

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hyperplane/dataplane"
)

// TestSubmitZeroAllocs pins the tentpole claim: the steady-state ingest
// hot path — rate-limit check, idempotency lookup, slab copy, batch
// staging, and the inline IngressBatch flush every FlushBatch requests —
// performs no per-request allocation. Payloads land in pooled slabs, the
// staged batch reuses its preallocated buffer, and the flush rides the
// plane's pooled notify plan.
func TestSubmitZeroAllocs(t *testing.T) {
	s, err := New(Config{
		Plane: dataplane.Config{
			Tenants:      1,
			Workers:      1,
			Mode:         dataplane.Spin,
			RingCapacity: 1 << 14,
		},
		FlushBatch:    64,
		FlushInterval: time.Hour, // background flusher out of the picture
		IdemWindow:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx, nil)
	}()

	payload := []byte("edge-zero-alloc-payload-0123456789abcdef")
	var failed atomic.Int64
	burst := func() {
		for i := 0; i < 64; i++ {
			if _, st := s.Submit(0, payload, 0); st != SubmitAccepted {
				failed.Add(1)
			}
		}
	}
	// Warm: fault in the slab pool, batch buffers, and the plane's
	// ingress pools before measuring.
	for i := 0; i < 8; i++ {
		burst()
	}
	avg := testing.AllocsPerRun(50, burst)
	if failed.Load() != 0 {
		t.Fatalf("%d submits failed during measurement", failed.Load())
	}
	// One burst is 64 requests and one flush; anything >= 1 allocation
	// per burst means a per-request (or per-flush) allocation crept in.
	if avg >= 1 {
		t.Errorf("allocations per 64-submit burst = %v, want < 1", avg)
	}
}

// TestSubmitZeroAllocsIdempotent pins the same property for keyed
// requests: a warmed dedup window makes Lookup+Remember allocation-free.
func TestSubmitZeroAllocsIdempotent(t *testing.T) {
	s, err := New(Config{
		Plane: dataplane.Config{
			Tenants:      1,
			Workers:      1,
			Mode:         dataplane.Spin,
			RingCapacity: 1 << 14,
		},
		FlushBatch:    64,
		FlushInterval: time.Hour,
		IdemWindow:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx, nil)
	}()

	payload := []byte("keyed-payload")
	var failed atomic.Int64
	key := uint64(0)
	burst := func() {
		for i := 0; i < 64; i++ {
			key++
			if _, st := s.Submit(0, payload, key); st != SubmitAccepted {
				failed.Add(1)
			}
		}
	}
	for i := 0; i < 8; i++ {
		burst()
	}
	avg := testing.AllocsPerRun(50, burst)
	if failed.Load() != 0 {
		t.Fatalf("%d submits failed during measurement", failed.Load())
	}
	if avg >= 1 {
		t.Errorf("allocations per keyed 64-submit burst = %v, want < 1", avg)
	}
}

package edge

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hyperplane/dataplane"
)

// TestShutdownDrainsAccepted is the no-dropped-but-202'd proof: every
// request the edge accepted — including ones still sitting in a partial
// staging batch when SIGTERM lands — must reach subscribers before
// Shutdown returns. Shutdown flushes the stagers, runs the plane's
// bounded drain, gives subscriber writers a final coalesced flush, and
// only then stops.
func TestShutdownDrainsAccepted(t *testing.T) {
	s, err := New(Config{
		Plane:         dataplane.Config{Tenants: 1, Workers: 1, RingCapacity: 1 << 12},
		FlushBatch:    64,
		FlushInterval: time.Hour, // no background flusher: staged items sit until Shutdown
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	events, stop := sseClient(t, hs.URL+"/v1/subscribe?tenant=0")
	defer stop()
	waitSubscribed(t, s, 1)

	// 100 accepts = one full flush of 64 + 36 stranded in the stager.
	const n = 100
	for i := 0; i < n; i++ {
		if _, st := s.Submit(0, []byte(fmt.Sprintf("m-%03d", i)), 0); st != SubmitAccepted {
			t.Fatalf("submit %d: %v", i, st)
		}
	}
	if got := s.Stats().FlushedItems; got != 64 {
		t.Fatalf("pre-shutdown flushed %d, want 64 (the rest must be staged)", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, nil); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	got := make(map[string]bool, n)
	for ev := range events { // stream closes when the writer exits
		got[ev] = true
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("m-%03d", i)] {
			t.Fatalf("accepted message m-%03d lost across shutdown (%d received)", i, len(got))
		}
	}

	// After shutdown the edge rejects truthfully.
	if _, st := s.Submit(0, []byte("late"), 0); st != SubmitRejected {
		t.Fatalf("post-shutdown submit = %v, want SubmitRejected", st)
	}
	resp, _ := postIngest(t, hs.URL+"/v1/ingest?tenant=0", "late", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown ingest status %d, want 503", resp.StatusCode)
	}
}

// TestShutdownWiresHTTPServer covers the hs != nil path: Shutdown must
// stop the listener only after the drain, and report success.
func TestShutdownWiresHTTPServer(t *testing.T) {
	s, err := New(Config{
		Plane:      dataplane.Config{Tenants: 1, Workers: 1},
		FlushBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hsrv := &http.Server{Handler: s.Handler()}
	hs := httptest.NewUnstartedServer(nil)
	hs.Config = hsrv
	hs.Start()

	for i := 0; i < 20; i++ {
		resp, _ := postIngest(t, hs.URL+"/v1/ingest?tenant=0", "x", nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %d status %d", i, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, hsrv); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(hs.URL + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	if st := s.Stats(); st.FlushedItems != st.Accepted {
		t.Fatalf("flushed %d of %d accepted", st.FlushedItems, st.Accepted)
	}
}

// TestHealthzDraining: health flips to 503 the moment draining starts,
// so load balancers stop routing before the listener closes.
func TestHealthzDraining(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status %d", resp.StatusCode)
	}
	s.draining.Store(true)
	defer s.draining.Store(false)
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp.StatusCode)
	}
}

// TestShutdownDurablePlane: the durable tier shuts down cleanly through
// the edge (group commit on close), and staged items reach the WAL.
func TestShutdownDurablePlane(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{
		Plane: dataplane.Config{
			Tenants: 1,
			Workers: 1,
			Durable: dataplane.DurableConfig{Dir: dir},
		},
		FlushBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for i := 0; i < 10; i++ {
		if _, st := s.Submit(0, []byte(strings.Repeat("d", 32)), 0); st != SubmitAccepted {
			t.Fatalf("submit %d: %v", i, st)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx, nil); err != nil {
		t.Fatalf("durable shutdown: %v", err)
	}
}

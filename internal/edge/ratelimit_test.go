package edge

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRateLimiterBurstThenDeny(t *testing.T) {
	l := NewRateLimiter(1, 1000, 5) // 1ms interval, burst 5
	now := time.Now().UnixNano()
	for i := 0; i < 5; i++ {
		if !l.Allow(0, now) {
			t.Fatalf("request %d inside burst denied", i)
		}
	}
	if l.Allow(0, now) {
		t.Fatal("request 6 at the same instant should be denied")
	}
}

func TestRateLimiterRefill(t *testing.T) {
	l := NewRateLimiter(1, 1000, 2)
	now := int64(1_000_000_000)
	if !l.Allow(0, now) || !l.Allow(0, now) {
		t.Fatal("burst of 2 denied")
	}
	if l.Allow(0, now) {
		t.Fatal("drained bucket allowed")
	}
	// One emission interval later exactly one token has dripped in.
	now += l.interval
	if !l.Allow(0, now) {
		t.Fatal("token after one interval denied")
	}
	if l.Allow(0, now) {
		t.Fatal("second token after one interval allowed")
	}
}

func TestRateLimiterSustainedRate(t *testing.T) {
	l := NewRateLimiter(1, 1000, 1)
	now := int64(1_000_000_000)
	for i := 0; i < 100; i++ {
		if !l.Allow(0, now) {
			t.Fatalf("on-schedule request %d denied", i)
		}
		if l.Allow(0, now) {
			t.Fatalf("off-schedule request %d allowed", i)
		}
		now += l.interval
	}
}

func TestRateLimiterTenantIsolation(t *testing.T) {
	l := NewRateLimiter(2, 1000, 1)
	now := time.Now().UnixNano()
	if !l.Allow(0, now) {
		t.Fatal("tenant 0 denied")
	}
	if !l.Allow(1, now) {
		t.Fatal("tenant 1 should have its own bucket")
	}
}

func TestRateLimiterNilAllowsAll(t *testing.T) {
	var l *RateLimiter
	for i := 0; i < 1000; i++ {
		if !l.Allow(0, int64(i)) {
			t.Fatal("nil limiter denied")
		}
	}
	if l := NewRateLimiter(1, 0, 10); l != nil {
		t.Fatal("rate 0 should build a nil (unlimited) limiter")
	}
}

// TestRateLimiterConcurrentExact hammers one frozen instant from many
// goroutines: the CAS admission must hand out exactly burst tokens, no
// more, no fewer — the property a locked tokens+timestamp pair gets for
// free and GCRA must earn.
func TestRateLimiterConcurrentExact(t *testing.T) {
	const burst = 64
	l := NewRateLimiter(1, 0.001, burst) // ~17min interval: no refill mid-test
	now := time.Now().UnixNano()
	var allowed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if l.Allow(0, now) {
					allowed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := allowed.Load(); got != burst {
		t.Fatalf("admitted %d, want exactly %d", got, burst)
	}
}

func TestRateLimiterAllocFree(t *testing.T) {
	l := NewRateLimiter(1, 1e9, 1<<30)
	now := time.Now().UnixNano()
	if avg := testing.AllocsPerRun(100, func() { l.Allow(0, now) }); avg != 0 {
		t.Errorf("Allow allocates %v per call, want 0", avg)
	}
}

// Package edge is the network front of the data plane: a multi-tenant
// HTTP ingest API whose hot path stages requests into pooled per-tenant
// batches and flushes them through the plane's batched MPSC ingress (one
// cursor publish + one doorbell amortize many requests, exactly as
// PushBatch amortizes ring operations), and an egress broadcaster that
// fans completions out to SSE/WebSocket subscribers through bounded
// per-connection rings with coalesced writes. It is the layer that makes
// the accelerator's wins — batched ingress, banked notify, work stealing
// — reachable by real clients.
package edge

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/dedup"
	"hyperplane/internal/telemetry"
)

// Config configures an edge Server. The zero value of every field has a
// usable default except Plane.Tenants, which must be positive.
type Config struct {
	// Plane configures the embedded data plane. The edge owns the
	// plane's lifecycle and installs its own OnDeliver egress hook; a
	// caller-set OnDeliver is rejected. Handler/BatchHandler and the
	// durable tier work as usual.
	Plane dataplane.Config

	// Auth maps bearer tokens to tenant ids. nil runs the edge open:
	// the tenant comes from the ?tenant= query parameter (default 0).
	Auth map[string]int

	// Rate limits each tenant to this many ingest requests/sec with
	// Burst headroom (GCRA). 0 disables rate limiting.
	Rate  float64
	Burst int

	// FlushBatch is the staging batch size: one IngressBatch flush per
	// FlushBatch requests (default 64). 1 degenerates to one flush per
	// request — the unamortized baseline edgebench compares against.
	FlushBatch int
	// FlushInterval bounds how long a partial batch waits for the
	// background flusher (default 200µs).
	FlushInterval time.Duration

	// IdemWindow is the per-tenant idempotency-key history depth
	// (default 4096).
	IdemWindow int

	// MaxPayload rejects larger ingest bodies with 413 (default
	// SlabBytes). SlabBytes sizes the pooled staging slabs (default
	// 64 KiB).
	MaxPayload int
	SlabBytes  int

	// SubBuffer bounds each subscriber connection's pending-frame ring
	// in bytes (default 256 KiB). SubPolicy picks the slow-subscriber
	// policy: DropOldest (default; Block degrades to it — fan-out never
	// blocks) or DropNewest.
	SubBuffer int
	SubPolicy dataplane.DeliveryPolicy

	// WriteTimeout bounds each coalesced subscriber write (default 5s);
	// a fully stalled connection is reaped when it expires. Heartbeat
	// is the idle keep-alive interval (default 15s).
	WriteTimeout time.Duration
	Heartbeat    time.Duration

	// Telemetry, when non-nil, gets the edge counter series attached as
	// a /metrics collector (hyperplane_edge_*).
	Telemetry *telemetry.T
}

// Server is the running edge: an embedded data plane, per-tenant ingest
// stagers, and the subscriber broadcaster. Route its Handler into an
// http.Server and wire SIGTERM to Shutdown.
type Server struct {
	cfg     Config
	plane   *dataplane.Plane
	slabs   *slabPool
	stagers []stager
	limiter *RateLimiter
	bcast   *broadcaster
	em      *telemetry.EdgeMetrics
	mux     *http.ServeMux

	bodyPool sync.Pool
	router   atomic.Pointer[Router]

	draining    atomic.Bool
	abortFlush  atomic.Bool
	stopFlusher chan struct{}
	flusherOnce sync.Once
	closeOnce   sync.Once
}

// New builds an edge Server and its embedded plane (not yet started).
func New(cfg Config) (*Server, error) {
	if cfg.Plane.OnDeliver != nil {
		return nil, errConfigOnDeliver
	}
	if cfg.FlushBatch < 1 {
		cfg.FlushBatch = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Microsecond
	}
	if cfg.IdemWindow < 1 {
		cfg.IdemWindow = 4096
	}
	if cfg.SlabBytes < 1 {
		cfg.SlabBytes = 64 << 10
	}
	if cfg.MaxPayload < 1 {
		cfg.MaxPayload = cfg.SlabBytes
	}
	if cfg.SubBuffer < 1 {
		cfg.SubBuffer = 256 << 10
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	s := &Server{
		cfg:         cfg,
		em:          &telemetry.EdgeMetrics{},
		stopFlusher: make(chan struct{}),
	}
	s.cfg.Plane.OnDeliver = s.onDeliver
	plane, err := dataplane.New(s.cfg.Plane)
	if err != nil {
		return nil, err
	}
	tenants := s.cfg.Plane.Tenants
	s.plane = plane
	s.slabs = newSlabPool(cfg.SlabBytes)
	s.limiter = NewRateLimiter(tenants, cfg.Rate, cfg.Burst)
	s.bcast = newBroadcaster(tenants, s.em)
	s.stagers = make([]stager, tenants)
	for i := range s.stagers {
		s.stagers[i].items = make([]dataplane.IngressItem, 0, cfg.FlushBatch)
		s.stagers[i].idem = dedup.NewWindow(cfg.IdemWindow)
	}
	s.bodyPool = sync.Pool{New: func() any {
		b := make([]byte, s.cfg.MaxPayload+1)
		return &b
	}}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSSE)
	s.mux.HandleFunc("GET /v1/ws", s.handleWS)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.Telemetry != nil {
		cfg.Telemetry.AttachCollector(s.em.WriteProm)
	}
	return s, nil
}

var errConfigOnDeliver = &configError{"edge: Config.Plane.OnDeliver is owned by the edge"}

type configError struct{ msg string }

func (e *configError) Error() string { return e.msg }

// Start launches the embedded plane's workers and the deadline flusher.
func (s *Server) Start() {
	s.plane.Start()
	go s.flusher()
}

// Plane exposes the embedded data plane (stats, DLQ drains, WAL sync).
func (s *Server) Plane() *dataplane.Plane { return s.plane }

// Router lets a federation layer claim ingest routing: tenants owned
// elsewhere are forwarded toward their owner instead of being staged
// into the local plane. cluster.Node satisfies this interface.
type Router interface {
	// Local reports whether the tenant is currently served by the local
	// plane. Anonymous traffic for local tenants takes the normal
	// staged batch path; identified traffic goes through Ingress even
	// when local, so the key lands in the cluster dedup window.
	Local(tenant int) bool
	// Ingress routes one message toward the tenant's owner — over the
	// bridge when remote, through the cluster's window-checked local
	// admission when this node is the owner. The payload is borrowed
	// only for the duration of the call — implementations must copy
	// before returning. msgID carries the request's idempotency key
	// (0 = anonymous) so the owner can deduplicate retries that arrive
	// through a different entry node.
	Ingress(tenant int, msgID uint64, payload []byte) bool
}

// SetRouter installs (or, with nil, removes) the federation router.
// Safe to call while the edge is serving; requests racing the swap take
// whichever path they observed.
func (s *Server) SetRouter(r Router) {
	if r == nil {
		s.router.Store(nil)
		return
	}
	s.router.Store(&r)
}

// Handler returns the edge's HTTP mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the edge counter set (always non-nil).
func (s *Server) Metrics() *telemetry.EdgeMetrics { return s.em }

// onDeliver is the plane's egress hook: delivered payloads fan out to
// the tenant's subscribers, and every hook call — delivery or
// retirement — releases the item's slab reference.
func (s *Server) onDeliver(tenant int, payload []byte, tag uint64) {
	if payload != nil {
		s.bcast.fanout(tenant, payload)
	}
	if tag != 0 {
		s.slabs.unref(tag)
	}
}

// Stats is a point-in-time snapshot of the edge counters.
type Stats struct {
	Connections     int64
	Accepted        int64
	RateLimited     int64
	Deduped         int64
	Rejected        int64
	Forwarded       int64
	Flushes         int64
	FlushedItems    int64
	SlabOverflow    int64
	FanoutMsgs      int64
	CoalescedWrites int64
	SentBytes       int64
	SubDropped      int64
}

// Stats snapshots the edge counters.
func (s *Server) Stats() Stats {
	return Stats{
		Connections:     s.em.Connections.Load(),
		Accepted:        s.em.Accepted.Load(),
		RateLimited:     s.em.RateLimited.Load(),
		Deduped:         s.em.Deduped.Load(),
		Rejected:        s.em.Rejected.Load(),
		Forwarded:       s.em.Forwarded.Load(),
		Flushes:         s.em.Flushes.Load(),
		FlushedItems:    s.em.FlushedItems.Load(),
		SlabOverflow:    s.em.SlabOverflow.Load(),
		FanoutMsgs:      s.em.FanoutMsgs.Load(),
		CoalescedWrites: s.em.CoalescedWrites.Load(),
		SentBytes:       s.em.SentBytes.Load(),
		SubDropped:      s.em.SubDropped.Load(),
	}
}

// Shutdown drains the edge in dependency order so nothing the edge
// 202'd is silently lost: new ingest starts rejecting, staged batches
// flush into the plane, the plane drains bounded by ctx (StopContext
// stops it regardless), subscribers get a final coalesced flush of
// everything delivered, and only then does the HTTP listener shut down.
// hs may be nil when the caller owns the listener separately.
func (s *Server) Shutdown(ctx context.Context, hs *http.Server) error {
	s.draining.Store(true)
	s.flusherOnce.Do(func() { close(s.stopFlusher) })
	// If ctx expires while a flush is stuck on plane backpressure, abort
	// it — StopContext will stop the plane on the same deadline anyway.
	stopAbort := context.AfterFunc(ctx, func() { s.abortFlush.Store(true) })
	defer stopAbort()
	s.flushAll()
	err := s.plane.StopContext(ctx)
	s.closeOnce.Do(func() { s.bcast.closeAll() })
	if hs != nil {
		if herr := hs.Shutdown(ctx); err == nil {
			err = herr
		}
	}
	return err
}

// ---- HTTP handlers ----

// authTenant resolves the request's tenant: bearer-token lookup when
// Auth is configured, else the ?tenant= query parameter (default 0).
func (s *Server) authTenant(r *http.Request) (int, bool) {
	if s.cfg.Auth != nil {
		const prefix = "Bearer "
		ah := r.Header.Get("Authorization")
		if len(ah) > len(prefix) && ah[:len(prefix)] == prefix {
			if t, ok := s.cfg.Auth[ah[len(prefix):]]; ok {
				return t, true
			}
		}
		return 0, false
	}
	q := r.URL.RawQuery
	for len(q) > 0 {
		kv := q
		if i := strings.IndexByte(q, '&'); i >= 0 {
			kv, q = q[:i], q[i+1:]
		} else {
			q = ""
		}
		if strings.HasPrefix(kv, "tenant=") {
			t, err := strconv.Atoi(kv[len("tenant="):])
			if err != nil || t < 0 || t >= len(s.stagers) {
				return 0, false
			}
			return t, true
		}
	}
	return 0, true
}

// readBody fills buf from r, returning the byte count; a full buf means
// the body exceeded MaxPayload (buf is sized MaxPayload+1).
func readBody(r io.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	tenant, ok := s.authTenant(r)
	if !ok {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	bp := s.bodyPool.Get().(*[]byte)
	n, err := readBody(r.Body, *bp)
	if err != nil {
		s.bodyPool.Put(bp)
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	key := IdemKey(r.Header.Get("Idempotency-Key"))
	seq, st := s.Submit(tenant, (*bp)[:n], key)
	s.bodyPool.Put(bp)
	switch st {
	case SubmitAccepted, SubmitDuplicate:
		var arr [64]byte
		resp := append(arr[:0], `{"seq":`...)
		resp = strconv.AppendUint(resp, seq, 10)
		if st == SubmitDuplicate {
			resp = append(resp, `,"duplicate":true`...)
		}
		resp = append(resp, '}', '\n')
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write(resp)
	case SubmitRateLimited:
		http.Error(w, "rate limited", http.StatusTooManyRequests)
	case SubmitTooLarge:
		http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
	default:
		http.Error(w, "rejected", http.StatusServiceUnavailable)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleSSE(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.authTenant(r)
	if !ok {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}
	c := newConn(formatSSE, s.cfg.SubBuffer, s.cfg.SubPolicy, s.em)
	s.bcast.register(tenant, c)
	defer s.bcast.unregister(tenant, c)

	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			rc.Flush()
		case <-c.wake:
			buf := c.claim()
			if buf == nil {
				if c.isClosed() { // shutdown wakeup
					return
				}
				continue
			}
			rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			nw, err := w.Write(buf)
			s.em.CoalescedWrites.Add(1)
			s.em.SentBytes.Add(int64(nw))
			if err != nil {
				return
			}
			rc.Flush()
			if c.isClosed() {
				return
			}
		}
	}
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.authTenant(r)
	if !ok {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		r.Header.Get("Sec-WebSocket-Key") == "" {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijack unsupported", http.StatusInternalServerError)
		return
	}
	netc, brw, err := hj.Hijack()
	if err != nil {
		return
	}
	defer netc.Close()
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(r.Header.Get("Sec-WebSocket-Key")) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		return
	}
	if err := brw.Flush(); err != nil {
		return
	}
	c := newConn(formatWS, s.cfg.SubBuffer, s.cfg.SubPolicy, s.em)
	s.bcast.register(tenant, c)
	defer s.bcast.unregister(tenant, c)

	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		wsReadLoop(brw.Reader)
	}()

	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-readDone:
			return
		case <-hb.C:
			netc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if _, err := netc.Write(wsPingFrame); err != nil {
				return
			}
		case <-c.wake:
			buf := c.claim()
			if buf == nil {
				if c.isClosed() {
					return
				}
				continue
			}
			netc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			nw, err := netc.Write(buf)
			s.em.CoalescedWrites.Add(1)
			s.em.SentBytes.Add(int64(nw))
			if err != nil {
				return
			}
			if c.isClosed() {
				return
			}
		}
	}
}

package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hyperplane/internal/stats"
)

func mustT(t *testing.T, cfg Config) *T {
	t.Helper()
	tp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestGridStripedAdds(t *testing.T) {
	g := NewGrid(3, 4)
	g.Add(0, 1, 5)
	g.Add(3, 1, 7)
	g.Add(2, 0, 1)
	g.Add(9, 2, 2) // stripe wraps in range
	g.Add(0, -1, 9)
	g.Add(0, 3, 9) // out-of-range tenant ignored
	if got := g.Tenant(1); got != 12 {
		t.Errorf("Tenant(1) = %d, want 12", got)
	}
	if got := g.Total(); got != 15 {
		t.Errorf("Total = %d, want 15", got)
	}
	dst := make([]int64, 3)
	if got := g.SumInto(dst); got != 15 {
		t.Errorf("SumInto total = %d, want 15", got)
	}
	if dst[0] != 1 || dst[1] != 12 || dst[2] != 2 {
		t.Errorf("SumInto dst = %v", dst)
	}
}

func TestMetricsSnapshotDelta(t *testing.T) {
	m := NewMetrics(2, 2)
	m.Ingressed.Add(m.IngressStripe(), 0, 10)
	m.Processed.Add(0, 0, 4)
	m.Processed.Add(1, 0, 3)
	m.Errors.Add(1, 1, 2)
	m.Restarts.Add(1)
	s1 := m.Snapshot()
	if s1.Totals.Ingressed != 10 || s1.Totals.Processed != 7 || s1.Totals.Errors != 2 {
		t.Errorf("totals = %+v", s1.Totals)
	}
	if s1.PerTenant[0].Processed != 7 || s1.PerTenant[1].Errors != 2 {
		t.Errorf("per-tenant = %+v", s1.PerTenant)
	}
	if s1.Restarts != 1 {
		t.Errorf("restarts = %d", s1.Restarts)
	}
	m.Processed.Add(0, 0, 5)
	d := m.Snapshot().Delta(s1)
	if d.Totals.Processed != 5 || d.Totals.Ingressed != 0 {
		t.Errorf("delta totals = %+v", d.Totals)
	}
	if d.PerTenant[0].Processed != 5 {
		t.Errorf("delta per-tenant = %+v", d.PerTenant)
	}
}

func TestLatencyHistConcurrentRecord(t *testing.T) {
	spec, err := stats.NewBucketSpec(100, 1e9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := NewLatencyHist(spec, 4)
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(w, int64(1000+i)) // 1.0–1.01 microseconds
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, 4*perWorker)
	}
	p50 := s.Percentile(50)
	if p50 < 800 || p50 > 12000 {
		t.Errorf("p50 = %dns, want ~1000-11000ns", p50)
	}
	if s.MaxNs != 1000+perWorker-1 {
		t.Errorf("max = %d", s.MaxNs)
	}
	sum := s.Summary()
	if sum.P50 > sum.P99 || sum.P99 > sum.MaxNs {
		t.Errorf("percentiles not ordered: %+v", sum)
	}
}

func TestLatencyHistUnderAndNegative(t *testing.T) {
	spec, err := stats.NewBucketSpec(1000, 1e9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	h := NewLatencyHist(spec, 1)
	h.Record(0, -5) // clamps to 0 → under
	h.Record(0, 10) // under Min
	h.Record(0, 5000)
	s := h.Snapshot()
	if s.Count != 3 || s.Under != 2 {
		t.Fatalf("count=%d under=%d", s.Count, s.Under)
	}
	if p := s.Percentile(10); p != 500 { // Min/2 for under-range
		t.Errorf("under-range percentile = %d, want 500", p)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewTraceRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Append(i, i%2, i*3, int64(100+i), int64(i))
	}
	spans := r.Dump()
	if len(spans) != 4 {
		t.Fatalf("dump len = %d, want 4", len(spans))
	}
	// Oldest surviving span is ticket 7 (tenant 6).
	for i, sp := range spans {
		want := int32(6 + i)
		if sp.Tenant != want {
			t.Errorf("span[%d].Tenant = %d, want %d", i, sp.Tenant, want)
		}
		if sp.Latency != int64(sp.Tenant) {
			t.Errorf("span[%d] latency/tenant mismatch: %+v", i, sp)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Latency mirrors start so readers can check consistency.
				r.Append(w, w, i, int64(i), int64(i))
				i++
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, sp := range r.Dump() {
			if sp.Start != sp.Latency {
				t.Errorf("torn span leaked: %+v", sp)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceBinaryRoundTrip(t *testing.T) {
	r := NewTraceRing(8)
	r.Append(1, 2, 3, 1000, 50)
	r.Append(4, 5, 6, 2000, 75)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[:4]; string(got) != "HPT1" {
		t.Fatalf("magic = %q", got)
	}
	spans, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("len = %d", len(spans))
	}
	if spans[0] != (Span{Start: 1000, Latency: 50, Tenant: 1, Worker: 2, QID: 3}) {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if spans[1] != (Span{Start: 2000, Latency: 75, Tenant: 4, Worker: 5, QID: 6}) {
		t.Errorf("span[1] = %+v", spans[1])
	}
}

func TestRecordNotify(t *testing.T) {
	tp := mustT(t, Config{Tenants: 2, Workers: 2, SampleEvery: 1})
	tp.RecordNotify(0, 1, 7, 1000, 3000)
	tp.RecordNotify(1, 1, 7, 1000, 500) // negative latency clamps to 0
	s := tp.TenantLatency(1)
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if tp.Trace().Len() != 2 {
		t.Errorf("trace len = %d", tp.Trace().Len())
	}
	if got := tp.TenantLatency(5); got.Count != 0 {
		t.Errorf("out-of-range tenant snapshot: %+v", got)
	}
}

func TestNilTelemetryIsInert(t *testing.T) {
	var tp *T
	tp.RecordNotify(0, 0, 0, 1, 2)
	if tp.Trace() != nil {
		t.Error("nil T Trace() != nil")
	}
	if s := tp.TenantLatency(0); s.Count != 0 {
		t.Error("nil T latency non-zero")
	}
	tp.AttachMetrics(nil)
	tp.SetDebug(nil)
	tp.AttachCollector(nil)
	var r *TraceRing
	r.Append(0, 0, 0, 0, 0)
	if r.Dump() != nil || r.Len() != 0 {
		t.Error("nil ring not inert")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Tenants: 0}); err == nil {
		t.Error("Tenants=0 accepted")
	}
	if _, err := New(Config{Tenants: 1, SampleEvery: 3}); err == nil {
		t.Error("non-power-of-two SampleEvery accepted")
	}
	tp := mustT(t, Config{Tenants: 1})
	if tp.SampleEvery() != DefaultSampleEvery {
		t.Errorf("default SampleEvery = %d", tp.SampleEvery())
	}
	if tp.SampleMask() != DefaultSampleEvery-1 {
		t.Errorf("mask = %d", tp.SampleMask())
	}
	one := mustT(t, Config{Tenants: 1, SampleEvery: 1})
	if one.SampleMask() != 0 {
		t.Errorf("SampleEvery=1 mask = %d", one.SampleMask())
	}
}

func TestRecordNotifyZeroAlloc(t *testing.T) {
	tp := mustT(t, Config{Tenants: 2, Workers: 2, SampleEvery: 1})
	if n := testing.AllocsPerRun(1000, func() {
		tp.RecordNotify(0, 1, 3, 100, 200)
	}); n != 0 {
		t.Errorf("RecordNotify allocates %v per run, want 0", n)
	}
	var nilT *T
	if n := testing.AllocsPerRun(1000, func() {
		nilT.RecordNotify(0, 1, 3, 100, 200)
	}); n != 0 {
		t.Errorf("nil RecordNotify allocates %v per run, want 0", n)
	}
}

func TestHistRecordZeroAlloc(t *testing.T) {
	spec, _ := stats.NewBucketSpec(100, 1e9, 0.05)
	h := NewLatencyHist(spec, 2)
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(1, 12345)
	}); n != 0 {
		t.Errorf("Record allocates %v per run, want 0", n)
	}
}

func TestGridAddZeroAlloc(t *testing.T) {
	g := NewGrid(4, 4)
	if n := testing.AllocsPerRun(1000, func() {
		g.Add(2, 3, 1)
	}); n != 0 {
		t.Errorf("Grid.Add allocates %v per run, want 0", n)
	}
}

package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
)

// ClusterMetrics is the federation layer's counter set: per-node bridge
// traffic, peer liveness, handoff and re-homing activity. Like
// EdgeMetrics, every field is a plain atomic bumped lock-free on the
// bridge hot paths, and the export plane reads them through WriteProm
// (registered via T.AttachCollector) as hyperplane_cluster_* series.
// Per-peer gauges (state, outbox occupancy) are supplied live by the
// PeerGauges callback, since peer membership changes at runtime.
type ClusterMetrics struct {
	// Forward path (this node -> peers).
	Forwarded      atomic.Int64 // items handed to a peer bridge for delivery
	ForwardBatches atomic.Int64 // batch frames written to peers
	ForwardDropped atomic.Int64 // items dropped by a full forward buffer's policy
	ForwardBytes   atomic.Int64 // frame bytes written to peers

	// Receive path (peers -> this node).
	ReceivedBatches atomic.Int64 // batch frames accepted from peers
	ReceivedItems   atomic.Int64 // items fed into SharedIngress from peers
	ReceivedBytes   atomic.Int64 // frame payload bytes received
	RecvDeduped     atomic.Int64 // duplicate msg ids suppressed by the window
	RecvRejected    atomic.Int64 // received items refused by the local plane
	FrameErrors     atomic.Int64 // corrupt/oversized frames (connection dropped)

	// Membership and failure handling.
	Reconnects    atomic.Int64 // bridge dials after a connection loss
	ProbeFailures atomic.Int64 // health probes that timed out
	PeerDowns     atomic.Int64 // peers declared dead
	PeerUps       atomic.Int64 // peers (re-)admitted to the ring
	Rehomed       atomic.Int64 // tenants re-homed off dead nodes (as computed here)

	// Graceful handoff.
	Handoffs        atomic.Int64 // tenant handoffs completed by this node
	HandoffItems    atomic.Int64 // tail items forwarded during handoffs
	HandoffsInbound atomic.Int64 // ownership transfers accepted from peers

	// PeerGauges, when set, emits the live per-peer gauge series
	// (hyperplane_cluster_peer_up{peer=...},
	// hyperplane_cluster_outbox_frames{peer=...}); the node installs it.
	PeerGauges func(w io.Writer) `json:"-"`
}

// WriteProm emits the cluster series in Prometheus text format.
// Register with T.AttachCollector.
func (c *ClusterMetrics) WriteProm(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP hyperplane_cluster_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE hyperplane_cluster_%s counter\n", name)
		fmt.Fprintf(w, "hyperplane_cluster_%s %d\n", name, v)
	}
	counter("forwarded_total", "Items handed to a peer bridge for delivery.", c.Forwarded.Load())
	counter("forward_batches_total", "Batch frames written to peers.", c.ForwardBatches.Load())
	counter("forward_dropped_total", "Items dropped by a full forward buffer's policy.", c.ForwardDropped.Load())
	counter("forward_bytes_total", "Frame bytes written to peers.", c.ForwardBytes.Load())
	counter("received_batches_total", "Batch frames accepted from peers.", c.ReceivedBatches.Load())
	counter("received_items_total", "Items fed into shared ingress from peers.", c.ReceivedItems.Load())
	counter("received_bytes_total", "Frame payload bytes received from peers.", c.ReceivedBytes.Load())
	counter("recv_deduped_total", "Duplicate message ids suppressed on receive.", c.RecvDeduped.Load())
	counter("recv_rejected_total", "Received items refused by the local plane.", c.RecvRejected.Load())
	counter("frame_errors_total", "Corrupt or oversized frames (connection dropped).", c.FrameErrors.Load())
	counter("reconnects_total", "Bridge dials after a connection loss.", c.Reconnects.Load())
	counter("probe_failures_total", "Peer health probes that timed out.", c.ProbeFailures.Load())
	counter("peer_downs_total", "Peers declared dead by the health prober.", c.PeerDowns.Load())
	counter("peer_ups_total", "Peers (re-)admitted to the ring.", c.PeerUps.Load())
	counter("rehomed_tenants_total", "Tenants re-homed off dead nodes.", c.Rehomed.Load())
	counter("handoffs_total", "Tenant handoffs completed by this node.", c.Handoffs.Load())
	counter("handoff_items_total", "Tail items forwarded during handoffs.", c.HandoffItems.Load())
	counter("handoffs_inbound_total", "Ownership transfers accepted from peers.", c.HandoffsInbound.Load())
	if c.PeerGauges != nil {
		c.PeerGauges(w)
	}
}

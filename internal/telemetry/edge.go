package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
)

// EdgeMetrics is the network edge's counter set: ingest admission
// outcomes, batch-flush amortization, subscriber population, and the
// fan-out write path. All fields are plain atomics — the edge's HTTP
// handlers and subscriber writers bump them lock-free on hot paths —
// and the export plane reads them through WriteProm, registered via
// T.AttachCollector so they ride the same /metrics scrape as the
// dataplane series.
type EdgeMetrics struct {
	// Ingest admission outcomes.
	Accepted    atomic.Int64 // requests admitted into a staging batch
	RateLimited atomic.Int64 // requests refused by the token bucket (429)
	Deduped     atomic.Int64 // idempotency-key replays answered from the window
	Rejected    atomic.Int64 // requests refused by the plane (backpressure/stop)
	Forwarded   atomic.Int64 // requests routed to a remote owner by the Router

	// Batch-flush amortization: FlushedItems/Flushes is the realized
	// ingest batch size (the doorbell amortization factor).
	Flushes      atomic.Int64
	FlushedItems atomic.Int64
	SlabOverflow atomic.Int64 // payloads staged outside the slab pool

	// Subscriber population and fan-out.
	Connections     atomic.Int64 // current subscriber connections (gauge)
	Connects        atomic.Int64 // subscriber connections accepted
	Disconnects     atomic.Int64 // subscriber connections closed
	FanoutMsgs      atomic.Int64 // messages enqueued to subscriber rings
	CoalescedWrites atomic.Int64 // network writes (each flushing >=1 frame)
	SentBytes       atomic.Int64 // bytes written to subscribers
	SubDropped      atomic.Int64 // frames dropped by slow-subscriber policy
}

// WriteProm emits the edge series in Prometheus text format. Register
// with T.AttachCollector.
func (e *EdgeMetrics) WriteProm(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP hyperplane_edge_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE hyperplane_edge_%s counter\n", name)
		fmt.Fprintf(w, "hyperplane_edge_%s %d\n", name, v)
	}
	fmt.Fprintf(w, "# HELP hyperplane_edge_connections Current subscriber connections.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_edge_connections gauge\n")
	fmt.Fprintf(w, "hyperplane_edge_connections %d\n", e.Connections.Load())
	counter("accepted_total", "Ingest requests admitted into a staging batch.", e.Accepted.Load())
	counter("rate_limited_total", "Ingest requests refused by the token bucket.", e.RateLimited.Load())
	counter("deduped_total", "Idempotency-key replays answered from the dedup window.", e.Deduped.Load())
	counter("rejected_total", "Ingest requests refused by the plane.", e.Rejected.Load())
	counter("forwarded_total", "Ingest requests routed to a remote owner.", e.Forwarded.Load())
	counter("flushes_total", "Staging-batch flushes into SharedIngress.", e.Flushes.Load())
	counter("flushed_items_total", "Items flushed into SharedIngress.", e.FlushedItems.Load())
	counter("slab_overflow_total", "Payloads staged outside the slab pool.", e.SlabOverflow.Load())
	counter("connects_total", "Subscriber connections accepted.", e.Connects.Load())
	counter("disconnects_total", "Subscriber connections closed.", e.Disconnects.Load())
	counter("fanout_msgs_total", "Messages enqueued to subscriber rings.", e.FanoutMsgs.Load())
	counter("coalesced_writes_total", "Network writes, each flushing one or more coalesced frames.", e.CoalescedWrites.Load())
	counter("sent_bytes_total", "Bytes written to subscribers.", e.SentBytes.Load())
	counter("sub_dropped_total", "Frames dropped by the slow-subscriber policy.", e.SubDropped.Load())
}

// Package telemetry is the runtime observability plane for the HyperPlane
// runtime: per-tenant sharded counters, concurrent log-bucketed latency
// histograms, sampled notification-latency tracing, and an HTTP export
// surface (Prometheus /metrics, JSON /debug/tenants, a binary trace dump,
// and net/http/pprof).
//
// The paper's headline claims are measurements — 16.4x tail latency and
// work proportionality of IPC/power with load — so the runtime must be
// able to report doorbell-to-handler latency percentiles per tenant
// without perturbing the hot path it measures. The package is built
// around that constraint:
//
//   - Nothing on the record path takes a lock or allocates: counters are
//     striped atomics (one stripe per worker, merge-on-read), histograms
//     bucket with the same BucketSpec math as internal/stats into striped
//     atomic bucket arrays, and the trace ring publishes fixed-size spans
//     through per-slot seqlocks.
//   - Notification spans are sampled (default 1 in 64): the Notifier
//     stamps a timestamp on the sampled doorbell write and the dataplane
//     closes the span at handler dispatch, so the common path pays one
//     branch and the sampled path one time.Now plus one CAS.
//   - When telemetry is disabled (a nil *T everywhere), every hook
//     compiles down to a nil check: zero allocations, no atomics beyond
//     the counters the runtime already kept.
//
// Export is pull-based: /metrics and /debug/tenants merge the stripes at
// scrape time, so the record path never pays for aggregation.
package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hyperplane/internal/stats"
)

// Defaults for Config zero values.
const (
	DefaultSampleEvery = 64
	DefaultTraceCap    = 4096
	DefaultLatencyMin  = 100 * time.Nanosecond
	DefaultLatencyMax  = 10 * time.Second
	DefaultPrecision   = 0.05
)

// Config describes a telemetry plane.
type Config struct {
	// Tenants is the number of per-tenant latency series.
	Tenants int
	// Workers is the stripe count for histograms (one per recording
	// worker avoids false sharing). 0 defaults to 1.
	Workers int
	// SampleEvery samples 1 in N notifications for latency tracing; it
	// must be a power of two. 0 defaults to DefaultSampleEvery (64);
	// 1 traces every notification.
	SampleEvery int
	// TraceCap is the trace ring capacity (rounded up to a power of two).
	// 0 defaults to DefaultTraceCap.
	TraceCap int
	// LatencyMin/LatencyMax bound the latency histograms; observations
	// below Min land in the under-range bucket, above Max in the last
	// bucket. Zero values default to 100ns and 10s.
	LatencyMin, LatencyMax time.Duration
	// LatencyPrecision is the histogram bucket growth (relative error);
	// 0 defaults to 0.05.
	LatencyPrecision float64
}

// T is a telemetry plane: the sink for sampled notification spans and the
// registry the export endpoints read from. All record-path methods are
// safe for concurrent use and lock-free; a nil *T is inert (Record*
// methods no-op) so callers gate with a single nil check.
type T struct {
	tenants     int
	stripes     int
	sampleEvery int
	sampleMask  uint64
	spec        stats.BucketSpec

	hists []*LatencyHist // per tenant, doorbell-to-dispatch latency
	trace *TraceRing

	mu         sync.Mutex
	metrics    *Metrics
	debug      func() any
	collectors []func(io.Writer)
	started    time.Time
}

// New builds a telemetry plane.
func New(cfg Config) (*T, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("telemetry: Tenants must be positive, got %d", cfg.Tenants)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("telemetry: Workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.SampleEvery < 1 || cfg.SampleEvery&(cfg.SampleEvery-1) != 0 {
		return nil, fmt.Errorf("telemetry: SampleEvery must be a power of two, got %d", cfg.SampleEvery)
	}
	if cfg.TraceCap == 0 {
		cfg.TraceCap = DefaultTraceCap
	}
	if cfg.TraceCap < 1 {
		return nil, fmt.Errorf("telemetry: TraceCap must be positive, got %d", cfg.TraceCap)
	}
	if cfg.LatencyMin <= 0 {
		cfg.LatencyMin = DefaultLatencyMin
	}
	if cfg.LatencyMax <= cfg.LatencyMin {
		cfg.LatencyMax = DefaultLatencyMax
	}
	if cfg.LatencyPrecision == 0 {
		cfg.LatencyPrecision = DefaultPrecision
	}
	spec, err := stats.NewBucketSpec(
		float64(cfg.LatencyMin.Nanoseconds()),
		float64(cfg.LatencyMax.Nanoseconds()),
		cfg.LatencyPrecision,
	)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	t := &T{
		tenants:     cfg.Tenants,
		stripes:     cfg.Workers,
		sampleEvery: cfg.SampleEvery,
		sampleMask:  uint64(cfg.SampleEvery - 1),
		spec:        spec,
		trace:       NewTraceRing(cfg.TraceCap),
		started:     time.Now(),
	}
	t.hists = make([]*LatencyHist, cfg.Tenants)
	for i := range t.hists {
		t.hists[i] = NewLatencyHist(spec, cfg.Workers)
	}
	return t, nil
}

// Tenants returns the configured tenant-series count.
func (t *T) Tenants() int { return t.tenants }

// SampleEvery returns the sampling period (1 = every notification).
func (t *T) SampleEvery() int { return t.sampleEvery }

// SampleMask returns sampleEvery-1: producers stamp when their running
// notification counter ANDed with the mask is zero, so the sampling
// decision costs one AND on a counter the hot path already maintains.
func (t *T) SampleMask() uint64 { return t.sampleMask }

// RecordNotify closes one sampled notification span: start and end are
// UnixNano stamps taken at doorbell/Notify time and at handler dispatch.
// The latency lands in the tenant's histogram (striped by worker) and the
// span in the trace ring. Lock- and allocation-free; safe on a nil *T.
func (t *T) RecordNotify(worker, tenant, qid int, start, end int64) {
	if t == nil {
		return
	}
	lat := end - start
	if lat < 0 {
		lat = 0
	}
	if tenant >= 0 && tenant < t.tenants {
		t.hists[tenant].Record(worker, lat)
	}
	t.trace.Append(tenant, worker, qid, start, lat)
}

// TenantLatency snapshots the tenant's doorbell-to-dispatch latency
// histogram (zero snapshot for out-of-range tenants or a nil *T).
func (t *T) TenantLatency(tenant int) HistSnapshot {
	if t == nil || tenant < 0 || tenant >= t.tenants {
		return HistSnapshot{}
	}
	return t.hists[tenant].Snapshot()
}

// Trace returns the span ring (nil on a nil *T).
func (t *T) Trace() *TraceRing {
	if t == nil {
		return nil
	}
	return t.trace
}

// AttachMetrics registers a counter set for /metrics export. The runtime
// that owns the counters keeps writing them; the export plane reads.
func (t *T) AttachMetrics(m *Metrics) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.metrics = m
	t.mu.Unlock()
}

// Metrics returns the attached counter set (nil when none).
func (t *T) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.metrics
}

// SetDebug registers the /debug/tenants payload source; the function is
// called per scrape and its result JSON-encoded. dataplane.Plane installs
// a DebugSnapshot builder here.
func (t *T) SetDebug(fn func() any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.debug = fn
	t.mu.Unlock()
}

// AttachCollector registers an extra /metrics section: fn is called per
// scrape and writes Prometheus text-format lines. The runtime uses it for
// series whose state it owns (notifier bank counters, ring occupancy).
func (t *T) AttachCollector(fn func(io.Writer)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.collectors = append(t.collectors, fn)
	t.mu.Unlock()
}

// snapshotSources copies the registered export sources under the lock.
func (t *T) snapshotSources() (m *Metrics, debug func() any, collectors []func(io.Writer)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs := make([]func(io.Writer), len(t.collectors))
	copy(cs, t.collectors)
	return t.metrics, t.debug, cs
}

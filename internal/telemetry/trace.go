package telemetry

import (
	"encoding/binary"
	"io"
	"sync/atomic"
)

// Span is one sampled notification: stamped at doorbell/Notify time,
// closed at handler dispatch.
type Span struct {
	Start   int64 // UnixNano at Notify
	Latency int64 // dispatch - notify, nanoseconds
	Tenant  int32
	Worker  int32
	QID     int32
}

// TraceRing is a fixed-size lock-free ring of sampled spans. Writers
// claim a monotonically increasing ticket and publish into slot
// ticket&mask through a per-slot seqlock: the slot's seq is zeroed,
// fields stored, then seq set to the ticket. Readers validate seq ==
// expected ticket before and after loading the fields and skip torn
// slots. Every field is individually atomic so the race detector sees
// no unsynchronized access; the seqlock supplies the logical
// consistency the detector cannot check.
type TraceRing struct {
	mask  uint64
	next  atomic.Uint64 // tickets issued (1-based; slot = (ticket-1)&mask)
	slots []traceSlot
}

type traceSlot struct {
	seq     atomic.Uint64 // 0 = being written; else the publishing ticket
	start   atomic.Int64
	latency atomic.Int64
	tenant  atomic.Int32
	worker  atomic.Int32
	qid     atomic.Int32
}

// NewTraceRing builds a ring holding the last capacity spans (rounded up
// to a power of two, minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{mask: uint64(n - 1), slots: make([]traceSlot, n)}
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.slots) }

// Len returns the number of spans currently available (≤ Cap).
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Append publishes one span. Lock- and allocation-free; safe on a nil
// ring (no-op).
func (r *TraceRing) Append(tenant, worker, qid int, start, latency int64) {
	if r == nil {
		return
	}
	ticket := r.next.Add(1)
	s := &r.slots[(ticket-1)&r.mask]
	s.seq.Store(0)
	s.start.Store(start)
	s.latency.Store(latency)
	s.tenant.Store(int32(tenant))
	s.worker.Store(int32(worker))
	s.qid.Store(int32(qid))
	s.seq.Store(ticket)
}

// Dump copies the currently readable spans, oldest first, skipping slots
// a concurrent writer tore mid-read.
func (r *TraceRing) Dump() []Span {
	if r == nil {
		return nil
	}
	end := r.next.Load()
	span := uint64(len(r.slots))
	begin := uint64(1)
	if end > span {
		begin = end - span + 1
	}
	out := make([]Span, 0, end-begin+1)
	for t := begin; t <= end; t++ {
		s := &r.slots[(t-1)&r.mask]
		if s.seq.Load() != t {
			continue // overwritten or mid-write
		}
		sp := Span{
			Start:   s.start.Load(),
			Latency: s.latency.Load(),
			Tenant:  s.tenant.Load(),
			Worker:  s.worker.Load(),
			QID:     s.qid.Load(),
		}
		if s.seq.Load() != t {
			continue // torn while we read
		}
		out = append(out, sp)
	}
	return out
}

// Trace dump binary framing: magic, version, record count, then
// fixed-width little-endian records.
const (
	traceMagic   = "HPT1"
	traceVersion = uint32(1)
	traceRecSize = 28 // 8+8+4+4+4 bytes per span
)

// WriteTo dumps the ring in the binary trace format:
//
//	[4]byte  magic "HPT1"
//	uint32   version (1)
//	uint32   record count
//	records: int64 start, int64 latency, int32 tenant, int32 worker,
//	         int32 qid — all little-endian.
func (r *TraceRing) WriteTo(w io.Writer) (int64, error) {
	spans := r.Dump()
	hdr := make([]byte, 12)
	copy(hdr, traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(spans)))
	var written int64
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	rec := make([]byte, traceRecSize)
	for _, sp := range spans {
		binary.LittleEndian.PutUint64(rec[0:], uint64(sp.Start))
		binary.LittleEndian.PutUint64(rec[8:], uint64(sp.Latency))
		binary.LittleEndian.PutUint32(rec[16:], uint32(sp.Tenant))
		binary.LittleEndian.PutUint32(rec[20:], uint32(sp.Worker))
		binary.LittleEndian.PutUint32(rec[24:], uint32(sp.QID))
		n, err = w.Write(rec)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadTrace parses a binary trace dump (the inverse of WriteTo), for
// offline analysis tooling and tests.
func ReadTrace(rd io.Reader) ([]Span, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != traceMagic {
		return nil, io.ErrUnexpectedEOF
	}
	count := binary.LittleEndian.Uint32(hdr[8:])
	out := make([]Span, 0, count)
	rec := make([]byte, traceRecSize)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(rd, rec); err != nil {
			return nil, err
		}
		out = append(out, Span{
			Start:   int64(binary.LittleEndian.Uint64(rec[0:])),
			Latency: int64(binary.LittleEndian.Uint64(rec[8:])),
			Tenant:  int32(binary.LittleEndian.Uint32(rec[16:])),
			Worker:  int32(binary.LittleEndian.Uint32(rec[20:])),
			QID:     int32(binary.LittleEndian.Uint32(rec[24:])),
		})
	}
	return out, nil
}

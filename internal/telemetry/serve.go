package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugSnapshot is the /debug/tenants payload the dataplane installs via
// SetDebug: per-tenant runtime state (quarantine, backlog, counters,
// latency) plus per-worker arbitration internals (bank occupancy,
// park/wake counters, policy state via policy.Inspect).
type DebugSnapshot struct {
	// Mode is the plane's operating point rendered for humans: the
	// notification mode plus, when the governor runs, its mode and the
	// live wait strategy (e.g. "notify/balanced/hybrid(4096)").
	Mode     string         `json:"mode,omitempty"`
	Tenants  []TenantDebug  `json:"tenants"`
	Workers  []WorkerDebug  `json:"workers,omitempty"`
	Governor *GovernorDebug `json:"governor,omitempty"`
}

// GovernorDebug is the elastic control plane's live state: the operating
// mode, the active worker set, and the most recent autotune decisions.
type GovernorDebug struct {
	Mode          string  `json:"mode"`           // balanced | low-latency | efficient
	Wait          string  `json:"wait"`           // live wait strategy, e.g. "hybrid(4096)"
	ActiveWorkers int     `json:"active_workers"` // workers currently un-halted
	Workers       int     `json:"workers"`        // configured ceiling
	MaxBatch      int     `json:"max_batch"`      // tuned per-dispatch batch cap
	Alpha         float64 `json:"alpha"`          // tuned EWMA smoothing factor
	Transitions   int64   `json:"transitions"`    // active-set changes so far
	Reason        string  `json:"reason"`         // last transition's trigger
}

// TenantDebug is one tenant's runtime view. DLQDepth/AckedSeq/DurableSeq
// are populated only on durable planes.
type TenantDebug struct {
	Tenant     int            `json:"tenant"`
	State      string         `json:"state"` // healthy | quarantined | probing
	Backlog    int            `json:"backlog"`
	OutBacklog int            `json:"out_backlog"`
	DLQDepth   int            `json:"dlq_depth,omitempty"`
	AckedSeq   uint64         `json:"acked_seq,omitempty"`
	DurableSeq uint64         `json:"durable_seq,omitempty"`
	Counts     TenantCounts   `json:"counts"`
	Latency    LatencySummary `json:"latency"`
}

// WorkerDebug is one worker's notifier internals. ParkSeconds is the
// worker's cumulative C1-analog residency: time spent parked on its
// notifier stripe plus time halted by the governor.
type WorkerDebug struct {
	Worker      int         `json:"worker"`
	Active      bool        `json:"active"`
	ParkSeconds float64     `json:"park_seconds"`
	Banks       []BankDebug `json:"banks"`
}

// BankDebug is one notifier bank's occupancy, activity counters, and
// arbitration state.
type BankDebug struct {
	Bank        int         `json:"bank"`
	Ready       int         `json:"ready"`
	Selects     int64       `json:"selects"`
	Activations int64       `json:"activations"`
	Steals      int64       `json:"steals,omitempty"`
	Parks       int64       `json:"parks"`
	Wakes       int64       `json:"wakes"`
	BlockedNs   int64       `json:"blocked_ns,omitempty"`
	Policy      PolicyDebug `json:"policy"`
}

// PolicyDebug mirrors policy.Inspection with plain JSON-friendly fields
// (telemetry does not import internal/policy; the runtime converts).
type PolicyDebug struct {
	Kind    string    `json:"kind"`
	Rotor   int       `json:"rotor"`
	Counter int       `json:"counter,omitempty"`
	Weights []int     `json:"weights,omitempty"`
	Deficit []int64   `json:"deficit,omitempty"`
	Score   []float64 `json:"score,omitempty"`
	Round   int64     `json:"round,omitempty"`
	QIDs    []int     `json:"qids,omitempty"` // global QID per local vector index
}

// Handler returns the export mux: /metrics (Prometheus text format),
// /debug/tenants (JSON), /debug/trace (binary span dump), and
// /debug/pprof/*.
func (t *T) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/debug/tenants", t.serveTenants)
	mux.HandleFunc("/debug/trace", t.serveTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "hyperplane telemetry\n\n/metrics\n/debug/tenants\n/debug/trace\n/debug/pprof/\n")
	})
	return mux
}

func (t *T) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	t.WriteMetrics(w)
}

// WriteMetrics writes the full Prometheus text-format exposition: the
// per-tenant latency summaries, the attached counter set, uptime, and
// every registered collector section.
func (t *T) WriteMetrics(w io.Writer) {
	metrics, _, collectors := t.snapshotSources()

	fmt.Fprintf(w, "# HELP hyperplane_uptime_seconds Seconds since the telemetry plane started.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_uptime_seconds gauge\n")
	fmt.Fprintf(w, "hyperplane_uptime_seconds %g\n", time.Since(t.started).Seconds())

	fmt.Fprintf(w, "# HELP hyperplane_notify_latency_seconds Sampled doorbell-to-dispatch notification latency.\n")
	fmt.Fprintf(w, "# TYPE hyperplane_notify_latency_seconds summary\n")
	for tenant := 0; tenant < t.tenants; tenant++ {
		sum := t.TenantLatency(tenant).Summary()
		fmt.Fprintf(w, "hyperplane_notify_latency_seconds{tenant=\"%d\",quantile=\"0.5\"} %g\n", tenant, secs(sum.P50))
		fmt.Fprintf(w, "hyperplane_notify_latency_seconds{tenant=\"%d\",quantile=\"0.99\"} %g\n", tenant, secs(sum.P99))
		fmt.Fprintf(w, "hyperplane_notify_latency_seconds{tenant=\"%d\",quantile=\"0.999\"} %g\n", tenant, secs(sum.P999))
		fmt.Fprintf(w, "hyperplane_notify_latency_seconds_sum{tenant=\"%d\"} %g\n", tenant, secs(sum.SumNs))
		fmt.Fprintf(w, "hyperplane_notify_latency_seconds_count{tenant=\"%d\"} %d\n", tenant, sum.Count)
	}

	if metrics != nil {
		snap := metrics.Snapshot()
		counter := func(name, help string, get func(TenantCounts) int64) {
			fmt.Fprintf(w, "# HELP hyperplane_%s_total %s\n", name, help)
			fmt.Fprintf(w, "# TYPE hyperplane_%s_total counter\n", name)
			for tenant, c := range snap.PerTenant {
				fmt.Fprintf(w, "hyperplane_%s_total{tenant=\"%d\"} %d\n", name, tenant, get(c))
			}
		}
		counter("ingressed", "Items accepted into device rings.", func(c TenantCounts) int64 { return c.Ingressed })
		counter("processed", "Items consumed by handlers.", func(c TenantCounts) int64 { return c.Processed })
		counter("delivered", "Results delivered to output rings.", func(c TenantCounts) int64 { return c.Delivered })
		counter("handler_errors", "Handler invocations that returned an error.", func(c TenantCounts) int64 { return c.Errors })
		counter("handler_panics", "Handler invocations that panicked.", func(c TenantCounts) int64 { return c.Panics })
		counter("dropped", "Items dropped by the fault policy.", func(c TenantCounts) int64 { return c.Dropped })
		counter("replayed", "WAL records replayed through ingress after recovery.", func(c TenantCounts) int64 { return c.Replayed })
		counter("deduped", "Duplicate message ids rejected by the dedup window.", func(c TenantCounts) int64 { return c.Deduped })
		counter("dead_lettered", "Items captured by the dead-letter queue.", func(c TenantCounts) int64 { return c.DeadLettered })
		fmt.Fprintf(w, "# HELP hyperplane_worker_restarts_total Worker goroutines restarted by the supervisor.\n")
		fmt.Fprintf(w, "# TYPE hyperplane_worker_restarts_total counter\n")
		fmt.Fprintf(w, "hyperplane_worker_restarts_total %d\n", snap.Restarts)
	}

	for _, fn := range collectors {
		fn(w)
	}
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

func (t *T) serveTenants(w http.ResponseWriter, _ *http.Request) {
	_, debug, _ := t.snapshotSources()
	var payload any
	if debug != nil {
		payload = debug()
	} else {
		// No runtime installed a debug source: fall back to the
		// latency-only view telemetry can build on its own.
		snap := DebugSnapshot{Tenants: make([]TenantDebug, t.tenants)}
		for i := range snap.Tenants {
			snap.Tenants[i] = TenantDebug{
				Tenant:  i,
				Latency: t.TenantLatency(i).Summary(),
			}
		}
		payload = snap
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (t *T) serveTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=hyperplane.trace")
	_, _ = t.trace.WriteTo(w)
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the export endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and returns once the listener is bound.
func Serve(addr string, t *T) (*Server, error) {
	if t == nil {
		return nil, fmt.Errorf("telemetry: Serve requires a non-nil telemetry plane")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: t.Handler()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

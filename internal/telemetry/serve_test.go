package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestPlane(t *testing.T) *T {
	t.Helper()
	tp := mustT(t, Config{Tenants: 2, Workers: 2, SampleEvery: 1})
	m := NewMetrics(2, 2)
	m.Ingressed.Add(m.IngressStripe(), 0, 100)
	m.Processed.Add(0, 0, 90)
	m.Dropped.Add(1, 1, 3)
	m.Restarts.Add(2)
	tp.AttachMetrics(m)
	for i := 0; i < 100; i++ {
		tp.RecordNotify(0, 0, 0, int64(i), int64(i+1000+i*10))
	}
	return tp
}

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeMetrics(t *testing.T) {
	tp := newTestPlane(t)
	srv := httptest.NewServer(tp.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	text := string(body)
	wants := []string{
		`hyperplane_notify_latency_seconds{tenant="0",quantile="0.5"}`,
		`hyperplane_notify_latency_seconds{tenant="0",quantile="0.99"}`,
		`hyperplane_notify_latency_seconds{tenant="1",quantile="0.999"}`,
		`hyperplane_notify_latency_seconds_count{tenant="0"} 100`,
		`hyperplane_ingressed_total{tenant="0"} 100`,
		`hyperplane_processed_total{tenant="0"} 90`,
		`hyperplane_dropped_total{tenant="1"} 3`,
		`hyperplane_worker_restarts_total 2`,
		`hyperplane_uptime_seconds`,
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServeMetricsCollector(t *testing.T) {
	tp := newTestPlane(t)
	tp.AttachCollector(func(w io.Writer) {
		fmt.Fprintf(w, "hyperplane_bank_ready{bank=\"0\"} 7\n")
	})
	srv := httptest.NewServer(tp.Handler())
	defer srv.Close()
	_, body := get(t, srv, "/metrics")
	if !strings.Contains(string(body), `hyperplane_bank_ready{bank="0"} 7`) {
		t.Error("collector output missing from /metrics")
	}
}

func TestServeTenantsFallback(t *testing.T) {
	tp := newTestPlane(t)
	srv := httptest.NewServer(tp.Handler())
	defer srv.Close()
	code, body := get(t, srv, "/debug/tenants")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var snap DebugSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(snap.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(snap.Tenants))
	}
	if snap.Tenants[0].Latency.Count != 100 {
		t.Errorf("tenant 0 latency count = %d", snap.Tenants[0].Latency.Count)
	}
}

func TestServeTenantsCustomDebug(t *testing.T) {
	tp := newTestPlane(t)
	tp.SetDebug(func() any {
		return DebugSnapshot{Tenants: []TenantDebug{{Tenant: 0, State: "quarantined", Backlog: 42}}}
	})
	srv := httptest.NewServer(tp.Handler())
	defer srv.Close()
	_, body := get(t, srv, "/debug/tenants")
	var snap DebugSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Tenants[0].State != "quarantined" || snap.Tenants[0].Backlog != 42 {
		t.Errorf("debug payload = %+v", snap.Tenants[0])
	}
}

func TestServeTraceDump(t *testing.T) {
	tp := newTestPlane(t)
	srv := httptest.NewServer(tp.Handler())
	defer srv.Close()
	code, body := get(t, srv, "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	spans, err := ReadTrace(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 100 {
		t.Errorf("trace spans = %d, want 100", len(spans))
	}
}

func TestServePprofIndex(t *testing.T) {
	tp := newTestPlane(t)
	srv := httptest.NewServer(tp.Handler())
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index missing profiles")
	}
}

func TestServeListener(t *testing.T) {
	tp := newTestPlane(t)
	s, err := Serve("127.0.0.1:0", tp)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Error("Serve(nil) accepted")
	}
}

package telemetry

import "sync/atomic"

// Grid is a stripes x tenants matrix of counters: each writer increments
// in its own stripe row (no cross-worker cache-line contention), readers
// merge rows at snapshot time. The record path is one atomic add; there
// is no lock anywhere.
type Grid struct {
	tenants int
	rows    [][]atomic.Int64 // [stripe][tenant]
}

// NewGrid builds a tenants x stripes counter grid.
func NewGrid(tenants, stripes int) *Grid {
	if tenants < 1 {
		tenants = 1
	}
	if stripes < 1 {
		stripes = 1
	}
	g := &Grid{tenants: tenants, rows: make([][]atomic.Int64, stripes)}
	for s := range g.rows {
		g.rows[s] = make([]atomic.Int64, tenants)
	}
	return g
}

// Add adds delta to the tenant's counter in the given stripe (clamped
// into range, so a worker id can be passed straight through).
func (g *Grid) Add(stripe, tenant int, delta int64) {
	if tenant < 0 || tenant >= g.tenants {
		return
	}
	if stripe < 0 {
		stripe = 0
	}
	g.rows[stripe%len(g.rows)][tenant].Add(delta)
}

// Tenant returns the merged count for one tenant.
func (g *Grid) Tenant(tenant int) int64 {
	if tenant < 0 || tenant >= g.tenants {
		return 0
	}
	var sum int64
	for s := range g.rows {
		sum += g.rows[s][tenant].Load()
	}
	return sum
}

// Total returns the merged count across all tenants.
func (g *Grid) Total() int64 {
	var sum int64
	for s := range g.rows {
		row := g.rows[s]
		for t := range row {
			sum += row[t].Load()
		}
	}
	return sum
}

// SumInto adds each tenant's merged count into dst[tenant] and returns
// the grand total (dst may be nil for total-only reads).
func (g *Grid) SumInto(dst []int64) int64 {
	var sum int64
	for s := range g.rows {
		row := g.rows[s]
		for t := range row {
			v := row[t].Load()
			sum += v
			if t < len(dst) {
				dst[t] += v
			}
		}
	}
	return sum
}

// TenantCounts is one tenant's (or the whole plane's) counter snapshot.
// Replayed/Deduped/DeadLettered are zero unless the plane runs the
// durable tier.
type TenantCounts struct {
	Ingressed    int64 `json:"ingressed"`
	Processed    int64 `json:"processed"`
	Delivered    int64 `json:"delivered"`
	Errors       int64 `json:"errors"`
	Panics       int64 `json:"panics"`
	Dropped      int64 `json:"dropped"`
	Replayed     int64 `json:"replayed,omitempty"`
	Deduped      int64 `json:"deduped,omitempty"`
	DeadLettered int64 `json:"dead_lettered,omitempty"`
}

func (c TenantCounts) sub(o TenantCounts) TenantCounts {
	return TenantCounts{
		Ingressed:    c.Ingressed - o.Ingressed,
		Processed:    c.Processed - o.Processed,
		Delivered:    c.Delivered - o.Delivered,
		Errors:       c.Errors - o.Errors,
		Panics:       c.Panics - o.Panics,
		Dropped:      c.Dropped - o.Dropped,
		Replayed:     c.Replayed - o.Replayed,
		Deduped:      c.Deduped - o.Deduped,
		DeadLettered: c.DeadLettered - o.DeadLettered,
	}
}

// Metrics is the dataplane's counter set: one Grid per series, striped by
// worker (plus one extra stripe for the ingress side, which runs on
// arbitrary producer goroutines). It replaces the plane's former global
// atomics — per-tenant resolution for the export plane, and the global
// Stats() totals become merge-on-read sums.
type Metrics struct {
	tenants int
	ingress int // the ingress-side stripe index

	Ingressed *Grid
	Processed *Grid
	Delivered *Grid
	Errors    *Grid
	Panics    *Grid
	Dropped   *Grid
	// Durable-tier series (stay zero on in-memory planes): WAL records
	// replayed through ingress after recovery, duplicate message ids
	// rejected by the dedup window, and items captured by the DLQ.
	Replayed     *Grid
	Deduped      *Grid
	DeadLettered *Grid
	Restarts     atomic.Int64 // per-plane (supervisor), not per-tenant
}

// NewMetrics builds the counter set for tenants served by workers worker
// goroutines (stripe w belongs to worker w; stripe IngressStripe() to
// producers).
func NewMetrics(tenants, workers int) *Metrics {
	if workers < 1 {
		workers = 1
	}
	stripes := workers + 1
	return &Metrics{
		tenants:      tenants,
		ingress:      workers,
		Ingressed:    NewGrid(tenants, stripes),
		Processed:    NewGrid(tenants, stripes),
		Delivered:    NewGrid(tenants, stripes),
		Errors:       NewGrid(tenants, stripes),
		Panics:       NewGrid(tenants, stripes),
		Dropped:      NewGrid(tenants, stripes),
		Replayed:     NewGrid(tenants, stripes),
		Deduped:      NewGrid(tenants, stripes),
		DeadLettered: NewGrid(tenants, stripes),
	}
}

// Tenants returns the tenant count.
func (m *Metrics) Tenants() int { return m.tenants }

// IngressStripe is the stripe index producer-side increments use.
func (m *Metrics) IngressStripe() int { return m.ingress }

// TenantCounts merges one tenant's counters.
func (m *Metrics) TenantCounts(tenant int) TenantCounts {
	return TenantCounts{
		Ingressed:    m.Ingressed.Tenant(tenant),
		Processed:    m.Processed.Tenant(tenant),
		Delivered:    m.Delivered.Tenant(tenant),
		Errors:       m.Errors.Tenant(tenant),
		Panics:       m.Panics.Tenant(tenant),
		Dropped:      m.Dropped.Tenant(tenant),
		Replayed:     m.Replayed.Tenant(tenant),
		Deduped:      m.Deduped.Tenant(tenant),
		DeadLettered: m.DeadLettered.Tenant(tenant),
	}
}

// MetricsSnapshot is a merge-on-read snapshot of a Metrics set.
type MetricsSnapshot struct {
	Totals    TenantCounts   `json:"totals"`
	Restarts  int64          `json:"restarts"`
	PerTenant []TenantCounts `json:"per_tenant"`
}

// Snapshot merges every stripe into per-tenant and total counts.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		PerTenant: make([]TenantCounts, m.tenants),
		Restarts:  m.Restarts.Load(),
	}
	ing := make([]int64, m.tenants)
	s.Totals.Ingressed = m.Ingressed.SumInto(ing)
	pro := make([]int64, m.tenants)
	s.Totals.Processed = m.Processed.SumInto(pro)
	del := make([]int64, m.tenants)
	s.Totals.Delivered = m.Delivered.SumInto(del)
	errs := make([]int64, m.tenants)
	s.Totals.Errors = m.Errors.SumInto(errs)
	pan := make([]int64, m.tenants)
	s.Totals.Panics = m.Panics.SumInto(pan)
	drp := make([]int64, m.tenants)
	s.Totals.Dropped = m.Dropped.SumInto(drp)
	rep := make([]int64, m.tenants)
	s.Totals.Replayed = m.Replayed.SumInto(rep)
	ddp := make([]int64, m.tenants)
	s.Totals.Deduped = m.Deduped.SumInto(ddp)
	dlq := make([]int64, m.tenants)
	s.Totals.DeadLettered = m.DeadLettered.SumInto(dlq)
	for t := 0; t < m.tenants; t++ {
		s.PerTenant[t] = TenantCounts{
			Ingressed: ing[t], Processed: pro[t], Delivered: del[t],
			Errors: errs[t], Panics: pan[t], Dropped: drp[t],
			Replayed: rep[t], Deduped: ddp[t], DeadLettered: dlq[t],
		}
	}
	return s
}

// Delta returns s - prev (per tenant and total), for rate computation
// between two scrapes.
func (s MetricsSnapshot) Delta(prev MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Totals:    s.Totals.sub(prev.Totals),
		Restarts:  s.Restarts - prev.Restarts,
		PerTenant: make([]TenantCounts, len(s.PerTenant)),
	}
	for i := range s.PerTenant {
		var p TenantCounts
		if i < len(prev.PerTenant) {
			p = prev.PerTenant[i]
		}
		out.PerTenant[i] = s.PerTenant[i].sub(p)
	}
	return out
}

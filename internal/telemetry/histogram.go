package telemetry

import (
	"sync/atomic"

	"hyperplane/internal/stats"
)

// LatencyHist is a concurrent log-bucketed latency histogram. It reuses
// the bucket math of internal/stats.BucketSpec but replaces the plain
// int64 bucket array with per-stripe atomic arrays: each recording
// worker increments only its own stripe, so the record path is a handful
// of uncontended atomic adds with no lock. Readers merge the stripes
// into a HistSnapshot.
type LatencyHist struct {
	spec    stats.BucketSpec
	stripes []*histStripe // separate allocations keep stripes on separate cache lines
}

type histStripe struct {
	count   atomic.Int64
	under   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets []atomic.Int64
}

// NewLatencyHist builds a histogram with the given bucket spec and one
// stripe per recording worker (minimum 1).
func NewLatencyHist(spec stats.BucketSpec, stripes int) *LatencyHist {
	if stripes < 1 {
		stripes = 1
	}
	h := &LatencyHist{spec: spec, stripes: make([]*histStripe, stripes)}
	for i := range h.stripes {
		h.stripes[i] = &histStripe{buckets: make([]atomic.Int64, spec.Buckets())}
	}
	return h
}

// Spec returns the bucket spec.
func (h *LatencyHist) Spec() stats.BucketSpec { return h.spec }

// Record adds one latency observation (nanoseconds) in the caller's
// stripe. Negative values clamp to zero. Lock- and allocation-free.
func (h *LatencyHist) Record(stripe int, ns int64) {
	if stripe < 0 {
		stripe = 0
	}
	st := h.stripes[stripe%len(h.stripes)]
	if ns < 0 {
		ns = 0
	}
	st.count.Add(1)
	st.sum.Add(ns)
	for {
		old := st.max.Load()
		if ns <= old || st.max.CompareAndSwap(old, ns) {
			break
		}
	}
	x := float64(ns)
	if x < h.spec.Min {
		st.under.Add(1)
		return
	}
	st.buckets[h.spec.Index(x)].Add(1)
}

// Snapshot merges all stripes into a consistent-enough point-in-time
// view. Individual loads are atomic; the merge is not a global snapshot
// (counts recorded mid-merge may or may not appear), which is fine for
// monitoring.
func (h *LatencyHist) Snapshot() HistSnapshot {
	s := HistSnapshot{spec: h.spec, Buckets: make([]int64, h.spec.Buckets())}
	for _, st := range h.stripes {
		s.Count += st.count.Load()
		s.Under += st.under.Load()
		s.SumNs += st.sum.Load()
		if m := st.max.Load(); m > s.MaxNs {
			s.MaxNs = m
		}
		for i := range s.Buckets {
			s.Buckets[i] += st.buckets[i].Load()
		}
	}
	return s
}

// HistSnapshot is a merged, immutable view of a LatencyHist.
type HistSnapshot struct {
	Buckets []int64 `json:"-"`
	Count   int64   `json:"count"`
	Under   int64   `json:"under"`
	SumNs   int64   `json:"sum_ns"`
	MaxNs   int64   `json:"max_ns"`

	spec stats.BucketSpec
}

// Spec returns the snapshot's bucket spec.
func (s HistSnapshot) Spec() stats.BucketSpec { return s.spec }

// Percentile returns the approximate p-th percentile latency in
// nanoseconds (p in [0,100]). Under-range observations resolve to
// Min/2; empty snapshots to 0.
func (s HistSnapshot) Percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(p / 100 * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	if rank < s.Under {
		return int64(s.spec.Min / 2)
	}
	cum := s.Under
	for i, c := range s.Buckets {
		cum += c
		if rank < cum {
			mid := int64(s.spec.Mid(i))
			if mid > s.MaxNs && s.MaxNs > 0 {
				return s.MaxNs
			}
			return mid
		}
	}
	return s.MaxNs
}

// Delta returns s - prev, for per-interval latency distributions.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		spec:    s.spec,
		Buckets: make([]int64, len(s.Buckets)),
		Count:   s.Count - prev.Count,
		Under:   s.Under - prev.Under,
		SumNs:   s.SumNs - prev.SumNs,
		MaxNs:   s.MaxNs, // max is cumulative; the interval max is unknowable
	}
	for i := range s.Buckets {
		d := s.Buckets[i]
		if i < len(prev.Buckets) {
			d -= prev.Buckets[i]
		}
		out.Buckets[i] = d
	}
	return out
}

// LatencySummary is the fixed percentile set the export plane publishes
// per tenant (the paper's Fig. 5 tail-latency view).
type LatencySummary struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	P50   int64 `json:"p50_ns"`
	P99   int64 `json:"p99_ns"`
	P999  int64 `json:"p999_ns"`
	MaxNs int64 `json:"max_ns"`
}

// Summary computes the export percentile set.
func (s HistSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count: s.Count,
		SumNs: s.SumNs,
		P50:   s.Percentile(50),
		P99:   s.Percentile(99),
		P999:  s.Percentile(99.9),
		MaxNs: s.MaxNs,
	}
}

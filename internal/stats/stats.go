// Package stats provides the measurement primitives used by the HyperPlane
// evaluation: streaming summaries, exact/reservoir latency percentiles, and
// CDF extraction matching the figures in the paper (e.g. Fig. 3c).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/variance/min/max using Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the running mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance, or 0 with fewer than 2 observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds other into s (parallel Welford merge).
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	s.m2 += other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	s.mean += d * float64(other.n) / float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n = n
}

// Sample stores observations for percentile and CDF queries. Below Cap it is
// exact; beyond Cap it switches to deterministic reservoir sampling (seeded
// by the sample's own count, so runs stay reproducible). Cap <= 0 means
// unbounded (exact).
type Sample struct {
	Cap      int
	vals     []float64
	n        int64 // total observations, including those not retained
	sorted   bool
	rngState uint64
	sum      float64
	max      float64
}

// NewSample returns a sample retaining at most capHint observations.
func NewSample(capHint int) *Sample {
	return &Sample{Cap: capHint, rngState: 0x243f6a8885a308d3}
}

func (s *Sample) rand() uint64 {
	// xorshift64*: cheap deterministic stream private to the sample.
	x := s.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rngState = x
	return x * 0x2545f4914f6cdd1d
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	s.sum += x
	if s.n == 1 || x > s.max {
		s.max = x
	}
	if s.Cap <= 0 || len(s.vals) < s.Cap {
		s.vals = append(s.vals, x)
		s.sorted = false
		return
	}
	// Reservoir replacement: keep each observation with probability Cap/n.
	if i := s.rand() % uint64(s.n); i < uint64(s.Cap) {
		s.vals[i] = x
		s.sorted = false
	}
}

// Count returns the number of observations recorded (not retained).
func (s *Sample) Count() int64 { return s.n }

// Mean returns the exact mean of all observations.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Max returns the exact maximum of all observations.
func (s *Sample) Max() float64 { return s.max }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between retained order statistics.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	s.sort()
	if len(s.vals) == 1 {
		return s.vals[0]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// P50 returns the median.
func (s *Sample) P50() float64 { return s.Percentile(50) }

// P99 returns the 99th percentile, the paper's tail-latency metric.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// P999 returns the 99.9th percentile.
func (s *Sample) P999() float64 { return s.Percentile(99.9) }

// CDFPoint is one point of a cumulative distribution: Pct percent of
// observations are <= Value.
type CDFPoint struct {
	Value float64
	Pct   float64
}

// CDF returns the distribution evaluated at n evenly spaced cumulative
// probabilities, suitable for plotting (paper Fig. 3c).
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.vals) == 0 || n <= 0 {
		return nil
	}
	s.sort()
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		pct := float64(i) / float64(n) * 100
		pts = append(pts, CDFPoint{Value: s.Percentile(pct), Pct: pct})
	}
	return pts
}

// Reset discards all observations but keeps the capacity.
func (s *Sample) Reset() {
	s.vals = s.vals[:0]
	s.n = 0
	s.sum = 0
	s.max = 0
	s.sorted = false
}

// Retained returns how many observations are currently held.
func (s *Sample) Retained() int { return len(s.vals) }

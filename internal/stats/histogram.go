package stats

import (
	"fmt"
	"math"
	"strings"
)

// BucketSpec is the log-bucketed (HDR-style) bucket geometry shared by
// Histogram and the concurrent latency histogram in internal/telemetry:
// buckets grow geometrically from Min, giving a bounded relative error on
// percentile queries in constant memory. Keeping the math in one place
// means the offline simulation histograms and the runtime telemetry
// histograms bucket identically, so their percentiles are comparable.
type BucketSpec struct {
	Min    float64 // lower bound of bucket 0
	Growth float64 // bucket width ratio (1 + precision)
	logG   float64
	n      int // bucket count
}

// NewBucketSpec builds the geometry covering [min, max] with the given
// relative precision (e.g. 0.05 for 5% bucket growth).
func NewBucketSpec(min, max, precision float64) (BucketSpec, error) {
	if !(min > 0) || !(max > min) || math.IsInf(max, 1) {
		return BucketSpec{}, fmt.Errorf("stats: histogram bounds must satisfy 0 < min < max < +Inf, got [%v, %v]", min, max)
	}
	if !(precision > 0) || precision >= 1 {
		return BucketSpec{}, fmt.Errorf("stats: histogram precision must be in (0,1), got %v", precision)
	}
	growth := 1 + precision
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return BucketSpec{Min: min, Growth: growth, logG: math.Log(growth), n: n}, nil
}

// Buckets returns the bucket count.
func (s BucketSpec) Buckets() int { return s.n }

// Index maps an observation to its bucket, clamped to [0, Buckets()-1).
// It is defined for every float64: NaN, +/-Inf, zero, negative and
// sub-Min values all land in bucket 0 rather than feeding math.Log
// undefined territory (callers that distinguish under-range or invalid
// observations should test with Valid/under-range checks before calling).
func (s BucketSpec) Index(x float64) int {
	if !(x > s.Min) { // catches x <= Min, x <= 0, NaN
		return 0
	}
	if math.IsInf(x, 1) {
		return s.n - 1
	}
	i := int(math.Log(x/s.Min) / s.logG)
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		i = s.n - 1
	}
	return i
}

// Lower returns bucket i's lower bound.
func (s BucketSpec) Lower(i int) float64 { return s.Min * math.Pow(s.Growth, float64(i)) }

// Mid returns bucket i's geometric midpoint — the value percentile
// queries report for ranks landing in the bucket.
func (s BucketSpec) Mid(i int) float64 { return s.Lower(i) * math.Sqrt(s.Growth) }

// Compatible reports whether two specs bucket identically (merge safety).
func (s BucketSpec) Compatible(o BucketSpec) bool {
	return s.Min == o.Min && s.Growth == o.Growth && s.n == o.n
}

// Histogram is a log-bucketed histogram for long simulation runs where
// retaining raw samples would be too costly. Buckets grow geometrically,
// giving a bounded relative error on percentile queries while using
// constant memory.
//
// Observations are sanitized: non-finite values (NaN, +/-Inf) are counted
// in Invalid and otherwise ignored — they never reach the bucket math and
// never poison the mean or max — and finite values below Min (including
// zero and negatives) are tallied in the under-range bucket.
type Histogram struct {
	spec    BucketSpec
	buckets []int64
	under   int64 // observations below Min (incl. <= 0)
	invalid int64 // non-finite observations, excluded from count/sum
	count   int64
	sum     float64
	maxSeen float64
}

// NewHistogram builds a histogram covering [min, max] with the given
// relative precision (e.g. 0.05 for 5% bucket growth).
func NewHistogram(min, max, precision float64) *Histogram {
	spec, err := NewBucketSpec(min, max, precision)
	if err != nil {
		panic(err.Error())
	}
	return &Histogram{
		spec:    spec,
		buckets: make([]int64, spec.Buckets()),
	}
}

// Spec returns the histogram's bucket geometry.
func (h *Histogram) Spec() BucketSpec { return h.spec }

// Add records an observation. Non-finite observations are counted in
// Invalid and otherwise ignored.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.invalid++
		return
	}
	h.count++
	h.sum += x
	if x > h.maxSeen {
		h.maxSeen = x
	}
	if x < h.spec.Min {
		h.under++
		return
	}
	h.buckets[h.spec.Index(x)]++
}

// Count returns the number of (finite) observations.
func (h *Histogram) Count() int64 { return h.count }

// Invalid returns the number of rejected non-finite observations.
func (h *Histogram) Invalid() int64 { return h.invalid }

// Mean returns the exact mean of all finite observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the exact maximum finite observation.
func (h *Histogram) Max() float64 { return h.maxSeen }

// Percentile returns the p-th percentile (0-100) with the histogram's
// relative precision: the geometric midpoint of the bucket containing the
// rank.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank <= h.under {
		return h.spec.Min / 2 // below-range bucket midpoint approximation
	}
	seen := h.under
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return h.spec.Mid(i)
		}
	}
	return h.maxSeen
}

// Merge folds other (which must share bounds and precision) into h.
func (h *Histogram) Merge(other *Histogram) error {
	if !h.spec.Compatible(other.spec) {
		return fmt.Errorf("stats: merging incompatible histograms")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.under += other.under
	h.invalid += other.invalid
	h.count += other.count
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	return nil
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.count, h.invalid = 0, 0, 0
	h.sum, h.maxSeen = 0, 0
}

// String renders a compact summary for logs.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.maxSeen)
	return b.String()
}

package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-bucketed (HDR-style) histogram for long simulation
// runs where retaining raw samples would be too costly. Buckets grow
// geometrically, giving a bounded relative error on percentile queries
// while using constant memory.
type Histogram struct {
	min     float64 // lower bound of bucket 0
	growth  float64 // bucket width ratio
	logG    float64
	buckets []int64
	under   int64 // observations below min
	count   int64
	sum     float64
	maxSeen float64
}

// NewHistogram builds a histogram covering [min, max] with the given
// relative precision (e.g. 0.05 for 5% bucket growth).
func NewHistogram(min, max, precision float64) *Histogram {
	if min <= 0 || max <= min {
		panic(fmt.Sprintf("stats: histogram bounds must satisfy 0 < min < max, got [%v, %v]", min, max))
	}
	if precision <= 0 || precision >= 1 {
		panic(fmt.Sprintf("stats: histogram precision must be in (0,1), got %v", precision))
	}
	growth := 1 + precision
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return &Histogram{
		min:     min,
		growth:  growth,
		logG:    math.Log(growth),
		buckets: make([]int64, n),
	}
}

// bucketOf maps a value to its bucket index (clamped to the last bucket).
func (h *Histogram) bucketOf(x float64) int {
	i := int(math.Log(x/h.min) / h.logG)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	if x > h.maxSeen {
		h.maxSeen = x
	}
	if x < h.min {
		h.under++
		return
	}
	h.buckets[h.bucketOf(x)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the exact maximum observation.
func (h *Histogram) Max() float64 { return h.maxSeen }

// Percentile returns the p-th percentile (0-100) with the histogram's
// relative precision: the geometric midpoint of the bucket containing the
// rank.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank <= h.under {
		return h.min / 2 // below-range bucket midpoint approximation
	}
	seen := h.under
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			lo := h.min * math.Pow(h.growth, float64(i))
			return lo * math.Sqrt(h.growth) // geometric bucket midpoint
		}
	}
	return h.maxSeen
}

// Merge folds other (which must share bounds and precision) into h.
func (h *Histogram) Merge(other *Histogram) error {
	if other.min != h.min || other.growth != h.growth || len(other.buckets) != len(h.buckets) {
		return fmt.Errorf("stats: merging incompatible histograms")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.under += other.under
	h.count += other.count
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
	return nil
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.count = 0, 0
	h.sum, h.maxSeen = 0, 0
}

// String renders a compact summary for logs.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.maxSeen)
	return b.String()
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("count = %d", s.Count())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v", s.Variance())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryMerge(t *testing.T) {
	var all, a, b Summary
	for i := 0; i < 100; i++ {
		x := float64(i*i%37) - 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d", a.Count())
	}
	if !almostEq(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almostEq(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max")
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Error("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Error("merge into empty did not copy")
	}
}

func TestSamplePercentilesExact(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.P50(); !almostEq(got, 50.5, 1e-9) {
		t.Errorf("P50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.P99(); !almostEq(got, 99.01, 1e-9) {
		t.Errorf("P99 = %v", got)
	}
	if s.Mean() != 50.5 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Max() != 100 {
		t.Errorf("max = %v", s.Max())
	}
}

func TestSampleSingle(t *testing.T) {
	s := NewSample(10)
	s.Add(42)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("P%v = %v", p, got)
		}
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(10)
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("empty sample should report zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestSamplePercentileOutOfRange(t *testing.T) {
	s := NewSample(0)
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(101) did not panic")
		}
	}()
	s.Percentile(101)
}

func TestSampleReservoir(t *testing.T) {
	s := NewSample(1000)
	// Uniform 0..9999: reservoir of 1000 should estimate percentiles well.
	for i := 0; i < 100000; i++ {
		s.Add(float64(i % 10000))
	}
	if s.Retained() != 1000 {
		t.Fatalf("retained = %d", s.Retained())
	}
	if s.Count() != 100000 {
		t.Fatalf("count = %d", s.Count())
	}
	if got := s.P50(); got < 4200 || got > 5800 {
		t.Errorf("reservoir P50 = %v, want ~5000", got)
	}
	// Mean and max stay exact regardless of the reservoir.
	if !almostEq(s.Mean(), 4999.5, 1e-6) {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Max() != 9999 {
		t.Errorf("max = %v", s.Max())
	}
}

func TestSampleCDF(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("len = %d", len(cdf))
	}
	for i, pt := range cdf {
		wantPct := float64(i+1) * 10
		if !almostEq(pt.Pct, wantPct, 1e-9) {
			t.Errorf("point %d pct = %v", i, pt.Pct)
		}
		if !almostEq(pt.Value, wantPct*10, 1.0) {
			t.Errorf("point %d value = %v, want ~%v", i, pt.Value, wantPct*10)
		}
	}
	// CDF must be non-decreasing.
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample(10)
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.Count() != 0 || s.Retained() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("reset did not clear sample")
	}
	s.Add(7)
	if s.P50() != 7 {
		t.Error("sample unusable after reset")
	}
}

func TestSampleDeterministic(t *testing.T) {
	run := func() float64 {
		s := NewSample(100)
		for i := 0; i < 10000; i++ {
			s.Add(float64((i * 7919) % 1000))
		}
		return s.P99()
	}
	if run() != run() {
		t.Error("reservoir sampling is not deterministic")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		s := NewSample(0)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			s.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= lo && vb <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Summary.Merge is equivalent to adding all observations to one
// summary.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Summary
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		return almostEq(a.Mean(), all.Mean(), tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

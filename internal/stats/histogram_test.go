package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1e6, 0.01)
	for i := 1; i <= 10000; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if !almostEq(h.Mean(), 5000.5, 1e-9) {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Max() != 10000 {
		t.Errorf("max = %v", h.Max())
	}
	// Percentiles within the configured 1% relative precision (plus bucket
	// midpoint slack: allow 2%).
	for _, p := range []float64{10, 50, 90, 99} {
		want := p / 100 * 10000
		got := h.Percentile(p)
		if math.Abs(got-want) > want*0.02 {
			t.Errorf("P%v = %v, want ~%v", p, got, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 100, 0.1)
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramUnderflowAndClamp(t *testing.T) {
	h := NewHistogram(10, 1000, 0.1)
	h.Add(1)   // below range
	h.Add(1e9) // above range: clamped to last bucket
	h.Add(100)
	if h.Count() != 3 {
		t.Fatal("count")
	}
	if got := h.Percentile(1); got >= 10 {
		t.Errorf("underflow percentile = %v", got)
	}
	if h.Max() != 1e9 {
		t.Error("max must stay exact despite clamping")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 1e4, 0.05)
	b := NewHistogram(1, 1e4, 0.05)
	all := NewHistogram(1, 1e4, 0.05)
	for i := 1; i <= 1000; i++ {
		x := float64(i)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != all.Count() {
		t.Fatal("merged count")
	}
	if math.Abs(a.Percentile(50)-all.Percentile(50)) > all.Percentile(50)*0.01 {
		t.Errorf("merged P50 = %v vs %v", a.Percentile(50), all.Percentile(50))
	}
	c := NewHistogram(2, 1e4, 0.05)
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 100, 0.1)
	h.Add(50)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Error("reset incomplete")
	}
}

func TestHistogramValidation(t *testing.T) {
	cases := []func(){
		func() { NewHistogram(0, 10, 0.1) },
		func() { NewHistogram(10, 10, 0.1) },
		func() { NewHistogram(1, 10, 0) },
		func() { NewHistogram(1, 10, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	h := NewHistogram(1, 10, 0.1)
	h.Add(5)
	defer func() {
		if recover() == nil {
			t.Error("Percentile(-1) did not panic")
		}
	}()
	h.Percentile(-1)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(1, 100, 0.1)
	h.Add(10)
	if h.String() == "" {
		t.Error("empty string")
	}
}

// Property: histogram percentiles agree with exact sample percentiles
// within the configured relative precision.
func TestHistogramVsExactProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1, 70000, 0.05)
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			x := float64(v) + 1 // keep within [1, 65536]
			h.Add(x)
			vals = append(vals, x)
		}
		sort.Float64s(vals)
		p := float64(pRaw%99) + 1
		// Rank-based exact percentile (the definition the histogram uses).
		rank := int(math.Ceil(p / 100 * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		approx := h.Percentile(p)
		// The bucket containing the rank spans a 5% ratio; the geometric
		// midpoint is within ~2.5% of any value in it.
		return math.Abs(approx-exact) <= exact*0.05+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1e6, 0.01)
	for i := 1; i <= 10000; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if !almostEq(h.Mean(), 5000.5, 1e-9) {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Max() != 10000 {
		t.Errorf("max = %v", h.Max())
	}
	// Percentiles within the configured 1% relative precision (plus bucket
	// midpoint slack: allow 2%).
	for _, p := range []float64{10, 50, 90, 99} {
		want := p / 100 * 10000
		got := h.Percentile(p)
		if math.Abs(got-want) > want*0.02 {
			t.Errorf("P%v = %v, want ~%v", p, got, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 100, 0.1)
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramUnderflowAndClamp(t *testing.T) {
	h := NewHistogram(10, 1000, 0.1)
	h.Add(1)   // below range
	h.Add(1e9) // above range: clamped to last bucket
	h.Add(100)
	if h.Count() != 3 {
		t.Fatal("count")
	}
	if got := h.Percentile(1); got >= 10 {
		t.Errorf("underflow percentile = %v", got)
	}
	if h.Max() != 1e9 {
		t.Error("max must stay exact despite clamping")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 1e4, 0.05)
	b := NewHistogram(1, 1e4, 0.05)
	all := NewHistogram(1, 1e4, 0.05)
	for i := 1; i <= 1000; i++ {
		x := float64(i)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != all.Count() {
		t.Fatal("merged count")
	}
	if math.Abs(a.Percentile(50)-all.Percentile(50)) > all.Percentile(50)*0.01 {
		t.Errorf("merged P50 = %v vs %v", a.Percentile(50), all.Percentile(50))
	}
	c := NewHistogram(2, 1e4, 0.05)
	if err := a.Merge(c); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 100, 0.1)
	h.Add(50)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Error("reset incomplete")
	}
}

func TestHistogramValidation(t *testing.T) {
	cases := []func(){
		func() { NewHistogram(0, 10, 0.1) },
		func() { NewHistogram(10, 10, 0.1) },
		func() { NewHistogram(1, 10, 0) },
		func() { NewHistogram(1, 10, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	h := NewHistogram(1, 10, 0.1)
	h.Add(5)
	defer func() {
		if recover() == nil {
			t.Error("Percentile(-1) did not panic")
		}
	}()
	h.Percentile(-1)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(1, 100, 0.1)
	h.Add(10)
	if h.String() == "" {
		t.Error("empty string")
	}
}

// The satellite hardening: NaN/Inf/<=0 must never reach math.Log. Before
// the BucketSpec extraction, Add(NaN) corrupted count/sum and Add(+Inf)
// produced an out-of-range bucket index.
func TestHistogramNonFiniteAndNonPositive(t *testing.T) {
	h := NewHistogram(1, 1e4, 0.05)
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite observations leaked into count: %d", h.Count())
	}
	if h.Invalid() != 3 {
		t.Fatalf("invalid = %d, want 3", h.Invalid())
	}
	if h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("non-finite observations poisoned mean=%v max=%v", h.Mean(), h.Max())
	}
	// Non-positive observations are real (finite) data below range: they
	// count, land in the under-range bucket, and never hit the log.
	h.Add(0)
	h.Add(-12.5)
	h.Add(50)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got := h.Percentile(10); got >= 1 {
		t.Errorf("under-range percentile = %v, want < min", got)
	}
	if got := h.Percentile(99); got < 40 || got > 60 {
		t.Errorf("P99 = %v, want ~50", got)
	}
	// Percentile(NaN) must panic like other out-of-range arguments.
	defer func() {
		if recover() == nil {
			t.Error("Percentile(NaN) did not panic")
		}
	}()
	h.Percentile(math.NaN())
}

func TestBucketSpecIndexTotal(t *testing.T) {
	spec, err := NewBucketSpec(1e2, 1e10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Index is total: defined (and in range) for every float64.
	for _, x := range []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), -1, 0, 1e-300, 99.999,
		100, 101, 1e5, 1e10, 1e300, math.MaxFloat64,
	} {
		i := spec.Index(x)
		if i < 0 || i >= spec.Buckets() {
			t.Fatalf("Index(%v) = %d out of [0,%d)", x, i, spec.Buckets())
		}
	}
	if spec.Index(math.Inf(1)) != spec.Buckets()-1 {
		t.Error("+Inf must clamp to the last bucket")
	}
	if spec.Index(math.NaN()) != 0 || spec.Index(-5) != 0 {
		t.Error("NaN and negatives must clamp to bucket 0")
	}
	// Midpoints sit inside their bucket, monotonically increasing.
	for i := 1; i < spec.Buckets(); i++ {
		if !(spec.Mid(i) > spec.Mid(i-1)) {
			t.Fatalf("Mid not monotonic at %d", i)
		}
		if !(spec.Mid(i) > spec.Lower(i)) {
			t.Fatalf("Mid(%d) below Lower", i)
		}
	}
}

func TestBucketSpecValidation(t *testing.T) {
	bad := [][3]float64{
		{0, 10, 0.1}, {10, 10, 0.1}, {1, 10, 0}, {1, 10, 1},
		{math.NaN(), 10, 0.1}, {1, math.Inf(1), 0.1}, {1, 10, math.NaN()},
	}
	for i, c := range bad {
		if _, err := NewBucketSpec(c[0], c[1], c[2]); err == nil {
			t.Errorf("case %d accepted invalid spec %v", i, c)
		}
	}
	spec, err := NewBucketSpec(1, 1e3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := NewBucketSpec(2, 1e3, 0.05)
	if spec.Compatible(other) {
		t.Error("different Min reported compatible")
	}
	if !spec.Compatible(spec) {
		t.Error("self not compatible")
	}
}

// Property: histogram percentiles agree with exact sample percentiles
// within the configured relative precision.
func TestHistogramVsExactProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1, 70000, 0.05)
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			x := float64(v) + 1 // keep within [1, 65536]
			h.Add(x)
			vals = append(vals, x)
		}
		sort.Float64s(vals)
		p := float64(pRaw%99) + 1
		// Rank-based exact percentile (the definition the histogram uses).
		rank := int(math.Ceil(p / 100 * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		approx := h.Percentile(p)
		// The bucket containing the rank spans a 5% ratio; the geometric
		// midpoint is within ~2.5% of any value in it.
		return math.Abs(approx-exact) <= exact*0.05+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

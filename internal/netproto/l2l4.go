package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Layer-2 and layer-4 header support: Ethernet (with optional 802.1Q VLAN
// tag), UDP, and TCP. Together with the IPv4/IPv6/GRE code these let the
// packet workloads and traffic generators build full frames byte-for-byte.

// Header sizes.
const (
	EthernetHeaderLen = 14
	VLANTagLen        = 4
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options
)

// EtherTypeVLAN is the 802.1Q TPID.
const EtherTypeVLAN = 0x8100

// MAC is a 48-bit hardware address.
type MAC [6]byte

// String formats the address in canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EthernetHeader is an Ethernet II frame header, optionally 802.1Q-tagged.
type EthernetHeader struct {
	Dst, Src  MAC
	EtherType uint16
	// VLAN, when true, inserts an 802.1Q tag with the given fields.
	VLAN bool
	PCP  uint8  // 3-bit priority code point
	VID  uint16 // 12-bit VLAN id
}

// Len returns the wire length of the header.
func (h *EthernetHeader) Len() int {
	if h.VLAN {
		return EthernetHeaderLen + VLANTagLen
	}
	return EthernetHeaderLen
}

// Marshal appends the header to b.
func (h *EthernetHeader) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, h.Len())...)
	p := b[start:]
	copy(p[0:6], h.Dst[:])
	copy(p[6:12], h.Src[:])
	if h.VLAN {
		binary.BigEndian.PutUint16(p[12:], EtherTypeVLAN)
		binary.BigEndian.PutUint16(p[14:], uint16(h.PCP&0x7)<<13|h.VID&0x0fff)
		binary.BigEndian.PutUint16(p[16:], h.EtherType)
	} else {
		binary.BigEndian.PutUint16(p[12:], h.EtherType)
	}
	return b
}

// ParseEthernet decodes a frame header, returning it and the payload.
func ParseEthernet(frame []byte) (EthernetHeader, []byte, error) {
	var h EthernetHeader
	if len(frame) < EthernetHeaderLen {
		return h, nil, ErrTruncated
	}
	copy(h.Dst[:], frame[0:6])
	copy(h.Src[:], frame[6:12])
	et := binary.BigEndian.Uint16(frame[12:])
	off := EthernetHeaderLen
	if et == EtherTypeVLAN {
		if len(frame) < EthernetHeaderLen+VLANTagLen {
			return h, nil, ErrTruncated
		}
		h.VLAN = true
		tci := binary.BigEndian.Uint16(frame[14:])
		h.PCP = uint8(tci >> 13)
		h.VID = tci & 0x0fff
		et = binary.BigEndian.Uint16(frame[16:])
		off += VLANTagLen
	}
	h.EtherType = et
	return h, frame[off:], nil
}

// UDPHeader is a UDP datagram header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
	Checksum         uint16
}

// MarshalUDP appends a UDP header (with IPv4 pseudo-header checksum over
// payload) to b.
func MarshalUDP(b []byte, src, dst [4]byte, srcPort, dstPort uint16, payload []byte) []byte {
	length := uint16(UDPHeaderLen + len(payload))
	start := len(b)
	b = append(b, make([]byte, UDPHeaderLen)...)
	p := b[start:]
	binary.BigEndian.PutUint16(p[0:], srcPort)
	binary.BigEndian.PutUint16(p[2:], dstPort)
	binary.BigEndian.PutUint16(p[4:], length)
	sum := transportChecksum(src, dst, ProtoUDP, p[:UDPHeaderLen], payload)
	if sum == 0 {
		sum = 0xffff // RFC 768: zero checksum means "none"; transmit as ones
	}
	binary.BigEndian.PutUint16(p[6:], sum)
	return b
}

// ParseUDP decodes a UDP header and validates its checksum against the
// given IPv4 pseudo-header addresses. payload is the remaining bytes.
func ParseUDP(seg []byte, src, dst [4]byte) (UDPHeader, []byte, error) {
	var h UDPHeader
	if len(seg) < UDPHeaderLen {
		return h, nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(seg[0:])
	h.DstPort = binary.BigEndian.Uint16(seg[2:])
	h.Length = binary.BigEndian.Uint16(seg[4:])
	h.Checksum = binary.BigEndian.Uint16(seg[6:])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(seg) {
		return h, nil, ErrTruncated
	}
	payload := seg[UDPHeaderLen:h.Length]
	if h.Checksum != 0 {
		if transportChecksum(src, dst, ProtoUDP, seg[:h.Length], nil) != 0 {
			return h, nil, ErrBadChecksum
		}
	}
	return h, payload, nil
}

// TCPHeader is a (optionless) TCP segment header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8 // FIN|SYN|RST|PSH|ACK|URG from LSB
	Window           uint16
	Checksum         uint16
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// MarshalTCP appends a TCP header with a valid pseudo-header checksum.
func MarshalTCP(b []byte, src, dst [4]byte, h TCPHeader, payload []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, TCPHeaderLen)...)
	p := b[start:]
	binary.BigEndian.PutUint16(p[0:], h.SrcPort)
	binary.BigEndian.PutUint16(p[2:], h.DstPort)
	binary.BigEndian.PutUint32(p[4:], h.Seq)
	binary.BigEndian.PutUint32(p[8:], h.Ack)
	p[12] = 5 << 4 // data offset: 5 words
	p[13] = h.Flags
	binary.BigEndian.PutUint16(p[14:], h.Window)
	sum := transportChecksum(src, dst, ProtoTCP, p[:TCPHeaderLen], payload)
	binary.BigEndian.PutUint16(p[16:], sum)
	return b
}

// ErrBadOffset reports an unsupported TCP data offset.
var ErrBadOffset = errors.New("netproto: bad TCP data offset")

// ParseTCP decodes a TCP header, validating the checksum.
func ParseTCP(seg []byte, src, dst [4]byte) (TCPHeader, []byte, error) {
	var h TCPHeader
	if len(seg) < TCPHeaderLen {
		return h, nil, ErrTruncated
	}
	off := int(seg[12]>>4) * 4
	if off < TCPHeaderLen || off > len(seg) {
		return h, nil, ErrBadOffset
	}
	h.SrcPort = binary.BigEndian.Uint16(seg[0:])
	h.DstPort = binary.BigEndian.Uint16(seg[2:])
	h.Seq = binary.BigEndian.Uint32(seg[4:])
	h.Ack = binary.BigEndian.Uint32(seg[8:])
	h.Flags = seg[13]
	h.Window = binary.BigEndian.Uint16(seg[14:])
	h.Checksum = binary.BigEndian.Uint16(seg[16:])
	if transportChecksum(src, dst, ProtoTCP, seg, nil) != 0 {
		return h, nil, ErrBadChecksum
	}
	return h, seg[off:], nil
}

// transportChecksum computes the internet checksum over the IPv4
// pseudo-header plus the given segment bytes (and optional extra payload).
// The checksum field inside seg must be zero when computing, or included
// when verifying (a valid packet folds to zero).
func transportChecksum(src, dst [4]byte, proto uint8, seg, payload []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(seg)+len(payload)))
	var sum uint32
	add := func(data []byte, odd bool) bool {
		i := 0
		if odd && len(data) > 0 {
			sum += uint32(data[0])
			i = 1
		}
		for ; i+1 < len(data); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(data[i:]))
		}
		if (len(data)-i)%2 == 1 {
			sum += uint32(data[len(data)-1]) << 8
			return true
		}
		return false
	}
	odd := add(pseudo[:], false)
	odd = add(seg, odd)
	add(payload, odd)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// BuildUDPPacket assembles a complete IPv4/UDP packet: convenience for the
// traffic generators and the steering workload.
func BuildUDPPacket(src, dst [4]byte, srcPort, dstPort uint16, payload []byte) []byte {
	udpLen := UDPHeaderLen + len(payload)
	ip := IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + udpLen),
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	b := ip.Marshal(nil)
	b = MarshalUDP(b, src, dst, srcPort, dstPort, payload)
	return append(b, payload...)
}

// BuildTCPPacket assembles a complete IPv4/TCP packet.
func BuildTCPPacket(src, dst [4]byte, h TCPHeader, payload []byte) []byte {
	ip := IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + TCPHeaderLen + len(payload)),
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	b := ip.Marshal(nil)
	b = MarshalTCP(b, src, dst, h, payload)
	return append(b, payload...)
}

package netproto

import (
	"bytes"
	"testing"
)

// Fuzz targets: the parsers must never panic or over-read on arbitrary
// bytes, and accepted packets must re-serialize consistently.

func FuzzParseIPv4(f *testing.F) {
	f.Add(mustIPv4(f))
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := ParseIPv4(data)
		if err != nil {
			return
		}
		// Accepted packets must round-trip their header fields.
		re := h.Marshal(nil)
		h2, _, err := ParseIPv4(append(re, payload...))
		if err != nil {
			t.Fatalf("re-parse of accepted packet failed: %v", err)
		}
		if h2.Src != h.Src || h2.Dst != h.Dst || h2.Protocol != h.Protocol ||
			h2.TTL != h.TTL || h2.ID != h.ID {
			t.Fatal("header fields changed across round-trip")
		}
	})
}

func mustIPv4(f *testing.F) []byte {
	f.Helper()
	h := IPv4Header{TotalLen: IPv4HeaderLen + 4, TTL: 64, Protocol: ProtoUDP}
	return append(h.Marshal(nil), 1, 2, 3, 4)
}

func FuzzParseIPv6(f *testing.F) {
	h := IPv6Header{PayloadLen: 2, NextHeader: ProtoGRE, HopLimit: 1}
	f.Add(append(h.Marshal(nil), 0xAA, 0xBB))
	f.Add([]byte{0x60})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := ParseIPv6(data); err != nil {
			return
		}
	})
}

func FuzzParseGRE(f *testing.F) {
	g := GREHeader{Protocol: EtherTypeIPv4}
	f.Add(g.Marshal(nil, nil))
	gc := GREHeader{Protocol: EtherTypeIPv4, ChecksumPresent: true}
	f.Add(append(gc.Marshal(nil, []byte("x")), 'x'))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ParseGRE(data)
	})
}

func FuzzDecap(f *testing.F) {
	var src, dst [16]byte
	tun := NewTunnel(src, dst)
	inner := mustIPv4(f)
	if wire, err := tun.Encap(inner); err == nil {
		f.Add(append([]byte(nil), wire...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decap(data)
		if err != nil {
			return
		}
		// Anything Decap accepts must itself parse as IPv4.
		if _, _, err := ParseIPv4(got); err != nil {
			t.Fatalf("Decap returned invalid IPv4: %v", err)
		}
	})
}

func FuzzParseTCPUDP(f *testing.F) {
	pkt := BuildUDPPacket(srcIP, dstIP, 1, 2, []byte("xy"))
	_, seg, _ := ParseIPv4(pkt)
	f.Add(append([]byte(nil), seg...), true)
	tcp := BuildTCPPacket(srcIP, dstIP, TCPHeader{SrcPort: 1, DstPort: 2}, nil)
	_, seg2, _ := ParseIPv4(tcp)
	f.Add(append([]byte(nil), seg2...), false)
	f.Fuzz(func(t *testing.T, data []byte, udp bool) {
		if udp {
			_, _, _ = ParseUDP(data, srcIP, dstIP)
		} else {
			_, _, _ = ParseTCP(data, srcIP, dstIP)
		}
	})
}

func FuzzParseEthernet(f *testing.F) {
	h := EthernetHeader{EtherType: EtherTypeIPv4}
	f.Add(h.Marshal(nil))
	hv := EthernetHeader{EtherType: EtherTypeIPv6, VLAN: true, VID: 7}
	f.Add(hv.Marshal(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, _, err := ParseEthernet(data)
		if err != nil {
			return
		}
		re := h.Marshal(nil)
		h2, _, err := ParseEthernet(re)
		if err != nil || h2 != h {
			t.Fatal("ethernet header round-trip mismatch")
		}
	})
}

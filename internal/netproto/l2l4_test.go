package netproto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var (
	srcIP = [4]byte{10, 1, 0, 1}
	dstIP = [4]byte{10, 2, 0, 2}
)

func TestEthernetRoundTrip(t *testing.T) {
	h := EthernetHeader{
		Dst:       MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:       MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		EtherType: EtherTypeIPv4,
	}
	payload := []byte("frame payload")
	frame := append(h.Marshal(nil), payload...)
	got, gotPayload, err := ParseEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != h.Dst || got.Src != h.Src || got.EtherType != h.EtherType || got.VLAN {
		t.Errorf("header = %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Error("payload mismatch")
	}
}

func TestEthernetVLAN(t *testing.T) {
	h := EthernetHeader{
		EtherType: EtherTypeIPv6,
		VLAN:      true,
		PCP:       5,
		VID:       0xABC,
	}
	frame := h.Marshal(nil)
	if len(frame) != EthernetHeaderLen+VLANTagLen {
		t.Fatalf("tagged frame header len = %d", len(frame))
	}
	got, _, err := ParseEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !got.VLAN || got.PCP != 5 || got.VID != 0xABC || got.EtherType != EtherTypeIPv6 {
		t.Errorf("header = %+v", got)
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, _, err := ParseEthernet(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Error("short frame accepted")
	}
	// Tagged frame cut before the inner EtherType.
	h := EthernetHeader{VLAN: true}
	frame := h.Marshal(nil)[:15]
	if _, _, err := ParseEthernet(frame); !errors.Is(err, ErrTruncated) {
		t.Error("truncated VLAN tag accepted")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("MAC string = %s", m.String())
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("dns query maybe")
	pkt := BuildUDPPacket(srcIP, dstIP, 5353, 53, payload)
	iph, l4, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if iph.Protocol != ProtoUDP {
		t.Fatal("wrong protocol")
	}
	h, gotPayload, err := ParseUDP(l4, iph.Src, iph.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != 5353 || h.DstPort != 53 {
		t.Errorf("ports = %d, %d", h.SrcPort, h.DstPort)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Error("payload mismatch")
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	pkt := BuildUDPPacket(srcIP, dstIP, 1000, 2000, []byte("protected"))
	_, l4, _ := ParseIPv4(pkt)
	bad := append([]byte(nil), l4...)
	bad[len(bad)-1] ^= 0x40
	if _, _, err := ParseUDP(bad, srcIP, dstIP); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v", err)
	}
	// Wrong pseudo-header (spoofed address) also fails. Note swapping
	// src/dst would NOT fail — ones-complement addition is commutative —
	// so use a genuinely different address.
	other := [4]byte{192, 168, 9, 9}
	if _, _, err := ParseUDP(l4, other, dstIP); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("spoofed addr: %v", err)
	}
}

func TestUDPTruncated(t *testing.T) {
	if _, _, err := ParseUDP(make([]byte, 4), srcIP, dstIP); !errors.Is(err, ErrTruncated) {
		t.Error("short UDP accepted")
	}
	pkt := BuildUDPPacket(srcIP, dstIP, 1, 2, []byte("xyz"))
	_, l4, _ := ParseIPv4(pkt)
	if _, _, err := ParseUDP(l4[:UDPHeaderLen+1], srcIP, dstIP); !errors.Is(err, ErrTruncated) {
		t.Error("truncated payload accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1")
	h := TCPHeader{
		SrcPort: 43210, DstPort: 80,
		Seq: 0x11223344, Ack: 0x55667788,
		Flags: TCPAck | TCPPsh, Window: 65535,
	}
	pkt := BuildTCPPacket(srcIP, dstIP, h, payload)
	iph, l4, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := ParseTCP(l4, iph.Src, iph.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != h.SrcPort || got.DstPort != h.DstPort ||
		got.Seq != h.Seq || got.Ack != h.Ack ||
		got.Flags != h.Flags || got.Window != h.Window {
		t.Errorf("header = %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Error("payload mismatch")
	}
}

func TestTCPChecksumAndOffset(t *testing.T) {
	pkt := BuildTCPPacket(srcIP, dstIP, TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPSyn}, nil)
	_, l4, _ := ParseIPv4(pkt)
	bad := append([]byte(nil), l4...)
	bad[4] ^= 0xff // corrupt seq
	if _, _, err := ParseTCP(bad, srcIP, dstIP); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt seq: %v", err)
	}
	badOff := append([]byte(nil), l4...)
	badOff[12] = 2 << 4 // offset below minimum
	if _, _, err := ParseTCP(badOff, srcIP, dstIP); !errors.Is(err, ErrBadOffset) {
		t.Errorf("bad offset: %v", err)
	}
	if _, _, err := ParseTCP(make([]byte, 10), srcIP, dstIP); !errors.Is(err, ErrTruncated) {
		t.Error("short TCP accepted")
	}
}

func TestSteeringInteropWithBuiltPackets(t *testing.T) {
	// The 5-tuple parser in internal/steering reads the first 4 bytes of
	// L4 as ports; our built packets must satisfy it structurally.
	pkt := BuildTCPPacket(srcIP, dstIP, TCPHeader{SrcPort: 777, DstPort: 888}, []byte("x"))
	_, l4, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(l4) < 4 {
		t.Fatal("l4 too short")
	}
}

// Property: UDP and TCP round-trip arbitrary payloads and any single-bit
// corruption of the segment is detected.
func TestTransportProperty(t *testing.T) {
	f := func(payload []byte, sp, dp uint16, flipAt uint16, flipBit, isTCP uint8) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		var l4 []byte
		if isTCP%2 == 0 {
			pkt := BuildUDPPacket(srcIP, dstIP, sp, dp, payload)
			_, seg, err := ParseIPv4(pkt)
			if err != nil {
				return false
			}
			h, got, err := ParseUDP(seg, srcIP, dstIP)
			if err != nil || h.SrcPort != sp || h.DstPort != dp || !bytes.Equal(got, payload) {
				return false
			}
			l4 = seg
		} else {
			pkt := BuildTCPPacket(srcIP, dstIP, TCPHeader{SrcPort: sp, DstPort: dp}, payload)
			_, seg, err := ParseIPv4(pkt)
			if err != nil {
				return false
			}
			h, got, err := ParseTCP(seg, srcIP, dstIP)
			if err != nil || h.SrcPort != sp || h.DstPort != dp || !bytes.Equal(got, payload) {
				return false
			}
			l4 = seg
		}
		// Single-bit corruption anywhere in the segment must be rejected.
		bad := append([]byte(nil), l4...)
		pos := int(flipAt) % len(bad)
		bad[pos] ^= 1 << (flipBit % 8)
		var err error
		if isTCP%2 == 0 {
			_, _, err = ParseUDP(bad, srcIP, dstIP)
		} else {
			_, _, err = ParseTCP(bad, srcIP, dstIP)
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

// mkIPv4 builds a valid IPv4 packet with the given payload.
func mkIPv4(payload []byte, proto uint8) []byte {
	h := IPv4Header{
		TOS:      0,
		TotalLen: uint16(IPv4HeaderLen + len(payload)),
		ID:       0x1234,
		TTL:      64,
		Protocol: proto,
		Src:      [4]byte{10, 0, 0, 1},
		Dst:      [4]byte{10, 0, 0, 2},
	}
	return append(h.Marshal(nil), payload...)
}

func TestChecksumRFCExample(t *testing.T) {
	// Classic example from RFC 1071 discussions.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data pads with a zero byte.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Error("odd-length checksum wrong")
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6}
	sum := Checksum(data)
	withSum := append(append([]byte{}, data...), byte(sum>>8), byte(sum))
	if Checksum(withSum) != 0 {
		t.Error("data + its checksum does not sum to zero")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	payload := []byte("hello, plane")
	pkt := mkIPv4(payload, ProtoUDP)
	h, got, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
	if h.TTL != 64 || h.Protocol != ProtoUDP || h.ID != 0x1234 {
		t.Errorf("header = %+v", h)
	}
	if h.Src != [4]byte{10, 0, 0, 1} || h.Dst != [4]byte{10, 0, 0, 2} {
		t.Error("addresses mismatch")
	}
}

func TestIPv4Corruption(t *testing.T) {
	pkt := mkIPv4([]byte("x"), ProtoTCP)
	pkt[8] ^= 0xff // flip TTL: checksum must fail
	if _, _, err := ParseIPv4(pkt); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestIPv4Truncated(t *testing.T) {
	if _, _, err := ParseIPv4([]byte{4}); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v", err)
	}
	// Valid header claiming more bytes than present.
	h := IPv4Header{TotalLen: 100, TTL: 1, Protocol: ProtoUDP}
	pkt := h.Marshal(nil)
	if _, _, err := ParseIPv4(pkt); !errors.Is(err, ErrTruncated) {
		t.Errorf("overlong TotalLen err = %v", err)
	}
}

func TestIPv4WrongVersion(t *testing.T) {
	pkt := mkIPv4(nil, 0)
	pkt[0] = 6<<4 | 5
	if _, _, err := ParseIPv4(pkt); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	h := IPv6Header{
		TrafficClass: 0x12,
		FlowLabel:    0xABCDE,
		PayloadLen:   5,
		NextHeader:   ProtoGRE,
		HopLimit:     64,
	}
	h.Src[15] = 1
	h.Dst[15] = 2
	pkt := append(h.Marshal(nil), []byte("12345")...)
	got, payload, err := ParseIPv6(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrafficClass != 0x12 || got.FlowLabel != 0xABCDE || got.NextHeader != ProtoGRE {
		t.Errorf("header = %+v", got)
	}
	if string(payload) != "12345" {
		t.Errorf("payload = %q", payload)
	}
}

func TestIPv6Truncated(t *testing.T) {
	if _, _, err := ParseIPv6(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Error("short packet accepted")
	}
	h := IPv6Header{PayloadLen: 10}
	pkt := h.Marshal(nil)
	pkt[0] = 6 << 4
	if _, _, err := ParseIPv6(pkt); !errors.Is(err, ErrTruncated) {
		t.Error("missing payload accepted")
	}
}

func TestGRERoundTrip(t *testing.T) {
	for _, withSum := range []bool{false, true} {
		h := GREHeader{Protocol: EtherTypeIPv4, ChecksumPresent: withSum}
		payload := []byte("inner packet bytes")
		wire := h.Marshal(nil, payload)
		wire = append(wire, payload...)
		got, gotPayload, err := ParseGRE(wire)
		if err != nil {
			t.Fatalf("withSum=%v: %v", withSum, err)
		}
		if got.Protocol != EtherTypeIPv4 || got.ChecksumPresent != withSum {
			t.Errorf("header = %+v", got)
		}
		if !bytes.Equal(gotPayload, payload) {
			t.Error("payload mismatch")
		}
	}
}

func TestGREChecksumDetectsCorruption(t *testing.T) {
	h := GREHeader{Protocol: EtherTypeIPv4, ChecksumPresent: true}
	payload := []byte("payload under protection")
	wire := append(h.Marshal(nil, payload), payload...)
	wire[len(wire)-1] ^= 0x01
	if _, _, err := ParseGRE(wire); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestGREBadVersion(t *testing.T) {
	wire := make([]byte, 8)
	wire[1] = 0x01 // version bits
	if _, _, err := ParseGRE(wire); !errors.Is(err, ErrGREVersion) {
		t.Errorf("err = %v", err)
	}
}

func TestTunnelEncapDecap(t *testing.T) {
	var src, dst [16]byte
	src[0], dst[0] = 0xfd, 0xfd
	src[15], dst[15] = 1, 2
	tun := NewTunnel(src, dst)

	inner := mkIPv4([]byte("tunnel payload data"), ProtoUDP)
	wire, err := tun.Encap(inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != IPv6HeaderLen+GREHeaderLen+len(inner) {
		t.Errorf("wire length = %d", len(wire))
	}
	ip6, _, err := ParseIPv6(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ip6.NextHeader != ProtoGRE || ip6.Src != src || ip6.Dst != dst {
		t.Errorf("outer header = %+v", ip6)
	}
	got, err := Decap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, inner) {
		t.Error("decap mismatch")
	}
}

func TestTunnelWithChecksum(t *testing.T) {
	var src, dst [16]byte
	tun := NewTunnel(src, dst)
	tun.UseChecksum = true
	inner := mkIPv4([]byte("checksummed"), ProtoTCP)
	wire, err := tun.Encap(inner)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, inner) {
		t.Error("decap mismatch")
	}
}

func TestTunnelRejectsInvalidInner(t *testing.T) {
	tun := NewTunnel([16]byte{}, [16]byte{})
	if _, err := tun.Encap([]byte{1, 2, 3}); err == nil {
		t.Error("encap of garbage succeeded")
	}
	bad := mkIPv4([]byte("x"), ProtoUDP)
	bad[10] ^= 0xff // corrupt checksum
	if _, err := tun.Encap(bad); err == nil {
		t.Error("encap of corrupt packet succeeded")
	}
}

func TestDecapRejectsNonGRE(t *testing.T) {
	h := IPv6Header{NextHeader: ProtoUDP, PayloadLen: 0}
	if _, err := Decap(h.Marshal(nil)); err == nil {
		t.Error("decap of non-GRE succeeded")
	}
}

// Property: Encap then Decap is the identity for arbitrary payloads.
func TestEncapDecapProperty(t *testing.T) {
	var src, dst [16]byte
	src[15] = 9
	tun := NewTunnel(src, dst)
	f := func(payload []byte, tos, ttl uint8) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		if ttl == 0 {
			ttl = 1
		}
		h := IPv4Header{
			TOS:      tos,
			TotalLen: uint16(IPv4HeaderLen + len(payload)),
			TTL:      ttl,
			Protocol: ProtoUDP,
			Src:      [4]byte{192, 168, 0, 1},
			Dst:      [4]byte{192, 168, 0, 2},
		}
		inner := append(h.Marshal(nil), payload...)
		wire, err := tun.Encap(inner)
		if err != nil {
			return false
		}
		got, err := Decap(wire)
		return err == nil && bytes.Equal(got, inner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: corrupting any single header byte of a checksummed IPv4 packet
// is detected (checksum or structural validation).
func TestIPv4CorruptionDetectedProperty(t *testing.T) {
	f := func(pos, delta uint8) bool {
		pkt := mkIPv4([]byte("payload"), ProtoTCP)
		i := int(pos) % IPv4HeaderLen
		d := delta
		if d == 0 {
			d = 1
		}
		pkt[i] ^= d
		_, _, err := ParseIPv4(pkt)
		// Either rejected, or the corruption toggled bits that cancel in
		// the ones-complement sum — impossible for a single-byte flip.
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChecksumConcatMatchesContiguous(t *testing.T) {
	f := func(a, b []byte) bool {
		joined := append(append([]byte{}, a...), b...)
		return checksumConcat(a, b) == Checksum(joined)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGREHeaderLenField(t *testing.T) {
	h := GREHeader{}
	if h.Len() != 4 {
		t.Error("base len")
	}
	h.ChecksumPresent = true
	if h.Len() != 8 {
		t.Error("checksummed len")
	}
}

func TestIPv4FragFieldsRoundTrip(t *testing.T) {
	h := IPv4Header{
		TotalLen: IPv4HeaderLen,
		Flags:    0b010, // DF
		FragOff:  0x1ABC,
		TTL:      1,
	}
	pkt := h.Marshal(nil)
	got, _, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != 0b010 || got.FragOff != 0x1ABC {
		t.Errorf("flags/fragoff = %b/%#x", got.Flags, got.FragOff)
	}
	// Cross-check the wire encoding.
	if ff := binary.BigEndian.Uint16(pkt[6:]); ff != 0b010<<13|0x1ABC {
		t.Errorf("wire frag word = %#x", ff)
	}
}

// Package netproto implements the packet-processing substrate for the
// "packet encapsulation" and "packet steering" data plane workloads: byte-
// level Ethernet/IPv4/IPv6 header handling, the internet checksum, and GRE
// encapsulation of IPv4 within IPv6 (RFC 2784), the exact tunneling task the
// paper's evaluation uses.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers and EtherTypes used by the workloads.
const (
	ProtoTCP  = 6
	ProtoUDP  = 17
	ProtoGRE  = 47
	ProtoIPv4 = 4

	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86DD
)

// Header sizes in bytes.
const (
	IPv4HeaderLen = 20 // without options
	IPv6HeaderLen = 40
	GREHeaderLen  = 4 // base header, no optional fields
)

// Errors returned by parsers.
var (
	ErrTruncated   = errors.New("netproto: packet truncated")
	ErrBadVersion  = errors.New("netproto: wrong IP version")
	ErrBadChecksum = errors.New("netproto: header checksum mismatch")
	ErrBadIHL      = errors.New("netproto: bad IPv4 header length")
)

// Checksum computes the internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// IPv4Header is a fixed-size (optionless) IPv4 header.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits
	TTL      uint8
	Protocol uint8
	Src, Dst [4]byte
}

// Marshal appends the 20-byte header (with correct checksum) to b.
func (h *IPv4Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, IPv4HeaderLen)...)
	p := b[start:]
	p[0] = 4<<4 | 5 // version 4, IHL 5 words
	p[1] = h.TOS
	binary.BigEndian.PutUint16(p[2:], h.TotalLen)
	binary.BigEndian.PutUint16(p[4:], h.ID)
	binary.BigEndian.PutUint16(p[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	p[8] = h.TTL
	p[9] = h.Protocol
	// p[10:12] checksum zero for computation
	copy(p[12:16], h.Src[:])
	copy(p[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(p[10:], Checksum(p))
	return b
}

// ParseIPv4 decodes and validates a header, returning it and the payload.
func ParseIPv4(pkt []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(pkt) < IPv4HeaderLen {
		return h, nil, ErrTruncated
	}
	if pkt[0]>>4 != 4 {
		return h, nil, ErrBadVersion
	}
	ihl := int(pkt[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(pkt) < ihl {
		return h, nil, ErrBadIHL
	}
	if Checksum(pkt[:ihl]) != 0 {
		return h, nil, ErrBadChecksum
	}
	h.TOS = pkt[1]
	h.TotalLen = binary.BigEndian.Uint16(pkt[2:])
	h.ID = binary.BigEndian.Uint16(pkt[4:])
	ff := binary.BigEndian.Uint16(pkt[6:])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = pkt[8]
	h.Protocol = pkt[9]
	copy(h.Src[:], pkt[12:16])
	copy(h.Dst[:], pkt[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(pkt) {
		return h, nil, fmt.Errorf("netproto: total length %d outside packet of %d bytes: %w",
			h.TotalLen, len(pkt), ErrTruncated)
	}
	return h, pkt[ihl:h.TotalLen], nil
}

// IPv6Header is a fixed 40-byte IPv6 header.
type IPv6Header struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     [16]byte
}

// Marshal appends the 40-byte header to b.
func (h *IPv6Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, IPv6HeaderLen)...)
	p := b[start:]
	binary.BigEndian.PutUint32(p[0:], 6<<28|uint32(h.TrafficClass)<<20|h.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(p[4:], h.PayloadLen)
	p[6] = h.NextHeader
	p[7] = h.HopLimit
	copy(p[8:24], h.Src[:])
	copy(p[24:40], h.Dst[:])
	return b
}

// ParseIPv6 decodes a header, returning it and the payload.
func ParseIPv6(pkt []byte) (IPv6Header, []byte, error) {
	var h IPv6Header
	if len(pkt) < IPv6HeaderLen {
		return h, nil, ErrTruncated
	}
	w := binary.BigEndian.Uint32(pkt[0:])
	if w>>28 != 6 {
		return h, nil, ErrBadVersion
	}
	h.TrafficClass = uint8(w >> 20)
	h.FlowLabel = w & 0xfffff
	h.PayloadLen = binary.BigEndian.Uint16(pkt[4:])
	h.NextHeader = pkt[6]
	h.HopLimit = pkt[7]
	copy(h.Src[:], pkt[8:24])
	copy(h.Dst[:], pkt[24:40])
	if int(h.PayloadLen) > len(pkt)-IPv6HeaderLen {
		return h, nil, ErrTruncated
	}
	return h, pkt[IPv6HeaderLen : IPv6HeaderLen+int(h.PayloadLen)], nil
}

package netproto

import (
	"encoding/binary"
	"errors"
)

// GRE (RFC 2784) base header:
//
//	 0                   1                   2                   3
//	 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|C|       Reserved0       | Ver |         Protocol Type         |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|      Checksum (optional)      |       Reserved1 (Optional)    |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

// GREHeader is a GRE encapsulation header.
type GREHeader struct {
	ChecksumPresent bool
	Protocol        uint16 // EtherType of the encapsulated payload
	Checksum        uint16 // valid when ChecksumPresent
}

// GRE errors.
var (
	ErrGREVersion  = errors.New("netproto: unsupported GRE version")
	ErrGREReserved = errors.New("netproto: nonzero GRE reserved bits")
)

// Len returns the wire size of the header.
func (h *GREHeader) Len() int {
	if h.ChecksumPresent {
		return GREHeaderLen + 4
	}
	return GREHeaderLen
}

// Marshal appends the GRE header to b. payload is needed when the optional
// checksum is present (RFC 2784 §2.3: checksum over GRE header + payload).
func (h *GREHeader) Marshal(b, payload []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, h.Len())...)
	p := b[start:]
	if h.ChecksumPresent {
		p[0] = 0x80
	}
	binary.BigEndian.PutUint16(p[2:], h.Protocol)
	if h.ChecksumPresent {
		// Compute over the GRE header (checksum field zero) plus payload.
		sum := checksumConcat(p, payload)
		binary.BigEndian.PutUint16(p[4:], sum)
	}
	return b
}

// checksumConcat computes the internet checksum of a || b without copying.
func checksumConcat(a, b []byte) uint16 {
	var sum uint32
	add := func(data []byte, odd bool) bool {
		i := 0
		if odd && len(data) > 0 {
			// Pair the dangling byte from the previous buffer.
			sum += uint32(data[0])
			i = 1
		}
		for ; i+1 < len(data); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(data[i:]))
		}
		if (len(data)-i)%2 == 1 {
			sum += uint32(data[len(data)-1]) << 8
			return true
		}
		return false
	}
	odd := add(a, false)
	add(b, odd)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ParseGRE decodes a GRE header, returning it and the payload.
func ParseGRE(pkt []byte) (GREHeader, []byte, error) {
	var h GREHeader
	if len(pkt) < GREHeaderLen {
		return h, nil, ErrTruncated
	}
	flags := binary.BigEndian.Uint16(pkt[0:])
	if flags&0x0007 != 0 {
		return h, nil, ErrGREVersion
	}
	h.ChecksumPresent = flags&0x8000 != 0
	if flags&0x7ff8 != 0 {
		return h, nil, ErrGREReserved
	}
	h.Protocol = binary.BigEndian.Uint16(pkt[2:])
	n := h.Len()
	if len(pkt) < n {
		return h, nil, ErrTruncated
	}
	payload := pkt[n:]
	if h.ChecksumPresent {
		h.Checksum = binary.BigEndian.Uint16(pkt[4:])
		// With the transmitted checksum in place, the one's-complement sum
		// over header+payload folds to 0xffff, so Checksum() yields zero.
		if checksumConcat(pkt[:n], payload) != 0 {
			return h, nil, ErrBadChecksum
		}
	}
	return h, payload, nil
}

// Tunnel encapsulates IPv4 packets within IPv6+GRE, the paper's packet
// encapsulation workload (GRE protocol, IPv4 over IPv6).
type Tunnel struct {
	Src, Dst    [16]byte // tunnel endpoints
	HopLimit    uint8
	UseChecksum bool
	buf         []byte // reused between calls
}

// NewTunnel returns a tunnel between the given IPv6 endpoints.
func NewTunnel(src, dst [16]byte) *Tunnel {
	return &Tunnel{Src: src, Dst: dst, HopLimit: 64}
}

// Encap wraps an IPv4 packet in IPv6+GRE. The IPv4 packet is validated
// first (header checksum, length). The returned slice is reused across
// calls; callers that retain it must copy.
func (t *Tunnel) Encap(ipv4 []byte) ([]byte, error) {
	if _, _, err := ParseIPv4(ipv4); err != nil {
		return nil, err
	}
	gre := GREHeader{Protocol: EtherTypeIPv4, ChecksumPresent: t.UseChecksum}
	payloadLen := gre.Len() + len(ipv4)
	if payloadLen > 0xffff {
		return nil, errors.New("netproto: encapsulated packet too large")
	}
	ip6 := IPv6Header{
		PayloadLen: uint16(payloadLen),
		NextHeader: ProtoGRE,
		HopLimit:   t.HopLimit,
		Src:        t.Src,
		Dst:        t.Dst,
	}
	t.buf = t.buf[:0]
	t.buf = ip6.Marshal(t.buf)
	t.buf = gre.Marshal(t.buf, ipv4)
	t.buf = append(t.buf, ipv4...)
	return t.buf, nil
}

// Decap unwraps an IPv6+GRE packet produced by Encap, returning the inner
// IPv4 packet (a sub-slice of pkt).
func Decap(pkt []byte) ([]byte, error) {
	ip6, payload, err := ParseIPv6(pkt)
	if err != nil {
		return nil, err
	}
	if ip6.NextHeader != ProtoGRE {
		return nil, errors.New("netproto: not a GRE packet")
	}
	gre, inner, err := ParseGRE(payload)
	if err != nil {
		return nil, err
	}
	if gre.Protocol != EtherTypeIPv4 {
		return nil, errors.New("netproto: GRE payload is not IPv4")
	}
	if _, _, err := ParseIPv4(inner); err != nil {
		return nil, err
	}
	return inner, nil
}

package queue

import (
	"runtime"
	"sync"
	"testing"
)

// buffers returns one instance of each ring implementation behind the
// shared Buffer surface, so batch-semantics tests run against both.
func buffers(t *testing.T, capacity int) map[string]Buffer[int] {
	t.Helper()
	r, err := NewRing[int](capacity)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMPSC[int](capacity)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewMPMC[int](capacity)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Buffer[int]{"spsc": r, "mpsc": m, "mpmc": mm}
}

func TestPushPopBatchBasics(t *testing.T) {
	for name, b := range buffers(t, 8) {
		t.Run(name, func(t *testing.T) {
			if n := b.PushBatch(nil); n != 0 {
				t.Fatalf("PushBatch(nil) = %d", n)
			}
			if n := b.PushBatch([]int{1, 2, 3}); n != 3 {
				t.Fatalf("PushBatch = %d", n)
			}
			if b.Len() != 3 {
				t.Fatalf("Len = %d", b.Len())
			}
			// Overfill: only the free space is taken.
			if n := b.PushBatch([]int{4, 5, 6, 7, 8, 9, 10, 11}); n != 5 {
				t.Fatalf("PushBatch into 5 free = %d", n)
			}
			if n := b.PushBatch([]int{99}); n != 0 {
				t.Fatalf("PushBatch into full = %d", n)
			}
			dst := make([]int, 3)
			if n := b.PopBatch(dst); n != 3 || dst[0] != 1 || dst[2] != 3 {
				t.Fatalf("PopBatch = %d %v", n, dst)
			}
			big := make([]int, 16)
			if n := b.PopBatch(big); n != 5 || big[0] != 4 || big[4] != 8 {
				t.Fatalf("PopBatch rest = %d %v", n, big[:n])
			}
			if n := b.PopBatch(big); n != 0 {
				t.Fatalf("PopBatch from empty = %d", n)
			}
			if b.Len() != 0 {
				t.Fatalf("doorbell = %d after drain", b.Len())
			}
		})
	}
}

// Batch operations must handle the wraparound seam: a batch whose copy
// splits into two contiguous segments around the end of the backing
// array, for every possible cursor offset.
func TestBatchWraparoundBoundaries(t *testing.T) {
	const capacity = 8
	for name := range buffers(t, capacity) {
		t.Run(name, func(t *testing.T) {
			for off := 0; off < 2*capacity; off++ {
				b := buffers(t, capacity)[name]
				// Advance both cursors to the offset under test.
				for i := 0; i < off; i++ {
					if !b.Push(-1) {
						t.Fatal("prefill push failed")
					}
					if _, ok := b.Pop(); !ok {
						t.Fatal("prefill pop failed")
					}
				}
				// A batch that spans the seam for most offsets.
				in := []int{10, 11, 12, 13, 14, 15}
				if n := b.PushBatch(in); n != len(in) {
					t.Fatalf("off %d: PushBatch = %d", off, n)
				}
				if b.Len() != len(in) {
					t.Fatalf("off %d: Len = %d", off, b.Len())
				}
				dst := make([]int, len(in))
				// Split the pop so one of the two PopBatch calls crosses
				// the seam as well.
				if n := b.PopBatch(dst[:4]); n != 4 {
					t.Fatalf("off %d: PopBatch = %d", off, n)
				}
				if n := b.PopBatch(dst[4:]); n != 2 {
					t.Fatalf("off %d: PopBatch tail = %d", off, n)
				}
				for i, v := range dst {
					if v != 10+i {
						t.Fatalf("off %d: dst = %v", off, dst)
					}
				}
			}
		})
	}
}

// The hot-path operations of both rings must not allocate: the batched
// data path's zero-allocation claim starts here.
func TestRingOpsZeroAllocs(t *testing.T) {
	for name, b := range buffers(t, 64) {
		t.Run(name, func(t *testing.T) {
			vs := make([]int, 16)
			dst := make([]int, 16)
			if a := testing.AllocsPerRun(200, func() {
				if !b.Push(1) {
					t.Fatal("push failed")
				}
				if _, ok := b.Pop(); !ok {
					t.Fatal("pop failed")
				}
				if b.PushBatch(vs) != len(vs) {
					t.Fatal("push batch failed")
				}
				if b.PopBatch(dst) != len(dst) {
					t.Fatal("pop batch failed")
				}
			}); a != 0 {
				t.Errorf("allocs/op = %v, want 0", a)
			}
		})
	}
}

func TestMPSCSizeValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := NewMPSC[int](n); err == nil {
			t.Errorf("capacity %d accepted", n)
		}
	}
}

// item encodes producer identity and per-producer sequence so the
// consumer can check per-producer FIFO order.
func mkItem(producer, seq int) uint64 { return uint64(producer)<<32 | uint64(seq) }

// TestMPSCRacingProducers hammers one MPSC ring with producers mixing
// Push and PushBatch while a single consumer drains with PopBatch; run
// under -race this is the memory-model stress for the CAS-reserve /
// seq-publish protocol.
func TestMPSCRacingProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 20000
	)
	m, err := NewMPSC[uint64](256)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]uint64, 0, 7)
			seq := 0
			flush := func() {
				for len(batch) > 0 {
					n := m.PushBatch(batch)
					batch = batch[:copy(batch, batch[n:])]
					if n == 0 {
						runtime.Gosched()
					}
				}
			}
			for seq < perProd {
				if (seq+p)%3 == 0 {
					for !m.Push(mkItem(p, seq)) {
						runtime.Gosched()
					}
					seq++
					continue
				}
				for len(batch) < cap(batch) && seq < perProd {
					batch = append(batch, mkItem(p, seq))
					seq++
				}
				flush()
			}
			flush()
		}(p)
	}

	nextSeq := make([]int, producers)
	total := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		dst := make([]uint64, 64)
		for total < producers*perProd {
			n := m.PopBatch(dst)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for _, v := range dst[:n] {
				p, seq := int(v>>32), int(v&0xffffffff)
				if seq != nextSeq[p] {
					t.Errorf("producer %d: got seq %d, want %d", p, seq, nextSeq[p])
					return
				}
				nextSeq[p]++
			}
			total += n
		}
	}()
	wg.Wait()
	<-done
	if total != producers*perProd {
		t.Fatalf("consumed %d of %d", total, producers*perProd)
	}
	if m.Len() != 0 {
		t.Errorf("doorbell = %d after drain", m.Len())
	}
}

// FuzzMPSCAgainstOracle differences the MPSC ring against a mutex-guarded
// oracle: whatever interleaving the schedule produces, the consumed
// multiset must equal the multiset of accepted pushes, and each
// producer's items must come out in its push order.
func FuzzMPSCAgainstOracle(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint16(500), uint64(1))
	f.Add(uint8(1), uint8(2), uint16(100), uint64(42))
	f.Add(uint8(7), uint8(6), uint16(1000), uint64(0xdead))
	f.Fuzz(func(t *testing.T, prodRaw, capExp uint8, opsRaw uint16, seed uint64) {
		producers := int(prodRaw%8) + 1
		capacity := 1 << (int(capExp%7) + 1) // 2..128
		perProd := int(opsRaw%1000) + 1

		m, err := NewMPSC[uint64](capacity)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: mutex-guarded record of every accepted item.
		var oracleMu sync.Mutex
		accepted := make(map[uint64]bool)

		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := seed ^ uint64(p)*0x9e3779b97f4a7c15
				buf := make([]uint64, 0, 16)
				for seq := 0; seq < perProd; {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					if rng%2 == 0 {
						if m.Push(mkItem(p, seq)) {
							oracleMu.Lock()
							accepted[mkItem(p, seq)] = true
							oracleMu.Unlock()
							seq++
						} else {
							runtime.Gosched()
						}
						continue
					}
					k := int(rng/2%8) + 1
					buf = buf[:0]
					for j := 0; j < k && seq+j < perProd; j++ {
						buf = append(buf, mkItem(p, seq+j))
					}
					n := m.PushBatch(buf)
					oracleMu.Lock()
					for _, v := range buf[:n] {
						accepted[v] = true
					}
					oracleMu.Unlock()
					seq += n
					if n == 0 {
						runtime.Gosched()
					}
				}
			}(p)
		}

		prodDone := make(chan struct{})
		go func() { wg.Wait(); close(prodDone) }()

		consumed := make(map[uint64]bool)
		nextSeq := make([]int, producers)
		dst := make([]uint64, 32)
		drained := false
		for {
			n := m.PopBatch(dst)
			if n == 0 {
				if drained {
					break
				}
				select {
				case <-prodDone:
					// One more pass: items published before Wait returned
					// may still be in the ring.
					drained = true
				default:
					runtime.Gosched()
				}
				continue
			}
			drained = false
			for _, v := range dst[:n] {
				p, seq := int(v>>32), int(v&0xffffffff)
				if p >= producers || seq != nextSeq[p] {
					t.Fatalf("per-producer FIFO violated: producer %d seq %d, want %d", p, seq, nextSeq[p])
				}
				nextSeq[p]++
				if consumed[v] {
					t.Fatalf("item %x consumed twice", v)
				}
				consumed[v] = true
			}
		}

		if len(consumed) != len(accepted) {
			t.Fatalf("consumed %d items, oracle accepted %d", len(consumed), len(accepted))
		}
		for v := range accepted {
			if !consumed[v] {
				t.Fatalf("accepted item %x never consumed", v)
			}
		}
	})
}

package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"hyperplane/internal/mem"
	"hyperplane/internal/sim"
)

func TestQueueFIFO(t *testing.T) {
	q := &Queue{ID: 1}
	for i := 0; i < 5; i++ {
		if !q.Enqueue(Item{Seq: uint64(i)}) {
			t.Fatal("enqueue failed")
		}
	}
	if q.Len() != 5 || q.Empty() {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		it, ok := q.Dequeue()
		if !ok || it.Seq != uint64(i) {
			t.Fatalf("dequeue %d: %+v, %v", i, it, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
	if !q.Empty() {
		t.Fatal("not empty")
	}
}

func TestQueueMaxDepth(t *testing.T) {
	q := &Queue{MaxDepth: 2}
	q.Enqueue(Item{})
	q.Enqueue(Item{})
	if q.Enqueue(Item{}) {
		t.Fatal("overflow accepted")
	}
	if q.Drops() != 1 || q.Enqueued() != 2 {
		t.Errorf("drops=%d enqueued=%d", q.Drops(), q.Enqueued())
	}
	q.Dequeue()
	if !q.Enqueue(Item{}) {
		t.Fatal("enqueue after drain failed")
	}
}

func TestEnqueueBatch(t *testing.T) {
	q := &Queue{MaxDepth: 5}
	items := make([]Item, 4)
	for i := range items {
		items[i] = Item{Seq: uint64(i)}
	}
	if got := q.EnqueueBatch(items); got != 4 {
		t.Fatalf("EnqueueBatch = %d, want 4", got)
	}
	// Only one slot left: the batch is cut short and the remainder counts
	// as dropped, like a device overflowing its queue mid-burst.
	if got := q.EnqueueBatch(items); got != 1 {
		t.Fatalf("EnqueueBatch into nearly-full = %d, want 1", got)
	}
	if q.Drops() != 3 || q.Enqueued() != 5 {
		t.Errorf("drops=%d enqueued=%d", q.Drops(), q.Enqueued())
	}
	if it, ok := q.Dequeue(); !ok || it.Seq != 0 {
		t.Errorf("head after batches = %+v, %v", it, ok)
	}
}

func TestDequeueBatch(t *testing.T) {
	q := &Queue{}
	for i := 0; i < 10; i++ {
		q.Enqueue(Item{Seq: uint64(i)})
	}
	batch := q.DequeueBatch(4)
	if len(batch) != 4 || batch[0].Seq != 0 || batch[3].Seq != 3 {
		t.Fatalf("batch = %v", batch)
	}
	if q.Len() != 6 {
		t.Errorf("len = %d", q.Len())
	}
	rest := q.DequeueBatch(100)
	if len(rest) != 6 || rest[0].Seq != 4 {
		t.Fatalf("rest = %v", rest)
	}
	if q.DequeueBatch(5) != nil {
		t.Error("batch from empty queue")
	}
}

func TestQueueCompaction(t *testing.T) {
	q := &Queue{}
	// Heavy churn should not grow the backing slice without bound.
	for i := 0; i < 10000; i++ {
		q.Enqueue(Item{Seq: uint64(i)})
		if i%2 == 1 {
			q.Dequeue()
			q.Dequeue()
		}
	}
	for !q.Empty() {
		q.Dequeue()
	}
	if cap(q.items) > 4096 {
		t.Errorf("backing capacity grew to %d despite compaction", cap(q.items))
	}
}

func TestLayoutAddressing(t *testing.T) {
	l := DefaultLayout()
	if l.DoorbellAddr(0) != l.DoorbellBase {
		t.Error("doorbell 0")
	}
	if l.DoorbellAddr(1)-l.DoorbellAddr(0) != mem.LineSize {
		t.Error("doorbells not one line apart")
	}
	lo, hi := l.DoorbellRange(1000)
	if lo != l.DoorbellBase || hi != l.DoorbellBase+1000*mem.LineSize {
		t.Errorf("range = [%#x, %#x)", lo, hi)
	}
	// Buffers: distinct lines per queue/slot, wrapping at BufferLines.
	if l.BufferAddr(0, 0) == l.BufferAddr(1, 0) {
		t.Error("queues share buffer lines")
	}
	if l.BufferAddr(0, 0) != l.BufferAddr(0, l.BufferLines) {
		t.Error("buffer slots do not wrap")
	}
	if l.BufferAddr(0, 1)-l.BufferAddr(0, 0) != mem.LineSize {
		t.Error("buffer slots not line-spaced")
	}
}

func TestNewSet(t *testing.T) {
	l := DefaultLayout()
	qs := NewSet(8, l, 16)
	if len(qs) != 8 {
		t.Fatalf("count = %d", len(qs))
	}
	for i, q := range qs {
		if q.ID != i || q.Doorbell != l.DoorbellAddr(i) || q.MaxDepth != 16 {
			t.Errorf("queue %d misconfigured: %+v", i, q)
		}
	}
}

// Property: any interleaving of enqueues and dequeues preserves FIFO order
// and exact occupancy accounting.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := &Queue{}
		var next, expect uint64
		depth := 0
		for _, enq := range ops {
			if enq {
				q.Enqueue(Item{Seq: next})
				next++
				depth++
			} else {
				it, ok := q.Dequeue()
				if depth == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || it.Seq != expect {
					return false
				}
				expect++
				depth--
			}
			if q.Len() != depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRingBasics(t *testing.T) {
	r, err := NewRing[int](8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 || r.Len() != 0 {
		t.Fatal("fresh ring state")
	}
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 8 {
		t.Errorf("len = %d", r.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestRingSizeValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := NewRing[int](n); err == nil {
			t.Errorf("capacity %d accepted", n)
		}
	}
}

func TestRingSPSCConcurrent(t *testing.T) {
	r, _ := NewRing[uint64](1024)
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var bad bool
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			v, ok := r.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != i {
				bad = true
				return
			}
			i++
		}
	}()
	wg.Wait()
	if bad {
		t.Fatal("ring reordered or corrupted elements")
	}
	if r.Len() != 0 {
		t.Errorf("doorbell = %d after drain", r.Len())
	}
}

func TestRingDoorbellSemantics(t *testing.T) {
	r, _ := NewRing[string](4)
	db := r.Doorbell()
	r.Push("a")
	r.Push("b")
	if db.Load() != 2 {
		t.Errorf("doorbell = %d", db.Load())
	}
	r.Pop()
	if db.Load() != 1 {
		t.Errorf("doorbell after pop = %d", db.Load())
	}
}

func TestItemTimestampPreserved(t *testing.T) {
	q := &Queue{}
	q.Enqueue(Item{Enqueued: 5 * sim.Microsecond, Flow: 7})
	it, _ := q.Dequeue()
	if it.Enqueued != 5*sim.Microsecond || it.Flow != 7 {
		t.Error("item fields lost")
	}
}

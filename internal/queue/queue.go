// Package queue provides the I/O queue models used by the simulated data
// planes: FIFO task queues with doorbell semantics (an atomic counter of
// queued elements, incremented by producers and decremented by consumers,
// paper §III-A), plus the address layout that places each queue's doorbell
// in the reserved range snooped by the monitoring set.
package queue

import (
	"hyperplane/internal/mem"
	"hyperplane/internal/sim"
)

// Item is one work item (packet, request, or storage block descriptor).
type Item struct {
	Enqueued sim.Time // arrival time, for end-to-end latency accounting
	Flow     uint64   // flow/session identity for stateful workloads
	Seq      uint64   // global sequence number
}

// Queue is a simulated device-side or tenant-side memory-mapped queue.
// It holds pure state; memory-system costs (doorbell writes, head reads)
// are charged by the data plane code that manipulates it.
type Queue struct {
	ID       int
	Doorbell mem.Addr // cache line holding the atomic element counter
	items    []Item
	head     int
	// MaxDepth, if nonzero, bounds occupancy; Enqueue beyond it reports
	// drop (device queue overflow).
	MaxDepth int
	drops    int64
	enqueued int64
}

// Len returns the doorbell counter value (elements currently queued).
func (q *Queue) Len() int { return len(q.items) - q.head }

// Empty reports whether the queue holds no items.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Enqueue appends an item, returning false on overflow.
func (q *Queue) Enqueue(it Item) bool {
	if q.MaxDepth > 0 && q.Len() >= q.MaxDepth {
		q.drops++
		return false
	}
	// Compact lazily once the dead prefix dominates.
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	q.items = append(q.items, it)
	q.enqueued++
	return true
}

// EnqueueBatch appends items, returning the number accepted before
// MaxDepth overflow. The data plane code that calls it models a single
// coalesced doorbell write for the whole batch — the simulated analogue
// of the runtime rings' PushBatch.
func (q *Queue) EnqueueBatch(items []Item) int {
	for i, it := range items {
		if !q.Enqueue(it) {
			// Count the rest of the batch as dropped too.
			q.drops += int64(len(items) - i - 1)
			return i
		}
	}
	return len(items)
}

// Dequeue removes and returns the item at the head.
func (q *Queue) Dequeue() (Item, bool) {
	if q.Empty() {
		return Item{}, false
	}
	it := q.items[q.head]
	q.head++
	return it, true
}

// DequeueBatch removes up to max items.
func (q *Queue) DequeueBatch(max int) []Item {
	n := q.Len()
	if n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := q.items[q.head : q.head+n]
	q.head += n
	return out
}

// Drops returns the number of items rejected due to MaxDepth.
func (q *Queue) Drops() int64 { return q.drops }

// Enqueued returns the total number of accepted items.
func (q *Queue) Enqueued() int64 { return q.enqueued }

// Layout assigns the simulated physical addresses of doorbells, queue data,
// and task buffers. Doorbells live in a dedicated reserved range (the range
// QWAIT_init registers with the monitoring set); one cache line per queue so
// no two doorbells false-share.
type Layout struct {
	DoorbellBase mem.Addr
	BufferBase   mem.Addr
	// BufferLines is the per-queue task-buffer footprint in cache lines;
	// tasks cycle through these, creating the LLC pressure the paper
	// observes when total data outgrows the LLC.
	BufferLines int
}

// DefaultLayout mirrors the evaluation setup: doorbells at 1 GiB, buffers at
// 2 GiB with 64 lines (4 KiB) of task data per queue.
func DefaultLayout() Layout {
	return Layout{
		DoorbellBase: 1 << 30,
		BufferBase:   2 << 30,
		BufferLines:  64,
	}
}

// DoorbellAddr returns the doorbell line of queue qid.
func (l Layout) DoorbellAddr(qid int) mem.Addr {
	return l.DoorbellBase + mem.Addr(qid)*mem.LineSize
}

// DoorbellRange returns the [lo, hi) address range covering n doorbells,
// for monitoring-set range registration.
func (l Layout) DoorbellRange(n int) (lo, hi mem.Addr) {
	return l.DoorbellBase, l.DoorbellBase + mem.Addr(n)*mem.LineSize
}

// BufferAddr returns the slot-th task-buffer line of queue qid.
func (l Layout) BufferAddr(qid, slot int) mem.Addr {
	slot %= l.BufferLines
	return l.BufferBase + mem.Addr(qid*l.BufferLines+slot)*mem.LineSize
}

// NewSet builds n queues with doorbells laid out per l.
func NewSet(n int, l Layout, maxDepth int) []*Queue {
	qs := make([]*Queue, n)
	for i := range qs {
		qs[i] = &Queue{ID: i, Doorbell: l.DoorbellAddr(i), MaxDepth: maxDepth}
	}
	return qs
}

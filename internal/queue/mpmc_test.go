package queue

import (
	"runtime"
	"sync"
	"testing"
)

func TestMPMCSizeValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := NewMPMC[int](n); err == nil {
			t.Errorf("capacity %d accepted", n)
		}
	}
}

// TestMPMCRacingProducersConsumers hammers one MPMC ring from both ends:
// producers mixing Push and PushBatch, consumers mixing Pop and
// ClaimBatch. Under -race this is the memory-model stress for the
// double-CAS protocol. Checks: exactly-once delivery (no duplicates, no
// losses) and per-producer FIFO within each consumer's stream — the
// strongest order a shared queue with batch claims can promise.
func TestMPMCRacingProducersConsumers(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 20000
	)
	m, err := NewMPMC[uint64](128)
	if err != nil {
		t.Fatal(err)
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			batch := make([]uint64, 0, 7)
			seq := 0
			flush := func() {
				for len(batch) > 0 {
					n := m.PushBatch(batch)
					batch = batch[:copy(batch, batch[n:])]
					if n == 0 {
						runtime.Gosched()
					}
				}
			}
			for seq < perProd {
				if (seq+p)%3 == 0 {
					for !m.Push(mkItem(p, seq)) {
						runtime.Gosched()
					}
					seq++
					continue
				}
				for len(batch) < cap(batch) && seq < perProd {
					batch = append(batch, mkItem(p, seq))
					seq++
				}
				flush()
			}
			flush()
		}(p)
	}

	var (
		seenMu sync.Mutex
		seen   = make(map[uint64]int) // item -> consumer that claimed it
		total  int
	)
	prodDone := make(chan struct{})
	go func() { pwg.Wait(); close(prodDone) }()

	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			// Within this consumer's stream, each producer's sequence
			// numbers must be strictly increasing: batch claims take
			// contiguous ring spans, so interleaving cannot reorder one
			// producer's items inside a single consumer.
			lastSeq := [producers]int{}
			for i := range lastSeq {
				lastSeq[i] = -1
			}
			dst := make([]uint64, 48)
			drained := false
			for {
				var n int
				if c%2 == 0 {
					n = m.ClaimBatch(dst)
				} else if v, ok := m.Pop(); ok {
					dst[0], n = v, 1
				}
				if n == 0 {
					seenMu.Lock()
					done := total == producers*perProd
					seenMu.Unlock()
					if done {
						return
					}
					select {
					case <-prodDone:
						if drained {
							// One extra empty pass after producers exit:
							// whatever remains belongs to other consumers'
							// in-flight claims.
							return
						}
						drained = true
					default:
						runtime.Gosched()
					}
					continue
				}
				drained = false
				seenMu.Lock()
				for _, v := range dst[:n] {
					if prev, dup := seen[v]; dup {
						seenMu.Unlock()
						t.Errorf("item %x delivered to consumers %d and %d", v, prev, c)
						return
					}
					seen[v] = c
				}
				total += n
				seenMu.Unlock()
				for _, v := range dst[:n] {
					p, seq := int(v>>32), int(v&0xffffffff)
					if seq <= lastSeq[p] {
						t.Errorf("consumer %d: producer %d seq %d after %d", c, p, seq, lastSeq[p])
						return
					}
					lastSeq[p] = seq
				}
			}
		}(c)
	}
	cwg.Wait()
	if total != producers*perProd {
		t.Fatalf("consumed %d of %d", total, producers*perProd)
	}
	if m.Len() != 0 {
		t.Errorf("doorbell = %d after drain", m.Len())
	}
}

// TestMPMCClaimBatchZeroAllocs pins the steal path's zero-allocation
// claim: a steady-state PushBatch/ClaimBatch cycle must not allocate.
func TestMPMCClaimBatchZeroAllocs(t *testing.T) {
	m, err := NewMPMC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]int, 16)
	dst := make([]int, 16)
	if a := testing.AllocsPerRun(200, func() {
		if m.PushBatch(vs) != len(vs) {
			t.Fatal("push batch failed")
		}
		if m.ClaimBatch(dst) != len(dst) {
			t.Fatal("claim batch failed")
		}
	}); a != 0 {
		t.Errorf("allocs/op = %v, want 0", a)
	}
}

// FuzzMPMCAgainstOracle differences the MPMC ring against a mutex-guarded
// oracle with multiple concurrent consumers: the union of all consumers'
// claims must equal the set of accepted pushes, and no item may be
// delivered to more than one consumer — the lock-free SKIP LOCKED
// contract under whatever interleaving the schedule produces.
func FuzzMPMCAgainstOracle(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(4), uint16(500), uint64(1))
	f.Add(uint8(1), uint8(4), uint8(2), uint16(100), uint64(42))
	f.Add(uint8(7), uint8(3), uint8(6), uint16(1000), uint64(0xdead))
	f.Fuzz(func(t *testing.T, prodRaw, consRaw, capExp uint8, opsRaw uint16, seed uint64) {
		producers := int(prodRaw%8) + 1
		consumers := int(consRaw%8) + 1
		capacity := 1 << (int(capExp%7) + 1) // 2..128
		perProd := int(opsRaw%1000) + 1

		m, err := NewMPMC[uint64](capacity)
		if err != nil {
			t.Fatal(err)
		}
		var oracleMu sync.Mutex
		accepted := make(map[uint64]bool)

		var pwg sync.WaitGroup
		for p := 0; p < producers; p++ {
			pwg.Add(1)
			go func(p int) {
				defer pwg.Done()
				rng := seed ^ uint64(p)*0x9e3779b97f4a7c15
				buf := make([]uint64, 0, 16)
				for seq := 0; seq < perProd; {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					if rng%2 == 0 {
						if m.Push(mkItem(p, seq)) {
							oracleMu.Lock()
							accepted[mkItem(p, seq)] = true
							oracleMu.Unlock()
							seq++
						} else {
							runtime.Gosched()
						}
						continue
					}
					k := int(rng/2%8) + 1
					buf = buf[:0]
					for j := 0; j < k && seq+j < perProd; j++ {
						buf = append(buf, mkItem(p, seq+j))
					}
					n := m.PushBatch(buf)
					oracleMu.Lock()
					for _, v := range buf[:n] {
						accepted[v] = true
					}
					oracleMu.Unlock()
					seq += n
					if n == 0 {
						runtime.Gosched()
					}
				}
			}(p)
		}
		prodDone := make(chan struct{})
		go func() { pwg.Wait(); close(prodDone) }()

		var (
			consumedMu sync.Mutex
			consumed   = make(map[uint64]int)
			dupItem    uint64
			dupPair    [2]int
			dup        bool
		)
		var cwg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			cwg.Add(1)
			go func(c int) {
				defer cwg.Done()
				dst := make([]uint64, 32)
				drained := false
				for {
					n := m.ClaimBatch(dst)
					if n == 0 {
						select {
						case <-prodDone:
							if drained {
								return
							}
							drained = true
						default:
							runtime.Gosched()
						}
						continue
					}
					drained = false
					consumedMu.Lock()
					for _, v := range dst[:n] {
						if prev, ok := consumed[v]; ok && !dup {
							dup, dupItem, dupPair = true, v, [2]int{prev, c}
						}
						consumed[v] = c
					}
					consumedMu.Unlock()
				}
			}(c)
		}
		cwg.Wait()
		if dup {
			t.Fatalf("item %x delivered to consumers %d and %d", dupItem, dupPair[0], dupPair[1])
		}
		if len(consumed) != len(accepted) {
			t.Fatalf("consumed %d items, oracle accepted %d", len(consumed), len(accepted))
		}
		for v := range accepted {
			if _, ok := consumed[v]; !ok {
				t.Fatalf("accepted item %x never consumed", v)
			}
		}
	})
}

package queue

import "sync/atomic"

// MPSC is a bounded lock-free multi-producer single-consumer ring — the
// shared-queue variant of Ring for the paper's scale-up organization,
// where many tenant (or device) producers feed one queue that a data
// plane core drains. Producers reserve tail slots with a CAS and publish
// each slot through its own sequence number (Vyukov's bounded-queue
// scheme restricted to one consumer); the consumer side stays SPSC and
// wait-free. The element counter doubles as the doorbell, exactly like
// Ring: producers increment it after publishing, the consumer decrements
// it when dequeuing, and batch operations ring it once per batch.
//
// A producer that reserves slots and is descheduled before publishing
// them briefly hides later items from the consumer (slots publish in
// reservation order); the consumer simply observes an empty prefix and
// retries, which the notifier's re-arm protocol already tolerates as a
// spurious wake-up.
type MPSC[T any] struct {
	buf  []mpscSlot[T]
	mask uint64
	// head is the consumer cursor; tail is the producers' reservation
	// cursor. Padding keeps the hot words on distinct cache lines.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
	// count is the doorbell: number of published, unconsumed elements.
	count atomic.Int64
}

// mpscSlot pairs an element with its publication sequence: seq == pos
// means free for the producer that reserves position pos; seq == pos+1
// means published; seq == pos+capacity means free for the next lap.
type mpscSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// NewMPSC creates a multi-producer ring with the given power-of-two
// capacity.
func NewMPSC[T any](capacity int) (*MPSC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, ErrRingSize
	}
	m := &MPSC[T]{buf: make([]mpscSlot[T], capacity), mask: uint64(capacity - 1)}
	for i := range m.buf {
		m.buf[i].seq.Store(uint64(i))
	}
	return m, nil
}

// Push enqueues v, returning false if the ring is full. Safe for any
// number of concurrent producer goroutines.
func (m *MPSC[T]) Push(v T) bool {
	for {
		tail := m.tail.Load()
		s := &m.buf[tail&m.mask]
		switch seq := s.seq.Load(); {
		case seq == tail: // slot free for this position
			if m.tail.CompareAndSwap(tail, tail+1) {
				s.val = v
				s.seq.Store(tail + 1) // publish the slot
				m.count.Add(1)        // ring the doorbell
				return true
			}
		case seq < tail: // occupied since one lap ago: full
			return false
		default: // another producer took the slot; reload tail
		}
	}
}

// PushBatch reserves up to len(vs) contiguous slots with a single CAS,
// fills them, publishes each slot's sequence, and rings the doorbell once
// for the whole batch. It returns the number enqueued (0 when full).
// Safe for any number of concurrent producer goroutines; each producer's
// batch occupies contiguous positions, so per-producer FIFO order holds.
func (m *MPSC[T]) PushBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	var tail uint64
	var n int
	for {
		tail = m.tail.Load()
		// The head snapshot may be stale, but head only advances, so the
		// computed free space is an underestimate — never a reservation of
		// slots the consumer has not recycled.
		free := len(m.buf) - int(tail-m.head.Load())
		n = len(vs)
		if n > free {
			n = free
		}
		if n <= 0 {
			return 0
		}
		if m.tail.CompareAndSwap(tail, tail+uint64(n)) {
			break
		}
	}
	for j := 0; j < n; j++ {
		s := &m.buf[(tail+uint64(j))&m.mask]
		s.val = vs[j]
		s.seq.Store(tail + uint64(j) + 1)
	}
	m.count.Add(int64(n)) // ring the doorbell once
	return n
}

// Pop dequeues the oldest published element, returning false if none is
// published. Safe for a single consumer goroutine.
func (m *MPSC[T]) Pop() (T, bool) {
	var zero T
	head := m.head.Load()
	s := &m.buf[head&m.mask]
	if s.seq.Load() != head+1 {
		return zero, false // empty, or the reserving producer has not published yet
	}
	m.count.Add(-1)
	v := s.val
	s.val = zero
	s.seq.Store(head + uint64(len(m.buf))) // recycle for the next lap
	m.head.Store(head + 1)
	return v, true
}

// PopBatch dequeues up to len(dst) published elements into dst,
// decrementing the doorbell and publishing the consumer cursor once per
// batch. It stops at the first unpublished slot, so items never reorder.
// Safe for a single consumer goroutine.
func (m *MPSC[T]) PopBatch(dst []T) int {
	var zero T
	head := m.head.Load()
	n := 0
	for n < len(dst) {
		s := &m.buf[(head+uint64(n))&m.mask]
		if s.seq.Load() != head+uint64(n)+1 {
			break
		}
		dst[n] = s.val
		s.val = zero
		s.seq.Store(head + uint64(n) + uint64(len(m.buf)))
		n++
	}
	if n == 0 {
		return 0
	}
	m.count.Add(-int64(n))
	m.head.Store(head + uint64(n))
	return n
}

// Len returns the doorbell counter.
func (m *MPSC[T]) Len() int {
	n := m.count.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap returns the ring capacity.
func (m *MPSC[T]) Cap() int { return len(m.buf) }

// Doorbell exposes the counter for notification integration.
func (m *MPSC[T]) Doorbell() *atomic.Int64 { return &m.count }

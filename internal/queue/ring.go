package queue

import (
	"errors"
	"sync/atomic"
)

// Ring is a real (not simulated) lock-free single-producer single-consumer
// ring buffer, the shared-memory queue used between tenants and the
// software data plane in the runtime library. The element counter doubles
// as the queue's doorbell: producers increment it after enqueuing and
// consumers decrement it before dequeuing, exactly the semantics the
// monitoring set watches in hardware.
type Ring[T any] struct {
	buf  []T
	mask uint64
	// head is the consumer cursor, tail the producer cursor. Padding keeps
	// the two hot words on distinct cache lines to avoid false sharing.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
	// count is the doorbell: number of committed, unconsumed elements.
	count atomic.Int64
}

// ErrRingSize reports an invalid ring capacity.
var ErrRingSize = errors.New("queue: ring capacity must be a power of two >= 2")

// NewRing creates a ring with the given power-of-two capacity.
func NewRing[T any](capacity int) (*Ring[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, ErrRingSize
	}
	return &Ring[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}, nil
}

// Push enqueues v, returning false if the ring is full. Safe for a single
// producer goroutine.
func (r *Ring[T]) Push(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1) // publish the slot
	r.count.Add(1)         // ring the doorbell
	return true
}

// Pop dequeues the oldest element, returning false if the ring is empty.
// Safe for a single consumer goroutine.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false
	}
	// Decrement the doorbell before dequeuing (paper §III-A semantics).
	r.count.Add(-1)
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // release references
	r.head.Store(head + 1)
	return v, true
}

// PushBatch enqueues as many of vs as fit, copying them in at most two
// contiguous segments, publishing the producer cursor once, and ringing
// the doorbell once for the whole batch — the producer pays two
// sequentially-consistent atomics per *batch* instead of per element. It
// returns the number enqueued. Safe for a single producer goroutine.
func (r *Ring[T]) PushBatch(vs []T) int {
	tail := r.tail.Load()
	free := len(r.buf) - int(tail-r.head.Load())
	n := len(vs)
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	i := int(tail & r.mask)
	c := copy(r.buf[i:], vs[:n])
	copy(r.buf, vs[c:n])
	r.tail.Store(tail + uint64(n)) // publish the whole segment
	r.count.Add(int64(n))          // ring the doorbell once
	return n
}

// PopBatch dequeues up to len(dst) elements into dst, copying out in at
// most two contiguous segments, decrementing the doorbell once and
// publishing the consumer cursor once per batch. It returns the number
// dequeued. Safe for a single consumer goroutine.
func (r *Ring[T]) PopBatch(dst []T) int {
	head := r.head.Load()
	avail := int(r.tail.Load() - head)
	n := len(dst)
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	r.count.Add(-int64(n)) // doorbell first (paper §III-A semantics)
	i := int(head & r.mask)
	c := copy(dst[:n], r.buf[i:])
	copy(dst[c:n], r.buf)
	clear(r.buf[i : i+c]) // release references
	clear(r.buf[:n-c])
	r.head.Store(head + uint64(n))
	return n
}

// Len returns the doorbell counter.
func (r *Ring[T]) Len() int {
	n := r.count.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Doorbell exposes the counter for notification integration: the runtime
// Notifier watches it the way the monitoring set watches the doorbell line.
func (r *Ring[T]) Doorbell() *atomic.Int64 { return &r.count }

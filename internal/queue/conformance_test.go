package queue

import (
	"math/rand"
	"testing"
)

// bufferFactories enumerates every Buffer implementation by
// constructor, so the conformance suite instantiates fresh instances
// per case instead of sharing one ring across subtests.
func bufferFactories() map[string]func(capacity int) (Buffer[int], error) {
	return map[string]func(capacity int) (Buffer[int], error){
		"spsc": func(c int) (Buffer[int], error) { return NewRing[int](c) },
		"mpsc": func(c int) (Buffer[int], error) { return NewMPSC[int](c) },
		"mpmc": func(c int) (Buffer[int], error) { return NewMPMC[int](c) },
	}
}

// TestBufferConformanceFIFO: driven single-threaded, every Buffer is a
// strict FIFO regardless of how pushes and pops are batched.
func TestBufferConformanceFIFO(t *testing.T) {
	for name, mk := range bufferFactories() {
		t.Run(name, func(t *testing.T) {
			b, err := mk(16)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			next, expect := 0, 0
			dst := make([]int, 8)
			for step := 0; step < 10000; step++ {
				if rng.Intn(2) == 0 {
					k := rng.Intn(len(dst)) + 1
					vs := make([]int, k)
					for i := range vs {
						vs[i] = next + i
					}
					next += b.PushBatch(vs)
				} else {
					for _, v := range dst[:b.PopBatch(dst[:rng.Intn(len(dst))+1])] {
						if v != expect {
							t.Fatalf("step %d: popped %d, want %d", step, v, expect)
						}
						expect++
					}
				}
				if got, want := b.Len(), next-expect; got != want {
					t.Fatalf("step %d: Len = %d, want %d", step, got, want)
				}
			}
		})
	}
}

// TestBufferConformanceFullEmpty: edge returns at the boundaries are
// identical across implementations — full rejects with false/0, empty
// returns false/0, and neither corrupts the cursors.
func TestBufferConformanceFullEmpty(t *testing.T) {
	for name, mk := range bufferFactories() {
		t.Run(name, func(t *testing.T) {
			const capacity = 8
			b, err := mk(capacity)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := b.Pop(); ok {
				t.Fatal("Pop from empty succeeded")
			}
			if n := b.PopBatch(make([]int, 4)); n != 0 {
				t.Fatalf("PopBatch from empty = %d", n)
			}
			for i := 0; i < capacity; i++ {
				if !b.Push(i) {
					t.Fatalf("Push %d into non-full failed", i)
				}
			}
			if b.Push(99) {
				t.Fatal("Push into full succeeded")
			}
			if n := b.PushBatch([]int{99, 98}); n != 0 {
				t.Fatalf("PushBatch into full = %d", n)
			}
			if b.Len() != capacity || b.Cap() != capacity {
				t.Fatalf("Len/Cap = %d/%d", b.Len(), b.Cap())
			}
			// Drain: everything comes back intact after the rejections.
			for i := 0; i < capacity; i++ {
				v, ok := b.Pop()
				if !ok || v != i {
					t.Fatalf("Pop %d = (%d, %v)", i, v, ok)
				}
			}
			if _, ok := b.Pop(); ok {
				t.Fatal("Pop after drain succeeded")
			}
		})
	}
}

// TestBufferConformanceWraparound: cursors crossing the capacity
// boundary many laps over preserve contents for every implementation.
func TestBufferConformanceWraparound(t *testing.T) {
	for name, mk := range bufferFactories() {
		t.Run(name, func(t *testing.T) {
			const capacity = 4
			b, err := mk(capacity)
			if err != nil {
				t.Fatal(err)
			}
			// 10 laps of a ring kept at partial occupancy forces every
			// slot through repeated recycles at every cursor phase.
			next, expect := 0, 0
			for lap := 0; lap < 10*capacity; lap++ {
				for b.Len() < capacity-1 {
					if !b.Push(next) {
						t.Fatalf("lap %d: push rejected below capacity", lap)
					}
					next++
				}
				v, ok := b.Pop()
				if !ok || v != expect {
					t.Fatalf("lap %d: Pop = (%d, %v), want %d", lap, v, ok, expect)
				}
				expect++
			}
		})
	}
}

// TestBufferConformanceBatchOneEquivalence drives two fresh instances of
// the same implementation with one deterministic op sequence — one using
// single-element ops, the other batch ops of size 1 — and requires
// identical accept/reject results, values, and Len at every step:
// batch-size-1 must be indistinguishable from the single-op API.
func TestBufferConformanceBatchOneEquivalence(t *testing.T) {
	for name, mk := range bufferFactories() {
		t.Run(name, func(t *testing.T) {
			single, err := mk(8)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := mk(8)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(23))
			one := make([]int, 1)
			for step := 0; step < 5000; step++ {
				if rng.Intn(2) == 0 {
					v := step
					ok := single.Push(v)
					one[0] = v
					bn := batched.PushBatch(one)
					if ok != (bn == 1) {
						t.Fatalf("step %d: Push=%v PushBatch=%d", step, ok, bn)
					}
				} else {
					v, ok := single.Pop()
					bn := batched.PopBatch(one)
					if ok != (bn == 1) {
						t.Fatalf("step %d: Pop ok=%v PopBatch=%d", step, ok, bn)
					}
					if ok && v != one[0] {
						t.Fatalf("step %d: Pop=%d PopBatch=%d", step, v, one[0])
					}
				}
				if single.Len() != batched.Len() {
					t.Fatalf("step %d: Len %d vs %d", step, single.Len(), batched.Len())
				}
			}
		})
	}
}

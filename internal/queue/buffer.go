package queue

import "sync/atomic"

// Buffer is the ring surface shared by the SPSC Ring and the
// multi-producer MPSC ring: doorbell-counted push/pop with batch
// variants that publish cursors and ring the doorbell once per batch.
// The runtime Queue and the dataplane accept either implementation, so a
// queue can be flipped from per-tenant SPSC to shared MPSC without
// touching the consumer side.
type Buffer[T any] interface {
	// Push enqueues one element, returning false when full.
	Push(v T) bool
	// PushBatch enqueues as many of vs as fit, ringing the doorbell once;
	// it returns the number enqueued.
	PushBatch(vs []T) int
	// Pop dequeues the oldest element, returning false when empty.
	Pop() (T, bool)
	// PopBatch dequeues up to len(dst) elements into dst, ringing the
	// doorbell once; it returns the number dequeued.
	PopBatch(dst []T) int
	// Len returns the doorbell counter.
	Len() int
	// Cap returns the ring capacity.
	Cap() int
	// Doorbell exposes the element counter for notifier registration.
	Doorbell() *atomic.Int64
}

// Compile-time checks: all three rings satisfy Buffer.
var (
	_ Buffer[int] = (*Ring[int])(nil)
	_ Buffer[int] = (*MPSC[int])(nil)
	_ Buffer[int] = (*MPMC[int])(nil)
)

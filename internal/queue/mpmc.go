package queue

import (
	"runtime"
	"sync/atomic"
)

// MPMC is a bounded lock-free multi-producer multi-consumer ring — the
// fully shared-queue organization of the paper's scale-up path, where any
// data plane worker may drain any tenant's queue. The producer side is
// MPSC's: a single CAS reserves a whole batch of tail slots and each slot
// publishes through its own sequence number. The consumer side
// generalizes the same discipline to many workers: ClaimBatch scans the
// contiguous published prefix at the head and claims all of it with a
// single CAS on the head cursor — the lock-free analog of
// `SELECT ... FOR UPDATE SKIP LOCKED` — so one hot queue can feed several
// stealing workers without a lock and without double delivery. The
// element counter doubles as the doorbell, exactly like Ring and MPSC.
//
// Two blocking caveats, both bounded and both tolerated by the notifier's
// re-arm protocol as spurious wake-ups:
//
//   - A producer descheduled between reservation and publication briefly
//     hides later items (slots publish in reservation order), as on MPSC.
//   - A consumer descheduled between its head CAS and the slot recycles
//     briefly holds producers out of those slots when the ring is nearly
//     full: unlike MPSC, the head cursor advances before the slots are
//     recycled, so a producer that batch-reserved them waits for each
//     slot's recycle before writing (the wait is one load in the common
//     case).
type MPMC[T any] struct {
	buf  []mpscSlot[T]
	mask uint64
	// head is the consumers' claim cursor; tail is the producers'
	// reservation cursor. Padding keeps the hot words on distinct cache
	// lines.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
	// count is the doorbell: number of published, unconsumed elements.
	count atomic.Int64
}

// NewMPMC creates a multi-producer multi-consumer ring with the given
// power-of-two capacity.
func NewMPMC[T any](capacity int) (*MPMC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, ErrRingSize
	}
	m := &MPMC[T]{buf: make([]mpscSlot[T], capacity), mask: uint64(capacity - 1)}
	for i := range m.buf {
		m.buf[i].seq.Store(uint64(i))
	}
	return m, nil
}

// Push enqueues v, returning false if the ring is full. Safe for any
// number of concurrent producer goroutines.
func (m *MPMC[T]) Push(v T) bool {
	for {
		tail := m.tail.Load()
		s := &m.buf[tail&m.mask]
		switch seq := s.seq.Load(); {
		case seq == tail: // slot free for this position
			if m.tail.CompareAndSwap(tail, tail+1) {
				s.val = v
				s.seq.Store(tail + 1) // publish the slot
				m.count.Add(1)        // ring the doorbell
				return true
			}
		case seq < tail: // occupied (or claimed, not yet recycled): full
			return false
		default: // another producer took the slot; reload tail
		}
	}
}

// PushBatch reserves up to len(vs) contiguous slots with a single CAS,
// fills them, publishes each slot's sequence, and rings the doorbell once
// for the whole batch. It returns the number enqueued (0 when full).
// Safe for any number of concurrent producer goroutines; each producer's
// batch occupies contiguous positions, so per-producer FIFO order holds.
func (m *MPMC[T]) PushBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	var tail uint64
	var n int
	for {
		tail = m.tail.Load()
		// The head snapshot may be stale, but head only advances, so the
		// computed free space is an underestimate of the claimed-or-free
		// span. Unlike MPSC, a claimed slot may not be recycled yet (the
		// claiming consumer advances head before copying out), so each
		// reserved slot is re-checked below before the write.
		free := len(m.buf) - int(tail-m.head.Load())
		n = len(vs)
		if n > free {
			n = free
		}
		if n <= 0 {
			return 0
		}
		if m.tail.CompareAndSwap(tail, tail+uint64(n)) {
			break
		}
	}
	for j := 0; j < n; j++ {
		pos := tail + uint64(j)
		s := &m.buf[pos&m.mask]
		// Wait out a claiming consumer that has moved head past this
		// slot's previous lap but not recycled it yet. One load in the
		// common case; the consumer recycles unconditionally after its
		// claim CAS, so the wait is bounded by its copy-out.
		for s.seq.Load() != pos {
			runtime.Gosched()
		}
		s.val = vs[j]
		s.seq.Store(pos + 1)
	}
	m.count.Add(int64(n)) // ring the doorbell once
	return n
}

// Pop dequeues the oldest published element, returning false if none is
// published. Safe for any number of concurrent consumer goroutines: the
// claim is a CAS on the head cursor.
func (m *MPMC[T]) Pop() (T, bool) {
	var zero T
	for {
		head := m.head.Load()
		s := &m.buf[head&m.mask]
		if s.seq.Load() != head+1 {
			if m.head.Load() != head {
				continue // lost a claim race; re-read the cursor
			}
			return zero, false // empty, or the head slot is not published yet
		}
		if m.head.CompareAndSwap(head, head+1) {
			m.count.Add(-1)
			v := s.val
			s.val = zero
			s.seq.Store(head + uint64(len(m.buf))) // recycle for the next lap
			return v, true
		}
	}
}

// ClaimBatch claims up to len(dst) published elements for this consumer
// with a single CAS on the head cursor: the contiguous published prefix
// is scanned, claimed whole, then copied out and recycled. Between the
// scan and the CAS no other consumer can touch the scanned slots without
// advancing head — which makes the CAS fail — so a successful claim owns
// every slot it covers exclusively: items are delivered exactly once,
// with no locks and no skips. Returns the number claimed (0 when empty).
// Safe for any number of concurrent consumers and producers.
func (m *MPMC[T]) ClaimBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	var zero T
	for {
		head := m.head.Load()
		n := 0
		for n < len(dst) {
			pos := head + uint64(n)
			if m.buf[pos&m.mask].seq.Load() != pos+1 {
				break
			}
			n++
		}
		if n == 0 {
			if m.head.Load() != head {
				continue // another consumer claimed under us; rescan
			}
			return 0
		}
		if !m.head.CompareAndSwap(head, head+uint64(n)) {
			continue
		}
		// Claimed: doorbell decrement before the copy (paper §III-A),
		// once for the whole batch.
		m.count.Add(-int64(n))
		for j := 0; j < n; j++ {
			pos := head + uint64(j)
			s := &m.buf[pos&m.mask]
			dst[j] = s.val
			s.val = zero
			s.seq.Store(pos + uint64(len(m.buf)))
		}
		return n
	}
}

// PopBatch dequeues up to len(dst) published elements into dst. It is
// ClaimBatch under the Buffer interface name; safe for any number of
// concurrent consumers.
func (m *MPMC[T]) PopBatch(dst []T) int { return m.ClaimBatch(dst) }

// Len returns the doorbell counter.
func (m *MPMC[T]) Len() int {
	n := m.count.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap returns the ring capacity.
func (m *MPMC[T]) Cap() int { return len(m.buf) }

// Doorbell exposes the counter for notification integration.
func (m *MPMC[T]) Doorbell() *atomic.Int64 { return &m.count }

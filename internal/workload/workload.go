// Package workload defines the six data plane tasks of the HyperPlane
// evaluation (§V-A) as simulation specs: calibrated service-time
// distributions, instruction counts for the IPC model, and cache-footprint
// parameters. The real Go implementations of each kernel live in their own
// packages (netproto, cryptofwd, steering, erasure, raidp, dispatch); the
// calibrated means here track the relative costs the paper's Fig. 8
// reports.
package workload

import (
	"fmt"
	"math"

	"hyperplane/internal/sim"
)

// Spec describes one data plane task for the simulator.
type Spec struct {
	Name string
	// ServiceMean is the mean per-item processing time on a data plane
	// core (compute only, excluding notification and queue accesses).
	ServiceMean sim.Time
	// CV is the coefficient of variation of service time; items draw from
	// a two-point (hyperexponential-like) mixture achieving this CV,
	// keeping tails realistic without heavy math.
	CV float64
	// BufferLinesPerItem is how many task-buffer cache lines one item
	// touches; together with the per-queue buffer pool this creates the
	// LLC pressure seen at high queue counts.
	BufferLinesPerItem int
	// UsefulIPC is the core IPC while executing this task (memory-bound
	// tasks run lower). Used to derive instructions for work-
	// proportionality accounting.
	UsefulIPC float64
}

// Instructions returns the useful instruction count of one item at the
// given clock.
func (s Spec) Instructions(clock sim.Clock) int64 {
	cycles := float64(clock.ToCycles(s.ServiceMean))
	return int64(cycles * s.UsefulIPC)
}

// The six paper workloads. Service means are calibrated so that single-core
// peak throughputs match the magnitudes of the paper's Fig. 8 (e.g. packet
// encapsulation ~0.7 M tasks/s, crypto forwarding ~0.15 M tasks/s).
var (
	PacketEncap = Spec{
		Name:               "packet-encapsulation",
		ServiceMean:        1300 * sim.Nanosecond,
		CV:                 0.30,
		BufferLinesPerItem: 4,
		UsefulIPC:          1.6,
	}
	CryptoForward = Spec{
		Name:               "crypto-forwarding",
		ServiceMean:        6200 * sim.Nanosecond,
		CV:                 0.20,
		BufferLinesPerItem: 8,
		UsefulIPC:          2.0,
	}
	PacketSteering = Spec{
		Name:               "packet-steering",
		ServiceMean:        2600 * sim.Nanosecond,
		CV:                 0.35,
		BufferLinesPerItem: 3,
		UsefulIPC:          1.2,
	}
	ErasureCoding = Spec{
		Name:               "erasure-coding",
		ServiceMean:        8500 * sim.Nanosecond,
		CV:                 0.15,
		BufferLinesPerItem: 12,
		UsefulIPC:          1.8,
	}
	RAIDProtection = Spec{
		Name:               "raid-protection",
		ServiceMean:        4200 * sim.Nanosecond,
		CV:                 0.15,
		BufferLinesPerItem: 10,
		UsefulIPC:          1.7,
	}
	RequestDispatch = Spec{
		Name:               "request-dispatching",
		ServiceMean:        1450 * sim.Nanosecond,
		CV:                 0.45,
		BufferLinesPerItem: 2,
		UsefulIPC:          1.1,
	}
)

// All lists the six workloads in the paper's order.
var All = []Spec{
	PacketEncap,
	CryptoForward,
	PacketSteering,
	ErasureCoding,
	RAIDProtection,
	RequestDispatch,
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Sampler draws per-item service times with the spec's mean and CV using a
// two-point exponential mixture: with probability p items are "long" with
// mean m2, otherwise "short" with mean m1. Solves for (p, m1, m2) to match
// mean and CV; CV <= 1 degrades to a shifted-deterministic + exponential
// blend.
type Sampler struct {
	spec Spec
	rng  *sim.RNG
}

// NewSampler binds a spec to a random stream.
func NewSampler(spec Spec, rng *sim.RNG) *Sampler {
	return &Sampler{spec: spec, rng: rng}
}

// Spec returns the bound workload spec.
func (s *Sampler) Spec() Spec { return s.spec }

// Next draws one service time.
func (s *Sampler) Next() sim.Time {
	mean := float64(s.spec.ServiceMean)
	cv := s.spec.CV
	switch {
	case cv <= 0:
		return s.spec.ServiceMean
	case cv < 1:
		// Deterministic floor + exponential tail: X = (1-cv)*mean + Exp(cv*mean)
		// has mean `mean` and stddev cv*mean.
		floor := (1 - cv) * mean
		return sim.Time(floor) + s.rng.Exp(sim.Time(cv*mean))
	case cv == 1:
		return s.rng.Exp(s.spec.ServiceMean)
	default:
		// Hyperexponential with balanced means for CV > 1.
		c2 := cv * cv
		p := 0.5 * (1 - math.Sqrt((c2-1)/(c2+1)))
		var m float64
		if s.rng.Float64() < p {
			m = mean / (2 * p)
		} else {
			m = mean / (2 * (1 - p))
		}
		return s.rng.Exp(sim.Time(m))
	}
}

package workload

import (
	"math"
	"testing"

	"hyperplane/internal/sim"
	"hyperplane/internal/stats"
)

func TestAllSpecsSane(t *testing.T) {
	if len(All) != 6 {
		t.Fatalf("expected 6 workloads, got %d", len(All))
	}
	seen := map[string]bool{}
	for _, s := range All {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("bad/duplicate name %q", s.Name)
		}
		seen[s.Name] = true
		if s.ServiceMean < sim.Microsecond || s.ServiceMean > 20*sim.Microsecond {
			t.Errorf("%s: service mean %v outside the paper's us-scale regime", s.Name, s.ServiceMean)
		}
		if s.CV < 0 || s.CV > 2 {
			t.Errorf("%s: CV %v out of range", s.Name, s.CV)
		}
		if s.BufferLinesPerItem <= 0 || s.UsefulIPC <= 0 {
			t.Errorf("%s: non-positive footprint or IPC", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("crypto-forwarding")
	if err != nil || s.Name != "crypto-forwarding" {
		t.Fatalf("ByName: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestInstructions(t *testing.T) {
	clock := sim.NewClock(3.0)
	n := PacketEncap.Instructions(clock)
	// 1300ns at 3GHz is ~3900 cycles; at IPC 1.6 that's ~6240 instructions.
	if n < 5500 || n > 7000 {
		t.Errorf("instructions = %d", n)
	}
}

func TestSamplerMeanAndCV(t *testing.T) {
	for _, spec := range All {
		s := NewSampler(spec, sim.NewRNG(11, 5))
		var sum stats.Summary
		const n = 100000
		for i := 0; i < n; i++ {
			d := s.Next()
			if d < 0 {
				t.Fatalf("%s: negative service time", spec.Name)
			}
			sum.Add(float64(d))
		}
		mean := sum.Mean()
		wantMean := float64(spec.ServiceMean)
		if math.Abs(mean-wantMean) > wantMean*0.03 {
			t.Errorf("%s: mean %.0f, want ~%.0f", spec.Name, mean, wantMean)
		}
		cv := sum.Stddev() / mean
		if math.Abs(cv-spec.CV) > 0.08 {
			t.Errorf("%s: CV %.3f, want ~%.2f", spec.Name, cv, spec.CV)
		}
	}
}

func TestSamplerDeterministicCV0(t *testing.T) {
	spec := Spec{Name: "det", ServiceMean: 2 * sim.Microsecond, CV: 0, UsefulIPC: 1, BufferLinesPerItem: 1}
	s := NewSampler(spec, sim.NewRNG(1, 1))
	for i := 0; i < 100; i++ {
		if s.Next() != 2*sim.Microsecond {
			t.Fatal("CV=0 sampler not deterministic")
		}
	}
}

func TestSamplerHyperexponential(t *testing.T) {
	spec := Spec{Name: "hx", ServiceMean: sim.Microsecond, CV: 1.5, UsefulIPC: 1, BufferLinesPerItem: 1}
	s := NewSampler(spec, sim.NewRNG(4, 2))
	var sum stats.Summary
	for i := 0; i < 200000; i++ {
		sum.Add(float64(s.Next()))
	}
	mean := sum.Mean()
	if math.Abs(mean-float64(sim.Microsecond)) > float64(sim.Microsecond)*0.05 {
		t.Errorf("mean = %.0f", mean)
	}
	cv := sum.Stddev() / mean
	if cv < 1.3 || cv > 1.7 {
		t.Errorf("CV = %.3f, want ~1.5", cv)
	}
}

func TestSamplerExponential(t *testing.T) {
	spec := Spec{Name: "exp", ServiceMean: sim.Microsecond, CV: 1, UsefulIPC: 1, BufferLinesPerItem: 1}
	s := NewSampler(spec, sim.NewRNG(4, 3))
	var sum stats.Summary
	for i := 0; i < 100000; i++ {
		sum.Add(float64(s.Next()))
	}
	cv := sum.Stddev() / sum.Mean()
	if cv < 0.95 || cv > 1.05 {
		t.Errorf("CV = %.3f, want ~1", cv)
	}
}

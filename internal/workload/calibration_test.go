package workload

import (
	"testing"
	"time"

	"hyperplane/internal/cryptofwd"
	"hyperplane/internal/dispatch"
	"hyperplane/internal/erasure"
	"hyperplane/internal/netproto"
	"hyperplane/internal/raidp"
	"hyperplane/internal/steering"
)

// Calibration cross-check: the simulator's service-time specs must at
// least preserve the *relative cost ordering* of the real kernel
// implementations on canonical task sizes (1500 B packets, 4 KiB storage
// blocks). Absolute times differ across machines, so only coarse ordering
// is asserted; measurements use enough iterations to dominate timer noise.
func TestSpecOrderingMatchesRealKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel timing skipped in -short mode")
	}

	timeIt := func(name string, iters int, fn func(i int)) time.Duration {
		t.Helper()
		fn(0) // warm caches and lazy tables
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn(i)
		}
		d := time.Since(start) / time.Duration(iters)
		t.Logf("%-22s %v/task", name, d)
		return d
	}

	// Packet encapsulation: GRE-encapsulate a 1500 B IPv4 packet.
	var s16, d16 [16]byte
	tun := netproto.NewTunnel(s16, d16)
	ip := netproto.IPv4Header{TotalLen: netproto.IPv4HeaderLen + 1400, TTL: 64, Protocol: netproto.ProtoUDP}
	pkt := append(ip.Marshal(nil), make([]byte, 1400)...)
	encap := timeIt("packet-encapsulation", 20000, func(int) {
		if _, err := tun.Encap(pkt); err != nil {
			t.Fatal(err)
		}
	})

	// Crypto forwarding: AES-CBC-256 over the same packet.
	fwd, _ := cryptofwd.NewForwarder([]byte("calibration"))
	crypto := timeIt("crypto-forwarding", 4000, func(i int) {
		if _, err := fwd.Seal(uint64(i%8), pkt); err != nil {
			t.Fatal(err)
		}
	})

	// Packet steering: parse + steer the packet.
	st, _ := steering.NewSteerer([]string{"a", "b", "c", "d"}, 4096)
	spkt := netproto.BuildUDPPacket([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 1234, 80, make([]byte, 64))
	steer := timeIt("packet-steering", 20000, func(i int) {
		if _, err := st.SteerPacket(spkt); err != nil {
			t.Fatal(err)
		}
	})

	// Erasure coding: 4+2 over a 16 KiB object.
	code, _ := erasure.NewCode(4, 2)
	shards := code.Split(make([]byte, 16<<10))
	erasureT := timeIt("erasure-coding", 2000, func(int) {
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
	})

	// RAID P+Q: 4 data disks x 4 KiB.
	arr, _ := raidp.New(4)
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 4096)
	}
	p := make([]byte, 4096)
	q := make([]byte, 4096)
	raidT := timeIt("raid-protection", 4000, func(int) {
		if err := arr.ComputePQ(data, p, q); err != nil {
			t.Fatal(err)
		}
	})

	// Request dispatching: parse + classify + route one frame.
	dp := dispatch.NewDispatcher()
	dp.AddBackend("cache", "c0")
	dp.AddBackend("search", "s0")
	dp.AddBackend("ml", "m0")
	req := dispatch.Request{Type: dispatch.TypeGet, Tenant: 1, Payload: make([]byte, 64)}
	frame := req.Marshal(nil)
	disp := timeIt("request-dispatching", 20000, func(int) {
		d, err := dp.Prepare(frame)
		if err != nil {
			t.Fatal(err)
		}
		dp.Complete(d.Tier, d.Backend)
	})

	// Coarse ordering assertions mirroring the spec magnitudes: the
	// heavyweight kernels (crypto, erasure, RAID) must measurably exceed
	// the lightweight ones (encap, steering, dispatch), as the specs say.
	heavy := map[string]time.Duration{"crypto": crypto, "erasure": erasureT, "raid": raidT}
	light := map[string]time.Duration{"encap": encap, "steer": steer, "dispatch": disp}
	for hn, h := range heavy {
		for ln, l := range light {
			if h <= l {
				t.Errorf("real %s (%v) not above real %s (%v); spec ordering suspect", hn, h, ln, l)
			}
		}
	}
	// And the specs agree with themselves.
	if !(CryptoForward.ServiceMean > PacketEncap.ServiceMean &&
		ErasureCoding.ServiceMean > PacketSteering.ServiceMean &&
		RAIDProtection.ServiceMean > RequestDispatch.ServiceMean) {
		t.Error("spec service means do not reflect heavy > light ordering")
	}
}

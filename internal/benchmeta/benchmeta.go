// Package benchmeta records uniform host metadata in benchmark reports
// (BENCH_*.json), so numbers can be compared across machines and over
// time: two reports with different NumCPU or Go versions are different
// experiments, and the guard tools should be read accordingly.
package benchmeta

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Host identifies the machine and toolchain a report was measured on.
// Embed it in a report struct; the fields inline into the JSON object.
type Host struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// Collect captures the current host metadata.
func Collect() Host {
	return Host{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// CanParallel reports whether procs schedulable cores can run need
// goroutines genuinely in parallel. When it is false, any speedup ratio
// between those goroutines measures OS time-slicing, not the code under
// test, and the matching guard assertions must be skipped.
func CanParallel(procs, need int) bool { return procs >= need }

// ScalingNote is the single source of truth for the single-core escape
// hatch shared by every bench (ringbench, planebench, edgebench,
// fedbench): it returns "" when procs cores can schedule need goroutines
// on distinct cores, and otherwise the standard report annotation —
// "GOMAXPROCS=N: ...; <consequence>" — that the guards treat as "skip
// the parallel-scaling assertions for this baseline". The consequence
// clause names what the ratio degrades into on this host (e.g. "ratios
// reflect time-slicing, not ring fan-in"), so a reader of the BENCH
// report knows which numbers not to trust.
//
// Emitting the note and skipping the check must never disagree: a bench
// that writes ScalingNote(procs, need, ...) into its report must gate
// the matching assertion on the same (procs, need) pair — directly or
// via a recorded baseline's non-empty note.
func ScalingNote(procs, need int, consequence string) string {
	if CanParallel(procs, need) {
		return ""
	}
	return fmt.Sprintf(
		"GOMAXPROCS=%d: host cannot schedule the %d goroutines this comparison needs on distinct cores; %s",
		procs, need, consequence)
}

// FDNote is the companion annotation for descriptor-bound grids: the
// report caveat recorded when RLIMIT_NOFILE capped a connection grid
// below what was asked for.
func FDNote(limit uint64, capped, perConn int) string {
	return fmt.Sprintf(
		"RLIMIT_NOFILE=%d: subscriber grid capped at %d (%d fds per in-process connection)",
		limit, capped, perConn)
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory plus rename, so a reader (or a crashed writer) never sees a
// half-written report — BENCH_*.json files are inputs to the regression
// guards, and a torn JSON file would fail them confusingly.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

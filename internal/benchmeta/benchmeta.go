// Package benchmeta records uniform host metadata in benchmark reports
// (BENCH_*.json), so numbers can be compared across machines and over
// time: two reports with different NumCPU or Go versions are different
// experiments, and the guard tools should be read accordingly.
package benchmeta

import (
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Host identifies the machine and toolchain a report was measured on.
// Embed it in a report struct; the fields inline into the JSON object.
type Host struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// Collect captures the current host metadata.
func Collect() Host {
	return Host{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory plus rename, so a reader (or a crashed writer) never sees a
// half-written report — BENCH_*.json files are inputs to the regression
// guards, and a torn JSON file would fail them confusingly.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

package benchmeta

import (
	"strings"
	"testing"
)

// TestScalingNote pins the shared single-core escape hatch: the note is
// empty exactly when the host has the cores for the comparison, and a
// non-empty note names the core count, the requirement, and the
// consequence so BENCH report readers know which ratios to distrust.
func TestScalingNote(t *testing.T) {
	cases := []struct {
		procs, need int
		want        bool // note expected
	}{
		{1, 2, true}, {1, 5, true}, {4, 5, true},
		{2, 2, false}, {5, 5, false}, {64, 5, false},
	}
	for _, c := range cases {
		note := ScalingNote(c.procs, c.need, "ratios reflect time-slicing")
		if (note != "") != c.want {
			t.Errorf("ScalingNote(%d, %d) = %q, want note=%v", c.procs, c.need, note, c.want)
		}
		if CanParallel(c.procs, c.need) != (note == "") {
			t.Errorf("CanParallel(%d, %d) disagrees with ScalingNote emission", c.procs, c.need)
		}
		if note == "" {
			continue
		}
		for _, frag := range []string{"GOMAXPROCS=", "ratios reflect time-slicing"} {
			if !strings.Contains(note, frag) {
				t.Errorf("ScalingNote(%d, %d) = %q missing %q", c.procs, c.need, note, frag)
			}
		}
	}
}

// TestScalingNoteConsequenceVerbatim: the consequence clause is carried
// through untouched — each bench owns its own wording.
func TestScalingNoteConsequenceVerbatim(t *testing.T) {
	const c = "steal-on vs steal-off reflects time-slicing, not cross-bank stealing"
	note := ScalingNote(1, 2, c)
	if !strings.HasSuffix(note, c) {
		t.Errorf("consequence not carried verbatim: %q", note)
	}
}

func TestFDNote(t *testing.T) {
	note := FDNote(1024, 256, 2)
	for _, frag := range []string{"RLIMIT_NOFILE=1024", "capped at 256", "2 fds"} {
		if !strings.Contains(note, frag) {
			t.Errorf("FDNote missing %q: %q", frag, note)
		}
	}
}

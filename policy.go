package hyperplane

import "hyperplane/internal/policy"

// Policy selects and parameterizes a queue service discipline (paper
// §III-A). It is the same policy.Spec the simulator, the banked runtime,
// and every benchmark share — one arbitration layer, so a discipline
// behaves identically no matter which substrate runs it.
//
// The zero value is round-robin. The exported package variables
// (RoundRobin, WeightedRoundRobin, ...) are ready-made specs for each
// discipline; parameterize by setting fields:
//
//	cfg.Policy = hyperplane.WeightedRoundRobin
//	cfg.Policy.Weights = []int{4, 2, 1, 1}
//
// Policy contains a slice, so compare disciplines by Kind
// (p.Kind == hyperplane.StrictPriority.Kind), not with ==.
type Policy = policy.Spec

// PolicyKind enumerates the service disciplines.
type PolicyKind = policy.Kind

// Ready-made specs for each service discipline.
var (
	// RoundRobin services ready queues in circular order.
	RoundRobin = Policy{Kind: policy.RoundRobin}
	// WeightedRoundRobin lets a queue be serviced for its weight's worth
	// of consecutive rounds, differentiating tenants' QoS. Set Weights
	// (one entry per QID, each >= 1); nil means all-1.
	WeightedRoundRobin = Policy{Kind: policy.WeightedRoundRobin}
	// StrictPriority always prefers the lowest-numbered ready queue. As
	// the paper notes, it can starve high-numbered queues.
	StrictPriority = Policy{Kind: policy.StrictPriority}
	// DeficitRoundRobin is byte/work-aware weighted fairness: each queue
	// accrues a per-round quantum (its weight) of service credit and is
	// serviced while credit lasts, so queues with expensive items get the
	// same long-run share as queues with cheap ones.
	DeficitRoundRobin = Policy{Kind: policy.DeficitRoundRobin}
	// EWMAAdaptive biases selection toward queues whose backlog is
	// rising, tracked by an exponentially-weighted moving average of
	// arrival vs. service events, with an aging bonus that guarantees
	// starvation freedom. Set Alpha in (0, 1]; 0 means
	// policy.DefaultAlpha.
	EWMAAdaptive = Policy{Kind: policy.EWMAAdaptive}
)

// ParsePolicy maps a CLI-friendly name ("rr", "wrr", "strict", "drr",
// "ewma", or the canonical long forms) to its Policy spec.
func ParsePolicy(name string) (Policy, error) { return policy.Parse(name) }

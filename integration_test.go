package hyperplane_test

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"hyperplane"
	"hyperplane/internal/cryptofwd"
	"hyperplane/internal/dispatch"
	"hyperplane/internal/erasure"
	"hyperplane/internal/netproto"
	"hyperplane/internal/raidp"
	"hyperplane/internal/steering"
)

// Integration tests: the real runtime driving the real workload kernels
// end-to-end, the way a downstream SDP would compose them.

// TestNFVPipelineEndToEnd runs packets from two tenants through the
// Notifier-based data plane: GRE encapsulation, decapsulation, and
// 5-tuple steering, verifying payload integrity and session affinity.
func TestNFVPipelineEndToEnd(t *testing.T) {
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 8})
	if err != nil {
		t.Fatal(err)
	}
	mux := hyperplane.NewMux[[]byte](n)

	var tunnels []*netproto.Tunnel
	var queues []*hyperplane.Queue[[]byte]
	for i := 0; i < 2; i++ {
		q, err := mux.Add(256)
		if err != nil {
			t.Fatal(err)
		}
		queues = append(queues, q)
		var src, dst [16]byte
		src[15], dst[15] = byte(i+1), 0xFF
		tunnels = append(tunnels, netproto.NewTunnel(src, dst))
	}
	tunnelOf := map[hyperplane.QID]*netproto.Tunnel{
		queues[0].QID(): tunnels[0],
		queues[1].QID(): tunnels[1],
	}

	steerer, err := steering.NewSteerer([]string{"w0", "w1"}, 64)
	if err != nil {
		t.Fatal(err)
	}

	const perTenant = 40
	workerOfFlow := map[uint16]string{}
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := 0
		mux.Serve(func(qid hyperplane.QID, pkt []byte) bool {
			wire, err := tunnelOf[qid].Encap(pkt)
			if err != nil {
				t.Errorf("encap: %v", err)
				return false
			}
			inner, err := netproto.Decap(wire)
			if err != nil {
				t.Errorf("decap: %v", err)
				return false
			}
			if !bytes.Equal(inner, pkt) {
				t.Error("tunnel round-trip mismatch")
				return false
			}
			ft, err := steering.ParseFiveTuple(inner)
			if err != nil {
				t.Errorf("parse: %v", err)
				return false
			}
			w, _ := steerer.Steer(ft)
			mu.Lock()
			name := steerer.Workers()[w]
			if prev, ok := workerOfFlow[ft.SrcPort]; ok && prev != name {
				t.Errorf("affinity violated for flow %d", ft.SrcPort)
			}
			workerOfFlow[ft.SrcPort] = name
			mu.Unlock()
			seen++
			return seen < 2*perTenant
		})
	}()

	var wg sync.WaitGroup
	for qi, q := range queues {
		wg.Add(1)
		go func(qi int, q *hyperplane.Queue[[]byte]) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				flow := uint16(1000 + qi*4 + i%4)
				pkt := netproto.BuildUDPPacket(
					[4]byte{10, 0, byte(qi), 1},
					[4]byte{10, 9, 9, 9},
					flow, 4789,
					binary.BigEndian.AppendUint32(nil, uint32(i)),
				)
				for !q.Push(pkt) {
					time.Sleep(time.Microsecond)
				}
			}
		}(qi, q)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline stalled")
	}
	n.Close()
	if len(workerOfFlow) != 8 {
		t.Errorf("flows seen = %d, want 8", len(workerOfFlow))
	}
}

// TestStorageWritePathEndToEnd chains crypto + erasure + RAID through the
// runtime the way examples/storage-plane does, with failures injected.
func TestStorageWritePathEndToEnd(t *testing.T) {
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 4})
	if err != nil {
		t.Fatal(err)
	}
	type req struct{ data []byte }
	mux := hyperplane.NewMux[req](n)
	q, err := mux.Add(32)
	if err != nil {
		t.Fatal(err)
	}

	fwd, _ := cryptofwd.NewForwarder([]byte("integration secret"))
	code, _ := erasure.NewCode(4, 2)
	raid, _ := raidp.New(4)

	const writes = 12
	for i := 0; i < writes; i++ {
		q.Push(req{data: bytes.Repeat([]byte{byte(i + 1)}, 512+i*33)})
	}

	processed := 0
	mux.Serve(func(_ hyperplane.QID, r req) bool {
		sealed, err := fwd.Seal(1, r.data)
		if err != nil {
			t.Fatal(err)
		}
		shards := code.Split(sealed)
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		p := make([]byte, len(shards[0]))
		pq := make([]byte, len(shards[0]))
		if err := raid.ComputePQ(shards[:4], p, pq); err != nil {
			t.Fatal(err)
		}
		// Double failure across both protection layers.
		shards[0], shards[5] = nil, nil
		if err := code.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		ok, err := raid.VerifyStripe(shards[:4], p, pq)
		if err != nil || !ok {
			t.Fatal("stripe verification failed after reconstruction")
		}
		joined, err := code.Join(shards, len(sealed))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := fwd.Open(1, joined)
		if err != nil || !bytes.Equal(plain, r.data) {
			t.Fatal("end-to-end data mismatch")
		}
		processed++
		return processed < writes
	})
	n.Close()
	if processed != writes {
		t.Errorf("processed %d of %d", processed, writes)
	}
}

// TestDispatchingThroughRuntime classifies RPC frames arriving on a
// priority queue pair: metadata (strict priority QID 0) before bulk.
func TestDispatchingThroughRuntime(t *testing.T) {
	n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
		MaxQueues: 4,
		Policy:    hyperplane.StrictPriority,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := hyperplane.NewMux[[]byte](n)
	hiQ, _ := mux.Add(32)
	loQ, _ := mux.Add(32)

	d := dispatch.NewDispatcher()
	d.AddBackend("cache", "c0")
	d.AddBackend("search", "s0")
	d.AddBackend("ml", "m0")

	frame := func(typ dispatch.RequestType, id uint64) []byte {
		r := dispatch.Request{Type: typ, Tenant: 7, RequestID: id, Payload: []byte("p")}
		return r.Marshal(nil)
	}
	// Enqueue low-priority first; strict priority must still serve hiQ
	// first once serving begins.
	for i := 0; i < 5; i++ {
		loQ.Push(frame(dispatch.TypeQuery, uint64(100+i)))
	}
	for i := 0; i < 3; i++ {
		hiQ.Push(frame(dispatch.TypeGet, uint64(i)))
	}

	var order []hyperplane.QID
	total := 0
	mux.Serve(func(qid hyperplane.QID, f []byte) bool {
		disp, err := d.Prepare(f)
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		d.Complete(disp.Tier, disp.Backend)
		order = append(order, qid)
		total++
		return total < 8
	})
	n.Close()

	for i := 0; i < 3; i++ {
		if order[i] != hiQ.QID() {
			t.Fatalf("strict priority violated: %v", order)
		}
	}
	counts := d.TypeCounts()
	if counts[dispatch.TypeGet] != 3 || counts[dispatch.TypeQuery] != 5 {
		t.Errorf("type counts = %v", counts)
	}
}

// TestSimulationMatchesRuntimeSemantics cross-checks that a simulated
// HyperPlane run and the real runtime agree on protocol-level accounting:
// every arrival is eventually completed exactly once.
func TestSimulationMatchesRuntimeSemantics(t *testing.T) {
	r, err := hyperplane.Simulate(hyperplane.SimConfig{
		Plane:    hyperplane.PlaneHyperPlane,
		Queues:   32,
		Shape:    hyperplane.PropConcentrated,
		Load:     0.4,
		Duration: 20 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("simulation completed nothing")
	}
	// Runtime side: same load pattern, counted exactly.
	n, _ := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 32})
	mux := hyperplane.NewMux[int](n)
	qs := make([]*hyperplane.Queue[int], 8)
	for i := range qs {
		qs[i], _ = mux.Add(64)
	}
	const items = 400
	go func() {
		for i := 0; i < items; i++ {
			q := qs[i%len(qs)]
			for !q.Push(i) {
				time.Sleep(time.Microsecond)
			}
		}
	}()
	got := 0
	mux.Serve(func(hyperplane.QID, int) bool {
		got++
		return got < items
	})
	n.Close()
	if got != items {
		t.Errorf("runtime consumed %d of %d", got, items)
	}
	st := n.Stats()
	if st.Activations > st.Notifies {
		t.Errorf("activations %d exceed notifies %d", st.Activations, st.Notifies)
	}
}

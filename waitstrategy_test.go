package hyperplane

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitStrategyStrings(t *testing.T) {
	cases := map[WaitStrategy]string{
		WaitPark:        "park",
		WaitSpin:        "spin",
		WaitHybrid:      "hybrid",
		WaitStrategy(9): "wait(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("WaitStrategy(%d).String() = %q, want %q", s, got, want)
		}
	}
	for name, want := range map[string]WaitStrategy{
		"park": WaitPark, "notify": WaitPark, "spin": WaitSpin, "hybrid": WaitHybrid,
	} {
		got, err := ParseWaitStrategy(name)
		if err != nil {
			t.Fatalf("ParseWaitStrategy(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseWaitStrategy(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseWaitStrategy("busy"); err == nil {
		t.Error("ParseWaitStrategy(busy) should fail")
	}
	wc := WaitConfig{Strategy: WaitHybrid, SpinBudget: 128}
	if got := wc.String(); got != "hybrid(128)" {
		t.Errorf("WaitConfig.String() = %q", got)
	}
	if got := (WaitConfig{Strategy: WaitHybrid}).String(); got != "hybrid(4096)" {
		t.Errorf("default-budget String() = %q", got)
	}
	if got := (WaitConfig{}).String(); got != "park" {
		t.Errorf("park String() = %q", got)
	}
}

func TestWaitConfigValidation(t *testing.T) {
	bad := []WaitConfig{
		{Strategy: WaitStrategy(3)},
		{Strategy: WaitHybrid, SpinBudget: -1},
		{Strategy: WaitHybrid, SpinBudget: 1 << 33},
	}
	for _, wc := range bad {
		if _, err := NewNotifier(NotifierConfig{MaxQueues: 1, Wait: wc}); err == nil {
			t.Errorf("WaitConfig %+v accepted", wc)
		}
	}
	n := newN(t, NotifierConfig{MaxQueues: 1, Wait: WaitConfig{Strategy: WaitHybrid}})
	defer n.Close()
	if got := n.WaitConfig(); got.Strategy != WaitHybrid || got.SpinBudget != 0 {
		t.Errorf("WaitConfig round trip: %+v", got)
	}
	if err := n.SetWaitConfig(WaitConfig{Strategy: WaitStrategy(7)}); err == nil {
		t.Error("SetWaitConfig with bad strategy should fail")
	}
}

// waitStrategyFixture registers one queue and returns the notifier plus
// its doorbell.
func waitStrategyFixture(t *testing.T, wc WaitConfig) (*Notifier, QID, *atomic.Int64) {
	t.Helper()
	n := newN(t, NotifierConfig{MaxQueues: 1, Wait: wc})
	var db atomic.Int64
	qid, err := n.Register(&db)
	if err != nil {
		t.Fatal(err)
	}
	return n, qid, &db
}

// totalParks sums the stripe park counters.
func totalParks(n *Notifier) int64 {
	var parks int64
	for _, b := range n.BankStats() {
		parks += b.Parks
	}
	return parks
}

// TestHybridParksAfterBudget: a hybrid waiter with no work spins its
// budget down and then parks — the C0 dwell gives way to the C1 drop.
func TestHybridParksAfterBudget(t *testing.T) {
	n, qid, db := waitStrategyFixture(t, WaitConfig{Strategy: WaitHybrid, SpinBudget: 32})
	defer n.Close()
	done := make(chan QID, 1)
	go func() {
		q, ok := n.Wait()
		if ok {
			done <- q
		}
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for totalParks(n) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hybrid waiter never parked after exhausting its spin budget")
		}
		time.Sleep(100 * time.Microsecond)
	}
	db.Add(1)
	n.Notify(qid)
	if q, ok := <-done; !ok || q != qid {
		t.Fatalf("woken waiter got (%v, %v)", q, ok)
	}
}

// TestSpinNeverParks: a pure-spin waiter stays in C0 — no stripe parks —
// and finds work during the dwell (SpinHits). Close must still unblock
// it.
func TestSpinNeverParks(t *testing.T) {
	n, qid, db := waitStrategyFixture(t, WaitConfig{Strategy: WaitSpin})
	done := make(chan bool, 1)
	go func() {
		_, ok := n.Wait()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond) // let it spin well past any budget
	if parks := totalParks(n); parks != 0 {
		t.Fatalf("spin waiter parked %d times", parks)
	}
	db.Add(1)
	n.Notify(qid)
	if ok := <-done; !ok {
		t.Fatal("spinning waiter missed the notify")
	}
	if hits := n.Stats().SpinHits; hits == 0 {
		t.Error("spin dwell satisfied a wait but SpinHits == 0")
	}
	// A spinning waiter with no work must still observe Close.
	go func() {
		_, ok := n.Wait()
		done <- ok
	}()
	time.Sleep(time.Millisecond)
	n.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Wait returned ok after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the spinning waiter")
	}
}

// TestSetWaitConfigDemotesSpinners: switching spin -> park must reach a
// waiter already in its spin loop (the periodic config recheck), without
// any notify.
func TestSetWaitConfigDemotesSpinners(t *testing.T) {
	n, qid, db := waitStrategyFixture(t, WaitConfig{Strategy: WaitSpin})
	defer n.Close()
	done := make(chan bool, 1)
	go func() {
		_, ok := n.Wait()
		done <- ok
	}()
	time.Sleep(time.Millisecond)
	if err := n.SetWaitConfig(WaitConfig{Strategy: WaitPark}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for totalParks(n) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("demoted spinner never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	db.Add(1)
	n.Notify(qid)
	if ok := <-done; !ok {
		t.Fatal("demoted waiter missed the notify")
	}
}

// TestBlockedResidencyAccounting: a parked waiter's wall time shows up in
// the stripe's BlockedNs — the per-bank C1-residency series.
func TestBlockedResidencyAccounting(t *testing.T) {
	n, qid, db := waitStrategyFixture(t, WaitConfig{Strategy: WaitPark})
	defer n.Close()
	done := make(chan struct{})
	go func() {
		n.Wait()
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for totalParks(n) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(5 * time.Millisecond)
	db.Add(1)
	n.Notify(qid)
	<-done
	var blocked int64
	for _, b := range n.BankStats() {
		blocked += b.BlockedNs
	}
	if blocked < int64(time.Millisecond) {
		t.Errorf("BlockedNs = %d, want >= 1ms of parked residency", blocked)
	}
}

// TestWaitTimeoutTimerReuse: one WaitTimeout call reuses its timer across
// spurious wakeups and still honors the overall deadline; ready work
// always wins over the timer.
func TestWaitTimeoutTimerReuse(t *testing.T) {
	n, qid, db := waitStrategyFixture(t, WaitConfig{Strategy: WaitPark})
	defer n.Close()

	// Spurious wakeups: notify without a doorbell increment, so the waiter
	// wakes, finds the queue, verifies it empty (the caller would), and in
	// this harness just returns it. To force re-parking we instead consume
	// from a second goroutine racing the waiter.
	start := time.Now()
	if _, ok := n.WaitTimeout(20 * time.Millisecond); ok {
		t.Fatal("WaitTimeout reported ready work on an idle notifier")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("WaitTimeout returned after %v, before its deadline", elapsed)
	}

	// With work arriving mid-wait the deadline must not fire.
	done := make(chan bool, 1)
	go func() {
		_, ok := n.WaitTimeout(2 * time.Second)
		done <- ok
	}()
	time.Sleep(2 * time.Millisecond)
	db.Add(1)
	n.Notify(qid)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitTimeout timed out despite a notify")
		}
	case <-time.After(time.Second):
		t.Fatal("WaitTimeout never returned")
	}

	// Hammer: repeated short WaitTimeout calls racing a bursty producer;
	// every accepted wait must be consumed or timed out, never wedged.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 0 {
				db.Add(1)
				n.Notify(qid)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for i := 0; i < 200; i++ {
		if _, ok := n.WaitTimeout(500 * time.Microsecond); ok {
			db.Add(-1)
			n.Consume(qid)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSetEWMAAlphaLive: the alpha autotune path reaches the EWMA policy
// through every bank, and is rejected by non-EWMA disciplines and
// out-of-range values.
func TestSetEWMAAlphaLive(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 8, Shards: 2, Policy: EWMAAdaptive})
	defer n.Close()
	var dbs [8]atomic.Int64
	for i := range dbs {
		if _, err := n.Register(&dbs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !n.SetEWMAAlpha(0.4) {
		t.Error("EWMA notifier rejected a valid alpha")
	}
	if n.SetEWMAAlpha(1.5) {
		t.Error("alpha > 1 accepted")
	}
	if n.SetEWMAAlpha(0) {
		t.Error("alpha 0 accepted")
	}
	rr := newN(t, NotifierConfig{MaxQueues: 2})
	defer rr.Close()
	var db atomic.Int64
	if _, err := rr.Register(&db); err != nil {
		t.Fatal(err)
	}
	if rr.SetEWMAAlpha(0.4) {
		t.Error("round-robin notifier accepted an EWMA alpha")
	}
}

// TestHaltedConsumersDoNotStrandBanks is the governor's liveness
// backstop at the notifier level: with most home-affine consumers halted
// (not waiting at all) and stealing disabled, the one remaining consumer's
// WaitHomeBatch must still drain ready QIDs from every bank.
func TestHaltedConsumersDoNotStrandBanks(t *testing.T) {
	const queues = 16
	n := newN(t, NotifierConfig{MaxQueues: queues, Shards: 4})
	defer n.Close()
	var dbs [queues]atomic.Int64
	qids := make([]QID, queues)
	for i := range qids {
		q, err := n.Register(&dbs[i])
		if err != nil {
			t.Fatal(err)
		}
		qids[i] = q
	}
	// Ready work in every bank (qid mod 4 spans all banks).
	for i := range qids {
		dbs[i].Add(1)
		n.Notify(qids[i])
	}
	// One consumer, home bank 0, workers 1..3 "halted" (absent).
	seen := make(map[QID]bool)
	batch := make([]QID, 4)
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < queues {
		if time.Now().After(deadline) {
			t.Fatalf("stranded QIDs: drained %d of %d", len(seen), queues)
		}
		c := n.WaitHomeBatch(0, batch)
		for _, q := range batch[:c] {
			seen[q] = true
			dbs[q].Add(-1)
			n.Consume(q)
		}
	}
}

// TestWakeOrderingUnderNotifyDisable hammers concurrent Notify, Enable/
// Disable flips, and parked consumers across banks: no wakeup may be
// lost (every notified-and-enabled queue is eventually drained) and the
// run must terminate cleanly under -race.
func TestWakeOrderingUnderNotifyDisable(t *testing.T) {
	const queues = 8
	n := newN(t, NotifierConfig{MaxQueues: queues, Shards: 2})
	var dbs [queues]atomic.Int64
	qids := make([]QID, queues)
	for i := range qids {
		q, err := n.Register(&dbs[i])
		if err != nil {
			t.Fatal(err)
		}
		qids[i] = q
	}
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(home int) {
			defer wg.Done()
			batch := make([]QID, 4)
			for {
				c := n.WaitHomeBatch(home, batch)
				if c == 0 {
					return // closed
				}
				for _, q := range batch[:c] {
					if dbs[q].Load() > 0 {
						dbs[q].Add(-1)
						consumed.Add(1)
					}
					n.Consume(q)
				}
			}
		}(w % 2)
	}
	const perQueue = 200
	var prodWG sync.WaitGroup
	for i := range qids {
		prodWG.Add(1)
		go func(i int) {
			defer prodWG.Done()
			for k := 0; k < perQueue; k++ {
				dbs[i].Add(1)
				n.Notify(qids[i])
				if k%17 == 0 {
					// Disable/enable churn mid-traffic: readiness must
					// survive the flip (re-enable reoffers the backlog).
					_ = n.Disable(qids[i])
					_ = n.Enable(qids[i])
				}
			}
		}(i)
	}
	prodWG.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for consumed.Load() < int64(queues*perQueue) {
		if time.Now().After(deadline) {
			t.Fatalf("lost wakeups: consumed %d of %d", consumed.Load(), queues*perQueue)
		}
		time.Sleep(time.Millisecond)
	}
	n.Close()
	wg.Wait()
}

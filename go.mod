module hyperplane

go 1.22

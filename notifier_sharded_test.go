package hyperplane

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The banked paths are exercised explicitly with Shards > 1 so the tests
// do not depend on GOMAXPROCS (the default shard count).

func TestShardsConfig(t *testing.T) {
	if _, err := NewNotifier(NotifierConfig{MaxQueues: 4, Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	n := newN(t, NotifierConfig{MaxQueues: 4, Shards: 16})
	if n.Shards() != 4 {
		t.Errorf("Shards not clamped to MaxQueues: %d", n.Shards())
	}
	n.Close()
	n = newN(t, NotifierConfig{MaxQueues: 1024, Shards: 100})
	if n.Shards() != MaxShards {
		t.Errorf("Shards not clamped to MaxShards: %d", n.Shards())
	}
	n.Close()
	// Strict priority defaults to one bank (global priority order).
	n = newN(t, NotifierConfig{MaxQueues: 8, Policy: StrictPriority})
	if n.Shards() != 1 {
		t.Errorf("strict priority default shards = %d, want 1", n.Shards())
	}
	n.Close()
}

func TestShardedBasicFlow(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 16, Shards: 4})
	defer n.Close()
	dbs := make([]atomic.Int64, 9)
	qids := make([]QID, 9)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
		dbs[i].Add(1)
		n.Notify(qids[i])
	}
	seen := map[QID]bool{}
	for range qids {
		q, ok := n.Wait()
		if !ok {
			t.Fatal("wait failed")
		}
		if seen[q] {
			t.Fatalf("qid %v returned twice without reactivation", q)
		}
		seen[q] = true
		if !n.Verify(q) {
			t.Fatalf("Verify rejected backlogged qid %v", q)
		}
		dbs[q].Add(-1)
		n.Reconsider(q)
	}
	if len(seen) != 9 {
		t.Fatalf("visited %d of 9 queues", len(seen))
	}
	if _, ok := n.TryWait(); ok {
		t.Fatal("phantom readiness after drain")
	}
}

func TestConsumeSemantics(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 4, Shards: 2})
	defer n.Close()
	var db atomic.Int64
	qid, _ := n.Register(&db)

	// Backlogged: Consume re-activates.
	db.Add(2)
	n.Notify(qid)
	if got, ok := n.Wait(); !ok || got != qid {
		t.Fatalf("Wait = %v %v", got, ok)
	}
	db.Add(-1) // popped one, one remains
	if !n.Consume(qid) {
		t.Fatal("Consume must report backlog")
	}
	if got, ok := n.TryWait(); !ok || got != qid {
		t.Fatalf("backlogged queue not re-activated: %v %v", got, ok)
	}

	// Drained: Consume re-arms, so the next Notify activates again.
	db.Add(-1)
	if n.Consume(qid) {
		t.Fatal("Consume reported backlog on empty queue")
	}
	if _, ok := n.TryWait(); ok {
		t.Fatal("empty queue stayed ready")
	}
	db.Add(1)
	n.Notify(qid)
	if got, ok := n.TryWait(); !ok || got != qid {
		t.Fatal("re-armed queue did not activate")
	}

	// Unregistered QID: harmless no-op.
	if n.Consume(QID(99)) {
		t.Fatal("Consume on bogus qid")
	}
}

func TestNotifyBatchCoalescesAndActivates(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 8, Shards: 4})
	defer n.Close()
	dbs := make([]atomic.Int64, 3)
	qids := make([]QID, 3)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
		dbs[i].Add(1)
	}
	// Duplicates and a bogus QID in one batch: three activations exactly.
	n.NotifyBatch([]QID{qids[0], qids[1], qids[0], qids[2], QID(99), qids[1]})
	st := n.Stats()
	if st.Notifies != 6 {
		t.Errorf("notifies = %d, want 6", st.Notifies)
	}
	if st.Activations != 3 {
		t.Errorf("activations = %d, want 3", st.Activations)
	}
	seen := 0
	for {
		if _, ok := n.TryWait(); !ok {
			break
		}
		seen++
	}
	if seen != 3 {
		t.Errorf("ready queues = %d, want 3", seen)
	}
	n.NotifyBatch(nil) // no-op
}

func TestWaitBatchDrainsAndBlocks(t *testing.T) {
	n := newN(t, NotifierConfig{MaxQueues: 16, Shards: 4})
	dbs := make([]atomic.Int64, 6)
	qids := make([]QID, 6)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
		dbs[i].Add(1)
		n.Notify(qids[i])
	}
	dst := make([]QID, 16)
	c := n.WaitBatch(dst)
	if c != 6 {
		t.Fatalf("WaitBatch = %d, want 6", c)
	}
	seen := map[QID]bool{}
	for _, q := range dst[:c] {
		seen[q] = true
	}
	if len(seen) != 6 {
		t.Fatalf("WaitBatch returned duplicates: %v", dst[:c])
	}
	// A bounded dst caps the drain.
	for i := range dbs {
		n.Notify(qids[i]) // still backlogged and armed? no — still pending
		n.Reconsider(qids[i])
	}
	if c := n.WaitBatch(dst[:2]); c != 2 {
		t.Fatalf("bounded WaitBatch = %d, want 2", c)
	}
	if n.WaitBatch(nil) != 0 {
		t.Fatal("empty dst must return 0")
	}
	// Blocking behavior: a parked WaitBatch is woken by one Notify. Drain
	// and re-arm everything first so the Notify below actually activates.
	for {
		if _, ok := n.TryWait(); !ok {
			break
		}
	}
	for i := range dbs {
		dbs[i].Store(0)
		n.Consume(qids[i])
	}
	res := make(chan int, 1)
	go func() {
		res <- n.WaitBatch(make([]QID, 4))
	}()
	time.Sleep(10 * time.Millisecond)
	dbs[3].Add(1)
	n.Notify(qids[3])
	select {
	case c := <-res:
		if c < 1 {
			t.Fatalf("woken WaitBatch = %d", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitBatch never woke")
	}
	// Close unblocks with 0.
	go func() {
		res <- n.WaitBatch(make([]QID, 4))
	}()
	time.Sleep(10 * time.Millisecond)
	n.Close()
	select {
	case c := <-res:
		if c != 0 {
			t.Fatalf("WaitBatch after close = %d", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitBatch not unblocked by Close")
	}
}

// Enable/Disable interleaved with concurrent Notify/Wait: every produced
// item is eventually consumed, the disable window returns no disabled
// QIDs... (QIDs may be returned spuriously right around the flip; the
// QWAIT protocol's Verify handles that), and nothing deadlocks or races.
func TestEnableDisableConcurrent(t *testing.T) {
	const (
		queues  = 8
		perQ    = 3000
		shards  = 4
		readers = 2
	)
	n := newN(t, NotifierConfig{MaxQueues: queues, Shards: shards})
	dbs := make([]atomic.Int64, queues)
	qids := make([]QID, queues)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
	}
	var consumed atomic.Int64
	var wg sync.WaitGroup

	// Producers.
	for i := 0; i < queues; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perQ; j++ {
				dbs[i].Add(1)
				n.Notify(qids[i])
			}
		}(i)
	}

	// A toggler flapping Enable/Disable on two queues.
	stopToggle := make(chan struct{})
	var toggleWG sync.WaitGroup
	toggleWG.Add(1)
	go func() {
		defer toggleWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopToggle:
				// Leave everything enabled so consumers can finish.
				n.Enable(qids[0])
				n.Enable(qids[1])
				return
			default:
			}
			n.Disable(qids[i%2])
			time.Sleep(time.Microsecond)
			n.Enable(qids[i%2])
		}
	}()

	// Consumers following the combined-Consume protocol.
	var consWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			for consumed.Load() < queues*perQ {
				qid, ok := n.WaitTimeout(100 * time.Millisecond)
				if !ok {
					continue
				}
				// "Pop": decrement the doorbell if there is an item.
				for {
					v := dbs[qid].Load()
					if v <= 0 {
						break
					}
					if dbs[qid].CompareAndSwap(v, v-1) {
						consumed.Add(1)
						break
					}
				}
				n.Consume(qid)
			}
		}()
	}

	wg.Wait()
	close(stopToggle)
	toggleWG.Wait()
	deadline := time.After(30 * time.Second)
	done := make(chan struct{})
	go func() { consWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-deadline:
		t.Fatalf("consumed %d of %d before deadline", consumed.Load(), queues*perQ)
	}
	n.Close()
	if consumed.Load() != queues*perQ {
		t.Fatalf("consumed %d of %d", consumed.Load(), queues*perQ)
	}
}

// WRR with one bank is exactly the paper's policy: a 3:1 weight split
// yields a 3:1 service ratio for continuously-backlogged queues.
func TestWRRServiceRatioSingleBank(t *testing.T) {
	weights := []int{3, 1}
	n := newN(t, NotifierConfig{MaxQueues: 2, Policy: WeightedRoundRobin, Weights: weights, Shards: 1})
	defer n.Close()
	dbs := make([]atomic.Int64, 2)
	qids := make([]QID, 2)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
		dbs[i].Add(1 << 20) // never drains
		n.Notify(qids[i])
	}
	counts := map[QID]int{}
	for i := 0; i < 4000; i++ {
		q, ok := n.Wait()
		if !ok {
			t.Fatal("wait failed")
		}
		counts[q]++
		dbs[q].Add(-1)
		n.Reconsider(q)
	}
	ratio := float64(counts[qids[0]]) / float64(counts[qids[1]])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("WRR ratio = %.2f (counts %v), want ~3", ratio, counts)
	}
}

// With multiple banks, WRR ratios hold exactly among queues sharing a
// bank (qid mod Shards): qids 0 and 2 share bank 0 of 2 with weights 4:1.
func TestWRRServiceRatioSharded(t *testing.T) {
	weights := []int{4, 1, 1, 1}
	n := newN(t, NotifierConfig{MaxQueues: 4, Policy: WeightedRoundRobin, Weights: weights, Shards: 2})
	defer n.Close()
	if n.Shards() != 2 {
		t.Fatalf("shards = %d", n.Shards())
	}
	dbs := make([]atomic.Int64, 4)
	qids := make([]QID, 4)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
		dbs[i].Add(1 << 20)
		n.Notify(qids[i])
	}
	counts := map[QID]int{}
	for i := 0; i < 8000; i++ {
		q, ok := n.Wait()
		if !ok {
			t.Fatal("wait failed")
		}
		counts[q]++
		dbs[q].Add(-1)
		n.Reconsider(q)
	}
	// Same-bank ratio (bank 0 holds qids 0 and 2).
	ratio := float64(counts[qids[0]]) / float64(counts[qids[2]])
	if ratio < 3.4 || ratio > 4.6 {
		t.Fatalf("same-bank WRR ratio = %.2f (counts %v), want ~4", ratio, counts)
	}
}

// Cross-bank fairness bound: with S banks and every bank continuously
// non-empty, the rotor sweep services the banks evenly, so a
// continuously-ready queue is serviced at least once every S*R
// selections (R = its bank's round-robin bound, i.e. the ready queues in
// that bank). With Q balanced queues that is exactly once every Q
// selections; the test asserts the documented 2x-slack bound on the gap.
func TestCrossShardFairnessBound(t *testing.T) {
	const (
		shards = 4
		queues = 8
		rounds = 40
	)
	n := newN(t, NotifierConfig{MaxQueues: queues, Shards: shards})
	defer n.Close()
	dbs := make([]atomic.Int64, queues)
	qids := make([]QID, queues)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
		dbs[i].Add(1 << 20) // continuously ready
		n.Notify(qids[i])
	}
	lastSeen := make(map[QID]int)
	for i := 0; i < queues*rounds; i++ {
		q, ok := n.Wait()
		if !ok {
			t.Fatal("wait failed")
		}
		if prev, ok := lastSeen[q]; ok {
			if gap := i - prev; gap > 2*queues {
				t.Fatalf("qid %v starved for %d selections (bound %d)", q, gap, 2*queues)
			}
		}
		lastSeen[q] = i
		dbs[q].Add(-1)
		n.Reconsider(q)
	}
	for _, qid := range qids {
		if _, ok := lastSeen[qid]; !ok {
			t.Fatalf("qid %v never serviced", qid)
		}
	}
}

// Many producers, several consumers, sharded: every item consumed exactly
// once. Run under -race this covers the CAS arm/disarm paths, bank locks,
// and parker hand-off.
func TestNotifierStressSharded(t *testing.T) {
	const (
		producers    = 8
		itemsPerProd = 3000
		consumers    = 3
	)
	n := newN(t, NotifierConfig{MaxQueues: producers, Shards: 4})
	dbs := make([]atomic.Int64, producers)
	qids := make([]QID, producers)
	for i := range dbs {
		qids[i], _ = n.Register(&dbs[i])
	}
	var produced, consumed atomic.Int64
	var pwg, cwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for j := 0; j < itemsPerProd; j++ {
				dbs[p].Add(1)
				produced.Add(1)
				if j%16 == 0 {
					n.NotifyBatch([]QID{qids[p]})
				} else {
					n.Notify(qids[p])
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			batch := make([]QID, 8)
			for consumed.Load() < producers*itemsPerProd {
				got := 0
				if qid, ok := n.WaitTimeout(200 * time.Millisecond); ok {
					batch[0], got = qid, 1
				}
				for _, qid := range batch[:got] {
					for {
						v := dbs[qid].Load()
						if v <= 0 {
							break
						}
						if dbs[qid].CompareAndSwap(v, v-1) {
							consumed.Add(1)
							break
						}
					}
					n.Consume(qid)
				}
			}
		}()
	}
	pwg.Wait()
	done := make(chan struct{})
	go func() { cwg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("consumers stalled at %d of %d", consumed.Load(), producers*itemsPerProd)
	}
	n.Close()
	if consumed.Load() != produced.Load() {
		t.Fatalf("consumed %d, produced %d", consumed.Load(), produced.Load())
	}
}

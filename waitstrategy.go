package hyperplane

import "fmt"

// WaitStrategy selects how a consumer waits for readiness when a sweep
// finds no ready queue — the software analog of the paper's C-state
// ladder (Fig. 11/12): a spinning waiter is a C0 core burning cycles for
// minimum wake latency, a parked waiter is a C1-halted core that pays the
// ~0.5 µs wake cost (internal/power.C1WakeLatency) but draws no CPU, and
// the hybrid strategy dwells in C0 for a bounded spin budget before
// dropping to C1 — trading a little idle CPU for doorbell-to-dispatch
// latency exactly when traffic is likely to arrive soon.
//
// The strategy applies to the slow path only: a Wait whose first sweep
// finds work never consults it.
type WaitStrategy uint8

const (
	// WaitPark parks immediately on the striped parker when a sweep comes
	// up empty (the seed behavior; lowest CPU, pays the wake cost on
	// every idle→busy transition).
	WaitPark WaitStrategy = iota
	// WaitSpin never parks: the waiter re-sweeps (yielding the processor
	// between polls) until work or close. Lowest latency, one busy
	// "core" per waiter.
	WaitSpin
	// WaitHybrid spins for the configured budget of polls, then parks —
	// the C0→C1 transition with a tunable dwell.
	WaitHybrid
)

// String names the strategy; unknown values render as "wait(N)" rather
// than falling through to a default name.
func (s WaitStrategy) String() string {
	switch s {
	case WaitPark:
		return "park"
	case WaitSpin:
		return "spin"
	case WaitHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("wait(%d)", uint8(s))
}

// ParseWaitStrategy maps a CLI-friendly name to its strategy.
func ParseWaitStrategy(name string) (WaitStrategy, error) {
	switch name {
	case "park", "notify":
		return WaitPark, nil
	case "spin":
		return WaitSpin, nil
	case "hybrid":
		return WaitHybrid, nil
	}
	return 0, fmt.Errorf("hyperplane: unknown wait strategy %q (want park, spin or hybrid)", name)
}

// DefaultSpinBudget is the hybrid pre-park dwell in polls. Each poll is
// one bank sweep plus a Gosched, so at sub-µs sweep cost the default
// dwell is in the tens of µs — long enough to absorb inter-arrival gaps
// of a busy tenant, short enough that a genuinely idle worker halts.
const DefaultSpinBudget = 4096

// maxSpinBudget bounds the packed budget field (56 bits is far beyond
// any sane dwell; the cap just keeps the packing honest).
const maxSpinBudget = 1<<32 - 1

// WaitConfig is a Notifier's live wait discipline: the strategy plus the
// hybrid spin budget. It is runtime-switchable via SetWaitConfig —
// waiters that are already parked stay parked until their next wake, but
// every subsequent wait (and every pure-spin waiter, which re-reads the
// config periodically) follows the new discipline.
type WaitConfig struct {
	// Strategy is the park/spin/hybrid discipline. The zero value is
	// WaitPark, the seed behavior.
	Strategy WaitStrategy
	// SpinBudget is the hybrid pre-park dwell in polls; 0 means
	// DefaultSpinBudget. Ignored by WaitPark and WaitSpin.
	SpinBudget int
}

func (c WaitConfig) validate() error {
	if c.Strategy > WaitHybrid {
		return fmt.Errorf("hyperplane: unknown wait strategy %d", c.Strategy)
	}
	if c.SpinBudget < 0 || c.SpinBudget > maxSpinBudget {
		return fmt.Errorf("hyperplane: SpinBudget must be in [0, %d], got %d", maxSpinBudget, c.SpinBudget)
	}
	return nil
}

// spinBudget is the effective hybrid dwell with the default applied.
func (c WaitConfig) spinBudget() int {
	if c.SpinBudget == 0 {
		return DefaultSpinBudget
	}
	return c.SpinBudget
}

// pack/unpack squeeze the config into one atomic word so waiters read it
// with a single load: strategy in the low 8 bits, budget above.
func (c WaitConfig) pack() uint64 {
	return uint64(c.Strategy) | uint64(c.SpinBudget)<<8
}

func unpackWaitConfig(v uint64) WaitConfig {
	return WaitConfig{Strategy: WaitStrategy(v & 0xff), SpinBudget: int(v >> 8)}
}

// String renders "park", "spin", or "hybrid(budget)".
func (c WaitConfig) String() string {
	if c.Strategy == WaitHybrid {
		b := c.SpinBudget
		if b == 0 {
			b = DefaultSpinBudget
		}
		return fmt.Sprintf("hybrid(%d)", b)
	}
	return c.Strategy.String()
}

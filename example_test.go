package hyperplane_test

import (
	"fmt"
	"sync/atomic"
	"time"

	"hyperplane"
)

// The canonical QWAIT consumer protocol against a user-owned queue: the
// doorbell is any atomic element counter.
func ExampleNotifier() {
	n, _ := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 16})
	defer n.Close()

	var items []string // the queue payload (single consumer, so no lock)
	var doorbell atomic.Int64

	qid, _ := n.Register(&doorbell) // QWAIT-ADD

	// Producer: enqueue, increment the doorbell, notify.
	items = append(items, "hello")
	doorbell.Add(1)
	n.Notify(qid)

	// Consumer: the QWAIT loop.
	got, ok := n.Wait() // blocks until some queue is ready
	if !ok || !n.Verify(got) {
		return
	}
	item := items[0]
	items = items[1:]
	doorbell.Add(-1)
	n.Reconsider(got)

	fmt.Println(item)
	// Output: hello
}

// Queue and Mux wrap the protocol end to end: Push notifies, Serve runs
// Wait/Verify/Reconsider per item.
func ExampleMux_Serve() {
	n, _ := hyperplane.NewNotifier(hyperplane.NotifierConfig{MaxQueues: 8})
	mux := hyperplane.NewMux[int](n)
	q, _ := mux.Add(64)

	go func() {
		for i := 1; i <= 3; i++ {
			q.Push(i * 10)
		}
	}()

	sum := 0
	mux.Serve(func(_ hyperplane.QID, v int) bool {
		sum += v
		return sum < 60
	})
	n.Close()
	fmt.Println(sum)
	// Output: 60
}

// Simulate runs one point on the paper's evaluation platform.
func ExampleSimulate() {
	r, err := hyperplane.Simulate(hyperplane.SimConfig{
		Plane:    hyperplane.PlaneHyperPlane,
		Shape:    hyperplane.SingleQueue,
		Queues:   512,
		Saturate: true,
		Duration: 2 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(r.Completed > 0, r.UselessIPC < 0.01)
	// Output: true true
}

// ReproduceFigure regenerates any of the paper's tables and figures.
func ExampleReproduceFigure() {
	figs, err := hyperplane.ReproduceFigure("table1", true, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(figs[0].ID, len(figs[0].Notes) > 0)
	// Output: table1 true
}

// Command qstress soaks the real hyperplane.Notifier runtime: concurrent
// producers push items through many queues while consumer goroutines follow
// the QWAIT protocol; it reports sustained throughput and notification
// latency percentiles.
//
// Example:
//
//	qstress -queues 64 -consumers 2 -duration 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane"
)

type item struct {
	sent time.Time
}

func main() {
	var (
		nQueues   = flag.Int("queues", 32, "number of queues")
		consumers = flag.Int("consumers", 1, "consumer goroutines (each owns queues/consumers queues)")
		duration  = flag.Duration("duration", 3*time.Second, "run time")
		capacity  = flag.Int("cap", 1024, "ring capacity per queue (power of two)")
		policy    = flag.String("policy", "rr", "rr | wrr | strict | drr | ewma")
	)
	flag.Parse()

	pol, err := hyperplane.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qstress: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if *consumers < 1 || *nQueues < *consumers {
		fmt.Fprintln(os.Stderr, "qstress: need at least one queue per consumer")
		os.Exit(2)
	}

	// One notifier + mux per consumer: rings are SPSC, so each consumer
	// owns a disjoint queue set (the scale-out organization).
	var stop atomic.Bool
	var produced, consumed atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration

	var wg sync.WaitGroup
	for c := 0; c < *consumers; c++ {
		n, err := hyperplane.NewNotifier(hyperplane.NotifierConfig{
			MaxQueues: *nQueues,
			Policy:    pol,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qstress:", err)
			os.Exit(1)
		}
		mux := hyperplane.NewMux[item](n)
		per := *nQueues / *consumers
		queues := make([]*hyperplane.Queue[item], per)
		for i := range queues {
			queues[i], err = mux.Add(*capacity)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qstress:", err)
				os.Exit(1)
			}
		}

		// Consumer.
		wg.Add(1)
		go func() {
			defer wg.Done()
			mux.Serve(func(_ hyperplane.QID, it item) bool {
				d := time.Since(it.sent)
				consumed.Add(1)
				latMu.Lock()
				if len(lats) < 1_000_000 {
					lats = append(lats, d)
				}
				latMu.Unlock()
				return true
			})
		}()

		// One producer per queue.
		for _, q := range queues {
			wg.Add(1)
			go func(q *hyperplane.Queue[item]) {
				defer wg.Done()
				for !stop.Load() {
					if !q.Push(item{sent: time.Now()}) {
						time.Sleep(10 * time.Microsecond) // backpressure
						continue
					}
					produced.Add(1)
				}
			}(q)
		}

		// Closer for this notifier.
		go func() {
			for !stop.Load() {
				time.Sleep(time.Millisecond)
			}
			// Drain grace period, then unblock the consumer.
			time.Sleep(50 * time.Millisecond)
			n.Close()
		}()
	}

	start := time.Now()
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	latMu.Lock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p / 100 * float64(len(lats)-1))
		return lats[i]
	}
	p50, p99, p999 := pct(50), pct(99), pct(99.9)
	latMu.Unlock()

	fmt.Printf("qstress: %d queues, %d consumers, %v\n", *nQueues, *consumers, elapsed.Round(time.Millisecond))
	fmt.Printf("  produced   %d\n", produced.Load())
	fmt.Printf("  consumed   %d (%.2f M items/s)\n",
		consumed.Load(), float64(consumed.Load())/elapsed.Seconds()/1e6)
	fmt.Printf("  notification latency p50/p99/p99.9: %v / %v / %v\n", p50, p99, p999)
}

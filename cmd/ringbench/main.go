// ringbench measures the ring-level batch data path: per-item Push/Pop
// against PushBatch/PopBatch on the SPSC ring, and multi-producer fan-in
// on the MPSC ring, writing the results as JSON (BENCH_ring.json via
// `make bench`).
//
// Each SPSC cell runs one producer and one consumer over a ring for a
// fixed item count, once with per-item operations and once with batched
// ones; speedup is per-item ns/op over batched ns/op, so it captures
// exactly what the batch path amortizes (one cursor publish and one
// doorbell write per burst instead of per item). MPSC cells add producer
// fan-in: p producers PushBatch into one ring while a single consumer
// PopBatches, which is the shared-ingress production pattern.
//
// Run with: go run ./cmd/ringbench -out BENCH_ring.json
//
// Guard mode re-measures a stored report's grid and fails (exit 1) if any
// cell's batched-over-per-item speedup regresses by more than the
// tolerance. The speedup is a ratio of two fresh measurements on the
// current machine, so the check is portable across hosts:
//
//	go run ./cmd/ringbench -check BENCH_ring.json -tolerance 0.10
//
// -smoke shrinks the grid and op counts for CI: it verifies the harness
// and the batch-wins invariant without burning minutes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/internal/benchmeta"
	"hyperplane/internal/queue"
)

// spscTrial pushes ops items through an SPSC ring with one producer and
// one consumer. batch <= 1 uses Push/Pop; batch > 1 uses PushBatch/
// PopBatch with bursts of that size. Returns ns per item.
func spscTrial(ops, capacity, batch int) float64 {
	r, err := queue.NewRing[int](capacity)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if batch <= 1 {
			for i := 0; i < ops; i++ {
				for !r.Push(i) {
					runtime.Gosched()
				}
			}
			return
		}
		buf := make([]int, batch)
		for i := 0; i < ops; {
			n := batch
			if ops-i < n {
				n = ops - i
			}
			for j := 0; j < n; j++ {
				buf[j] = i + j
			}
			sent := 0
			for sent < n {
				k := r.PushBatch(buf[sent:n])
				if k == 0 {
					runtime.Gosched()
				}
				sent += k
			}
			i += n
		}
	}()
	if batch <= 1 {
		for got := 0; got < ops; {
			if _, ok := r.Pop(); ok {
				got++
			} else {
				runtime.Gosched()
			}
		}
	} else {
		dst := make([]int, batch)
		for got := 0; got < ops; {
			n := r.PopBatch(dst)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			got += n
		}
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// sink defeats dead-code elimination of producerWork.
var sink uint64

// producerWork burns iters xorshift steps — a stand-in for the per-item
// construction cost (parse, encap, checksum) a real producer pays before
// submitting. Fan-in scaling is only observable when producers do work:
// an empty push loop is bound by the shared tail cache line no matter how
// the ring is built, so it measures the fabric, not the ring.
func producerWork(iters int, seed uint64) uint64 {
	x := seed | 1
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// mpscTrial drives p producers into one MPSC ring with a single
// consumer. batch <= 1 uses Push; batch > 1 uses PushBatch bursts; work
// is the per-item production cost in xorshift iterations (0 = raw ring
// overhead). The consumer always drains with PopBatch — that is the
// worker-side service discipline regardless of how producers submit.
// Returns ns per item.
func mpscTrial(ops, capacity, producers, batch, work int) float64 {
	m, err := queue.NewMPSC[int](capacity)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		iters := ops / producers
		if p < ops%producers {
			iters++
		}
		wg.Add(1)
		go func(p, iters int) {
			defer wg.Done()
			var acc uint64
			if batch <= 1 {
				for i := 0; i < iters; i++ {
					acc += producerWork(work, uint64(p*iters+i))
					for !m.Push(i) {
						runtime.Gosched()
					}
				}
				atomic.AddUint64(&sink, acc)
				return
			}
			buf := make([]int, batch)
			for i := 0; i < iters; {
				n := batch
				if iters-i < n {
					n = iters - i
				}
				for j := 0; j < n; j++ {
					acc += producerWork(work, uint64(p*iters+i+j))
					buf[j] = i + j
				}
				sent := 0
				for sent < n {
					k := m.PushBatch(buf[sent:n])
					if k == 0 {
						runtime.Gosched()
					}
					sent += k
				}
				i += n
			}
			atomic.AddUint64(&sink, acc)
		}(p, iters)
	}
	dst := make([]int, 256)
	for got := 0; got < ops; {
		n := m.PopBatch(dst)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		got += n
	}
	wg.Wait()
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// runCell reports the median of trials runs of fn. Median, not minimum:
// producer/consumer convoying under preemption is cost the rings must
// absorb, not noise to filter out.
func runCell(trials int, fn func() float64) float64 {
	ns := make([]float64, trials)
	for t := range ns {
		ns[t] = fn()
	}
	sort.Float64s(ns)
	return ns[trials/2]
}

type cellResult struct {
	Ring      string  `json:"ring"` // "spsc" | "mpsc"
	Producers int     `json:"producers"`
	Batch     int     `json:"batch"`
	ItemNsOp  float64 `json:"item_ns_op"`  // per-item Push/Pop path
	BatchNsOp float64 `json:"batch_ns_op"` // PushBatch/PopBatch path
	Speedup   float64 `json:"speedup_batch_vs_item"`
	MItemsSec float64 `json:"batched_mitems_per_sec"`
}

type report struct {
	benchmeta.Host
	OpsPerCell int `json:"ops_per_cell"`
	Trials     int `json:"trials_per_cell"`
	Capacity   int `json:"ring_capacity"`
	// MPSCScaling4P is batched 4-producer throughput over batched
	// 1-producer throughput on the MPSC ring with a packet-encap worth of
	// per-item production work — the fan-in win the shared organization
	// (paper §V-C) banks on. Measured with work because an empty push loop
	// is bound by the shared tail cache line on any ring design.
	MPSCScaling4P float64 `json:"mpsc_scaling_4p"`
	// ScalingWorkIters is the per-item producer work (xorshift iterations)
	// used for that measurement.
	ScalingWorkIters int `json:"scaling_work_iters"`
	// ScalingNote is set when the host cannot exhibit fan-in scaling: 4
	// producers + 1 consumer need at least 5 schedulable cores, otherwise
	// goroutines time-slice one another and the ratio measures the OS
	// scheduler, not the ring.
	ScalingNote string       `json:"scaling_note,omitempty"`
	Cells       []cellResult `json:"cells"`
}

func measureCell(ring string, producers, batch, ops, trials, capacity int) cellResult {
	var item, batched float64
	switch ring {
	case "spsc":
		item = runCell(trials, func() float64 { return spscTrial(ops, capacity, 1) })
		batched = runCell(trials, func() float64 { return spscTrial(ops, capacity, batch) })
	case "mpsc":
		item = runCell(trials, func() float64 { return mpscTrial(ops, capacity, producers, 1, 0) })
		batched = runCell(trials, func() float64 { return mpscTrial(ops, capacity, producers, batch, 0) })
	default:
		log.Fatalf("unknown ring kind %q", ring)
	}
	c := cellResult{
		Ring:      ring,
		Producers: producers,
		Batch:     batch,
		ItemNsOp:  item,
		BatchNsOp: batched,
		Speedup:   item / batched,
		MItemsSec: 1e3 / batched,
	}
	fmt.Fprintf(os.Stderr, "%s p%d b%d: item %.1f ns/op, batch %.1f ns/op (%.2fx, %.1f Mitems/s)\n",
		ring, producers, batch, item, batched, c.Speedup, c.MItemsSec)
	return c
}

// grid returns the cells to measure. SPSC sweeps batch sizes; MPSC sweeps
// producer fan-in at the default burst.
func grid(smoke bool) [][3]interface{} {
	type cell = [3]interface{} // ring, producers, batch
	if smoke {
		return []cell{{"spsc", 1, 16}, {"mpsc", 4, 16}}
	}
	return []cell{
		{"spsc", 1, 4}, {"spsc", 1, 16}, {"spsc", 1, 64},
		{"mpsc", 1, 16}, {"mpsc", 2, 16}, {"mpsc", 4, 16}, {"mpsc", 8, 16},
	}
}

// scalingWork is the per-item production cost (xorshift iterations) used
// for the fan-in scaling measurement — roughly a packet-encap worth of
// producer-side work, enough that one producer cannot saturate the ring.
const scalingWork = 60

func measureScaling(ops, trials, capacity int) float64 {
	one := runCell(trials, func() float64 { return mpscTrial(ops, capacity, 1, 16, scalingWork) })
	four := runCell(trials, func() float64 { return mpscTrial(ops, capacity, 4, 16, scalingWork) })
	return one / four // ns/op ratio = throughput ratio
}

// scalingParallel reports whether procs schedulable cores can run a
// producers-way fan-in cell genuinely in parallel: the producers plus the
// single consumer each need a core, otherwise the goroutines time-slice
// one another and any ratio measures the OS scheduler, not the ring.
func scalingParallel(procs, producers int) bool {
	return benchmeta.CanParallel(procs, producers+1)
}

// scalingNote returns the report annotation for hosts that cannot
// exhibit 4-producer fan-in scaling, or "" when they can (the shared
// benchmeta.ScalingNote escape hatch): wherever this note is emitted,
// skipScalingCheck skips the matching assertions.
func scalingNote(procs int) string {
	return benchmeta.ScalingNote(procs, 5,
		"the 4-producer fan-in ratio reflects time-slicing, not ring scaling")
}

// skipScalingCheck reports whether guard mode must skip a cell's speedup
// assertion: multi-producer cells are exempt when either side of the
// comparison ran without real parallelism — the baseline carries a
// scaling note, or the current host cannot schedule the cell's
// goroutines on distinct cores. Single-producer cells never skip.
func skipScalingCheck(baseNote string, procs, producers int) bool {
	if producers <= 1 {
		return false
	}
	return baseNote != "" || !scalingParallel(procs, producers)
}

// checkAgainst re-measures every cell in a stored report and fails if any
// batched-over-per-item speedup drops more than tolerance below the
// recorded value. Multi-producer cells are skipped when the baseline or
// the current host is single-core (see skipScalingCheck).
func checkAgainst(path string, tolerance float64, ops, trials, capacity int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	if len(base.Cells) == 0 {
		log.Fatalf("%s has no cells", path)
	}
	spscTrial(ops/10+1, capacity, 16) // warm up
	mpscTrial(ops/10+1, capacity, 4, 16, 0)
	failed := 0
	procs := runtime.GOMAXPROCS(0)
	for _, bc := range base.Cells {
		if skipScalingCheck(base.ScalingNote, procs, bc.Producers) {
			fmt.Printf("%s p%d b%d: skipped (baseline or host lacks the cores for %d-producer parallelism)\n",
				bc.Ring, bc.Producers, bc.Batch, bc.Producers)
			continue
		}
		c := measureCell(bc.Ring, bc.Producers, bc.Batch, ops, trials, capacity)
		floor := bc.Speedup * (1 - tolerance)
		status := "ok"
		if c.Speedup < floor {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%s p%d b%d: speedup %.2fx, baseline %.2fx, floor %.2fx — %s\n",
			bc.Ring, bc.Producers, bc.Batch, c.Speedup, bc.Speedup, floor, status)
	}
	if failed > 0 {
		log.Fatalf("%d of %d cells regressed beyond %.0f%% of %s",
			failed, len(base.Cells), tolerance*100, path)
	}
	fmt.Printf("all %d cells within %.0f%% of %s\n", len(base.Cells), tolerance*100, path)
}

func main() {
	ops := flag.Int("ops", 4_000_000, "items per trial")
	trials := flag.Int("trials", 5, "trials per cell; median reported")
	capacity := flag.Int("cap", 1024, "ring capacity (power of two)")
	out := flag.String("out", "", "output JSON path (default stdout)")
	check := flag.String("check", "", "guard mode: baseline report to re-measure against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional speedup regression in -check mode")
	smoke := flag.Bool("smoke", false, "tiny grid + op count: verify the harness and that batching wins")
	flag.Parse()

	if *smoke {
		*ops = 200_000
		*trials = 3
	}
	if *check != "" {
		checkAgainst(*check, *tolerance, *ops, *trials, *capacity)
		return
	}

	rep := report{
		Host:       benchmeta.Collect(),
		OpsPerCell: *ops,
		Trials:     *trials,
		Capacity:   *capacity,
	}
	spscTrial(*ops/10+1, *capacity, 16) // warm up scheduler and code paths
	mpscTrial(*ops/10+1, *capacity, 4, 16, 0)
	for _, g := range grid(*smoke) {
		rep.Cells = append(rep.Cells,
			measureCell(g[0].(string), g[1].(int), g[2].(int), *ops, *trials, *capacity))
	}
	rep.MPSCScaling4P = measureScaling(*ops, *trials, *capacity)
	rep.ScalingWorkIters = scalingWork
	fmt.Fprintf(os.Stderr, "mpsc batched 4-producer scaling: %.2fx over 1 producer\n", rep.MPSCScaling4P)
	rep.ScalingNote = scalingNote(runtime.GOMAXPROCS(0))
	if rep.ScalingNote != "" {
		fmt.Fprintln(os.Stderr, "note:", rep.ScalingNote)
	}

	if *smoke {
		// The smoke gate: batching must beat per-item on both rings, and —
		// when the host has the cores to show it — 4-producer fan-in must
		// scale on the shared ring.
		for _, c := range rep.Cells {
			if c.Speedup < 1.0 {
				log.Fatalf("smoke: %s p%d b%d batched path slower than per-item (%.2fx)",
					c.Ring, c.Producers, c.Batch, c.Speedup)
			}
		}
		if rep.ScalingNote == "" && rep.MPSCScaling4P < 1.5 {
			log.Fatalf("smoke: mpsc 4-producer scaling %.2fx < 1.5x with %d cores available",
				rep.MPSCScaling4P, runtime.GOMAXPROCS(0))
		}
		fmt.Println("smoke ok: batched path wins on every cell")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := benchmeta.WriteFileAtomic(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

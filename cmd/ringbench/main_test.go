package main

import (
	"strings"
	"testing"
)

// TestScalingNoteGuardConsistency pins the satellite contract: wherever
// the report emits a scaling note, guard mode skips the multi-producer
// scaling assertions — the two sides can never disagree about whether a
// host is capable of the measurement.
func TestScalingNoteGuardConsistency(t *testing.T) {
	for procs := 1; procs <= 16; procs++ {
		note := scalingNote(procs)
		for _, producers := range []int{1, 2, 4, 8} {
			skip := skipScalingCheck(note, procs, producers)
			if producers == 1 {
				if skip {
					t.Errorf("procs=%d: single-producer cell skipped", procs)
				}
				continue
			}
			if note != "" && !skip {
				t.Errorf("procs=%d producers=%d: note emitted (%q) but guard would still assert",
					procs, producers, note)
			}
			if note == "" && producers == 4 && skip {
				t.Errorf("procs=%d: host can scale 4 producers but guard skips", procs)
			}
		}
	}
}

// TestSkipScalingCheckBaselineNote: a baseline recorded on a single-core
// host exempts its multi-producer cells even when the checking host has
// plenty of cores — the recorded speedup is not a parallel measurement.
func TestSkipScalingCheckBaselineNote(t *testing.T) {
	note := scalingNote(1)
	if note == "" {
		t.Fatal("single-core host emitted no scaling note")
	}
	if !strings.Contains(note, "GOMAXPROCS=1") {
		t.Errorf("note does not name the core count: %q", note)
	}
	if !skipScalingCheck(note, 64, 4) {
		t.Error("baseline note ignored on a many-core checker")
	}
	if skipScalingCheck("", 64, 4) {
		t.Error("skipped with no note and ample cores")
	}
	if !skipScalingCheck("", 2, 4) {
		t.Error("asserted a 4-producer cell on a 2-core checker")
	}
}

// TestScalingParallel pins the core-count rule: producers + 1 consumer.
func TestScalingParallel(t *testing.T) {
	cases := []struct {
		procs, producers int
		want             bool
	}{
		{1, 4, false}, {4, 4, false}, {5, 4, true},
		{2, 1, true}, {1, 1, false}, {3, 2, true},
	}
	for _, c := range cases {
		if got := scalingParallel(c.procs, c.producers); got != c.want {
			t.Errorf("scalingParallel(%d, %d) = %v, want %v", c.procs, c.producers, got, c.want)
		}
	}
}

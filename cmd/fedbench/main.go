// Command fedbench measures the federation layer on real sockets: an
// in-process cluster of dataplane nodes wired over loopback TCP, with
// three experiments recorded to a BENCH report:
//
//   - local throughput: messages ingressed at the node that owns their
//     tenant (no bridge hop) — the baseline every forwarded number is
//     read against;
//   - forwarded throughput: the same offered load ingressed at a
//     non-owner, so every message rides the bridge (frame encode, TCP,
//     CRC check, batched re-ingress with dedup) before delivery;
//   - handoff latency: wall time of a graceful tenant handoff under a
//     background trickle of traffic — the drain, the dedup-state
//     transfer, and the ownership flip, end to end.
//
// The forwarded:local ratio is the cost of one bridge hop. On a host
// that cannot schedule the producer and both planes on distinct cores
// the ratio measures time-slicing instead, and the report carries the
// standard scaling_note saying so (see internal/benchmeta).
//
//	fedbench -nodes 2 -tenants 32 -payload 128 -duration 2s \
//	         -handoffs 20 -out BENCH_federation.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
	"hyperplane/internal/benchmeta"
	"hyperplane/internal/cluster"
)

// Report is the JSON shape written to -out.
type Report struct {
	benchmeta.Host
	Nodes        int    `json:"nodes"`
	Tenants      int    `json:"tenants"`
	PayloadBytes int    `json:"payload_bytes"`
	Duration     string `json:"duration"`

	LocalMsgsPerSec   float64 `json:"local_msgs_per_sec"`
	ForwardMsgsPerSec float64 `json:"forward_msgs_per_sec"`
	// ForwardRatio is forwarded/local throughput: the fraction of local
	// admission rate that survives one bridge hop.
	ForwardRatio float64 `json:"forward_ratio"`

	Handoffs       int     `json:"handoffs"`
	HandoffP50Ms   float64 `json:"handoff_p50_ms"`
	HandoffP99Ms   float64 `json:"handoff_p99_ms"`
	HandoffMaxMs   float64 `json:"handoff_max_ms"`
	ForwardBatches int64   `json:"forward_batches"`
	ForwardItems   int64   `json:"forward_items"`

	ScalingNote string `json:"scaling_note,omitempty"`
}

// bnode is one benchmark cluster member: a plane whose handler counts
// deliveries, fronted by a federation node.
type bnode struct {
	node      *cluster.Node
	plane     *dataplane.Plane
	delivered atomic.Int64
}

func buildCluster(n, tenants, ring int) ([]*bnode, error) {
	nodes := make([]*bnode, n)
	for i := range nodes {
		bn := &bnode{}
		plane, err := dataplane.New(dataplane.Config{
			Tenants:      tenants,
			Workers:      2,
			RingCapacity: ring,
			Mode:         dataplane.Notify,
			// Consume every item at the handler (nil payload = completed
			// consumption): the bench measures admission and the bridge,
			// so nothing may pile up in unconsumed egress rings — under
			// the default Block policy that would wedge the plane.
			BatchHandler: func(tenant int, payloads [][]byte) error {
				bn.delivered.Add(int64(len(payloads)))
				for i := range payloads {
					payloads[i] = nil
				}
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		plane.Start()
		node, err := cluster.NewNode(cluster.Config{
			ID:            fmt.Sprintf("n%d", i),
			Plane:         plane,
			FlushBatch:    64,
			FlushInterval: 100 * time.Microsecond,
			ForwardBuffer: 1 << 12,
		})
		if err != nil {
			return nil, err
		}
		if err := node.Start(); err != nil {
			return nil, err
		}
		bn.node, bn.plane = node, plane
		nodes[i] = bn
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i == j {
				continue
			}
			if err := a.node.AddPeer(cluster.PeerSpec{ID: b.node.ID(), Addr: b.node.Addr()}); err != nil {
				return nil, err
			}
		}
	}
	return nodes, nil
}

// tenantsOwnedBy collects the tenants entry's ring assigns to owner.
func tenantsOwnedBy(entry *bnode, owner string, tenants int) []int {
	var out []int
	for t := 0; t < tenants; t++ {
		if entry.node.Owner(t) == owner {
			out = append(out, t)
		}
	}
	return out
}

// drive ingresses payloads for the listed tenants at entry for the
// given duration, round-robin across tenants, retrying on backpressure.
// Returns the number of messages accepted.
func drive(entry *bnode, tenants []int, payload []byte, d time.Duration, idGen *atomic.Uint64) int64 {
	deadline := time.Now().Add(d)
	var accepted int64
	i := 0
	for time.Now().Before(deadline) {
		t := tenants[i%len(tenants)]
		i++
		id := idGen.Add(1)
		for !entry.node.Ingress(t, id, payload) {
			if time.Now().After(deadline) {
				return accepted
			}
			runtime.Gosched()
		}
		accepted++
	}
	return accepted
}

// settle waits until the cluster-wide delivered count stops moving.
func settle(nodes []*bnode, want int64, timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for {
		var got int64
		for _, bn := range nodes {
			got += bn.delivered.Load()
		}
		if got >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(500 * time.Microsecond)
	}
}

func main() {
	var (
		nNodes   = flag.Int("nodes", 2, "cluster size")
		tenants  = flag.Int("tenants", 32, "tenant queue pairs per plane")
		ring     = flag.Int("ring", 1<<13, "ring capacity per tenant")
		payload  = flag.Int("payload", 128, "payload bytes per message")
		duration = flag.Duration("duration", 2*time.Second, "per-experiment measure window")
		handoffs = flag.Int("handoffs", 20, "graceful handoffs to time")
		out      = flag.String("out", "", "write the JSON report here (empty = stdout only)")
	)
	flag.Parse()
	if *nNodes < 2 {
		log.Fatal("fedbench needs at least 2 nodes")
	}

	nodes, err := buildCluster(*nNodes, *tenants, *ring)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, bn := range nodes {
			bn.node.Stop()
			bn.plane.Stop()
		}
	}()

	entry := nodes[0]
	local := tenantsOwnedBy(entry, entry.node.ID(), *tenants)
	remote := tenantsOwnedBy(entry, nodes[1].node.ID(), *tenants)
	if len(local) == 0 || len(remote) == 0 {
		log.Fatalf("degenerate ring: %d local / %d remote tenants at %s", len(local), len(remote), entry.node.ID())
	}
	body := make([]byte, *payload)
	for i := range body {
		body[i] = byte(i)
	}
	var idGen atomic.Uint64

	// Experiment 1: local admission — owner-entry, no bridge hop.
	baseline := totalDelivered(nodes)
	start := time.Now()
	sent := drive(entry, local, body, *duration, &idGen)
	settle(nodes, baseline+sent, 10*time.Second)
	localRate := float64(sent) / time.Since(start).Seconds()
	log.Printf("local: %d msgs, %.0f msgs/sec", sent, localRate)

	// Experiment 2: forwarded admission — every message crosses the
	// bridge to nodes[1] before delivery.
	baseline = totalDelivered(nodes)
	start = time.Now()
	sent = drive(entry, remote, body, *duration, &idGen)
	settle(nodes, baseline+sent, 10*time.Second)
	fwdRate := float64(sent) / time.Since(start).Seconds()
	log.Printf("forwarded: %d msgs, %.0f msgs/sec (%.2fx of local)", sent, fwdRate, fwdRate/localRate)

	// Experiment 3: graceful handoff latency under a trickle of load.
	// The tenant bounces a -> b -> a ... ; each Handoff is timed end to
	// end (drain + state transfer + flip + tail flush).
	ht := local[0]
	stopTrickle := make(chan struct{})
	var trickleWG sync.WaitGroup
	trickleWG.Add(1)
	go func() {
		defer trickleWG.Done()
		for {
			select {
			case <-stopTrickle:
				return
			default:
			}
			entry.node.Ingress(ht, idGen.Add(1), body)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	lat := make([]float64, 0, *handoffs)
	for i := 0; i < *handoffs; i++ {
		from := nodes[i%2]
		to := nodes[(i+1)%2]
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		t0 := time.Now()
		err := from.node.Handoff(ctx, ht, to.node.ID())
		cancel()
		if err != nil {
			log.Fatalf("handoff %d (%s -> %s): %v", i, from.node.ID(), to.node.ID(), err)
		}
		lat = append(lat, float64(time.Since(t0).Microseconds())/1e3)
	}
	close(stopTrickle)
	trickleWG.Wait()
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[min(len(lat)-1, int(p*float64(len(lat))))] }
	log.Printf("handoff: n=%d p50=%.2fms p99=%.2fms max=%.2fms",
		len(lat), pct(0.50), pct(0.99), lat[len(lat)-1])

	var fb, fi int64
	for _, bn := range nodes {
		st := bn.node.Metrics()
		fb += st.ForwardBatches.Load()
		fi += st.Forwarded.Load()
	}
	rep := Report{
		Host:              benchmeta.Collect(),
		Nodes:             *nNodes,
		Tenants:           *tenants,
		PayloadBytes:      *payload,
		Duration:          duration.String(),
		LocalMsgsPerSec:   localRate,
		ForwardMsgsPerSec: fwdRate,
		ForwardRatio:      fwdRate / localRate,
		Handoffs:          len(lat),
		HandoffP50Ms:      pct(0.50),
		HandoffP99Ms:      pct(0.99),
		HandoffMaxMs:      lat[len(lat)-1],
		ForwardBatches:    fb,
		ForwardItems:      fi,
		ScalingNote: benchmeta.ScalingNote(runtime.GOMAXPROCS(0), 2,
			"forwarded:local ratio reflects time-slicing between the producer and both planes, not bridge overhead"),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := benchmeta.WriteFileAtomic(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *out)
	}
}

func totalDelivered(nodes []*bnode) int64 {
	var got int64
	for _, bn := range nodes {
		got += bn.delivered.Load()
	}
	return got
}

// Command planebench measures the real dataplane runtime on real hardware:
// sustained throughput and round-trip latency of QWAIT-notified workers vs
// spin-polling workers across tenant counts — the software analogue of the
// paper's Fig. 8 comparison, without the simulator.
//
// Example:
//
//	planebench -tenants 8,64,256 -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperplane/dataplane"
)

func main() {
	var (
		tenantsFlag = flag.String("tenants", "8,64,256", "comma-separated tenant counts to sweep")
		workers     = flag.Int("workers", 1, "data plane workers")
		duration    = flag.Duration("duration", 2*time.Second, "measurement window per point")
		capacity    = flag.Int("cap", 1024, "ring capacity (power of two)")
		rate        = flag.Float64("rate", 0, "paced ingress per tenant (items/s); 0 = flood (saturation)")
	)
	flag.Parse()

	var counts []int
	for _, part := range strings.Split(*tenantsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "planebench: bad tenant count %q\n", part)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	fmt.Printf("%8s %10s %14s %12s %12s\n", "tenants", "mode", "items/s", "p50", "p99")
	for _, tenants := range counts {
		for _, mode := range []dataplane.Mode{dataplane.Notify, dataplane.Spin} {
			thr, p50, p99, err := measure(tenants, *workers, *capacity, mode, *duration, *rate)
			if err != nil {
				fmt.Fprintln(os.Stderr, "planebench:", err)
				os.Exit(1)
			}
			fmt.Printf("%8d %10s %14.0f %12v %12v\n", tenants, mode, thr, p50, p99)
		}
	}
}

func measure(tenants, workers, capacity int, mode dataplane.Mode, duration time.Duration, rate float64) (float64, time.Duration, time.Duration, error) {
	p, err := dataplane.New(dataplane.Config{
		Tenants:      tenants,
		Workers:      workers,
		RingCapacity: capacity,
		Mode:         mode,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	p.Start()
	defer p.Stop()

	var stop atomic.Bool
	var consumed atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration

	var wg sync.WaitGroup
	// One producer + one tenant consumer per tenant.
	for tn := 0; tn < tenants; tn++ {
		wg.Add(2)
		go func(tn int) {
			defer wg.Done()
			var pace time.Duration
			if rate > 0 {
				pace = time.Duration(float64(time.Second) / rate)
			}
			for !stop.Load() {
				now := time.Now()
				payload := make([]byte, 8)
				for i, b := range timeBytes(now) {
					payload[i] = b
				}
				if !p.Ingress(tn, payload) {
					time.Sleep(5 * time.Microsecond)
					continue
				}
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}(tn)
		go func(tn int) {
			defer wg.Done()
			for {
				out, ok := p.EgressWait(tn)
				if !ok {
					return
				}
				d := time.Since(timeFrom(out))
				consumed.Add(1)
				latMu.Lock()
				if len(lats) < 2_000_000 {
					lats = append(lats, d)
				}
				latMu.Unlock()
				if stop.Load() {
					return
				}
			}
		}(tn)
	}

	start := time.Now()
	time.Sleep(duration)
	stop.Store(true)
	elapsed := time.Since(start)
	p.Stop() // closes tenant notifiers, unblocking EgressWait
	wg.Wait()

	latMu.Lock()
	defer latMu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	return float64(consumed.Load()) / elapsed.Seconds(), pct(0.50), pct(0.99), nil
}

func timeBytes(t time.Time) [8]byte {
	n := t.UnixNano()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(n >> (8 * i))
	}
	return b
}

func timeFrom(b []byte) time.Time {
	var n int64
	for i := 0; i < 8 && i < len(b); i++ {
		n |= int64(b[i]) << (8 * i)
	}
	return time.Unix(0, n)
}
